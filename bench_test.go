// Benchmarks regenerating the kernels behind every table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Dataset analogs are generated once and shared across benches; sizes
// are the Scale-1 laptop defaults, so absolute numbers are far below
// the paper's testbed — the comparisons (who wins, by what factor) are
// what these benches reproduce. cmd/experiments produces the
// corresponding full reports.
package hyperline_test

import (
	"context"
	"sync"
	"testing"

	"hyperline"
	"hyperline/internal/algo"
	"hyperline/internal/core"
	"hyperline/internal/experiments"
	"hyperline/internal/gen"
	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spectral"
	"hyperline/internal/spgemm"
)

var (
	ljOnce sync.Once
	ljH    *hg.Hypergraph

	webOnce sync.Once
	webH    *hg.Hypergraph

	friendOnce sync.Once
	friendH    *hg.Hypergraph

	emailOnce sync.Once
	emailH    *hg.Hypergraph

	condOnce sync.Once
	condH    *hg.Hypergraph
)

func lj() *hg.Hypergraph {
	ljOnce.Do(func() { ljH = experiments.LiveJournalAnalog(1) })
	return ljH
}
func web() *hg.Hypergraph {
	webOnce.Do(func() { webH = experiments.WebAnalog(1) })
	return webH
}
func friend() *hg.Hypergraph {
	friendOnce.Do(func() { friendH = experiments.FriendsterAnalog(1) })
	return friendH
}
func email() *hg.Hypergraph {
	emailOnce.Do(func() { emailH = experiments.EmailAnalog(1) })
	return emailH
}
func cond() *hg.Hypergraph {
	condOnce.Do(func() { condH = experiments.CondMatAnalog(1) })
	return condH
}

func cfgFor(b *testing.B, notation string) core.Config {
	cfg, err := core.ParseNotation(notation)
	if err != nil {
		b.Fatal(err)
	}
	if cfg.Algorithm == core.AlgoHashmap {
		cfg.Store = core.TLSDense
	}
	return cfg
}

// ---- Table I: s-overlap stage, Algorithm 1 vs Algorithm 2 ----

func BenchmarkTable1SOverlapAlgo1(b *testing.B) {
	h := lj()
	cfg := cfgFor(b, "1CN")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

func BenchmarkTable1SOverlapAlgo2(b *testing.B) {
	h := lj()
	cfg := cfgFor(b, "2BA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

// ---- Figure 4: s-clique ensemble on the disease-gene analog ----

func BenchmarkFig4SCliqueEnsemble(b *testing.B) {
	h := experiments.DisGeNetAnalog(1).Dual()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EnsembleEdges(context.Background(), h, experiments.Fig4SValues, core.Config{Store: core.TLSDense})
	}
}

// ---- Table II: PageRank over s-clique graphs ----

func BenchmarkTable2PageRank(b *testing.B) {
	h := experiments.DisGeNetAnalog(1)
	res, _ := core.Run(context.Background(), h, 10, core.PipelineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.PageRank(res.Graph, algo.PageRankOptions{})
	}
}

// ---- Figure 5: betweenness on the virology 5-line graph ----

func BenchmarkFig5Betweenness(b *testing.B) {
	res, _ := core.Run(context.Background(), experiments.VirologyAnalog(1), 5, core.PipelineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Betweenness(res.Graph, par.Options{})
	}
}

// ---- Figure 6: ensemble + normalized algebraic connectivity ----

func BenchmarkFig6Ensemble(b *testing.B) {
	h := cond()
	sValues := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EnsembleEdges(context.Background(), h, sValues, core.Config{Store: core.TLSDense})
	}
}

func BenchmarkFig6Connectivity(b *testing.B) {
	res, _ := core.Run(context.Background(), cond(), 8, core.PipelineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spectral.NormalizedAlgebraicConnectivity(res.Graph, spectral.Options{})
	}
}

// ---- §V-C: the IMDB pipeline end to end ----

func BenchmarkIMDBPipeline(b *testing.B) {
	h := experiments.IMDBAnalog(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hyperline.SLineGraph(h, 101, hyperline.Options{TLSDenseCounters: true})
		algo.ConnectedComponents(res.Graph)
		algo.Betweenness(res.Graph, par.Options{})
	}
}

// ---- Figure 7: the twelve Table III configurations ----

func benchmarkFig7(b *testing.B, notation string) {
	h := friend()
	cfg := cfgFor(b, notation)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(context.Background(), h, 8, core.PipelineConfig{Core: cfg})
	}
}

func BenchmarkFig7_1BD(b *testing.B) { benchmarkFig7(b, "1BD") }
func BenchmarkFig7_1CD(b *testing.B) { benchmarkFig7(b, "1CD") }
func BenchmarkFig7_1BA(b *testing.B) { benchmarkFig7(b, "1BA") }
func BenchmarkFig7_1CA(b *testing.B) { benchmarkFig7(b, "1CA") }
func BenchmarkFig7_1BN(b *testing.B) { benchmarkFig7(b, "1BN") }
func BenchmarkFig7_1CN(b *testing.B) { benchmarkFig7(b, "1CN") }
func BenchmarkFig7_2BN(b *testing.B) { benchmarkFig7(b, "2BN") }
func BenchmarkFig7_2CN(b *testing.B) { benchmarkFig7(b, "2CN") }
func BenchmarkFig7_2BA(b *testing.B) { benchmarkFig7(b, "2BA") }
func BenchmarkFig7_2CA(b *testing.B) { benchmarkFig7(b, "2CA") }
func BenchmarkFig7_2BD(b *testing.B) { benchmarkFig7(b, "2BD") }
func BenchmarkFig7_2CD(b *testing.B) { benchmarkFig7(b, "2CD") }

// ---- Figure 8: strong scaling of Algorithm 2 ----

func benchmarkFig8(b *testing.B, threads int) {
	h := lj()
	cfg := cfgFor(b, "2CA")
	cfg.Workers = threads
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

func BenchmarkFig8Threads1(b *testing.B)  { benchmarkFig8(b, 1) }
func BenchmarkFig8Threads2(b *testing.B)  { benchmarkFig8(b, 2) }
func BenchmarkFig8Threads4(b *testing.B)  { benchmarkFig8(b, 4) }
func BenchmarkFig8Threads8(b *testing.B)  { benchmarkFig8(b, 8) }
func BenchmarkFig8Threads16(b *testing.B) { benchmarkFig8(b, 16) }

// ---- Figure 9: weak scaling on the DNS analog ----

func benchmarkFig9(b *testing.B, files int) {
	h := experiments.DNSAnalog(1, files)
	cfg := core.Config{Workers: files, Store: core.TLSDense}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

func BenchmarkFig9Files1(b *testing.B) { benchmarkFig9(b, 1) }
func BenchmarkFig9Files2(b *testing.B) { benchmarkFig9(b, 2) }
func BenchmarkFig9Files4(b *testing.B) { benchmarkFig9(b, 4) }

// ---- Figure 10: workload characterization (visit counting) ----

func BenchmarkFig10VisitCounting(b *testing.B) {
	h := lj()
	cfg := cfgFor(b, "2CA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, _ := core.SLineEdges(context.Background(), h, 8, cfg)
		if len(stats.WedgesPerWorker) == 0 {
			b.Fatal("no per-worker stats")
		}
	}
}

// ---- Figure 11: SpGEMM baselines vs Algorithms 1 and 2 ----

func BenchmarkFig11SpGEMMFilter(b *testing.B) {
	h := email()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.SLineFilter(h, 8, par.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SpGEMMFilterUpper(b *testing.B) {
	h := email()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.SLineFilterUpper(h, 8, par.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SpGEMMHashUpper(b *testing.B) {
	// The hash-accumulator SpGEMM models the Nagasaka et al. library
	// the paper benchmarks against.
	h := email()
	a, bt := spgemm.EdgeView(h), spgemm.VertexView(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := spgemm.MultiplyHashUpper(a, bt, par.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spgemm.FilterS(l, 8)
	}
}

func BenchmarkFig11Algo1CA(b *testing.B) {
	h := email()
	cfg := cfgFor(b, "1CA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(context.Background(), h, 8, core.PipelineConfig{Core: cfg})
	}
}

func BenchmarkFig11Algo2BA(b *testing.B) {
	h := email()
	cfg := cfgFor(b, "2BA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(context.Background(), h, 8, core.PipelineConfig{Core: cfg})
	}
}

// ---- Table V: end-to-end LPCC at s=1 vs s=8 ----

func benchmarkTable5(b *testing.B, s int) {
	h := friend()
	cfg := cfgFor(b, "2CA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := core.Run(context.Background(), h, s, core.PipelineConfig{Core: cfg})
		algo.LabelPropagationCC(res.Graph, par.Options{})
	}
}

func BenchmarkTable5LPCCS1(b *testing.B) { benchmarkTable5(b, 1) }
func BenchmarkTable5LPCCS8(b *testing.B) { benchmarkTable5(b, 8) }

// ---- Ablations (DESIGN.md §5) ----

// Counter storage: per-iteration maps vs pre-allocated TLS dense
// counters (§III-F).
func BenchmarkAblationCounterStoreMap(b *testing.B) {
	h := web()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, core.Config{Store: core.MapPerIteration})
	}
}

func BenchmarkAblationCounterStoreTLSDense(b *testing.B) {
	h := web()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, core.Config{Store: core.TLSDense})
	}
}

func BenchmarkAblationCounterStoreTLSHash(b *testing.B) {
	h := web()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, core.Config{Store: core.TLSHash})
	}
}

func BenchmarkAblationCounterStoreAuto(b *testing.B) {
	h := web()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, core.Config{Store: core.StoreAuto})
	}
}

// Degree-based pruning on/off at a selective s.
func BenchmarkAblationPruningOn(b *testing.B) {
	h := lj()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 32, core.Config{Store: core.TLSDense})
	}
}

func BenchmarkAblationPruningOff(b *testing.B) {
	h := lj()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 32, core.Config{Store: core.TLSDense, DisablePruning: true})
	}
}

// Short-circuited vs exact set intersections in Algorithm 1.
func BenchmarkAblationShortCircuitOn(b *testing.B) {
	h := email()
	cfg := core.Config{Algorithm: core.AlgoSetIntersection}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

func BenchmarkAblationShortCircuitOff(b *testing.B) {
	h := email()
	cfg := core.Config{Algorithm: core.AlgoSetIntersection, DisableShortCircuit: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

// Granularity control (§III-F): blocked chunk-size sweep.
func benchmarkGrain(b *testing.B, grain int) {
	h := lj()
	cfg := core.Config{Store: core.TLSDense, Grain: grain}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLineEdges(context.Background(), h, 8, cfg)
	}
}

func BenchmarkAblationGrain16(b *testing.B)   { benchmarkGrain(b, 16) }
func BenchmarkAblationGrain64(b *testing.B)   { benchmarkGrain(b, 64) }
func BenchmarkAblationGrain256(b *testing.B)  { benchmarkGrain(b, 256) }
func BenchmarkAblationGrain2048(b *testing.B) { benchmarkGrain(b, 2048) }

// Toplex simplification (Stage 2) on/off on a subset-heavy input.
func BenchmarkAblationToplexOff(b *testing.B) {
	h := nestedHypergraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(context.Background(), h, 2, core.PipelineConfig{})
	}
}

func BenchmarkAblationToplexOn(b *testing.B) {
	h := nestedHypergraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(context.Background(), h, 2, core.PipelineConfig{Toplex: core.ToplexOn})
	}
}

var nestedOnce sync.Once
var nestedH *hg.Hypergraph

// nestedHypergraph has many hyperedges strictly contained in larger
// ones, so Stage 2 shrinks it substantially.
func nestedHypergraph() *hg.Hypergraph {
	nestedOnce.Do(func() {
		base := gen.Community(gen.CommunityConfig{
			Seed: 7, NumVertices: 5000, NumCommunities: 400,
			MeanCommunitySize: 12, EdgesPerCommunity: 1,
		})
		b := hg.NewBuilder(int(base.Incidences()) * 3)
		e := uint32(0)
		for i := 0; i < base.NumEdges(); i++ {
			vs := base.EdgeVertices(uint32(i))
			b.AddEdge(e, vs...)
			e++
			// Two nested sub-edges per toplex.
			if len(vs) >= 4 {
				b.AddEdge(e, vs[:len(vs)/2]...)
				e++
				b.AddEdge(e, vs[len(vs)/4:]...)
				e++
			}
		}
		nestedH = b.Build()
	})
	return nestedH
}

// ---- Batch engine: one planned multi-s pass vs pinned per-s runs ----

// batchSweep is the multi-resolution s-sweep the batch benches request.
var batchSweep = []int{2, 3, 4, 6, 8}

// BenchmarkBatchSweepPlanner runs the sweep as one planner-driven
// RunBatch call (the planner coalesces it into a single ensemble
// counting pass on this dataset).
func BenchmarkBatchSweepPlanner(b *testing.B) {
	h := lj()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunBatch(context.Background(), h, batchSweep, core.PipelineConfig{})
	}
}

// BenchmarkBatchSweepPinnedPerS runs the same sweep as independent
// pinned Algorithm 2 pipeline runs — the pre-batching serving pattern.
func BenchmarkBatchSweepPinnedPerS(b *testing.B) {
	h := lj()
	cfg := core.PipelineConfig{Core: core.Config{Algorithm: core.AlgoHashmap}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range batchSweep {
			core.Run(context.Background(), h, s, cfg)
		}
	}
}

// BenchmarkBatchSweepSpGEMM drives the sweep through the promoted
// SpGEMM strategy: one upper-triangle multiply shared by all s filters.
func BenchmarkBatchSweepSpGEMM(b *testing.B) {
	h := email()
	cfg := core.PipelineConfig{Core: core.Config{Algorithm: core.AlgoSpGEMM}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunBatch(context.Background(), h, batchSweep, cfg)
	}
}

// ---- Stage 4: defensive Build vs the parallel BuildSorted fast path ----

var stage4Once sync.Once
var stage4Edges []graph.Edge
var stage4Nodes int

func stage4Input() ([]graph.Edge, int) {
	stage4Once.Do(func() {
		h := lj()
		stage4Edges, _, _ = core.SLineEdges(context.Background(), h, 8, core.Config{})
		stage4Nodes = h.NumEdges()
	})
	return stage4Edges, stage4Nodes
}

func BenchmarkStage4Build(b *testing.B) {
	edges, nodes := stage4Input()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Build(nodes, edges, true)
	}
}

func BenchmarkStage4BuildSorted(b *testing.B) {
	edges, nodes := stage4Input()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BuildSorted(nodes, edges, true, par.Options{})
	}
}

// ---- v2 Query API: Execute wrapper overhead vs the bare pipeline ----

// fig8Pipeline is the Fig-8 configuration (2CA, 8 workers, dense
// counters) as a core.PipelineConfig.
func fig8Pipeline(b *testing.B) core.PipelineConfig {
	cfg := cfgFor(b, "2CA")
	cfg.Workers = 8
	return core.PipelineConfig{Core: cfg}
}

// BenchmarkFig8CoreRun drives the Fig-8 query straight through the
// pipeline entry — the baseline the Execute wrapper is measured
// against.
func BenchmarkFig8CoreRun(b *testing.B) {
	h := lj()
	pc := fig8Pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), h, 8, pc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Execute drives the identical query through the v2
// Execute surface (validation, context plumbing, QueryResult
// assembly). The wrapper overhead over BenchmarkFig8CoreRun is the
// price of the unified API and must stay under 2%.
func BenchmarkFig8Execute(b *testing.B) {
	h := lj()
	q := hyperline.Query{
		Hypergraph: h,
		S:          []int{8},
		Options: hyperline.Options{
			Algorithm: hyperline.AlgoHashmap,
			Partition: hyperline.Cyclic,
			Relabel:   hyperline.RelabelAscending,
			Counters:  hyperline.StoreDense,
			Workers:   8,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hyperline.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- I/O sanity bench used in the README quickstart ----

func BenchmarkQuickstartPipeline(b *testing.B) {
	h := experiments.CompBoardAnalog(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hyperline.SLineGraph(h, 2, hyperline.Options{})
		hyperline.SConnectedComponents(res)
	}
}
