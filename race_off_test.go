//go:build !race

package hyperline_test

// raceEnabled reports whether the race detector is active; timing
// bounds in the cancellation tests widen under its instrumentation.
const raceEnabled = false
