// Package hyperline computes high-order (s ≥ 1) line graphs of
// non-uniform hypergraphs and s-measures on them, reproducing the
// framework of Liu et al., "High-order Line Graphs of Non-uniform
// Hypergraphs: Algorithms, Applications, and Experimental Analysis"
// (IPDPS 2022).
//
// Two hyperedges are s-incident when they share at least s vertices;
// the s-line graph Ls(H) has the hyperedges of H as nodes and an edge
// between every s-incident pair, weighted by the overlap size. Dually,
// applying the same computation to H* (the dual hypergraph) yields
// s-clique graphs, which generalize the clique expansion (the 1-clique
// graph).
//
// # Quick start
//
//	h := hyperline.FromEdgeSlices([][]uint32{{0,1,2},{1,2,3},{0,1,2,3,4},{4,5}}, 6)
//	res := hyperline.SLineGraph(h, 2, hyperline.Options{})
//	cc := hyperline.SConnectedComponents(res)
//
// The package is a facade over the internal implementation packages:
// hg (hypergraph CSR substrate), core (the s-overlap algorithms),
// graph (the materialized line graph), algo (s-measures), spectral
// (normalized algebraic connectivity), toplex (Stage-2
// simplification), spgemm (the SpGEMM baseline), gen (synthetic
// dataset generators), hgio (text and binary I/O) and serve (the
// caching query layer behind Session and cmd/hyperlined).
package hyperline

import (
	"hyperline/internal/algo"
	"hyperline/internal/core"
	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/hgio"
	"hyperline/internal/par"
	"hyperline/internal/spectral"
)

// Hypergraph is an immutable hypergraph in CSR form (both the
// edge→vertex and vertex→edge orientations are stored, so the dual view
// is free).
type Hypergraph = hg.Hypergraph

// Builder incrementally assembles a Hypergraph from incidence pairs.
type Builder = hg.Builder

// Stats summarizes a hypergraph (the columns of the paper's Table IV).
type Stats = hg.Stats

// Graph is a weighted undirected graph — the materialized s-line graph.
type Graph = graph.Graph

// Edge is one weighted s-line graph edge {U, V} with overlap weight W.
type Edge = graph.Edge

// Result is the output of SLineGraph: the graph plus the mapping from
// graph nodes back to input hyperedge IDs and per-stage timings.
type Result = core.PipelineResult

// Components is a connected-component labeling.
type Components = algo.Components

// NewBuilder returns a builder with capacity for n incidence pairs.
func NewBuilder(n int) *Builder { return hg.NewBuilder(n) }

// FromEdgeSlices builds a hypergraph where edges[i] lists the member
// vertices of hyperedge i; numVertices may be 0 to infer the vertex
// space from the data.
func FromEdgeSlices(edges [][]uint32, numVertices int) *Hypergraph {
	return hg.FromEdgeSlices(edges, numVertices)
}

// Load reads a hypergraph from a file, selecting the format by
// extension: ".pairs" for "edge vertex" incidence pairs, ".bin" for the
// compact binary CSR dump, anything else (".hgr", ".adj", ".txt") for
// one hyperedge per line.
func Load(path string) (*Hypergraph, error) { return hgio.LoadFile(path) }

// Map loads a hypergraph like Load, but a ".bin" file is mmap'd and its
// arrays aliased in place: loading costs O(pages touched) rather than
// O(bytes), and the dataset may exceed RAM. Call Close on the result
// when done (or let the GC unmap it); text formats fall back to Load.
func Map(path string) (*Hypergraph, error) { return hgio.MapFile(path) }

// Save writes a hypergraph to a file, choosing the format by extension
// as in Load.
func Save(path string, h *Hypergraph) error { return hgio.SaveFile(path, h) }

// ComputeStats derives Table IV-style statistics.
func ComputeStats(name string, h *Hypergraph) Stats { return hg.ComputeStats(name, h) }

// Algorithm selects the s-overlap strategy.
type Algorithm = core.Algorithm

// The s-overlap strategies of the execution engine.
const (
	// AlgoAuto (the default) lets the cost-based planner choose the
	// strategy from the hypergraph's statistics and the query shape.
	// All planner-eligible strategies produce byte-identical
	// exact-weight output, so the choice is invisible to callers.
	AlgoAuto = core.AlgoAuto
	// AlgoSetIntersection is Algorithm 1, the prior state-of-the-art
	// set-intersection baseline (HiPC'21).
	AlgoSetIntersection = core.AlgoSetIntersection
	// AlgoHashmap is Algorithm 2, the paper's hashmap-based algorithm
	// that performs no set intersections.
	AlgoHashmap = core.AlgoHashmap
	// AlgoEnsemble is Algorithm 3: one counting pass serving every
	// requested s value.
	AlgoEnsemble = core.AlgoEnsemble
	// AlgoSpGEMM is the SpGEMM baseline promoted into the pipeline:
	// upper-triangular Gustavson SpGEMM of L = HᵀH + s-filtration.
	AlgoSpGEMM = core.AlgoSpGEMM
)

// Strategy selects the workload distribution (Table III "B"/"C").
type Strategy = par.Strategy

// Workload distribution strategies.
const (
	Blocked = par.Blocked
	Cyclic  = par.Cyclic
)

// CounterStore selects Algorithm 2's overlap-counter storage.
type CounterStore = core.CounterStore

// Counter storage modes (§III-F).
const (
	// StoreAuto (the default) adaptively picks dense or
	// open-addressing thread-local counters from the hypergraph's
	// size and 2-hop frontier.
	StoreAuto = core.StoreAuto
	// StoreMap allocates a fresh hashmap per outer iteration (the
	// paper's dynamic-allocation mode).
	StoreMap = core.MapPerIteration
	// StoreDense uses pre-allocated per-worker dense counter arrays.
	StoreDense = core.TLSDense
	// StoreHash uses pre-allocated per-worker open-addressing tables.
	StoreHash = core.TLSHash
)

// RelabelOrder selects Stage-1 relabel-by-degree (Table III "A"/"D"/"N").
type RelabelOrder = hg.RelabelOrder

// Relabel-by-degree orders.
const (
	RelabelNone       = hg.RelabelNone
	RelabelAscending  = hg.RelabelAscending
	RelabelDescending = hg.RelabelDescending
	// RelabelAuto lets the planner resolve the order from the
	// hypergraph's degree statistics (and, in a Session, from
	// calibrated cost observations). The resolved order is recorded in
	// the result's Plan.
	RelabelAuto = hg.RelabelAuto
)

// Options configures an s-line graph computation. The zero value runs
// the planner-chosen strategy (AlgoAuto) with blocked distribution, no
// relabeling, ID squeezing on, adaptive counter storage (StoreAuto),
// and GOMAXPROCS workers.
type Options struct {
	// Algorithm pins an s-overlap strategy (AlgoHashmap,
	// AlgoSetIntersection, AlgoEnsemble, AlgoSpGEMM) or lets the
	// cost-based planner choose (AlgoAuto, the default).
	Algorithm Algorithm
	// Partition: Blocked (default) or Cyclic workload distribution.
	Partition Strategy
	// Relabel: hyperedge relabel-by-degree order applied during
	// preprocessing.
	Relabel RelabelOrder
	// Workers: parallelism (0 = GOMAXPROCS).
	Workers int
	// Grain: blocked-chunk size (0 = default).
	Grain int
	// Counters selects Algorithm 2's counter storage. The zero value
	// is StoreAuto: dense or open-addressing thread-local counters
	// picked adaptively per run.
	Counters CounterStore
	// TLSDenseCounters forces the dense thread-local counters,
	// overriding Counters.
	//
	// Deprecated: set Counters to StoreDense instead.
	TLSDenseCounters bool
	// ExactWeights makes Algorithm 1 compute exact overlap counts
	// instead of short-circuiting at s (Algorithm 2 is always exact).
	ExactWeights bool
	// Toplex enables Stage-2 simplification to maximal hyperedges.
	Toplex bool
	// ToplexAuto lets the planner decide Stage-2 from the dataset's
	// sampled containment estimate; it overrides Toplex. The resolved
	// choice is recorded in the result's Plan.
	ToplexAuto bool
	// NoSqueeze keeps the raw hyperedge ID space as node IDs instead
	// of compacting it (Stage 4).
	NoSqueeze bool
}

func (o Options) pipeline() core.PipelineConfig {
	store := o.Counters
	if o.TLSDenseCounters {
		store = core.TLSDense
	}
	toplex := core.ToplexFromBool(o.Toplex)
	if o.ToplexAuto {
		toplex = core.ToplexAuto
	}
	return core.PipelineConfig{
		Core: core.Config{
			Algorithm:           o.Algorithm,
			Partition:           o.Partition,
			Relabel:             o.Relabel,
			Workers:             o.Workers,
			Grain:               o.Grain,
			Store:               store,
			DisableShortCircuit: o.ExactWeights,
		},
		Toplex:    toplex,
		NoSqueeze: o.NoSqueeze,
	}
}

func (o Options) par() par.Options {
	return par.Options{Workers: o.Workers, Grain: o.Grain, Strategy: o.Partition}
}

// SLineGraph computes the s-line graph Ls(H) through the full pipeline:
// preprocessing (with optional relabel-by-degree), optional toplex
// simplification, the s-overlap computation, and ID squeezing. Node u
// of the result graph represents input hyperedge res.HyperedgeID(u).
//
// Deprecated: use Execute with a Query — it adds cancellation,
// deadlines, batching, measures, and per-s errors. SLineGraph remains
// as a thin wrapper and produces identical output.
func SLineGraph(h *Hypergraph, s int, opt Options) *Result {
	return legacyBatch(h, KindLine, []int{s}, opt)[clampS(s)]
}

// SLineGraphs computes the s-line graphs for every distinct s in
// sValues as one batched, planner-driven query: preprocessing runs
// once, and the planner decides whether a single ensemble counting pass
// (Algorithm 3) or per-s passes serve the batch. The result maps each
// distinct s (clamped to ≥ 1) to its projection; res.Plan records the
// decision.
//
// Deprecated: use Execute with a Query, whose QueryResult keeps the
// sweep ordered and carries per-s errors and cache flags.
func SLineGraphs(h *Hypergraph, sValues []int, opt Options) map[int]*Result {
	return legacyBatch(h, KindLine, sValues, opt)
}

// SCliqueGraphs computes the s-clique graphs (s-line graphs of the dual
// hypergraph) for every distinct s in sValues, batched like
// SLineGraphs.
//
// Deprecated: use Execute with a Query{Kind: KindClique}.
func SCliqueGraphs(h *Hypergraph, sValues []int, opt Options) map[int]*Result {
	return legacyBatch(h, KindClique, sValues, opt)
}

// SLineGraphEnsemble computes an ensemble of s-line graphs for every
// distinct s in sValues with a single counting pass (Algorithm 3
// pinned). Prefer SLineGraphs, which lets the planner fall back to
// per-s passes when the ensemble's counter memory is unaffordable.
//
// Deprecated: use Execute with Query.Options.Algorithm = AlgoEnsemble.
func SLineGraphEnsemble(h *Hypergraph, sValues []int, opt Options) map[int]*Result {
	opt.Algorithm = AlgoEnsemble
	return legacyBatch(h, KindLine, sValues, opt)
}

// SCliqueGraph computes the s-clique graph: the s-line graph of the
// dual hypergraph, linking vertices of H that share at least s
// hyperedges. The 1-clique graph is the clique expansion (§III-H).
// Node u of the result graph represents input vertex res.HyperedgeID(u)
// (hyperedges of the dual are vertices of H).
//
// Deprecated: use Execute with a Query{Kind: KindClique}.
func SCliqueGraph(h *Hypergraph, s int, opt Options) *Result {
	return legacyBatch(h, KindClique, []int{s}, opt)[clampS(s)]
}

// clampS mirrors the historical v1 leniency: s values below 1 are
// treated as 1.
func clampS(s int) int {
	if s < 1 {
		return 1
	}
	return s
}

// SConnectedComponents computes the s-connected components of an
// s-line graph result (union-find reference implementation). Component
// labels index graph nodes; map through res.HyperedgeID for input IDs.
func SConnectedComponents(res *Result) *Components {
	return algo.ConnectedComponents(res.Graph)
}

// LabelPropagationCC runs the parallel label-propagation connected
// components (LPCC) algorithm benchmarked in the paper's Table V.
func LabelPropagationCC(g *Graph, workers int) *Components {
	return algo.LabelPropagationCC(g, par.Options{Workers: workers})
}

// SBetweenness computes the s-betweenness centrality of every node of
// an s-line graph (Brandes, parallel over sources). Use
// NormalizeBetweenness for [0,1]-scaled scores.
func SBetweenness(res *Result, workers int) []float64 {
	return algo.Betweenness(res.Graph, par.Options{Workers: workers})
}

// NormalizeBetweenness rescales raw betweenness scores by
// 1/((n-1)(n-2)).
func NormalizeBetweenness(scores []float64) []float64 { return algo.Normalize(scores) }

// SDistances returns the s-distances (shortest s-walk lengths) from
// the given node to all nodes; -1 marks unreachable nodes.
func SDistances(g *Graph, src uint32) []int32 { return algo.BFSDistances(g, src) }

// PageRank computes the PageRank vector of a graph (damping 0.85).
func PageRank(g *Graph, workers int) []float64 {
	return algo.PageRank(g, algo.PageRankOptions{Par: par.Options{Workers: workers}})
}

// NormalizedAlgebraicConnectivity returns the second-smallest
// eigenvalue of the normalized Laplacian of the largest connected
// component of g — the per-s connectivity measure of the paper's
// Fig. 6.
func NormalizedAlgebraicConnectivity(g *Graph) float64 {
	return spectral.NormalizedAlgebraicConnectivity(g, spectral.Options{})
}

// SCloseness computes the s-closeness centrality of every node of an
// s-line graph (Wasserman-Faust corrected for disconnected graphs).
func SCloseness(res *Result, workers int) []float64 {
	return algo.ClosenessCentrality(res.Graph, par.Options{Workers: workers})
}

// SHarmonic computes the harmonic centrality of every node of an
// s-line graph, normalized by n-1.
func SHarmonic(res *Result, workers int) []float64 {
	return algo.HarmonicCentrality(res.Graph, par.Options{Workers: workers})
}

// SEccentricities returns the s-eccentricity of every node; the
// maximum is the s-diameter.
func SEccentricities(res *Result, workers int) []int32 {
	return algo.Eccentricities(res.Graph, par.Options{Workers: workers})
}

// SDiameter returns the s-diameter of an s-line graph: the longest
// shortest s-walk between any two s-connected hyperedges.
func SDiameter(res *Result, workers int) int32 {
	var max int32
	for _, e := range algo.Eccentricities(res.Graph, par.Options{Workers: workers}) {
		if e > max {
			max = e
		}
	}
	return max
}

// ClusteringCoefficients returns the local clustering coefficient of
// every node of g.
func ClusteringCoefficients(g *Graph, workers int) []float64 {
	return algo.ClusteringCoefficients(g, par.Options{Workers: workers})
}

// GlobalClusteringCoefficient returns the transitivity of g.
func GlobalClusteringCoefficient(g *Graph, workers int) float64 {
	return algo.GlobalClusteringCoefficient(g, par.Options{Workers: workers})
}

// ParseSValues parses an s-value specification: a single value ("8"),
// a comma-separated list ("1,2,5"), an inclusive range ("2:6"), or any
// mix ("1,4:6,12") — the format the batched query and measure-sweep
// APIs take on the command line and over HTTP.
func ParseSValues(spec string) ([]int, error) { return core.ParseSValues(spec) }

// MaxOverlap returns the maximum pairwise hyperedge overlap of h — the
// largest s for which the s-line graph is non-empty.
func MaxOverlap(h *Hypergraph, workers int) int {
	return core.MaxOverlap(h, core.Config{Workers: workers})
}

// SConnectedComponentsDirect computes the s-connected components of
// the hyperedges without materializing the s-line graph, trading
// repeated overlap counting for O(|E|) memory — useful when the s-line
// graph (e.g. the clique-expansion regime at s=1) is too dense to
// store. The result maps each hyperedge to the minimum hyperedge ID of
// its component.
func SConnectedComponentsDirect(h *Hypergraph, s int) []uint32 {
	return core.SConnectedComponentsDirect(h, s)
}
