package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"hyperline/internal/core"
	"hyperline/internal/experiments"
)

// csvWriter writes one figure's data series as a CSV file in dir,
// ready for plotting. A nil dir disables export.
type csvWriter struct {
	dir string
}

func (c csvWriter) enabled() bool { return c.dir != "" }

func (c csvWriter) write(name string, header []string, rows [][]string) error {
	if !c.enabled() {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (c csvWriter) fig4(d experiments.Fig4Data) error {
	var rows [][]string
	for _, ds := range sortedStringKeys(d.Edges) {
		for _, s := range sortedIntKeys(d.Edges[ds]) {
			rows = append(rows, []string{ds, strconv.Itoa(s), strconv.Itoa(d.Edges[ds][s])})
		}
	}
	return c.write("fig4", []string{"dataset", "s", "edges"}, rows)
}

func (c csvWriter) fig6(d experiments.Fig6Data) error {
	var rows [][]string
	for _, s := range d.SValues {
		rows = append(rows, []string{
			strconv.Itoa(s),
			strconv.FormatFloat(d.Connectivity[s], 'f', 6, 64),
		})
	}
	return c.write("fig6", []string{"s", "normalized_algebraic_connectivity"}, rows)
}

func (c csvWriter) fig7(d experiments.Fig7Data) error {
	var rows [][]string
	for _, ds := range sortedStringKeys(d.Speedup) {
		for _, notation := range core.AllNotations() {
			rows = append(rows, []string{
				ds, notation,
				strconv.FormatFloat(d.Speedup[ds][notation], 'f', 3, 64),
			})
		}
	}
	return c.write("fig7", []string{"dataset", "config", "speedup_vs_1CN"}, rows)
}

func (c csvWriter) fig8(d experiments.Fig8Data) error {
	var rows [][]string
	for _, ds := range sortedStringKeys(d.Runtime) {
		for _, notation := range sortedStringKeys(d.Runtime[ds]) {
			for _, threads := range sortedIntKeys(d.Runtime[ds][notation]) {
				rows = append(rows, []string{
					ds, notation, strconv.Itoa(threads),
					fmt.Sprintf("%.6f", d.Runtime[ds][notation][threads].Seconds()),
				})
			}
		}
	}
	return c.write("fig8", []string{"dataset", "config", "threads", "soverlap_seconds"}, rows)
}

func (c csvWriter) fig9(d experiments.Fig9Data) error {
	var rows [][]string
	for _, s := range sortedIntKeys(d.Runtime) {
		for _, files := range sortedIntKeys(d.Runtime[s]) {
			rows = append(rows, []string{
				strconv.Itoa(s), strconv.Itoa(files),
				fmt.Sprintf("%.6f", d.Runtime[s][files].Seconds()),
			})
		}
	}
	return c.write("fig9", []string{"s", "files", "soverlap_seconds"}, rows)
}

func (c csvWriter) fig10(d experiments.Fig10Data) error {
	var rows [][]string
	for _, notation := range sortedStringKeys(d.Visits) {
		for worker, visits := range d.Visits[notation] {
			rows = append(rows, []string{
				notation, strconv.Itoa(worker), strconv.FormatInt(visits, 10),
			})
		}
	}
	return c.write("fig10", []string{"config", "worker", "wedge_visits"}, rows)
}

func (c csvWriter) fig11(d experiments.Fig11Data) error {
	var rows [][]string
	for _, ds := range sortedStringKeys(d.Runtime) {
		for _, method := range experiments.Fig11Methods {
			for _, s := range sortedIntKeys(d.Runtime[ds][method]) {
				rows = append(rows, []string{
					ds, method, strconv.Itoa(s),
					fmt.Sprintf("%.6f", d.Runtime[ds][method][s].Seconds()),
				})
			}
		}
	}
	return c.write("fig11", []string{"dataset", "method", "s", "seconds"}, rows)
}

func (c csvWriter) table5(d experiments.Table5Data) error {
	var rows [][]string
	for _, ds := range sortedStringKeys(d.Time) {
		for _, s := range sortedIntKeys(d.Time[ds]) {
			rows = append(rows, []string{
				ds, strconv.Itoa(s),
				fmt.Sprintf("%.6f", d.Time[ds][s].Seconds()),
				strconv.Itoa(d.Edges[ds][s]),
			})
		}
	}
	return c.write("table5", []string{"dataset", "s", "end_to_end_seconds", "edges"}, rows)
}
