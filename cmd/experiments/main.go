// Command experiments regenerates the tables and figures of the
// paper's evaluation on the synthetic dataset analogs.
//
// Usage:
//
//	experiments [-scale N] [-workers N] [-threads N] [experiment ...]
//
// Experiments: table1 fig2 fig4 table2 fig5 fig6 imdb table3 table4
// fig7 fig8 fig9 fig10 fig11 table5, or "all" (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperline/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	maxThreads := flag.Int("threads", runtime.GOMAXPROCS(0), "max threads for scaling experiments")
	maxFiles := flag.Int("files", 8, "max DNS file count for weak scaling")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	flag.Parse()
	cw := csvWriter{dir: *csvDir}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{
			"table1", "fig2", "fig4", "table2", "fig5", "fig6", "imdb",
			"table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11", "table5",
		}
	}

	s := experiments.Scale(*scale)
	w := os.Stdout
	for _, name := range names {
		fmt.Fprintf(w, "==== %s ====\n", name)
		t0 := time.Now()
		var csvErr error
		switch name {
		case "table1":
			experiments.Table1(w, s, *workers)
		case "fig2":
			experiments.Fig2(w)
		case "fig4":
			csvErr = cw.fig4(experiments.Fig4(w, s, *workers))
		case "table2":
			experiments.Table2(w, s, *workers)
		case "fig5":
			experiments.Fig5(w, s, *workers)
		case "fig6":
			csvErr = cw.fig6(experiments.Fig6(w, s, *workers))
		case "imdb", "sec5c":
			experiments.IMDB(w, s, *workers)
		case "table3":
			experiments.Table3(w)
		case "table4":
			experiments.Table4(w, s)
		case "fig7":
			csvErr = cw.fig7(experiments.Fig7(w, s, *workers))
		case "fig8":
			csvErr = cw.fig8(experiments.Fig8(w, s, *maxThreads))
		case "fig9":
			csvErr = cw.fig9(experiments.Fig9(w, s, *maxFiles))
		case "fig10":
			csvErr = cw.fig10(experiments.Fig10(w, s, *maxThreads))
		case "fig11":
			csvErr = cw.fig11(experiments.Fig11(w, s, *workers))
		case "table5":
			csvErr = cw.table5(experiments.Table5(w, s, *workers))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		if csvErr != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", csvErr)
			os.Exit(1)
		}
		fmt.Fprintf(w, "(%s took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}
