// Command hyperload drives open-loop load at a hyperlined server and
// reports what the server did under it: latency quantiles of admitted
// requests, shed rate (429s), per-status counts, and a consistency
// check that every answer for the same (kind, s) stayed identical
// across the run. Arrivals are scheduled at a fixed rate regardless of
// response times, so a saturated server shows up as shed traffic and a
// rising queue — not as a politely slowed-down client.
//
// Usage:
//
//	hyperload -url http://localhost:8080 -dataset web [-data web.hgr]
//	          [-targets http://a:8080,http://b:8080]
//	          [-duration 30s] [-rate 200] [-smax 4] [-measure components]
//	          [-mix 8,3,1] [-mix 16,3,0,1] [-max-outstanding 512] [-timeout 30s]
//	          [-seed 1] [-priority interactive] [-label run1] [-o out.json]
//
// -targets switches to multi-node mode: arrivals round-robin across the
// listed bases (replicas, or routers in front of them), -data primes
// every target, and the first-seen consistency map is shared — two
// nodes answering the same question differently counts as a mismatch,
// which is the cross-replica consistency check of a distributed run.
//
// -mix weighs sweep,measure,upload traffic, with an optional fourth
// ingest weight (upload needs -data; the dataset body is re-PUT
// verbatim, so versions churn but answers must not). Ingest traffic
// POSTs seeded insert-only deltas to /v2/ingest: every delta bumps the
// dataset version, and the consistency check is version-aware — two
// answers must agree only when pinned to the same version, so streaming
// churn and answer stability are exercised together. With -data the
// dataset is uploaded before the run starts, so
// hyperload can target a freshly started server. -o writes the report
// in cmd/benchjson's schema (latency quantiles as ns/op entries), ready
// to land in the repo's BENCH_<n>.json series.
//
//	curl -s localhost:8080/metrics | grep hyperline_admission
//
// reconciles the server side: admitted+shed on the server must equal
// the client's 2xx+429 counts (hyperload exits nonzero on mismatches or
// transport errors, so CI can use it as a smoke check).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"hyperline/internal/loadgen"
)

// parseMix accepts sweep,measure,upload weights with an optional
// fourth ingest weight (omitted = 0, the pre-streaming spelling).
func parseMix(v string) (loadgen.Mix, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return loadgen.Mix{}, fmt.Errorf("want sweep,measure,upload[,ingest] weights, got %q", v)
	}
	var w [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f < 0 {
			return loadgen.Mix{}, fmt.Errorf("bad mix weight %q", p)
		}
		w[i] = f
	}
	return loadgen.Mix{Sweep: w[0], Measure: w[1], Upload: w[2], Ingest: w[3]}, nil
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the hyperlined server")
	targets := flag.String("targets", "", "comma-separated base URLs for multi-node mode: arrivals round-robin across them and the first-seen consistency check spans nodes (overrides -url)")
	dataset := flag.String("dataset", "", "dataset name to query (required)")
	data := flag.String("data", "", "adjacency-format dataset file to upload before the run (enables upload traffic)")
	duration := flag.Duration("duration", 30*time.Second, "how long to generate arrivals")
	rate := flag.Float64("rate", 100, "open-loop arrival rate, requests/second")
	smax := flag.Int("smax", 4, "upper bound of drawn s values")
	measureName := flag.String("measure", "components", "measure for measure traffic")
	mixFlag := flag.String("mix", "8,3,1", "traffic mix as sweep,measure,upload[,ingest] weights")
	maxOut := flag.Int("max-outstanding", 512, "client-side in-flight cap; arrivals past it are dropped")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "seed for the arrival draw sequence")
	priority := flag.String("priority", "", "v2 priority for query traffic (interactive|background)")
	label := flag.String("label", "", "label embedded in the JSON report")
	out := flag.String("o", "", "write a benchjson-schema JSON report here")
	flag.Parse()

	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "hyperload: -dataset is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperload: %v\n", err)
		os.Exit(2)
	}

	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, t)
		}
	}

	cfg := loadgen.Config{
		BaseURL:        *url,
		Targets:        targetList,
		Dataset:        *dataset,
		Duration:       *duration,
		Rate:           *rate,
		MaxOutstanding: *maxOut,
		SMax:           *smax,
		Measure:        *measureName,
		Mix:            mix,
		Priority:       *priority,
		Timeout:        *timeout,
		Seed:           *seed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *data != "" {
		body, err := os.ReadFile(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperload: %v\n", err)
			os.Exit(1)
		}
		cfg.UploadBody = body
		if err := loadgen.Prime(ctx, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hyperload: %v\n", err)
			os.Exit(1)
		}
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperload: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, rep.Summary())

	if *out != "" {
		lbl := *label
		if lbl == "" {
			lbl = fmt.Sprintf("hyperload %s rate=%g mix=%s", *dataset, *rate, *mixFlag)
		}
		blob, err := json.MarshalIndent(rep.BenchJSON(lbl, time.Now()), "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperload: writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}

	// Mismatched answers or transport failures mean the run cannot
	// vouch for the server — fail so CI smoke checks catch it. Shed
	// traffic is not a failure: it is the mechanism under test.
	if rep.Mismatches > 0 || rep.TransportErrors > 0 {
		os.Exit(1)
	}
}
