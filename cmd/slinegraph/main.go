// Command slinegraph runs the end-to-end s-line graph framework on a
// hypergraph file: preprocessing, optional toplex simplification, the
// s-overlap computation, ID squeezing, and the requested s-measures.
//
// Usage:
//
//	slinegraph -in data.hgr -s 8 [-config 2BA] [-dual] [-toplex]
//	           [-workers N] [-metrics cc,bc,pagerank,connectivity]
//	           [-out edges.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hyperline"
	"hyperline/internal/core"
	"hyperline/internal/hgio"
)

func main() {
	in := flag.String("in", "", "input hypergraph (.pairs or adjacency lines)")
	sVal := flag.Int("s", 2, "minimum overlap s")
	notation := flag.String("config", "2BA", "algorithm/partition/relabel notation (Table III)")
	dual := flag.Bool("dual", false, "compute the s-clique graph (dual hypergraph)")
	toplex := flag.Bool("toplex", false, "simplify to toplexes first (Stage 2)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	metrics := flag.String("metrics", "cc", "comma-separated: cc, bc, pagerank, connectivity")
	out := flag.String("out", "", "optionally write the s-line edge list here")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "slinegraph: -in is required")
		os.Exit(2)
	}
	cfg, err := core.ParseNotation(*notation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}

	h, err := hgio.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(1)
	}
	if *dual {
		h = h.Dual()
	}
	fmt.Printf("%v\n", hyperline.ComputeStats(*in, h))

	opt := hyperline.Options{
		Algorithm: cfg.Algorithm,
		Partition: cfg.Partition,
		Relabel:   cfg.Relabel,
		Workers:   *workers,
		Toplex:    *toplex,
	}
	res := hyperline.SLineGraph(h, *sVal, opt)
	fmt.Printf("s=%d line graph: %d nodes, %d edges\n", *sVal, res.Graph.NumNodes(), res.Graph.NumEdges())
	fmt.Printf("stages: preprocess=%v toplex=%v s-overlap=%v squeeze=%v total=%v\n",
		res.Timings.Preprocess, res.Timings.Toplex, res.Timings.SOverlap,
		res.Timings.Squeeze, res.Timings.Total())
	fmt.Printf("work: wedges=%d set-intersections=%d pruned=%d\n",
		res.Stats.Wedges, res.Stats.SetIntersections, res.Stats.Pruned)

	for _, m := range strings.Split(*metrics, ",") {
		switch strings.TrimSpace(m) {
		case "", "none":
		case "cc":
			t0 := time.Now()
			cc := hyperline.SConnectedComponents(res)
			fmt.Printf("s-connected components: %d (%v)\n", cc.Count, time.Since(t0))
		case "bc":
			t0 := time.Now()
			bc := hyperline.NormalizeBetweenness(hyperline.SBetweenness(res, *workers))
			type sc struct {
				id    uint32
				score float64
			}
			var top []sc
			for node, b := range bc {
				top = append(top, sc{res.HyperedgeID(uint32(node)), b})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].score > top[j].score })
			fmt.Printf("s-betweenness centrality (%v), top 5:\n", time.Since(t0))
			for i := 0; i < len(top) && i < 5; i++ {
				fmt.Printf("  hyperedge %d: %.4f\n", top[i].id, top[i].score)
			}
		case "pagerank":
			t0 := time.Now()
			pr := hyperline.PageRank(res.Graph, *workers)
			best, bestScore := uint32(0), -1.0
			for node, p := range pr {
				if p > bestScore {
					best, bestScore = res.HyperedgeID(uint32(node)), p
				}
			}
			fmt.Printf("PageRank (%v): top hyperedge %d (%.6f)\n", time.Since(t0), best, bestScore)
		case "connectivity":
			t0 := time.Now()
			lam := hyperline.NormalizedAlgebraicConnectivity(res.Graph)
			fmt.Printf("normalized algebraic connectivity: %.6f (%v)\n", lam, time.Since(t0))
		default:
			fmt.Fprintf(os.Stderr, "slinegraph: unknown metric %q\n", m)
			os.Exit(2)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		for _, e := range res.Graph.Edges() {
			fmt.Fprintf(f, "%d %d %d\n", res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
		}
		fmt.Printf("edge list written to %s\n", *out)
	}
}
