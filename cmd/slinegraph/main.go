// Command slinegraph runs the end-to-end s-line graph framework on a
// hypergraph file: preprocessing, optional toplex simplification, the
// planned s-overlap computation, ID squeezing, and the requested
// s-measures.
//
// Usage:
//
//	slinegraph -in data.hgr -s 8 [-config auto] [-dual] [-toplex]
//	           [-workers N] [-metrics cc,bc,pagerank,connectivity]
//	           [-measure NAME [-param k=v] [-top K]] [-out edges.txt]
//	           [-timeout 30s]
//
// -timeout bounds the whole run via the root context: the pipeline and
// the per-s measure loop abort cooperatively on expiry, partial-sweep
// diagnostics (how many s values completed, elapsed time) go to
// stderr, and the exit status is non-zero.
//
// -s accepts a single value ("8"), a comma-separated list ("1,2,5"),
// an inclusive range ("2:6"), or any mix ("1,4:6"). Multi-s sweeps run
// as one batched query: the planner decides whether a single ensemble
// counting pass or per-s passes serve the sweep. -config takes the
// extended Table III notation (e.g. 2BA, 1CN, ABN, SBN) or the words
// "auto" (default: planner-chosen) and "spgemm"; a relabel position of
// '*' (e.g. "2C*", "AB*") lets the planner resolve relabel-by-degree
// from the dataset's statistics. -toplex likewise takes true, false,
// or auto (planner-resolved from a sampled containment probe). When
// the planner chose any knob, the resolved values and the reason are
// reported on the diagnostics stream as a "knobs:" line.
//
// -measure evaluates one registered Stage-5 measure across the sweep
// and prints a paper-style tab-separated table (scalar measures: one
// row per s; per-node measures: the top K nodes per s) — and nothing
// else — on stdout, so the output can be piped or diffed; dataset
// statistics and per-s diagnostics go to stderr. -param passes
// measure parameters (e.g. -param source=3 for distances); -measure
// help lists the registry.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hyperline"
	"hyperline/internal/core"
	"hyperline/internal/hgio"
	"hyperline/internal/measure"
	"hyperline/internal/par"
)

// paramFlags collects repeated -param k=v arguments.
type paramFlags map[string]string

func (p paramFlags) String() string { return fmt.Sprintf("%d params", len(p)) }

func (p paramFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", v)
	}
	p[k] = val
	return nil
}

// toplexFlag is the tri-state -toplex value: true, false, or auto.
// IsBoolFlag keeps the historical bare form (-toplex ≡ -toplex=true)
// working.
type toplexFlag struct{ mode core.ToplexMode }

func (t *toplexFlag) String() string { return t.mode.String() }

func (t *toplexFlag) Set(v string) error {
	switch v {
	case "true":
		t.mode = core.ToplexOn
	case "false":
		t.mode = core.ToplexOff
	case "auto":
		t.mode = core.ToplexAuto
	default:
		return fmt.Errorf("want true, false, or auto, got %q", v)
	}
	return nil
}

func (t *toplexFlag) IsBoolFlag() bool { return true }

func main() {
	in := flag.String("in", "", "input hypergraph (.pairs or adjacency lines)")
	sSpec := flag.String("s", "2", "minimum overlap s: value, list, or lo:hi range (e.g. 8 or 1,4:6)")
	notation := flag.String("config", "auto", "algorithm/partition/relabel notation (Table III, extended), or auto/spgemm")
	dual := flag.Bool("dual", false, "compute the s-clique graph (dual hypergraph)")
	var toplex toplexFlag
	flag.Var(&toplex, "toplex", "Stage-2 toplex simplification: true, false, or auto (planner-resolved)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	metrics := flag.String("metrics", "cc", "comma-separated: cc, bc, pagerank, connectivity")
	measureName := flag.String("measure", "", "emit an s-sweep table of this registered measure (\"help\" lists them)")
	top := flag.Int("top", 5, "rows per s in per-node measure sweep tables")
	params := paramFlags{}
	flag.Var(params, "param", "measure parameter, as key=value (repeatable)")
	out := flag.String("out", "", "optionally write the s-line edge list(s) here (multi-s sweeps prefix each line with s)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional argument means everything after it was
		// silently dropped by the flag parser — the classic trap is
		// "-toplex auto", which must be spelled "-toplex=auto"
		// (boolean-style flags only bind values with '=').
		fmt.Fprintf(os.Stderr, "slinegraph: unexpected argument %q (boolean-style flags like -toplex take values only as -toplex=auto)\n", flag.Arg(0))
		os.Exit(2)
	}

	ctx := context.Background()
	start := time.Now()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *measureName == "help" {
		for _, info := range measure.Infos() {
			fmt.Printf("%-18s %-10s %s\n", info.Name, info.Cost, info.Doc)
			for _, p := range info.Params {
				fmt.Printf("%-18s   -param %s=... (%s)\n", "", p.Name, p.Doc)
			}
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "slinegraph: -in is required")
		os.Exit(2)
	}
	cfg, err := core.ParseNotation(*notation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}
	sweep, err := core.ParseSValues(*sSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}

	// Resolve the measure and its params before any pipeline work, so
	// a typo fails in milliseconds instead of after a full sweep.
	var sweepMeasure measure.Measure
	var sweepParams measure.Params
	if *measureName != "" {
		if sweepMeasure, err = measure.Get(*measureName); err == nil {
			sweepParams, err = measure.Canonicalize(sweepMeasure, params)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(2)
		}
	}

	// .bin inputs map rather than parse: startup cost is pages touched,
	// and the dataset may exceed RAM. The process exit unmaps.
	h, err := hgio.MapFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(1)
	}
	if *dual {
		h = h.Dual()
	}
	diag := os.Stdout
	if *measureName != "" {
		// The sweep table owns stdout; everything else becomes
		// diagnostics.
		diag = os.Stderr
	}
	fmt.Fprintf(diag, "%v\n", hyperline.ComputeStats(*in, h))

	opt := hyperline.Options{
		Algorithm:  cfg.Algorithm,
		Partition:  cfg.Partition,
		Relabel:    cfg.Relabel,
		Workers:    *workers,
		Toplex:     toplex.mode == core.ToplexOn,
		ToplexAuto: toplex.mode == core.ToplexAuto,
	}
	distinct := core.DistinctS(sweep)
	qr, err := hyperline.Execute(ctx, hyperline.Query{Hypergraph: h, S: sweep, Options: opt})
	if err != nil {
		if isContextErr(err) {
			// The batched Stage 1-4 pass is all-or-nothing: no s value
			// completed.
			timeoutDiag(start, 0, len(distinct), *timeout, err)
		}
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}
	results := make(map[int]*hyperline.Result, len(qr.Entries))
	for _, e := range qr.Entries {
		results[e.S] = e.Result
	}

	if sweepMeasure != nil {
		done, err := emitSweepTable(ctx, results, distinct, sweepMeasure, sweepParams, *top, *workers)
		if err != nil {
			if isContextErr(err) {
				timeoutDiag(start, done, len(distinct), *timeout, err)
			}
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(2)
		}
	}

	var outFile *os.File
	var outBuf *bufio.Writer
	if *out != "" {
		if outFile, err = os.Create(*out); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(1)
		}
		outBuf = bufio.NewWriter(outFile)
	}

	multi := len(distinct) > 1
	for k, sVal := range distinct {
		if err := ctx.Err(); err != nil {
			// Everything is computed by now — only the reporting loop
			// is being cut off. Flush what was already written so the
			// partial -out file really is trustworthy up to this s.
			if outBuf != nil {
				outBuf.Flush()
				outFile.Close()
			}
			timeoutDiag(start, k, len(distinct), *timeout, err)
		}
		res := results[sVal]
		fmt.Fprintf(diag, "s=%d line graph: %d nodes, %d edges\n", sVal, res.Graph.NumNodes(), res.Graph.NumEdges())
		fmt.Fprintf(diag, "plan: %s (%s)\n", res.Plan.Strategy, res.Plan.Reason)
		if res.Plan.KnobReason != "" {
			fmt.Fprintf(diag, "knobs: relabel=%s toplex=%t (%s)\n",
				res.Plan.Relabel, res.Plan.Toplex, res.Plan.KnobReason)
		}
		fmt.Fprintf(diag, "stages: preprocess=%v toplex=%v s-overlap=%v squeeze=%v total=%v\n",
			res.Timings.Preprocess, res.Timings.Toplex, res.Timings.SOverlap,
			res.Timings.Squeeze, res.Timings.Total())
		fmt.Fprintf(diag, "work: wedges=%d set-intersections=%d pruned=%d\n",
			res.Stats.Wedges, res.Stats.SetIntersections, res.Stats.Pruned)
		if *measureName == "" {
			if err := printMetrics(res, *metrics, *workers); err != nil {
				fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
				os.Exit(2)
			}
		}
		if outBuf != nil {
			for _, e := range res.Graph.Edges() {
				if multi {
					fmt.Fprintf(outBuf, "%d %d %d %d\n", sVal, res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
				} else {
					fmt.Fprintf(outBuf, "%d %d %d\n", res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
				}
			}
		}
	}
	if outFile != nil {
		if err := outBuf.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: closing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(diag, "edge list written to %s\n", *out)
	}
}

// isContextErr reports whether err is a cancellation or deadline
// failure of the root context.
func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// timeoutDiag prints partial-sweep diagnostics to stderr on context
// expiry and exits non-zero: how far the sweep got, how long it ran,
// and the configured limit — the operator-facing trail of a query that
// was deliberately cut off.
func timeoutDiag(start time.Time, completed, total int, timeout time.Duration, err error) {
	what := "cancelled"
	if errors.Is(err, context.DeadlineExceeded) {
		what = "timed out"
	}
	fmt.Fprintf(os.Stderr, "slinegraph: %s after %v (limit %v): %d/%d s values completed; partial output above this line is trustworthy, the rest was aborted\n",
		what, time.Since(start).Round(time.Millisecond), timeout, completed, total)
	os.Exit(1)
}

// emitSweepTable evaluates the resolved measure on every projection of
// the sweep and writes the paper-style table to stdout — the same
// code path the golden-file tests pin byte-for-byte. It returns how
// many s values finished evaluating, for partial-sweep diagnostics
// when the context expires mid-sweep.
func emitSweepTable(ctx context.Context, results map[int]*hyperline.Result, distinct []int, m measure.Measure, p measure.Params, top, workers int) (int, error) {
	rows := make([]measure.SweepRow, 0, len(distinct))
	for completed, sVal := range distinct {
		res := results[sVal]
		val, err := m.Compute(ctx, res, p, par.Options{Workers: workers})
		if err != nil {
			return completed, fmt.Errorf("s=%d: %w", sVal, err)
		}
		rows = append(rows, measure.SweepRow{
			S:            sVal,
			Nodes:        res.Graph.NumNodes(),
			Edges:        res.Graph.NumEdges(),
			HyperedgeIDs: res.HyperedgeIDs,
			Value:        val,
		})
	}
	return len(distinct), measure.WriteSweepTable(os.Stdout, m.Name(), p, top, rows)
}

func printMetrics(res *hyperline.Result, metrics string, workers int) error {
	for _, m := range strings.Split(metrics, ",") {
		switch strings.TrimSpace(m) {
		case "", "none":
		case "cc":
			t0 := time.Now()
			cc := hyperline.SConnectedComponents(res)
			fmt.Printf("s-connected components: %d (%v)\n", cc.Count, time.Since(t0))
		case "bc":
			t0 := time.Now()
			bc := hyperline.NormalizeBetweenness(hyperline.SBetweenness(res, workers))
			type sc struct {
				id    uint32
				score float64
			}
			var top []sc
			for node, b := range bc {
				top = append(top, sc{res.HyperedgeID(uint32(node)), b})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].score > top[j].score })
			fmt.Printf("s-betweenness centrality (%v), top 5:\n", time.Since(t0))
			for i := 0; i < len(top) && i < 5; i++ {
				fmt.Printf("  hyperedge %d: %.4f\n", top[i].id, top[i].score)
			}
		case "pagerank":
			t0 := time.Now()
			pr := hyperline.PageRank(res.Graph, workers)
			best, bestScore := uint32(0), -1.0
			for node, p := range pr {
				if p > bestScore {
					best, bestScore = res.HyperedgeID(uint32(node)), p
				}
			}
			fmt.Printf("PageRank (%v): top hyperedge %d (%.6f)\n", time.Since(t0), best, bestScore)
		case "connectivity":
			t0 := time.Now()
			lam := hyperline.NormalizedAlgebraicConnectivity(res.Graph)
			fmt.Printf("normalized algebraic connectivity: %.6f (%v)\n", lam, time.Since(t0))
		default:
			return fmt.Errorf("unknown metric %q", m)
		}
	}
	return nil
}
