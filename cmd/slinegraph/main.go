// Command slinegraph runs the end-to-end s-line graph framework on a
// hypergraph file: preprocessing, optional toplex simplification, the
// planned s-overlap computation, ID squeezing, and the requested
// s-measures.
//
// Usage:
//
//	slinegraph -in data.hgr -s 8 [-config auto] [-dual] [-toplex]
//	           [-workers N] [-metrics cc,bc,pagerank,connectivity]
//	           [-out edges.txt]
//
// -s accepts a single value ("8"), a comma-separated list ("1,2,5"),
// an inclusive range ("2:6"), or any mix ("1,4:6"). Multi-s sweeps run
// as one batched query: the planner decides whether a single ensemble
// counting pass or per-s passes serve the sweep. -config takes the
// extended Table III notation (e.g. 2BA, 1CN, ABN, SBN) or the words
// "auto" (default: planner-chosen) and "spgemm".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hyperline"
	"hyperline/internal/core"
	"hyperline/internal/hgio"
)

func main() {
	in := flag.String("in", "", "input hypergraph (.pairs or adjacency lines)")
	sSpec := flag.String("s", "2", "minimum overlap s: value, list, or lo:hi range (e.g. 8 or 1,4:6)")
	notation := flag.String("config", "auto", "algorithm/partition/relabel notation (Table III, extended), or auto/spgemm")
	dual := flag.Bool("dual", false, "compute the s-clique graph (dual hypergraph)")
	toplex := flag.Bool("toplex", false, "simplify to toplexes first (Stage 2)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	metrics := flag.String("metrics", "cc", "comma-separated: cc, bc, pagerank, connectivity")
	out := flag.String("out", "", "optionally write the s-line edge list(s) here (multi-s sweeps prefix each line with s)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "slinegraph: -in is required")
		os.Exit(2)
	}
	cfg, err := core.ParseNotation(*notation)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}
	sweep, err := core.ParseSValues(*sSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(2)
	}

	h, err := hgio.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
		os.Exit(1)
	}
	if *dual {
		h = h.Dual()
	}
	fmt.Printf("%v\n", hyperline.ComputeStats(*in, h))

	opt := hyperline.Options{
		Algorithm: cfg.Algorithm,
		Partition: cfg.Partition,
		Relabel:   cfg.Relabel,
		Workers:   *workers,
		Toplex:    *toplex,
	}
	results := hyperline.SLineGraphs(h, sweep, opt)
	distinct := core.DistinctS(sweep)

	var outFile *os.File
	var outBuf *bufio.Writer
	if *out != "" {
		if outFile, err = os.Create(*out); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(1)
		}
		outBuf = bufio.NewWriter(outFile)
	}

	multi := len(distinct) > 1
	for _, sVal := range distinct {
		res := results[sVal]
		fmt.Printf("s=%d line graph: %d nodes, %d edges\n", sVal, res.Graph.NumNodes(), res.Graph.NumEdges())
		fmt.Printf("plan: %s (%s)\n", res.Plan.Strategy, res.Plan.Reason)
		fmt.Printf("stages: preprocess=%v toplex=%v s-overlap=%v squeeze=%v total=%v\n",
			res.Timings.Preprocess, res.Timings.Toplex, res.Timings.SOverlap,
			res.Timings.Squeeze, res.Timings.Total())
		fmt.Printf("work: wedges=%d set-intersections=%d pruned=%d\n",
			res.Stats.Wedges, res.Stats.SetIntersections, res.Stats.Pruned)
		if err := printMetrics(res, *metrics, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: %v\n", err)
			os.Exit(2)
		}
		if outBuf != nil {
			for _, e := range res.Graph.Edges() {
				if multi {
					fmt.Fprintf(outBuf, "%d %d %d %d\n", sVal, res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
				} else {
					fmt.Fprintf(outBuf, "%d %d %d\n", res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
				}
			}
		}
	}
	if outFile != nil {
		if err := outBuf.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "slinegraph: closing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("edge list written to %s\n", *out)
	}
}

func printMetrics(res *hyperline.Result, metrics string, workers int) error {
	for _, m := range strings.Split(metrics, ",") {
		switch strings.TrimSpace(m) {
		case "", "none":
		case "cc":
			t0 := time.Now()
			cc := hyperline.SConnectedComponents(res)
			fmt.Printf("s-connected components: %d (%v)\n", cc.Count, time.Since(t0))
		case "bc":
			t0 := time.Now()
			bc := hyperline.NormalizeBetweenness(hyperline.SBetweenness(res, workers))
			type sc struct {
				id    uint32
				score float64
			}
			var top []sc
			for node, b := range bc {
				top = append(top, sc{res.HyperedgeID(uint32(node)), b})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].score > top[j].score })
			fmt.Printf("s-betweenness centrality (%v), top 5:\n", time.Since(t0))
			for i := 0; i < len(top) && i < 5; i++ {
				fmt.Printf("  hyperedge %d: %.4f\n", top[i].id, top[i].score)
			}
		case "pagerank":
			t0 := time.Now()
			pr := hyperline.PageRank(res.Graph, workers)
			best, bestScore := uint32(0), -1.0
			for node, p := range pr {
				if p > bestScore {
					best, bestScore = res.HyperedgeID(uint32(node)), p
				}
			}
			fmt.Printf("PageRank (%v): top hyperedge %d (%.6f)\n", time.Since(t0), best, bestScore)
		case "connectivity":
			t0 := time.Now()
			lam := hyperline.NormalizedAlgebraicConnectivity(res.Graph)
			fmt.Printf("normalized algebraic connectivity: %.6f (%v)\n", lam, time.Since(t0))
		default:
			return fmt.Errorf("unknown metric %q", m)
		}
	}
	return nil
}
