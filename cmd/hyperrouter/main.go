// Command hyperrouter is the stateless scatter-gather tier in front of
// a fleet of hyperlined replicas: it owns the replica map (consistent
// hashing on dataset names, -replication owners per dataset), fans each
// POST /v2/query s-list out to the healthy owners, and merges the per-s
// entries back in order. The request deadline travels with the work —
// every sub-request carries the *remaining* budget as timeout_ms, so a
// short client timeout expires on the replica, never as a hung router.
// Replica 429/Retry-After answers fail over to the next owner and, when
// every owner sheds, surface as a router-level 429 with the largest
// Retry-After; a shard that dawdles past -hedge-after is raced against
// the next owner and the first answer wins.
//
// Usage:
//
//	hyperrouter [-addr :8090] [-replicas http://a:8080,http://b:8080]
//	            [-replication 2] [-hedge-after 0]
//	            [-health-interval 2s] [-request-timeout 0]
//	            [-drain-timeout 10s]
//
// Replicas may also self-register (hyperlined -register/-advertise) via
// POST /v1/replicas; GET /v1/replicas shows the member list and health.
// The router keeps no dataset bytes and no caches: uploads
// (PUT /v1/datasets/{name}) replicate to the dataset's owners, queries
// pass replica answers through verbatim, and GET /metrics exposes the
// fan-out/hedge/retry/shed counter families.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyperline/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated hyperlined base URLs (replicas may also self-register via POST /v1/replicas)")
	replication := flag.Int("replication", 2, "replicas owning each dataset (clamped to the cluster size)")
	hedgeAfter := flag.Duration("hedge-after", 0, "per-shard latency budget before a hedged duplicate goes to the next owner (0 = no hedging)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica /healthz probe period")
	reqTimeout := flag.Duration("request-timeout", 0, "bound on proxied queries without their own shorter timeout_ms (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
	flag.Parse()

	var seed []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			seed = append(seed, u)
		}
	}
	rt := cluster.NewRouter(cluster.Config{
		Replicas:       seed,
		Replication:    *replication,
		HedgeAfter:     *hedgeAfter,
		HealthInterval: *healthInterval,
		RequestTimeout: *reqTimeout,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hyperrouter listening on %s (%d seed replicas, replication %d)", *addr, len(seed), *replication)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("hyperrouter: shutdown signal received, draining for up to %v", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			log.Printf("hyperrouter: drain window expired: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("hyperrouter: drained cleanly")
	}
}
