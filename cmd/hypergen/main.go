// Command hypergen generates synthetic hypergraph datasets in the
// shapes of the paper's evaluation inputs and writes them as text
// files readable by hyperline.Load / cmd/slinegraph.
//
// Usage:
//
//	hypergen -kind zipf -vertices 10000 -edges 5000 -out data.hgr
//	hypergen -kind community -vertices 30000 -communities 3000 -out lj.pairs
//	hypergen -kind dns -files 4 -out dns.hgr
//	hypergen -kind authors|genes|disease|actors -out x.hgr
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperline/internal/gen"
	"hyperline/internal/hg"
	"hyperline/internal/hgio"
)

func main() {
	kind := flag.String("kind", "zipf", "generator: zipf, community, dns, authors, genes, disease, actors")
	out := flag.String("out", "", "output path (.pairs = incidence pairs; otherwise adjacency lines)")
	seed := flag.Int64("seed", 42, "random seed")
	vertices := flag.Int("vertices", 10000, "number of vertices")
	edges := flag.Int("edges", 5000, "number of hyperedges (zipf)")
	meanSize := flag.Int("meansize", 4, "mean hyperedge size (zipf)")
	skew := flag.Float64("skew", 1.2, "Zipf skew exponent (zipf)")
	communities := flag.Int("communities", 1000, "communities (community)")
	commSize := flag.Int("commsize", 10, "mean community size (community)")
	edgesPer := flag.Int("edgesper", 4, "hyperedges per community (community)")
	files := flag.Int("files", 4, "file count (dns)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "hypergen: -out is required")
		os.Exit(2)
	}

	var h *hg.Hypergraph
	switch *kind {
	case "zipf":
		h = gen.Zipf(gen.ZipfConfig{
			Seed: *seed, NumVertices: *vertices, NumEdges: *edges,
			MeanEdgeSize: *meanSize, Skew: *skew,
		})
	case "community":
		h = gen.Community(gen.CommunityConfig{
			Seed: *seed, NumVertices: *vertices, NumCommunities: *communities,
			MeanCommunitySize: *commSize, EdgesPerCommunity: *edgesPer,
		})
	case "dns":
		h = gen.DNSLike(gen.DNSConfig{Seed: *seed, Files: *files})
	case "authors":
		h = gen.AuthorPaper(gen.AuthorPaperConfig{
			Seed: *seed, NumAuthors: *vertices, NumClusters: *communities,
			ClusterSize: 4, MaxClusterSize: 20, PapersPerCluster: 8,
		})
	case "genes":
		h = gen.GeneCondition(gen.GeneConditionConfig{
			Seed: *seed, NumConditions: 201, NumGenes: *edges, Hubs: 6, HubShared: 110,
		})
	case "disease":
		h = gen.GeneDisease(gen.GeneDiseaseConfig{
			Seed: *seed, NumGenes: *vertices, NumDiseases: *edges, HubDiseases: 8,
		})
	case "actors":
		h = gen.ActorMovie(gen.ActorMovieConfig{
			Seed: *seed, NumMovies: *vertices, NumActors: *edges,
			GroupSizes: []int{5, 2, 2, 2}, SharedMovies: 101,
		})
	default:
		fmt.Fprintf(os.Stderr, "hypergen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := hgio.SaveFile(*out, h); err != nil {
		fmt.Fprintf(os.Stderr, "hypergen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%v\n", hg.ComputeStats(*out, h))
}
