// Command benchjson converts `go test -bench` output into a compact
// JSON report so the repository's performance trajectory can be tracked
// across PRs (BENCH_<n>.json files at the repo root):
//
//	go test -run '^$' -bench . -benchtime 3x . | go run ./cmd/benchjson -o BENCH_1.json -label "PR 1"
//
// Repeated runs of the same benchmark (-count > 1) are aggregated to
// their minimum ns/op — the conventional steady-state estimate.
//
// With -baseline, the fresh report is also compared against a previous
// report file: every shared benchmark prints its ns/op delta, and
// benchmarks present on only one side are called out. A positive
// -threshold (percent) turns the comparison into a gate — any shared
// benchmark slower than baseline by more than the threshold makes the
// command exit nonzero (CI runs it warn-only by leaving -threshold 0):
//
//	go test -run '^$' -bench . -benchtime 3x . | \
//	    go run ./cmd/benchjson -baseline BENCH_6.json -threshold 25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// benchLine matches e.g.
//
//	BenchmarkFig8Threads8-8   	       3	 293118511 ns/op	 1234 B/op	 5 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type report struct {
	Label      string    `json:"label,omitempty"`
	Date       string    `json:"date"`
	GoOS       string    `json:"goos,omitempty"`
	GoArch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []*result `json:"benchmarks"`
}

// delta is one baseline comparison row.
type delta struct {
	name     string
	baseNs   float64
	newNs    float64
	pct      float64 // (new-base)/base * 100, valid when both sides exist
	regress  bool    // pct exceeds the gate threshold
	oneSided bool    // present on only one side
	newOnly  bool    // oneSided: true = no baseline entry, false = not in fresh run
}

// compare joins a fresh report against a baseline by benchmark name.
// thresholdPct <= 0 disables the regression flag (report-only mode).
// Rows present on only one side are reported, never gated on, and null
// entries in a damaged or hand-edited baseline are skipped outright —
// only a genuine shared-row slowdown can fail the gate.
func compare(baseline, fresh *report, thresholdPct float64) (rows []delta, regressed bool) {
	base := map[string]*result{}
	for _, r := range baseline.Benchmarks {
		if r == nil {
			continue
		}
		base[r.Name] = r
	}
	seen := map[string]bool{}
	for _, r := range fresh.Benchmarks {
		if r == nil {
			continue
		}
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			rows = append(rows, delta{name: r.Name, newNs: r.NsPerOp, oneSided: true, newOnly: true})
			continue
		}
		if b.NsPerOp == 0 {
			// A zero-valued baseline (synthetic rows can be): no ratio to
			// take, so report both sides without a percentage.
			rows = append(rows, delta{name: r.Name, baseNs: 0, newNs: r.NsPerOp, oneSided: true})
			continue
		}
		d := delta{
			name:   r.Name,
			baseNs: b.NsPerOp,
			newNs:  r.NsPerOp,
			pct:    (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100,
		}
		if thresholdPct > 0 && d.pct > thresholdPct {
			d.regress = true
			regressed = true
		}
		rows = append(rows, d)
	}
	for _, r := range baseline.Benchmarks {
		if r != nil && !seen[r.Name] {
			rows = append(rows, delta{name: r.Name, baseNs: r.NsPerOp, oneSided: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows, regressed
}

// printDeltas renders the comparison table to w.
func printDeltas(w io.Writer, baselinePath string, rows []delta) {
	fmt.Fprintf(w, "\nvs %s:\n", baselinePath)
	for _, d := range rows {
		switch {
		case d.oneSided && d.newOnly:
			fmt.Fprintf(w, "  %-50s %14.0f ns/op  (new, no baseline)\n", d.name, d.newNs)
		case d.oneSided && d.newNs != 0:
			fmt.Fprintf(w, "  %-50s %14.0f -> %14.0f ns/op  (baseline 0, no ratio)\n", d.name, d.baseNs, d.newNs)
		case d.oneSided:
			fmt.Fprintf(w, "  %-50s %14.0f ns/op  (baseline only, not run)\n", d.name, d.baseNs)
		default:
			mark := ""
			if d.regress {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "  %-50s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", d.name, d.baseNs, d.newNs, d.pct, mark)
		}
	}
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	baseline := flag.String("baseline", "", "previous report to diff against (prints per-benchmark ns/op deltas)")
	threshold := flag.Float64("threshold", 0, "max tolerated ns/op regression vs -baseline, in percent; exceeded = exit 1 (0 = warn-only)")
	flag.Parse()

	rep := report{Label: *label, Date: time.Now().UTC().Format(time.RFC3339), Benchmarks: []*result{}}
	byName := map[string]*result{}
	meta := regexp.MustCompile(`^(goos|goarch|cpu): (.*)$`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		if m := meta.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				rep.GoOS = m[2]
			case "goarch":
				rep.GoArch = m[2]
			case "cpu":
				rep.CPU = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := byName[m[1]]
		if r == nil {
			r = &result{Name: m[1], NsPerOp: ns, Iters: iters}
			byName[m[1]] = r
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
		r.Runs++
		if ns < r.NsPerOp || r.Runs == 1 {
			r.NsPerOp = ns
			r.Iters = iters
		}
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			if r.BytesPerOp == 0 || b < r.BytesPerOp {
				r.BytesPerOp = b
			}
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			if r.AllocsPerOp == 0 || a < r.AllocsPerOp {
				r.AllocsPerOp = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		// An unreadable or unparseable baseline is a warning, never a
		// failure: only a genuine regression may exit nonzero.
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: skipping baseline compare:", err)
			return
		}
		var prev report
		if err := json.Unmarshal(data, &prev); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: skipping baseline compare:", err)
			return
		}
		rows, regressed := compare(&prev, &rep, *threshold)
		printDeltas(os.Stdout, *baseline, rows)
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: regression past %.1f%% threshold vs %s\n", *threshold, *baseline)
			os.Exit(1)
		}
	}
}
