// Command benchjson converts `go test -bench` output into a compact
// JSON report so the repository's performance trajectory can be tracked
// across PRs (BENCH_<n>.json files at the repo root):
//
//	go test -run '^$' -bench . -benchtime 3x . | go run ./cmd/benchjson -o BENCH_1.json -label "PR 1"
//
// Repeated runs of the same benchmark (-count > 1) are aggregated to
// their minimum ns/op — the conventional steady-state estimate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// benchLine matches e.g.
//
//	BenchmarkFig8Threads8-8   	       3	 293118511 ns/op	 1234 B/op	 5 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type report struct {
	Label      string    `json:"label,omitempty"`
	Date       string    `json:"date"`
	GoOS       string    `json:"goos,omitempty"`
	GoArch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []*result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	flag.Parse()

	rep := report{Label: *label, Date: time.Now().UTC().Format(time.RFC3339), Benchmarks: []*result{}}
	byName := map[string]*result{}
	meta := regexp.MustCompile(`^(goos|goarch|cpu): (.*)$`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		if m := meta.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				rep.GoOS = m[2]
			case "goarch":
				rep.GoArch = m[2]
			case "cpu":
				rep.CPU = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := byName[m[1]]
		if r == nil {
			r = &result{Name: m[1], NsPerOp: ns, Iters: iters}
			byName[m[1]] = r
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
		r.Runs++
		if ns < r.NsPerOp || r.Runs == 1 {
			r.NsPerOp = ns
			r.Iters = iters
		}
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			if r.BytesPerOp == 0 || b < r.BytesPerOp {
				r.BytesPerOp = b
			}
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			if r.AllocsPerOp == 0 || a < r.AllocsPerOp {
				r.AllocsPerOp = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
