package main

import (
	"strings"
	"testing"
)

func rep(pairs ...any) *report {
	r := &report{}
	for i := 0; i < len(pairs); i += 2 {
		r.Benchmarks = append(r.Benchmarks, &result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareDeltasAndThreshold(t *testing.T) {
	base := rep("BenchmarkA", 100.0, "BenchmarkB", 200.0, "BenchmarkGone", 50.0)
	fresh := rep("BenchmarkA", 150.0, "BenchmarkB", 190.0, "BenchmarkNew", 10.0)

	// Report-only mode flags nothing, whatever the deltas.
	rows, regressed := compare(base, fresh, 0)
	if regressed {
		t.Fatal("threshold 0 must never gate")
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (two shared, one new, one gone)", len(rows))
	}

	// A 25%% gate: A is +50%% (regression), B is -5%% (fine).
	rows, regressed = compare(base, fresh, 25)
	if !regressed {
		t.Fatal("a +50%% delta must trip a 25%% threshold")
	}
	byName := map[string]delta{}
	for _, d := range rows {
		byName[d.name] = d
	}
	if d := byName["BenchmarkA"]; !d.regress || d.pct != 50 {
		t.Fatalf("BenchmarkA: %+v, want regress at +50%%", d)
	}
	if d := byName["BenchmarkB"]; d.regress || d.pct != -5 {
		t.Fatalf("BenchmarkB: %+v, want -5%% and no regression", d)
	}
	if d := byName["BenchmarkNew"]; !d.oneSided || !d.newOnly {
		t.Fatalf("BenchmarkNew: %+v, want one-sided new entry", d)
	}
	if d := byName["BenchmarkGone"]; !d.oneSided || d.newOnly || d.newNs != 0 {
		t.Fatalf("BenchmarkGone: %+v, want one-sided baseline-only entry", d)
	}

	// A zero-valued baseline row (synthetic metrics) must not gate or
	// divide by zero, and must not masquerade as a new benchmark.
	zrows, zregressed := compare(rep("BenchmarkZero", 0.0), rep("BenchmarkZero", 5.0), 25)
	if zregressed {
		t.Fatal("zero baseline must not gate")
	}
	if d := zrows[0]; !d.oneSided || d.newOnly || d.newNs != 5 {
		t.Fatalf("zero baseline row: %+v", d)
	}

	// Improvements never gate, even past the threshold magnitude.
	if _, regressed := compare(fresh, base, 25); regressed {
		t.Fatal("a faster run must not be flagged as a regression")
	}

	var sb strings.Builder
	printDeltas(&sb, "BENCH.json", rows)
	out := sb.String()
	for _, want := range []string{"REGRESSION", "BenchmarkNew", "no baseline", "baseline only", "+50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta table missing %q:\n%s", want, out)
		}
	}
}

// TestCompareTolerantOfDamagedBaseline: a baseline that predates newly
// added benchmarks, carries null rows (hand-edited or disk-damaged
// JSON), or has no benchmarks at all must compare without panicking and
// must not gate — only genuine shared-row regressions exit nonzero.
func TestCompareTolerantOfDamagedBaseline(t *testing.T) {
	fresh := rep("BenchmarkOld", 90.0, "BenchmarkNewThing", 50.0)

	// Null rows on either side are skipped, not dereferenced.
	damaged := rep("BenchmarkOld", 100.0)
	damaged.Benchmarks = append([]*result{nil}, append(damaged.Benchmarks, nil)...)
	rows, regressed := compare(damaged, fresh, 25)
	if regressed {
		t.Fatal("null baseline rows must not gate")
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (nulls skipped)", len(rows))
	}
	holed := rep("BenchmarkOld", 90.0)
	holed.Benchmarks = append(holed.Benchmarks, nil)
	if _, regressed := compare(damaged, holed, 25); regressed {
		t.Fatal("null fresh rows must not gate")
	}

	// An empty baseline makes every fresh row one-sided: reported, never
	// gated, regardless of threshold.
	rows, regressed = compare(&report{}, fresh, 25)
	if regressed {
		t.Fatal("an empty baseline must never gate")
	}
	for _, d := range rows {
		if !d.oneSided || !d.newOnly {
			t.Fatalf("row %+v, want one-sided new entry against an empty baseline", d)
		}
	}

	// And a genuine regression still gates through the tolerance paths.
	if _, regressed := compare(damaged, rep("BenchmarkOld", 200.0), 25); !regressed {
		t.Fatal("a real +100%% slowdown must still trip the gate")
	}
}
