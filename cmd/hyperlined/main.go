// Command hyperlined is a long-running s-line-graph query server: it
// keeps named hypergraph datasets in memory and serves s-line / s-clique
// graph projections and s-measures over HTTP/JSON, with an LRU result
// cache and singleflight deduplication so concurrent identical requests
// run the five-stage pipeline once.
//
// Usage:
//
//	hyperlined [-addr :8080] [-cache 128] [-measure-cache 1024]
//	           [-load name=path ...] [-warmup 1:4]
//
// Each -load registers a dataset at startup (format by extension:
// ".pairs", ".bin", or adjacency lines); -warmup precomputes the given
// s-sweep (a value, comma list, or lo:hi range, e.g. "1,4:8") for every
// loaded dataset as one batched planner-driven pass.
//
// Endpoints (see internal/serve.NewHandler):
//
//	curl -X PUT --data-binary @data.hgr 'localhost:8080/v1/datasets/web'
//	curl 'localhost:8080/v1/datasets/web/slinegraph?s=4'
//	curl 'localhost:8080/v1/datasets/web/components?s=4'
//	curl 'localhost:8080/v1/datasets/web/measures?s=1:4&measure=diameter'
//	curl 'localhost:8080/v1/measures'
//	curl 'localhost:8080/v1/cache'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"hyperline/internal/core"
	"hyperline/internal/serve"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []struct{ name, path string }

func (l *loadFlags) String() string { return fmt.Sprintf("%d datasets", len(*l)) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", serve.DefaultCacheEntries, "LRU capacity in cached pipeline results")
	mcache := flag.Int("measure-cache", serve.DefaultMeasureCacheEntries, "LRU capacity in cached measure values")
	warmup := flag.String("warmup", "", "comma-separated s values to precompute for every loaded dataset")
	var loads loadFlags
	flag.Var(&loads, "load", "dataset to register at startup, as name=path (repeatable)")
	flag.Parse()

	svc := serve.New(serve.Config{CacheEntries: *cache, MeasureCacheEntries: *mcache})
	for _, l := range loads {
		if err := svc.Load(l.name, l.path); err != nil {
			log.Fatalf("hyperlined: loading %s: %v", l.name, err)
		}
		stats, _ := svc.Stats(l.name)
		log.Printf("loaded %v", stats)
	}

	if *warmup != "" {
		sweep, err := core.ParseSValues(*warmup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperlined: bad -warmup value: %v\n", err)
			os.Exit(2)
		}
		for _, d := range svc.Datasets() {
			n, _, err := svc.Warmup(d.Name, false, sweep, core.PipelineConfig{})
			if err != nil {
				log.Fatalf("hyperlined: warmup %s: %v", d.Name, err)
			}
			log.Printf("warmed %s: %d projections (s in %v)", d.Name, n, sweep)
		}
	}

	log.Printf("hyperlined listening on %s (cache capacity %d)", *addr, *cache)
	if err := http.ListenAndServe(*addr, serve.NewHandler(svc)); err != nil {
		log.Fatal(err)
	}
}
