// Command hyperlined is a long-running s-line-graph query server: it
// keeps named hypergraph datasets in memory and serves s-line / s-clique
// graph projections and s-measures over HTTP/JSON, with an LRU result
// cache and singleflight deduplication so concurrent identical requests
// run the five-stage pipeline once.
//
// Usage:
//
//	hyperlined [-addr :8080] [-cache 128] [-measure-cache 1024]
//	           [-load name=path ...] [-warmup 1:4]
//	           [-request-timeout 30s] [-drain-timeout 10s]
//	           [-max-inflight 8] [-shed-cost-budget 4000] [-max-queue 64]
//	           [-state-dir dir] [-spill-dir dir] [-spill-budget bytes]
//	           [-delta-policy patch|invalidate]
//	           [-register http://router:8090 -advertise http://host:8080]
//
// Each -load registers a dataset at startup (format by extension:
// ".pairs", ".bin", or adjacency lines — ".bin" files are mmap'd, so
// registration touches pages, not bytes, and datasets may exceed RAM);
// -warmup precomputes the given s-sweep (a value, comma list, or lo:hi
// range, e.g. "1,4:8") for every loaded dataset as one batched
// planner-driven pass.
//
// -spill-dir attaches a disk tier under the LRU caches: evicted
// projections and measure values serialize there (bounded to
// -spill-budget bytes) and memory misses probe the directory before
// recomputing. -state-dir makes restarts warm: a graceful shutdown
// persists the dataset registry (names, versions, binary files) and
// flushes the caches to the spill tier; the next boot with the same
// -state-dir maps the datasets back under their original versions, so
// cached keys — and the spilled entries behind them — remain valid.
// When -state-dir is set, -spill-dir defaults to <state-dir>/spill.
// Datasets restored from a snapshot take precedence over a -load of
// the same name.
//
// -max-inflight and -shed-cost-budget turn on admission control: they
// bound concurrent Stage-3 work by request count and by summed
// planner-estimated cost (~ms units — see /v1/datasets/{name}/costs).
// When saturated, interactive requests wait in a bounded FIFO queue
// (-max-queue) and overflow is shed with 429 + Retry-After; background
// work (warmup sweeps, "priority":"background" v2 queries) never
// queues. GET /metrics exposes the Prometheus text exposition: cache
// hit rates, compute counters, singleflight dedups, admission
// occupancy, per-stage latency histograms, and response codes.
//
// -register/-advertise join a scatter-gather tier: the replica
// heartbeats its advertised base URL to a hyperrouter every
// -register-interval, so routers discover replicas without static
// wiring (see cmd/hyperrouter).
//
// -request-timeout bounds every request via its context: past it the
// pipeline aborts cooperatively and the client receives 504 (a
// per-request "timeout_ms" on POST /v2/query composes with it —
// whichever expires first wins). On SIGINT/SIGTERM the server stops
// accepting connections and drains in-flight requests for up to
// -drain-timeout before exiting; a second signal aborts immediately.
//
// Endpoints (see internal/serve.NewHandler):
//
//	curl -X PUT --data-binary @data.hgr 'localhost:8080/v1/datasets/web'
//	curl 'localhost:8080/v1/datasets/web/slinegraph?s=4'
//	curl 'localhost:8080/v1/datasets/web/components?s=4'
//	curl 'localhost:8080/v1/datasets/web/measures?s=1:4&measure=diameter'
//	curl -X POST -d '{"dataset":"web","s":"1:4","measure":"diameter","timeout_ms":500}' 'localhost:8080/v2/query'
//	curl -X POST -d '{"dataset":"web","inserts":[[0,3,7]],"deletes":[12]}' 'localhost:8080/v2/ingest'
//	curl 'localhost:8080/v2/datasets/web/changes?since=1&timeout_ms=5000'
//	curl 'localhost:8080/v1/measures'
//	curl 'localhost:8080/v1/cache'
//	curl 'localhost:8080/v1/datasets/web/costs'
//
// Requests may leave the preprocessing knobs to the planner: a config
// notation with '*' in the relabel position (e.g. "2C*", "AB*") and/or
// "toplex": "auto" resolve against the dataset's cached statistics
// before any cache key is derived, so planner-chosen and pinned
// requests share cache entries whenever they resolve to the same
// configuration. The response's "plan" reports the resolved knobs and
// the reason ("knob_reason"). Each dataset version additionally
// self-calibrates: observed Stage-3 costs per (strategy, knobs, batch
// shape) feed an online cost model — inspectable at
// /v1/datasets/{name}/costs — which overrides the planner's static
// heuristics once a cell has enough observations. Replacing a dataset
// resets its calibration along with its version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/serve"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []struct{ name, path string }

func (l *loadFlags) String() string { return fmt.Sprintf("%d datasets", len(*l)) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

// withRequestTimeout bounds every request's context, so a stuck or
// oversized query cannot hold a handler goroutine past the deadline:
// the pipeline under it aborts cooperatively and the handler answers
// 504.
func withRequestTimeout(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// heartbeat POSTs {"url": advertise} to router/v1/replicas once per
// interval until ctx is done, logging registration state transitions.
func heartbeat(ctx context.Context, router, advertise string, interval time.Duration) {
	body := fmt.Sprintf(`{"url":%q}`, advertise)
	client := &http.Client{Timeout: 2 * time.Second}
	registered := false
	attempt := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, router+"/v1/replicas", strings.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		ok := err == nil && resp.StatusCode == http.StatusOK
		if ok && !registered {
			log.Printf("hyperlined: registered %s with router %s", advertise, router)
		} else if !ok && registered {
			log.Printf("hyperlined: lost registration with router %s", router)
		}
		registered = ok
	}
	attempt()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			attempt()
		}
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", serve.DefaultCacheEntries, "LRU capacity in cached pipeline results")
	mcache := flag.Int("measure-cache", serve.DefaultMeasureCacheEntries, "LRU capacity in cached measure values")
	warmup := flag.String("warmup", "", "comma-separated s values to precompute for every loaded dataset")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request timeout applied via the request context (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted Stage-3 passes; excess interactive requests queue then shed with 429 (0 = unlimited)")
	shedCostBudget := flag.Int64("shed-cost-budget", 0, "max summed planner-estimated cost of admitted Stage-3 work, in ~ms units (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max interactive requests waiting for admission before 429 (0 = default 64)")
	maxPerDataset := flag.Int("max-inflight-per-dataset", 0, "max concurrently admitted Stage-3 passes per dataset; excess is shed immediately with 429 (0 = unlimited)")
	deltaPolicy := flag.String("delta-policy", "patch", "cache maintenance across /v2/ingest deltas: patch (migrate + incrementally patch cached projections) or invalidate (drop everything)")
	registerURL := flag.String("register", "", "hyperrouter base URL to self-register with (requires -advertise)")
	advertise := flag.String("advertise", "", "this replica's base URL as reachable by the router, e.g. http://10.0.0.2:8080")
	registerInterval := flag.Duration("register-interval", 5*time.Second, "heartbeat period for -register")
	stateDir := flag.String("state-dir", "", "directory for registry snapshots: restored on boot (warm start), written on graceful shutdown")
	spillDir := flag.String("spill-dir", "", "directory for the disk cache tier under the LRUs (default <state-dir>/spill when -state-dir is set)")
	spillBudget := flag.Int64("spill-budget", 0, "max bytes in the spill directory; least recently used entries are removed past it (0 = unbounded)")
	var loads loadFlags
	flag.Var(&loads, "load", "dataset to register at startup, as name=path (repeatable)")
	flag.Parse()

	policy, err := serve.ParseDeltaPolicy(*deltaPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperlined: %v\n", err)
		os.Exit(2)
	}

	svc := serve.New(serve.Config{
		CacheEntries:          *cache,
		MeasureCacheEntries:   *mcache,
		MaxInflight:           *maxInflight,
		ShedCostBudget:        *shedCostBudget,
		MaxQueue:              *maxQueue,
		MaxInflightPerDataset: *maxPerDataset,
		DeltaPolicy:           policy,
	})

	// Storage tier: the spill directory turns cache evictions into disk
	// entries, and the state directory turns restarts into warm starts.
	if *spillDir == "" && *stateDir != "" {
		*spillDir = filepath.Join(*stateDir, "spill")
	}
	if *spillDir != "" {
		if err := svc.EnableSpill(*spillDir, *spillBudget); err != nil {
			log.Fatalf("hyperlined: %v", err)
		}
		log.Printf("spill tier at %s (budget %d bytes)", *spillDir, *spillBudget)
	}
	restored := map[string]bool{}
	if *stateDir != "" {
		names, err := svc.RestoreState(*stateDir)
		if err != nil {
			log.Fatalf("hyperlined: restoring state: %v", err)
		}
		for _, name := range names {
			restored[name] = true
			stats, _ := svc.Stats(name)
			log.Printf("restored %v", stats)
		}
	}

	for _, l := range loads {
		if restored[l.name] {
			// The snapshot already carries this dataset under its
			// pre-restart version; re-loading would bump the version
			// and orphan every warm cache entry.
			log.Printf("skipping -load %s: restored from %s", l.name, *stateDir)
			continue
		}
		if err := svc.Load(l.name, l.path); err != nil {
			log.Fatalf("hyperlined: loading %s: %v", l.name, err)
		}
		stats, _ := svc.Stats(l.name)
		log.Printf("loaded %v", stats)
	}

	if *warmup != "" {
		sweep, err := core.ParseSValues(*warmup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperlined: bad -warmup value: %v\n", err)
			os.Exit(2)
		}
		for _, d := range svc.Datasets() {
			n, _, err := svc.Warmup(context.Background(), d.Name, false, sweep, core.PipelineConfig{})
			if err != nil {
				log.Fatalf("hyperlined: warmup %s: %v", d.Name, err)
			}
			log.Printf("warmed %s: %d projections (s in %v)", d.Name, n, sweep)
		}
	}

	handler := serve.NewHandler(svc)
	if *reqTimeout > 0 {
		handler = withRequestTimeout(handler, *reqTimeout)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	// SIGINT/SIGTERM starts a graceful drain: Shutdown stops accepting
	// and waits for in-flight requests; if the drain window expires,
	// srv.Close severs the remaining connections, which cancels their
	// request contexts and aborts their pipelines cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Self-registration: heartbeat this replica's advertised URL to a
	// hyperrouter so the scatter-gather tier discovers it without static
	// -replicas wiring. Failures are retried every interval (the router
	// may simply not be up yet); only state changes are logged.
	if *registerURL != "" {
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "hyperlined: -register requires -advertise")
			os.Exit(2)
		}
		go heartbeat(ctx, strings.TrimRight(*registerURL, "/"), *advertise, *registerInterval)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("hyperlined listening on %s (cache capacity %d)", *addr, *cache)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C aborts hard
		log.Printf("hyperlined: shutdown signal received, draining for up to %v", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			// Drain window expired with requests still in flight:
			// close their connections (cancelling their contexts) and
			// report the unclean exit.
			srv.Close()
			log.Printf("hyperlined: drain window expired: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		if *stateDir != "" {
			// All requests are drained: snapshot the registry and flush
			// the caches so the next boot starts warm.
			if err := svc.SaveState(*stateDir); err != nil {
				log.Printf("hyperlined: saving state: %v", err)
				os.Exit(1)
			}
			log.Printf("hyperlined: state saved to %s", *stateDir)
		}
		svc.Close()
		log.Printf("hyperlined: drained cleanly")
	}
}
