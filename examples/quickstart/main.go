// Quickstart: build the paper's running example hypergraph (Fig. 1),
// compute its s-line graphs for s = 1..4 (Fig. 2), and run s-measures
// on them.
package main

import (
	"fmt"

	"hyperline"
)

func main() {
	// The hypergraph of Fig. 1: vertices a..f (0..5), hyperedges
	// 1:{a,b,c}, 2:{b,c,d}, 3:{a,b,c,d,e}, 4:{e,f}.
	h := hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)

	fmt.Printf("hypergraph: %d vertices, %d hyperedges, %d incidences\n",
		h.NumVertices(), h.NumEdges(), h.Incidences())

	for s := 1; s <= 4; s++ {
		res := hyperline.SLineGraph(h, s, hyperline.Options{})
		fmt.Printf("\ns=%d line graph: %d nodes, %d edges\n",
			s, res.Graph.NumNodes(), res.Graph.NumEdges())
		for _, e := range res.Graph.Edges() {
			fmt.Printf("  hyperedge %d -- hyperedge %d (overlap %d)\n",
				res.HyperedgeID(e.U)+1, res.HyperedgeID(e.V)+1, e.W)
		}
		cc := hyperline.SConnectedComponents(res)
		fmt.Printf("  %d-connected components: %d\n", s, cc.Count)
	}

	// The dual view: the 1-clique graph is the clique expansion H₂
	// (Fig. 3), linking vertices that share a hyperedge.
	clique := hyperline.SCliqueGraph(h, 1, hyperline.Options{NoSqueeze: true})
	fmt.Printf("\nclique expansion: %d nodes, %d edges\n",
		clique.Graph.NumNodes(), clique.Graph.NumEdges())
	fmt.Printf("vertices b,c co-occur in %d hyperedges (adj(b,c))\n",
		clique.Graph.Weight(1, 2))
}
