// Authors reproduces the §V-B application: revealing relationships
// among authors of a condensed-matter-style author-paper network via
// an ensemble of s-line graphs and their normalized algebraic
// connectivity (Fig. 6).
//
// Papers are hyperedges over author vertices; two papers are
// s-incident when they share at least s authors. The normalized
// algebraic connectivity λ₂ of each Ls(H) quantifies how strongly its
// largest component holds together: dips at moderate s show sparse
// collaboration, and the climb at high s shows that prolific repeat
// collaborations form densely connected cores.
package main

import (
	"flag"
	"fmt"

	"hyperline"
	"hyperline/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	maxS := flag.Int("maxs", 16, "largest s value")
	flag.Parse()

	h := experiments.CondMatAnalog(experiments.Scale(*scale))
	fmt.Printf("author-paper hypergraph: %d papers (hyperedges), %d authors (vertices), %d inclusions\n",
		h.NumEdges(), h.NumVertices(), h.Incidences())

	var sValues []int
	for s := 1; s <= *maxS; s++ {
		sValues = append(sValues, s)
	}
	ens := hyperline.SLineGraphEnsemble(h, sValues, hyperline.Options{})

	fmt.Println("\n  s   nodes   edges   components   norm. algebraic connectivity")
	for _, s := range sValues {
		res := ens[s]
		if res.Graph.NumEdges() == 0 {
			fmt.Printf("  %-3d %7d %7d   (empty: no two papers share %d authors)\n",
				s, res.Graph.NumNodes(), res.Graph.NumEdges(), s)
			continue
		}
		cc := hyperline.SConnectedComponents(res)
		lam := hyperline.NormalizedAlgebraicConnectivity(res.Graph)
		fmt.Printf("  %-3d %7d %7d %12d   %.4f\n",
			s, res.Graph.NumNodes(), res.Graph.NumEdges(), cc.Count, lam)
	}
}
