// Session demonstrates the multi-resolution query workflow the serving
// layer is built for: register a dataset once, warm an s-sweep with a
// single Algorithm 3 ensemble pass, then answer repeated s-line-graph
// and s-measure queries from the shared result cache.
//
// Run with: go run ./examples/session
package main

import (
	"fmt"

	"hyperline"
)

func main() {
	// A small community-structured hypergraph: three groups of
	// overlapping hyperedges plus a bridge.
	edges := [][]uint32{
		{0, 1, 2, 3}, {1, 2, 3, 4}, {0, 2, 3, 4},
		{10, 11, 12, 13}, {11, 12, 13, 14}, {10, 12, 13, 14},
		{20, 21, 22}, {21, 22, 23},
		{4, 10}, // bridge
	}
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("communities", hyperline.FromEdgeSlices(edges, 24))

	// One counting pass precomputes every projection of the sweep.
	sweep := []int{1, 2, 3}
	if _, err := sess.Warmup("communities", sweep, hyperline.Options{}); err != nil {
		panic(err)
	}

	for _, s := range sweep {
		res, err := sess.SLineGraph("communities", s, hyperline.Options{})
		if err != nil {
			panic(err)
		}
		cc := hyperline.SConnectedComponents(res)
		fmt.Printf("s=%d: %d nodes, %d edges, %d components\n",
			s, res.Graph.NumNodes(), res.Graph.NumEdges(), cc.Count)
	}

	// Repeats are free: this hits the cache, no pipeline run.
	res, _ := sess.SLineGraph("communities", 2, hyperline.Options{})
	bc := hyperline.SBetweenness(res, 0)
	best, bestScore := uint32(0), -1.0
	for u, score := range bc {
		if score > bestScore {
			best, bestScore = res.HyperedgeID(uint32(u)), score
		}
	}
	fmt.Printf("most central hyperedge at s=2: %d\n", best)

	st := sess.CacheStats()
	fmt.Printf("cache: %d entries, %d hits, %d misses\n", st.Entries, st.Hits, st.Misses)
}
