// IMDB reproduces the §V-C application: uncovering groups of actors
// who collaborated in more than 100 movies. Actors are hyperedges over
// movie vertices; the 101-line graph links actors sharing at least 101
// movies, its connected components are the collaboration groups, and
// s-betweenness centrality identifies each group's pivotal member (the
// paper finds Adoor Bhasi at the center of a star).
//
// The IMDB tables are not redistributable, so a synthetic analog is
// generated with the paper's reported component structure planted:
// four groups of sizes 5, 2, 2, 2 (labeled with the reported actor
// names), the first a star centered on "Adoor Bhasi".
package main

import (
	"flag"
	"fmt"
	"time"

	"hyperline"
	"hyperline/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	s := flag.Int("s", 101, "minimum shared movies")
	flag.Parse()

	h := experiments.IMDBAnalog(experiments.Scale(*scale))
	fmt.Printf("actor-movie hypergraph: %d actors (hyperedges), %d movies (vertices)\n",
		h.NumEdges(), h.NumVertices())

	t0 := time.Now()
	res := hyperline.SLineGraph(h, *s, hyperline.Options{})
	fmt.Printf("%d-line graph computed in %v: %d actors, %d edges\n",
		*s, time.Since(t0), res.Graph.NumNodes(), res.Graph.NumEdges())

	name := func(id uint32) string {
		if int(id) < len(experiments.IMDBActorNames) {
			return experiments.IMDBActorNames[id]
		}
		return fmt.Sprintf("actor-%d", id)
	}

	t1 := time.Now()
	cc := hyperline.SConnectedComponents(res)
	ccTime := time.Since(t1)
	fmt.Printf("\nHere are the %d-connected components: (compute %v)\n", *s, ccTime)
	for _, members := range cc.Members() {
		if len(members) < 2 {
			continue
		}
		fmt.Print("  [")
		for i, node := range members {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(name(res.HyperedgeID(node)))
		}
		fmt.Println("]")
	}

	t2 := time.Now()
	bc := hyperline.NormalizeBetweenness(hyperline.SBetweenness(res, 0))
	bcTime := time.Since(t2)
	fmt.Printf("\n%d-betweenness centrality (normalized, non-zero only): (compute %v)\n", *s, bcTime)
	for node := 0; node < res.Graph.NumNodes(); node++ {
		if bc[node] > 0 {
			fmt.Printf("  %s (%.4f)\n", name(res.HyperedgeID(uint32(node))), bc[node])
		}
	}
}
