// Genes reproduces the §V-A application: identifying genes critical to
// pathogenic viral response from a transcriptomics hypergraph. Genes
// are hyperedges over 201 experimental-condition vertices; the s-line
// graphs at growing s strip away weakly co-perturbed genes until only
// the strongly co-perturbed hub genes remain (Fig. 5).
//
// The paper's virology dataset is not redistributable, so a synthetic
// analog with the same planted structure is generated: six hub genes
// (labeled with the paper's gene symbols) perturbed together in more
// than 100 shared conditions.
package main

import (
	"flag"
	"fmt"
	"sort"

	"hyperline"
	"hyperline/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	flag.Parse()

	h := experiments.VirologyAnalog(experiments.Scale(*scale))
	fmt.Printf("gene-condition hypergraph: %d genes (hyperedges), %d conditions (vertices)\n",
		h.NumEdges(), h.NumVertices())

	ens := hyperline.SLineGraphEnsemble(h, []int{1, 3, 5}, hyperline.Options{})
	for _, s := range []int{1, 3, 5} {
		res := ens[s]
		cc := hyperline.SConnectedComponents(res)
		fmt.Printf("\ns=%d line graph: %d genes, %d edges, %d components\n",
			s, res.Graph.NumNodes(), res.Graph.NumEdges(), cc.Count)
	}

	// Rank genes in the 5-line graph by s-betweenness centrality
	// (degree as tiebreak): the planted hubs emerge.
	res := ens[5]
	bc := hyperline.SBetweenness(res, 0)
	type ranked struct {
		gene  uint32
		score float64
		deg   int
	}
	var rs []ranked
	for node := 0; node < res.Graph.NumNodes(); node++ {
		rs = append(rs, ranked{res.HyperedgeID(uint32(node)), bc[node], res.Graph.Degree(uint32(node))})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		if rs[i].deg != rs[j].deg {
			return rs[i].deg > rs[j].deg
		}
		return rs[i].gene < rs[j].gene
	})
	fmt.Println("\nmost important genes by 5-line graph centrality:")
	for i := 0; i < len(rs) && i < 6; i++ {
		name := fmt.Sprintf("gene-%d", rs[i].gene)
		if int(rs[i].gene) < len(experiments.VirologyHubNames) {
			name = experiments.VirologyHubNames[rs[i].gene]
		}
		fmt.Printf("  %-8s betweenness=%.1f degree=%d\n", name, rs[i].score, rs[i].deg)
	}
}
