package hyperline_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"hyperline"
	"hyperline/internal/measure"
)

// goldenCases are the end-to-end paper-fidelity guard: tiny checked-in
// datasets swept through Stages 1-5, with the resulting tables pinned
// byte-for-byte. Any drift in preprocessing, the s-overlap strategies,
// the CSR build, or the measures shows up as a diff here.
var goldenCases = []struct {
	golden  string // file under testdata/golden
	dataset string // file under testdata
	measure string
	sSpec   string
	top     int
}{
	{"community_components_s1-5.tsv", "tiny_community.adj", "components", "1:5", 5},
	{"authors_diameter_s1-5.tsv", "tiny_authors.adj", "diameter", "1:5", 5},
	{"authors_harmonic_top5_s1-5.tsv", "tiny_authors.adj", "harmonic", "1:5", 5},
}

// TestGoldenSweepTables drives the sweep through the public Session
// API (the same engine the server uses) and compares the rendered
// tables against the checked-in goldens.
func TestGoldenSweepTables(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			sess := hyperline.NewSession(hyperline.SessionOptions{})
			if err := sess.Load("d", filepath.Join("testdata", tc.dataset)); err != nil {
				t.Fatal(err)
			}
			sweep, err := hyperline.ParseSValues(tc.sSpec)
			if err != nil {
				t.Fatal(err)
			}
			results, err := sess.SMeasureSweep("d", sweep, tc.measure, nil, hyperline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rows := make([]measure.SweepRow, len(results))
			for i, r := range results {
				rows[i] = measure.SweepRow{
					S: r.S, Nodes: r.Nodes, Edges: r.Edges,
					HyperedgeIDs: r.HyperedgeIDs, Value: r.Value,
				}
			}
			var got bytes.Buffer
			if err := measure.WriteSweepTable(&got, tc.measure, nil, tc.top, rows); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("sweep table drifted from %s:\ngot:\n%s\nwant:\n%s", tc.golden, got.Bytes(), want)
			}
		})
	}
}

// TestGoldenSweepCLI builds cmd/slinegraph and checks that
// `-measure M -s LIST` reproduces the goldens byte-for-byte on stdout
// — the acceptance path users script against.
func TestGoldenSweepCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "slinegraph")
	build := exec.Command("go", "build", "-o", bin, "./cmd/slinegraph")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building slinegraph: %v\n%s", err, out)
	}
	for _, tc := range goldenCases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(bin,
				"-in", filepath.Join("testdata", tc.dataset),
				"-s", tc.sSpec, "-measure", tc.measure)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("slinegraph: %v\nstderr: %s", err, stderr.Bytes())
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Fatalf("CLI sweep table drifted from %s:\ngot:\n%s\nwant:\n%s", tc.golden, stdout.Bytes(), want)
			}
		})
	}
}
