package hyperline_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"hyperline"
	"hyperline/internal/experiments"
)

func paperQueryExample() *hyperline.Hypergraph {
	return hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
}

// TestExecuteMatchesLegacyFunctions pins the deprecation contract: the
// v1 top-level functions are wrappers over Execute and must produce
// identical projections.
func TestExecuteMatchesLegacyFunctions(t *testing.T) {
	h := paperQueryExample()
	qr, err := hyperline.Execute(context.Background(), hyperline.Query{
		Hypergraph: h, S: []int{1, 2, 3}, Options: hyperline.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Entries) != 3 {
		t.Fatalf("want 3 entries, got %d", len(qr.Entries))
	}
	legacy := hyperline.SLineGraphs(h, []int{1, 2, 3}, hyperline.Options{})
	for i, e := range qr.Entries {
		if e.S != i+1 {
			t.Fatalf("entries out of order: %v", qr.Entries)
		}
		want := legacy[e.S]
		if !reflect.DeepEqual(e.Result.Graph.Edges(), want.Graph.Edges()) ||
			!reflect.DeepEqual(e.Result.HyperedgeIDs, want.HyperedgeIDs) {
			t.Fatalf("s=%d: Execute and SLineGraphs diverged", e.S)
		}
	}
	if qr.Plan.Strategy == "" {
		t.Fatal("Execute must report the executed plan")
	}

	// Clique orientation through both routes.
	cq, err := hyperline.Execute(context.Background(), hyperline.Query{
		Hypergraph: h, Kind: hyperline.KindClique, S: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantC := hyperline.SCliqueGraph(h, 1, hyperline.Options{})
	if !reflect.DeepEqual(cq.Entries[0].Result.Graph.Edges(), wantC.Graph.Edges()) {
		t.Fatal("clique Execute diverged from SCliqueGraph")
	}
}

// TestExecuteMeasureEntries: a measure query carries one evaluated
// value per s, matching the legacy per-projection computation.
func TestExecuteMeasureEntries(t *testing.T) {
	h := paperQueryExample()
	qr, err := hyperline.Execute(context.Background(), hyperline.Query{
		Hypergraph: h, S: []int{1, 2}, Measure: "components",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range qr.Entries {
		if e.Err != nil || e.Measure == nil || e.Measure.Value.Scalar == nil {
			t.Fatalf("s=%d: broken measure entry %+v", e.S, e)
		}
		want := hyperline.SConnectedComponents(hyperline.SLineGraph(h, e.S, hyperline.Options{}))
		if int(*e.Measure.Value.Scalar) != want.Count {
			t.Fatalf("s=%d: %v components, want %d", e.S, *e.Measure.Value.Scalar, want.Count)
		}
	}
}

// TestLegacyBatchBeyondMaxSValues: the deprecated batch functions
// never had Execute's MaxSValues bound — oversized sweeps must still
// answer (chunked internally), not panic.
func TestLegacyBatchBeyondMaxSValues(t *testing.T) {
	h := paperQueryExample()
	sweep := make([]int, 1100)
	for i := range sweep {
		sweep[i] = i + 1
	}
	out := hyperline.SLineGraphs(h, sweep, hyperline.Options{})
	if len(out) != 1100 {
		t.Fatalf("got %d results, want 1100", len(out))
	}
	want := hyperline.SLineGraph(h, 2, hyperline.Options{})
	if got := out[2]; got.Graph.NumEdges() != want.Graph.NumEdges() {
		t.Fatalf("chunked batch diverged at s=2: %d vs %d edges", got.Graph.NumEdges(), want.Graph.NumEdges())
	}
}

// TestExecuteValidation: the strict v2 validation surface.
func TestExecuteValidation(t *testing.T) {
	h := paperQueryExample()
	cases := []hyperline.Query{
		{},                           // no hypergraph, no dataset
		{Dataset: "x"},               // dataset without session
		{Hypergraph: h},              // no s values
		{Hypergraph: h, S: []int{0}}, // s < 1
		{Hypergraph: h, S: []int{2}, Kind: "triangle"}, // bad kind
		{Hypergraph: h, S: []int{2}, Measure: "nope"},  // unknown measure
		{Hypergraph: h, Dataset: "x", S: []int{2}},     // both sources
		{Hypergraph: h, S: []int{2}, Measure: "pagerank", // bad param
			Params: map[string]string{"damping": "7"}},
	}
	for i, q := range cases {
		if _, err := hyperline.Execute(context.Background(), q); err == nil {
			t.Fatalf("case %d must fail: %+v", i, q)
		}
	}
}

// TestSessionExecuteSharesCaches: Session.Execute hits the same caches
// the deprecated Session methods fill, and vice versa.
func TestSessionExecuteSharesCaches(t *testing.T) {
	s := hyperline.NewSession(hyperline.SessionOptions{})
	s.Add("p", paperQueryExample())

	warm, err := s.SLineGraph("p", 2, hyperline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := s.Execute(context.Background(), hyperline.Query{Dataset: "p", S: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	e := qr.Entries[0]
	if !e.Cached {
		t.Fatal("Execute after SLineGraph must be a cache hit")
	}
	if e.Result != warm {
		t.Fatal("Execute must serve the identical cached pointer")
	}

	// Measure path: first Execute computes, second is a measure-cache
	// hit that never consults the projection.
	m1, err := s.Execute(context.Background(), hyperline.Query{Dataset: "p", S: []int{2}, Measure: "diameter"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Entries[0].Cached || m1.Entries[0].Measure == nil {
		t.Fatalf("first measure query must compute, got %+v", m1.Entries[0])
	}
	m2, err := s.Execute(context.Background(), hyperline.Query{Dataset: "p", S: []int{2}, Measure: "diameter"})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Entries[0].Cached || m2.Entries[0].Measure.Value != m1.Entries[0].Measure.Value {
		t.Fatalf("second measure query must hit, got %+v", m2.Entries[0])
	}
	if stats := s.MeasureCacheStats(); stats.Computes != 1 {
		t.Fatalf("measure computes = %d, want 1", stats.Computes)
	}

	// Unknown dataset resolves through the session registry.
	if _, err := s.Execute(context.Background(), hyperline.Query{Dataset: "ghost", S: []int{2}}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

// TestExecuteDeadline: Query.Deadline bounds the query on its own,
// without a caller-side context deadline.
func TestExecuteDeadline(t *testing.T) {
	h := experiments.LiveJournalAnalog(1)
	_, err := hyperline.Execute(context.Background(), hyperline.Query{
		Hypergraph: h, S: []int{2, 3, 4, 6, 8},
		Deadline: time.Now().Add(20 * time.Millisecond),
	})
	if err == nil {
		t.Skip("machine fast enough to beat a 20ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestExecuteCancelFig8Scale is the acceptance property: on the
// Fig-8-scale generated hypergraph (the LiveJournal analog the Fig. 8
// benchmarks use), a cancelled Execute returns context.Canceled within
// the latency bound while the same query uncancelled takes orders of
// magnitude longer.
func TestExecuteCancelFig8Scale(t *testing.T) {
	h := experiments.LiveJournalAnalog(1)
	sweep := []int{2, 3, 4, 6, 8}
	q := hyperline.Query{Hypergraph: h, S: sweep, Options: hyperline.Options{}}

	// Baseline (skipped under the race detector, where it would take
	// tens of seconds and prove nothing about latency).
	var baseline time.Duration
	if !raceEnabled {
		t0 := time.Now()
		if _, err := hyperline.Execute(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		baseline = time.Since(t0)
		t.Logf("uncancelled sweep: %v", baseline)
	}

	bound := 100 * time.Millisecond
	if raceEnabled {
		bound = time.Second
	}
	type outcome struct {
		err error
		at  time.Time
	}
	// One measurement of cancel-to-return latency. The bound is
	// wall-clock, so on a loaded box (the full suite runs every package
	// in parallel on one core) a single attempt can blow it on
	// scheduler starvation alone; the caller retries once, and only two
	// consecutive misses fail — a real latency regression misses both.
	attempt := func() (time.Duration, bool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan outcome, 1)
		go func() {
			_, err := hyperline.Execute(ctx, q)
			done <- outcome{err: err, at: time.Now()}
		}()
		select {
		case o := <-done:
			t.Skipf("sweep finished before the cancel landed (err=%v)", o.err)
		case <-time.After(100 * time.Millisecond):
		}
		cancelledAt := time.Now()
		cancel()
		o := <-done
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("cancelled Execute returned %v, want context.Canceled", o.err)
		}
		latency := o.at.Sub(cancelledAt)
		return latency, latency <= bound
	}
	latency, ok := attempt()
	if !ok {
		t.Logf("cancel latency %v exceeds %v, retrying once", latency, bound)
		if latency, ok = attempt(); !ok {
			t.Fatalf("cancel latency %v exceeds %v twice", latency, bound)
		}
	}
	t.Logf("cancel latency: %v (baseline %v)", latency, baseline)
	if baseline > 0 && latency*10 > baseline {
		t.Fatalf("cancellation saved too little: latency %v vs baseline %v", latency, baseline)
	}
}
