package hyperline_test

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"hyperline"
)

func sessionExample() *hyperline.Hypergraph {
	return hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
}

func TestSessionCachesAcrossCalls(t *testing.T) {
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("paper", sessionExample())

	r1, err := sess.SLineGraph("paper", 2, hyperline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.SLineGraph("paper", 2, hyperline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("repeated query must return the cached result pointer")
	}
	direct := hyperline.SLineGraph(sessionExample(), 2, hyperline.Options{})
	if !reflect.DeepEqual(r1.Graph.Edges(), direct.Graph.Edges()) {
		t.Fatal("session result differs from direct SLineGraph call")
	}
	st := sess.CacheStats()
	if st.Hits < 1 || st.Entries != 1 {
		t.Fatalf("bad cache stats %+v", st)
	}
}

func TestSessionConcurrentRequestsShareOneResult(t *testing.T) {
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("paper", sessionExample())

	const n = 16
	results := make([]*hyperline.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sess.SLineGraph("paper", 2, hyperline.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent identical requests must share one result")
		}
	}
}

func TestSessionWarmupAndClique(t *testing.T) {
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("paper", sessionExample())

	if n, err := sess.Warmup("paper", []int{1, 2, 3}, hyperline.Options{}); err != nil || n != 3 {
		t.Fatalf("warmup: n=%d err=%v", n, err)
	}
	for s := 1; s <= 3; s++ {
		res, err := sess.SLineGraph("paper", s, hyperline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct := hyperline.SLineGraph(sessionExample(), s, hyperline.Options{})
		if !reflect.DeepEqual(res.Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: warmed result differs from direct call", s)
		}
	}

	clique, err := sess.SCliqueGraph("paper", 1, hyperline.Options{NoSqueeze: true})
	if err != nil {
		t.Fatal(err)
	}
	want := hyperline.SCliqueGraph(sessionExample(), 1, hyperline.Options{NoSqueeze: true})
	if !reflect.DeepEqual(clique.Graph.Edges(), want.Graph.Edges()) {
		t.Fatal("session clique graph differs from direct call")
	}
}

func TestSessionBatchGraphs(t *testing.T) {
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("paper", sessionExample())

	sweep := []int{1, 2, 3}
	batch, err := sess.SLineGraphs("paper", sweep, hyperline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch))
	}
	for _, s := range sweep {
		direct := hyperline.SLineGraph(sessionExample(), s, hyperline.Options{})
		if !reflect.DeepEqual(batch[s].Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: batch result differs from direct call", s)
		}
		// The batch seeded the cache: single queries return the same
		// pointer.
		single, err := sess.SLineGraph("paper", s, hyperline.Options{})
		if err != nil || single != batch[s] {
			t.Fatalf("s=%d: single query after batch must hit the cached pointer (err=%v)", s, err)
		}
	}

	cliques, err := sess.SCliqueGraphs("paper", []int{1, 2}, hyperline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := hyperline.SCliqueGraph(sessionExample(), 2, hyperline.Options{})
	if !reflect.DeepEqual(cliques[2].Graph.Edges(), want.Graph.Edges()) {
		t.Fatal("batched clique graph differs from direct call")
	}

	if _, err := sess.SLineGraphs("paper", nil, hyperline.Options{}); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestSessionLoadAndList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.bin")
	if err := hyperline.Save(path, sessionExample()); err != nil {
		t.Fatal(err)
	}
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	if err := sess.Load("disk", path); err != nil {
		t.Fatal(err)
	}
	list := sess.Datasets()
	if len(list) != 1 || list[0].Name != "disk" || list[0].Stats.NumEdges != 4 {
		t.Fatalf("bad listing %+v", list)
	}
	if _, err := sess.SLineGraph("missing", 2, hyperline.Options{}); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if !sess.Remove("disk") {
		t.Fatal("remove failed")
	}
}
