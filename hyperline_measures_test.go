package hyperline

import (
	"math"
	"testing"
)

func TestSClosenessAndHarmonicOnExample(t *testing.T) {
	// 1-line graph of the example: triangle {0,1,2} + pendant 3 on 2.
	res := SLineGraph(example(), 1, Options{NoSqueeze: true})
	c := SCloseness(res, 2)
	h := SHarmonic(res, 2)
	if len(c) != 4 || len(h) != 4 {
		t.Fatalf("lengths %d/%d, want 4", len(c), len(h))
	}
	// Node 2 (hyperedge 3) is adjacent to everything: closeness 1.
	if math.Abs(c[2]-1) > 1e-9 {
		t.Fatalf("closeness(e3) = %f, want 1", c[2])
	}
	if c[3] >= c[0] {
		t.Fatal("pendant hyperedge should have the lowest closeness")
	}
	// Harmonic of node 2: (1+1+1)/3 = 1.
	if math.Abs(h[2]-1) > 1e-9 {
		t.Fatalf("harmonic(e3) = %f, want 1", h[2])
	}
}

func TestSEccentricityAndDiameter(t *testing.T) {
	res := SLineGraph(example(), 1, Options{NoSqueeze: true})
	ecc := SEccentricities(res, 0)
	// Node 2 reaches everything in 1 hop; nodes 0,1,3 need 2 hops.
	if ecc[2] != 1 || ecc[0] != 2 || ecc[3] != 2 {
		t.Fatalf("eccentricities = %v", ecc)
	}
	if d := SDiameter(res, 0); d != 2 {
		t.Fatalf("s-diameter = %d, want 2", d)
	}
}

func TestClusteringOnLineGraph(t *testing.T) {
	res := SLineGraph(example(), 2, Options{})
	// The 2-line graph is a triangle.
	cc := ClusteringCoefficients(res.Graph, 0)
	for _, c := range cc {
		if math.Abs(c-1) > 1e-9 {
			t.Fatalf("triangle clustering = %v", cc)
		}
	}
	if g := GlobalClusteringCoefficient(res.Graph, 0); math.Abs(g-1) > 1e-9 {
		t.Fatalf("global clustering = %f, want 1", g)
	}
}

func TestMaxOverlapFacade(t *testing.T) {
	h := example()
	if got := MaxOverlap(h, 0); got != 3 {
		t.Fatalf("MaxOverlap = %d, want 3", got)
	}
	// Consistency: the MaxOverlap-line graph is non-empty, one past
	// it is empty.
	at := SLineGraph(h, 3, Options{})
	past := SLineGraph(h, 4, Options{})
	if at.Graph.NumEdges() == 0 || past.Graph.NumEdges() != 0 {
		t.Fatal("MaxOverlap inconsistent with s-line graph emptiness")
	}
}
