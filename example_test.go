package hyperline_test

import (
	"fmt"

	"hyperline"
)

// ExampleSLineGraph computes the 2-line graph of the paper's running
// example: hyperedges sharing at least two vertices become adjacent.
func ExampleSLineGraph() {
	h := hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2},       // hyperedge 0: {a,b,c}
		{1, 2, 3},       // hyperedge 1: {b,c,d}
		{0, 1, 2, 3, 4}, // hyperedge 2: {a,b,c,d,e}
		{4, 5},          // hyperedge 3: {e,f}
	}, 6)
	res := hyperline.SLineGraph(h, 2, hyperline.Options{})
	for _, e := range res.Graph.Edges() {
		fmt.Printf("hyperedge %d -- %d (overlap %d)\n",
			res.HyperedgeID(e.U), res.HyperedgeID(e.V), e.W)
	}
	// Output:
	// hyperedge 0 -- 1 (overlap 2)
	// hyperedge 0 -- 2 (overlap 3)
	// hyperedge 1 -- 2 (overlap 3)
}

// ExampleSCliqueGraph computes the clique expansion (the 1-clique
// graph) and reads off adj(b, c), the number of hyperedges containing
// both vertices.
func ExampleSCliqueGraph() {
	h := hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
	clique := hyperline.SCliqueGraph(h, 1, hyperline.Options{NoSqueeze: true})
	fmt.Println("edges:", clique.Graph.NumEdges())
	fmt.Println("adj(b,c):", clique.Graph.Weight(1, 2))
	// Output:
	// edges: 11
	// adj(b,c): 3
}

// ExampleSLineGraphEnsemble sweeps s and reports when the line graph
// becomes empty, together with MaxOverlap.
func ExampleSLineGraphEnsemble() {
	h := hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
	ens := hyperline.SLineGraphEnsemble(h, []int{1, 2, 3, 4}, hyperline.Options{})
	for s := 1; s <= 4; s++ {
		fmt.Printf("s=%d: %d edges\n", s, ens[s].Graph.NumEdges())
	}
	fmt.Println("max overlap:", hyperline.MaxOverlap(h, 0))
	// Output:
	// s=1: 4 edges
	// s=2: 3 edges
	// s=3: 2 edges
	// s=4: 0 edges
	// max overlap: 3
}

// ExampleSession queries one dataset at several s values through a
// caching session: each distinct projection runs the pipeline once and
// repeats are served from the LRU.
func ExampleSession() {
	sess := hyperline.NewSession(hyperline.SessionOptions{})
	sess.Add("paper", hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6))
	sess.Warmup("paper", []int{1, 2, 3}, hyperline.Options{})
	for s := 1; s <= 3; s++ {
		res, _ := sess.SLineGraph("paper", s, hyperline.Options{})
		fmt.Printf("s=%d: %d edges\n", s, res.Graph.NumEdges())
	}
	res, _ := sess.SLineGraph("paper", 2, hyperline.Options{}) // cache hit
	fmt.Println("components at s=2:", hyperline.SConnectedComponents(res).Count)
	st := sess.CacheStats()
	fmt.Println("cached projections:", st.Entries)
	// Output:
	// s=1: 4 edges
	// s=2: 3 edges
	// s=3: 2 edges
	// components at s=2: 1
	// cached projections: 3
}

// ExampleSConnectedComponentsDirect finds s-connected components
// without materializing the line graph.
func ExampleSConnectedComponentsDirect() {
	h := hyperline.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
	fmt.Println(hyperline.SConnectedComponentsDirect(h, 3))
	// Output:
	// [0 0 0 3]
}
