package hyperline

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

func example() *Hypergraph {
	return FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

func TestSLineGraphQuickstart(t *testing.T) {
	res := SLineGraph(example(), 2, Options{})
	if res.Graph.NumEdges() != 3 {
		t.Fatalf("2-line graph edges = %d, want 3", res.Graph.NumEdges())
	}
	// Hyperedges 0,1,2 survive; hyperedge 3 ({e,f}) is isolated at s=2.
	if res.Graph.NumNodes() != 3 {
		t.Fatalf("2-line graph nodes = %d, want 3", res.Graph.NumNodes())
	}
	ids := map[uint32]bool{}
	for n := 0; n < res.Graph.NumNodes(); n++ {
		ids[res.HyperedgeID(uint32(n))] = true
	}
	if !ids[0] || !ids[1] || !ids[2] {
		t.Fatalf("wrong surviving hyperedges: %v", ids)
	}
}

func TestSCliqueGraphIsCliqueExpansionAtS1(t *testing.T) {
	// The 1-clique graph is the clique expansion H₂ (Figure 3): edges
	// between every vertex pair co-occurring in some hyperedge.
	res := SCliqueGraph(example(), 1, Options{NoSqueeze: true})
	want := [][2]uint32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4},
		{3, 4},
		{4, 5},
	}
	var got [][2]uint32
	for _, e := range res.Graph.Edges() {
		got = append(got, [2]uint32{e.U, e.V})
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("2-section edges = %v, want %v", got, want)
	}
}

func TestSCliqueWeightsAreSharedEdgeCounts(t *testing.T) {
	// adj(b,c) = 3: vertices b and c share three hyperedges.
	res := SCliqueGraph(example(), 1, Options{NoSqueeze: true})
	if w := res.Graph.Weight(1, 2); w != 3 {
		t.Fatalf("weight(b,c) = %d, want 3", w)
	}
}

func TestSConnectedComponentsOnExample(t *testing.T) {
	res := SLineGraph(example(), 1, Options{NoSqueeze: true})
	cc := SConnectedComponents(res)
	if cc.Count != 1 {
		t.Fatalf("1-line graph components = %d, want 1", cc.Count)
	}
	res3 := SLineGraph(example(), 3, Options{NoSqueeze: true})
	cc3 := SConnectedComponents(res3)
	// s=3: {0,1,2} connected; 3 isolated → 2 components.
	if cc3.Count != 2 {
		t.Fatalf("3-line graph components = %d, want 2", cc3.Count)
	}
}

func TestEnsembleMatchesSingleRuns(t *testing.T) {
	h := example()
	ens := SLineGraphEnsemble(h, []int{1, 2, 3}, Options{})
	for s := 1; s <= 3; s++ {
		single := SLineGraph(h, s, Options{})
		if ens[s].Graph.NumEdges() != single.Graph.NumEdges() {
			t.Fatalf("s=%d: ensemble %d edges, single %d", s,
				ens[s].Graph.NumEdges(), single.Graph.NumEdges())
		}
	}
}

func TestAlgorithmsAgreeViaFacade(t *testing.T) {
	h := example()
	a1 := SLineGraph(h, 2, Options{Algorithm: AlgoSetIntersection, ExactWeights: true})
	a2 := SLineGraph(h, 2, Options{Algorithm: AlgoHashmap})
	a2t := SLineGraph(h, 2, Options{Algorithm: AlgoHashmap, TLSDenseCounters: true})
	a3 := SLineGraph(h, 2, Options{Algorithm: AlgoEnsemble})
	sp := SLineGraph(h, 2, Options{Algorithm: AlgoSpGEMM})
	auto := SLineGraph(h, 2, Options{Algorithm: AlgoAuto})
	if !reflect.DeepEqual(a1.Graph.Edges(), a2.Graph.Edges()) {
		t.Fatal("algorithm 1 and 2 disagree")
	}
	if !reflect.DeepEqual(a2.Graph.Edges(), a2t.Graph.Edges()) {
		t.Fatal("counter stores disagree")
	}
	for name, res := range map[string]*Result{"ensemble": a3, "spgemm": sp, "auto": auto} {
		if !reflect.DeepEqual(res.Graph.Edges(), a2.Graph.Edges()) {
			t.Fatalf("%s strategy disagrees with algorithm 2", name)
		}
	}
	if auto.Plan.Strategy == "" {
		t.Fatal("planner default must record its plan")
	}
}

func TestSLineGraphsBatchMatchesSingles(t *testing.T) {
	h := example()
	batch := SLineGraphs(h, []int{1, 2, 3, 4}, Options{})
	if len(batch) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(batch))
	}
	for s := 1; s <= 4; s++ {
		single := SLineGraph(h, s, Options{})
		if !reflect.DeepEqual(batch[s].Graph.Edges(), single.Graph.Edges()) {
			t.Fatalf("s=%d: batch differs from single run", s)
		}
	}
	cliques := SCliqueGraphs(h, []int{1, 2}, Options{NoSqueeze: true})
	want := SCliqueGraph(h, 1, Options{NoSqueeze: true})
	if !reflect.DeepEqual(cliques[1].Graph.Edges(), want.Graph.Edges()) {
		t.Fatal("batched clique graphs differ from single run")
	}
}

func TestBetweennessAndPageRankOnLineGraph(t *testing.T) {
	res := SLineGraph(example(), 1, Options{NoSqueeze: true})
	b := SBetweenness(res, 2)
	if len(b) != 4 {
		t.Fatalf("betweenness len = %d, want 4", len(b))
	}
	// Node 2 (hyperedge 3) is the cut vertex between node 3
	// (hyperedge 4) and nodes 0, 1.
	if b[2] <= b[0] || b[2] <= b[1] || b[2] <= b[3] {
		t.Fatalf("hyperedge 3 should have the highest betweenness: %v", b)
	}
	norm := NormalizeBetweenness(b)
	if norm[2] <= 0 || norm[2] > 1 {
		t.Fatalf("normalized betweenness out of range: %v", norm)
	}
	pr := PageRank(res.Graph, 2)
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %f", sum)
	}
}

func TestSDistances(t *testing.T) {
	res := SLineGraph(example(), 1, Options{NoSqueeze: true})
	d := SDistances(res.Graph, 0)
	// 0-1 adjacent, 0-2 adjacent, 0-3 via 2.
	want := []int32{0, 1, 1, 2}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("distances = %v, want %v", d, want)
	}
}

func TestLabelPropagationCCFacade(t *testing.T) {
	res := SLineGraph(example(), 3, Options{NoSqueeze: true})
	lp := LabelPropagationCC(res.Graph, 4)
	uf := SConnectedComponents(res)
	if lp.Count != uf.Count || !reflect.DeepEqual(lp.Label, uf.Label) {
		t.Fatal("LPCC disagrees with union-find")
	}
}

func TestNormalizedAlgebraicConnectivityFacade(t *testing.T) {
	// 1-line graph of the example: triangle (0,1,2) + pendant 3 on 2.
	res := SLineGraph(example(), 1, Options{})
	lam := NormalizedAlgebraicConnectivity(res.Graph)
	if lam <= 0 || lam >= 2 {
		t.Fatalf("λ₂ = %f out of (0,2)", lam)
	}
	// The triangle-only s=2 graph is better connected.
	res2 := SLineGraph(example(), 2, Options{})
	if l2 := NormalizedAlgebraicConnectivity(res2.Graph); l2 <= lam {
		t.Fatalf("λ₂(s=2)=%f should exceed λ₂(s=1)=%f", l2, lam)
	}
}

func TestToplexOption(t *testing.T) {
	res := SLineGraph(example(), 1, Options{Toplex: true})
	// Only toplexes {3, 4} (ids 2, 3) survive → a single edge.
	if res.Graph.NumEdges() != 1 {
		t.Fatalf("toplex 1-line edges = %d, want 1", res.Graph.NumEdges())
	}
}

func TestLoadSaveFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.hgr")
	h := example()
	if err := Save(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != h.NumEdges() || got.Incidences() != h.Incidences() {
		t.Fatal("load/save round trip failed")
	}
}

func TestComputeStatsFacade(t *testing.T) {
	s := ComputeStats("example", example())
	if s.NumEdges != 4 || s.MaxEdgeSize != 5 {
		t.Fatalf("bad stats %+v", s)
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	h := b.Build()
	res := SLineGraph(h, 1, Options{})
	if res.Graph.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", res.Graph.NumEdges())
	}
}
