package hyperline

import (
	"context"
	"fmt"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/measure"
	"hyperline/internal/serve"
)

// Kind selects the projection family of a Query: s-line graphs of the
// hypergraph itself, or s-clique graphs (s-line graphs of the dual).
type Kind string

const (
	// KindLine requests s-line graphs — the default (the zero value
	// "" means KindLine).
	KindLine Kind = "line"
	// KindClique requests s-clique graphs, computed on the dual
	// hypergraph.
	KindClique Kind = "clique"
)

// PlanInfo records the Stage-3 strategy the planner executed and why.
type PlanInfo = core.PlanInfo

// StageTimings records wall-clock time per pipeline stage.
type StageTimings = core.StageTimings

// Query is the unified request object of the v2 API: one projection
// family, an s-list, an optional Stage-5 measure, and the execution
// options — the single shape behind Execute, Session.Execute, and the
// hyperlined POST /v2/query endpoint. The four v1 call families
// (top-level functions, Session methods, serve.Service, the v1 HTTP
// endpoints) are thin wrappers over it.
type Query struct {
	// Dataset names a Session-registered dataset. Only Session.Execute
	// resolves it; exactly one of Dataset and Hypergraph must be set.
	Dataset string
	// Hypergraph supplies the hypergraph directly (no registry, no
	// caching).
	Hypergraph *Hypergraph
	// Kind selects line ("" or KindLine) or clique (KindClique)
	// projections.
	Kind Kind
	// S lists the requested overlap thresholds. Duplicates collapse;
	// results are ordered by ascending distinct s. Values must be ≥ 1
	// and one query may request at most core.MaxSValues values.
	S []int
	// Measure optionally names a registered Stage-5 measure (see
	// Measures) to evaluate on every projection of the sweep.
	Measure string
	// Params are the measure's parameters, validated against its
	// schema before any pipeline work runs.
	Params map[string]string
	// Options are the execution options shared with the v1 API.
	Options Options
	// Deadline optionally bounds the whole query: past it the pipeline
	// aborts cooperatively and Execute returns
	// context.DeadlineExceeded. It combines with any deadline already
	// on the ctx passed to Execute — whichever expires first wins.
	Deadline time.Time
	// Priority classifies the query's Stage-3 work for a Session
	// configured with admission limits (SessionOptions.MaxInflight /
	// ShedCostBudget): interactive work (the zero value) may wait in
	// the bounded admission queue, background work is shed immediately
	// under saturation (ErrSaturated). Ignored by the sessionless
	// Execute, which has no admission controller.
	Priority Priority
}

// kind normalizes and validates the projection family.
func (q Query) kind() (Kind, bool, error) {
	switch q.Kind {
	case "", KindLine:
		return KindLine, false, nil
	case KindClique:
		return KindClique, true, nil
	}
	return "", false, fmt.Errorf("hyperline: unknown query kind %q (want %q or %q)", q.Kind, KindLine, KindClique)
}

// deadlineContext applies Query.Deadline to ctx.
func (q Query) deadlineContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if q.Deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, q.Deadline)
}

// QueryEntry is one per-s outcome of an executed Query.
type QueryEntry struct {
	// S is the overlap threshold this entry answers.
	S int
	// Result is the materialized projection. It is nil when the entry
	// was served purely from a Session's measure cache (the projection
	// was never consulted); on per-s measure failure it remains set,
	// so the projection the measure failed on stays inspectable. Err,
	// not Result, is the success test.
	Result *Result
	// Measure is the measure evaluation, when the query named one.
	Measure *MeasureResult
	// Cached reports whether the served artifact — the measure value
	// for measure queries, the projection otherwise — came from a
	// Session cache or a concurrent identical request. Always false
	// for sessionless Execute calls.
	Cached bool
	// Err is this entry's failure (e.g. a measure source hyperedge
	// with no node at this s). Per-s errors do not fail the whole
	// query.
	Err error
}

// Timings returns the entry's stage timings, zero when the projection
// was never consulted (a pure measure-cache hit).
func (e QueryEntry) Timings() StageTimings {
	if e.Result != nil {
		return e.Result.Timings
	}
	return StageTimings{}
}

// QueryResult is the outcome of one executed Query: ordered per-s
// entries plus the executed plan.
type QueryResult struct {
	// Kind is the normalized projection family.
	Kind Kind
	// Plan records the Stage-3 strategy decision taken (or originally
	// taken, for cached projections); zero when no projection was
	// touched.
	Plan PlanInfo
	// Entries holds one entry per distinct requested s, ascending.
	Entries []QueryEntry
}

// Execute runs a Query against the supplied Hypergraph: validation
// first, then one batched planner-driven Stage 1-4 pass for the whole
// s-list, then — when a measure is named — one Stage-5 evaluation per
// s with per-s errors. Dataset queries need a Session (Session.Execute
// resolves names against its registry and serves repeats from its
// caches).
//
// Cancellation is cooperative end to end: when ctx is cancelled or the
// query's Deadline passes, the pipeline's worker loops abort within a
// bounded latency (roughly one neighbor-list scan plus one Stage-4
// build) and Execute returns the context's error. A nil ctx means
// context.Background().
func Execute(ctx context.Context, q Query) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	kind, dual, err := q.kind()
	if err != nil {
		return nil, err
	}
	if q.Hypergraph == nil {
		if q.Dataset != "" {
			return nil, fmt.Errorf("hyperline: Query.Dataset %q requires a Session — use Session.Execute", q.Dataset)
		}
		return nil, fmt.Errorf("hyperline: Query needs a Hypergraph (or a Dataset with Session.Execute)")
	}
	if q.Dataset != "" {
		return nil, fmt.Errorf("hyperline: set Query.Hypergraph or Query.Dataset, not both")
	}
	if err := core.ValidateSValues(q.S); err != nil {
		return nil, err
	}
	var m measure.Measure
	var p measure.Params
	if q.Measure != "" {
		if m, err = measure.Get(q.Measure); err != nil {
			return nil, err
		}
		if p, err = measure.Canonicalize(m, q.Params); err != nil {
			return nil, err
		}
	}
	ctx, cancel := q.deadlineContext(ctx)
	defer cancel()

	h := q.Hypergraph
	if dual {
		h = h.Dual()
	}
	results, err := core.RunBatch(ctx, h, q.S, q.Options.pipeline())
	if err != nil {
		return nil, err
	}
	distinct := core.DistinctS(q.S)
	out := &QueryResult{Kind: kind, Entries: make([]QueryEntry, len(distinct))}
	out.Plan = results[distinct[0]].Plan
	for i, sVal := range distinct {
		res := results[sVal]
		e := QueryEntry{S: sVal, Result: res}
		if m != nil {
			val, merr := m.Compute(ctx, res, p, q.Options.par())
			switch {
			case merr != nil && ctx.Err() != nil:
				// Cancellation fails the whole query, not one entry.
				return nil, ctx.Err()
			case merr != nil:
				e.Err = merr
			default:
				e.Measure = &MeasureResult{S: sVal, MeasureEntry: serve.NewMeasureEntry(res, val)}
			}
		}
		out.Entries[i] = e
	}
	return out, nil
}

// Execute runs a Query against this Session: Dataset queries resolve
// through the registry and are served from (and recorded in) the
// Session's projection and measure caches, with concurrent identical
// requests deduplicated; a query carrying an ad-hoc Hypergraph runs
// uncached, exactly like the top-level Execute.
//
// Cancellation follows the Execute contract, with one serving-layer
// refinement: if concurrent identical requests share one computation,
// a cancelled caller detaches immediately (receiving ctx.Err()) while
// the computation finishes for the remaining waiters and its result is
// still cached; only when the last waiter cancels does the computation
// itself abort.
func (s *Session) Execute(ctx context.Context, q Query) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.Hypergraph != nil {
		if q.Dataset != "" {
			return nil, fmt.Errorf("hyperline: set Query.Hypergraph or Query.Dataset, not both")
		}
		return Execute(ctx, q)
	}
	kind, dual, err := q.kind()
	if err != nil {
		return nil, err
	}
	ctx, cancel := q.deadlineContext(ctx)
	defer cancel()
	qr, err := s.svc.Query(ctx, serve.QueryRequest{
		Dataset:  q.Dataset,
		Dual:     dual,
		S:        q.S,
		Cfg:      q.Options.pipeline(),
		Measure:  q.Measure,
		Params:   q.Params,
		Priority: q.Priority,
	})
	if err != nil {
		return nil, err
	}
	out := &QueryResult{Kind: kind, Plan: qr.Plan, Entries: make([]QueryEntry, len(qr.Entries))}
	for i, e := range qr.Entries {
		out.Entries[i] = QueryEntry{S: e.S, Result: e.Res, Measure: e.Measure, Cached: e.Cached, Err: e.Err}
	}
	return out, nil
}

// legacyBatch adapts the deprecated batch-shaped v1 functions onto
// Execute, preserving their historical leniency: s values are clamped
// to ≥ 1 rather than rejected, an empty list returns an empty map, and
// lists beyond Execute's MaxSValues bound (a serving-layer DoS guard
// the library API never had) run as successive chunks — per-s output
// is independent of batch shape, so chunking is invisible. Execute
// cannot otherwise fail for these inputs, so a non-nil error is a
// programming error.
func legacyBatch(h *Hypergraph, kind Kind, sValues []int, opt Options) map[int]*Result {
	distinct := core.DistinctS(sValues) // clamps to ≥ 1 and dedupes
	out := make(map[int]*Result, len(distinct))
	for len(distinct) > 0 {
		chunk := distinct
		if len(chunk) > core.MaxSValues {
			chunk = chunk[:core.MaxSValues]
		}
		distinct = distinct[len(chunk):]
		qr, err := Execute(context.Background(), Query{
			Hypergraph: h,
			Kind:       kind,
			S:          chunk,
			Options:    opt,
		})
		if err != nil {
			panic(fmt.Sprintf("hyperline: legacy wrapper: %v", err))
		}
		for _, e := range qr.Entries {
			out[e.S] = e.Result
		}
	}
	return out
}
