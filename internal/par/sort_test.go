package par

import (
	"math/rand"
	"slices"
	"testing"
)

func intLess(a, b int) bool { return a < b }

func randomInts(rng *rand.Rand, n, span int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = rng.Intn(span)
	}
	return xs
}

func TestSortMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 17, 1000, serialSortCutoff - 1, serialSortCutoff * 4, serialSortCutoff*8 + 13}
	for _, n := range sizes {
		for _, w := range []int{1, 2, 8} {
			xs := randomInts(rng, n, n/2+1) // duplicates likely
			want := slices.Clone(xs)
			slices.Sort(want)
			Sort(xs, intLess, Options{Workers: w})
			if !slices.Equal(xs, want) {
				t.Fatalf("Sort n=%d w=%d: mismatch", n, w)
			}
		}
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	n := serialSortCutoff * 4
	asc := make([]int, n)
	desc := make([]int, n)
	for i := range asc {
		asc[i] = i
		desc[i] = n - i
	}
	Sort(asc, intLess, Options{Workers: 4})
	Sort(desc, intLess, Options{Workers: 4})
	if !slices.IsSorted(asc) || !slices.IsSorted(desc) {
		t.Fatal("Sort failed on presorted/reversed input")
	}
}

func TestMergeSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		lists := make([][]int, k)
		var all []int
		for l := range lists {
			n := rng.Intn(5000)
			if trial%5 == 0 && l%2 == 0 {
				n = 0 // exercise empty lists
			}
			lists[l] = randomInts(rng, n, 2000)
			slices.Sort(lists[l])
			all = append(all, lists[l]...)
		}
		slices.Sort(all)
		got := MergeSorted(lists, intLess, Options{Workers: 1 + trial%8})
		if !slices.Equal(got, all) {
			t.Fatalf("trial %d: merge mismatch (k=%d, total=%d)", trial, k, len(all))
		}
	}
}

func TestMergeSortedSingleListAliases(t *testing.T) {
	only := []int{1, 2, 3}
	got := MergeSorted([][]int{nil, only, nil}, intLess, Options{})
	if len(got) != 3 || &got[0] != &only[0] {
		t.Fatal("single non-empty list should be returned without copying")
	}
	if MergeSorted([][]int{nil, {}}, intLess, Options{}) != nil {
		t.Fatal("all-empty merge should return nil")
	}
}

func TestMergeSortedIntoLarge(t *testing.T) {
	// Large enough to take the partitioned parallel path.
	rng := rand.New(rand.NewSource(3))
	lists := make([][]int, 8)
	total := 0
	for l := range lists {
		lists[l] = randomInts(rng, serialSortCutoff*2+l*37, 1<<20)
		slices.Sort(lists[l])
		total += len(lists[l])
	}
	dst := make([]int, total)
	MergeSortedInto(dst, lists, intLess, Options{Workers: 8})
	if !slices.IsSorted(dst) {
		t.Fatal("partitioned merge produced unsorted output")
	}
}

func TestPrefixSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 5, serialSortCutoff * 4} {
		for _, w := range []int{1, 3, 8} {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(rng.Intn(100))
			}
			want := make([]int64, n)
			var sum int64
			for i, x := range xs {
				want[i] = sum
				sum += x
			}
			got := PrefixSum(xs, Options{Workers: w})
			if got != sum {
				t.Fatalf("n=%d w=%d: total %d, want %d", n, w, got, sum)
			}
			if !slices.Equal(xs, want) {
				t.Fatalf("n=%d w=%d: exclusive prefix mismatch", n, w)
			}
		}
	}
}

func TestReduce(t *testing.T) {
	n := 10000
	sum := Reduce(n, Options{Workers: 4}, 0, func(_, i int) int { return i }, func(a, b int) int { return a + b })
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("Reduce sum = %d, want %d", sum, want)
	}
	max := Reduce(n, Options{Workers: 4, Strategy: Cyclic}, -1, func(_, i int) int { return i }, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if max != n-1 {
		t.Fatalf("Reduce max = %d, want %d", max, n-1)
	}
	if got := Reduce(0, Options{}, 0, func(_, i int) int { return 1 }, func(a, b int) int { return a + b }); got != 0 {
		t.Fatalf("empty Reduce should return the identity, got %d", got)
	}
}
