// Package par provides the parallel execution runtime used by the
// s-line graph algorithms: worker pools over index ranges with the two
// workload-distribution strategies studied in the paper (blocked and
// cyclic), granularity (chunk size) control, and per-worker statistics.
//
// It is the Go stand-in for the Intel oneTBB parallel_for construct with
// blocked_range and the paper's custom cyclic range (§III-F of the
// paper). Blocked ranges are scheduled dynamically: workers repeatedly
// claim the next contiguous chunk of Grain indices with an atomic
// fetch-and-add, which gives the same load-balancing effect as oneTBB's
// work stealing for straggler chunks. Cyclic ranges are static: worker w
// of W processes indices w, w+W, w+2W, ... exactly as described in the
// paper.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Strategy selects how loop iterations are distributed among workers.
type Strategy uint8

const (
	// Blocked assigns contiguous chunks of Grain iterations to
	// workers, claimed dynamically (first idle worker takes the next
	// chunk). This is the "B" configurations of Table III.
	Blocked Strategy = iota
	// Cyclic assigns iteration i to worker i%Workers statically. This
	// is the "C" configurations of Table III.
	Cyclic
)

// String returns the one-letter notation used in the paper's Table III.
func (s Strategy) String() string {
	switch s {
	case Blocked:
		return "B"
	case Cyclic:
		return "C"
	default:
		return "?"
	}
}

// DefaultGrain is the default chunk size for Blocked scheduling. The
// paper observes chunk sizes up to 256 perform similarly and larger
// chunks hurt load balance (§III-F "Granularity Control").
const DefaultGrain = 64

// Options configures a parallel loop.
type Options struct {
	// Workers is the number of concurrent workers. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Grain is the chunk size for Blocked scheduling. 0 means
	// DefaultGrain. Cyclic scheduling ignores Grain.
	Grain int
	// Strategy selects Blocked or Cyclic distribution.
	Strategy Strategy
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers returns the worker count a loop with these options
// will use before clamping to the iteration count: Workers, or
// GOMAXPROCS when unset. Useful for sizing per-worker state.
func (o Options) EffectiveWorkers() int { return o.workers() }

func (o Options) grain() int {
	if o.Grain > 0 {
		return o.Grain
	}
	return DefaultGrain
}

// For executes fn(worker, i) for every i in [0, n). Each invocation
// carries the worker index (0 ≤ worker < effective Workers) so callers
// can maintain per-worker (thread-local) state without synchronization,
// mirroring the paper's thread-local hashmaps and edge lists.
//
// For blocks until all iterations complete.
func For(n int, opt Options, fn func(worker, i int)) {
	ForChunks(n, opt, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ForChunks executes fn(worker, lo, hi) over disjoint sub-ranges that
// exactly cover [0, n). Under Blocked scheduling the sub-ranges are
// contiguous chunks of Grain indices claimed dynamically. Under Cyclic
// scheduling each worker receives single-index ranges i, i+W, i+2W, ...;
// fn is invoked with hi = lo+1.
func ForChunks(n int, opt Options, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := opt.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, 0, n)
		return
	}
	switch opt.Strategy {
	case Cyclic:
		cyclicFor(n, w, fn)
	default:
		blockedFor(n, w, opt.grain(), fn)
	}
}

func blockedFor(n, workers, grain int, fn func(worker, lo, hi int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(wk)
	}
	wg.Wait()
}

func cyclicFor(n, workers int, fn func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(worker int) {
			defer wg.Done()
			for i := worker; i < n; i += workers {
				fn(worker, i, i+1)
			}
		}(wk)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// ReduceInt64 runs fn(worker, i) over [0, n) and sums its return values.
func ReduceInt64(n int, opt Options, fn func(worker, i int) int64) int64 {
	w := opt.workers()
	partial := make([]int64, w)
	For(n, opt, func(worker, i int) {
		partial[worker] += fn(worker, i)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// WorkerStats accumulates one counter per worker without
// synchronization; each worker may only touch its own slot. Slots are
// padded to independent cache lines to avoid false sharing in hot inner
// loops (the visit counters of Fig. 10 are bumped per wedge).
type WorkerStats struct {
	slots []paddedInt64
}

type paddedInt64 struct {
	v int64
	_ [56]byte
}

// NewWorkerStats returns stats sized for the given worker count (0
// means GOMAXPROCS).
func NewWorkerStats(workers int) *WorkerStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &WorkerStats{slots: make([]paddedInt64, workers)}
}

// Add adds delta to worker's counter.
func (s *WorkerStats) Add(worker int, delta int64) {
	s.slots[worker].v += delta
}

// PerWorker returns a copy of the per-worker counters.
func (s *WorkerStats) PerWorker() []int64 {
	out := make([]int64, len(s.slots))
	for i := range s.slots {
		out[i] = s.slots[i].v
	}
	return out
}

// Total returns the sum over all workers.
func (s *WorkerStats) Total() int64 {
	var t int64
	for i := range s.slots {
		t += s.slots[i].v
	}
	return t
}
