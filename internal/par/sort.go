package par

import (
	"slices"
	"sort"
)

// serialSortCutoff is the size below which Sort falls back to a plain
// single-threaded pdqsort: goroutine + merge overhead only pays off on
// larger inputs.
const serialSortCutoff = 1 << 13

// Sort sorts data in place by less using a parallel samplesort: the
// slice is split into one run per worker, runs are sorted concurrently,
// and the sorted runs are merged with MergeSortedInto. Equal elements
// may be reordered (the sort is not stable).
func Sort[T any](data []T, less func(a, b T) bool, opt Options) {
	n := len(data)
	w := opt.workers()
	if w > n/serialSortCutoff {
		w = n / serialSortCutoff
	}
	if w <= 1 {
		slices.SortFunc(data, cmpFromLess(less))
		return
	}
	runs := make([][]T, w)
	for i := range runs {
		lo, hi := i*n/w, (i+1)*n/w
		runs[i] = data[lo:hi]
	}
	For(w, Options{Workers: w, Grain: 1, Strategy: opt.Strategy}, func(_, i int) {
		slices.SortFunc(runs[i], cmpFromLess(less))
	})
	scratch := make([]T, n)
	MergeSortedInto(scratch, runs, less, opt)
	copy(data, scratch)
}

func cmpFromLess[T any](less func(a, b T) bool) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
}

// MergeSorted merges k individually sorted lists into one sorted slice.
// When at most one list is non-empty it is returned as-is (aliasing the
// input) — the zero-copy fast path for single-worker runs. The merge is
// not stable across lists: elements comparing equal may appear in any
// list order.
func MergeSorted[T any](lists [][]T, less func(a, b T) bool, opt Options) []T {
	active := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			active = append(active, l)
			total += len(l)
		}
	}
	if len(active) == 0 {
		return nil
	}
	if len(active) == 1 {
		return active[0]
	}
	out := make([]T, total)
	MergeSortedInto(out, active, less, opt)
	return out
}

// MergeSortedInto merges k individually sorted lists into dst, which
// must have length equal to the total input length. The output key
// range is partitioned by sampled pivots and the partitions are merged
// concurrently, so the merge scales with workers while each partition
// is written with a cache-friendly sequential k-way galloping merge.
func MergeSortedInto[T any](dst []T, lists [][]T, less func(a, b T) bool, opt Options) {
	active := lists[:0:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			active = append(active, l)
			total += len(l)
		}
	}
	if total != len(dst) {
		panic("par: MergeSortedInto dst length mismatch")
	}
	if len(active) == 0 {
		return
	}
	if len(active) == 1 {
		copy(dst, active[0])
		return
	}
	w := opt.workers()
	if w > 1+total/serialSortCutoff {
		w = 1 + total/serialSortCutoff
	}
	if w <= 1 {
		kwayMerge(dst, active, less)
		return
	}

	pivots := samplePivots(active, less, w-1)
	parts := len(pivots) + 1
	// bounds[l] holds the partition boundaries of list l:
	// bounds[l][p] .. bounds[l][p+1] is the slab of list l that belongs
	// to output partition p (elements < pivots[p], ≥ pivots[p-1]).
	bounds := make([][]int, len(active))
	for l, list := range active {
		b := make([]int, parts+1)
		for p, pv := range pivots {
			b[p+1] = sort.Search(len(list), func(i int) bool { return !less(list[i], pv) })
		}
		b[parts] = len(list)
		bounds[l] = b
	}
	offs := make([]int, parts+1)
	for p := 0; p < parts; p++ {
		size := 0
		for l := range active {
			size += bounds[l][p+1] - bounds[l][p]
		}
		offs[p+1] = offs[p] + size
	}
	For(parts, Options{Workers: w, Grain: 1}, func(_, p int) {
		slabs := make([][]T, 0, len(active))
		for l, list := range active {
			if lo, hi := bounds[l][p], bounds[l][p+1]; lo < hi {
				slabs = append(slabs, list[lo:hi])
			}
		}
		kwayMerge(dst[offs[p]:offs[p+1]], slabs, less)
	})
}

// samplePivots picks up to want pivot values by sampling each sorted
// list at evenly spaced positions and selecting evenly spaced order
// statistics of the combined sample.
func samplePivots[T any](lists [][]T, less func(a, b T) bool, want int) []T {
	const perList = 16
	var samples []T
	for _, l := range lists {
		step := len(l)/perList + 1
		for i := step / 2; i < len(l); i += step {
			samples = append(samples, l[i])
		}
	}
	slices.SortFunc(samples, cmpFromLess(less))
	if want > len(samples) {
		want = len(samples)
	}
	pivots := make([]T, 0, want)
	for p := 1; p <= want; p++ {
		pv := samples[p*len(samples)/(want+1)]
		// Skip duplicate pivots, which would create empty partitions.
		if len(pivots) == 0 || less(pivots[len(pivots)-1], pv) {
			pivots = append(pivots, pv)
		}
	}
	return pivots
}

// kwayMerge sequentially merges sorted slabs into dst (len(dst) must be
// the total slab length). It gallops: it finds the slab with the
// smallest head, then bulk-copies that slab's run of elements smaller
// than every other head — one comparison per element in the common case
// of long single-source runs (per-worker edge lists interleave in
// grain-sized blocks of the hyperedge ID space).
func kwayMerge[T any](dst []T, slabs [][]T, less func(a, b T) bool) {
	live := make([][]T, 0, len(slabs))
	for _, s := range slabs {
		if len(s) > 0 {
			live = append(live, s)
		}
	}
	pos := 0
	for len(live) > 1 {
		// Find the slab with the minimum head and the second-smallest
		// head value.
		min := 0
		for l := 1; l < len(live); l++ {
			if less(live[l][0], live[min][0]) {
				min = l
			}
		}
		second := -1
		for l := 0; l < len(live); l++ {
			if l == min {
				continue
			}
			if second < 0 || less(live[l][0], live[second][0]) {
				second = l
			}
		}
		bound := live[second][0]
		src := live[min]
		// The head is ≤ every other head; copy it and keep copying
		// while strictly below the second-smallest head.
		run := 1
		for run < len(src) && less(src[run], bound) {
			run++
		}
		pos += copy(dst[pos:], src[:run])
		if run == len(src) {
			live[min] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			live[min] = src[run:]
		}
	}
	if len(live) == 1 {
		copy(dst[pos:], live[0])
	}
}

// PrefixSum replaces xs in place with its exclusive prefix sum and
// returns the total: xs[i] becomes xs[0]+...+xs[i-1]. The scan runs as
// the textbook two-pass parallel algorithm (per-block sums, serial scan
// of the block sums, parallel block rewrite).
func PrefixSum(xs []int64, opt Options) int64 {
	n := len(xs)
	w := opt.workers()
	if w > n/serialSortCutoff {
		w = n / serialSortCutoff
	}
	if w <= 1 {
		var sum int64
		for i, x := range xs {
			xs[i] = sum
			sum += x
		}
		return sum
	}
	blockSums := make([]int64, w)
	For(w, Options{Workers: w, Grain: 1}, func(_, b int) {
		var sum int64
		for _, x := range xs[b*n/w : (b+1)*n/w] {
			sum += x
		}
		blockSums[b] = sum
	})
	var total int64
	for b, s := range blockSums {
		blockSums[b] = total
		total += s
	}
	For(w, Options{Workers: w, Grain: 1}, func(_, b int) {
		sum := blockSums[b]
		block := xs[b*n/w : (b+1)*n/w]
		for i, x := range block {
			block[i] = sum
			sum += x
		}
	})
	return total
}

// Reduce runs fn(worker, i) over [0, n), combining results with the
// associative combine function; zero is the identity value. Per-worker
// partials are combined in worker order, so the result is deterministic
// whenever combine is commutative and associative. Each chunk folds
// into a local accumulator and writes its partial slot once per chunk,
// keeping false sharing on the (unpadded, generic) partial slice off
// the per-item path.
func Reduce[T any](n int, opt Options, zero T, fn func(worker, i int) T, combine func(a, b T) T) T {
	w := opt.workers()
	partial := make([]T, w)
	for i := range partial {
		partial[i] = zero
	}
	ForChunks(n, opt, func(worker, lo, hi int) {
		acc := partial[worker]
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(worker, i))
		}
		partial[worker] = acc
	})
	acc := zero
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}
