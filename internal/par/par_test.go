package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func coverage(t *testing.T, n int, opt Options) {
	t.Helper()
	seen := make([]atomic.Int32, n)
	For(n, opt, func(worker, i int) {
		if i < 0 || i >= n {
			t.Errorf("index %d out of range [0,%d)", i, n)
		}
		seen[i].Add(1)
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want 1 (n=%d opt=%+v)", i, got, n, opt)
		}
	}
}

func TestForCoversBlocked(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 65, 1000} {
		for _, w := range []int{1, 2, 3, 8} {
			for _, g := range []int{1, 3, 64, 1024} {
				coverage(t, n, Options{Workers: w, Grain: g, Strategy: Blocked})
			}
		}
	}
}

func TestForCoversCyclic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 65, 1000} {
		for _, w := range []int{1, 2, 3, 8} {
			coverage(t, n, Options{Workers: w, Strategy: Cyclic})
		}
	}
}

func TestForCoversProperty(t *testing.T) {
	f := func(n uint16, w uint8, g uint8, cyclic bool) bool {
		nn := int(n % 2048)
		opt := Options{Workers: int(w%16) + 1, Grain: int(g%128) + 1}
		if cyclic {
			opt.Strategy = Cyclic
		}
		seen := make([]atomic.Int32, nn)
		For(nn, opt, func(_, i int) { seen[i].Add(1) })
		for i := range seen {
			if seen[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerIndexInRange(t *testing.T) {
	for _, strat := range []Strategy{Blocked, Cyclic} {
		opt := Options{Workers: 4, Strategy: strat}
		For(100, opt, func(worker, i int) {
			if worker < 0 || worker >= 4 {
				t.Errorf("worker %d out of range", worker)
			}
		})
	}
}

func TestCyclicAssignment(t *testing.T) {
	// With static cyclic distribution, index i must be processed by
	// worker i % W.
	const n, w = 97, 4
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	var mu sync.Mutex
	For(n, Options{Workers: w, Strategy: Cyclic}, func(worker, i int) {
		mu.Lock()
		owner[i] = worker
		mu.Unlock()
	})
	for i, got := range owner {
		if got != i%w {
			t.Fatalf("index %d processed by worker %d, want %d", i, got, i%w)
		}
	}
}

func TestForChunksBlockedBounds(t *testing.T) {
	const n = 1000
	opt := Options{Workers: 5, Grain: 64, Strategy: Blocked}
	var covered atomic.Int64
	ForChunks(n, opt, func(worker, lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		if hi-lo > 64 {
			t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
		}
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != n {
		t.Fatalf("covered %d indices, want %d", covered.Load(), n)
	}
}

func TestForSingleWorkerSequential(t *testing.T) {
	// One worker must see indices in ascending order under Blocked.
	var prev = -1
	For(500, Options{Workers: 1, Strategy: Blocked}, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("worker = %d, want 0", worker)
		}
		if i != prev+1 {
			t.Fatalf("out-of-order index %d after %d", i, prev)
		}
		prev = i
	})
}

func TestReduceInt64(t *testing.T) {
	got := ReduceInt64(1001, Options{Workers: 7}, func(_, i int) int64 {
		return int64(i)
	})
	want := int64(1000 * 1001 / 2)
	if got != want {
		t.Fatalf("ReduceInt64 = %d, want %d", got, want)
	}
}

func TestReduceInt64Empty(t *testing.T) {
	if got := ReduceInt64(0, Options{}, func(_, i int) int64 { return 1 }); got != 0 {
		t.Fatalf("ReduceInt64(0) = %d, want 0", got)
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) })
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatal("Do did not run all functions")
	}
}

func TestWorkerStats(t *testing.T) {
	s := NewWorkerStats(4)
	For(1000, Options{Workers: 4}, func(worker, i int) {
		s.Add(worker, 1)
	})
	if s.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", s.Total())
	}
	per := s.PerWorker()
	if len(per) != 4 {
		t.Fatalf("PerWorker len = %d, want 4", len(per))
	}
	var sum int64
	for _, v := range per {
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("sum of per-worker = %d, want 1000", sum)
	}
}

func TestStrategyString(t *testing.T) {
	if Blocked.String() != "B" || Cyclic.String() != "C" {
		t.Fatal("unexpected Strategy notation")
	}
	if Strategy(9).String() != "?" {
		t.Fatal("unknown strategy should stringify to ?")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.workers() < 1 {
		t.Fatal("default workers < 1")
	}
	if o.grain() != DefaultGrain {
		t.Fatalf("default grain = %d, want %d", o.grain(), DefaultGrain)
	}
}

func BenchmarkForBlocked(b *testing.B) {
	opt := Options{Strategy: Blocked, Grain: 256}
	for i := 0; i < b.N; i++ {
		ReduceInt64(1<<16, opt, func(_, i int) int64 { return int64(i & 7) })
	}
}

func BenchmarkForCyclic(b *testing.B) {
	opt := Options{Strategy: Cyclic}
	for i := 0; i < b.N; i++ {
		ReduceInt64(1<<16, opt, func(_, i int) int64 { return int64(i & 7) })
	}
}
