package hg

import (
	"fmt"
	"sort"
)

// Builder accumulates (hyperedge, vertex) incidence pairs and produces
// an immutable CSR Hypergraph. Duplicate pairs are coalesced. The zero
// value is ready to use.
type Builder struct {
	pairs []incidence
	maxE  int64 // max edge id seen, -1 if none
	maxV  int64
}

type incidence struct{ e, v uint32 }

// NewBuilder returns a Builder with capacity for n incidence pairs.
func NewBuilder(n int) *Builder {
	return &Builder{pairs: make([]incidence, 0, n), maxE: -1, maxV: -1}
}

// AddPair records that hyperedge e contains vertex v.
func (b *Builder) AddPair(e, v uint32) {
	if b.pairs == nil {
		b.maxE, b.maxV = -1, -1
	}
	b.pairs = append(b.pairs, incidence{e, v})
	if int64(e) > b.maxE {
		b.maxE = int64(e)
	}
	if int64(v) > b.maxV {
		b.maxV = int64(v)
	}
}

// AddEdge records hyperedge e with the given member vertices.
func (b *Builder) AddEdge(e uint32, vs ...uint32) {
	for _, v := range vs {
		b.AddPair(e, v)
	}
}

// Len returns the number of incidence pairs recorded so far.
func (b *Builder) Len() int { return len(b.pairs) }

// Build produces the hypergraph. Vertex and edge ID spaces are sized by
// the maximum IDs seen (IDs with no incidences become empty edges /
// isolated vertices; use Preprocess to drop them). Build may be called
// once; the builder must not be reused afterwards.
func (b *Builder) Build() *Hypergraph {
	numEdges := int(b.maxE + 1)
	numVertices := int(b.maxV + 1)
	return buildCSR(b.pairs, numEdges, numVertices)
}

// BuildWithSize is like Build but forces the ID spaces to the given
// sizes, which must be large enough to cover every recorded pair.
func (b *Builder) BuildWithSize(numEdges, numVertices int) (*Hypergraph, error) {
	if int64(numEdges) <= b.maxE || int64(numVertices) <= b.maxV {
		return nil, fmt.Errorf("hg: size (%d edges, %d vertices) too small for ids (max e=%d, v=%d)",
			numEdges, numVertices, b.maxE, b.maxV)
	}
	return buildCSR(b.pairs, numEdges, numVertices), nil
}

// FromEdgeSlices builds a hypergraph where edges[i] lists the member
// vertices of hyperedge i. numVertices may be 0 to size the vertex
// space from the data.
func FromEdgeSlices(edges [][]uint32, numVertices int) *Hypergraph {
	n := 0
	for _, e := range edges {
		n += len(e)
	}
	b := NewBuilder(n)
	for i, e := range edges {
		b.AddEdge(uint32(i), e...)
	}
	if int64(len(edges)) > b.maxE {
		b.maxE = int64(len(edges)) - 1
	}
	if int64(numVertices) > b.maxV {
		b.maxV = int64(numVertices) - 1
	}
	return b.Build()
}

// buildCSR constructs both CSR orientations from incidence pairs,
// sorting adjacency lists and dropping duplicate pairs.
func buildCSR(pairs []incidence, numEdges, numVertices int) *Hypergraph {
	// Sort pairs by (e, v) to produce sorted edge rows and detect
	// duplicates in a single pass.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].e != pairs[j].e {
			return pairs[i].e < pairs[j].e
		}
		return pairs[i].v < pairs[j].v
	})
	dedup := pairs[:0]
	for i, p := range pairs {
		if i > 0 && p == pairs[i-1] {
			continue
		}
		dedup = append(dedup, p)
	}
	pairs = dedup

	h := &Hypergraph{
		numVertices: numVertices,
		numEdges:    numEdges,
		eOff:        make([]int64, numEdges+1),
		eAdj:        make([]uint32, len(pairs)),
		vOff:        make([]int64, numVertices+1),
		vAdj:        make([]uint32, len(pairs)),
	}
	// Edge orientation: pairs are already grouped by e with sorted v.
	for _, p := range pairs {
		h.eOff[p.e+1]++
	}
	for e := 0; e < numEdges; e++ {
		h.eOff[e+1] += h.eOff[e]
	}
	for i, p := range pairs {
		h.eAdj[i] = p.v
		_ = i
	}
	// Vertex orientation via counting sort on v; edge IDs arrive in
	// ascending order because pairs are sorted by (e, v) and we scan
	// in order, so rows come out sorted.
	for _, p := range pairs {
		h.vOff[p.v+1]++
	}
	for v := 0; v < numVertices; v++ {
		h.vOff[v+1] += h.vOff[v]
	}
	cursor := make([]int64, numVertices)
	copy(cursor, h.vOff[:numVertices])
	for _, p := range pairs {
		h.vAdj[cursor[p.v]] = p.e
		cursor[p.v]++
	}
	return h
}

// EdgeSlices returns the hypergraph as a slice of vertex lists, one per
// hyperedge (a deep copy; useful for tests and serialization).
func (h *Hypergraph) EdgeSlices() [][]uint32 {
	out := make([][]uint32, h.numEdges)
	for e := 0; e < h.numEdges; e++ {
		vs := h.EdgeVertices(uint32(e))
		out[e] = append([]uint32(nil), vs...)
	}
	return out
}
