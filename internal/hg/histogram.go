package hg

import "sort"

// Histogram is a log₂-bucketed degree histogram: Buckets[k] counts
// values in [2ᵏ, 2ᵏ⁺¹), with zeros counted separately. Degree
// histograms characterize the skew that drives the paper's workload
// balancing choices (relabel-by-degree, cyclic partitioning).
type Histogram struct {
	Zeros   int64
	Buckets []int64
	// Percentiles at 50/90/99/100 (max) over the non-zero values.
	P50, P90, P99, Max int
}

// EdgeSizeHistogram buckets the hyperedge sizes of h.
func EdgeSizeHistogram(h *Hypergraph) Histogram {
	vals := make([]int, h.NumEdges())
	for e := range vals {
		vals[e] = h.EdgeSize(uint32(e))
	}
	return histogram(vals)
}

// VertexDegreeHistogram buckets the vertex degrees of h.
func VertexDegreeHistogram(h *Hypergraph) Histogram {
	vals := make([]int, h.NumVertices())
	for v := range vals {
		vals[v] = h.VertexDegree(uint32(v))
	}
	return histogram(vals)
}

func histogram(vals []int) Histogram {
	var hist Histogram
	nonzero := make([]int, 0, len(vals))
	for _, v := range vals {
		if v == 0 {
			hist.Zeros++
			continue
		}
		nonzero = append(nonzero, v)
		bucket := 0
		for x := v; x > 1; x >>= 1 {
			bucket++
		}
		for len(hist.Buckets) <= bucket {
			hist.Buckets = append(hist.Buckets, 0)
		}
		hist.Buckets[bucket]++
	}
	if len(nonzero) == 0 {
		return hist
	}
	sort.Ints(nonzero)
	pick := func(q float64) int {
		i := int(q * float64(len(nonzero)-1))
		return nonzero[i]
	}
	hist.P50 = pick(0.50)
	hist.P90 = pick(0.90)
	hist.P99 = pick(0.99)
	hist.Max = nonzero[len(nonzero)-1]
	return hist
}

// Skew returns Max/P50, a crude skewness indicator (0 when empty). The
// paper's "skewed degree distribution" inputs have Skew ≫ 1.
func (h Histogram) Skew() float64 {
	if h.P50 == 0 {
		return 0
	}
	return float64(h.Max) / float64(h.P50)
}
