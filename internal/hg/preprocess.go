package hg

import "sort"

// PreprocessResult is the output of Stage 1 of the framework: a cleaned
// (and optionally relabeled) hypergraph plus the ID mappings back to the
// input.
type PreprocessResult struct {
	H *Hypergraph
	// EdgeOrig[newEdgeID] = edge ID in the input hypergraph.
	EdgeOrig []uint32
	// VertexOrig[newVertexID] = vertex ID in the input hypergraph.
	VertexOrig []uint32
}

// RelabelOrder selects the relabel-by-degree ordering applied to
// hyperedge IDs in Stage 1 (§IV Stage-1 of the paper). Relabeling by
// ascending degree, combined with the upper-triangle wedge traversal,
// improves load balance and cache reuse on skewed inputs.
type RelabelOrder uint8

const (
	// RelabelNone keeps input hyperedge IDs ("N" in Table III).
	RelabelNone RelabelOrder = iota
	// RelabelAscending orders hyperedges by non-decreasing size
	// ("A" in Table III).
	RelabelAscending
	// RelabelDescending orders hyperedges by non-increasing size
	// ("D" in Table III).
	RelabelDescending
	// RelabelAuto defers the choice among the three concrete orders to
	// the planner, which resolves it from the hypergraph's degree
	// statistics (or from calibrated cost observations) before any
	// pipeline stage runs. It is an explicit opt-in — the zero value
	// stays RelabelNone — and never reaches Preprocess: knob
	// resolution replaces it with a concrete order first. Written "*"
	// in the extended Table III notation (e.g. "2C*").
	RelabelAuto
)

// String returns the one-letter notation used in the paper's Table III,
// extended with "*" for the planner-resolved order.
func (r RelabelOrder) String() string {
	switch r {
	case RelabelNone:
		return "N"
	case RelabelAscending:
		return "A"
	case RelabelDescending:
		return "D"
	case RelabelAuto:
		return "*"
	default:
		return "?"
	}
}

// Preprocess removes empty hyperedges and isolated vertices and applies
// the requested relabel-by-degree ordering to the hyperedge IDs,
// compacting both ID spaces. The mappings from new to original IDs are
// returned so downstream results can be reported in input terms.
func Preprocess(h *Hypergraph, order RelabelOrder) *PreprocessResult {
	// Surviving edges, in their final order.
	edges := make([]uint32, 0, h.numEdges)
	for e := 0; e < h.numEdges; e++ {
		if h.EdgeSize(uint32(e)) > 0 {
			edges = append(edges, uint32(e))
		}
	}
	switch order {
	case RelabelAscending:
		sort.SliceStable(edges, func(i, j int) bool {
			return h.EdgeSize(edges[i]) < h.EdgeSize(edges[j])
		})
	case RelabelDescending:
		sort.SliceStable(edges, func(i, j int) bool {
			return h.EdgeSize(edges[i]) > h.EdgeSize(edges[j])
		})
	}

	// Surviving vertices keep their relative order (vertex IDs are
	// never relabeled by degree in the paper's edge-centric setting;
	// they are only compacted).
	vertexNew := make([]int64, h.numVertices)
	for v := range vertexNew {
		vertexNew[v] = -1
	}
	vertexOrig := make([]uint32, 0, h.numVertices)
	for v := 0; v < h.numVertices; v++ {
		if h.VertexDegree(uint32(v)) > 0 {
			vertexNew[v] = int64(len(vertexOrig))
			vertexOrig = append(vertexOrig, uint32(v))
		}
	}

	b := NewBuilder(int(h.Incidences()))
	for newE, origE := range edges {
		for _, v := range h.EdgeVertices(origE) {
			b.AddPair(uint32(newE), uint32(vertexNew[v]))
		}
	}
	nh, err := b.BuildWithSize(len(edges), len(vertexOrig))
	if err != nil {
		// Unreachable: sizes are derived from the pairs above.
		panic(err)
	}
	return &PreprocessResult{H: nh, EdgeOrig: edges, VertexOrig: vertexOrig}
}

// InducedByEdges returns the sub-hypergraph containing only the given
// hyperedges (vertex space unchanged), plus the mapping from new edge
// IDs to the originals. Used by Stage 2 (toplex simplification).
func InducedByEdges(h *Hypergraph, keep []uint32) (*Hypergraph, []uint32) {
	b := NewBuilder(0)
	for newE, origE := range keep {
		for _, v := range h.EdgeVertices(origE) {
			b.AddPair(uint32(newE), v)
		}
	}
	nh, err := b.BuildWithSize(len(keep), h.numVertices)
	if err != nil {
		panic(err)
	}
	orig := append([]uint32(nil), keep...)
	return nh, orig
}
