package hg

import "fmt"

// Stats summarizes a hypergraph with the columns of the paper's
// Table IV: vertex/edge counts, average and maximum degrees on both
// sides.
type Stats struct {
	Name            string
	NumVertices     int   // |V|
	NumEdges        int   // |E|
	Incidences      int64 // |H|, non-zeros of the incidence matrix
	AvgVertexDegree float64
	AvgEdgeSize     float64
	MaxVertexDegree int // ∆v
	MaxEdgeSize     int // ∆e
	// WedgePairs is Σ_v deg(v)·(deg(v)−1)/2: the number of unordered
	// hyperedge pairs sharing a vertex, counted with multiplicity. It
	// upper-bounds both the s-line candidate pairs and the overlap
	// counters Algorithm 3 must materialize, which makes it the
	// planner's primary cost-model input.
	WedgePairs int64
}

// ComputeStats derives Table IV-style statistics for h.
func ComputeStats(name string, h *Hypergraph) Stats {
	s := Stats{
		Name:            name,
		NumVertices:     h.NumVertices(),
		NumEdges:        h.NumEdges(),
		Incidences:      h.Incidences(),
		MaxVertexDegree: h.MaxVertexDegree(),
		MaxEdgeSize:     h.MaxEdgeSize(),
	}
	if s.NumVertices > 0 {
		s.AvgVertexDegree = float64(s.Incidences) / float64(s.NumVertices)
	}
	if s.NumEdges > 0 {
		s.AvgEdgeSize = float64(s.Incidences) / float64(s.NumEdges)
	}
	for v := 0; v < s.NumVertices; v++ {
		d := int64(h.VertexDegree(uint32(v)))
		s.WedgePairs += d * (d - 1) / 2
	}
	return s
}

// String formats the stats as one row in the style of Table IV.
func (s Stats) String() string {
	return fmt.Sprintf("%-22s |V|=%-9d |E|=%-9d dv=%-7.1f de=%-7.1f ∆v=%-8d ∆e=%d",
		s.Name, s.NumVertices, s.NumEdges, s.AvgVertexDegree, s.AvgEdgeSize,
		s.MaxVertexDegree, s.MaxEdgeSize)
}
