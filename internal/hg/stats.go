package hg

import "fmt"

// Stats summarizes a hypergraph with the columns of the paper's
// Table IV: vertex/edge counts, average and maximum degrees on both
// sides.
type Stats struct {
	Name            string
	NumVertices     int   // |V|
	NumEdges        int   // |E|
	Incidences      int64 // |H|, non-zeros of the incidence matrix
	AvgVertexDegree float64
	AvgEdgeSize     float64
	MaxVertexDegree int // ∆v
	MaxEdgeSize     int // ∆e
}

// ComputeStats derives Table IV-style statistics for h.
func ComputeStats(name string, h *Hypergraph) Stats {
	s := Stats{
		Name:            name,
		NumVertices:     h.NumVertices(),
		NumEdges:        h.NumEdges(),
		Incidences:      h.Incidences(),
		MaxVertexDegree: h.MaxVertexDegree(),
		MaxEdgeSize:     h.MaxEdgeSize(),
	}
	if s.NumVertices > 0 {
		s.AvgVertexDegree = float64(s.Incidences) / float64(s.NumVertices)
	}
	if s.NumEdges > 0 {
		s.AvgEdgeSize = float64(s.Incidences) / float64(s.NumEdges)
	}
	return s
}

// String formats the stats as one row in the style of Table IV.
func (s Stats) String() string {
	return fmt.Sprintf("%-22s |V|=%-9d |E|=%-9d dv=%-7.1f de=%-7.1f ∆v=%-8d ∆e=%d",
		s.Name, s.NumVertices, s.NumEdges, s.AvgVertexDegree, s.AvgEdgeSize,
		s.MaxVertexDegree, s.MaxEdgeSize)
}
