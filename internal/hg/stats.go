package hg

import "fmt"

// Stats summarizes a hypergraph with the columns of the paper's
// Table IV: vertex/edge counts, average and maximum degrees on both
// sides.
type Stats struct {
	Name            string
	NumVertices     int   // |V|
	NumEdges        int   // |E|
	Incidences      int64 // |H|, non-zeros of the incidence matrix
	AvgVertexDegree float64
	AvgEdgeSize     float64
	MaxVertexDegree int // ∆v
	MaxEdgeSize     int // ∆e
	// WedgePairs is Σ_v deg(v)·(deg(v)−1)/2: the number of unordered
	// hyperedge pairs sharing a vertex, counted with multiplicity. It
	// upper-bounds both the s-line candidate pairs and the overlap
	// counters Algorithm 3 must materialize, which makes it the
	// planner's primary cost-model input.
	WedgePairs int64
	// ToplexSample estimates, from a deterministic sampled containment
	// probe (SampleContainment), the fraction of hyperedges that are
	// not toplexes — i.e. the fraction Stage-2 simplification would
	// remove. It drives the planner's toplex knob; the exact ratio
	// costs a full Toplexes pass. ComputeStats leaves it zero (the
	// probe, though capped, is not free and sits on latency-bounded
	// paths); populate it with SampleContainment where the toplex knob
	// is actually resolved, as the serving registry does at dataset
	// registration.
	ToplexSample float64
}

// ComputeStats derives Table IV-style statistics for h.
func ComputeStats(name string, h *Hypergraph) Stats {
	s := Stats{
		Name:            name,
		NumVertices:     h.NumVertices(),
		NumEdges:        h.NumEdges(),
		Incidences:      h.Incidences(),
		MaxVertexDegree: h.MaxVertexDegree(),
		MaxEdgeSize:     h.MaxEdgeSize(),
	}
	if s.NumVertices > 0 {
		s.AvgVertexDegree = float64(s.Incidences) / float64(s.NumVertices)
	}
	if s.NumEdges > 0 {
		s.AvgEdgeSize = float64(s.Incidences) / float64(s.NumEdges)
	}
	for v := 0; v < s.NumVertices; v++ {
		d := int64(h.VertexDegree(uint32(v)))
		s.WedgePairs += d * (d - 1) / 2
	}
	return s
}

// Containment-probe bounds. The probe is a planner input, not an exact
// Stage-2 answer, so both the number of sampled hyperedges and the
// per-sample candidate scan are capped: the whole probe costs
// O(containmentSamples · containmentScanCap · ∆e) in the worst case,
// independent of |E|.
const (
	// containmentSamples is how many hyperedges the probe inspects,
	// spread over the ID space with a fixed stride.
	containmentSamples = 64
	// containmentScanCap bounds how many candidate containers are
	// tested per sampled hyperedge before the probe gives up on it
	// (counting it as a toplex, the conservative direction: an
	// underestimate can only make the planner skip simplification).
	containmentScanCap = 128
)

// SampleContainment estimates the fraction of hyperedges that are not
// toplexes by testing a deterministic stride-spread sample of
// hyperedges for containment in another hyperedge. A sampled hyperedge
// e counts as contained when some hyperedge f ⊇ e exists with f ≠ e;
// among identical vertex sets only the lowest ID counts as the toplex,
// matching Stage 2's duplicate rule. Candidates are scanned through
// e's lowest-degree member vertex (every container of e must contain
// it), capped at containmentScanCap candidates per sample.
func SampleContainment(h *Hypergraph) float64 {
	m := h.NumEdges()
	if m == 0 {
		return 0
	}
	stride := m / containmentSamples
	if stride < 1 {
		stride = 1
	}
	sampled, contained := 0, 0
	for e := 0; e < m; e += stride {
		sampled++
		if sampledEdgeContained(h, uint32(e)) {
			contained++
		}
	}
	return float64(contained) / float64(sampled)
}

// sampledEdgeContained reports whether hyperedge e is strictly
// contained in (or a higher-ID duplicate of) another hyperedge, giving
// up after containmentScanCap candidates.
func sampledEdgeContained(h *Hypergraph, e uint32) bool {
	verts := h.EdgeVertices(e)
	if len(verts) == 0 {
		return true // empty hyperedges are never toplexes
	}
	probe := verts[0]
	for _, v := range verts[1:] {
		if h.VertexDegree(v) < h.VertexDegree(probe) {
			probe = v
		}
	}
	scanned := 0
	size := len(verts)
	for _, f := range h.VertexEdges(probe) {
		if f == e {
			continue
		}
		fs := h.EdgeSize(f)
		if fs < size || (fs == size && f > e) {
			continue // too small, or the duplicate rule keeps e
		}
		if scanned++; scanned > containmentScanCap {
			return false
		}
		if IntersectSize(verts, h.EdgeVertices(f)) == size {
			return true
		}
	}
	return false
}

// String formats the stats as one row in the style of Table IV.
func (s Stats) String() string {
	return fmt.Sprintf("%-22s |V|=%-9d |E|=%-9d dv=%-7.1f de=%-7.1f ∆v=%-8d ∆e=%d",
		s.Name, s.NumVertices, s.NumEdges, s.AvgVertexDegree, s.AvgEdgeSize,
		s.MaxVertexDegree, s.MaxEdgeSize)
}
