// Package hg implements the hypergraph substrate: compressed sparse row
// (CSR) storage of the bipartite incidence structure B(H) with both
// orientations (edge→vertices and vertex→edges), the O(1) dual view, and
// the pre-processing operations of Stage 1 of the paper's framework
// (removing empty edges and isolated vertices, relabel-by-degree).
//
// A hypergraph H = ⟨V, E⟩ has n vertices and an indexable family of m
// hyperedges, each an arbitrary subset of V. Vertices and hyperedges are
// identified by dense uint32 IDs. Both CSR adjacency lists are kept
// sorted, which the set-intersection algorithm (Algorithm 1) relies on.
package hg

import (
	"fmt"
	"runtime"
	"sync"
)

// Hypergraph is an immutable hypergraph in CSR form. Construct one with
// a Builder, FromEdgeSlices, or the hgio readers.
//
// The four CSR arrays may be heap-allocated or may alias out-of-heap
// storage (an mmap'd file — see hgio.MapBinary). In the latter case the
// hypergraph carries a backing handle shared by every view derived from
// it (Dual), and Close releases the storage; see SetReleaser.
type Hypergraph struct {
	numVertices int
	numEdges    int

	// edge -> sorted vertex IDs (rows of the incidence matrix Hᵀ).
	eOff []int64
	eAdj []uint32
	// vertex -> sorted edge IDs (rows of the incidence matrix H).
	vOff []int64
	vAdj []uint32

	// back owns out-of-heap storage backing the CSR arrays; nil for
	// heap-backed hypergraphs.
	back *backing
}

// backing owns the out-of-heap storage (typically an mmap) behind a
// Hypergraph. It is shared by pointer across every view of the same
// storage, so the release runs exactly once no matter how many views
// call Close — and a GC finalizer on the backing (set by the mapper)
// fires only when no view references it anymore.
type backing struct {
	once    sync.Once
	release func() error
	err     error
}

// close releases the storage exactly once and remembers the outcome.
func (b *backing) close() error {
	b.once.Do(func() {
		if b.release != nil {
			b.err = b.release()
		}
	})
	return b.err
}

// SetReleaser attaches the function that releases h's out-of-heap
// storage. Mappers such as hgio.MapBinary call it once, right after
// constructing the hypergraph; heap-backed hypergraphs never carry one.
// Besides enabling Close, it arranges a GC finalizer on the shared
// backing handle, so dropping the last reference to the hypergraph (and
// every Dual view of it) eventually releases the storage even without
// an explicit Close — the lifecycle a serving registry needs when it
// replaces a dataset that concurrent readers may still hold.
func (h *Hypergraph) SetReleaser(release func() error) {
	h.back = &backing{release: release}
	runtime.SetFinalizer(h.back, func(b *backing) { _ = b.close() })
}

// Close releases the hypergraph's out-of-heap storage (an mmap), if
// any; it is a no-op for heap-backed hypergraphs and idempotent
// otherwise. Views created by Dual share the backing: Close on any view
// releases it for all, so call it only when no view is in use anymore.
// Long-lived servers that replace datasets under concurrent readers
// should instead drop all references and let the mapper's GC finalizer
// release the storage once the last reader is gone.
func (h *Hypergraph) Close() error {
	if h.back == nil {
		return nil
	}
	return h.back.close()
}

// Mapped reports whether the hypergraph's CSR arrays alias out-of-heap
// storage (and therefore have a Close lifecycle).
func (h *Hypergraph) Mapped() bool { return h.back != nil }

// CSR exposes the raw CSR arrays of both orientations: eOff/eAdj are
// the edge→vertices rows, vOff/vAdj the vertex→edges rows, with
// eOff[len]=vOff[len]=Incidences(). The slices alias internal storage
// and must not be modified; hgio serializers and the spill tier read
// them to persist hypergraphs without re-walking the structure.
func (h *Hypergraph) CSR() (eOff []int64, eAdj []uint32, vOff []int64, vAdj []uint32) {
	return h.eOff, h.eAdj, h.vOff, h.vAdj
}

// FromCSR constructs a hypergraph directly from its four CSR arrays
// (which it aliases, not copies — the caller transfers ownership).
// Only the O(1) frame invariants are checked here: offset lengths and
// endpoints, and matching incidence counts. Callers holding untrusted
// data must validate content themselves (hgio.ReadBinary derives the
// vertex orientation instead of trusting it; Validate checks
// everything at O(nnz log) cost).
func FromCSR(numEdges, numVertices int, eOff []int64, eAdj []uint32, vOff []int64, vAdj []uint32) (*Hypergraph, error) {
	if len(eOff) != numEdges+1 || len(vOff) != numVertices+1 {
		return nil, fmt.Errorf("hg: offset lengths (%d, %d) do not match sizes (%d edges, %d vertices)",
			len(eOff), len(vOff), numEdges, numVertices)
	}
	if len(eAdj) != len(vAdj) {
		return nil, fmt.Errorf("hg: orientation mismatch: %d edge-side vs %d vertex-side incidences",
			len(eAdj), len(vAdj))
	}
	if eOff[0] != 0 || eOff[numEdges] != int64(len(eAdj)) {
		return nil, fmt.Errorf("hg: edge offsets endpoints [%d,%d], want [0,%d]", eOff[0], eOff[numEdges], len(eAdj))
	}
	if vOff[0] != 0 || vOff[numVertices] != int64(len(vAdj)) {
		return nil, fmt.Errorf("hg: vertex offsets endpoints [%d,%d], want [0,%d]", vOff[0], vOff[numVertices], len(vAdj))
	}
	return &Hypergraph{
		numVertices: numVertices,
		numEdges:    numEdges,
		eOff:        eOff,
		eAdj:        eAdj,
		vOff:        vOff,
		vAdj:        vAdj,
	}, nil
}

// NumVertices returns n = |V|.
func (h *Hypergraph) NumVertices() int { return h.numVertices }

// NumEdges returns m = |E|.
func (h *Hypergraph) NumEdges() int { return h.numEdges }

// Incidences returns the number of (vertex, edge) incidence pairs, i.e.
// the number of non-zeros |H| of the incidence matrix.
func (h *Hypergraph) Incidences() int64 { return int64(len(h.eAdj)) }

// EdgeVertices returns the sorted vertex list of hyperedge e. The
// returned slice aliases internal storage and must not be modified.
func (h *Hypergraph) EdgeVertices(e uint32) []uint32 {
	return h.eAdj[h.eOff[e]:h.eOff[e+1]]
}

// VertexEdges returns the sorted list of hyperedges containing vertex
// v. The returned slice aliases internal storage and must not be
// modified.
func (h *Hypergraph) VertexEdges(v uint32) []uint32 {
	return h.vAdj[h.vOff[v]:h.vOff[v+1]]
}

// EdgeSize returns |e|, the number of vertices in hyperedge e. The
// paper calls this inc({e}) and, in the context of the algorithms'
// degree-based pruning, the "degree" of the hyperedge.
func (h *Hypergraph) EdgeSize(e uint32) int {
	return int(h.eOff[e+1] - h.eOff[e])
}

// VertexDegree returns deg(v) = adj({v}), the number of hyperedges
// containing v.
func (h *Hypergraph) VertexDegree(v uint32) int {
	return int(h.vOff[v+1] - h.vOff[v])
}

// Dual returns the dual hypergraph H*: vertices of H* are the
// hyperedges of H and vice versa (the transposed incidence matrix).
// The view shares storage with h — including any out-of-heap backing,
// which the view keeps alive — so Dual is O(1) and (H*)* = H.
func (h *Hypergraph) Dual() *Hypergraph {
	return &Hypergraph{
		numVertices: h.numEdges,
		numEdges:    h.numVertices,
		eOff:        h.vOff,
		eAdj:        h.vAdj,
		vOff:        h.eOff,
		vAdj:        h.eAdj,
		back:        h.back,
	}
}

// Inc returns inc(e, f) = |e ∩ f|, the number of vertices shared by
// hyperedges e and f, by merging the two sorted vertex lists.
func (h *Hypergraph) Inc(e, f uint32) int {
	return IntersectSize(h.EdgeVertices(e), h.EdgeVertices(f))
}

// Adj returns adj(u, v) = |{e ⊇ {u,v}}|, the number of hyperedges
// containing both vertices.
func (h *Hypergraph) Adj(u, v uint32) int {
	return IntersectSize(h.VertexEdges(u), h.VertexEdges(v))
}

// HasVertex reports whether hyperedge e contains vertex v (binary
// search over the sorted vertex list).
func (h *Hypergraph) HasVertex(e, v uint32) bool {
	vs := h.EdgeVertices(e)
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(vs) && vs[lo] == v
}

// MaxEdgeSize returns ∆e, the maximum hyperedge size (0 for an
// edge-less hypergraph).
func (h *Hypergraph) MaxEdgeSize() int {
	max := 0
	for e := 0; e < h.numEdges; e++ {
		if s := h.EdgeSize(uint32(e)); s > max {
			max = s
		}
	}
	return max
}

// MaxVertexDegree returns ∆v, the maximum vertex degree.
func (h *Hypergraph) MaxVertexDegree() int {
	return h.Dual().MaxEdgeSize()
}

// Validate checks internal CSR consistency: monotone offsets, sorted
// strictly-increasing adjacency lists, in-range IDs, and that the two
// orientations describe the same incidence set.
func (h *Hypergraph) Validate() error {
	if err := validateCSR(h.eOff, h.eAdj, h.numEdges, h.numVertices, "edge"); err != nil {
		return err
	}
	if err := validateCSR(h.vOff, h.vAdj, h.numVertices, h.numEdges, "vertex"); err != nil {
		return err
	}
	if len(h.eAdj) != len(h.vAdj) {
		return fmt.Errorf("hg: orientation mismatch: %d edge-side vs %d vertex-side incidences",
			len(h.eAdj), len(h.vAdj))
	}
	// Cross-check: every (e, v) incidence must appear in the dual
	// orientation.
	for e := 0; e < h.numEdges; e++ {
		for _, v := range h.EdgeVertices(uint32(e)) {
			if !contains(h.VertexEdges(v), uint32(e)) {
				return fmt.Errorf("hg: incidence (e=%d, v=%d) missing from vertex orientation", e, v)
			}
		}
	}
	return nil
}

func validateCSR(off []int64, adj []uint32, rows, cols int, kind string) error {
	if len(off) != rows+1 {
		return fmt.Errorf("hg: %s offsets length %d, want %d", kind, len(off), rows+1)
	}
	if off[0] != 0 || off[rows] != int64(len(adj)) {
		return fmt.Errorf("hg: %s offsets endpoints [%d,%d], want [0,%d]", kind, off[0], off[rows], len(adj))
	}
	for i := 0; i < rows; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("hg: %s offsets not monotone at %d", kind, i)
		}
		row := adj[off[i]:off[i+1]]
		for j, id := range row {
			if int(id) >= cols {
				return fmt.Errorf("hg: %s row %d has out-of-range id %d (cols=%d)", kind, i, id, cols)
			}
			if j > 0 && row[j-1] >= id {
				return fmt.Errorf("hg: %s row %d not strictly sorted at pos %d", kind, i, j)
			}
		}
	}
	return nil
}

func contains(sorted []uint32, x uint32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}

// IntersectSize returns the size of the intersection of two sorted
// uint32 slices.
func IntersectSize(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IntersectAtLeast reports whether the sorted slices a and b share at
// least s elements, short-circuiting as soon as the outcome is decided
// in either direction: it returns early both when s common elements
// have been confirmed and when the remaining elements cannot reach s.
// This is the "short-circuiting set intersection" heuristic of
// Algorithm 1.
func IntersectAtLeast(a, b []uint32, s int) bool {
	if s <= 0 {
		return true
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Remaining potential: even if every remaining element
		// matched, can we still reach s?
		rem := len(a) - i
		if r := len(b) - j; r < rem {
			rem = r
		}
		if n+rem < s {
			return false
		}
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			if n >= s {
				return true
			}
			i++
			j++
		}
	}
	return false
}
