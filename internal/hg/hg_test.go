package hg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperExample builds the hypergraph of Figure 1 of the paper:
// V = {a..f} = {0..5}, E = {1:{a,b,c}, 2:{b,c,d}, 3:{a,b,c,d,e}, 4:{e,f}}
// (edges renumbered 0..3 here).
func paperExample() *Hypergraph {
	return FromEdgeSlices([][]uint32{
		{0, 1, 2},       // 1: a b c
		{1, 2, 3},       // 2: b c d
		{0, 1, 2, 3, 4}, // 3: a b c d e
		{4, 5},          // 4: e f
	}, 6)
}

func TestPaperExampleBasics(t *testing.T) {
	h := paperExample()
	if h.NumVertices() != 6 || h.NumEdges() != 4 {
		t.Fatalf("got %d vertices, %d edges; want 6, 4", h.NumVertices(), h.NumEdges())
	}
	if h.Incidences() != 13 {
		t.Fatalf("incidences = %d, want 13", h.Incidences())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Section II: adj(b,c) = 3 (vertices b=1, c=2).
	if got := h.Adj(1, 2); got != 3 {
		t.Fatalf("adj(b,c) = %d, want 3", got)
	}
	// inc(e1, e2) = |{b,c}| = 2 for edges 1 and 2 (ids 0, 1).
	if got := h.Inc(0, 1); got != 2 {
		t.Fatalf("inc(1,2) = %d, want 2", got)
	}
	// Edge sizes: inc({e}) = |e|.
	wantSizes := []int{3, 3, 5, 2}
	for e, w := range wantSizes {
		if got := h.EdgeSize(uint32(e)); got != w {
			t.Fatalf("|e%d| = %d, want %d", e+1, got, w)
		}
	}
	// Degrees: deg(b)=3 (edges 1,2,3), deg(f)=1.
	if got := h.VertexDegree(1); got != 3 {
		t.Fatalf("deg(b) = %d, want 3", got)
	}
	if got := h.VertexDegree(5); got != 1 {
		t.Fatalf("deg(f) = %d, want 1", got)
	}
	if h.MaxEdgeSize() != 5 || h.MaxVertexDegree() != 3 {
		t.Fatalf("∆e=%d ∆v=%d, want 5, 3", h.MaxEdgeSize(), h.MaxVertexDegree())
	}
}

func TestDualRoundTrip(t *testing.T) {
	h := paperExample()
	d := h.Dual()
	if d.NumVertices() != 4 || d.NumEdges() != 6 {
		t.Fatalf("dual: %d vertices, %d edges; want 4, 6", d.NumVertices(), d.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// v* for vertex b (id 1) must be {e1, e2, e3} = edge ids {0,1,2}.
	if got := d.EdgeVertices(1); !reflect.DeepEqual(got, []uint32{0, 1, 2}) {
		t.Fatalf("dual edge for b = %v, want [0 1 2]", got)
	}
	dd := d.Dual()
	if !reflect.DeepEqual(dd.EdgeSlices(), h.EdgeSlices()) {
		t.Fatal("(H*)* != H")
	}
	// adj in H maps to inc on edges in H*: adj(b,c) == inc over dual
	// hyperedges b*, c*.
	if h.Adj(1, 2) != d.Inc(1, 2) {
		t.Fatal("adjacency/incidence duality violated")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(0)
	b.AddPair(0, 3)
	b.AddPair(0, 3)
	b.AddPair(0, 1)
	h := b.Build()
	if got := h.EdgeVertices(0); !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Fatalf("edge 0 = %v, want [1 3]", got)
	}
	if h.Incidences() != 2 {
		t.Fatalf("incidences = %d, want 2", h.Incidences())
	}
}

func TestBuilderZeroValue(t *testing.T) {
	var b Builder
	b.AddPair(1, 2)
	h := b.Build()
	if h.NumEdges() != 2 || h.NumVertices() != 3 {
		t.Fatalf("got %d edges, %d vertices; want 2, 3", h.NumEdges(), h.NumVertices())
	}
	if h.EdgeSize(0) != 0 {
		t.Fatal("edge 0 should be empty")
	}
}

func TestBuildWithSizeTooSmall(t *testing.T) {
	b := NewBuilder(0)
	b.AddPair(5, 7)
	if _, err := b.BuildWithSize(3, 3); err == nil {
		t.Fatal("expected error for undersized build")
	}
	if _, err := b.BuildWithSize(6, 8); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestHasVertex(t *testing.T) {
	h := paperExample()
	if !h.HasVertex(2, 4) {
		t.Fatal("edge 3 should contain e")
	}
	if h.HasVertex(0, 5) {
		t.Fatal("edge 1 should not contain f")
	}
	if h.HasVertex(3, 0) {
		t.Fatal("edge 4 should not contain a")
	}
}

func TestIntersectSize(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int
	}{
		{nil, nil, 0},
		{[]uint32{1, 2, 3}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 2},
		{[]uint32{1, 5, 9}, []uint32{2, 6, 10}, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := IntersectSize(c.a, c.b); got != c.want {
			t.Errorf("IntersectSize(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectAtLeast(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{2, 4, 6, 8}
	for s := 0; s <= 4; s++ {
		want := IntersectSize(a, b) >= s
		if got := IntersectAtLeast(a, b, s); got != want {
			t.Errorf("IntersectAtLeast(s=%d) = %v, want %v", s, got, want)
		}
	}
	if IntersectAtLeast(nil, nil, 1) {
		t.Fatal("empty sets cannot share 1 element")
	}
	if !IntersectAtLeast(nil, nil, 0) {
		t.Fatal("s=0 is always satisfied")
	}
}

func TestIntersectAtLeastProperty(t *testing.T) {
	f := func(xs, ys []uint8, s uint8) bool {
		a := sortedUnique(xs)
		b := sortedUnique(ys)
		want := IntersectSize(a, b) >= int(s%8)
		return IntersectAtLeast(a, b, int(s%8)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortedUnique(xs []uint8) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, x := range xs {
		seen[uint32(x)] = true
	}
	for x := uint32(0); x < 256; x++ {
		if seen[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestPreprocessDropsEmptyAndIsolated(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1, 3) // vertex 0, 2 isolated; edge 1 empty
	b.AddEdge(2, 3, 5)
	h, err := b.BuildWithSize(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := Preprocess(h, RelabelNone)
	if res.H.NumEdges() != 2 || res.H.NumVertices() != 3 {
		t.Fatalf("got %d edges, %d vertices; want 2, 3", res.H.NumEdges(), res.H.NumVertices())
	}
	if !reflect.DeepEqual(res.EdgeOrig, []uint32{0, 2}) {
		t.Fatalf("EdgeOrig = %v, want [0 2]", res.EdgeOrig)
	}
	if !reflect.DeepEqual(res.VertexOrig, []uint32{1, 3, 5}) {
		t.Fatalf("VertexOrig = %v, want [1 3 5]", res.VertexOrig)
	}
	if err := res.H.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreprocessRelabelAscending(t *testing.T) {
	h := paperExample()
	res := Preprocess(h, RelabelAscending)
	sizes := make([]int, res.H.NumEdges())
	for e := range sizes {
		sizes[e] = res.H.EdgeSize(uint32(e))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] > sizes[i] {
			t.Fatalf("sizes not ascending: %v", sizes)
		}
	}
	// Edge 4 ({e,f}, size 2) must come first; its original ID is 3.
	if res.EdgeOrig[0] != 3 {
		t.Fatalf("EdgeOrig[0] = %d, want 3", res.EdgeOrig[0])
	}
}

func TestPreprocessRelabelDescending(t *testing.T) {
	h := paperExample()
	res := Preprocess(h, RelabelDescending)
	sizes := make([]int, res.H.NumEdges())
	for e := range sizes {
		sizes[e] = res.H.EdgeSize(uint32(e))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] < sizes[i] {
			t.Fatalf("sizes not descending: %v", sizes)
		}
	}
	if res.EdgeOrig[0] != 2 { // edge 3 (size 5) has ID 2
		t.Fatalf("EdgeOrig[0] = %d, want 2", res.EdgeOrig[0])
	}
}

func TestPreprocessPreservesStructure(t *testing.T) {
	// After relabeling, edge contents (mapped back through EdgeOrig /
	// VertexOrig) must match the original hypergraph.
	h := paperExample()
	for _, order := range []RelabelOrder{RelabelNone, RelabelAscending, RelabelDescending} {
		res := Preprocess(h, order)
		for newE := 0; newE < res.H.NumEdges(); newE++ {
			orig := res.EdgeOrig[newE]
			got := map[uint32]bool{}
			for _, nv := range res.H.EdgeVertices(uint32(newE)) {
				got[res.VertexOrig[nv]] = true
			}
			want := h.EdgeVertices(orig)
			if len(got) != len(want) {
				t.Fatalf("order %v: edge %d size mismatch", order, newE)
			}
			for _, v := range want {
				if !got[v] {
					t.Fatalf("order %v: edge %d missing vertex %d", order, newE, v)
				}
			}
		}
	}
}

func TestPreprocessProperty(t *testing.T) {
	// Preprocess of a random hypergraph is always valid and
	// incidence-count preserving (no empty edges/isolated vertices in
	// random gen with all edges non-empty).
	f := func(seed int64) bool {
		h := randomHypergraph(rand.New(rand.NewSource(seed)), 40, 25)
		for _, order := range []RelabelOrder{RelabelNone, RelabelAscending, RelabelDescending} {
			res := Preprocess(h, order)
			if res.H.Validate() != nil {
				return false
			}
			if res.H.Incidences() != h.Incidences() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomHypergraph(r *rand.Rand, n, m int) *Hypergraph {
	edges := make([][]uint32, m)
	for e := range edges {
		size := 1 + r.Intn(6)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(r.Intn(n))] = true
		}
		for v := range seen {
			edges[e] = append(edges[e], v)
		}
	}
	return FromEdgeSlices(edges, n)
}

func TestInducedByEdges(t *testing.T) {
	h := paperExample()
	sub, orig := InducedByEdges(h, []uint32{2, 3})
	if sub.NumEdges() != 2 {
		t.Fatalf("induced edges = %d, want 2", sub.NumEdges())
	}
	if !reflect.DeepEqual(orig, []uint32{2, 3}) {
		t.Fatalf("orig = %v, want [2 3]", orig)
	}
	if sub.EdgeSize(0) != 5 || sub.EdgeSize(1) != 2 {
		t.Fatal("induced edge contents wrong")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	h := paperExample()
	s := ComputeStats("example", h)
	if s.NumVertices != 6 || s.NumEdges != 4 || s.Incidences != 13 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.MaxEdgeSize != 5 || s.MaxVertexDegree != 3 {
		t.Fatalf("bad extremes: %+v", s)
	}
	wantAvgV := 13.0 / 6.0
	if s.AvgVertexDegree < wantAvgV-1e-9 || s.AvgVertexDegree > wantAvgV+1e-9 {
		t.Fatalf("AvgVertexDegree = %f, want %f", s.AvgVertexDegree, wantAvgV)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := paperExample()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a sorted row.
	h.eAdj[0], h.eAdj[1] = h.eAdj[1], h.eAdj[0]
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted unsorted adjacency")
	}
}

func TestRelabelOrderString(t *testing.T) {
	if RelabelNone.String() != "N" || RelabelAscending.String() != "A" || RelabelDescending.String() != "D" {
		t.Fatal("unexpected RelabelOrder notation")
	}
	if RelabelOrder(9).String() != "?" {
		t.Fatal("unknown order should stringify to ?")
	}
}
