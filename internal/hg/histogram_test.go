package hg

import (
	"testing"
)

func TestEdgeSizeHistogramExample(t *testing.T) {
	h := paperExample()
	hist := EdgeSizeHistogram(h)
	// Sizes 3, 3, 5, 2: buckets [1,2)=0, [2,4)=3, [4,8)=1.
	if hist.Zeros != 0 {
		t.Fatalf("zeros = %d, want 0", hist.Zeros)
	}
	if len(hist.Buckets) != 3 || hist.Buckets[1] != 3 || hist.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", hist.Buckets)
	}
	if hist.Max != 5 || hist.P50 != 3 {
		t.Fatalf("max=%d p50=%d, want 5, 3", hist.Max, hist.P50)
	}
}

func TestVertexDegreeHistogramExample(t *testing.T) {
	h := paperExample()
	hist := VertexDegreeHistogram(h)
	// Degrees: a=2 b=3 c=3 d=2 e=2 f=1.
	if hist.Zeros != 0 || hist.Max != 3 {
		t.Fatalf("zeros=%d max=%d", hist.Zeros, hist.Max)
	}
	var total int64
	for _, b := range hist.Buckets {
		total += b
	}
	if total != 6 {
		t.Fatalf("bucketed %d vertices, want 6", total)
	}
}

func TestHistogramZerosAndEmpty(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(2, 0) // edges 0,1 empty
	h, err := b.BuildWithSize(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	hist := EdgeSizeHistogram(h)
	if hist.Zeros != 2 {
		t.Fatalf("zeros = %d, want 2", hist.Zeros)
	}
	empty := histogram(nil)
	if empty.Max != 0 || empty.Skew() != 0 {
		t.Fatal("empty histogram should be zeroed")
	}
}

func TestHistogramSkew(t *testing.T) {
	// 99 values of 1 and a single 1000: heavy skew.
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = 1
	}
	vals[99] = 1000
	hist := histogram(vals)
	if hist.Skew() < 100 {
		t.Fatalf("skew = %f, want >= 100", hist.Skew())
	}
	if hist.P50 != 1 || hist.Max != 1000 {
		t.Fatalf("p50=%d max=%d", hist.P50, hist.Max)
	}
}
