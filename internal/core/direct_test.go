package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperline/internal/algo"
	"hyperline/internal/graph"
)

// directOracle computes s-CC labels via the materializing pipeline.
func directOracle(h interface {
	NumEdges() int
}, s int, edges []Edge) []uint32 {
	g := graph.Build(h.NumEdges(), edges, false)
	cc := algo.ConnectedComponents(g)
	return cc.Label
}

func TestDirectCCExample(t *testing.T) {
	h := paperExample()
	// s=3: hyperedges {0,1,2} connected through 2; 3 singleton.
	label := SConnectedComponentsDirect(h, 3)
	if label[0] != 0 || label[1] != 0 || label[2] != 0 || label[3] != 3 {
		t.Fatalf("labels = %v", label)
	}
	// s=1: all connected.
	label1 := SConnectedComponentsDirect(h, 1)
	for e, l := range label1 {
		if l != 0 {
			t.Fatalf("s=1 label[%d] = %d, want 0", e, l)
		}
	}
}

// TestDirectCCMatchesPipeline: the direct traversal must produce the
// same partition as materialize-then-CC, restricted to hyperedges of
// size >= s (smaller ones are singletons in both).
func TestDirectCCMatchesPipeline(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 25, 35, 7)
		s := 1 + int(sRaw%4)
		direct := SConnectedComponentsDirect(h, s)
		edges, _, _ := SLineEdges(context.Background(), h, s, Config{})
		want := directOracle(h, s, edges)
		for e := 0; e < h.NumEdges(); e++ {
			if direct[e] != want[e] {
				t.Logf("s=%d edge %d: direct %d, pipeline %d", s, e, direct[e], want[e])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectCCSmallEdgesSingleton(t *testing.T) {
	h := paperExample()
	// s=4: only hyperedge 2 (size 5) qualifies; everything is a
	// singleton.
	label := SConnectedComponentsDirect(h, 4)
	for e, l := range label {
		if l != uint32(e) {
			t.Fatalf("label[%d] = %d, want singleton", e, l)
		}
	}
}
