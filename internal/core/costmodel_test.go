package core

import (
	"sync"
	"testing"
	"time"

	"hyperline/internal/hg"
)

func TestCostModelEWMA(t *testing.T) {
	c := NewCostModel()
	k := CostKey{Algo: AlgoHashmap}

	if _, ok := c.Estimate(k); ok {
		t.Fatal("empty model reports a calibrated cell")
	}

	c.Observe(k, 100*time.Millisecond)
	d, calibrated := c.Estimate(k)
	if d != 100*time.Millisecond {
		t.Fatalf("first observation: estimate = %v, want exactly 100ms", d)
	}
	if calibrated {
		t.Fatal("one observation must not calibrate the cell")
	}

	// Observations pull the EWMA toward the new value without jumping
	// to it.
	c.Observe(k, 200*time.Millisecond)
	d, _ = c.Estimate(k)
	if d <= 100*time.Millisecond || d >= 200*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms = %v, want strictly between", d)
	}
}

func TestCostModelCalibrationThreshold(t *testing.T) {
	c := NewCostModel()
	k := CostKey{Algo: AlgoEnsemble, Multi: true}
	for i := 1; i <= CalibrationMin; i++ {
		c.Observe(k, time.Millisecond)
		_, calibrated := c.Estimate(k)
		if want := i >= CalibrationMin; calibrated != want {
			t.Fatalf("after %d observations: calibrated = %v, want %v", i, calibrated, want)
		}
	}
}

func TestCostModelKeysAreIndependent(t *testing.T) {
	c := NewCostModel()
	a := CostKey{Algo: AlgoHashmap, Relabel: hg.RelabelAscending}
	b := CostKey{Algo: AlgoHashmap, Relabel: hg.RelabelNone}
	c.Observe(a, time.Second)
	if _, ok := c.Estimate(b); ok {
		t.Fatal("observation leaked across keys")
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Key != a || snap[0].N != 1 {
		t.Fatalf("snapshot = %+v, want exactly the observed cell", snap)
	}
}

func TestCostModelSnapshotSorted(t *testing.T) {
	c := NewCostModel()
	keys := []CostKey{
		{Algo: AlgoSpGEMM, Multi: true},
		{Algo: AlgoHashmap, Relabel: hg.RelabelDescending},
		{Algo: AlgoHashmap, Relabel: hg.RelabelAscending, Toplex: true},
		{Algo: AlgoSetIntersection},
		{Algo: AlgoHashmap, Relabel: hg.RelabelAscending},
	}
	for _, k := range keys {
		c.Observe(k, time.Millisecond)
	}
	snap := c.Snapshot()
	if len(snap) != len(keys) {
		t.Fatalf("snapshot has %d cells, want %d", len(snap), len(keys))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1].Key, snap[i].Key
		if a.Algo > b.Algo {
			t.Fatalf("snapshot not sorted by algo: %+v before %+v", a, b)
		}
		if a.Algo == b.Algo && a.Relabel > b.Relabel {
			t.Fatalf("snapshot not sorted by relabel: %+v before %+v", a, b)
		}
	}
}

func TestCostModelNilSafe(t *testing.T) {
	var c *CostModel
	c.Observe(CostKey{}, time.Second) // must not panic
	if _, ok := c.Estimate(CostKey{}); ok {
		t.Fatal("nil model reports a calibrated cell")
	}
	if snap := c.Snapshot(); snap != nil {
		t.Fatalf("nil model snapshot = %v, want nil", snap)
	}
}

// TestCostModelConcurrent hammers one model from concurrent observers,
// estimators, and snapshotters — the CI -race run drives this test to
// prove the calibration store is data-race free under serving load.
func TestCostModelConcurrent(t *testing.T) {
	c := NewCostModel()
	keys := []CostKey{
		{Algo: AlgoHashmap},
		{Algo: AlgoEnsemble, Multi: true},
		{Algo: AlgoSpGEMM, Toplex: true},
	}
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 3 {
				case 0:
					c.Observe(k, time.Duration(i)*time.Microsecond)
				case 1:
					c.Estimate(k)
				default:
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, k := range keys {
		if _, calibrated := c.Estimate(k); !calibrated {
			t.Fatalf("cell %+v not calibrated after concurrent load", k)
		}
	}
}
