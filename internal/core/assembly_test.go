package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// TestAssemblyDeterminism is the property test for the parallel edge
// assembly: SLineEdges output must be identical — element for element —
// across worker counts, workload distributions, and counter stores, and
// BuildSorted on that output must equal the defensive Build.
func TestAssemblyDeterminism(t *testing.T) {
	// Exercise the genuinely parallel paths (BuildSorted clamps to a
	// serial specialization when GOMAXPROCS is 1).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(20260728))
	stores := []CounterStore{StoreAuto, MapPerIteration, TLSDense, TLSHash}
	strategies := []par.Strategy{par.Blocked, par.Cyclic}
	workerCounts := []int{1, 2, 8}

	for trial := 0; trial < 8; trial++ {
		numVertices := 20 + rng.Intn(120)
		numEdges := 10 + rng.Intn(150)
		h := randomHypergraph(rng, numVertices, numEdges, 10)
		for _, s := range []int{1, 2, 3} {
			reference, _, _ := SLineEdges(context.Background(), h, s, Config{Workers: 1})
			for _, store := range stores {
				for _, strat := range strategies {
					for _, w := range workerCounts {
						cfg := Config{Workers: w, Partition: strat, Store: store, Grain: 1 + rng.Intn(64)}
						got, _, _ := SLineEdges(context.Background(), h, s, cfg)
						if !edgeListsEqual(reference, got) {
							t.Fatalf("trial %d s=%d: %v workers=%d store=%v grain=%d diverges from single-worker reference",
								trial, s, strat, w, store, cfg.Grain)
						}
					}
				}
			}
			// Algorithm 1 with exact weights must agree too.
			for _, strat := range strategies {
				for _, w := range workerCounts {
					cfg := Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true, Workers: w, Partition: strat}
					got, _, _ := SLineEdges(context.Background(), h, s, cfg)
					if !edgeListsEqual(reference, got) {
						t.Fatalf("trial %d s=%d: algo1 %v workers=%d diverges", trial, s, strat, w)
					}
				}
			}

			// Stage 4: the zero-copy parallel fast path must equal the
			// defensive Build on the assembly output.
			for _, squeeze := range []bool{false, true} {
				safe := graph.Build(h.NumEdges(), reference, squeeze)
				fast := graph.BuildSorted(h.NumEdges(), reference, squeeze, par.Options{Workers: 4})
				if safe.NumNodes() != fast.NumNodes() || safe.NumEdges() != fast.NumEdges() {
					t.Fatalf("trial %d s=%d squeeze=%v: BuildSorted shape mismatch", trial, s, squeeze)
				}
				for u := 0; u < safe.NumNodes(); u++ {
					aIDs, aWs := safe.Neighbors(uint32(u))
					bIDs, bWs := fast.Neighbors(uint32(u))
					if !reflect.DeepEqual(aIDs, bIDs) || !reflect.DeepEqual(aWs, bWs) {
						t.Fatalf("trial %d s=%d squeeze=%v node %d: BuildSorted adjacency mismatch", trial, s, squeeze, u)
					}
				}
			}
		}
	}
}

func edgeListsEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAssemblyOutputContract verifies the documented SLineEdges
// invariants that BuildSorted's fast path trusts: sorted by (U, V),
// unique keys, U < V.
func TestAssemblyOutputContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHypergraph(rng, 80, 120, 10)
	for _, store := range []CounterStore{StoreAuto, MapPerIteration, TLSDense, TLSHash} {
		edges, _, _ := SLineEdges(context.Background(), h, 1, Config{Workers: 8, Store: store})
		for i, e := range edges {
			if e.U >= e.V {
				t.Fatalf("store %v: edge %d violates U < V: %+v", store, i, e)
			}
			if i > 0 && !edgeLess(edges[i-1], e) {
				t.Fatalf("store %v: edges %d/%d out of order: %+v, %+v", store, i-1, i, edges[i-1], e)
			}
		}
	}
}

// TestTLSHashStore forces the open-addressing store (including growth
// from a deliberately tiny initial table) against the oracle.
func TestTLSHashStore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		h := randomHypergraph(rng, 60, 100, 8)
		for _, s := range []int{1, 2} {
			want := NaiveAllPairs(h, s)
			got, _, _ := SLineEdges(context.Background(), h, s, Config{Store: TLSHash, Workers: 3})
			if !edgeListsEqual(want, got) {
				t.Fatalf("trial %d s=%d: TLSHash diverges from oracle", trial, s)
			}
		}
	}
}

func TestOATableGrowth(t *testing.T) {
	tab := newOATable(0, 1<<20) // minimum size, forces growth
	const n = 10000
	for rep := 0; rep < 3; rep++ {
		for k := uint32(0); k < n; k++ {
			tab.incr(k * 7)
			tab.incr(k * 7)
		}
		if len(tab.touched) != n {
			t.Fatalf("rep %d: %d touched slots, want %d", rep, len(tab.touched), n)
		}
		seen := map[uint32]uint32{}
		for _, slot := range tab.touched {
			seen[tab.keys[slot]-1] = tab.vals[slot]
		}
		for k := uint32(0); k < n; k++ {
			if seen[k*7] != 2 {
				t.Fatalf("rep %d: key %d count = %d, want 2", rep, k*7, seen[k*7])
			}
		}
		tab.reset()
		if len(tab.touched) != 0 {
			t.Fatal("reset left touched slots")
		}
	}
}

// TestStoreAutoSelection pins the adaptive heuristic's two regimes.
func TestStoreAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := randomHypergraph(rng, 50, 40, 8)
	if got, _ := chooseStore(small, 4); got != TLSDense {
		t.Fatalf("small hypergraph chose %v, want TLSDense", got)
	}
	// Disjoint triangles: large hyperedge space, 2-hop frontier of
	// zero. When the worker count pushes the dense arrays over budget,
	// the hash store must win.
	sparse := make([][]uint32, 512)
	for e := range sparse {
		base := uint32(3 * e)
		sparse[e] = []uint32{base, base + 1, base + 2}
	}
	disjoint := hg.FromEdgeSlices(sparse, 3*len(sparse))
	if got, _ := chooseStore(disjoint, 1<<30); got != TLSHash {
		t.Fatalf("over-budget sparse configuration chose %v, want TLSHash", got)
	}
}
