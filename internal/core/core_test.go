package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// paperExample is the hypergraph of Figure 1: V = {a..f} = {0..5},
// hyperedges 1:{a,b,c}, 2:{b,c,d}, 3:{a,b,c,d,e}, 4:{e,f} with IDs 0-3.
func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

// TestPaperFigure2 pins the s-line graphs of Figure 2 for s = 1..4,
// including the overlap weights ("strength of connection").
func TestPaperFigure2(t *testing.T) {
	h := paperExample()
	want := map[int][]Edge{
		1: {
			{U: 0, V: 1, W: 2}, {U: 0, V: 2, W: 3},
			{U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1},
		},
		2: {{U: 0, V: 1, W: 2}, {U: 0, V: 2, W: 3}, {U: 1, V: 2, W: 3}},
		3: {{U: 0, V: 2, W: 3}, {U: 1, V: 2, W: 3}},
		4: nil,
	}
	for s, wantEdges := range want {
		got, stats, _ := SLineEdges(context.Background(), h, s, Config{})
		if !reflect.DeepEqual(got, wantEdges) && !(len(got) == 0 && len(wantEdges) == 0) {
			t.Errorf("s=%d: got %v, want %v", s, got, wantEdges)
		}
		if stats.SetIntersections != 0 {
			t.Errorf("s=%d: Algorithm 2 performed %d set intersections, want 0",
				s, stats.SetIntersections)
		}
	}
}

func TestAlgorithm1MatchesOnExample(t *testing.T) {
	h := paperExample()
	for s := 1; s <= 4; s++ {
		want := NaiveAllPairs(h, s)
		got, stats, _ := SLineEdges(context.Background(), h, s, Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true})
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("s=%d: algo1 got %v, want %v", s, got, want)
		}
		if len(want) > 0 && stats.SetIntersections == 0 {
			t.Errorf("s=%d: Algorithm 1 reported zero set intersections", s)
		}
	}
}

func stripWeights(edges []Edge) [][2]uint32 {
	out := make([][2]uint32, len(edges))
	for i, e := range edges {
		out[i] = [2]uint32{e.U, e.V}
	}
	return out
}

func randomHypergraph(r *rand.Rand, n, m, maxSize int) *hg.Hypergraph {
	edges := make([][]uint32, m)
	for e := range edges {
		size := 1 + r.Intn(maxSize)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(r.Intn(n))] = true
		}
		for v := range seen {
			edges[e] = append(edges[e], v)
		}
	}
	return hg.FromEdgeSlices(edges, n)
}

// TestAllAlgorithmsAgree is the central cross-validation property: on
// random hypergraphs, Algorithm 1 (both intersection modes), Algorithm
// 2 (both counter stores), the ensemble, and the naive all-pairs oracle
// produce the same s-line graphs under every partitioning strategy.
func TestAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 30, 40, 8)
		s := 1 + int(sRaw%5)
		want := NaiveAllPairs(h, s)
		wantPairs := stripWeights(want)

		configs := []Config{
			{Algorithm: AlgoHashmap, Store: MapPerIteration},
			{Algorithm: AlgoHashmap, Store: TLSDense},
			{Algorithm: AlgoHashmap, Partition: par.Cyclic, Workers: 3},
			{Algorithm: AlgoHashmap, Partition: par.Blocked, Grain: 1, Workers: 5},
			{Algorithm: AlgoSetIntersection, DisableShortCircuit: true},
			{Algorithm: AlgoSetIntersection, DisableShortCircuit: true, Partition: par.Cyclic},
			{Algorithm: AlgoHashmap, DisablePruning: true},
			{Algorithm: AlgoSetIntersection, DisableShortCircuit: true, DisablePruning: true},
		}
		for _, cfg := range configs {
			got, _, _ := SLineEdges(context.Background(), h, s, cfg)
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Logf("config %+v disagrees: got %v want %v", cfg, got, want)
				return false
			}
		}
		// Short-circuit mode: same pairs, weights may be clamped at s.
		scGot, _, _ := SLineEdges(context.Background(), h, s, Config{Algorithm: AlgoSetIntersection})
		if !reflect.DeepEqual(stripWeights(scGot), wantPairs) &&
			!(len(scGot) == 0 && len(wantPairs) == 0) {
			t.Logf("short-circuit pairs disagree")
			return false
		}
		// Ensemble must match per-s runs exactly (weights included).
		ens, ensStats, _ := EnsembleEdges(context.Background(), h, []int{s, s + 1, 1}, Config{})
		if ensStats.SetIntersections != 0 {
			return false
		}
		for _, si := range []int{s, s + 1, 1} {
			single, _, _ := SLineEdges(context.Background(), h, si, Config{})
			if !reflect.DeepEqual(ens[si], single) && !(len(ens[si]) == 0 && len(single) == 0) {
				t.Logf("ensemble s=%d disagrees", si)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	h := randomHypergraph(r, 100, 150, 10)
	base, _, _ := SLineEdges(context.Background(), h, 3, Config{Workers: 1})
	for _, workers := range []int{2, 4, 8, 16} {
		for _, strat := range []par.Strategy{par.Blocked, par.Cyclic} {
			got, _, _ := SLineEdges(context.Background(), h, 3, Config{Workers: workers, Partition: strat})
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d strategy=%v changed the result", workers, strat)
			}
		}
	}
}

func TestDegreePruningStats(t *testing.T) {
	// Hyperedges smaller than s must be pruned, and pruning must not
	// change results.
	h := paperExample()
	_, stats, _ := SLineEdges(context.Background(), h, 3, Config{})
	// Sizes are 3,3,5,2: exactly one edge (size 2) is pruned at s=3.
	if stats.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1", stats.Pruned)
	}
	withP, _, _ := SLineEdges(context.Background(), h, 3, Config{})
	withoutP, _, _ := SLineEdges(context.Background(), h, 3, Config{DisablePruning: true})
	if !reflect.DeepEqual(withP, withoutP) {
		t.Fatal("pruning changed the result")
	}
}

func TestWedgeStatsConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := randomHypergraph(r, 60, 80, 6)
	_, stats, _ := SLineEdges(context.Background(), h, 1, Config{Workers: 4})
	var sum int64
	for _, w := range stats.WedgesPerWorker {
		sum += w
	}
	if sum != stats.Wedges {
		t.Fatalf("per-worker wedges sum %d != total %d", sum, stats.Wedges)
	}
	if stats.Wedges == 0 {
		t.Fatal("expected non-zero wedge visits")
	}
	// Wedge count is invariant across counter stores at s=1 (no
	// pruning difference).
	_, stats2, _ := SLineEdges(context.Background(), h, 1, Config{Store: TLSDense, Workers: 4})
	if stats2.Wedges != stats.Wedges {
		t.Fatalf("wedges differ across stores: %d vs %d", stats2.Wedges, stats.Wedges)
	}
}

func TestEnsembleEmptyAndDuplicateS(t *testing.T) {
	h := paperExample()
	empty, _, _ := EnsembleEdges(context.Background(), h, nil, Config{})
	if len(empty) != 0 {
		t.Fatal("ensemble of no s values should be empty")
	}
	dup, _, _ := EnsembleEdges(context.Background(), h, []int{2, 2, 2}, Config{})
	if len(dup) != 1 {
		t.Fatalf("duplicate s values produced %d entries, want 1", len(dup))
	}
	single, _, _ := SLineEdges(context.Background(), h, 2, Config{})
	if !reflect.DeepEqual(dup[2], single) {
		t.Fatal("ensemble disagrees with single run")
	}
}

func TestSBelowOneClamped(t *testing.T) {
	h := paperExample()
	a, _, _ := SLineEdges(context.Background(), h, 0, Config{})
	b, _, _ := SLineEdges(context.Background(), h, 1, Config{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("s=0 should behave as s=1")
	}
	if NaiveAllPairs(h, 0) == nil {
		t.Fatal("naive s=0 should behave as s=1")
	}
}

func TestNotationRoundTrip(t *testing.T) {
	for _, n := range AllNotations() {
		cfg, err := ParseNotation(n)
		if err != nil {
			t.Fatalf("ParseNotation(%q): %v", n, err)
		}
		if got := cfg.Notation(); got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
	if len(AllNotations()) != 12 {
		t.Fatalf("Table III has 12 configurations, got %d", len(AllNotations()))
	}
	for _, bad := range []string{"", "9BA", "2XA", "2BZ", "2B", "22BA", "AUTO", "Spgemm"} {
		if _, err := ParseNotation(bad); err == nil {
			t.Errorf("ParseNotation(%q) should fail", bad)
		}
	}
}

// TestExtendedNotations covers the engine's additions to the Table III
// alphabet: Algorithm 3 ("3"), the planner ("A"), SpGEMM ("S"), and
// the bare-word shorthands.
func TestExtendedNotations(t *testing.T) {
	for _, n := range []string{"3BA", "3CN", "ABN", "ACA", "SBN", "SCD"} {
		cfg, err := ParseNotation(n)
		if err != nil {
			t.Fatalf("ParseNotation(%q): %v", n, err)
		}
		if got := cfg.Notation(); got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
	auto, err := ParseNotation("auto")
	if err != nil || auto.Algorithm != AlgoAuto {
		t.Fatalf("ParseNotation(auto) = %+v, %v", auto, err)
	}
	sg, err := ParseNotation("spgemm")
	if err != nil || sg.Algorithm != AlgoSpGEMM {
		t.Fatalf("ParseNotation(spgemm) = %+v, %v", sg, err)
	}
	// The words round-trip through the 3-character form.
	for _, w := range []Config{auto, sg} {
		back, err := ParseNotation(w.Notation())
		if err != nil || back != w {
			t.Fatalf("word notation %q does not round trip: %+v, %v", w.Notation(), back, err)
		}
	}
}

func TestDefaultConfigNotation(t *testing.T) {
	var c Config
	if got := c.Notation(); got != "ABN" {
		t.Fatalf("zero Config notation = %q, want ABN (planner default)", got)
	}
}

func TestParseSValues(t *testing.T) {
	cases := map[string][]int{
		"8":        {8},
		"1,2,5":    {1, 2, 5},
		"2:6":      {2, 3, 4, 5, 6},
		"1,4:6,12": {1, 4, 5, 6, 12},
		" 3 , 5 ":  {3, 5},
	}
	for spec, want := range cases {
		got, err := ParseSValues(spec)
		if err != nil {
			t.Fatalf("ParseSValues(%q): %v", spec, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ParseSValues(%q) = %v, want %v", spec, got, want)
		}
	}
	for _, bad := range []string{"", "0", "-1", "x", "5:2", "2:", ":4", "1,,2", "1:999999",
		// The expansion cap is a total across fields, not per range.
		"1:1000,2000:3000"} {
		if _, err := ParseSValues(bad); err == nil {
			t.Errorf("ParseSValues(%q) should fail", bad)
		}
	}
	if _, err := ParseSValues("1:1024"); err != nil {
		t.Errorf("ParseSValues at the cap should succeed: %v", err)
	}
}

func TestDistinctS(t *testing.T) {
	got := DistinctS([]int{4, 2, 4, 0, -3, 2, 7})
	if !reflect.DeepEqual(got, []int{1, 2, 4, 7}) {
		t.Fatalf("DistinctS = %v, want [1 2 4 7]", got)
	}
	if len(DistinctS(nil)) != 0 {
		t.Fatal("DistinctS(nil) should be empty")
	}
}

func TestCounterStoreString(t *testing.T) {
	if MapPerIteration.String() != "map" || TLSDense.String() != "tls-dense" {
		t.Fatal("unexpected CounterStore names")
	}
	if CounterStore(9).String() != "?" {
		t.Fatal("unknown store should stringify to ?")
	}
	if Algorithm(9).String() != "?" {
		t.Fatal("unknown algorithm should stringify to ?")
	}
}
