package core

import (
	"runtime"
	"sort"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// SLineEdges computes the edge list of the s-line graph Ls(H): one edge
// {ei, ej} for every pair of hyperedges with inc(ei, ej) = |ei ∩ ej| ≥ s,
// weighted by the overlap. The algorithm, workload distribution and
// heuristics are selected by cfg; hyperedge IDs are used as given (apply
// hg.Preprocess or run the Pipeline for relabel-by-degree).
//
// s must be ≥ 1. The returned edge list is sorted by (U, V) and is
// deterministic for a given hypergraph regardless of cfg.
func SLineEdges(h *hg.Hypergraph, s int, cfg Config) ([]Edge, Stats) {
	if s < 1 {
		s = 1
	}
	switch cfg.algorithm() {
	case AlgoSetIntersection:
		return setIntersectionEdges(h, s, cfg)
	default:
		return hashmapEdges(h, s, cfg)
	}
}

func numWorkers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// upperNeighbors returns the suffix of the sorted hyperedge list with
// IDs strictly greater than ei: the "(i < j)" upper-triangle rule that
// traverses each wedge (ei, vk, ej) exactly once.
func upperNeighbors(edges []uint32, ei uint32) []uint32 {
	lo := sort.Search(len(edges), func(k int) bool { return edges[k] > ei })
	return edges[lo:]
}

// worker2 is the thread-local state of one Algorithm 2 worker.
type worker2 struct {
	edges   []Edge // Lt(H), the per-thread edge list
	wedges  int64
	pruned  int64
	counts  []uint32 // TLSDense: dense overlap counters, len m
	touched []uint32 // TLSDense: indices of non-zero counters
}

// hashmapEdges is Algorithm 2 of the paper: for each hyperedge ei the
// overlaps with all 2-hop neighbor hyperedges ej > ei are accumulated in
// a counter keyed by ej; pairs reaching s are emitted immediately. No
// set intersection is ever performed.
func hashmapEdges(h *hg.Hypergraph, s int, cfg Config) ([]Edge, Stats) {
	m := h.NumEdges()
	w := numWorkers(cfg)
	workers := make([]worker2, w)
	if cfg.Store == TLSDense {
		// Pre-allocated thread-local storage (§III-F): one dense
		// counter array per worker, reset via the touched list after
		// each outer iteration.
		for i := range workers {
			workers[i].counts = make([]uint32, m)
		}
	}

	par.For(m, cfg.parOptions(), func(worker, i int) {
		st := &workers[worker]
		ei := uint32(i)
		if !cfg.DisablePruning && h.EdgeSize(ei) < s {
			st.pruned++
			return
		}
		if cfg.Store == TLSDense {
			hashmapIterDense(h, ei, s, st)
		} else {
			hashmapIterMap(h, ei, s, st)
		}
	})

	return collect(workers)
}

// hashmapIterMap processes one hyperedge with a per-iteration hashmap
// (Lines 6-12 of Algorithm 2, dynamic allocation mode).
func hashmapIterMap(h *hg.Hypergraph, ei uint32, s int, st *worker2) {
	overlap := make(map[uint32]uint32)
	for _, vk := range h.EdgeVertices(ei) {
		for _, ej := range upperNeighbors(h.VertexEdges(vk), ei) {
			st.wedges++
			overlap[ej]++
		}
	}
	for ej, n := range overlap {
		if int(n) >= s {
			st.edges = append(st.edges, Edge{U: ei, V: ej, W: n})
		}
	}
}

// hashmapIterDense processes one hyperedge with the pre-allocated
// dense counter (TLS mode).
func hashmapIterDense(h *hg.Hypergraph, ei uint32, s int, st *worker2) {
	counts, touched := st.counts, st.touched[:0]
	for _, vk := range h.EdgeVertices(ei) {
		for _, ej := range upperNeighbors(h.VertexEdges(vk), ei) {
			st.wedges++
			if counts[ej] == 0 {
				touched = append(touched, ej)
			}
			counts[ej]++
		}
	}
	for _, ej := range touched {
		if int(counts[ej]) >= s {
			st.edges = append(st.edges, Edge{U: ei, V: ej, W: counts[ej]})
		}
		counts[ej] = 0
	}
	st.touched = touched
}

func collect(workers []worker2) ([]Edge, Stats) {
	stats := Stats{WedgesPerWorker: make([]int64, len(workers))}
	lists := make([][]Edge, len(workers))
	for i := range workers {
		lists[i] = workers[i].edges
		stats.Wedges += workers[i].wedges
		stats.WedgesPerWorker[i] = workers[i].wedges
		stats.Pruned += workers[i].pruned
	}
	edges := mergeWorkerEdges(lists)
	stats.Edges = int64(len(edges))
	return edges, stats
}
