package core

import (
	"context"
	"runtime"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// SLineEdges computes the edge list of the s-line graph Ls(H): one edge
// {ei, ej} for every pair of hyperedges with inc(ei, ej) = |ei ∩ ej| ≥ s,
// weighted by the overlap. The strategy (planner-chosen for AlgoAuto),
// workload distribution and heuristics are selected by cfg; hyperedge
// IDs are used as given (apply hg.Preprocess or run the Pipeline for
// relabel-by-degree).
//
// s must be ≥ 1. The returned edge list is sorted by (U, V), deduped
// with U < V, and is deterministic for a given hypergraph regardless of
// cfg — it satisfies graph.BuildSorted's input contract. A cancelled
// ctx aborts cooperatively with ctx.Err(); a nil ctx means
// context.Background().
func SLineEdges(ctx context.Context, h *hg.Hypergraph, s int, cfg Config) ([]Edge, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s < 1 {
		s = 1
	}
	dec := planFor(h, []int{s}, cfg)
	lists, stats, err := dec.Strategy.Edges(ctx, h, []int{s}, dec.Config)
	if err != nil {
		return nil, stats, err
	}
	return lists[s], stats, nil
}

func numWorkers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// upperNeighbors returns the suffix of the sorted hyperedge list with
// IDs strictly greater than ei: the "(i < j)" upper-triangle rule that
// traverses each wedge (ei, vk, ej) exactly once. The binary search is
// manual — this runs once per incidence pair, and sort.Search's
// function-valued predicate does not inline.
func upperNeighbors(edges []uint32, ei uint32) []uint32 {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid] <= ei {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return edges[lo:]
}

// upperCacheBudget caps the memory spent on per-worker suffix-position
// caches (4·n bytes each); beyond it workers fall back to the binary
// search of upperNeighbors.
const upperCacheBudget = 64 << 20

// newUpperCaches allocates one suffix-position cache per worker, or nil
// when n vertices × workers exceeds the budget.
func newUpperCaches(workers, n int) [][]uint32 {
	if int64(workers)*int64(n)*4 > upperCacheBudget {
		return nil
	}
	caches := make([][]uint32, workers)
	for i := range caches {
		caches[i] = make([]uint32, n)
	}
	return caches
}

// upperNeighborsCached is upperNeighbors with a per-worker resumable
// cursor per vertex. Both workload distributions hand each worker a
// strictly increasing ei sequence, so for a fixed vk the suffix start
// only moves forward; resuming from the cached position costs amortized
// O(1) per query (each worker advances a vertex's cursor at most
// deg(vk) positions over the whole run) instead of a cache-missing
// O(log deg) binary search per incidence pair.
func upperNeighborsCached(edges []uint32, ei uint32, pos []uint32, vk uint32) []uint32 {
	idx := int(pos[vk])
	for idx < len(edges) && edges[idx] <= ei {
		idx++
	}
	pos[vk] = uint32(idx)
	return edges[idx:]
}

// upper dispatches between the cached and binary-search suffix lookups.
func upper(h *hg.Hypergraph, vk, ei uint32, pos []uint32) []uint32 {
	list := h.VertexEdges(vk)
	if pos != nil {
		return upperNeighborsCached(list, ei, pos, vk)
	}
	return upperNeighbors(list, ei)
}

// denseStoreBudget caps the total memory StoreAuto will spend on
// per-worker dense counter arrays (4·m bytes each in the common narrow
// slot layout) before switching to the open-addressing tables. The
// rare wide-slot fallback (a hyperedge of ≥ 2¹⁶ vertices) doubles
// that; the budget is a heuristic and tolerates it.
const denseStoreBudget = 64 << 20

// chooseStore resolves StoreAuto for one run: dense thread-local
// counters when the per-worker arrays fit the budget or when the
// average 2-hop frontier covers a large fraction of the hyperedge space
// (a hash table would rival the dense array in size while paying probe
// costs), the open-addressing table otherwise. The frontier estimate
// is returned so the caller can reuse it as the table size hint.
func chooseStore(h *hg.Hypergraph, workers int) (CounterStore, int64) {
	m := h.NumEdges()
	frontier := avgFrontier(h)
	if int64(workers)*int64(m)*4 <= denseStoreBudget {
		return TLSDense, frontier
	}
	if frontier*8 >= int64(m) {
		return TLSDense, frontier
	}
	return TLSHash, frontier
}

// avgFrontier estimates the mean 2-hop frontier size of a hyperedge:
// Σ_v deg(v)² / m counts, for the average outer iteration, how many
// wedge endpoints (with multiplicity) it visits.
func avgFrontier(h *hg.Hypergraph) int64 {
	var wedgeEnds int64
	for v := 0; v < h.NumVertices(); v++ {
		d := int64(h.VertexDegree(uint32(v)))
		wedgeEnds += d * d
	}
	if h.NumEdges() == 0 {
		return 0
	}
	return wedgeEnds / int64(h.NumEdges())
}

// worker2 is the thread-local state of one Algorithm 2 worker.
type worker2 struct {
	edges  []Edge // Lt(H), the per-thread edge list, kept (U,V)-sorted
	wedges int64
	pruned int64
	// counts32/counts64 are the TLSDense epoch-stamped overlap
	// counters, len m — exactly one is allocated per run. Each slot
	// packs (epoch << countBits) | count, so advancing the worker's
	// epoch invalidates every slot at once and the per-iteration
	// counter reset of the classic TLS layout (one store per touched
	// slot) disappears. The narrow uint32 layout (16-bit count) is the
	// default — half the cache footprint of a uint64 slot keeps the
	// per-worker arrays L2-resident on datasets where the wide layout
	// spills — and is sound whenever every overlap fits 16 bits
	// (overlap ≤ max hyperedge size); its 16-bit epoch wraps, so the
	// array is cleared once per 2¹⁶−1 iterations (amortized to noise).
	// The wide uint64 layout handles hyperedges of ≥ 2¹⁶ vertices; its
	// 32-bit epoch cannot wrap (at most m < 2³² iterations per run).
	counts32 []uint32
	counts64 []uint64
	epoch    uint64
	sink     uint64   // prefetch accumulator; never read
	touched  []uint32 // TLSDense: slots touched this epoch
	table    *oaTable // TLSHash: open-addressing counter table
	pos      []uint32 // per-vertex resumable suffix cursors (may be nil)
	stop     *stopFlag
}

// narrowCountBits is the count width of the narrow slot layout; the
// high 32−narrowCountBits bits hold the epoch.
const narrowCountBits = 16

// hashmapEdges is Algorithm 2 of the paper: for each hyperedge ei the
// overlaps with all 2-hop neighbor hyperedges ej > ei are accumulated in
// a counter keyed by ej; pairs reaching s are emitted immediately. No
// set intersection is ever performed.
//
// Cancellation is polled once per outer iteration and once per wedge
// source vertex, so cancel latency is bounded by a single neighbor-list
// scan; counters left dirty by an aborted iteration are never read
// again because every later iteration also sees the tripped flag.
func hashmapEdges(ctx context.Context, h *hg.Hypergraph, s int, cfg Config) ([]Edge, Stats, error) {
	m := h.NumEdges()
	w := numWorkers(cfg)
	store := cfg.Store
	hint := int64(-1)
	if store == StoreAuto {
		store, hint = chooseStore(h, w)
	}
	flag := watchContext(ctx)
	workers := make([]worker2, w)
	narrowDense := false
	switch store {
	case TLSDense:
		// Pre-allocated thread-local storage (§III-F): one dense
		// epoch-stamped counter array per worker; stale slots are
		// invalidated by advancing the epoch, never rewritten. Narrow
		// slots unless a hyperedge is large enough to overflow a
		// 16-bit overlap count.
		narrowDense = h.MaxEdgeSize() < 1<<narrowCountBits
		for i := range workers {
			if narrowDense {
				workers[i].counts32 = make([]uint32, m)
			} else {
				workers[i].counts64 = make([]uint64, m)
			}
		}
	case TLSHash:
		if hint < 0 {
			hint = avgFrontier(h)
		}
		for i := range workers {
			workers[i].table = newOATable(hint, m)
		}
	}
	for i := range workers {
		workers[i].stop = flag
	}
	for i, pos := range newUpperCaches(w, h.NumVertices()) {
		workers[i].pos = pos
	}

	par.For(m, cfg.parOptions(), func(worker, i int) {
		st := &workers[worker]
		if st.stop.Stop() {
			return
		}
		ei := uint32(i)
		if !cfg.DisablePruning && h.EdgeSize(ei) < s {
			st.pruned++
			return
		}
		start := len(st.edges)
		sorted := false
		switch store {
		case TLSDense:
			if narrowDense {
				sorted = hashmapIterDenseNarrow(h, ei, s, st)
			} else {
				sorted = hashmapIterDenseWide(h, ei, s, st)
			}
		case TLSHash:
			hashmapIterHash(h, ei, s, st)
		default:
			hashmapIterMap(h, ei, s, st)
		}
		if sorted {
			return
		}
		// Keep the worker list (U, V)-sorted: both distribution
		// strategies hand each worker strictly increasing ei, so
		// sorting this iteration's segment by V is all it takes.
		sortSegmentByV(st.edges[start:])
	})
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	edges, stats := collect(workers, cfg)
	return edges, stats, nil
}

// hashmapIterMap processes one hyperedge with a per-iteration hashmap
// (Lines 6-12 of Algorithm 2, dynamic allocation mode).
func hashmapIterMap(h *hg.Hypergraph, ei uint32, s int, st *worker2) {
	overlap := make(map[uint32]uint32)
	wedges := int64(0)
	for _, vk := range h.EdgeVertices(ei) {
		if st.stop.Stop() {
			return // cancelled mid-iteration: partial output is discarded
		}
		neighbors := upper(h, vk, ei, st.pos)
		wedges += int64(len(neighbors))
		for _, ej := range neighbors {
			overlap[ej]++
		}
	}
	st.wedges += wedges
	for ej, n := range overlap {
		if int(n) >= s {
			st.edges = append(st.edges, Edge{U: ei, V: ej, W: n})
		}
	}
}

// denseLookahead is how many wedge endpoints ahead the dense counting
// loop touches the counter array. The counter indices are effectively
// random within [0, m), so the hardware prefetcher cannot help; an
// explicit early load lets the out-of-order window overlap the DRAM
// misses of upcoming increments with the current ones. The distance is
// a compromise: long enough to cover a miss, short enough that the
// touched line is still resident when the increment arrives.
const denseLookahead = 12

// denseStopChunk bounds how many wedge endpoints the dense counting
// loop processes between stop-flag polls. Heavy-tailed inputs have
// single neighbor runs of hundreds of thousands of cache-missing
// increments; polling only per wedge-source vertex would make the
// cancellation latency proportional to the largest vertex degree.
const denseStopChunk = 8192

// counterSlot is the dense slot width: narrow uint32 (16-bit count,
// 16-bit epoch) or wide uint64 (32-bit count, 32-bit epoch).
type counterSlot interface {
	~uint32 | ~uint64
}

// countDense counts one run of wedge endpoints into the epoch-stamped
// slots (see hashmapIterDense) and returns the updated touched list and
// prefetch sink. It is the branch-light inner kernel: one predicted
// append branch per first touch, no per-slot reset.
func countDense[T counterSlot](counts []T, neighbors []uint32, tag T, touched []uint32, sink T) ([]uint32, T) {
	i := 0
	for ; i+denseLookahead < len(neighbors); i++ {
		sink ^= counts[neighbors[i+denseLookahead]]
		ej := neighbors[i]
		c := counts[ej]
		if c < tag {
			touched = append(touched, ej)
			c = tag
		}
		counts[ej] = c + 1
	}
	for ; i < len(neighbors); i++ {
		ej := neighbors[i]
		c := counts[ej]
		if c < tag {
			touched = append(touched, ej)
			c = tag
		}
		counts[ej] = c + 1
	}
	return touched, sink
}

// hashmapIterDenseNarrow advances the 16-bit epoch of the narrow slot
// layout, clearing the array on the (rare) epoch wrap — a wrapped tag
// of 0 would make every stale slot read as current. It reports whether
// the emitted segment is already V-sorted.
func hashmapIterDenseNarrow(h *hg.Hypergraph, ei uint32, s int, st *worker2) bool {
	st.epoch++
	if st.epoch == 1<<(32-narrowCountBits) {
		clear(st.counts32)
		st.epoch = 1
	}
	tag := uint32(st.epoch) << narrowCountBits
	// tag + s cannot be formed when s overflows the count field; no
	// overlap can reach such an s anyway, so the scan path just turns
	// itself off (the touched walk compares counts as ints, safely).
	scanOK := s < 1<<narrowCountBits
	return hashmapIterDense(h, ei, s, st, st.counts32, tag, scanOK)
}

// hashmapIterDenseWide advances the 32-bit epoch of the wide slot
// layout; one increment per outer iteration and m < 2³² iterations per
// run mean it cannot wrap. It reports whether the emitted segment is
// already V-sorted.
func hashmapIterDenseWide(h *hg.Hypergraph, ei uint32, s int, st *worker2) bool {
	st.epoch++
	return hashmapIterDense(h, ei, s, st, st.counts64, st.epoch<<32, uint64(s) < 1<<32)
}

// denseScanFactor selects the dense emission path: when the touched
// set covers at least 1/denseScanFactor of the counter array, emitting
// by an index-order scan of the slots beats walking the touched list —
// the scan is sequential (the touched walk revisits the slots in
// first-touch order, a random pattern) and its output is ascending in
// ej, so the per-iteration segment needs no V-sort at all.
const denseScanFactor = 8

// hashmapIterDense processes one hyperedge with the pre-allocated
// dense epoch-stamped counter (TLS mode): a slot whose stamp predates
// this iteration's epoch tag reads as zero, so the per-iteration reset
// loop of the classic layout is gone and the emission scan is
// read-only. A touched slot holds tag + count, so the overlap is
// recovered as slot − tag in either slot width. The return value
// reports whether the emitted segment is already sorted by V (the
// dense scan path); a false return means the caller must sort it.
func hashmapIterDense[T counterSlot](h *hg.Hypergraph, ei uint32, s int, st *worker2, counts []T, tag T, scanOK bool) bool {
	touched := st.touched[:0]
	sink := T(st.sink)
	wedges := int64(0)
	for _, vk := range h.EdgeVertices(ei) {
		if st.stop.Stop() {
			// Cancelled mid-iteration: the dirty counters are never
			// read again (every later iteration sees the flag too).
			return true
		}
		neighbors := upper(h, vk, ei, st.pos)
		wedges += int64(len(neighbors))
		for len(neighbors) > denseStopChunk {
			touched, sink = countDense(counts, neighbors[:denseStopChunk], tag, touched, sink)
			neighbors = neighbors[denseStopChunk:]
			if st.stop.Stop() {
				return true
			}
		}
		touched, sink = countDense(counts, neighbors, tag, touched, sink)
	}
	st.wedges += wedges
	st.sink = uint64(sink)
	st.touched = touched
	// Reserve the worst case (every touched slot passes the filter) so
	// the emission appends never grow mid-loop, and grow by doubling:
	// append's 1.25× policy on a multi-million-edge worker list turns
	// the tail of the run into repeated large memmoves.
	if need := len(st.edges) + len(touched); need > cap(st.edges) {
		newCap := 2 * cap(st.edges)
		if newCap < need {
			newCap = need
		}
		grown := make([]Edge, len(st.edges), newCap)
		copy(grown, st.edges)
		st.edges = grown
	}
	if scanOK && len(touched)*denseScanFactor >= len(counts) {
		// Dense emission: one sequential pass over the slots. A slot
		// passes iff it is stamped with this epoch AND its count ≥ s,
		// which the single comparison against tag+s captures (stale
		// slots are < tag < tag+s).
		thresh := tag + T(s)
		for ej := range counts {
			if ej&(denseStopChunk-1) == 0 && st.stop.Stop() {
				return true // partial st.edges are never read after a stop
			}
			if c := counts[ej]; c >= thresh {
				st.edges = append(st.edges, Edge{U: ei, V: uint32(ej), W: uint32(c - tag)})
			}
		}
		return true
	}
	for idx, ej := range touched {
		if idx&(denseStopChunk-1) == 0 && st.stop.Stop() {
			return false // partial st.edges are never read after a stop
		}
		if w := uint32(counts[ej] - tag); int(w) >= s {
			st.edges = append(st.edges, Edge{U: ei, V: ej, W: w})
		}
	}
	return false
}

// hashmapIterHash processes one hyperedge with the pre-allocated
// open-addressing counter table (TLS hash mode).
func hashmapIterHash(h *hg.Hypergraph, ei uint32, s int, st *worker2) {
	t := st.table
	wedges := int64(0)
	for _, vk := range h.EdgeVertices(ei) {
		if st.stop.Stop() {
			return // cancelled mid-iteration; dirty slots are never read
		}
		neighbors := upper(h, vk, ei, st.pos)
		wedges += int64(len(neighbors))
		for _, ej := range neighbors {
			t.incr(ej)
		}
	}
	st.wedges += wedges
	for _, slot := range t.touched {
		if int(t.vals[slot]) >= s {
			st.edges = append(st.edges, Edge{U: ei, V: st.keyAt(slot), W: t.vals[slot]})
		}
	}
	t.reset()
}

func (st *worker2) keyAt(slot uint32) uint32 { return st.table.keys[slot] - 1 }

// oaTable is a linear-probing uint32→uint32 counter table. Keys are
// stored +1 so the zero word means empty, letting reset clear only the
// touched slots. It replaces the per-iteration map allocation of
// MapPerIteration with O(frontier) reuse.
type oaTable struct {
	keys    []uint32 // key+1; 0 = empty
	vals    []uint32
	mask    uint32
	touched []uint32 // occupied slot indices, in first-touch order
}

// newOATable sizes the table for ~4× the estimated per-iteration
// frontier, but never beyond 2·m slots: at load factor 0.5 that holds
// every possible key (an iteration touches at most m hyperedges), so
// growth stops there and a skewed frontier estimate cannot balloon the
// initial allocation past what the keys could ever need.
func newOATable(sizeHint int64, m int) *oaTable {
	size := uint32(64)
	for int64(size) < sizeHint*4 && int64(size) < 2*int64(m) && size < 1<<30 {
		size <<= 1
	}
	return &oaTable{
		keys: make([]uint32, size),
		vals: make([]uint32, size),
		mask: size - 1,
	}
}

// incr adds one to the counter of key, inserting it at zero.
func (t *oaTable) incr(key uint32) {
	k := key + 1
	slot := (key * 2654435761) & t.mask
	for {
		switch t.keys[slot] {
		case k:
			t.vals[slot]++
			return
		case 0:
			if len(t.touched)*2 >= len(t.keys) {
				t.grow()
				slot = (key * 2654435761) & t.mask
				continue
			}
			t.keys[slot] = k
			t.vals[slot] = 1
			t.touched = append(t.touched, slot)
			return
		}
		slot = (slot + 1) & t.mask
	}
}

// grow doubles the table, rehashing the occupied slots.
func (t *oaTable) grow() {
	oldKeys, oldVals, oldTouched := t.keys, t.vals, t.touched
	size := uint32(len(oldKeys)) << 1
	t.keys = make([]uint32, size)
	t.vals = make([]uint32, size)
	t.mask = size - 1
	t.touched = make([]uint32, 0, size/2)
	for _, slot := range oldTouched {
		k := oldKeys[slot]
		ns := ((k - 1) * 2654435761) & t.mask
		for t.keys[ns] != 0 {
			ns = (ns + 1) & t.mask
		}
		t.keys[ns] = k
		t.vals[ns] = oldVals[slot]
		t.touched = append(t.touched, ns)
	}
}

// reset clears the touched slots, leaving the table empty.
func (t *oaTable) reset() {
	for _, slot := range t.touched {
		t.keys[slot] = 0
	}
	t.touched = t.touched[:0]
}

func collect(workers []worker2, cfg Config) ([]Edge, Stats) {
	stats := Stats{WedgesPerWorker: make([]int64, len(workers))}
	lists := make([][]Edge, len(workers))
	for i := range workers {
		lists[i] = workers[i].edges
		stats.Wedges += workers[i].wedges
		stats.WedgesPerWorker[i] = workers[i].wedges
		stats.Pruned += workers[i].pruned
	}
	edges := mergeWorkerEdges(lists, cfg.parOptions())
	stats.Edges = int64(len(edges))
	return edges, stats
}
