package core

import (
	"context"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// worker1 is the thread-local state of one Algorithm 1 worker.
type worker1 struct {
	edges         []Edge
	wedges        int64
	pruned        int64
	intersections int64
	// seen de-duplicates candidate hyperedges within one outer
	// iteration ("skipping already visited hyperedges"): seen[ej]
	// holds the stamp of the last ei for which ej was intersected.
	seen  []uint32
	stamp uint32
	pos   []uint32 // per-vertex resumable suffix cursors (may be nil)
	stop  *stopFlag
}

// setIntersectionEdges is Algorithm 1, the prior state-of-the-art
// (HiPC'21) baseline: every candidate pair (ei, ej) sharing at least
// one vertex is tested by an explicit sorted-list set intersection of
// the two hyperedges' vertex lists, with the paper's heuristics:
// degree-based pruning, per-source candidate de-duplication,
// short-circuited intersections, and upper-triangle traversal.
// Cancellation is polled per outer iteration and per wedge source
// vertex, matching Algorithm 2's granularity.
func setIntersectionEdges(ctx context.Context, h *hg.Hypergraph, s int, cfg Config) ([]Edge, Stats, error) {
	m := h.NumEdges()
	w := numWorkers(cfg)
	flag := watchContext(ctx)
	workers := make([]worker1, w)
	for i := range workers {
		workers[i].seen = make([]uint32, m)
		workers[i].stop = flag
	}
	for i, pos := range newUpperCaches(w, h.NumVertices()) {
		workers[i].pos = pos
	}

	par.For(m, cfg.parOptions(), func(worker, i int) {
		st := &workers[worker]
		if st.stop.Stop() {
			return
		}
		ei := uint32(i)
		if !cfg.DisablePruning && h.EdgeSize(ei) < s {
			st.pruned++
			return
		}
		st.stamp++
		if st.stamp == 0 { // wrapped: clear stale stamps
			clear(st.seen)
			st.stamp = 1
		}
		start := len(st.edges)
		eiVerts := h.EdgeVertices(ei)
		for _, vk := range eiVerts {
			if st.stop.Stop() {
				return // cancelled mid-iteration: partial output is discarded
			}
			for _, ej := range upper(h, vk, ei, st.pos) {
				st.wedges++
				if st.seen[ej] == st.stamp {
					continue // candidate already intersected for this ei
				}
				st.seen[ej] = st.stamp
				if !cfg.DisablePruning && h.EdgeSize(ej) < s {
					continue
				}
				st.intersections++
				ejVerts := h.EdgeVertices(ej)
				if cfg.DisableShortCircuit {
					if n := hg.IntersectSize(eiVerts, ejVerts); n >= s {
						st.edges = append(st.edges, Edge{U: ei, V: ej, W: uint32(n)})
					}
				} else if hg.IntersectAtLeast(eiVerts, ejVerts, s) {
					// Short-circuit mode confirms ≥ s without
					// finishing the count; report the bound.
					st.edges = append(st.edges, Edge{U: ei, V: ej, W: uint32(s)})
				}
			}
		}
		// Wedge traversal emits this iteration's neighbors out of
		// order; sorting the segment keeps the worker list
		// (U, V)-sorted for the parallel merge.
		sortSegmentByV(st.edges[start:])
	})
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	stats := Stats{WedgesPerWorker: make([]int64, len(workers))}
	lists := make([][]Edge, len(workers))
	for i := range workers {
		lists[i] = workers[i].edges
		stats.Wedges += workers[i].wedges
		stats.WedgesPerWorker[i] = workers[i].wedges
		stats.Pruned += workers[i].pruned
		stats.SetIntersections += workers[i].intersections
	}
	edges := mergeWorkerEdges(lists, cfg.parOptions())
	stats.Edges = int64(len(edges))
	return edges, stats, nil
}

// NaiveAllPairs is the textbook "ijk" all-pairs construction used as a
// correctness oracle: it intersects every pair of hyperedges, ignoring
// the hypergraph structure entirely. Quadratic in |E| — only suitable
// for tiny inputs and tests.
func NaiveAllPairs(h *hg.Hypergraph, s int) []Edge {
	if s < 1 {
		s = 1
	}
	var edges []Edge
	m := h.NumEdges()
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if n := h.Inc(uint32(i), uint32(j)); n >= s {
				edges = append(edges, Edge{U: uint32(i), V: uint32(j), W: uint32(n)})
			}
		}
	}
	SortEdges(edges)
	return edges
}
