package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"hyperline/internal/gen"
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// TestStressCrossValidation runs the full algorithm matrix on a
// moderately sized skewed hypergraph (not the toy random graphs of the
// property tests) and checks exact agreement. Skipped under -short.
func TestStressCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	h := gen.Community(gen.CommunityConfig{
		Seed: 4242, NumVertices: 5000, NumCommunities: 600,
		MeanCommunitySize: 8, EdgesPerCommunity: 3, Background: 800,
	})
	for _, s := range []int{2, 5, 12} {
		base, baseStats, _ := SLineEdges(context.Background(), h, s, Config{Workers: 1})
		if baseStats.SetIntersections != 0 {
			t.Fatal("algorithm 2 must not intersect")
		}
		configs := []Config{
			{Store: TLSDense, Workers: 16},
			{Partition: par.Cyclic, Workers: 9},
			{Algorithm: AlgoSetIntersection, DisableShortCircuit: true, Workers: 16},
			{Algorithm: AlgoSetIntersection, DisableShortCircuit: true, Partition: par.Cyclic, Workers: 5, Grain: 7},
		}
		for _, cfg := range configs {
			got, _, _ := SLineEdges(context.Background(), h, s, cfg)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("s=%d cfg=%+v diverged (%d vs %d edges)", s, cfg, len(got), len(base))
			}
		}
		ens, _, _ := EnsembleEdges(context.Background(), h, []int{s}, Config{Workers: 12})
		if !reflect.DeepEqual(ens[s], base) {
			t.Fatalf("s=%d ensemble diverged", s)
		}
	}
}

// TestStressSingletonAndDuplicateEdges exercises degenerate hyperedge
// patterns: many duplicates (overlap = full size), singletons, and one
// giant edge covering everything.
func TestStressSingletonAndDuplicateEdges(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	edges := make([][]uint32, 0, 203)
	// 100 copies of the same 10-vertex edge.
	shared := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for i := 0; i < 100; i++ {
		edges = append(edges, shared)
	}
	// 100 singletons.
	for i := 0; i < 100; i++ {
		edges = append(edges, []uint32{uint32(10 + r.Intn(90))})
	}
	// One edge covering all vertices.
	giant := make([]uint32, 100)
	for i := range giant {
		giant[i] = uint32(i)
	}
	edges = append(edges, giant)
	h := hg.FromEdgeSlices(edges, 100)

	// s = 10: the 100 duplicates pairwise overlap in 10 vertices, and
	// each also overlaps the giant edge in 10.
	got, _, _ := SLineEdges(context.Background(), h, 10, Config{})
	want := NaiveAllPairs(h, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("duplicates: %d edges vs oracle %d", len(got), len(want))
	}
	if len(got) != 100*101/2 {
		t.Fatalf("expected complete graph over 101 edges, got %d", len(got))
	}
	// s = 11: only giant-vs-nothing; duplicates cap at 10.
	got11, _, _ := SLineEdges(context.Background(), h, 11, Config{})
	if len(got11) != 0 {
		t.Fatalf("s=11 should be empty, got %d edges", len(got11))
	}
}
