package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

func TestMaxOverlapExample(t *testing.T) {
	h := paperExample()
	// Largest pairwise overlap is inc(e1,e3) = inc(e2,e3) = 3.
	if got := MaxOverlap(h, Config{}); got != 3 {
		t.Fatalf("MaxOverlap = %d, want 3", got)
	}
}

func TestMaxOverlapOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 25, 30, 7)
		want := 0
		for i := 0; i < h.NumEdges(); i++ {
			for j := i + 1; j < h.NumEdges(); j++ {
				if n := h.Inc(uint32(i), uint32(j)); n > want {
					want = n
				}
			}
		}
		for _, cfg := range []Config{
			{},
			{Workers: 3, Partition: par.Cyclic},
			{Workers: 7, Grain: 2},
		} {
			if MaxOverlap(h, cfg) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxOverlapDisjoint(t *testing.T) {
	h := hg.FromEdgeSlices([][]uint32{{0, 1}, {2, 3}, {4, 5}}, 6)
	if got := MaxOverlap(h, Config{}); got != 0 {
		t.Fatalf("MaxOverlap = %d, want 0 for disjoint edges", got)
	}
}
