package core

import (
	"fmt"
	"sort"
	"time"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
)

// Prepared is the exported Stage 1-2 state of a pipeline run: the
// preprocessed working hypergraph plus the ID mappings needed to move
// edge lists between the original and working ID spaces. The
// incremental patcher (internal/delta) prepares the post-delta
// hypergraph once, patches each cached projection's edge list in
// original-ID space, and assembles results through the same Stage-4
// code path as RunBatch — which is what makes a patched projection
// byte-identical to a from-scratch recompute.
type Prepared struct {
	p   prepared
	cfg PipelineConfig
}

// PrepareFor runs Stage 1 (preprocess + relabel) and Stage 2 (optional
// toplex simplification) of cfg on h. cfg must be resolved: the auto
// knobs (hg.RelabelAuto, ToplexAuto) are planner decisions that must be
// taken before an ID space is fixed.
func PrepareFor(h *hg.Hypergraph, cfg PipelineConfig) (*Prepared, error) {
	if cfg.Core.Relabel == hg.RelabelAuto {
		return nil, fmt.Errorf("core: PrepareFor requires a resolved relabel order, got auto")
	}
	if cfg.Toplex == ToplexAuto {
		return nil, fmt.Errorf("core: PrepareFor requires a resolved toplex mode, got auto")
	}
	return &Prepared{p: prepare(h, cfg), cfg: cfg}, nil
}

// NumWorkEdges returns the working hypergraph's hyperedge count — the
// node ID space Stage-4 edge lists must index into.
func (pp *Prepared) NumWorkEdges() int { return pp.p.work.NumEdges() }

// OrigToWork returns the original→working edge ID mapping over an
// original ID space of size origEdges (-1 marks hyperedges the
// preprocessing dropped: empty rows, and non-toplexes when Stage 2
// ran). It is the inverse of the EdgeOrig mapping RunBatch uses to
// label results.
func (pp *Prepared) OrigToWork(origEdges int) []int64 {
	out := make([]int64, origEdges)
	for i := range out {
		out[i] = -1
	}
	for workID, origID := range pp.p.edgeOrig {
		out[origID] = int64(workID)
	}
	return out
}

// Assemble runs Stage 4 on a working-space edge list, exactly as
// RunBatch does: the list must be sorted by (U, V) with U < V, deduped,
// and indexed into the working edge space. stats and plan label the
// result; preprocessing timings come from this Prepared, the s-overlap
// timing is the caller's (the patch time, for patched projections).
func (pp *Prepared) Assemble(s int, edges []Edge, overlapTime time.Duration, stats Stats, plan PlanInfo) *PipelineResult {
	t := time.Now()
	g := graph.BuildSorted(pp.p.work.NumEdges(), edges, !pp.cfg.NoSqueeze, pp.cfg.Core.parOptions())
	r := &PipelineResult{
		S:     s,
		Graph: g,
		Stats: stats,
		Timings: StageTimings{
			Preprocess: pp.p.preTime,
			Toplex:     pp.p.topTime,
			SOverlap:   overlapTime,
			Squeeze:    time.Since(t),
		},
		Plan: plan,
	}
	r.HyperedgeIDs = make([]uint32, g.NumNodes())
	for node := 0; node < g.NumNodes(); node++ {
		r.HyperedgeIDs[node] = pp.p.edgeOrig[g.OrigID(uint32(node))]
	}
	return r
}

// OverlapCount is one exact overlap count emitted by OverlapCounts.
type OverlapCount struct {
	Edge  uint32 // the 2-hop neighbor hyperedge
	Count uint32 // |e ∩ neighbor|
}

// OverlapCounts runs one outer iteration of Algorithm 2 for hyperedge
// ei over its full 2-hop frontier (not just the upper triangle): every
// hyperedge sharing at least one vertex with ei is returned with its
// exact overlap count, in ascending neighbor ID order. This is the
// kernel the incremental patcher recounts inserted hyperedges with —
// the per-pair counts are identical to what a full Algorithm-2 pass
// would produce, because they are the same accumulation.
func OverlapCounts(h *hg.Hypergraph, ei uint32) []OverlapCount {
	var frontier int64
	for _, vk := range h.EdgeVertices(ei) {
		frontier += int64(h.VertexDegree(vk))
	}
	t := newOATable(frontier, h.NumEdges())
	for _, vk := range h.EdgeVertices(ei) {
		for _, ej := range h.VertexEdges(vk) {
			if ej != ei {
				t.incr(ej)
			}
		}
	}
	out := make([]OverlapCount, 0, len(t.touched))
	for _, slot := range t.touched {
		out = append(out, OverlapCount{Edge: t.keys[slot] - 1, Count: t.vals[slot]})
	}
	t.reset()
	sort.Slice(out, func(i, j int) bool { return out[i].Edge < out[j].Edge })
	return out
}
