package core

import (
	"testing"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	base := PipelineConfig{}
	variants := []PipelineConfig{
		{Core: Config{Workers: 7}},
		{Core: Config{Grain: 3}},
		{Core: Config{Partition: par.Cyclic}},
		{Core: Config{Store: TLSHash}},
		{Core: Config{Store: MapPerIteration}},
		{Core: Config{DisablePruning: true}},
	}
	for i, v := range variants {
		if got, want := v.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("variant %d: fingerprint %q differs from base %q", i, got, want)
		}
	}
}

// TestFingerprintCanonicalizesOutputClass: every exact-weight strategy
// produces byte-identical output, so requests pinning any of them —
// including Algorithm 1 in exact mode — must share one cache entry with
// the planner default.
func TestFingerprintCanonicalizesOutputClass(t *testing.T) {
	base := PipelineConfig{}
	exactClass := []PipelineConfig{
		{Core: Config{Algorithm: AlgoHashmap}},
		{Core: Config{Algorithm: AlgoEnsemble}},
		{Core: Config{Algorithm: AlgoSpGEMM}},
		{Core: Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true}},
		{Core: Config{Algorithm: AlgoHashmap, DisableShortCircuit: true}}, // no-op flag
	}
	for i, v := range exactClass {
		if got, want := v.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("exact-class variant %d: fingerprint %q differs from base %q", i, got, want)
		}
	}
	// Short-circuited Algorithm 1 is the one genuinely different output
	// class: weights are ≥ s bounds, not exact counts.
	sc := PipelineConfig{Core: Config{Algorithm: AlgoSetIntersection}}
	if sc.Fingerprint() == base.Fingerprint() {
		t.Error("short-circuited Algorithm 1 must not share the exact-class fingerprint")
	}
}

func TestFingerprintSeparatesOutputRelevantFields(t *testing.T) {
	configs := []PipelineConfig{
		{},
		{Core: Config{Algorithm: AlgoSetIntersection}},
		{Core: Config{Relabel: hg.RelabelAscending}},
		{Core: Config{Relabel: hg.RelabelDescending}},
		{Toplex: ToplexOn},
		{NoSqueeze: true},
	}
	seen := map[string]int{}
	for i, c := range configs {
		fp := c.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("configs %d and %d collide on fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}
