package core

import (
	"testing"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	base := PipelineConfig{}
	variants := []PipelineConfig{
		{Core: Config{Workers: 7}},
		{Core: Config{Grain: 3}},
		{Core: Config{Partition: par.Cyclic}},
		{Core: Config{Store: TLSHash}},
		{Core: Config{Store: MapPerIteration}},
		{Core: Config{DisablePruning: true}},
		{Core: Config{Algorithm: AlgoHashmap}}, // explicit default
	}
	for i, v := range variants {
		if got, want := v.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("variant %d: fingerprint %q differs from base %q", i, got, want)
		}
	}
}

func TestFingerprintSeparatesOutputRelevantFields(t *testing.T) {
	configs := []PipelineConfig{
		{},
		{Core: Config{Algorithm: AlgoSetIntersection}},
		{Core: Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true}},
		{Core: Config{Relabel: hg.RelabelAscending}},
		{Core: Config{Relabel: hg.RelabelDescending}},
		{Toplex: true},
		{NoSqueeze: true},
	}
	seen := map[string]int{}
	for i, c := range configs {
		fp := c.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("configs %d and %d collide on fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}
