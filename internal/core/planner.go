package core

import (
	"fmt"
	"strings"
	"time"

	"hyperline/internal/hg"
)

// Planner cost-model constants. The planner reasons in bytes because
// the regime boundaries the paper observes (§VI-C, §VI-G) are memory
// cliffs, not instruction-count crossovers: Algorithm 3 materializes
// one counter per wedge pair, and SpGEMM materializes the product.
const (
	// ensembleBytesPerCounter is the cost of one materialized overlap
	// counter in Algorithm 3's pruned counter set (one Edge: U, V, W).
	ensembleBytesPerCounter = 12
	// ensembleCounterBudget caps the memory the planner will let
	// Algorithm 3 spend on materialized counters before falling back
	// to per-s Algorithm 2 passes.
	ensembleCounterBudget = 2 << 30
	// spgemmMinEdges is the smallest hyperedge count for which the
	// planner considers SpGEMM: below it, any strategy finishes in
	// microseconds and the hashmap default keeps work counters
	// meaningful.
	spgemmMinEdges = 1024
	// spgemmBytesPerEntry is the CSR cost of one stored product entry
	// (column + value).
	spgemmBytesPerEntry = 8
	// spgemmProductBudget caps the materialized upper-triangle product.
	spgemmProductBudget = 1 << 30
)

// Knob-resolution constants (§III-F, Table III). The thresholds are
// conservative: below autoKnobMinEdges every configuration finishes in
// microseconds and the knobs only churn cache keys, so auto resolves to
// the neutral defaults (RelabelNone, ToplexOff) there.
const (
	// autoKnobMinEdges is the smallest hyperedge count for which the
	// planner considers non-default preprocessing knobs.
	autoKnobMinEdges = 2048
	// relabelSkewFactor is the max/avg degree ratio (on either side of
	// the incidence) past which the planner considers the distribution
	// skewed enough for ascending relabel-by-degree to pay: the paper's
	// Table III shows relabeling only matters on heavy-tailed inputs,
	// where it moves the large hyperedges to the end of the
	// upper-triangle traversal.
	relabelSkewFactor = 8
	// toplexSampleThreshold is the sampled containment fraction
	// (hg.Stats.ToplexSample) past which Stage-2 simplification is
	// predicted to pay for itself: at ≥ 25% removable hyperedges the
	// quadratic Stage-3 saving dominates the linear Stage-2 cost.
	toplexSampleThreshold = 0.25
)

// Decision is the planner's resolved execution plan for one query: the
// strategy to run, the configuration to run it with (Algorithm pinned
// to the strategy's tag), and the reason, for observability.
type Decision struct {
	Strategy Strategy
	Config   Config
	Reason   string
}

// Info condenses the decision into the pipeline-result form.
func (d Decision) Info() PlanInfo {
	return PlanInfo{Strategy: d.Strategy.Name(), Reason: d.Reason}
}

// ResolveConfig resolves the planner-driven preprocessing knobs of a
// pipeline configuration: a Relabel of hg.RelabelAuto and a Toplex of
// ToplexAuto are replaced by concrete choices derived from the input
// hypergraph's statistics (cfg.Stats when supplied, computed from h —
// and cached back into cfg.Stats — otherwise) and, for the relabel
// order, from calibrated cost observations when cfg.Costs has them.
// The decision is recorded in cfg.KnobReason.
//
// Resolution is deterministic for fixed stats and calibration state and
// idempotent: a configuration without auto knobs is returned unchanged.
// The serving layer calls this before deriving cache keys, so a
// planner-chosen configuration shares cache entries with the pinned
// configuration it resolves to; RunBatch calls it again (a no-op for
// already-resolved configs) so direct library callers get the same
// semantics. h may be nil when cfg.Stats is non-nil.
func ResolveConfig(h *hg.Hypergraph, sValues []int, cfg PipelineConfig) PipelineConfig {
	relAuto := cfg.Core.Relabel == hg.RelabelAuto
	topAuto := cfg.Toplex == ToplexAuto
	if !relAuto && !topAuto {
		return cfg
	}
	if cfg.Stats == nil {
		st := hg.ComputeStats("", h)
		if topAuto {
			// ComputeStats skips the containment probe (it is not free
			// on latency-bounded paths); only the toplex knob needs it.
			st.ToplexSample = hg.SampleContainment(h)
		}
		cfg.Stats = &st
	}
	st := *cfg.Stats
	var reasons []string
	if topAuto {
		mode, why := resolveToplex(st)
		cfg.Toplex = mode
		reasons = append(reasons, why)
	}
	if relAuto {
		order, why := resolveRelabel(st, cfg.Costs, cfg.Toplex.Enabled(), len(DistinctS(sValues)) > 1)
		cfg.Core.Relabel = order
		reasons = append(reasons, why)
	}
	cfg.KnobReason = strings.Join(reasons, "; ")
	return cfg
}

// resolveToplex resolves ToplexAuto from the sampled containment
// estimate: simplification pays when a substantial fraction of
// hyperedges are contained in others (each removed hyperedge deletes
// all its wedges from Stage 3).
func resolveToplex(st hg.Stats) (ToplexMode, string) {
	if st.NumEdges >= autoKnobMinEdges && st.ToplexSample >= toplexSampleThreshold {
		return ToplexOn, fmt.Sprintf("toplex=on: ~%.0f%% of sampled hyperedges are contained in another (>= %.0f%%)",
			st.ToplexSample*100, toplexSampleThreshold*100)
	}
	return ToplexOff, fmt.Sprintf("toplex=off: ~%.0f%% sampled containment below %.0f%% (|E|=%d)",
		st.ToplexSample*100, toplexSampleThreshold*100, st.NumEdges)
}

// resolveRelabel resolves hg.RelabelAuto: calibrated cost observations
// win when at least two orders have been measured; otherwise ascending
// relabel-by-degree is chosen for skewed degree distributions (the
// regime where Table III shows it pays) and the input order is kept
// everywhere else.
func resolveRelabel(st hg.Stats, costs *CostModel, toplexOn, multi bool) (hg.RelabelOrder, string) {
	if order, why, ok := calibratedRelabel(costs, toplexOn, multi); ok {
		return order, why
	}
	if st.NumEdges >= autoKnobMinEdges && degreeSkewed(st) {
		return hg.RelabelAscending, fmt.Sprintf(
			"relabel=A: skewed degrees (max/avg hyperedge size %.1fx, vertex degree %.1fx)",
			skewRatio(st.MaxEdgeSize, st.AvgEdgeSize), skewRatio(st.MaxVertexDegree, st.AvgVertexDegree))
	}
	return hg.RelabelNone, fmt.Sprintf("relabel=N: no significant degree skew (|E|=%d)", st.NumEdges)
}

// degreeSkewed reports whether either side of the incidence has a
// heavy-tailed degree distribution.
func degreeSkewed(st hg.Stats) bool {
	return skewRatio(st.MaxEdgeSize, st.AvgEdgeSize) >= relabelSkewFactor ||
		skewRatio(st.MaxVertexDegree, st.AvgVertexDegree) >= relabelSkewFactor
}

// skewRatio is max/avg with the average floored at 1 (degenerate
// averages below one incidence per element would otherwise report
// arbitrary skew on near-empty hypergraphs).
func skewRatio(max int, avg float64) float64 {
	if avg < 1 {
		avg = 1
	}
	return float64(max) / avg
}

// relabelCandidates are the concrete orders auto resolves among, in
// tie-break priority order.
var relabelCandidates = [...]hg.RelabelOrder{hg.RelabelNone, hg.RelabelAscending, hg.RelabelDescending}

// calibratedRelabel picks the relabel order with the cheapest
// calibrated Stage-3 cost, comparing each order's best strategy under
// the same toplex setting and batch shape. It abstains (ok=false)
// unless at least two orders have calibrated cells — a single measured
// order proves nothing about the alternatives.
func calibratedRelabel(costs *CostModel, toplexOn, multi bool) (hg.RelabelOrder, string, bool) {
	if costs == nil {
		return 0, "", false
	}
	var (
		observed int
		best     hg.RelabelOrder
		bestCost time.Duration
		found    bool
	)
	for _, order := range relabelCandidates {
		cost, ok := bestStrategyCost(costs, order, toplexOn, multi)
		if !ok {
			continue
		}
		observed++
		if !found || cost < bestCost {
			best, bestCost, found = order, cost, true
		}
	}
	if observed < 2 {
		return 0, "", false
	}
	return best, fmt.Sprintf("relabel=%s: calibrated Stage-3 cost ~%s/s is the cheapest of %d measured orders",
		best, bestCost.Round(time.Microsecond), observed), true
}

// bestStrategyCost returns the cheapest calibrated per-s estimate among
// all strategies for one (relabel, toplex, multi) knob combination.
func bestStrategyCost(costs *CostModel, order hg.RelabelOrder, toplexOn, multi bool) (time.Duration, bool) {
	var (
		best  time.Duration
		found bool
	)
	for _, algo := range [...]Algorithm{AlgoSetIntersection, AlgoHashmap, AlgoEnsemble, AlgoSpGEMM} {
		d, calibrated := costs.Estimate(CostKey{Algo: algo, Relabel: order, Toplex: toplexOn, Multi: multi})
		if !calibrated {
			continue
		}
		if !found || d < best {
			best, found = d, true
		}
	}
	return best, found
}

// PlanQuery resolves the strategy for one query from the hypergraph's
// statistics (st), the requested s values, and cfg.
//
// Pinned algorithms (cfg.Algorithm != AlgoAuto) are honored, with one
// exception: a batched AlgoHashmap query whose counter memory fits the
// budget is coalesced into a single ensemble pass, which produces
// byte-identical output for a fraction of the counting work. Algorithm
// 1 batches always run per s — its short-circuited weights depend on s
// and no other strategy can reproduce them.
//
// For AlgoAuto the planner only chooses among exact-weight strategies
// (Algorithm 2, Algorithm 3, SpGEMM), so the output — and therefore the
// cache fingerprint — is independent of the decision:
//
//   - multi-s batches run as one ensemble counting pass when the
//     estimated counter memory (st.WedgePairs) fits the budget, and as
//     per-s hashmap passes otherwise;
//   - s = 1 queries on dense hypergraphs (the line graph is at least
//     half-complete) route to SpGEMM: at s = 1 the on-the-fly filter
//     discards nothing, so Algorithm 2's store-nothing advantage
//     vanishes and the simpler multiply kernel wins;
//   - everything else takes Algorithm 2, whose wedge-linear cost is
//     the floor among exact strategies. Algorithm 1 is never chosen:
//     exact mode performs the same wedge traversal plus the
//     intersections, and short-circuit mode changes the output class.
func PlanQuery(st hg.Stats, sValues []int, cfg Config) Decision {
	return PlanQueryCosts(st, sValues, cfg, nil, false)
}

// PlanQueryCosts is PlanQuery with self-calibration: when costs holds
// calibrated observations (>= CalibrationMin measured passes per cell)
// for every candidate strategy of an AlgoAuto decision point, the
// measured per-s estimates override the static byte-count heuristics.
// Only choices among exact-weight strategies are ever overridden — the
// output class, and therefore the cache fingerprint, is independent of
// calibration — and SpGEMM's memory budget guard still applies even to
// a calibrated win. toplexOn selects which calibration cells describe
// this run (Stage-3 cost after simplification differs materially from
// cost without it). A nil costs reproduces PlanQuery exactly.
func PlanQueryCosts(st hg.Stats, sValues []int, cfg Config, costs *CostModel, toplexOn bool) Decision {
	distinct := DistinctS(sValues)
	multi := len(distinct) > 1

	switch cfg.Algorithm {
	case AlgoSetIntersection:
		return pin(cfg, AlgoSetIntersection,
			"pinned Algorithm 1: per-s passes preserve its weight semantics")
	case AlgoEnsemble:
		return pin(cfg, AlgoEnsemble, "pinned Algorithm 3")
	case AlgoSpGEMM:
		return pin(cfg, AlgoSpGEMM, "pinned SpGEMM")
	case AlgoHashmap:
		if multi && ensembleFits(st) {
			return pin(cfg, AlgoEnsemble,
				fmt.Sprintf("batched Algorithm 2 query coalesced into one ensemble pass (%d s values, identical output)", len(distinct)))
		}
		return pin(cfg, AlgoHashmap, "pinned Algorithm 2")
	}

	// AlgoAuto: choose among the exact-weight strategies.
	if multi {
		if dec, ok := calibratedChoice(cfg, costs, toplexOn, true, AlgoEnsemble, AlgoHashmap, ensembleFits(st)); ok {
			return dec
		}
		if ensembleFits(st) {
			return pin(cfg, AlgoEnsemble,
				fmt.Sprintf("multi-s batch (%d values): one ensemble counting pass, ~%d counters fit the budget", len(distinct), st.WedgePairs))
		}
		return pin(cfg, AlgoHashmap,
			fmt.Sprintf("multi-s batch, but ~%d materialized counters exceed the ensemble budget; per-s hashmap passes", st.WedgePairs))
	}
	s := distinct[0]
	if st.MaxEdgeSize > 0 && s > st.MaxEdgeSize {
		return pin(cfg, AlgoHashmap,
			fmt.Sprintf("s=%d exceeds the largest hyperedge (%d): pruning makes the result trivially empty", s, st.MaxEdgeSize))
	}
	if s == 1 {
		if dec, ok := calibratedChoice(cfg, costs, toplexOn, false, AlgoSpGEMM, AlgoHashmap, spgemmBudgetFits(st)); ok {
			return dec
		}
		if spgemmRegime(st) {
			return pin(cfg, AlgoSpGEMM,
				"s=1 on a dense hypergraph: filtering discards nothing, so the materialized upper-triangle product costs no more than the output")
		}
	}
	return pin(cfg, AlgoHashmap, "single-s query: hashmap counting is the exact-weight cost floor")
}

// calibratedChoice decides one AlgoAuto decision point — candidate vs
// fallback — from calibrated observations. It abstains unless both
// cells are calibrated under the same knobs and batch shape; the
// candidate additionally needs its memory budget (candidateFits) even
// when measured faster, because the calibration table records time, not
// peak memory.
func calibratedChoice(cfg Config, costs *CostModel, toplexOn, multi bool, candidate, fallback Algorithm, candidateFits bool) (Decision, bool) {
	if costs == nil {
		return Decision{}, false
	}
	candCost, candOK := costs.Estimate(CostKey{Algo: candidate, Relabel: cfg.Relabel, Toplex: toplexOn, Multi: multi})
	fallCost, fallOK := costs.Estimate(CostKey{Algo: fallback, Relabel: cfg.Relabel, Toplex: toplexOn, Multi: multi})
	if !candOK || !fallOK {
		return Decision{}, false
	}
	winner := fallback
	winCost, loseCost := fallCost, candCost
	if candidateFits && candCost < fallCost {
		winner = candidate
		winCost, loseCost = candCost, fallCost
	}
	return pin(cfg, winner, fmt.Sprintf(
		"calibrated: %s measured ~%s/s vs %s ~%s/s on this dataset",
		algoName(winner), winCost.Round(time.Microsecond),
		algoName(loser(winner, candidate, fallback)), loseCost.Round(time.Microsecond))), true
}

// loser names the strategy calibration rejected.
func loser(winner, a, b Algorithm) Algorithm {
	if winner == a {
		return b
	}
	return a
}

// algoName renders an algorithm by its registered strategy name, for
// plan reasons.
func algoName(a Algorithm) string {
	if s, err := StrategyFor(a); err == nil {
		return s.Name()
	}
	return a.String()
}

// spgemmBudgetFits is spgemmRegime's memory guard alone: the
// density-regime test is a heuristic calibration may override, the
// budget is not.
func spgemmBudgetFits(st hg.Stats) bool {
	return st.WedgePairs <= spgemmProductBudget/spgemmBytesPerEntry
}

// pin resolves cfg onto a registered strategy. The registry is
// populated at init with every Algorithm tag the planner can emit, so
// a miss is a programming error.
func pin(cfg Config, a Algorithm, reason string) Decision {
	strat, err := StrategyFor(a)
	if err != nil {
		panic(err)
	}
	cfg.Algorithm = a
	return Decision{Strategy: strat, Config: cfg, Reason: reason}
}

// ensembleFits reports whether Algorithm 3's materialized counters
// (bounded by the wedge-pair count) fit the planner's memory budget.
// The comparison divides the budget rather than multiplying the count
// so extreme degree distributions cannot overflow into "fits".
func ensembleFits(st hg.Stats) bool {
	return st.WedgePairs <= ensembleCounterBudget/ensembleBytesPerCounter
}

// spgemmRegime reports whether a hypergraph is in the dense regime
// where the planner prefers SpGEMM for s=1 queries: large enough to
// matter, line graph at least half-complete (≥ half of all m·(m−1)/2
// hyperedge pairs), and a product that fits the budget.
//
// WedgePairs counts a hyperedge pair once per shared vertex, so it
// overestimates distinct pairs on deep-overlap hypergraphs; dividing
// by the largest hyperedge size (the maximum multiplicity of any pair)
// gives a conservative lower bound on the distinct-pair coverage, so
// the regime only triggers when the line graph is provably dense.
func spgemmRegime(st hg.Stats) bool {
	m := int64(st.NumEdges)
	if m < spgemmMinEdges {
		return false
	}
	maxMult := int64(st.MaxEdgeSize)
	if maxMult < 1 {
		maxMult = 1
	}
	if st.WedgePairs/maxMult < m*(m-1)/4 {
		return false
	}
	return st.WedgePairs <= spgemmProductBudget/spgemmBytesPerEntry
}

// planFor is the pipeline-internal entry: it computes dataset
// statistics only when the decision actually needs them (AlgoAuto, or
// a pinned-hashmap batch that may coalesce into an ensemble pass).
func planFor(h *hg.Hypergraph, sValues []int, cfg Config) Decision {
	var st hg.Stats
	if cfg.Algorithm == AlgoAuto ||
		(cfg.Algorithm == AlgoHashmap && len(DistinctS(sValues)) > 1) {
		st = hg.ComputeStats("", h)
	}
	return PlanQuery(st, sValues, cfg)
}
