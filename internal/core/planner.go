package core

import (
	"fmt"

	"hyperline/internal/hg"
)

// Planner cost-model constants. The planner reasons in bytes because
// the regime boundaries the paper observes (§VI-C, §VI-G) are memory
// cliffs, not instruction-count crossovers: Algorithm 3 materializes
// one counter per wedge pair, and SpGEMM materializes the product.
const (
	// ensembleBytesPerCounter is the cost of one materialized overlap
	// counter in Algorithm 3's pruned counter set (one Edge: U, V, W).
	ensembleBytesPerCounter = 12
	// ensembleCounterBudget caps the memory the planner will let
	// Algorithm 3 spend on materialized counters before falling back
	// to per-s Algorithm 2 passes.
	ensembleCounterBudget = 2 << 30
	// spgemmMinEdges is the smallest hyperedge count for which the
	// planner considers SpGEMM: below it, any strategy finishes in
	// microseconds and the hashmap default keeps work counters
	// meaningful.
	spgemmMinEdges = 1024
	// spgemmBytesPerEntry is the CSR cost of one stored product entry
	// (column + value).
	spgemmBytesPerEntry = 8
	// spgemmProductBudget caps the materialized upper-triangle product.
	spgemmProductBudget = 1 << 30
)

// Decision is the planner's resolved execution plan for one query: the
// strategy to run, the configuration to run it with (Algorithm pinned
// to the strategy's tag), and the reason, for observability.
type Decision struct {
	Strategy Strategy
	Config   Config
	Reason   string
}

// Info condenses the decision into the pipeline-result form.
func (d Decision) Info() PlanInfo {
	return PlanInfo{Strategy: d.Strategy.Name(), Reason: d.Reason}
}

// PlanQuery resolves the strategy for one query from the hypergraph's
// statistics (st), the requested s values, and cfg.
//
// Pinned algorithms (cfg.Algorithm != AlgoAuto) are honored, with one
// exception: a batched AlgoHashmap query whose counter memory fits the
// budget is coalesced into a single ensemble pass, which produces
// byte-identical output for a fraction of the counting work. Algorithm
// 1 batches always run per s — its short-circuited weights depend on s
// and no other strategy can reproduce them.
//
// For AlgoAuto the planner only chooses among exact-weight strategies
// (Algorithm 2, Algorithm 3, SpGEMM), so the output — and therefore the
// cache fingerprint — is independent of the decision:
//
//   - multi-s batches run as one ensemble counting pass when the
//     estimated counter memory (st.WedgePairs) fits the budget, and as
//     per-s hashmap passes otherwise;
//   - s = 1 queries on dense hypergraphs (the line graph is at least
//     half-complete) route to SpGEMM: at s = 1 the on-the-fly filter
//     discards nothing, so Algorithm 2's store-nothing advantage
//     vanishes and the simpler multiply kernel wins;
//   - everything else takes Algorithm 2, whose wedge-linear cost is
//     the floor among exact strategies. Algorithm 1 is never chosen:
//     exact mode performs the same wedge traversal plus the
//     intersections, and short-circuit mode changes the output class.
func PlanQuery(st hg.Stats, sValues []int, cfg Config) Decision {
	distinct := DistinctS(sValues)
	multi := len(distinct) > 1

	switch cfg.Algorithm {
	case AlgoSetIntersection:
		return pin(cfg, AlgoSetIntersection,
			"pinned Algorithm 1: per-s passes preserve its weight semantics")
	case AlgoEnsemble:
		return pin(cfg, AlgoEnsemble, "pinned Algorithm 3")
	case AlgoSpGEMM:
		return pin(cfg, AlgoSpGEMM, "pinned SpGEMM")
	case AlgoHashmap:
		if multi && ensembleFits(st) {
			return pin(cfg, AlgoEnsemble,
				fmt.Sprintf("batched Algorithm 2 query coalesced into one ensemble pass (%d s values, identical output)", len(distinct)))
		}
		return pin(cfg, AlgoHashmap, "pinned Algorithm 2")
	}

	// AlgoAuto: choose among the exact-weight strategies.
	if multi {
		if ensembleFits(st) {
			return pin(cfg, AlgoEnsemble,
				fmt.Sprintf("multi-s batch (%d values): one ensemble counting pass, ~%d counters fit the budget", len(distinct), st.WedgePairs))
		}
		return pin(cfg, AlgoHashmap,
			fmt.Sprintf("multi-s batch, but ~%d materialized counters exceed the ensemble budget; per-s hashmap passes", st.WedgePairs))
	}
	s := distinct[0]
	if st.MaxEdgeSize > 0 && s > st.MaxEdgeSize {
		return pin(cfg, AlgoHashmap,
			fmt.Sprintf("s=%d exceeds the largest hyperedge (%d): pruning makes the result trivially empty", s, st.MaxEdgeSize))
	}
	if s == 1 && spgemmRegime(st) {
		return pin(cfg, AlgoSpGEMM,
			"s=1 on a dense hypergraph: filtering discards nothing, so the materialized upper-triangle product costs no more than the output")
	}
	return pin(cfg, AlgoHashmap, "single-s query: hashmap counting is the exact-weight cost floor")
}

// pin resolves cfg onto a registered strategy. The registry is
// populated at init with every Algorithm tag the planner can emit, so
// a miss is a programming error.
func pin(cfg Config, a Algorithm, reason string) Decision {
	strat, err := StrategyFor(a)
	if err != nil {
		panic(err)
	}
	cfg.Algorithm = a
	return Decision{Strategy: strat, Config: cfg, Reason: reason}
}

// ensembleFits reports whether Algorithm 3's materialized counters
// (bounded by the wedge-pair count) fit the planner's memory budget.
// The comparison divides the budget rather than multiplying the count
// so extreme degree distributions cannot overflow into "fits".
func ensembleFits(st hg.Stats) bool {
	return st.WedgePairs <= ensembleCounterBudget/ensembleBytesPerCounter
}

// spgemmRegime reports whether a hypergraph is in the dense regime
// where the planner prefers SpGEMM for s=1 queries: large enough to
// matter, line graph at least half-complete (≥ half of all m·(m−1)/2
// hyperedge pairs), and a product that fits the budget.
//
// WedgePairs counts a hyperedge pair once per shared vertex, so it
// overestimates distinct pairs on deep-overlap hypergraphs; dividing
// by the largest hyperedge size (the maximum multiplicity of any pair)
// gives a conservative lower bound on the distinct-pair coverage, so
// the regime only triggers when the line graph is provably dense.
func spgemmRegime(st hg.Stats) bool {
	m := int64(st.NumEdges)
	if m < spgemmMinEdges {
		return false
	}
	maxMult := int64(st.MaxEdgeSize)
	if maxMult < 1 {
		maxMult = 1
	}
	if st.WedgePairs/maxMult < m*(m-1)/4 {
		return false
	}
	return st.WedgePairs <= spgemmProductBudget/spgemmBytesPerEntry
}

// planFor is the pipeline-internal entry: it computes dataset
// statistics only when the decision actually needs them (AlgoAuto, or
// a pinned-hashmap batch that may coalesce into an ensemble pass).
func planFor(h *hg.Hypergraph, sValues []int, cfg Config) Decision {
	var st hg.Stats
	if cfg.Algorithm == AlgoAuto ||
		(cfg.Algorithm == AlgoHashmap && len(DistinctS(sValues)) > 1) {
		st = hg.ComputeStats("", h)
	}
	return PlanQuery(st, sValues, cfg)
}
