package core

import (
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// MaxOverlap returns the maximum pairwise overlap max_{e≠f} inc(e, f)
// of the hypergraph — the largest s for which the s-line graph Ls(H)
// is non-empty (the paper's "max s that produces non-singleton
// components", e.g. 16 for the condMat network). Returns 0 when no two
// hyperedges intersect.
//
// The scan reuses Algorithm 2's counting pass with per-worker dense
// counters but emits nothing, so it is cheaper than materializing the
// 1-line graph.
func MaxOverlap(h *hg.Hypergraph, cfg Config) int {
	m := h.NumEdges()
	w := numWorkers(cfg)
	maxPer := make([]uint32, w)
	counts := make([][]uint32, w)
	touched := make([][]uint32, w)

	par.For(m, cfg.parOptions(), func(worker, i int) {
		if counts[worker] == nil {
			counts[worker] = make([]uint32, m)
		}
		c := counts[worker]
		t := touched[worker][:0]
		ei := uint32(i)
		for _, vk := range h.EdgeVertices(ei) {
			for _, ej := range upperNeighbors(h.VertexEdges(vk), ei) {
				if c[ej] == 0 {
					t = append(t, ej)
				}
				c[ej]++
			}
		}
		best := maxPer[worker]
		for _, ej := range t {
			if c[ej] > best {
				best = c[ej]
			}
			c[ej] = 0
		}
		maxPer[worker] = best
		touched[worker] = t
	})

	best := uint32(0)
	for _, b := range maxPer {
		if b > best {
			best = b
		}
	}
	return int(best)
}
