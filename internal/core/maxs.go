package core

import (
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// MaxOverlap returns the maximum pairwise overlap max_{e≠f} inc(e, f)
// of the hypergraph — the largest s for which the s-line graph Ls(H)
// is non-empty (the paper's "max s that produces non-singleton
// components", e.g. 16 for the condMat network). Returns 0 when no two
// hyperedges intersect.
//
// The scan reuses Algorithm 2's counting pass with per-worker dense
// counters but emits nothing, so it is cheaper than materializing the
// 1-line graph.
func MaxOverlap(h *hg.Hypergraph, cfg Config) int {
	m := h.NumEdges()
	w := numWorkers(cfg)
	counts := make([][]uint32, w)
	touched := make([][]uint32, w)

	maxUint32 := func(a, b uint32) uint32 {
		if a > b {
			return a
		}
		return b
	}
	best := par.Reduce(m, cfg.parOptions(), uint32(0), func(worker, i int) uint32 {
		if counts[worker] == nil {
			counts[worker] = make([]uint32, m)
		}
		c := counts[worker]
		t := touched[worker][:0]
		ei := uint32(i)
		for _, vk := range h.EdgeVertices(ei) {
			for _, ej := range upperNeighbors(h.VertexEdges(vk), ei) {
				if c[ej] == 0 {
					t = append(t, ej)
				}
				c[ej]++
			}
		}
		var iterBest uint32
		for _, ej := range t {
			if c[ej] > iterBest {
				iterBest = c[ej]
			}
			c[ej] = 0
		}
		touched[worker] = t
		return iterBest
	}, maxUint32)
	return int(best)
}
