package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// exactConfig returns a configuration that makes strat produce the
// exact-weight output class (Algorithm 1 needs short-circuiting off).
func exactConfig(strat Strategy, workers int, p par.Strategy) Config {
	cfg := Config{Algorithm: strat.Algorithm(), Workers: workers, Partition: p}
	if strat.Algorithm() == AlgoSetIntersection {
		cfg.DisableShortCircuit = true
	}
	return cfg
}

// TestStrategiesByteIdentical is the engine's core property: every
// registered strategy, in exact mode, produces byte-identical sorted
// edge lists on random hypergraphs across s values, worker counts, and
// workload distributions — single-s and batched.
func TestStrategiesByteIdentical(t *testing.T) {
	if len(Strategies()) < 4 {
		t.Fatalf("expected >= 4 registered strategies, got %d", len(Strategies()))
	}
	f := func(seed int64, sRaw, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 30, 40, 8)
		s := 1 + int(sRaw%5)
		workers := 1 + int(wRaw%7)
		sweep := []int{s, s + 2, 1}

		want := NaiveAllPairs(h, s)
		for _, strat := range Strategies() {
			for _, p := range []par.Strategy{par.Blocked, par.Cyclic} {
				cfg := exactConfig(strat, workers, p)
				single, _, _ := strat.Edges(context.Background(), h, []int{s}, cfg)
				if got := single[s]; !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Logf("%s single s=%d workers=%d %v: got %v want %v",
						strat.Name(), s, workers, p, got, want)
					return false
				}
				batch, _, _ := strat.Edges(context.Background(), h, sweep, cfg)
				for _, si := range DistinctS(sweep) {
					ref := NaiveAllPairs(h, si)
					if got := batch[si]; !reflect.DeepEqual(got, ref) && !(len(got) == 0 && len(ref) == 0) {
						t.Logf("%s batch s=%d disagrees", strat.Name(), si)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerPathsByteIdentical drives the full pipeline down every
// strategy path — pinned and planner-chosen — and requires identical
// projections from RunBatch.
func TestPlannerPathsByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	h := randomHypergraph(r, 60, 90, 7)
	sweep := []int{1, 2, 3, 5}

	ref, _ := RunBatch(context.Background(), h, sweep, PipelineConfig{})
	if len(ref) != len(sweep) {
		t.Fatalf("RunBatch produced %d results, want %d", len(ref), len(sweep))
	}
	pinned := []Config{
		{Algorithm: AlgoHashmap},
		{Algorithm: AlgoEnsemble},
		{Algorithm: AlgoSpGEMM},
		{Algorithm: AlgoSetIntersection, DisableShortCircuit: true},
	}
	for _, cfg := range pinned {
		got, _ := RunBatch(context.Background(), h, sweep, PipelineConfig{Core: cfg})
		for _, s := range sweep {
			if !reflect.DeepEqual(got[s].Graph.Edges(), ref[s].Graph.Edges()) {
				t.Fatalf("algorithm %s s=%d: edges differ from planner default", cfg.Algorithm, s)
			}
			if !reflect.DeepEqual(got[s].HyperedgeIDs, ref[s].HyperedgeIDs) {
				t.Fatalf("algorithm %s s=%d: hyperedge IDs differ from planner default", cfg.Algorithm, s)
			}
			if got[s].Plan.Strategy == "" {
				t.Fatalf("algorithm %s s=%d: missing plan info", cfg.Algorithm, s)
			}
		}
	}
	// And each batch result equals its single-s pipeline run.
	for _, s := range sweep {
		single, _ := Run(context.Background(), h, s, PipelineConfig{})
		if !reflect.DeepEqual(ref[s].Graph.Edges(), single.Graph.Edges()) {
			t.Fatalf("s=%d: batch result differs from single-s Run", s)
		}
	}
}

// TestRunBatchDegenerateInputs pins the edge cases of the batch entry.
func TestRunBatchDegenerateInputs(t *testing.T) {
	h := paperExample()
	if got, _ := RunBatch(context.Background(), h, nil, PipelineConfig{}); len(got) != 0 {
		t.Fatalf("RunBatch with no s values returned %d results", len(got))
	}
	dup, _ := RunBatch(context.Background(), h, []int{2, 2, 0}, PipelineConfig{})
	if len(dup) != 2 { // {1, 2}: 0 clamps to 1
		t.Fatalf("RunBatch([2,2,0]) returned %d results, want 2", len(dup))
	}
	if dup[1] == nil || dup[2] == nil {
		t.Fatalf("RunBatch([2,2,0]) missing clamped keys: %v", dup)
	}
}

func stats(m, maxEdge int, wedgePairs int64) hg.Stats {
	return hg.Stats{NumEdges: m, MaxEdgeSize: maxEdge, WedgePairs: wedgePairs}
}

// TestPlannerDecisions pins the planner's regime boundaries with
// synthetic dataset statistics.
func TestPlannerDecisions(t *testing.T) {
	cases := []struct {
		name   string
		st     hg.Stats
		s      []int
		cfg    Config
		want   Algorithm
		wantSC bool // expected DisableShortCircuit on the resolved config
	}{
		{"auto single-s takes hashmap",
			stats(100000, 40, 1<<20), []int{4}, Config{}, AlgoHashmap, false},
		{"auto batch coalesces into ensemble",
			stats(100000, 40, 1<<20), []int{1, 2, 3}, Config{}, AlgoEnsemble, false},
		{"auto batch over counter budget falls back to per-s hashmap",
			stats(100000, 40, 1<<40), []int{1, 2, 3}, Config{}, AlgoHashmap, false},
		{"auto s=1 dense regime routes to spgemm",
			stats(4096, 4, int64(4096)*4095), []int{1}, Config{}, AlgoSpGEMM, false},
		{"auto s=1 sparse stays hashmap",
			stats(4096, 64, 4096), []int{1}, Config{}, AlgoHashmap, false},
		{"auto s=1 deep-overlap sparse pairs stays hashmap",
			// Wedge pairs look large only through multiplicity (pairs
			// sharing ~1024 vertices each): not a dense line graph.
			stats(4096, 1024, int64(4096)*4095), []int{1}, Config{}, AlgoHashmap, false},
		{"auto s=1 dense but tiny stays hashmap",
			stats(100, 4, int64(100)*99), []int{1}, Config{}, AlgoHashmap, false},
		{"auto s=1 dense but product over budget stays hashmap",
			stats(1<<20, 1, 1<<39), []int{1}, Config{}, AlgoHashmap, false},
		{"auto batch with overflow-scale wedge pairs stays per-s hashmap",
			stats(1<<30, 40, 1<<62), []int{1, 2}, Config{}, AlgoHashmap, false},
		{"auto s beyond max edge size is trivially empty",
			stats(100000, 40, 1<<20), []int{41}, Config{}, AlgoHashmap, false},
		{"pinned hashmap batch coalesces into ensemble",
			stats(100000, 40, 1<<20), []int{2, 4}, Config{Algorithm: AlgoHashmap}, AlgoEnsemble, false},
		{"pinned hashmap batch over budget stays per-s",
			stats(100000, 40, 1<<40), []int{2, 4}, Config{Algorithm: AlgoHashmap}, AlgoHashmap, false},
		{"pinned hashmap single stays hashmap",
			stats(100000, 40, 1<<20), []int{2}, Config{Algorithm: AlgoHashmap}, AlgoHashmap, false},
		{"pinned algorithm 1 batch never coalesces",
			stats(100000, 40, 1<<20), []int{2, 4}, Config{Algorithm: AlgoSetIntersection}, AlgoSetIntersection, false},
		{"pinned algorithm 1 keeps exact mode",
			stats(100000, 40, 1<<20), []int{2}, Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true}, AlgoSetIntersection, true},
		{"pinned ensemble honored for single s",
			stats(100000, 40, 1<<20), []int{2}, Config{Algorithm: AlgoEnsemble}, AlgoEnsemble, false},
		{"pinned spgemm honored",
			stats(10, 4, 5), []int{3}, Config{Algorithm: AlgoSpGEMM}, AlgoSpGEMM, false},
	}
	for _, tc := range cases {
		dec := PlanQuery(tc.st, tc.s, tc.cfg)
		if dec.Strategy.Algorithm() != tc.want {
			t.Errorf("%s: planned %s, want %s (reason: %s)",
				tc.name, dec.Strategy.Algorithm(), tc.want, dec.Reason)
		}
		if dec.Config.Algorithm != dec.Strategy.Algorithm() {
			t.Errorf("%s: resolved config algorithm %s != strategy %s",
				tc.name, dec.Config.Algorithm, dec.Strategy.Algorithm())
		}
		if dec.Config.DisableShortCircuit != tc.wantSC {
			t.Errorf("%s: DisableShortCircuit = %v, want %v",
				tc.name, dec.Config.DisableShortCircuit, tc.wantSC)
		}
		if dec.Reason == "" {
			t.Errorf("%s: empty plan reason", tc.name)
		}
	}
}

// TestPlannerNeverChangesOutputClass: whatever the planner picks for an
// AlgoAuto query, the output must be the exact-weight class — identical
// to a pinned Algorithm 2 run.
func TestPlannerNeverChangesOutputClass(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 25, 35, 6)
		s := 1 + int(sRaw%4)
		auto, _, _ := SLineEdges(context.Background(), h, s, Config{})
		pinned, _, _ := SLineEdges(context.Background(), h, s, Config{Algorithm: AlgoHashmap})
		return reflect.DeepEqual(auto, pinned) || (len(auto) == 0 && len(pinned) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStrategyRegistry exercises the registry surface.
func TestStrategyRegistry(t *testing.T) {
	for _, a := range []Algorithm{AlgoSetIntersection, AlgoHashmap, AlgoEnsemble, AlgoSpGEMM} {
		strat, err := StrategyFor(a)
		if err != nil {
			t.Fatalf("StrategyFor(%s): %v", a, err)
		}
		if strat.Algorithm() != a {
			t.Fatalf("StrategyFor(%s) returned %s", a, strat.Algorithm())
		}
	}
	if _, err := StrategyFor(Algorithm(99)); err == nil {
		t.Fatal("unregistered algorithm should error")
	}
	if _, err := StrategyFor(AlgoAuto); err == nil {
		t.Fatal("AlgoAuto is not a strategy; it must resolve through PlanQuery")
	}
}
