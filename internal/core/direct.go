package core

import (
	"hyperline/internal/hg"
)

// SConnectedComponentsDirect computes the s-connected components of
// the hyperedges of h without materializing the s-line graph: a BFS
// over hyperedges where the s-incident neighbors of the frontier edge
// are discovered on the fly with Algorithm 2's overlap counting.
//
// Compared to the pipeline (materialize Ls, then run CC), this trades
// repeated counting work for O(|E|) memory — the right choice when the
// s-line graph is too dense to store but only component structure is
// needed (the paper's clique-expansion OOMs of Table V are exactly
// this regime at s=1). Hyperedges of size < s form singleton
// components.
//
// The returned slice maps each hyperedge to its component
// representative: the minimum hyperedge ID in the component.
func SConnectedComponentsDirect(h *hg.Hypergraph, s int) []uint32 {
	if s < 1 {
		s = 1
	}
	m := h.NumEdges()
	label := make([]uint32, m)
	for e := range label {
		label[e] = uint32(e)
	}
	visited := make([]bool, m)
	counts := make([]uint32, m)
	var touched []uint32
	var queue []uint32

	for start := 0; start < m; start++ {
		if visited[start] || h.EdgeSize(uint32(start)) < s {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], uint32(start))
		rep := uint32(start) // minimum ID in BFS order is the start
		for head := 0; head < len(queue); head++ {
			ei := queue[head]
			label[ei] = rep
			// Discover s-incident neighbors of ei (both directions:
			// unlike the construction algorithms, traversal needs
			// every neighbor, not just ej > ei).
			touched = touched[:0]
			for _, vk := range h.EdgeVertices(ei) {
				for _, ej := range h.VertexEdges(vk) {
					if ej == ei || visited[ej] {
						continue
					}
					if counts[ej] == 0 {
						touched = append(touched, ej)
					}
					counts[ej]++
				}
			}
			for _, ej := range touched {
				if int(counts[ej]) >= s && !visited[ej] {
					visited[ej] = true
					queue = append(queue, ej)
				}
				counts[ej] = 0
			}
		}
	}
	return label
}
