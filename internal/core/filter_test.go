package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// naiveFilterGE is the obvious filtration the branch-free one is
// checked against.
func naiveFilterGE(edges []Edge, s int) []Edge {
	var out []Edge
	for _, e := range edges {
		if int(e.W) >= s {
			out = append(out, e)
		}
	}
	return out
}

func randomEdges(r *rand.Rand, n, maxW int) []Edge {
	out := make([]Edge, n)
	for i := range out {
		out[i] = Edge{U: uint32(i), V: uint32(i + 1), W: uint32(1 + r.Intn(maxW))}
	}
	return out
}

func TestFilterEdgesGE(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 100, filterChunk + 37} {
		edges := randomEdges(r, n, 10)
		for s := 1; s <= 11; s++ {
			got, err := filterEdgesGE(context.Background(), edges, s)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveFilterGE(edges, s)
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("n=%d s=%d: filtration mismatch (%d edges, want %d)", n, s, len(got), len(want))
			}
		}
	}
}

// TestFilterEdgesGESharesWhenAllPass: the all-pass filtration returns
// the input slice itself (the nested-ensemble fast path), and the
// none-pass filtration returns nil.
func TestFilterEdgesGESharesWhenAllPass(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}}
	got, err := filterEdgesGE(context.Background(), edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &edges[0] {
		t.Fatal("all-pass filtration did not share the input slice")
	}
	got, err = filterEdgesGE(context.Background(), edges, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("none-pass filtration = %v, want nil", got)
	}
}

func TestFilterEdgesGECancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := rand.New(rand.NewSource(5))
	if _, err := filterEdgesGE(ctx, randomEdges(r, 64, 10), 5); err != context.Canceled {
		t.Fatalf("cancelled filtration returned %v, want context.Canceled", err)
	}
	// nil ctx never cancels.
	if _, err := filterEdgesGE(nil, randomEdges(r, 64, 10), 5); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFilterEdgesGE measures the branch-free s-filtration on a
// weight distribution near the threshold — the pattern that defeats
// the branch predictor in a naive filter.
func BenchmarkFilterEdgesGE(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	edges := randomEdges(r, 1<<20, 8)
	b.SetBytes(int64(len(edges)) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filterEdgesGE(nil, edges, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseCounterReset measures Algorithm 2's dense-counter hot
// loop (epoch-stamped slots: no per-iteration memset, prefetched 2-hop
// traversal) end to end on a random hypergraph with the dense store
// pinned.
func BenchmarkDenseCounterReset(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	h := randomHypergraph(r, 400, 2000, 12)
	cfg := Config{Algorithm: AlgoHashmap, Store: TLSDense, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hashmapEdges(context.Background(), h, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
