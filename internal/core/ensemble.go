package core

import (
	"context"

	"hyperline/internal/hg"
)

// EnsembleEdges is Algorithm 3 of the paper: it computes the edge lists
// of an ensemble of s-line graphs Ls(H) for every s in sValues with a
// single counting pass, decoupling Algorithm 2's counting from edge
// emission.
//
// The stored-counter set is pruned at sMin, the smallest requested s:
// a counter below sMin can never pass any requested filter, so the
// materialization is exactly the sMin-line edge list with exact
// weights — i.e. one Algorithm 2 pass at sMin, reusing its adaptive
// thread-local counters and sort-free assembly. Each remaining s is
// then a weight filtration (W ≥ s) of that list, which preserves the
// sorted order. The filtrations are nested (s' > s implies
// L_s'(H) ⊆ L_s(H)), so each s filters the previous s's output rather
// than rescanning the base list — the total filtration work is
// Σ|result_s| instead of |base|·(number of s values) — with a
// branch-free inner loop (filterEdgesGE).
//
// As the paper notes (§VI-C), the materialization is memory-intensive
// for small sMin — O(|E(L_sMin)|), the full 1-line graph in the worst
// case — which is why the planner budgets it against the hypergraph's
// wedge-pair count. Degree-based pruning uses sMin.
//
// The result maps each distinct s (clamped to ≥ 1) to its sorted edge
// list. Duplicate s values are computed once. A cancelled ctx aborts
// cooperatively with ctx.Err() (checked inside the counting pass and
// between filtrations); a nil ctx means context.Background().
func EnsembleEdges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	distinct := DistinctS(sValues)
	result := make(map[int][]Edge, len(distinct))
	if len(distinct) == 0 {
		return result, Stats{WedgesPerWorker: make([]int64, numWorkers(cfg))}, nil
	}
	sMin := distinct[0] // DistinctS sorts ascending

	base, stats, err := hashmapEdges(ctx, h, sMin, cfg)
	if err != nil {
		return nil, stats, err
	}
	result[sMin] = base

	prev := base
	for _, s := range distinct[1:] {
		filtered, err := filterEdgesGE(ctx, prev, s)
		if err != nil {
			return nil, stats, err
		}
		prev = filtered
		result[s] = prev
		stats.Edges += int64(len(prev))
	}
	return result, stats, nil
}
