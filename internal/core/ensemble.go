package core

import (
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// EnsembleEdges is Algorithm 3 of the paper: it computes the edge lists
// of an ensemble of s-line graphs Ls(H) for every s in sValues with a
// single counting pass. The counting step of Algorithm 2 is decoupled
// from edge emission: all per-hyperedge overlap counters are
// materialized first (keyed by the 2-hop neighbor ej > ei), then each
// requested s filters the stored counts in parallel.
//
// As the paper notes (§VI-C), storing every overlap counter is
// memory-intensive — O(total 2-hop neighborhood size) — which is why the
// original implementation fails on large datasets. Degree-based pruning
// uses the smallest requested s.
//
// The result maps each s to its sorted edge list. Duplicate s values
// are computed once.
func EnsembleEdges(h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats) {
	stats := Stats{WedgesPerWorker: make([]int64, numWorkers(cfg))}
	result := make(map[int][]Edge, len(sValues))
	if len(sValues) == 0 {
		return result, stats
	}
	sMin := sValues[0]
	for _, s := range sValues {
		if s < sMin {
			sMin = s
		}
	}
	if sMin < 1 {
		sMin = 1
	}

	m := h.NumEdges()
	w := numWorkers(cfg)

	// Counting pass (Lines 3-9 of Algorithm 3): overlap[ei] holds the
	// counter map of hyperedge ei. Workers write disjoint slots, so no
	// synchronization is needed.
	overlap := make([]map[uint32]uint32, m)
	wedgeStats := par.NewWorkerStats(w)
	pruned := par.NewWorkerStats(w)
	par.For(m, cfg.parOptions(), func(worker, i int) {
		ei := uint32(i)
		if !cfg.DisablePruning && h.EdgeSize(ei) < sMin {
			pruned.Add(worker, 1)
			return
		}
		counts := make(map[uint32]uint32)
		for _, vk := range h.EdgeVertices(ei) {
			for _, ej := range upperNeighbors(h.VertexEdges(vk), ei) {
				wedgeStats.Add(worker, 1)
				counts[ej]++
			}
		}
		if len(counts) > 0 {
			overlap[ei] = counts
		}
	})
	stats.Wedges = wedgeStats.Total()
	stats.WedgesPerWorker = wedgeStats.PerWorker()
	stats.Pruned = pruned.Total()

	// Filtering pass (Lines 10-15): one filter per distinct s value,
	// all s values in parallel.
	distinct := make([]int, 0, len(sValues))
	seen := map[int]bool{}
	for _, s := range sValues {
		if s < 1 {
			s = 1
		}
		if !seen[s] {
			seen[s] = true
			distinct = append(distinct, s)
		}
	}
	lists := make([][]Edge, len(distinct))
	par.For(len(distinct), par.Options{Workers: cfg.Workers}, func(_, k int) {
		s := distinct[k]
		var edges []Edge
		for i := 0; i < m; i++ {
			start := len(edges)
			for ej, n := range overlap[i] {
				if int(n) >= s {
					edges = append(edges, Edge{U: uint32(i), V: ej, W: n})
				}
			}
			// i ascends, so per-i segment sorts by V keep the whole
			// list (U, V)-sorted with no global sort.
			sortSegmentByV(edges[start:])
		}
		lists[k] = edges
	})
	for k, s := range distinct {
		result[s] = lists[k]
		stats.Edges += int64(len(lists[k]))
	}
	return result, stats
}
