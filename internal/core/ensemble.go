package core

import (
	"context"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// EnsembleEdges is Algorithm 3 of the paper: it computes the edge lists
// of an ensemble of s-line graphs Ls(H) for every s in sValues with a
// single counting pass, decoupling Algorithm 2's counting from edge
// emission.
//
// The stored-counter set is pruned at sMin, the smallest requested s:
// a counter below sMin can never pass any requested filter, so the
// materialization is exactly the sMin-line edge list with exact
// weights — i.e. one Algorithm 2 pass at sMin, reusing its adaptive
// thread-local counters and sort-free assembly. Each remaining s is
// then a weight filtration (W ≥ s) of that list, which preserves the
// sorted order; all s values filter in parallel.
//
// As the paper notes (§VI-C), the materialization is memory-intensive
// for small sMin — O(|E(L_sMin)|), the full 1-line graph in the worst
// case — which is why the planner budgets it against the hypergraph's
// wedge-pair count. Degree-based pruning uses sMin.
//
// The result maps each distinct s (clamped to ≥ 1) to its sorted edge
// list. Duplicate s values are computed once. A cancelled ctx aborts
// cooperatively with ctx.Err() (checked inside the counting pass and
// between filtrations); a nil ctx means context.Background().
func EnsembleEdges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	distinct := DistinctS(sValues)
	result := make(map[int][]Edge, len(distinct))
	if len(distinct) == 0 {
		return result, Stats{WedgesPerWorker: make([]int64, numWorkers(cfg))}, nil
	}
	sMin := distinct[0] // DistinctS sorts ascending

	base, stats, err := hashmapEdges(ctx, h, sMin, cfg)
	if err != nil {
		return nil, stats, err
	}
	result[sMin] = base

	rest := distinct[1:]
	lists := make([][]Edge, len(rest))
	flag := watchContext(ctx)
	par.For(len(rest), par.Options{Workers: cfg.Workers}, func(_, k int) {
		if flag.Stop() {
			return
		}
		s := rest[k]
		var edges []Edge
		for _, e := range base {
			if int(e.W) >= s {
				edges = append(edges, e)
			}
		}
		lists[k] = edges
	})
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	for k, s := range rest {
		result[s] = lists[k]
		stats.Edges += int64(len(lists[k]))
	}
	return result, stats, nil
}
