package core

import (
	"slices"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// Edge is one s-line graph edge: hyperedges U < V are s-incident with
// overlap weight W = inc(U, V) ≥ s. When Algorithm 1 runs with
// short-circuiting enabled (the default), W is the count confirmed
// before the intersection was cut off — guaranteed ≥ s but possibly
// below the exact overlap; every other algorithm reports exact
// overlaps.
//
// Edge is an alias of graph.Edge so s-overlap output feeds directly
// into graph.BuildSorted (Stage 4).
type Edge = graph.Edge

// edgeLess is the canonical (U, V) order, shared with graph.Build's
// sorted-check so the two layers can never disagree. U < V holds for
// every emitted edge and each U is owned by exactly one worker, so
// (U, V) is a unique key across all per-worker lists.
func edgeLess(a, b Edge) bool { return graph.EdgeLess(a, b) }

// edgeCmp adapts edgeLess for the slices package.
func edgeCmp(a, b Edge) int {
	if edgeLess(a, b) {
		return -1
	}
	if edgeLess(b, a) {
		return 1
	}
	return 0
}

// SortEdges orders edges by (U, V), which canonicalizes the
// nondeterministic concatenation order of per-worker edge lists.
func SortEdges(edges []Edge) {
	slices.SortFunc(edges, edgeCmp)
}

// sortSegmentByV sorts one outer-iteration emission segment (constant
// U) by V. This runs inside the hot counting loop, so it is a
// hand-rolled quicksort with an insertion-sort base case: the V
// comparisons inline, unlike the function-valued comparators of
// sort.Slice / slices.SortFunc. V is unique within a segment, so no
// equal-key handling is needed.
func sortSegmentByV(seg []Edge) {
	for len(seg) > 24 {
		// Median-of-three pivot, then Hoare partition.
		mid := len(seg) / 2
		last := len(seg) - 1
		if seg[mid].V < seg[0].V {
			seg[mid], seg[0] = seg[0], seg[mid]
		}
		if seg[last].V < seg[0].V {
			seg[last], seg[0] = seg[0], seg[last]
		}
		if seg[last].V < seg[mid].V {
			seg[last], seg[mid] = seg[mid], seg[last]
		}
		pivot := seg[mid].V
		i, j := 0, last
		for {
			for seg[i].V < pivot {
				i++
			}
			for seg[j].V > pivot {
				j--
			}
			if i >= j {
				break
			}
			seg[i], seg[j] = seg[j], seg[i]
			i++
			j--
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < len(seg)-j-1 {
			sortSegmentByV(seg[:j+1])
			seg = seg[j+1:]
		} else {
			sortSegmentByV(seg[j+1:])
			seg = seg[:j+1]
		}
	}
	for i := 1; i < len(seg); i++ {
		e := seg[i]
		j := i - 1
		for j >= 0 && seg[j].V > e.V {
			seg[j+1] = seg[j]
			j--
		}
		seg[j+1] = e
	}
}

// mergeWorkerEdges is the union step (Line 13 of Algorithm 2), rebuilt
// as a parallel multi-way merge: every worker keeps its list sorted by
// (U, V) — both workload distributions hand each worker a monotonically
// increasing hyperedge sequence and each iteration's segment is sorted
// by V at emission — so the global order is recovered with an O(E log W)
// partitioned merge instead of the seed's single-threaded O(E log E)
// sort of the concatenation. A worker list that somehow lost the
// invariant is re-sorted (in parallel) rather than corrupting the
// output.
func mergeWorkerEdges(lists [][]Edge, opt par.Options) []Edge {
	par.For(len(lists), par.Options{Workers: opt.Workers, Grain: 1}, func(_, i int) {
		if !slices.IsSortedFunc(lists[i], edgeCmp) {
			par.Sort(lists[i], edgeLess, opt)
		}
	})
	return par.MergeSorted(lists, edgeLess, opt)
}
