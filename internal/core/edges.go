package core

import (
	"sort"

	"hyperline/internal/graph"
)

// Edge is one s-line graph edge: hyperedges U < V are s-incident with
// overlap weight W = inc(U, V) ≥ s. When Algorithm 1 runs with
// short-circuiting enabled (the default), W is the count confirmed
// before the intersection was cut off — guaranteed ≥ s but possibly
// below the exact overlap; every other algorithm reports exact
// overlaps.
//
// Edge is an alias of graph.Edge so s-overlap output feeds directly
// into graph.Build (Stage 4).
type Edge = graph.Edge

// SortEdges orders edges by (U, V), which canonicalizes the
// nondeterministic concatenation order of per-worker edge lists. U < V
// holds for every emitted edge, so (U, V) is a unique key.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// mergeWorkerEdges concatenates per-worker edge lists (the union step,
// Line 13 of Algorithm 2) and sorts the result.
func mergeWorkerEdges(lists [][]Edge) []Edge {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Edge, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	SortEdges(out)
	return out
}
