package core

import (
	"context"
	"fmt"
	"sort"

	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spgemm"
)

// Strategy is one pluggable s-overlap execution engine. Implementations
// must satisfy the pipeline contract: for every distinct s in sValues
// (clamped to ≥ 1), the returned edge list is sorted by (U, V), deduped
// with U < V, and deterministic for a given hypergraph regardless of
// worker count, workload distribution, or counter store — exactly what
// graph.BuildSorted's zero-copy Stage 4 requires.
//
// Weight semantics are the only permitted output difference between
// strategies: every strategy reports exact overlap counts except
// Algorithm 1 with short-circuiting, whose weights are ≥ s bounds.
type Strategy interface {
	// Algorithm returns the enum tag this strategy implements.
	Algorithm() Algorithm
	// Name is the strategy's stable human-readable identifier, used in
	// plan reporting and logs.
	Name() string
	// Edges computes the s-line edge lists for every distinct s in
	// sValues. Stats are aggregated across the whole call (per-s work
	// is not broken out; multi-s strategies may share one counting
	// pass).
	//
	// Cancellation is cooperative: implementations must poll ctx at
	// bounded granularity inside their worker loops (at most one outer
	// iteration between checks) and return ctx.Err() once it is
	// cancelled, discarding partial output. The returned error is nil
	// or a context error — strategies have no other failure modes.
	Edges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error)
}

// strategies is the registry the planner and the pipeline resolve
// Algorithm tags against. Populated at init; RegisterStrategy allows
// tests and extensions to add entries before any query runs.
var strategies = map[Algorithm]Strategy{}

// RegisterStrategy adds s to the registry, replacing any previous
// strategy with the same Algorithm tag. Not safe for concurrent use
// with running queries — register during initialization.
func RegisterStrategy(s Strategy) {
	strategies[s.Algorithm()] = s
}

// StrategyFor resolves a pinned algorithm tag to its registered
// strategy.
func StrategyFor(a Algorithm) (Strategy, error) {
	s, ok := strategies[a]
	if !ok {
		return nil, fmt.Errorf("core: no strategy registered for algorithm %s", a)
	}
	return s, nil
}

// Strategies lists the registered strategies ordered by Algorithm tag.
func Strategies() []Strategy {
	out := make([]Strategy, 0, len(strategies))
	for _, s := range strategies {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Algorithm() < out[j].Algorithm() })
	return out
}

func init() {
	RegisterStrategy(setIntersectionStrategy{})
	RegisterStrategy(hashmapStrategy{})
	RegisterStrategy(ensembleStrategy{})
	RegisterStrategy(spgemmStrategy{})
}

// setIntersectionStrategy is Algorithm 1. Multi-s queries run one
// independent pass per s: each pass's short-circuit point (or exact
// intersection) depends on s, so no work can be shared.
type setIntersectionStrategy struct{}

func (setIntersectionStrategy) Algorithm() Algorithm { return AlgoSetIntersection }
func (setIntersectionStrategy) Name() string         { return "set-intersection" }

func (setIntersectionStrategy) Edges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	return perS(ctx, h, sValues, cfg, setIntersectionEdges)
}

// hashmapStrategy is Algorithm 2. Multi-s queries run one pass per s —
// the planner routes batches to the ensemble strategy instead when the
// counter memory is affordable.
type hashmapStrategy struct{}

func (hashmapStrategy) Algorithm() Algorithm { return AlgoHashmap }
func (hashmapStrategy) Name() string         { return "hashmap" }

func (hashmapStrategy) Edges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	return perS(ctx, h, sValues, cfg, hashmapEdges)
}

// ensembleStrategy is Algorithm 3: one counting pass serves every
// requested s.
type ensembleStrategy struct{}

func (ensembleStrategy) Algorithm() Algorithm { return AlgoEnsemble }
func (ensembleStrategy) Name() string         { return "ensemble" }

func (ensembleStrategy) Edges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	return EnsembleEdges(ctx, h, sValues, cfg)
}

// spgemmStrategy computes s-overlaps as upper-triangular Gustavson
// SpGEMM (L = HᵀH) followed by s-filtration. The product is
// materialized once and filtered per s, so multi-s queries share the
// multiply. Weights are exact overlap counts, identical to Algorithm
// 2's. Stats report only the emitted edge count: the SpGEMM kernel has
// no wedge or intersection counters.
//
// Cancellation granularity is coarser here than in the native
// strategies: the multiply kernel runs to completion, with checkpoints
// before it and between the per-s filtrations.
type spgemmStrategy struct{}

func (spgemmStrategy) Algorithm() Algorithm { return AlgoSpGEMM }
func (spgemmStrategy) Name() string         { return "spgemm" }

func (spgemmStrategy) Edges(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config) (map[int][]Edge, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats Stats
	distinct := DistinctS(sValues)
	result := make(map[int][]Edge, len(distinct))
	if len(distinct) == 0 {
		return result, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	l, err := spgemm.MultiplyUpper(spgemm.EdgeView(h), spgemm.VertexView(h), cfg.parOptions())
	if err != nil {
		// HᵀH dimensions agree by construction; a mismatch is a
		// programming error, not a query error.
		panic(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	lists := make([][]Edge, len(distinct))
	flag := watchContext(ctx)
	par.For(len(distinct), par.Options{Workers: cfg.Workers}, func(_, k int) {
		if flag.Stop() {
			return
		}
		lists[k] = spgemm.FilterS(l, distinct[k])
	})
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	for k, s := range distinct {
		result[s] = lists[k]
		stats.Edges += int64(len(lists[k]))
	}
	return result, stats, nil
}

// perS runs an independent single-s pass per distinct s value and
// merges the work counters.
func perS(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg Config, run func(context.Context, *hg.Hypergraph, int, Config) ([]Edge, Stats, error)) (map[int][]Edge, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats Stats
	distinct := DistinctS(sValues)
	result := make(map[int][]Edge, len(distinct))
	for _, s := range distinct {
		edges, st, err := run(ctx, h, s, cfg)
		if err != nil {
			return nil, stats, err
		}
		result[s] = edges
		stats.add(st)
	}
	return result, stats, nil
}
