package core

import "context"

// btoi converts a bool to 0/1. The compiler lowers it to a SETcc, so
// `k += btoi(cond)` is a branch-free conditional advance — the building
// block of the filtration loops, whose pass/fail pattern is
// data-dependent and defeats the branch predictor on weight
// distributions near the s threshold.
func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// filterChunk bounds how many edges the filtration passes scan between
// ctx polls: base lists at Fig-8 scale run to tens of millions of
// edges, and an unpolled full pass would make the cancellation latency
// proportional to the list length.
const filterChunk = 1 << 18

// filterEdgesGE returns the weight filtration {e : e.W >= s} of a
// sorted edge list, preserving order (and therefore the BuildSorted
// input contract). Two branch-free passes: an exact count, then a
// write-always/advance-conditionally fill into an exactly-sized
// allocation — no append growth, no per-element branch inside a chunk.
// ctx is polled once per filterChunk edges; a nil ctx never cancels.
//
// When every edge passes, the input slice itself is returned: ensemble
// filtrations are nested, and pipeline edge lists are immutable by
// convention, so sharing is safe and keeps the common low-s plateau
// allocation-free.
func filterEdgesGE(ctx context.Context, edges []Edge, s int) ([]Edge, error) {
	s32 := uint32(s)
	n := 0
	for lo := 0; lo < len(edges); lo += filterChunk {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		hi := min(lo+filterChunk, len(edges))
		for i := lo; i < hi; i++ {
			n += btoi(edges[i].W >= s32)
		}
	}
	if n == len(edges) {
		return edges, nil
	}
	if n == 0 {
		return nil, nil
	}
	// One slot of slack lets the fill write unconditionally: a failing
	// edge lands at out[k] and is overwritten by the next passing one
	// (or by nothing, past the trimmed length).
	out := make([]Edge, n+1)
	k := 0
	for lo := 0; lo < len(edges); lo += filterChunk {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		hi := min(lo+filterChunk, len(edges))
		for i := lo; i < hi; i++ {
			out[k] = edges[i]
			k += btoi(edges[i].W >= s32)
		}
	}
	return out[:n], nil
}
