package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hyperline/internal/hg"
)

// statsRegime builds synthetic hg.Stats for one planner-input regime.
func statsRegime(edges, maxEdgeSize int, avgEdgeSize float64, toplexSample float64) hg.Stats {
	return hg.Stats{
		NumEdges:        edges,
		NumVertices:     edges,
		MaxEdgeSize:     maxEdgeSize,
		AvgEdgeSize:     avgEdgeSize,
		MaxVertexDegree: maxEdgeSize,
		AvgVertexDegree: avgEdgeSize,
		ToplexSample:    toplexSample,
	}
}

func TestResolveToplexRegimes(t *testing.T) {
	cases := []struct {
		name string
		st   hg.Stats
		want ToplexMode
	}{
		{"large-high-containment", statsRegime(10_000, 4, 3, 0.6), ToplexOn},
		{"large-at-threshold", statsRegime(10_000, 4, 3, toplexSampleThreshold), ToplexOn},
		{"large-low-containment", statsRegime(10_000, 4, 3, 0.1), ToplexOff},
		{"small-high-containment", statsRegime(100, 4, 3, 0.9), ToplexOff},
	}
	for _, tc := range cases {
		mode, why := resolveToplex(tc.st)
		if mode != tc.want {
			t.Errorf("%s: resolveToplex = %v (%s), want %v", tc.name, mode, why, tc.want)
		}
		if why == "" {
			t.Errorf("%s: empty reason", tc.name)
		}
	}
}

func TestResolveRelabelRegimes(t *testing.T) {
	cases := []struct {
		name string
		st   hg.Stats
		want hg.RelabelOrder
	}{
		{"large-skewed", statsRegime(10_000, 200, 3, 0), hg.RelabelAscending},
		{"large-flat", statsRegime(10_000, 5, 3, 0), hg.RelabelNone},
		{"small-skewed", statsRegime(100, 200, 3, 0), hg.RelabelNone},
		{"degenerate-avg", statsRegime(10_000, 4, 0.2, 0), hg.RelabelNone},
	}
	for _, tc := range cases {
		order, why := resolveRelabel(tc.st, nil, false, false)
		if order != tc.want {
			t.Errorf("%s: resolveRelabel = %v (%s), want %v", tc.name, order, why, tc.want)
		}
	}
}

// TestResolveConfigPinnedUnchanged: a configuration without auto knobs
// passes through ResolveConfig untouched — no stats computed, no
// reason recorded.
func TestResolveConfigPinnedUnchanged(t *testing.T) {
	cfg := PipelineConfig{
		Core:   Config{Relabel: hg.RelabelAscending},
		Toplex: ToplexOn,
	}
	got := ResolveConfig(nil, []int{2}, cfg) // nil h: must not be touched
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("pinned config changed: %+v -> %+v", cfg, got)
	}
}

// TestResolveConfigIdempotent: resolving a resolved configuration is a
// no-op, so serve (resolve-before-key) and RunBatch (resolve-on-entry)
// can both call it.
func TestResolveConfigIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := randomHypergraph(r, 40, 60, 6)
	cfg := PipelineConfig{
		Core:   Config{Relabel: hg.RelabelAuto},
		Toplex: ToplexAuto,
	}
	once := ResolveConfig(h, []int{2, 3}, cfg)
	if once.Core.Relabel == hg.RelabelAuto || once.Toplex == ToplexAuto {
		t.Fatalf("auto knobs survived resolution: %+v", once)
	}
	if once.KnobReason == "" {
		t.Fatal("resolution recorded no reason")
	}
	if once.Stats == nil {
		t.Fatal("resolution did not cache stats back into the config")
	}
	twice := ResolveConfig(nil, []int{2, 3}, once)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("resolution not idempotent: %+v -> %+v", once, twice)
	}
}

// TestResolveConfigDeterministic: same stats in, same knobs out.
func TestResolveConfigDeterministic(t *testing.T) {
	st := statsRegime(10_000, 200, 3, 0.5)
	mk := func() PipelineConfig {
		return ResolveConfig(nil, []int{2}, PipelineConfig{
			Core:   Config{Relabel: hg.RelabelAuto},
			Toplex: ToplexAuto,
			Stats:  &st,
		})
	}
	a, b := mk(), mk()
	if a.Core.Relabel != b.Core.Relabel || a.Toplex != b.Toplex || a.KnobReason != b.KnobReason {
		t.Fatalf("non-deterministic resolution: %+v vs %+v", a, b)
	}
	if a.Core.Relabel != hg.RelabelAscending || a.Toplex != ToplexOn {
		t.Fatalf("skewed high-containment regime resolved to (%v, %v)", a.Core.Relabel, a.Toplex)
	}
}

// TestCalibratedRelabelOverride: once two relabel orders have
// calibrated cells, the measured winner overrides the static skew
// heuristic; with fewer than two measured orders calibration abstains.
func TestCalibratedRelabelOverride(t *testing.T) {
	st := statsRegime(10_000, 200, 3, 0) // skewed: static choice is Ascending
	costs := NewCostModel()
	obs := func(order hg.RelabelOrder, d time.Duration) {
		k := CostKey{Algo: AlgoHashmap, Relabel: order, Toplex: false, Multi: false}
		for i := 0; i < CalibrationMin; i++ {
			costs.Observe(k, d)
		}
	}

	// One measured order: abstain, static heuristic applies.
	obs(hg.RelabelAscending, 10*time.Millisecond)
	cfg := PipelineConfig{Core: Config{Relabel: hg.RelabelAuto}, Stats: &st, Costs: costs}
	got := ResolveConfig(nil, []int{2}, cfg)
	if got.Core.Relabel != hg.RelabelAscending {
		t.Fatalf("single measured order: relabel = %v, want static Ascending", got.Core.Relabel)
	}
	if strings.Contains(got.KnobReason, "calibrated") {
		t.Fatalf("calibration should abstain with one measured order: %q", got.KnobReason)
	}

	// Second order measured cheaper: calibration overrides the skew
	// heuristic.
	obs(hg.RelabelNone, 2*time.Millisecond)
	got = ResolveConfig(nil, []int{2}, cfg)
	if got.Core.Relabel != hg.RelabelNone {
		t.Fatalf("calibrated relabel = %v, want None (measured 5x cheaper)", got.Core.Relabel)
	}
	if !strings.Contains(got.KnobReason, "calibrated") {
		t.Fatalf("reason does not mention calibration: %q", got.KnobReason)
	}
}

// TestCalibratedStrategyFlip: calibrated observations flip the AlgoAuto
// multi-s choice from the static ensemble to per-s hashmap passes when
// the hashmap measured faster — and never flip toward a strategy whose
// memory budget fails.
func TestCalibratedStrategyFlip(t *testing.T) {
	st := statsRegime(10_000, 4, 3, 0)
	st.WedgePairs = 1000 // comfortably inside every budget
	sweep := []int{2, 3, 4}
	cfg := Config{Algorithm: AlgoAuto}

	costs := NewCostModel()
	calib := func(a Algorithm, d time.Duration) {
		k := CostKey{Algo: a, Multi: true}
		for i := 0; i < CalibrationMin; i++ {
			costs.Observe(k, d)
		}
	}

	// Uncalibrated: static choice is the ensemble.
	if dec := PlanQueryCosts(st, sweep, cfg, costs, false); dec.Config.Algorithm != AlgoEnsemble {
		t.Fatalf("static multi-s choice = %v, want ensemble", dec.Config.Algorithm)
	}

	// Hashmap measured faster: calibration flips the decision.
	calib(AlgoEnsemble, 50*time.Millisecond)
	calib(AlgoHashmap, 5*time.Millisecond)
	dec := PlanQueryCosts(st, sweep, cfg, costs, false)
	if dec.Config.Algorithm != AlgoHashmap {
		t.Fatalf("calibrated multi-s choice = %v, want hashmap", dec.Config.Algorithm)
	}
	if !strings.Contains(dec.Reason, "calibrated") {
		t.Fatalf("reason does not mention calibration: %q", dec.Reason)
	}

	// Ensemble measured faster but over budget: budget guard wins.
	costs2 := NewCostModel()
	for i := 0; i < CalibrationMin; i++ {
		costs2.Observe(CostKey{Algo: AlgoEnsemble, Multi: true}, time.Millisecond)
		costs2.Observe(CostKey{Algo: AlgoHashmap, Multi: true}, time.Second)
	}
	stBig := st
	stBig.WedgePairs = 1 << 40 // ensemble counters cannot fit
	if dec := PlanQueryCosts(stBig, sweep, cfg, costs2, false); dec.Config.Algorithm != AlgoHashmap {
		t.Fatalf("budget-violating calibrated win chose %v, want hashmap", dec.Config.Algorithm)
	}
}

// TestPlanQueryCostsNilMatchesPlanQuery: a nil cost model reproduces
// the static planner bit for bit.
func TestPlanQueryCostsNilMatchesPlanQuery(t *testing.T) {
	regimes := []hg.Stats{
		statsRegime(10_000, 4, 3, 0),
		statsRegime(100, 4, 3, 0),
		{NumEdges: 5000, MaxEdgeSize: 3, WedgePairs: 40_000_000},
	}
	sweeps := [][]int{{1}, {2}, {2, 4, 8}}
	for _, st := range regimes {
		for _, sweep := range sweeps {
			a := PlanQuery(st, sweep, Config{})
			b := PlanQueryCosts(st, sweep, Config{}, nil, false)
			if a.Config.Algorithm != b.Config.Algorithm || a.Reason != b.Reason {
				t.Fatalf("nil-cost divergence on %+v %v: %v vs %v", st, sweep, a, b)
			}
		}
	}
}

// weightedEdges renders a pipeline result as a deterministic string of
// weighted edges in original-hyperedge-ID space — the byte-identity
// probe of the knob-equivalence test.
func weightedEdges(res *PipelineResult) string {
	lines := make([]string, 0, len(res.Graph.Edges()))
	for _, e := range res.Graph.Edges() {
		u, v := res.HyperedgeID(e.U), res.HyperedgeID(e.V)
		if u > v {
			u, v = v, u
		}
		lines = append(lines, fmt.Sprintf("%d-%d:%d", u, v, e.W))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestKnobEquivalenceMatrix: within one toplex setting, every
// exact-weight strategy × relabel order × batch shape produces the
// identical weighted s-line graph in original-ID space, and
// planner-resolved knobs (relabel '*', toplex auto) produce output
// identical to the pinned configuration they resolve to.
func TestKnobEquivalenceMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	h := randomHypergraph(r, 45, 70, 8)
	sweep := []int{2, 3}
	algos := []Algorithm{AlgoAuto, AlgoHashmap, AlgoEnsemble}
	relabels := []hg.RelabelOrder{hg.RelabelNone, hg.RelabelAscending, hg.RelabelDescending}

	for _, mode := range []ToplexMode{ToplexOff, ToplexOn} {
		var want map[int]string
		for _, algo := range algos {
			for _, order := range relabels {
				cfg := PipelineConfig{
					Core:   Config{Algorithm: algo, Relabel: order},
					Toplex: mode,
				}
				results, err := RunBatch(context.Background(), h, sweep, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := map[int]string{}
				for s, res := range results {
					got[s] = weightedEdges(res)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("toplex=%v algo=%v relabel=%v: output differs from baseline", mode, algo, order)
				}
			}
		}

		// Single-s runs of the same matrix agree with the batch.
		for _, algo := range algos {
			cfg := PipelineConfig{Core: Config{Algorithm: algo}, Toplex: mode}
			res, err := Run(context.Background(), h, 2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if weightedEdges(res) != want[2] {
				t.Fatalf("toplex=%v algo=%v single-s: output differs from batch", mode, algo)
			}
		}
	}

	// Planner-resolved knobs equal the pinned configuration they
	// resolve to, byte for byte.
	auto := PipelineConfig{
		Core:   Config{Relabel: hg.RelabelAuto},
		Toplex: ToplexAuto,
	}
	resolved := ResolveConfig(h, sweep, auto)
	autoRes, err := RunBatch(context.Background(), h, sweep, auto)
	if err != nil {
		t.Fatal(err)
	}
	pinned := PipelineConfig{
		Core:   Config{Relabel: resolved.Core.Relabel},
		Toplex: resolved.Toplex,
	}
	pinnedRes, err := RunBatch(context.Background(), h, sweep, pinned)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if weightedEdges(autoRes[s]) != weightedEdges(pinnedRes[s]) {
			t.Fatalf("s=%d: planner-resolved output differs from its pinned twin (%s)", s, resolved.KnobReason)
		}
	}
	for _, s := range sweep {
		if autoRes[s].Plan.KnobReason == "" {
			t.Fatalf("s=%d: auto run recorded no knob reason", s)
		}
		if autoRes[s].Plan.Relabel == hg.RelabelAuto.String() {
			t.Fatalf("s=%d: plan reports unresolved relabel", s)
		}
	}
}
