package core

import (
	"sort"
	"sync"
	"time"

	"hyperline/internal/hg"
)

// CalibrationMin is how many observations a (strategy, knobs) cell
// needs before the planner trusts its EWMA over the static heuristics.
// Below it the cell is warming up: one or two measurements of a stage
// that is itself planner-dependent are too noisy to redirect queries.
const CalibrationMin = 3

// costAlpha is the EWMA smoothing factor. 0.3 weights the last handful
// of observations heavily enough to track dataset replacement of
// similarly-shaped versions while damping single-query jitter.
const costAlpha = 0.3

// CostKey identifies one cell of the calibration table: the Stage-3
// strategy that ran together with the output-relevant knobs and the
// batch shape it ran under. The dataset (and its version) is implicit —
// the serving layer keeps one CostModel per registered dataset version
// and orientation, so a replaced dataset starts calibrating from
// scratch.
type CostKey struct {
	// Algo is the strategy that executed (never AlgoAuto: the planner
	// records what it resolved to).
	Algo Algorithm
	// Relabel is the resolved Stage-1 order the pass ran under.
	Relabel hg.RelabelOrder
	// Toplex reports whether Stage-2 simplification ran.
	Toplex bool
	// Multi distinguishes batched (multi-s) passes from single-s ones:
	// their per-s costs are not comparable (the ensemble amortizes one
	// counting pass across the batch).
	Multi bool
}

// CostObservation is one exported cell of the calibration table.
type CostObservation struct {
	Key CostKey
	// PerS is the smoothed Stage-3 cost per distinct s value.
	PerS time.Duration
	// N counts the observations folded into the EWMA.
	N int64
	// Calibrated reports N >= CalibrationMin: the planner consults
	// this cell.
	Calibrated bool
}

// CostModel is an online per-dataset cost table: an EWMA of observed
// Stage-3 (s-overlap) time per distinct s, keyed by the executed
// strategy and knobs. RunBatch feeds it after every successful pass and
// the planner consults it — once a cell has CalibrationMin observations
// — to override the static byte-count heuristics with what this
// dataset actually measured. All methods are safe for concurrent use.
type CostModel struct {
	mu    sync.RWMutex
	table map[CostKey]costCell
}

type costCell struct {
	ewma float64 // nanoseconds per distinct s
	n    int64
}

// NewCostModel returns an empty calibration table.
func NewCostModel() *CostModel {
	return &CostModel{table: make(map[CostKey]costCell)}
}

// Observe folds one measured Stage-3 pass into the table: perS is the
// s-overlap wall time divided by the number of distinct s values it
// served.
func (c *CostModel) Observe(k CostKey, perS time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	cell, ok := c.table[k]
	if !ok {
		cell = costCell{ewma: float64(perS)}
	} else {
		cell.ewma += costAlpha * (float64(perS) - cell.ewma)
	}
	cell.n++
	c.table[k] = cell
	c.mu.Unlock()
}

// Estimate returns the smoothed per-s cost for a cell and whether the
// cell is calibrated (has at least CalibrationMin observations). An
// unobserved cell returns (0, false).
func (c *CostModel) Estimate(k CostKey) (time.Duration, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	cell, ok := c.table[k]
	c.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return time.Duration(cell.ewma), cell.n >= CalibrationMin
}

// Snapshot exports the table, sorted by key for deterministic output.
func (c *CostModel) Snapshot() []CostObservation {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]CostObservation, 0, len(c.table))
	for k, cell := range c.table {
		out = append(out, CostObservation{
			Key:        k,
			PerS:       time.Duration(cell.ewma),
			N:          cell.n,
			Calibrated: cell.n >= CalibrationMin,
		})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Algo != b.Algo {
			return a.Algo < b.Algo
		}
		if a.Relabel != b.Relabel {
			return a.Relabel < b.Relabel
		}
		if a.Toplex != b.Toplex {
			return !a.Toplex
		}
		if a.Multi != b.Multi {
			return !a.Multi
		}
		return false
	})
	return out
}
