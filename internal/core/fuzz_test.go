package core

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseSValues fuzzes the s-list specification parser that every
// user-facing surface (CLI -s, HTTP s=, warmup bodies) funnels into.
// Invariants: no panic; on success the expansion is non-empty, within
// the MaxSValues bound, all values ≥ 1, and rendering the values back
// as an explicit list re-parses to the same distinct set.
func FuzzParseSValues(f *testing.F) {
	for _, seed := range []string{
		"1", "8", "1,2,5", "2:6", "1,4:6,12", " 8 ", "0", "-3", "a",
		"1:1024", "5:2", "1,,2", ":", "1:", ":4", "1:9999999",
		"4294967296", "1,1,1,1", "10:9", "2 : 6", "+3", "0x10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		vals, err := ParseSValues(spec)
		if err != nil {
			if vals != nil {
				t.Fatalf("error with non-nil values: %v / %v", vals, err)
			}
			return
		}
		if len(vals) == 0 || len(vals) > MaxSValues {
			t.Fatalf("ParseSValues(%q) expanded to %d values", spec, len(vals))
		}
		for _, v := range vals {
			if v < 1 {
				t.Fatalf("ParseSValues(%q) produced s=%d < 1", spec, v)
			}
		}
		if err := ValidateSValues(vals); err != nil {
			t.Fatalf("ParseSValues(%q) output fails ValidateSValues: %v", spec, err)
		}
		// Round trip: the explicit-list rendering of the expansion must
		// re-parse to the same distinct set.
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = strconv.Itoa(v)
		}
		again, err := ParseSValues(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", spec, err)
		}
		if !reflect.DeepEqual(DistinctS(again), DistinctS(vals)) {
			t.Fatalf("round-trip of %q changed the distinct set: %v vs %v",
				spec, DistinctS(again), DistinctS(vals))
		}
	})
}

// FuzzParseNotation fuzzes the Table III notation parser. Invariants:
// no panic; on success the parsed configuration's Notation() is
// canonical — re-parsing it yields the identical configuration.
func FuzzParseNotation(f *testing.F) {
	seeds := append(AllNotations(),
		"auto", "spgemm", "ABN", "SBN", "3CA", "", "2B", "2BAX", "xBN", "2xN", "2Bx", "żBN")
	for _, seed := range seeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseNotation(s)
		if err != nil {
			return
		}
		round := cfg.Notation()
		cfg2, err := ParseNotation(round)
		if err != nil {
			t.Fatalf("Notation() of parsed %q is unparseable: %q: %v", s, round, err)
		}
		if cfg2 != cfg {
			t.Fatalf("notation round-trip drift: %q -> %+v -> %q -> %+v", s, cfg, round, cfg2)
		}
	})
}
