package core

import "fmt"

// Fingerprint returns a canonical string identifying every
// configuration field that can change the *output* of a pipeline run —
// the cache key component used by the serving layer to decide whether
// two requests may share a result.
//
// Output-relevant fields: the algorithm (Algorithm 1's short-circuited
// weights differ from Algorithm 2's exact counts), relabel-by-degree
// (it permutes the squeezed node ID space), toplex simplification,
// squeezing, and exact-weight mode.
//
// Execution-only knobs — Workers, Grain, Partition, Store, and
// DisablePruning — are deliberately excluded: the edge-assembly
// pipeline guarantees byte-identical output for any worker count,
// workload distribution, or counter store, and pruning only skips
// hyperedges that cannot contribute edges. Requests that differ only in
// those knobs therefore share a cache entry.
func (c PipelineConfig) Fingerprint() string {
	return fmt.Sprintf("alg=%s,relabel=%s,toplex=%t,squeeze=%t,exact=%t",
		c.Core.algorithm(), c.Core.Relabel, c.Toplex, !c.NoSqueeze,
		c.Core.DisableShortCircuit)
}
