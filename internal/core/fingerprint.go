package core

import "fmt"

// Fingerprint returns a canonical string identifying the *output class*
// of a pipeline run — the cache key component used by the serving layer
// to decide whether two requests may share a result.
//
// The key is canonicalized over output-equivalent configurations, not
// over raw option values. Every strategy — Algorithm 2, the ensemble,
// SpGEMM, the planner (AlgoAuto), and Algorithm 1 in exact mode
// (DisableShortCircuit) — produces byte-identical sorted edge lists
// with exact overlap weights, so they all share the "exact" class. The
// single exception is Algorithm 1 with short-circuiting (its default),
// whose weights are ≥ s bounds rather than exact counts: it gets its
// own class.
//
// The remaining output-relevant fields are relabel-by-degree (it
// permutes the squeezed node ID space), toplex simplification, and
// squeezing. Execution-only knobs — Workers, Grain, Partition, Store,
// and DisablePruning — are deliberately excluded: the edge-assembly
// pipeline guarantees byte-identical output for any worker count,
// workload distribution, or counter store, and pruning only skips
// hyperedges that cannot contribute edges. Requests that differ only in
// those knobs (or only in which exact-class strategy computes them)
// therefore share a cache entry.
// The planner-resolvable knobs (hg.RelabelAuto, ToplexAuto) must be
// resolved via ResolveConfig before fingerprinting: the serving layer
// does so at every entry point, which is what lets a planner-chosen
// configuration share a cache entry with the pinned configuration it
// resolves to (and split from the ones it does not). An unresolved
// auto knob fingerprints distinctly ("*" / "auto") rather than
// colliding with a concrete choice. The Stats, Costs, and KnobReason
// fields are execution hints and excluded.
func (c PipelineConfig) Fingerprint() string {
	class := "exact"
	if c.Core.Algorithm == AlgoSetIntersection && !c.Core.DisableShortCircuit {
		class = "shortcircuit"
	}
	return fmt.Sprintf("class=%s,relabel=%s,toplex=%s,squeeze=%t",
		class, c.Core.Relabel, c.Toplex, !c.NoSqueeze)
}
