package core

// Stats reports the work counters of one s-overlap computation. They
// back the paper's Table I ("#set intersections") and Figure 10
// (per-thread visit counts).
type Stats struct {
	// SetIntersections is the number of explicit sorted-list
	// intersections performed. Always 0 for Algorithm 2 and the
	// ensemble — the headline property of the paper's method.
	SetIntersections int64
	// Wedges is the total number of wedge traversals (ei, vk, ej)
	// with ej > ei, i.e. the innermost-loop visit count.
	Wedges int64
	// WedgesPerWorker breaks Wedges down by worker; this is the
	// workload-balance data of Figure 10.
	WedgesPerWorker []int64
	// Pruned is the number of hyperedges skipped by degree-based
	// pruning.
	Pruned int64
	// Edges is the number of s-line graph edges emitted.
	Edges int64
}

// add merges other into s.
func (s *Stats) add(other Stats) {
	s.SetIntersections += other.SetIntersections
	s.Wedges += other.Wedges
	s.Pruned += other.Pruned
	s.Edges += other.Edges
	if len(s.WedgesPerWorker) < len(other.WedgesPerWorker) {
		grown := make([]int64, len(other.WedgesPerWorker))
		copy(grown, s.WedgesPerWorker)
		s.WedgesPerWorker = grown
	}
	for i, w := range other.WedgesPerWorker {
		s.WedgesPerWorker[i] += w
	}
}
