package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
)

// pipelinePairs extracts the s-line edge set of a pipeline result in
// terms of the input hypergraph's original hyperedge IDs.
func pipelinePairs(res *PipelineResult) map[[2]uint32]bool {
	out := map[[2]uint32]bool{}
	for _, e := range res.Graph.Edges() {
		u := res.HyperedgeID(e.U)
		v := res.HyperedgeID(e.V)
		if u > v {
			u, v = v, u
		}
		out[[2]uint32{u, v}] = true
	}
	return out
}

func naivePairs(h *hg.Hypergraph, s int) map[[2]uint32]bool {
	out := map[[2]uint32]bool{}
	for _, e := range NaiveAllPairs(h, s) {
		out[[2]uint32{e.U, e.V}] = true
	}
	return out
}

// TestPipelineRelabelInvariance: every Table III configuration produces
// the same s-line graph once node IDs are mapped back to input
// hyperedge IDs.
func TestPipelineRelabelInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	h := randomHypergraph(r, 50, 70, 8)
	const s = 2
	want := naivePairs(h, s)
	for _, notation := range AllNotations() {
		cfg, err := ParseNotation(notation)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DisableShortCircuit = true
		res, _ := Run(context.Background(), h, s, PipelineConfig{Core: cfg})
		if got := pipelinePairs(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pipeline result differs from oracle (got %d pairs, want %d)",
				notation, len(got), len(want))
		}
	}
}

func TestPipelineSqueeze(t *testing.T) {
	h := paperExample()
	res, _ := Run(context.Background(), h, 3, PipelineConfig{})
	// s=3 line graph has edges {1,3} and {2,3} → 3 non-isolated nodes.
	if res.Graph.NumNodes() != 3 {
		t.Fatalf("squeezed nodes = %d, want 3", res.Graph.NumNodes())
	}
	if !res.Graph.Squeezed() {
		t.Fatal("expected squeezed graph")
	}
	ids := map[uint32]bool{}
	for n := 0; n < res.Graph.NumNodes(); n++ {
		ids[res.HyperedgeID(uint32(n))] = true
	}
	if !ids[0] || !ids[1] || !ids[2] || ids[3] {
		t.Fatalf("squeezed node identities wrong: %v", ids)
	}
}

func TestPipelineNoSqueeze(t *testing.T) {
	h := paperExample()
	res, _ := Run(context.Background(), h, 3, PipelineConfig{NoSqueeze: true})
	if res.Graph.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (unsqueezed)", res.Graph.NumNodes())
	}
	if res.Graph.Squeezed() {
		t.Fatal("unexpected squeeze")
	}
}

func TestPipelineToplexStage(t *testing.T) {
	// Edge 1 {a,b,c} and edge 2 {b,c,d} are subsets of edge 3
	// {a,b,c,d,e}; only toplexes {3, 4} survive simplification, so the
	// 1-line graph of the simplified hypergraph has one edge (3-4).
	h := paperExample()
	res, _ := Run(context.Background(), h, 1, PipelineConfig{Toplex: ToplexOn})
	if res.Graph.NumEdges() != 1 {
		t.Fatalf("toplex 1-line graph edges = %d, want 1", res.Graph.NumEdges())
	}
	pairs := pipelinePairs(res)
	if !pairs[[2]uint32{2, 3}] {
		t.Fatalf("expected edge between original hyperedges 2 and 3, got %v", pairs)
	}
	if res.Timings.Toplex <= 0 {
		t.Fatal("toplex stage not timed")
	}
}

func TestPipelineTimingsPopulated(t *testing.T) {
	h := paperExample()
	res, _ := Run(context.Background(), h, 2, PipelineConfig{})
	if res.Timings.Total() <= 0 {
		t.Fatal("timings not recorded")
	}
	if res.Timings.SOverlap <= 0 || res.Timings.Preprocess <= 0 {
		t.Fatalf("stage timings missing: %+v", res.Timings)
	}
}

func TestRunEnsembleMatchesRun(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := randomHypergraph(r, 40, 50, 7)
	sValues := []int{1, 2, 3}
	ens, _ := RunEnsemble(context.Background(), h, sValues, PipelineConfig{})
	if len(ens) != 3 {
		t.Fatalf("ensemble results = %d, want 3", len(ens))
	}
	for _, s := range sValues {
		single, _ := Run(context.Background(), h, s, PipelineConfig{})
		if !reflect.DeepEqual(pipelinePairs(ens[s]), pipelinePairs(single)) {
			t.Fatalf("s=%d: ensemble pipeline differs from single pipeline", s)
		}
	}
}

func TestRunEnsembleWithRelabel(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	h := randomHypergraph(r, 40, 50, 7)
	cfg := PipelineConfig{Core: Config{Relabel: hg.RelabelAscending}}
	ens, _ := RunEnsemble(context.Background(), h, []int{2}, cfg)
	want := naivePairs(h, 2)
	if got := pipelinePairs(ens[2]); !reflect.DeepEqual(got, want) {
		t.Fatal("relabeled ensemble pipeline differs from oracle")
	}
}

// TestPipelineProperty cross-validates the full pipeline (relabeling +
// squeezing + mapping back) against the naive oracle on random inputs.
func TestPipelineProperty(t *testing.T) {
	f := func(seed int64, sRaw, mode uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHypergraph(r, 25, 30, 6)
		s := 1 + int(sRaw%4)
		cfg := PipelineConfig{}
		switch mode % 3 {
		case 1:
			cfg.Core.Relabel = hg.RelabelAscending
		case 2:
			cfg.Core.Relabel = hg.RelabelDescending
		}
		res, _ := Run(context.Background(), h, s, cfg)
		return reflect.DeepEqual(pipelinePairs(res), naivePairs(h, s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineWeightsExact verifies the overlap weights survive the
// pipeline: the graph edge weight equals inc(ei, ej) in the input.
func TestPipelineWeightsExact(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	h := randomHypergraph(r, 30, 40, 8)
	res, _ := Run(context.Background(), h, 2, PipelineConfig{Core: Config{Relabel: hg.RelabelDescending}})
	for _, e := range res.Graph.Edges() {
		u, v := res.HyperedgeID(e.U), res.HyperedgeID(e.V)
		if want := h.Inc(u, v); int(e.W) != want {
			t.Fatalf("edge (%d,%d) weight %d, want %d", u, v, e.W, want)
		}
	}
}
