package core

import (
	"context"
)

// stopFlag lets the Stage-3 worker loops poll a context's cancellation
// at loop granularity. The hot path is a non-blocking receive on the
// context's done channel — lock-free while the channel is open
// (~10ns), and closed synchronously inside cancel() itself, so workers
// observe a cancellation at their very next poll without depending on
// any watcher goroutine being scheduled (which on a saturated
// single-core box can lag by tens of milliseconds). Workers poll once
// per outer iteration and once per wedge-source vertex, bounding
// cancellation latency to one neighbor-list scan without paying
// per-edge synchronization.
type stopFlag struct {
	done <-chan struct{}
}

// watchContext returns a flag that trips once ctx is cancelled. A
// context that can never be cancelled (Background, TODO, nil)
// produces a flag that never trips and costs one nil check per poll.
func watchContext(ctx context.Context) *stopFlag {
	f := &stopFlag{}
	if ctx != nil {
		f.done = ctx.Done()
	}
	return f
}

// Stop reports whether the watched context has been cancelled.
func (f *stopFlag) Stop() bool {
	if f.done == nil {
		return false
	}
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
