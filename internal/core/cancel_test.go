package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hyperline/internal/gen"
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// cancelLatencyBound is the maximum time a cancelled pipeline may take
// to return after the cancellation lands. The real latency is one
// neighbor-list scan plus (at worst) one Stage-4 build — microseconds
// to low milliseconds — so even the strict bound has two orders of
// magnitude of slack; the race detector's instrumentation gets more.
func cancelLatencyBound() time.Duration {
	if raceEnabled {
		return 1 * time.Second
	}
	return 100 * time.Millisecond
}

var cancelGraphOnce sync.Once
var cancelGraphH *hg.Hypergraph

// cancelGraph is a generated hypergraph whose cost concentrates in
// Stage 3 (dense overlapping communities → many wedges) while Stages 1
// and 4 stay in the low tens of milliseconds: the s-overlap loops are
// where the cancellation checkpoints live, so that is where a
// mid-flight cancel must land for the latency bound to be meaningful.
func cancelGraph() *hg.Hypergraph {
	cancelGraphOnce.Do(func() {
		cancelGraphH = gen.Community(gen.CommunityConfig{
			Seed: 99, NumVertices: 4000, NumCommunities: 70,
			MeanCommunitySize: 45, EdgesPerCommunity: 50, Background: 1000,
		})
	})
	return cancelGraphH
}

// runCancelled starts RunBatch on the large graph, cancels it once the
// pipeline is underway, and returns the observed error and the latency
// between the cancel landing and RunBatch returning. ok is false when
// the pipeline finished before the cancellation landed (an extremely
// fast machine); callers skip rather than flake.
func runCancelled(t *testing.T, delay time.Duration, cfg PipelineConfig, sValues []int) (err error, latency time.Duration, ok bool) {
	t.Helper()
	h := cancelGraph() // materialize outside the timed window
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := RunBatch(ctx, h, sValues, cfg)
		done <- outcome{err: err, at: time.Now()}
	}()
	select {
	case o := <-done:
		// Finished before we could cancel: nothing to measure.
		return o.err, 0, false
	case <-time.After(delay):
	}
	cancelled := time.Now()
	cancel()
	o := <-done
	return o.err, o.at.Sub(cancelled), true
}

// TestRunBatchCancelLatency is the core acceptance property: a cancel
// landing mid-pipeline returns context.Canceled within the bounded
// latency, for both planner-driven and pinned configurations.
func TestRunBatchCancelLatency(t *testing.T) {
	configs := []struct {
		name string
		cfg  PipelineConfig
		s    []int
	}{
		{"auto-batch", PipelineConfig{}, []int{2, 3, 4, 6, 8}},
		{"hashmap-single", PipelineConfig{Core: Config{Algorithm: AlgoHashmap}}, []int{2}},
		{"algo1-exact", PipelineConfig{Core: Config{Algorithm: AlgoSetIntersection, DisableShortCircuit: true}}, []int{2}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			err, latency, ok := runCancelled(t, 20*time.Millisecond, tc.cfg, tc.s)
			if !ok {
				t.Skipf("pipeline finished before the cancel landed (err=%v)", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled RunBatch returned %v, want context.Canceled", err)
			}
			if bound := cancelLatencyBound(); latency > bound {
				t.Fatalf("cancel latency %v exceeds %v", latency, bound)
			}
			t.Logf("cancel latency: %v", latency)
		})
	}
}

// TestRunCancelledBeforeStart: a dead context never starts Stage 1.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Run(ctx, cancelGraph(), 2, PipelineConfig{})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if d := time.Since(start); d > cancelLatencyBound() {
		t.Fatalf("pre-cancelled Run took %v", d)
	}
}

// TestRunDeadlineExceeded: an expired deadline surfaces as
// context.DeadlineExceeded, not Canceled.
func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := RunBatch(ctx, cancelGraph(), []int{2, 3, 4}, PipelineConfig{})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded (or nil on a very fast machine)", err)
	}
	if err == nil {
		t.Skip("pipeline beat the 10ms deadline")
	}
}

// TestCancelDoesNotLeakGoroutines: repeated cancelled runs leave no
// worker or watcher goroutines behind.
func TestCancelDoesNotLeakGoroutines(t *testing.T) {
	h := cancelGraph() // materialize before counting
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			RunBatch(ctx, h, []int{2, 3, 4}, PipelineConfig{})
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		<-done
	}
	// Workers exit cooperatively; give the scheduler a moment to reap
	// them before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Fatalf("goroutines leaked: %d before, %d after cancelled runs", before, n)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancelledOutputNeverPartial: a run that survives cancellation
// attempts (because it finished first) must be byte-identical to an
// unperturbed run — cancellation may abort, never corrupt.
func TestCancelledOutputNeverPartial(t *testing.T) {
	h := gen.Community(gen.CommunityConfig{
		Seed: 7, NumVertices: 2000, NumCommunities: 250,
		MeanCommunitySize: 8, EdgesPerCommunity: 3, Background: 300,
	})
	want, _, err := SLineEdges(context.Background(), h, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		got, _, err := SLineEdges(ctx, h, 2, Config{Workers: 4, Partition: par.Cyclic})
		cancel()
		if err != nil {
			t.Fatalf("uncancelled run errored: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: %d edges, want %d", i, len(got), len(want))
		}
	}
}
