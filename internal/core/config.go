// Package core implements the paper's primary contribution: parallel
// algorithms for computing high-order (s ≥ 1) line graphs of non-uniform
// hypergraphs, and the five-stage framework around them.
//
// The s-overlap stage is a pluggable execution engine: every algorithm
// implements the Strategy interface (sorted, deduped, deterministic
// edge lists per s), and a cost-based planner (PlanQuery) picks the
// strategy for AlgoAuto queries. Four strategies are registered:
//
//   - Algorithm 1 (SetIntersection): the prior state-of-the-art
//     heuristic algorithm of Liu et al. (HiPC'21), which intersects the
//     sorted neighbor lists of every candidate hyperedge pair, with
//     degree-based pruning, candidate de-duplication, short-circuiting,
//     and upper-triangle traversal.
//   - Algorithm 2 (Hashmap): the paper's new algorithm, which never
//     performs a set intersection; it accumulates overlap counts for the
//     2-hop neighbors of each hyperedge in a per-iteration counter and
//     filters by s on the fly.
//   - Algorithm 3 (Ensemble): a variant of Algorithm 2 that stores all
//     overlap counts once and then derives the s-line graph for every
//     requested s value.
//   - SpGEMM: the §VI-G baseline — upper-triangular Gustavson SpGEMM of
//     L = HᵀH followed by s-filtration — promoted into the pipeline so
//     its results flow through the same preprocessing, CSR build, and
//     caching as the native algorithms.
//
// All algorithms parallelize the outer loop over hyperedges using the
// blocked or cyclic workload distribution of internal/par and support
// the relabel-by-degree orderings of internal/hg, giving the twelve
// configurations of the paper's Table III (1BA ... 2CD) plus the
// extended "A" (auto) and "S" (SpGEMM) notations.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// Algorithm selects the s-overlap strategy. The zero value, AlgoAuto,
// lets the cost-based planner (PlanQuery) resolve the strategy from the
// hypergraph's statistics and the query shape.
type Algorithm uint8

const (
	// AlgoAuto (the default) defers the choice to the planner, which
	// picks a strategy from the hypergraph statistics, the requested s
	// values, and the query shape. Every strategy the planner may pick
	// produces the same exact-weight output, so the choice is invisible
	// to callers (and to the result cache).
	AlgoAuto Algorithm = 0
	// AlgoSetIntersection is Algorithm 1 of the paper (the HiPC'21
	// heuristic baseline).
	AlgoSetIntersection Algorithm = 1
	// AlgoHashmap is Algorithm 2 of the paper (the new hashmap-based
	// algorithm).
	AlgoHashmap Algorithm = 2
	// AlgoEnsemble is Algorithm 3 of the paper: Algorithm 2's counting
	// pass decoupled from edge emission, serving every requested s from
	// one materialized counter set.
	AlgoEnsemble Algorithm = 3
	// AlgoSpGEMM is the SpGEMM baseline of §VI-G, promoted into the
	// pipeline: upper-triangular Gustavson SpGEMM of L = HᵀH followed
	// by s-filtration.
	AlgoSpGEMM Algorithm = 4
)

// String returns the character used in the (extended) Table III
// notation: the paper's numerals for Algorithms 1-3, "A" for the
// planner, "S" for SpGEMM.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "A"
	case AlgoSetIntersection:
		return "1"
	case AlgoHashmap:
		return "2"
	case AlgoEnsemble:
		return "3"
	case AlgoSpGEMM:
		return "S"
	default:
		return "?"
	}
}

// CounterStore selects how Algorithm 2 keeps its per-hyperedge overlap
// counters (§III-F "dynamic vs pre-allocated thread-local storage").
type CounterStore uint8

const (
	// StoreAuto (the default) picks between TLSDense and TLSHash from
	// the hypergraph's size and average 2-hop frontier: dense counters
	// when the per-worker arrays are affordable or the frontier covers
	// a large fraction of the hyperedge space, the open-addressing
	// table otherwise. It never picks MapPerIteration — the
	// per-iteration map allocation it models is strictly dominated.
	StoreAuto CounterStore = iota
	// MapPerIteration allocates a fresh hashmap for every hyperedge
	// of the outer loop — the paper's dynamic-allocation mode, kept as
	// an explicit choice for the §III-F ablation.
	MapPerIteration
	// TLSDense uses a pre-allocated per-worker dense counter array
	// plus a touched list, reset after each iteration. Preferred for
	// hypergraphs with dense overlapping neighborhoods (the Web
	// dataset regime).
	TLSDense
	// TLSHash uses a pre-allocated per-worker open-addressing
	// uint32→uint32 hash table, reset via its touched list. Preferred
	// when the hyperedge space is too large for per-worker dense
	// arrays but each 2-hop frontier is small.
	TLSHash
)

// String names the counter store.
func (c CounterStore) String() string {
	switch c {
	case StoreAuto:
		return "auto"
	case MapPerIteration:
		return "map"
	case TLSDense:
		return "tls-dense"
	case TLSHash:
		return "tls-hash"
	default:
		return "?"
	}
}

// Config selects an algorithm and its execution strategy. The zero
// value means planner-chosen strategy (AlgoAuto), blocked distribution,
// no relabeling, default grain, GOMAXPROCS workers, adaptive counter
// storage (StoreAuto) — a sensible default.
type Config struct {
	// Algorithm pins an s-overlap strategy, or lets the planner choose
	// (AlgoAuto, the default).
	Algorithm Algorithm
	// Partition is the workload distribution strategy (Blocked or
	// Cyclic; Table III "B"/"C").
	Partition par.Strategy
	// Relabel is the Stage-1 relabel-by-degree order (Table III
	// "A"/"D"/"N"). It is applied by the Pipeline; the raw algorithm
	// entry points honor the hyperedge IDs they are given.
	Relabel hg.RelabelOrder
	// Workers is the worker count (0 = GOMAXPROCS).
	Workers int
	// Grain is the blocked-chunk size (0 = par.DefaultGrain).
	Grain int
	// Store selects Algorithm 2's counter storage (default StoreAuto:
	// adaptively dense or open-addressing thread-local counters).
	Store CounterStore
	// DisablePruning turns off degree-based pruning (hyperedges of
	// size < s can never be s-incident and are skipped by default).
	DisablePruning bool
	// DisableShortCircuit makes Algorithm 1 compute exact overlap
	// counts instead of aborting each set intersection as soon as the
	// ≥ s outcome is decided. Exact counts populate Edge.W.
	DisableShortCircuit bool
}

func (c Config) parOptions() par.Options {
	return par.Options{Workers: c.Workers, Grain: c.Grain, Strategy: c.Partition}
}

// Notation returns the (extended) Table III shorthand for this
// configuration, e.g. "2BA" for Algorithm 2, blocked distribution,
// relabel ascending, or "ABN" for the planner default.
func (c Config) Notation() string {
	return c.Algorithm.String() + c.Partition.String() + c.Relabel.String()
}

// ParseNotation parses a Table III shorthand such as "1CN" or "2BA",
// extended with "3" (ensemble), "A" (planner/auto), and "S" (SpGEMM)
// in the algorithm position, and "*" (planner-resolved) in the relabel
// position (e.g. "2C*" or "AB*"). The bare words "auto" and "spgemm"
// are accepted as shorthands with default partition and relabeling.
func ParseNotation(s string) (Config, error) {
	var c Config
	switch s {
	case "auto":
		return Config{Algorithm: AlgoAuto}, nil
	case "spgemm":
		return Config{Algorithm: AlgoSpGEMM}, nil
	}
	if len(s) != 3 {
		return c, fmt.Errorf("core: notation %q must have 3 characters (or be \"auto\"/\"spgemm\")", s)
	}
	switch s[0] {
	case '1':
		c.Algorithm = AlgoSetIntersection
	case '2':
		c.Algorithm = AlgoHashmap
	case '3':
		c.Algorithm = AlgoEnsemble
	case 'A':
		c.Algorithm = AlgoAuto
	case 'S':
		c.Algorithm = AlgoSpGEMM
	default:
		return c, fmt.Errorf("core: unknown algorithm %q", s[0])
	}
	switch s[1] {
	case 'B':
		c.Partition = par.Blocked
	case 'C':
		c.Partition = par.Cyclic
	default:
		return c, fmt.Errorf("core: unknown partition %q", s[1])
	}
	switch s[2] {
	case 'A':
		c.Relabel = hg.RelabelAscending
	case 'D':
		c.Relabel = hg.RelabelDescending
	case 'N':
		c.Relabel = hg.RelabelNone
	case '*':
		// Planner-resolved order: ResolveConfig replaces it with a
		// concrete order from the dataset's statistics before Stage 1.
		c.Relabel = hg.RelabelAuto
	default:
		return c, fmt.Errorf("core: unknown relabel order %q", s[2])
	}
	return c, nil
}

// AllNotations lists the twelve configurations of Table III in the
// order of the paper's Figure 7 x-axis.
func AllNotations() []string {
	return []string{
		"1BD", "1CD", "1BA", "1CA", "1BN", "1CN",
		"2BN", "2CN", "2BA", "2CA", "2BD", "2CD",
	}
}

// MaxSValues caps the total s values one batch specification may
// expand to, bounding the work a single (possibly unauthenticated)
// batch request can demand.
const MaxSValues = 1024

// ValidateSValues checks an explicit batch s-value list against the
// rules ParseSValues enforces for specifications: non-empty, every
// value ≥ 1, at most MaxSValues values. Serving-layer entry points
// that accept raw lists share this with the string form so the two
// cannot drift.
func ValidateSValues(sValues []int) error {
	if len(sValues) == 0 {
		return fmt.Errorf("core: at least one s value is required")
	}
	if len(sValues) > MaxSValues {
		return fmt.Errorf("core: more than %d s values in one request", MaxSValues)
	}
	for _, s := range sValues {
		if s < 1 {
			return fmt.Errorf("core: s must be >= 1, got %d", s)
		}
	}
	return nil
}

// ParseSValues parses an s-value specification: a single value ("8"),
// a comma-separated list ("1,2,5"), an inclusive range ("2:6"), or any
// comma-separated mix of the two ("1,4:6,12"). Values must be ≥ 1 and
// the whole specification may expand to at most 1024 values.
func ParseSValues(spec string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("core: empty s value in %q", spec)
		}
		lo, hi, isRange := strings.Cut(field, ":")
		first, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil || first < 1 {
			return nil, fmt.Errorf("core: bad s value %q (want integer >= 1)", field)
		}
		last := first
		if isRange {
			if last, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil || last < 1 {
				return nil, fmt.Errorf("core: bad s range %q (want lo:hi with integers >= 1)", field)
			}
			if last < first {
				return nil, fmt.Errorf("core: empty s range %q (hi < lo)", field)
			}
		}
		if len(out)+(last-first+1) > MaxSValues {
			return nil, fmt.Errorf("core: s specification %q expands to more than %d values", spec, MaxSValues)
		}
		for s := first; s <= last; s++ {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no s values in %q", spec)
	}
	return out, nil
}

// DistinctS returns the distinct s values of a query, clamped to ≥ 1
// and sorted ascending — the canonical batch shape the planner and the
// per-s strategies operate on.
func DistinctS(sValues []int) []int {
	seen := make(map[int]bool, len(sValues))
	out := make([]int, 0, len(sValues))
	for _, s := range sValues {
		if s < 1 {
			s = 1
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
