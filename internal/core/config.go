// Package core implements the paper's primary contribution: parallel
// algorithms for computing high-order (s ≥ 1) line graphs of non-uniform
// hypergraphs, and the five-stage framework around them.
//
// Three s-overlap algorithms are provided:
//
//   - Algorithm 1 (SetIntersection): the prior state-of-the-art
//     heuristic algorithm of Liu et al. (HiPC'21), which intersects the
//     sorted neighbor lists of every candidate hyperedge pair, with
//     degree-based pruning, candidate de-duplication, short-circuiting,
//     and upper-triangle traversal.
//   - Algorithm 2 (Hashmap): the paper's new algorithm, which never
//     performs a set intersection; it accumulates overlap counts for the
//     2-hop neighbors of each hyperedge in a per-iteration counter and
//     filters by s on the fly.
//   - Algorithm 3 (Ensemble): a variant of Algorithm 2 that stores all
//     overlap counts once and then derives the s-line graph for every
//     requested s value.
//
// All algorithms parallelize the outer loop over hyperedges using the
// blocked or cyclic workload distribution of internal/par and support
// the relabel-by-degree orderings of internal/hg, giving the twelve
// configurations of the paper's Table III (1BA ... 2CD).
package core

import (
	"fmt"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// Algorithm selects the s-overlap algorithm.
type Algorithm uint8

const (
	// AlgoSetIntersection is Algorithm 1 of the paper (the HiPC'21
	// heuristic baseline).
	AlgoSetIntersection Algorithm = 1
	// AlgoHashmap is Algorithm 2 of the paper (the new hashmap-based
	// algorithm).
	AlgoHashmap Algorithm = 2
)

// String returns the numeral used in the paper's Table III notation.
func (a Algorithm) String() string {
	switch a {
	case AlgoSetIntersection:
		return "1"
	case AlgoHashmap:
		return "2"
	default:
		return "?"
	}
}

// CounterStore selects how Algorithm 2 keeps its per-hyperedge overlap
// counters (§III-F "dynamic vs pre-allocated thread-local storage").
type CounterStore uint8

const (
	// StoreAuto (the default) picks between TLSDense and TLSHash from
	// the hypergraph's size and average 2-hop frontier: dense counters
	// when the per-worker arrays are affordable or the frontier covers
	// a large fraction of the hyperedge space, the open-addressing
	// table otherwise. It never picks MapPerIteration — the
	// per-iteration map allocation it models is strictly dominated.
	StoreAuto CounterStore = iota
	// MapPerIteration allocates a fresh hashmap for every hyperedge
	// of the outer loop — the paper's dynamic-allocation mode, kept as
	// an explicit choice for the §III-F ablation.
	MapPerIteration
	// TLSDense uses a pre-allocated per-worker dense counter array
	// plus a touched list, reset after each iteration. Preferred for
	// hypergraphs with dense overlapping neighborhoods (the Web
	// dataset regime).
	TLSDense
	// TLSHash uses a pre-allocated per-worker open-addressing
	// uint32→uint32 hash table, reset via its touched list. Preferred
	// when the hyperedge space is too large for per-worker dense
	// arrays but each 2-hop frontier is small.
	TLSHash
)

// String names the counter store.
func (c CounterStore) String() string {
	switch c {
	case StoreAuto:
		return "auto"
	case MapPerIteration:
		return "map"
	case TLSDense:
		return "tls-dense"
	case TLSHash:
		return "tls-hash"
	default:
		return "?"
	}
}

// Config selects an algorithm and its execution strategy. The zero
// value means Algorithm 2, blocked distribution, no relabeling, default
// grain, GOMAXPROCS workers, adaptive counter storage (StoreAuto) — a
// sensible default.
type Config struct {
	// Algorithm is AlgoSetIntersection or AlgoHashmap (default
	// AlgoHashmap).
	Algorithm Algorithm
	// Partition is the workload distribution strategy (Blocked or
	// Cyclic; Table III "B"/"C").
	Partition par.Strategy
	// Relabel is the Stage-1 relabel-by-degree order (Table III
	// "A"/"D"/"N"). It is applied by the Pipeline; the raw algorithm
	// entry points honor the hyperedge IDs they are given.
	Relabel hg.RelabelOrder
	// Workers is the worker count (0 = GOMAXPROCS).
	Workers int
	// Grain is the blocked-chunk size (0 = par.DefaultGrain).
	Grain int
	// Store selects Algorithm 2's counter storage (default StoreAuto:
	// adaptively dense or open-addressing thread-local counters).
	Store CounterStore
	// DisablePruning turns off degree-based pruning (hyperedges of
	// size < s can never be s-incident and are skipped by default).
	DisablePruning bool
	// DisableShortCircuit makes Algorithm 1 compute exact overlap
	// counts instead of aborting each set intersection as soon as the
	// ≥ s outcome is decided. Exact counts populate Edge.W.
	DisableShortCircuit bool
}

func (c Config) algorithm() Algorithm {
	if c.Algorithm == 0 {
		return AlgoHashmap
	}
	return c.Algorithm
}

func (c Config) parOptions() par.Options {
	return par.Options{Workers: c.Workers, Grain: c.Grain, Strategy: c.Partition}
}

// Notation returns the paper's Table III shorthand for this
// configuration, e.g. "2BA" for Algorithm 2, blocked distribution,
// relabel ascending.
func (c Config) Notation() string {
	return c.algorithm().String() + c.Partition.String() + c.Relabel.String()
}

// ParseNotation parses a Table III shorthand such as "1CN" or "2BA".
func ParseNotation(s string) (Config, error) {
	var c Config
	if len(s) != 3 {
		return c, fmt.Errorf("core: notation %q must have 3 characters", s)
	}
	switch s[0] {
	case '1':
		c.Algorithm = AlgoSetIntersection
	case '2':
		c.Algorithm = AlgoHashmap
	default:
		return c, fmt.Errorf("core: unknown algorithm %q", s[0])
	}
	switch s[1] {
	case 'B':
		c.Partition = par.Blocked
	case 'C':
		c.Partition = par.Cyclic
	default:
		return c, fmt.Errorf("core: unknown partition %q", s[1])
	}
	switch s[2] {
	case 'A':
		c.Relabel = hg.RelabelAscending
	case 'D':
		c.Relabel = hg.RelabelDescending
	case 'N':
		c.Relabel = hg.RelabelNone
	default:
		return c, fmt.Errorf("core: unknown relabel order %q", s[2])
	}
	return c, nil
}

// AllNotations lists the twelve configurations of Table III in the
// order of the paper's Figure 7 x-axis.
func AllNotations() []string {
	return []string{
		"1BD", "1CD", "1BA", "1CA", "1BN", "1CN",
		"2BN", "2CN", "2BA", "2CA", "2BD", "2CD",
	}
}
