package core

import (
	"time"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/toplex"
)

// PipelineConfig configures an end-to-end run of the paper's five-stage
// s-line graph framework (§IV).
type PipelineConfig struct {
	// Core selects the s-overlap algorithm and execution strategy;
	// Core.Relabel drives Stage 1's relabel-by-degree.
	Core Config
	// Toplex enables Stage 2: simplify the hypergraph to its
	// toplexes before computing s-overlaps.
	Toplex bool
	// NoSqueeze disables Stage 4's ID squeezing, keeping the (often
	// hypersparse) hyperedge ID space as graph node IDs.
	NoSqueeze bool
}

// StageTimings records wall-clock time per pipeline stage — the rows of
// the paper's Table I.
type StageTimings struct {
	Preprocess time.Duration // Stage 1: cleanup + relabel-by-degree
	Toplex     time.Duration // Stage 2 (optional)
	SOverlap   time.Duration // Stage 3: the s-line edge list (dominant)
	Squeeze    time.Duration // Stage 4: ID squeezing + graph build
}

// Total sums all stages.
func (t StageTimings) Total() time.Duration {
	return t.Preprocess + t.Toplex + t.SOverlap + t.Squeeze
}

// PipelineResult is the output of a pipeline run: the s-line graph with
// node IDs mapped back to the input hypergraph's hyperedge IDs, plus
// work statistics and per-stage timings.
type PipelineResult struct {
	S     int
	Graph *graph.Graph
	// HyperedgeIDs maps each graph node to the hyperedge ID in the
	// *input* hypergraph (undoing squeezing, toplex selection, and
	// relabeling).
	HyperedgeIDs []uint32
	Stats        Stats
	Timings      StageTimings
}

// HyperedgeID returns the input-hypergraph hyperedge represented by a
// graph node.
func (r *PipelineResult) HyperedgeID(node uint32) uint32 {
	return r.HyperedgeIDs[node]
}

// Run executes Stages 1-4 of the framework on h for the given s:
// preprocessing (with relabel-by-degree), optional toplex
// simplification, the s-overlap computation, and ID squeezing / graph
// construction. Stage 5 (s-measure computation) is performed by the
// caller on the returned graph — any standard graph algorithm applies.
func Run(h *hg.Hypergraph, s int, cfg PipelineConfig) *PipelineResult {
	res := &PipelineResult{S: s}

	t0 := time.Now()
	pre := hg.Preprocess(h, cfg.Core.Relabel)
	res.Timings.Preprocess = time.Since(t0)
	work := pre.H
	edgeOrig := pre.EdgeOrig

	if cfg.Toplex {
		t1 := time.Now()
		simplified, keep := toplex.Simplify(work)
		res.Timings.Toplex = time.Since(t1)
		work = simplified
		remapped := make([]uint32, len(keep))
		for newE, midE := range keep {
			remapped[newE] = edgeOrig[midE]
		}
		edgeOrig = remapped
	}

	t2 := time.Now()
	edges, stats := SLineEdges(work, s, cfg.Core)
	res.Timings.SOverlap = time.Since(t2)
	res.Stats = stats

	t3 := time.Now()
	// SLineEdges guarantees sorted, deduped, U < V output, so Stage 4
	// takes the parallel zero-copy path.
	g := graph.BuildSorted(work.NumEdges(), edges, !cfg.NoSqueeze, cfg.Core.parOptions())
	res.Timings.Squeeze = time.Since(t3)
	res.Graph = g

	res.HyperedgeIDs = make([]uint32, g.NumNodes())
	for node := 0; node < g.NumNodes(); node++ {
		res.HyperedgeIDs[node] = edgeOrig[g.OrigID(uint32(node))]
	}
	return res
}

// RunEnsemble executes the pipeline with Algorithm 3, producing one
// result per distinct s value. Stage timings on each result share the
// pipeline-wide preprocessing/overlap costs; squeeze time is per s.
func RunEnsemble(h *hg.Hypergraph, sValues []int, cfg PipelineConfig) map[int]*PipelineResult {
	t0 := time.Now()
	pre := hg.Preprocess(h, cfg.Core.Relabel)
	preTime := time.Since(t0)
	work := pre.H
	edgeOrig := pre.EdgeOrig

	var topTime time.Duration
	if cfg.Toplex {
		t1 := time.Now()
		simplified, keep := toplex.Simplify(work)
		topTime = time.Since(t1)
		work = simplified
		remapped := make([]uint32, len(keep))
		for newE, midE := range keep {
			remapped[newE] = edgeOrig[midE]
		}
		edgeOrig = remapped
	}

	t2 := time.Now()
	lists, stats := EnsembleEdges(work, sValues, cfg.Core)
	overlapTime := time.Since(t2)

	out := make(map[int]*PipelineResult, len(lists))
	for s, edges := range lists {
		t3 := time.Now()
		// EnsembleEdges emits each list sorted and deduped with U < V.
		g := graph.BuildSorted(work.NumEdges(), edges, !cfg.NoSqueeze, cfg.Core.parOptions())
		squeeze := time.Since(t3)
		r := &PipelineResult{
			S:     s,
			Graph: g,
			Stats: stats,
			Timings: StageTimings{
				Preprocess: preTime,
				Toplex:     topTime,
				SOverlap:   overlapTime,
				Squeeze:    squeeze,
			},
		}
		r.HyperedgeIDs = make([]uint32, g.NumNodes())
		for node := 0; node < g.NumNodes(); node++ {
			r.HyperedgeIDs[node] = edgeOrig[g.OrigID(uint32(node))]
		}
		out[s] = r
	}
	return out
}
