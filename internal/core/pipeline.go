package core

import (
	"context"
	"time"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/toplex"
)

// PipelineConfig configures an end-to-end run of the paper's five-stage
// s-line graph framework (§IV).
type PipelineConfig struct {
	// Core selects the s-overlap strategy (or the planner, AlgoAuto)
	// and execution knobs; Core.Relabel drives Stage 1's
	// relabel-by-degree.
	Core Config
	// Toplex enables Stage 2: simplify the hypergraph to its
	// toplexes before computing s-overlaps.
	Toplex bool
	// NoSqueeze disables Stage 4's ID squeezing, keeping the (often
	// hypersparse) hyperedge ID space as graph node IDs.
	NoSqueeze bool
}

// StageTimings records wall-clock time per pipeline stage — the rows of
// the paper's Table I.
type StageTimings struct {
	Preprocess time.Duration // Stage 1: cleanup + relabel-by-degree
	Toplex     time.Duration // Stage 2 (optional)
	SOverlap   time.Duration // Stage 3: the s-line edge list (dominant)
	Squeeze    time.Duration // Stage 4: ID squeezing + graph build
}

// Total sums all stages.
func (t StageTimings) Total() time.Duration {
	return t.Preprocess + t.Toplex + t.SOverlap + t.Squeeze
}

// PlanInfo records which strategy the planner executed for a pipeline
// run and why — the serving layer surfaces it for observability.
type PlanInfo struct {
	Strategy string
	Reason   string
}

// PipelineResult is the output of a pipeline run: the s-line graph with
// node IDs mapped back to the input hypergraph's hyperedge IDs, plus
// work statistics, per-stage timings, and the executed plan.
type PipelineResult struct {
	S     int
	Graph *graph.Graph
	// HyperedgeIDs maps each graph node to the hyperedge ID in the
	// *input* hypergraph (undoing squeezing, toplex selection, and
	// relabeling).
	HyperedgeIDs []uint32
	Stats        Stats
	Timings      StageTimings
	Plan         PlanInfo
}

// HyperedgeID returns the input-hypergraph hyperedge represented by a
// graph node.
func (r *PipelineResult) HyperedgeID(node uint32) uint32 {
	return r.HyperedgeIDs[node]
}

// prepared is the Stage 1-2 output shared by every s of a batch.
type prepared struct {
	work     *hg.Hypergraph
	edgeOrig []uint32
	preTime  time.Duration
	topTime  time.Duration
}

// prepare runs Stage 1 (preprocess + relabel) and Stage 2 (optional
// toplex simplification) once for a whole query.
func prepare(h *hg.Hypergraph, cfg PipelineConfig) prepared {
	t0 := time.Now()
	pre := hg.Preprocess(h, cfg.Core.Relabel)
	p := prepared{work: pre.H, edgeOrig: pre.EdgeOrig, preTime: time.Since(t0)}

	if cfg.Toplex {
		t1 := time.Now()
		simplified, keep := toplex.Simplify(p.work)
		p.topTime = time.Since(t1)
		p.work = simplified
		remapped := make([]uint32, len(keep))
		for newE, midE := range keep {
			remapped[newE] = p.edgeOrig[midE]
		}
		p.edgeOrig = remapped
	}
	return p
}

// RunBatch executes Stages 1-4 for every distinct s in sValues (clamped
// to ≥ 1) as one planned query: preprocessing and toplex simplification
// run once, the planner resolves the s-overlap strategy from the
// prepared hypergraph's statistics and the batch shape, and Stage 4
// builds one graph per s. The result maps each distinct clamped s to
// its projection.
//
// Cancellation is cooperative: the pipeline checks ctx between stages
// and the Stage-3 strategies poll it inside their worker loops, so a
// cancelled or expired context aborts within roughly one worker
// iteration plus one Stage-4 build and RunBatch returns ctx.Err(). A
// nil ctx is treated as context.Background().
//
// Stage timings on each result share the pipeline-wide preprocessing
// and s-overlap costs; squeeze time is per s. Stats are aggregated
// across the batch (multi-s strategies may share one counting pass).
func RunBatch(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg PipelineConfig) (map[int]*PipelineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := map[int]*PipelineResult{}
	if len(sValues) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := prepare(h, cfg)
	// Checkpoint between Stages 1-2 and Stage 3.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	dec := planFor(p.work, sValues, cfg.Core)
	t2 := time.Now()
	lists, stats, err := dec.Strategy.Edges(ctx, p.work, sValues, dec.Config)
	if err != nil {
		return nil, err
	}
	overlapTime := time.Since(t2)

	for s, edges := range lists {
		// Checkpoint between per-s Stage-4 builds.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t3 := time.Now()
		// Every registered strategy emits each list sorted and deduped
		// with U < V, so Stage 4 takes the parallel zero-copy path.
		g := graph.BuildSorted(p.work.NumEdges(), edges, !cfg.NoSqueeze, cfg.Core.parOptions())
		squeeze := time.Since(t3)
		r := &PipelineResult{
			S:     s,
			Graph: g,
			Stats: stats,
			Timings: StageTimings{
				Preprocess: p.preTime,
				Toplex:     p.topTime,
				SOverlap:   overlapTime,
				Squeeze:    squeeze,
			},
			Plan: dec.Info(),
		}
		r.HyperedgeIDs = make([]uint32, g.NumNodes())
		for node := 0; node < g.NumNodes(); node++ {
			r.HyperedgeIDs[node] = p.edgeOrig[g.OrigID(uint32(node))]
		}
		out[s] = r
	}
	return out, nil
}

// Run executes Stages 1-4 of the framework on h for a single s:
// preprocessing (with relabel-by-degree), optional toplex
// simplification, the planned s-overlap computation, and ID squeezing /
// graph construction. Stage 5 (s-measure computation) is performed by
// the caller on the returned graph — any standard graph algorithm
// applies. Cancellation follows the RunBatch contract: a cancelled ctx
// aborts cooperatively and returns ctx.Err().
func Run(ctx context.Context, h *hg.Hypergraph, s int, cfg PipelineConfig) (*PipelineResult, error) {
	if s < 1 {
		s = 1
	}
	out, err := RunBatch(ctx, h, []int{s}, cfg)
	if err != nil {
		return nil, err
	}
	return out[s], nil
}

// RunEnsemble executes the pipeline with Algorithm 3 pinned, producing
// one result per distinct s value from a single counting pass. Use
// RunBatch for the planner-driven default, which picks the ensemble
// only when its counter memory is affordable.
func RunEnsemble(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg PipelineConfig) (map[int]*PipelineResult, error) {
	cfg.Core.Algorithm = AlgoEnsemble
	return RunBatch(ctx, h, sValues, cfg)
}
