package core

import (
	"context"
	"time"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/toplex"
)

// ToplexMode selects Stage-2 toplex simplification: off, on, or
// planner-resolved. The zero value is ToplexOff, so existing callers
// keep the historical default.
type ToplexMode uint8

const (
	// ToplexOff skips Stage 2 (the default).
	ToplexOff ToplexMode = iota
	// ToplexOn simplifies the hypergraph to its toplexes before
	// computing s-overlaps.
	ToplexOn
	// ToplexAuto defers the choice to the planner, which resolves it
	// from the sampled containment estimate (hg.Stats.ToplexSample)
	// before any pipeline stage runs. Like hg.RelabelAuto it is an
	// explicit opt-in and never reaches prepare(): ResolveConfig
	// replaces it with ToplexOff or ToplexOn first.
	ToplexAuto
)

// Enabled reports whether Stage 2 runs under this mode. ToplexAuto is
// unresolved and reports false; resolve it first.
func (m ToplexMode) Enabled() bool { return m == ToplexOn }

// String names the mode the way flags and JSON spell it.
func (m ToplexMode) String() string {
	switch m {
	case ToplexOff:
		return "false"
	case ToplexOn:
		return "true"
	case ToplexAuto:
		return "auto"
	default:
		return "?"
	}
}

// ToplexFromBool maps the boolean option surface onto the mode.
func ToplexFromBool(on bool) ToplexMode {
	if on {
		return ToplexOn
	}
	return ToplexOff
}

// PipelineConfig configures an end-to-end run of the paper's five-stage
// s-line graph framework (§IV).
type PipelineConfig struct {
	// Core selects the s-overlap strategy (or the planner, AlgoAuto)
	// and execution knobs; Core.Relabel drives Stage 1's
	// relabel-by-degree (hg.RelabelAuto lets the planner choose).
	Core Config
	// Toplex selects Stage 2: off, on, or planner-resolved
	// (ToplexAuto).
	Toplex ToplexMode
	// NoSqueeze disables Stage 4's ID squeezing, keeping the (often
	// hypersparse) hyperedge ID space as graph node IDs.
	NoSqueeze bool

	// Stats optionally supplies precomputed statistics of the input
	// hypergraph (the serving layer caches them per dataset version).
	// When nil, the planner computes them on demand. Stats are an
	// execution hint and never part of the cache fingerprint.
	Stats *hg.Stats
	// Costs optionally attaches a calibration table: RunBatch records
	// each successful Stage-3 pass into it, and the planner consults
	// calibrated cells to override its static heuristics. Nil disables
	// calibration. Not part of the cache fingerprint.
	Costs *CostModel
	// KnobReason records why ResolveConfig chose the preprocessing
	// knobs ("" when the caller pinned them). It is set by
	// ResolveConfig and surfaced through PlanInfo; not part of the
	// cache fingerprint.
	KnobReason string
}

// StageTimings records wall-clock time per pipeline stage — the rows of
// the paper's Table I.
type StageTimings struct {
	Preprocess time.Duration // Stage 1: cleanup + relabel-by-degree
	Toplex     time.Duration // Stage 2 (optional)
	SOverlap   time.Duration // Stage 3: the s-line edge list (dominant)
	Squeeze    time.Duration // Stage 4: ID squeezing + graph build
}

// Total sums all stages.
func (t StageTimings) Total() time.Duration {
	return t.Preprocess + t.Toplex + t.SOverlap + t.Squeeze
}

// PlanInfo records which strategy the planner executed for a pipeline
// run, which preprocessing knobs it ran under, and why — the serving
// layer surfaces it for observability.
type PlanInfo struct {
	Strategy string
	Reason   string
	// Relabel is the resolved Stage-1 order the run executed
	// ("N", "A", or "D" — never "*": auto resolves before Stage 1).
	Relabel string
	// Toplex reports whether Stage-2 simplification ran.
	Toplex bool
	// KnobReason explains the planner's Relabel/Toplex choice; empty
	// when the caller pinned both knobs.
	KnobReason string
}

// PipelineResult is the output of a pipeline run: the s-line graph with
// node IDs mapped back to the input hypergraph's hyperedge IDs, plus
// work statistics, per-stage timings, and the executed plan.
type PipelineResult struct {
	S     int
	Graph *graph.Graph
	// HyperedgeIDs maps each graph node to the hyperedge ID in the
	// *input* hypergraph (undoing squeezing, toplex selection, and
	// relabeling).
	HyperedgeIDs []uint32
	Stats        Stats
	Timings      StageTimings
	Plan         PlanInfo
}

// HyperedgeID returns the input-hypergraph hyperedge represented by a
// graph node.
func (r *PipelineResult) HyperedgeID(node uint32) uint32 {
	return r.HyperedgeIDs[node]
}

// prepared is the Stage 1-2 output shared by every s of a batch.
type prepared struct {
	work     *hg.Hypergraph
	edgeOrig []uint32
	preTime  time.Duration
	topTime  time.Duration
}

// prepare runs Stage 1 (preprocess + relabel) and Stage 2 (optional
// toplex simplification) once for a whole query. cfg must be resolved
// (no auto knobs).
func prepare(h *hg.Hypergraph, cfg PipelineConfig) prepared {
	t0 := time.Now()
	pre := hg.Preprocess(h, cfg.Core.Relabel)
	p := prepared{work: pre.H, edgeOrig: pre.EdgeOrig, preTime: time.Since(t0)}

	if cfg.Toplex.Enabled() {
		t1 := time.Now()
		simplified, keep := toplex.Simplify(p.work)
		p.topTime = time.Since(t1)
		p.work = simplified
		remapped := make([]uint32, len(keep))
		for newE, midE := range keep {
			remapped[newE] = p.edgeOrig[midE]
		}
		p.edgeOrig = remapped
	}
	return p
}

// planningStats returns the statistics the strategy planner consults
// for a resolved configuration, reusing caller-supplied stats when they
// still describe the hypergraph Stage 3 will actually see: toplex
// simplification changes the degree structure, so after Stage 2 the
// stats are recomputed on the simplified hypergraph. Returns zero stats
// when the decision does not need them (fully pinned single-s queries).
func planningStats(p prepared, sValues []int, cfg PipelineConfig) hg.Stats {
	need := cfg.Core.Algorithm == AlgoAuto ||
		(cfg.Core.Algorithm == AlgoHashmap && len(DistinctS(sValues)) > 1)
	if !need {
		return hg.Stats{}
	}
	if !cfg.Toplex.Enabled() && cfg.Stats != nil {
		return *cfg.Stats
	}
	return hg.ComputeStats("", p.work)
}

// RunBatch executes Stages 1-4 for every distinct s in sValues (clamped
// to ≥ 1) as one planned query: the planner first resolves any auto
// preprocessing knobs (ResolveConfig), preprocessing and toplex
// simplification run once, the planner resolves the s-overlap strategy
// from the hypergraph's statistics, the batch shape, and any calibrated
// costs, and Stage 4 builds one graph per s. The result maps each
// distinct clamped s to its projection.
//
// Cancellation is cooperative: the pipeline checks ctx between stages
// and the Stage-3 strategies poll it inside their worker loops, so a
// cancelled or expired context aborts within roughly one worker
// iteration plus one Stage-4 build and RunBatch returns ctx.Err(). A
// nil ctx is treated as context.Background().
//
// Stage timings on each result share the pipeline-wide preprocessing
// and s-overlap costs; squeeze time is per s. Stats are aggregated
// across the batch (multi-s strategies may share one counting pass).
// When cfg.Costs is set, the measured Stage-3 cost per distinct s is
// recorded into it after a successful pass.
func RunBatch(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg PipelineConfig) (map[int]*PipelineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := map[int]*PipelineResult{}
	if len(sValues) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = ResolveConfig(h, sValues, cfg)
	p := prepare(h, cfg)
	// Checkpoint between Stages 1-2 and Stage 3.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	distinct := DistinctS(sValues)
	dec := PlanQueryCosts(planningStats(p, sValues, cfg), sValues, cfg.Core, cfg.Costs, cfg.Toplex.Enabled())
	t2 := time.Now()
	lists, stats, err := dec.Strategy.Edges(ctx, p.work, sValues, dec.Config)
	if err != nil {
		return nil, err
	}
	overlapTime := time.Since(t2)
	if cfg.Costs != nil {
		cfg.Costs.Observe(CostKey{
			Algo:    dec.Config.Algorithm,
			Relabel: cfg.Core.Relabel,
			Toplex:  cfg.Toplex.Enabled(),
			Multi:   len(distinct) > 1,
		}, overlapTime/time.Duration(len(distinct)))
	}
	plan := dec.Info()
	plan.Relabel = cfg.Core.Relabel.String()
	plan.Toplex = cfg.Toplex.Enabled()
	plan.KnobReason = cfg.KnobReason

	for s, edges := range lists {
		// Checkpoint between per-s Stage-4 builds.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t3 := time.Now()
		// Every registered strategy emits each list sorted and deduped
		// with U < V, so Stage 4 takes the parallel zero-copy path.
		g := graph.BuildSorted(p.work.NumEdges(), edges, !cfg.NoSqueeze, cfg.Core.parOptions())
		squeeze := time.Since(t3)
		r := &PipelineResult{
			S:     s,
			Graph: g,
			Stats: stats,
			Timings: StageTimings{
				Preprocess: p.preTime,
				Toplex:     p.topTime,
				SOverlap:   overlapTime,
				Squeeze:    squeeze,
			},
			Plan: plan,
		}
		r.HyperedgeIDs = make([]uint32, g.NumNodes())
		for node := 0; node < g.NumNodes(); node++ {
			r.HyperedgeIDs[node] = p.edgeOrig[g.OrigID(uint32(node))]
		}
		out[s] = r
	}
	return out, nil
}

// Run executes Stages 1-4 of the framework on h for a single s:
// preprocessing (with relabel-by-degree), optional toplex
// simplification, the planned s-overlap computation, and ID squeezing /
// graph construction. Stage 5 (s-measure computation) is performed by
// the caller on the returned graph — any standard graph algorithm
// applies. Cancellation follows the RunBatch contract: a cancelled ctx
// aborts cooperatively and returns ctx.Err().
func Run(ctx context.Context, h *hg.Hypergraph, s int, cfg PipelineConfig) (*PipelineResult, error) {
	if s < 1 {
		s = 1
	}
	out, err := RunBatch(ctx, h, []int{s}, cfg)
	if err != nil {
		return nil, err
	}
	return out[s], nil
}

// RunEnsemble executes the pipeline with Algorithm 3 pinned, producing
// one result per distinct s value from a single counting pass. Use
// RunBatch for the planner-driven default, which picks the ensemble
// only when its counter memory is affordable.
func RunEnsemble(ctx context.Context, h *hg.Hypergraph, sValues []int, cfg PipelineConfig) (map[int]*PipelineResult, error) {
	cfg.Core.Algorithm = AlgoEnsemble
	return RunBatch(ctx, h, sValues, cfg)
}
