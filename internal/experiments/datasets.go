// Package experiments regenerates every table and figure of the
// paper's evaluation (§V and §VI) on the synthetic dataset analogs of
// internal/gen. Each experiment function writes a human-readable report
// mirroring the paper's artifact and returns the underlying data so
// tests can assert the qualitative claims (who wins, by what factor,
// where curves bend) and benchmarks can time the kernels.
//
// A Scale factor (default 1) multiplies dataset sizes; the defaults are
// laptop-scale so the whole suite runs in minutes rather than the
// hours the paper's 10⁸-incidence inputs require.
package experiments

import (
	"hyperline/internal/gen"
	"hyperline/internal/hg"
)

// Scale multiplies dataset sizes. 1 is the default used by tests and
// benchmarks; cmd/experiments exposes it as a flag for larger runs.
type Scale int

func (s Scale) mul(x int) int {
	if s <= 0 {
		s = 1
	}
	return x * int(s)
}

// LiveJournalAnalog stands in for the LiveJournal community
// hypergraph: heavily skewed hyperedge sizes with deep community
// overlap (Tables I, V; Figs. 7, 8, 10).
func LiveJournalAnalog(s Scale) *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed:              1001,
		NumVertices:       s.mul(30000),
		NumCommunities:    s.mul(3500),
		MeanCommunitySize: 10,
		MaxCommunitySize:  1200,
		EdgesPerCommunity: 4,
		Background:        s.mul(4000),
		Bridge:            0.25,
	})
}

// OrkutAnalog stands in for com-Orkut (Figs. 8; Table V).
func OrkutAnalog(s Scale) *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed:              1002,
		NumVertices:       s.mul(40000),
		NumCommunities:    s.mul(4500),
		MeanCommunitySize: 12,
		MaxCommunitySize:  800,
		EdgesPerCommunity: 3,
		Background:        s.mul(5000),
	})
}

// FriendsterAnalog stands in for Friendster: smaller maximum degrees,
// so relabel-by-degree does not pay off (Fig. 7 discussion; Fig. 11).
func FriendsterAnalog(s Scale) *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed:              1003,
		NumVertices:       s.mul(60000),
		NumCommunities:    s.mul(3000),
		MeanCommunitySize: 6,
		MaxCommunitySize:  120,
		EdgesPerCommunity: 3,
		Background:        s.mul(8000),
	})
}

// WebAnalog stands in for the Web bipartite graph: extreme skew with a
// few enormous hyperedges — the dense-overlap regime where
// pre-allocated TLS counters win (Figs. 7, 8; Table V).
func WebAnalog(s Scale) *hg.Hypergraph {
	// The real Web dataset's signature is enormous hyperedges
	// (∆e = 11.6M) over moderately skewed vertex degrees: set
	// intersections are extremely expensive there while the wedge
	// count stays moderate, which is exactly where Algorithm 2's
	// advantage peaks (the paper's ≈11× on Web).
	return gen.Zipf(gen.ZipfConfig{
		Seed:         1004,
		NumVertices:  s.mul(200000),
		NumEdges:     s.mul(6000),
		MeanEdgeSize: 20,
		Skew:         1.08,
		SizeSkew:     1.5,
		MaxEdgeSize:  2000,
		HeadFlatten:  3000,
	})
}

// AmazonAnalog stands in for Amazon-reviews: moderate skew, small ∆e
// (Fig. 7).
func AmazonAnalog(s Scale) *hg.Hypergraph {
	return gen.Zipf(gen.ZipfConfig{
		Seed:         1005,
		NumVertices:  s.mul(20000),
		NumEdges:     s.mul(30000),
		MeanEdgeSize: 8,
		Skew:         1.2,
		MaxEdgeSize:  150,
		HeadFlatten:  80,
	})
}

// StackOverflowAnalog stands in for Stackoverflow-answers (Fig. 7).
func StackOverflowAnalog(s Scale) *hg.Hypergraph {
	return gen.Zipf(gen.ZipfConfig{
		Seed:         1006,
		NumVertices:  s.mul(15000),
		NumEdges:     s.mul(40000),
		MeanEdgeSize: 3,
		Skew:         1.15,
		MaxEdgeSize:  60,
		HeadFlatten:  80,
	})
}

// EmailAnalog stands in for email-EuAll: small and very sparse, used
// in the SpGEMM comparison (Fig. 11).
func EmailAnalog(s Scale) *hg.Hypergraph {
	return gen.Zipf(gen.ZipfConfig{
		Seed:         1007,
		NumVertices:  s.mul(8000),
		NumEdges:     s.mul(8000),
		MeanEdgeSize: 2,
		Skew:         1.3,
		MaxEdgeSize:  150,
		HeadFlatten:  40,
	})
}

// DNSAnalog stands in for activeDNS with the given file count (the
// weak-scaling unit of Fig. 9).
func DNSAnalog(s Scale, files int) *hg.Hypergraph {
	return gen.DNSLike(gen.DNSConfig{
		Seed:           1008,
		Files:          files,
		DomainsPerFile: s.mul(15000),
		IPsPerFile:     s.mul(1500),
	})
}

// CondMatAnalog stands in for the condMat author-paper network of
// §V-B: repeat collaborations keep Ls(H) non-empty up to s ≈ 16
// (Figs. 4, 6).
func CondMatAnalog(s Scale) *hg.Hypergraph {
	return gen.AuthorPaper(gen.AuthorPaperConfig{
		Seed:             1009,
		NumAuthors:       s.mul(4000),
		NumClusters:      s.mul(500),
		ClusterSize:      4,
		MaxClusterSize:   20,
		PapersPerCluster: 8,
		SoloPapers:       s.mul(800),
	})
}

// DisGeNetAnalog stands in for the disGeNet disease-gene network
// (Fig. 4; Table II).
func DisGeNetAnalog(s Scale) *hg.Hypergraph {
	return gen.GeneDisease(gen.GeneDiseaseConfig{
		Seed:            1010,
		NumGenes:        s.mul(5000),
		NumDiseases:     s.mul(700),
		HubDiseases:     8,
		HubCoreSize:     160,
		MeanGenes:       6,
		PopularDiseases: 150,
		PopularPool:     400,
		PopularMean:     50,
	})
}

// CompBoardAnalog stands in for the board member-company network
// (Fig. 4).
func CompBoardAnalog(s Scale) *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed:              1011,
		NumVertices:       s.mul(900),
		NumCommunities:    s.mul(140),
		MeanCommunitySize: 5,
		MaxCommunitySize:  30,
		EdgesPerCommunity: 2,
		Background:        s.mul(100),
	})
}

// LesMisAnalog stands in for the Les Misérables character-scene
// network (Fig. 4).
func LesMisAnalog(Scale) *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed:              1012,
		NumVertices:       80,
		NumCommunities:    40,
		MeanCommunitySize: 4,
		MaxCommunitySize:  12,
		EdgesPerCommunity: 2,
		Background:        20,
	})
}

// VirologyAnalog stands in for the virology transcriptomics hypergraph
// of §V-A: 201 conditions, genes as hyperedges, six planted hub genes
// sharing > 100 conditions (Fig. 5).
func VirologyAnalog(s Scale) *hg.Hypergraph {
	return gen.GeneCondition(gen.GeneConditionConfig{
		Seed:          1013,
		NumConditions: 201,
		NumGenes:      s.mul(2400),
		Hubs:          6,
		HubShared:     110,
		MeanPerturbed: 3,
	})
}

// VirologyHubNames labels the planted hub genes of VirologyAnalog with
// the gene symbols the paper identifies in Fig. 5 (hyperedge ID i ↦
// name i).
var VirologyHubNames = []string{"IFIT1", "USP18", "ISG15", "IL6", "ATF3", "RSAD2"}

// IMDBAnalog stands in for the IMDB actor-movie hypergraph of §V-C:
// four planted collaboration groups of sizes 5, 2, 2, 2 whose members
// co-starred in more than 100 movies — the paper's four 100-connected
// components.
func IMDBAnalog(s Scale) *hg.Hypergraph {
	return gen.ActorMovie(gen.ActorMovieConfig{
		Seed:           1014,
		NumMovies:      s.mul(60000),
		NumActors:      s.mul(4000),
		GroupSizes:     []int{5, 2, 2, 2},
		SharedMovies:   101,
		MeanFilmograph: 4,
	})
}

// IMDBActorNames labels the planted actors of IMDBAnalog with the
// names from the paper's reported components (actor ID i ↦ name i).
var IMDBActorNames = []string{
	"Adoor Bhasi", "Bahadur", "Paravoor Bharathan", "Jayabharati", "Prem Nazir",
	"Matsunosuke Onoe", "Suminojo",
	"Kijaku Otani", "Kitsuraku Arashi",
	"Panchito", "Dolphy",
}

// Fig7Datasets lists the datasets of Figure 7 in paper order.
func Fig7Datasets(s Scale) map[string]*hg.Hypergraph {
	return map[string]*hg.Hypergraph{
		"Friendster":            FriendsterAnalog(s),
		"Web":                   WebAnalog(s),
		"LiveJournal":           LiveJournalAnalog(s),
		"Amazon-reviews":        AmazonAnalog(s),
		"Stackoverflow-answers": StackOverflowAnalog(s),
	}
}

// Table4Datasets lists every analog with its Table IV name.
func Table4Datasets(s Scale) []struct {
	Name string
	H    *hg.Hypergraph
} {
	return []struct {
		Name string
		H    *hg.Hypergraph
	}{
		{"com-Orkut", OrkutAnalog(s)},
		{"Friendster", FriendsterAnalog(s)},
		{"LiveJournal", LiveJournalAnalog(s)},
		{"Web", WebAnalog(s)},
		{"Amazon-reviews", AmazonAnalog(s)},
		{"Stackoverflow-answers", StackOverflowAnalog(s)},
		{"activeDNS", DNSAnalog(s, 4)},
		{"email-EuAll", EmailAnalog(s)},
	}
}
