package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"hyperline/internal/algo"
	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spgemm"
)

// Table1Data reproduces Table I: the per-stage cost of the framework
// on the LiveJournal analog under the prior algorithm (Algorithm 1) and
// the paper's method (Algorithm 2).
type Table1Data struct {
	S                 int
	Stages            [2]core.StageTimings // [0] = Algorithm 1, [1] = Algorithm 2
	CC                [2]time.Duration     // s-connected components stage
	Totals            [2]time.Duration
	Speedup           float64
	SetIntersections  [2]int64
	ComponentsMatched bool
}

// Table1 runs the end-to-end framework twice (1CN and 2BA, the paper's
// compared configurations) on the LiveJournal analog with s = 8.
func Table1(w io.Writer, scale Scale, workers int) Table1Data {
	h := LiveJournalAnalog(scale)
	const s = 8
	data := Table1Data{S: s}

	configs := [2]core.Config{
		mustNotation("1CN"),
		mustNotation("2BA"),
	}
	var ccCounts [2]int
	for i, cfg := range configs {
		cfg.Workers = workers
		res, _ := core.Run(context.Background(), h, s, core.PipelineConfig{Core: cfg})
		t0 := time.Now()
		cc := algo.LabelPropagationCC(res.Graph, par.Options{Workers: workers})
		data.CC[i] = time.Since(t0)
		data.Stages[i] = res.Timings
		data.Totals[i] = res.Timings.Total() + data.CC[i]
		data.SetIntersections[i] = res.Stats.SetIntersections
		ccCounts[i] = cc.Count
	}
	data.ComponentsMatched = ccCounts[0] == ccCounts[1]
	if data.Totals[1] > 0 {
		data.Speedup = float64(data.Totals[0]) / float64(data.Totals[1])
	}

	fmt.Fprintf(w, "Table I analog — LiveJournal analog, s=%d (stage, Algorithm 1 [1CN], our method [2BA])\n", s)
	fmt.Fprintf(w, "  %-24s %12v %12v\n", "preprocessing", data.Stages[0].Preprocess, data.Stages[1].Preprocess)
	fmt.Fprintf(w, "  %-24s %12v %12v\n", "s-overlap", data.Stages[0].SOverlap, data.Stages[1].SOverlap)
	fmt.Fprintf(w, "  %-24s %12v %12v\n", "squeeze", data.Stages[0].Squeeze, data.Stages[1].Squeeze)
	fmt.Fprintf(w, "  %-24s %12v %12v\n", "s-connected components", data.CC[0], data.CC[1])
	fmt.Fprintf(w, "  %-24s %12v %12v\n", "total time", data.Totals[0], data.Totals[1])
	fmt.Fprintf(w, "  %-24s %12s %11.1fx\n", "speedup", "1x", data.Speedup)
	fmt.Fprintf(w, "  %-24s %12d %12d\n", "#set intersections", data.SetIntersections[0], data.SetIntersections[1])
	fmt.Fprintf(w, "  components agree: %v (count %d)\n", data.ComponentsMatched, ccCounts[0])
	return data
}

func mustNotation(n string) core.Config {
	cfg, err := core.ParseNotation(n)
	if err != nil {
		panic(err)
	}
	if cfg.Algorithm == core.AlgoHashmap {
		// The experiment harness uses the pre-allocated thread-local
		// counter storage of §III-F for Algorithm 2: on these analogs
		// (as on the paper's Web dataset) it is the faster of the two
		// storage modes, and Go's per-iteration maps are considerably
		// slower than the C++ unordered_map the dynamic mode models.
		cfg.Store = core.TLSDense
	}
	return cfg
}

// Fig7Data reproduces Figure 7: speedup of the twelve Table III
// configurations relative to 1CN, per dataset, at s = 8.
type Fig7Data struct {
	S int
	// Speedup[dataset][notation] = time(1CN) / time(notation).
	Speedup map[string]map[string]float64
}

// Fig7 measures the end-to-end pipeline time (including the relabel
// preprocessing, as the paper does) for all twelve configurations.
func Fig7(w io.Writer, scale Scale, workers int) Fig7Data {
	const s = 8
	data := Fig7Data{S: s, Speedup: map[string]map[string]float64{}}
	names := []string{"Friendster", "Web", "LiveJournal", "Amazon-reviews", "Stackoverflow-answers"}
	sets := Fig7Datasets(scale)
	for _, name := range names {
		h := sets[name]
		times := map[string]time.Duration{}
		for _, notation := range core.AllNotations() {
			cfg := mustNotation(notation)
			cfg.Workers = workers
			t0 := time.Now()
			res, _ := core.Run(context.Background(), h, s, core.PipelineConfig{Core: cfg})
			times[notation] = time.Since(t0)
			_ = res
		}
		base := times["1CN"]
		data.Speedup[name] = map[string]float64{}
		fmt.Fprintf(w, "Figure 7 analog — %s (s=%d, speedup vs 1CN)\n", name, s)
		for _, notation := range core.AllNotations() {
			sp := float64(base) / float64(times[notation])
			data.Speedup[name][notation] = sp
			fmt.Fprintf(w, "  %-4s %8.2fx   (%v)\n", notation, sp, times[notation])
		}
	}
	return data
}

// Fig8Data reproduces Figure 8: strong scaling of Algorithm 2 at s=8.
type Fig8Data struct {
	// Runtime[dataset][notation][threads] = s-overlap stage time.
	Runtime map[string]map[string]map[int]time.Duration
}

// Fig8 doubles the thread count with the input fixed for the four
// Algorithm 2 configurations the paper plots (2BN, 2CN, 2BA, 2CA).
func Fig8(w io.Writer, scale Scale, maxThreads int) Fig8Data {
	const s = 8
	if maxThreads <= 0 {
		maxThreads = runtime.GOMAXPROCS(0)
	}
	data := Fig8Data{Runtime: map[string]map[string]map[int]time.Duration{}}
	sets := []struct {
		name string
		h    *hg.Hypergraph
	}{
		{"LiveJournal", LiveJournalAnalog(scale)},
		{"com-Orkut", OrkutAnalog(scale)},
		{"DNS-4", DNSAnalog(scale, 4)},
		{"Web", WebAnalog(scale)},
	}
	notations := []string{"2BN", "2CN", "2BA", "2CA"}
	for _, ds := range sets {
		data.Runtime[ds.name] = map[string]map[int]time.Duration{}
		fmt.Fprintf(w, "Figure 8 analog — %s strong scaling (s=%d)\n", ds.name, s)
		for _, notation := range notations {
			data.Runtime[ds.name][notation] = map[int]time.Duration{}
			for threads := 1; threads <= maxThreads; threads *= 2 {
				cfg := mustNotation(notation)
				cfg.Workers = threads
				res, _ := core.Run(context.Background(), ds.h, s, core.PipelineConfig{Core: cfg})
				data.Runtime[ds.name][notation][threads] = res.Timings.SOverlap
				fmt.Fprintf(w, "  %-4s threads=%-3d s-overlap=%v\n", notation, threads, res.Timings.SOverlap)
			}
		}
	}
	return data
}

// Fig9Data reproduces Figure 9: weak scaling on the activeDNS analog.
type Fig9Data struct {
	// Runtime[s][files] = s-overlap time with workers == files.
	Runtime map[int]map[int]time.Duration
}

// Fig9 doubles the dataset (DNS file count) together with the thread
// count, for s ∈ {2, 4, 8} using blocked distribution as in the paper.
func Fig9(w io.Writer, scale Scale, maxFiles int) Fig9Data {
	if maxFiles <= 0 {
		maxFiles = 8
	}
	data := Fig9Data{Runtime: map[int]map[int]time.Duration{}}
	for _, s := range []int{8, 4, 2} {
		data.Runtime[s] = map[int]time.Duration{}
		fmt.Fprintf(w, "Figure 9 analog — activeDNS weak scaling (s=%d)\n", s)
		for files := 1; files <= maxFiles; files *= 2 {
			h := DNSAnalog(scale, files)
			cfg := core.Config{Algorithm: core.AlgoHashmap, Partition: par.Blocked, Workers: files}
			res, _ := core.Run(context.Background(), h, s, core.PipelineConfig{Core: cfg})
			data.Runtime[s][files] = res.Timings.SOverlap
			fmt.Fprintf(w, "  files=%-4d threads=%-4d s-overlap=%v\n", files, files, res.Timings.SOverlap)
		}
	}
	return data
}

// Fig10Data reproduces Figure 10: per-worker wedge visits of Algorithm
// 2 under the six partition/relabel combinations.
type Fig10Data struct {
	// Visits[notation][worker] = wedge visits by that worker.
	Visits map[string][]int64
}

// Fig10 characterizes workload balance on the LiveJournal analog with
// the given worker count (the paper uses 32 threads).
func Fig10(w io.Writer, scale Scale, workers int) Fig10Data {
	const s = 8
	if workers <= 0 {
		workers = 32
	}
	h := LiveJournalAnalog(scale)
	data := Fig10Data{Visits: map[string][]int64{}}
	for _, notation := range []string{"2BN", "2CN", "2BA", "2CA", "2BD", "2CD"} {
		cfg := mustNotation(notation)
		cfg.Workers = workers
		// Match the measurement to the traversal the figure counts:
		// run on the preprocessed (relabeled) hypergraph.
		pre := hg.Preprocess(h, cfg.Relabel)
		_, stats, _ := core.SLineEdges(context.Background(), pre.H, s, cfg)
		data.Visits[notation] = stats.WedgesPerWorker
		min, max := stats.WedgesPerWorker[0], stats.WedgesPerWorker[0]
		for _, v := range stats.WedgesPerWorker {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		imbalance := float64(max) / float64(max64(min, 1))
		fmt.Fprintf(w, "Figure 10 analog — %s: total wedges=%d, per-worker min=%d max=%d imbalance=%.2fx\n",
			notation, stats.Wedges, min, max, imbalance)
	}
	return data
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Imbalance returns max/min per-worker visits for a Fig10 notation
// (min clamped to 1).
func (d Fig10Data) Imbalance(notation string) float64 {
	visits := d.Visits[notation]
	if len(visits) == 0 {
		return 0
	}
	min, max := visits[0], visits[0]
	for _, v := range visits {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return float64(max) / float64(max64(min, 1))
}

// Fig11Data reproduces Figure 11: runtime of the SpGEMM baselines
// versus Algorithm 1 (1CA) and Algorithm 2 (2BA) across s values.
type Fig11Data struct {
	// Runtime[dataset][method][s] = edge-list computation time.
	Runtime map[string]map[string]map[int]time.Duration
}

// Fig11Methods lists the four compared methods in plot order.
var Fig11Methods = []string{"SpGEMM+Filter", "SpGEMM+Filter+Upper", "1CA", "2BA"}

// Fig11 sweeps s on the email-EuAll and Friendster analogs.
func Fig11(w io.Writer, scale Scale, workers int) Fig11Data {
	data := Fig11Data{Runtime: map[string]map[string]map[int]time.Duration{}}
	sets := []struct {
		name    string
		h       *hg.Hypergraph
		sValues []int
	}{
		{"email-EuAll", EmailAnalog(scale), []int{2, 4, 8, 16, 32, 64, 128}},
		{"Friendster", FriendsterAnalog(scale), []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}},
	}
	opt := par.Options{Workers: workers}
	for _, ds := range sets {
		data.Runtime[ds.name] = map[string]map[int]time.Duration{}
		for _, m := range Fig11Methods {
			data.Runtime[ds.name][m] = map[int]time.Duration{}
		}
		// Time the s-line edge-list computation alone (the SpGEMM
		// side is also just multiply+filter); relabeling is done once
		// outside the timed region.
		pre := hg.Preprocess(ds.h, hg.RelabelAscending)
		fmt.Fprintf(w, "Figure 11 analog — %s\n", ds.name)
		for _, s := range ds.sValues {
			t0 := time.Now()
			if _, err := spgemm.SLineFilter(ds.h, s, opt); err != nil {
				panic(err)
			}
			tFull := time.Since(t0)

			t1 := time.Now()
			if _, err := spgemm.SLineFilterUpper(ds.h, s, opt); err != nil {
				panic(err)
			}
			tUpper := time.Since(t1)

			cfg1 := mustNotation("1CA")
			cfg1.Workers = workers
			t2 := time.Now()
			core.SLineEdges(context.Background(), pre.H, s, cfg1)
			t1CA := time.Since(t2)

			cfg2 := mustNotation("2BA")
			cfg2.Workers = workers
			t3 := time.Now()
			core.SLineEdges(context.Background(), pre.H, s, cfg2)
			t2BA := time.Since(t3)

			data.Runtime[ds.name]["SpGEMM+Filter"][s] = tFull
			data.Runtime[ds.name]["SpGEMM+Filter+Upper"][s] = tUpper
			data.Runtime[ds.name]["1CA"][s] = t1CA
			data.Runtime[ds.name]["2BA"][s] = t2BA
			fmt.Fprintf(w, "  s=%-5d SpGEMM+Filter=%-12v +Upper=%-12v 1CA=%-12v 2BA=%v\n",
				s, tFull, tUpper, t1CA, t2BA)
		}
	}
	return data
}

// Table5Data reproduces Table V: end-to-end execution time of the
// framework plus label-propagation connected components for s = 1 (the
// clique-expansion regime) versus s = 8.
type Table5Data struct {
	// Time[dataset][s] = end-to-end time.
	Time map[string]map[int]time.Duration
	// Edges[dataset][s] = number of s-line graph edges (the memory
	// driver that causes the paper's s=1 OOMs).
	Edges map[string]map[int]int
}

// Table5 runs the 2CA configuration as in the paper.
func Table5(w io.Writer, scale Scale, workers int) Table5Data {
	data := Table5Data{
		Time:  map[string]map[int]time.Duration{},
		Edges: map[string]map[int]int{},
	}
	sets := []struct {
		name string
		h    *hg.Hypergraph
	}{
		{"Friendster", FriendsterAnalog(scale)},
		{"LiveJournal", LiveJournalAnalog(scale)},
		{"com-Orkut", OrkutAnalog(scale)},
		{"Web", WebAnalog(scale)},
	}
	for _, ds := range sets {
		data.Time[ds.name] = map[int]time.Duration{}
		data.Edges[ds.name] = map[int]int{}
		for _, s := range []int{1, 8} {
			cfg := mustNotation("2CA")
			cfg.Workers = workers
			t0 := time.Now()
			res, _ := core.Run(context.Background(), ds.h, s, core.PipelineConfig{Core: cfg})
			algo.LabelPropagationCC(res.Graph, par.Options{Workers: workers})
			data.Time[ds.name][s] = time.Since(t0)
			data.Edges[ds.name][s] = res.Graph.NumEdges()
		}
		fmt.Fprintf(w, "Table V analog — %-13s s=1: %-12v (%9d edges)   s=8: %-12v (%9d edges)\n",
			ds.name, data.Time[ds.name][1], data.Edges[ds.name][1],
			data.Time[ds.name][8], data.Edges[ds.name][8])
	}
	return data
}

// Table3 prints the twelve configuration notations (Table III).
func Table3(w io.Writer) []string {
	fmt.Fprintln(w, "Table III — algorithm / partitioning / relabel-by-degree notations")
	for _, n := range core.AllNotations() {
		cfg := mustNotation(n)
		algoName := "Algo. 1 (set intersection)"
		if cfg.Algorithm == core.AlgoHashmap {
			algoName = "Algo. 2 (hashmap)"
		}
		part := "Blocked"
		if cfg.Partition == par.Cyclic {
			part = "Cyclic"
		}
		relabel := map[hg.RelabelOrder]string{
			hg.RelabelNone:       "No",
			hg.RelabelAscending:  "Ascending",
			hg.RelabelDescending: "Descending",
		}[cfg.Relabel]
		fmt.Fprintf(w, "  %-4s %-28s %-8s relabel=%s\n", n, algoName, part, relabel)
	}
	return core.AllNotations()
}

// Table4 prints the input characteristics of every dataset analog.
func Table4(w io.Writer, scale Scale) []hg.Stats {
	fmt.Fprintln(w, "Table IV analog — input characteristics")
	var out []hg.Stats
	for _, ds := range Table4Datasets(scale) {
		st := hg.ComputeStats(ds.Name, ds.H)
		out = append(out, st)
		fmt.Fprintf(w, "  %v\n", st)
	}
	return out
}
