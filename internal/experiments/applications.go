package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"hyperline/internal/algo"
	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spectral"
)

// Fig2 prints the s-line graphs of the paper's running example
// (Figures 1 and 2) for s = 1..4 and returns the per-s edge lists.
func Fig2(w io.Writer) map[int][]core.Edge {
	h := hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},       // 1: {a,b,c}
		{1, 2, 3},       // 2: {b,c,d}
		{0, 1, 2, 3, 4}, // 3: {a,b,c,d,e}
		{4, 5},          // 4: {e,f}
	}, 6)
	out := map[int][]core.Edge{}
	fmt.Fprintln(w, "Figure 2 — hyperedge s-line graphs of the example hypergraph")
	for s := 1; s <= 4; s++ {
		edges, _, _ := core.SLineEdges(context.Background(), h, s, core.Config{})
		out[s] = edges
		fmt.Fprintf(w, "  s=%d:", s)
		if len(edges) == 0 {
			fmt.Fprint(w, " (no edges)")
		}
		for _, e := range edges {
			// Report in the paper's 1-based hyperedge labels.
			fmt.Fprintf(w, " {%d,%d}w%d", e.U+1, e.V+1, e.W)
		}
		fmt.Fprintln(w)
	}
	return out
}

// Fig4Data reproduces Figure 4: the number of edges in the s-clique
// graph versus s for four datasets (log-log decay).
type Fig4Data struct {
	// Edges[dataset][s] = edge count of the s-clique graph.
	Edges map[string]map[int]int
}

// Fig4SValues is the s sweep used for the figure.
var Fig4SValues = []int{1, 2, 4, 8, 16, 32, 64, 100}

// Fig4 computes s-clique graphs (s-line graphs of the dual) with the
// ensemble algorithm.
func Fig4(w io.Writer, scale Scale, workers int) Fig4Data {
	data := Fig4Data{Edges: map[string]map[int]int{}}
	sets := []struct {
		name string
		h    *hg.Hypergraph
	}{
		{"disGeNet", DisGeNetAnalog(scale)},
		{"condMat", CondMatAnalog(scale)},
		{"compBoard", CompBoardAnalog(scale)},
		{"lesMis", LesMisAnalog(scale)},
	}
	for _, ds := range sets {
		dual := ds.h.Dual()
		cfg := core.PipelineConfig{Core: core.Config{Workers: workers}}
		results, _ := core.RunEnsemble(context.Background(), dual, Fig4SValues, cfg)
		data.Edges[ds.name] = map[int]int{}
		fmt.Fprintf(w, "Figure 4 analog — %s: #edges in s-clique graph\n", ds.name)
		for _, s := range Fig4SValues {
			n := results[s].Graph.NumEdges()
			data.Edges[ds.name][s] = n
			fmt.Fprintf(w, "  s=%-4d edges=%d\n", s, n)
		}
	}
	return data
}

// Table2Data reproduces Table II: ordinal rank and score percentile of
// the top diseases by PageRank in the clique expansion (s=1) and the
// s-clique graphs for s = 10 and 100.
type Table2Data struct {
	SValues []int
	// Rank[s][disease] = 1-based ordinal rank of the disease
	// (hyperedge ID in the disease-gene hypergraph) by PageRank.
	Rank map[int]map[uint32]int
	// Percentile[s][disease] = score percentile (0-100).
	Percentile map[int]map[uint32]float64
	// Top5AtS1 are the five top-ranked diseases in the clique
	// expansion.
	Top5AtS1 []uint32
	// EdgeCounts[s] = edges in each s-clique graph (2.7M / 246K / 12K
	// in the paper).
	EdgeCounts map[int]int
	// Top400Retention[s] = fraction of the s=1 top-400 set still in
	// the top 400 at s (92% / 88% in the paper; scaled to top-N/10 of
	// our smaller analog).
	Top400Retention map[int]float64
}

// Table2 ranks the diseases of the disGeNet analog. The "s-clique
// graph of diseases" links diseases sharing ≥ s genes, i.e. the s-line
// graph of the disease-gene hypergraph itself (diseases are
// hyperedges).
func Table2(w io.Writer, scale Scale, workers int) Table2Data {
	h := DisGeNetAnalog(scale)
	data := Table2Data{
		SValues:         []int{1, 10, 100},
		Rank:            map[int]map[uint32]int{},
		Percentile:      map[int]map[uint32]float64{},
		EdgeCounts:      map[int]int{},
		Top400Retention: map[int]float64{},
	}
	opt := core.PipelineConfig{Core: core.Config{Workers: workers}}
	results, _ := core.RunEnsemble(context.Background(), h, data.SValues, opt)

	topSets := map[int][]uint32{}
	for _, s := range data.SValues {
		res := results[s]
		pr := algo.PageRank(res.Graph, algo.PageRankOptions{Par: par.Options{Workers: workers}})
		type scored struct {
			disease uint32
			score   float64
		}
		ranked := make([]scored, len(pr))
		for node, p := range pr {
			ranked[node] = scored{res.HyperedgeIDs[node], p}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].disease < ranked[j].disease
		})
		data.Rank[s] = map[uint32]int{}
		data.Percentile[s] = map[uint32]float64{}
		n := len(ranked)
		for i, sc := range ranked {
			data.Rank[s][sc.disease] = i + 1
			data.Percentile[s][sc.disease] = 100 * float64(n-i) / float64(n)
		}
		data.EdgeCounts[s] = res.Graph.NumEdges()
		topN := n / 10
		if topN < 5 {
			topN = min(5, n)
		}
		tops := make([]uint32, 0, topN)
		for i := 0; i < topN && i < n; i++ {
			tops = append(tops, ranked[i].disease)
		}
		topSets[s] = tops
	}
	// Top-5 at s=1.
	type rankPair struct {
		disease uint32
		rank    int
	}
	var s1 []rankPair
	for d, r := range data.Rank[1] {
		s1 = append(s1, rankPair{d, r})
	}
	sort.Slice(s1, func(i, j int) bool { return s1[i].rank < s1[j].rank })
	for i := 0; i < 5 && i < len(s1); i++ {
		data.Top5AtS1 = append(data.Top5AtS1, s1[i].disease)
	}
	// Retention of the s=1 top decile in higher-order rankings.
	base := map[uint32]bool{}
	for _, d := range topSets[1] {
		base[d] = true
	}
	for _, s := range data.SValues[1:] {
		kept := 0
		for _, d := range topSets[s] {
			if base[d] {
				kept++
			}
		}
		if len(base) > 0 {
			data.Top400Retention[s] = float64(kept) / float64(len(base))
		}
	}

	fmt.Fprintf(w, "Table II analog — disease PageRank rank (percentile) across s-clique graphs\n")
	fmt.Fprintf(w, "  edges: s=1: %d, s=10: %d, s=100: %d\n",
		data.EdgeCounts[1], data.EdgeCounts[10], data.EdgeCounts[100])
	for _, d := range data.Top5AtS1 {
		fmt.Fprintf(w, "  disease %-5d", d)
		for _, s := range data.SValues {
			fmt.Fprintf(w, "  s=%-3d: %3d (%.2f%%)", s, data.Rank[s][d], data.Percentile[s][d])
		}
		fmt.Fprintln(w)
	}
	for _, s := range data.SValues[1:] {
		fmt.Fprintf(w, "  top-decile retention at s=%d: %.0f%%\n", s, 100*data.Top400Retention[s])
	}
	return data
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig5Data reproduces Figure 5 / §V-A: the virology gene line graphs
// at s = 1, 3, 5 and the genes the 5-line graph isolates.
type Fig5Data struct {
	SValues []int
	// Nodes/Edges[s]: size of each s-line graph.
	Nodes, Edges map[int]int
	// Components[s]: number of s-connected components.
	Components map[int]int
	// TopGenes: hyperedge IDs with the highest s-betweenness in the
	// densest high-s component, s = max(SValues).
	TopGenes []uint32
	// TopGeneNames maps the recovered IDs through VirologyHubNames.
	TopGeneNames []string
}

// Fig5 computes the ensemble and identifies the most central genes at
// s = 5, which must be the planted hubs (the paper's ISG15, IL6, ATF3,
// RSAD2, USP18, IFIT1).
func Fig5(w io.Writer, scale Scale, workers int) Fig5Data {
	h := VirologyAnalog(scale)
	data := Fig5Data{
		SValues:    []int{1, 3, 5},
		Nodes:      map[int]int{},
		Edges:      map[int]int{},
		Components: map[int]int{},
	}
	opt := core.PipelineConfig{Core: core.Config{Workers: workers}}
	results, _ := core.RunEnsemble(context.Background(), h, data.SValues, opt)
	for _, s := range data.SValues {
		res := results[s]
		data.Nodes[s] = res.Graph.NumNodes()
		data.Edges[s] = res.Graph.NumEdges()
		data.Components[s] = algo.ConnectedComponents(res.Graph).Count
	}
	// Betweenness at the largest s; hubs share >100 conditions so at
	// s=5 they are densely interconnected while noise genes fall away.
	sMax := data.SValues[len(data.SValues)-1]
	res := results[sMax]
	bc := algo.Betweenness(res.Graph, par.Options{Workers: workers})
	type scored struct {
		gene  uint32
		score float64
		deg   int
	}
	ranked := make([]scored, res.Graph.NumNodes())
	for node := range ranked {
		ranked[node] = scored{
			gene:  res.HyperedgeIDs[node],
			score: bc[node],
			deg:   res.Graph.Degree(uint32(node)),
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].deg != ranked[j].deg {
			return ranked[i].deg > ranked[j].deg
		}
		return ranked[i].gene < ranked[j].gene
	})
	for i := 0; i < len(ranked) && i < len(VirologyHubNames); i++ {
		data.TopGenes = append(data.TopGenes, ranked[i].gene)
		if int(ranked[i].gene) < len(VirologyHubNames) {
			data.TopGeneNames = append(data.TopGeneNames, VirologyHubNames[ranked[i].gene])
		} else {
			data.TopGeneNames = append(data.TopGeneNames, fmt.Sprintf("gene-%d", ranked[i].gene))
		}
	}

	fmt.Fprintln(w, "Figure 5 analog — virology gene line graphs")
	for _, s := range data.SValues {
		fmt.Fprintf(w, "  s=%d: %d genes, %d edges, %d components\n",
			s, data.Nodes[s], data.Edges[s], data.Components[s])
	}
	fmt.Fprintf(w, "  most central genes at s=%d: %v\n", sMax, data.TopGeneNames)
	return data
}

// Fig6Data reproduces Figure 6: normalized algebraic connectivity of
// the s-line graphs of the author-paper network for s = 1..16.
type Fig6Data struct {
	SValues      []int
	Connectivity map[int]float64
	NonEmptyMaxS int // largest s with a non-singleton component
}

// Fig6 computes the ensemble of s-line graphs and λ₂ of each.
func Fig6(w io.Writer, scale Scale, workers int) Fig6Data {
	h := CondMatAnalog(scale)
	data := Fig6Data{Connectivity: map[int]float64{}}
	for s := 1; s <= 16; s++ {
		data.SValues = append(data.SValues, s)
	}
	opt := core.PipelineConfig{Core: core.Config{Workers: workers}}
	results, _ := core.RunEnsemble(context.Background(), h, data.SValues, opt)
	fmt.Fprintln(w, "Figure 6 analog — normalized algebraic connectivity, author-paper network")
	for _, s := range data.SValues {
		res := results[s]
		lam := 0.0
		if res.Graph.NumEdges() > 0 {
			lam = spectral.NormalizedAlgebraicConnectivity(res.Graph, spectral.Options{})
			data.NonEmptyMaxS = s
		}
		data.Connectivity[s] = lam
		fmt.Fprintf(w, "  s=%-3d λ₂=%.4f (nodes=%d edges=%d)\n",
			s, lam, res.Graph.NumNodes(), res.Graph.NumEdges())
	}
	return data
}

// IMDBData reproduces §V-C: the s=101-connected components of the
// actor-movie network and the s-betweenness centralities inside them.
type IMDBData struct {
	S int
	// Components lists the non-singleton s-connected components as
	// actor-name lists.
	Components [][]string
	// Centrality[name] = normalized betweenness of planted actors
	// with non-zero score.
	Centrality map[string]float64
	// CCTime and BCTime are the metric-stage timings the paper quotes
	// (4µs / 15µs on its hardware).
	CCTime, BCTime time.Duration
}

// IMDB uncovers the planted collaboration groups.
func IMDB(w io.Writer, scale Scale, workers int) IMDBData {
	h := IMDBAnalog(scale)
	const s = 101
	data := IMDBData{S: s, Centrality: map[string]float64{}}
	cfg := core.PipelineConfig{Core: core.Config{Workers: workers}}
	res, _ := core.Run(context.Background(), h, s, cfg)

	t0 := time.Now()
	cc := algo.ConnectedComponents(res.Graph)
	data.CCTime = time.Since(t0)

	t1 := time.Now()
	bc := algo.Betweenness(res.Graph, par.Options{Workers: workers})
	data.BCTime = time.Since(t1)
	norm := algo.Normalize(bc)

	name := func(id uint32) string {
		if int(id) < len(IMDBActorNames) {
			return IMDBActorNames[id]
		}
		return fmt.Sprintf("actor-%d", id)
	}
	for _, members := range cc.Members() {
		if len(members) < 2 {
			continue
		}
		var names []string
		for _, node := range members {
			names = append(names, name(res.HyperedgeIDs[node]))
		}
		data.Components = append(data.Components, names)
	}
	for node := 0; node < res.Graph.NumNodes(); node++ {
		if norm[node] > 0 {
			data.Centrality[name(res.HyperedgeIDs[node])] = norm[node]
		}
	}

	fmt.Fprintf(w, "§V-C analog — IMDB %d-connected components (compute: %v)\n", s, data.CCTime)
	for _, comp := range data.Components {
		fmt.Fprintf(w, "  %v\n", comp)
	}
	fmt.Fprintf(w, "  %d-betweenness centrality (compute: %v)\n", s, data.BCTime)
	for n, c := range data.Centrality {
		fmt.Fprintf(w, "  %s (%.4f)\n", n, c)
	}
	return data
}
