package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative claims on the
// Scale-1 analogs: which method wins, how curves move with s, and
// which planted structures are recovered. Heavier experiments (fig7,
// fig8, fig9, fig11, table1, table5) are exercised by the benchmark
// harness; here we run the application experiments and light checks.

func TestFig2GoldenExample(t *testing.T) {
	out := Fig2(io.Discard)
	if len(out[1]) != 4 || len(out[2]) != 3 || len(out[3]) != 2 || len(out[4]) != 0 {
		t.Fatalf("Figure 2 edge counts wrong: %d/%d/%d/%d",
			len(out[1]), len(out[2]), len(out[3]), len(out[4]))
	}
}

func TestFig4EdgesDecayInS(t *testing.T) {
	data := Fig4(io.Discard, 1, 0)
	for _, ds := range []string{"disGeNet", "condMat", "compBoard", "lesMis"} {
		edges := data.Edges[ds]
		if edges == nil {
			t.Fatalf("%s missing", ds)
		}
		// Monotone non-increasing in s, strictly from s=1 to s=100.
		prev := edges[Fig4SValues[0]]
		for _, s := range Fig4SValues[1:] {
			if edges[s] > prev {
				t.Errorf("%s: edges grew from %d to %d at s=%d", ds, prev, edges[s], s)
			}
			prev = edges[s]
		}
		if edges[1] == 0 {
			t.Errorf("%s: empty 1-clique graph", ds)
		}
		if edges[1] <= edges[100]*10 && edges[1] > 100 {
			t.Errorf("%s: expected strong decay, got %d -> %d", ds, edges[1], edges[100])
		}
	}
}

func TestTable2PageRankStability(t *testing.T) {
	data := Table2(io.Discard, 1, 0)
	if len(data.Top5AtS1) != 5 {
		t.Fatalf("top-5 list has %d entries", len(data.Top5AtS1))
	}
	// Edge counts shrink drastically with s (2.7M / 246K / 12K in the
	// paper).
	if !(data.EdgeCounts[1] > data.EdgeCounts[10] && data.EdgeCounts[10] > data.EdgeCounts[100]) {
		t.Fatalf("edge counts not decreasing: %v", data.EdgeCounts)
	}
	// The planted hub diseases dominate at s=1 and their top ranks
	// persist at s=10 and s=100 (Table II's stability claim).
	for _, d := range data.Top5AtS1 {
		if d >= 8 {
			t.Errorf("top-5 disease %d is not a planted hub", d)
		}
		for _, s := range []int{10, 100} {
			if r := data.Rank[s][d]; r == 0 || r > 8 {
				t.Errorf("disease %d rank at s=%d is %d, want within hub range", d, s, r)
			}
		}
	}
	// Percentiles of the top disease stay in the top percentile.
	top := data.Top5AtS1[0]
	for _, s := range data.SValues {
		if p := data.Percentile[s][top]; p < 99 {
			t.Errorf("top disease percentile at s=%d dropped to %.2f", s, p)
		}
	}
	// Top-decile retention stays clearly non-trivial. (The paper
	// reports 92%/88%; our much smaller analog collapses harder at
	// high s because only the 8 planted hubs can share 100 genes, so
	// the bar here is qualitative: the retained set is dominated by
	// the same diseases, not reshuffled.)
	if data.Top400Retention[10] < 0.15 {
		t.Errorf("retention at s=10 is %.2f, want >= 0.15", data.Top400Retention[10])
	}
	if data.Top400Retention[100] <= 0 {
		t.Errorf("retention at s=100 is zero")
	}
}

func TestFig5RecoversPlantedGenes(t *testing.T) {
	data := Fig5(io.Discard, 1, 0)
	// The s=5 line graph is far smaller than s=1 (Fig. 5's
	// sparsification) ...
	if data.Nodes[5] >= data.Nodes[1] || data.Edges[5] >= data.Edges[1] {
		t.Fatalf("no sparsification: nodes %v edges %v", data.Nodes, data.Edges)
	}
	// ... and its most central genes are exactly the planted hubs.
	if len(data.TopGenes) != 6 {
		t.Fatalf("top genes = %d, want 6", len(data.TopGenes))
	}
	seen := map[uint32]bool{}
	for _, g := range data.TopGenes {
		if g >= 6 {
			t.Errorf("top gene %d is not a planted hub", g)
		}
		seen[g] = true
	}
	if len(seen) != 6 {
		t.Errorf("hub set incomplete: %v", data.TopGenes)
	}
	for _, name := range data.TopGeneNames {
		found := false
		for _, hub := range VirologyHubNames {
			if name == hub {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected top gene name %q", name)
		}
	}
}

func TestFig6ConnectivityShape(t *testing.T) {
	data := Fig6(io.Discard, 1, 0)
	if data.NonEmptyMaxS < 12 {
		t.Fatalf("s-line graphs die out at s=%d, want >= 12 (paper: 16)", data.NonEmptyMaxS)
	}
	for _, s := range data.SValues {
		lam := data.Connectivity[s]
		if lam < 0 || lam > 2 {
			t.Fatalf("λ₂ out of [0,2] at s=%d: %f", s, lam)
		}
	}
	// The paper's qualitative claim: connectivity at the highest
	// non-empty s (dense repeat-collaboration cores) well exceeds the
	// sparse mid-range.
	mid := data.Connectivity[4]
	high := data.Connectivity[data.NonEmptyMaxS]
	if high <= mid {
		t.Errorf("λ₂ did not rise at high s: mid(s=4)=%f high(s=%d)=%f", mid, data.NonEmptyMaxS, high)
	}
}

func TestIMDBPlantedComponents(t *testing.T) {
	data := IMDB(io.Discard, 1, 0)
	if len(data.Components) != 4 {
		t.Fatalf("components = %d, want 4", len(data.Components))
	}
	// The star component holds the five Malayalam-cinema actors.
	var star []string
	for _, comp := range data.Components {
		if len(comp) == 5 {
			star = comp
		} else if len(comp) != 2 {
			t.Errorf("unexpected component size %d: %v", len(comp), comp)
		}
	}
	if star == nil {
		t.Fatal("no 5-actor component found")
	}
	if strings.Join(star, ",") != "Adoor Bhasi,Bahadur,Paravoor Bharathan,Jayabharati,Prem Nazir" {
		t.Errorf("star component = %v", star)
	}
	// Only the star center has non-zero betweenness.
	if len(data.Centrality) != 1 {
		t.Fatalf("non-zero centralities = %v, want only Adoor Bhasi", data.Centrality)
	}
	if _, ok := data.Centrality["Adoor Bhasi"]; !ok {
		t.Fatalf("Adoor Bhasi missing from %v", data.Centrality)
	}
}

func TestTable3TwelveConfigs(t *testing.T) {
	if got := Table3(io.Discard); len(got) != 12 {
		t.Fatalf("Table III lists %d configs, want 12", len(got))
	}
}

func TestTable4Shapes(t *testing.T) {
	stats := Table4(io.Discard, 1)
	if len(stats) != 8 {
		t.Fatalf("Table IV rows = %d, want 8", len(stats))
	}
	byName := map[string]int{}
	for i, st := range stats {
		byName[st.Name] = i
		if st.Incidences == 0 {
			t.Errorf("%s is empty", st.Name)
		}
	}
	// Key shape facts from Table IV: DNS domains are tiny on average
	// (de ≈ 1-2) with rare CDN-like wide domains (∆e ≈ 1.3k in the
	// paper) and huge shared-hosting vertex degrees.
	dns := stats[byName["activeDNS"]]
	if dns.AvgEdgeSize > 4 || dns.MaxEdgeSize < 50 || dns.MaxVertexDegree < 1000 {
		t.Errorf("activeDNS shape wrong: %+v", dns)
	}
	lj := stats[byName["LiveJournal"]]
	if float64(lj.MaxEdgeSize) < 3*lj.AvgEdgeSize {
		t.Errorf("LiveJournal hyperedge sizes not skewed: %+v", lj)
	}
}

func TestFig10WorkloadBalance(t *testing.T) {
	data := Fig10(io.Discard, 1, 8)
	for _, n := range []string{"2BN", "2CN", "2BA", "2CA", "2BD", "2CD"} {
		if len(data.Visits[n]) == 0 {
			t.Fatalf("%s missing visit data", n)
		}
	}
	// Cyclic distribution balances better than blocked when IDs are
	// unrelabeled (the Fig. 10 observation).
	bn := data.Imbalance("2BN")
	cn := data.Imbalance("2CN")
	if cn > bn*1.5 {
		t.Errorf("cyclic (%.2fx) much worse than blocked (%.2fx), contradicting Fig. 10", cn, bn)
	}
}

func TestScaleClamp(t *testing.T) {
	if Scale(0).mul(5) != 5 || Scale(-3).mul(5) != 5 || Scale(2).mul(5) != 10 {
		t.Fatal("Scale.mul misbehaves")
	}
}
