// Package gen provides deterministic synthetic hypergraph generators
// that stand in for the paper's evaluation datasets (Table IV and the
// application datasets of §V). Real datasets such as LiveJournal,
// Friendster, activeDNS, the condMat author-paper network, the disGeNet
// disease-gene network, the virology transcriptomics data, and IMDB are
// not redistributable here, so each generator reproduces the structural
// features that drive the paper's algorithms: skewed hyperedge-size
// distributions, overlapping community structure (which produces
// non-trivial s-overlaps), hub vertices, and planted high-overlap cores.
//
// Every generator is a pure function of its configuration, including the
// Seed, so experiments are reproducible run to run.
package gen

import (
	"math/rand"

	"hyperline/internal/hg"
)

// ZipfConfig parameterizes the generic skewed bipartite generator.
type ZipfConfig struct {
	Seed        int64
	NumVertices int
	NumEdges    int
	// MeanEdgeSize is the expected hyperedge size; actual sizes are
	// geometric-like around the mean with a Zipf heavy tail.
	MeanEdgeSize int
	// Skew is the Zipf exponent (>1) for vertex popularity; larger
	// values concentrate mass on a few hub vertices. Values near
	// 1.05 are mild.
	Skew float64
	// SizeSkew is the Zipf exponent for the hyperedge-size tail
	// (default: Skew). Decoupling the two lets a dataset have a few
	// huge hyperedges over near-uniform vertex popularity (the Web
	// regime) or vice versa.
	SizeSkew float64
	// MaxEdgeSize caps hyperedge sizes (0 = NumVertices).
	MaxEdgeSize int
	// HeadFlatten is the Zipf "v" offset applied to vertex
	// popularity: P(k) ∝ 1/(v+k)^Skew. Larger values spread the head
	// mass over more hub vertices instead of concentrating it on one
	// (real web/social datasets have many hubs, not a single
	// super-hub). Default 4.
	HeadFlatten float64
}

// Zipf generates a bipartite hypergraph with Zipf-distributed vertex
// popularity and heavy-tailed hyperedge sizes. This is the stand-in for
// Web, email-EuAll, Amazon-reviews and Stackoverflow-answers: datasets
// whose only structural feature relevant to the algorithms is degree
// skew.
func Zipf(cfg ZipfConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Skew <= 1 {
		cfg.Skew = 1.1
	}
	if cfg.MeanEdgeSize < 1 {
		cfg.MeanEdgeSize = 4
	}
	maxSize := cfg.MaxEdgeSize
	if maxSize <= 0 || maxSize > cfg.NumVertices {
		maxSize = cfg.NumVertices
	}
	if cfg.HeadFlatten < 1 {
		cfg.HeadFlatten = 4
	}
	if cfg.SizeSkew <= 1 {
		cfg.SizeSkew = cfg.Skew
	}
	vz := rand.NewZipf(r, cfg.Skew, cfg.HeadFlatten, uint64(cfg.NumVertices-1))
	sz := rand.NewZipf(r, cfg.SizeSkew, float64(cfg.MeanEdgeSize), uint64(maxSize-1))

	b := hg.NewBuilder(cfg.NumEdges * cfg.MeanEdgeSize)
	for e := 0; e < cfg.NumEdges; e++ {
		size := int(sz.Uint64()) + 1
		if size > maxSize {
			size = maxSize
		}
		for k := 0; k < size; k++ {
			b.AddPair(uint32(e), uint32(vz.Uint64()))
		}
	}
	h, err := b.BuildWithSize(cfg.NumEdges, cfg.NumVertices)
	if err != nil {
		panic(err)
	}
	return h
}

// CommunityConfig parameterizes the planted-community generator.
type CommunityConfig struct {
	Seed           int64
	NumVertices    int
	NumCommunities int
	// MeanCommunitySize is the expected size of a community's vertex
	// pool; actual sizes are heavy-tailed (Zipf) to mimic the skewed
	// hyperedge-size distributions of social hypergraphs.
	MeanCommunitySize int
	// MaxCommunitySize caps the pool size (0 = no cap).
	MaxCommunitySize int
	// EdgesPerCommunity is the number of hyperedges sampled from each
	// community pool. Hyperedges from the same pool intersect in many
	// vertices, producing the s-overlap structure that makes s-line
	// graphs non-trivial for s ≫ 1.
	EdgesPerCommunity int
	// SampleFraction is the fraction of a community pool included in
	// each sampled hyperedge (0 < f ≤ 1; default 0.8).
	SampleFraction float64
	// Background adds this many uniformly random small hyperedges of
	// size 2-4 as noise.
	Background int
	// Bridge is the probability that a community pool member is drawn
	// uniformly from all vertices instead of near the community
	// anchor (default 0.1). Higher values create more low-overlap
	// pairs between large hyperedges — the regime where explicit set
	// intersections are most wasteful.
	Bridge float64
}

// Community generates a hypergraph of overlapping planted communities.
// It is the stand-in for the social-network datasets (LiveJournal,
// com-Orkut, Friendster), which the paper materializes by community
// detection: each community is a hyperedge and overlapping communities
// share members.
func Community(cfg CommunityConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		cfg.SampleFraction = 0.8
	}
	if cfg.EdgesPerCommunity < 1 {
		cfg.EdgesPerCommunity = 3
	}
	if cfg.MeanCommunitySize < 2 {
		cfg.MeanCommunitySize = 8
	}
	maxPool := cfg.MaxCommunitySize
	if maxPool <= 0 || maxPool > cfg.NumVertices {
		maxPool = cfg.NumVertices
	}
	poolZ := rand.NewZipf(r, 1.3, float64(cfg.MeanCommunitySize), uint64(maxPool-2))

	b := hg.NewBuilder(0)
	e := uint32(0)
	for c := 0; c < cfg.NumCommunities; c++ {
		poolSize := int(poolZ.Uint64()) + 2
		// Community pools are localized: draw members around a random
		// anchor so distinct communities overlap only occasionally.
		anchor := r.Intn(cfg.NumVertices)
		pool := make([]uint32, 0, poolSize)
		seen := map[uint32]bool{}
		for len(pool) < poolSize {
			// Mostly near the anchor, sometimes anywhere (bridges).
			bridge := cfg.Bridge
			if bridge <= 0 {
				bridge = 0.1
			}
			var v int
			if r.Float64() >= bridge {
				v = anchor + r.Intn(4*poolSize+1) - 2*poolSize
				v = ((v % cfg.NumVertices) + cfg.NumVertices) % cfg.NumVertices
			} else {
				v = r.Intn(cfg.NumVertices)
			}
			if !seen[uint32(v)] {
				seen[uint32(v)] = true
				pool = append(pool, uint32(v))
			}
		}
		for k := 0; k < cfg.EdgesPerCommunity; k++ {
			take := int(cfg.SampleFraction * float64(poolSize))
			if take < 2 {
				take = 2
			}
			r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
			b.AddEdge(e, pool[:take]...)
			e++
		}
	}
	for k := 0; k < cfg.Background; k++ {
		size := 2 + r.Intn(3)
		for j := 0; j < size; j++ {
			b.AddPair(e, uint32(r.Intn(cfg.NumVertices)))
		}
		e++
	}
	h, err := b.BuildWithSize(int(e), cfg.NumVertices)
	if err != nil {
		panic(err)
	}
	return h
}

// DNSConfig parameterizes the activeDNS-like generator.
type DNSConfig struct {
	Seed int64
	// Files scales the dataset the way the paper's weak-scaling
	// experiment scales AVRO file counts (dns_4 ... dns_128): domains
	// and IPs grow linearly in Files.
	Files          int
	DomainsPerFile int // hyperedges (domains) per file
	IPsPerFile     int // vertices (IPs) per file
	// WideEvery plants one CDN-like wide domain (hundreds of IPs, the
	// source of activeDNS's ∆e ≈ 1.3k) per this many ordinary
	// domains. 0 = 1000; negative disables wide domains.
	WideEvery int
}

// DNSLike generates an activeDNS-style hypergraph: very many tiny
// hyperedges (domains mapping to 1-3 IPs) over a vertex set with a few
// enormous shared-hosting IPs (∆v ≫ average), plus sparse CDN-like wide
// domains. Domains resolve mostly to IPs observed in the same file
// (observations are temporally local), so doubling Files doubles the
// work — the property the weak-scaling experiment (Fig. 9) relies on.
func DNSLike(cfg DNSConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Files < 1 {
		cfg.Files = 1
	}
	if cfg.DomainsPerFile < 1 {
		cfg.DomainsPerFile = 10000
	}
	if cfg.IPsPerFile < 1 {
		cfg.IPsPerFile = 1000
	}
	if cfg.WideEvery == 0 {
		cfg.WideEvery = 1000
	}
	m := cfg.Files * cfg.DomainsPerFile
	n := cfg.Files * cfg.IPsPerFile
	localZ := rand.NewZipf(r, 1.2, 1, uint64(cfg.IPsPerFile-1))
	b := hg.NewBuilder(2 * m)
	ip := func(file int) uint32 {
		// 90% of resolutions land in the file's own IP block.
		if r.Float64() < 0.9 {
			return uint32(file*cfg.IPsPerFile + int(localZ.Uint64()))
		}
		return uint32(r.Intn(n))
	}
	for e := 0; e < m; e++ {
		file := e / cfg.DomainsPerFile
		size := 1 + r.Intn(3)
		if cfg.WideEvery > 0 && e%cfg.WideEvery == 0 {
			// CDN-like wide domain over the file's hot IPs; pairs of
			// wide domains in one file overlap in many IPs.
			size = cfg.IPsPerFile/8 + r.Intn(cfg.IPsPerFile/4)
		}
		for k := 0; k < size; k++ {
			b.AddPair(uint32(e), ip(file))
		}
	}
	h, err := b.BuildWithSize(m, n)
	if err != nil {
		panic(err)
	}
	return h
}

// AuthorPaperConfig parameterizes the collaboration-network generator.
type AuthorPaperConfig struct {
	Seed        int64
	NumAuthors  int
	NumClusters int
	// ClusterSize is the typical number of authors in a collaboration
	// cluster; actual sizes are heavy-tailed between ClusterSize and
	// MaxClusterSize, so a few large collaborations exist (these are
	// what keep Ls(H) non-empty at high s).
	ClusterSize int
	// MaxClusterSize caps cluster sizes (0 = ClusterSize, i.e. all
	// clusters the same size).
	MaxClusterSize int
	// PapersPerCluster is how many papers each cluster co-authors;
	// repeat collaborations are what make Ls(H) non-empty for large
	// s. A handful of "prolific" clusters publish 2× as many.
	PapersPerCluster int
	// SoloPapers adds single- or two-author papers as background.
	SoloPapers int
}

// AuthorPaper generates a condMat-style author-paper hypergraph:
// vertices are authors, hyperedges are papers (the paper's §V-B
// orientation is the reverse — there hyperedges are papers over author
// vertices — which is what we build). Collaboration clusters publish
// repeatedly together, so pairs of papers from one cluster share up to
// ClusterSize authors and pairs of authors share up to PapersPerCluster
// papers.
func AuthorPaper(cfg AuthorPaperConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ClusterSize < 2 {
		cfg.ClusterSize = 4
	}
	if cfg.PapersPerCluster < 1 {
		cfg.PapersPerCluster = 4
	}
	maxCS := cfg.MaxClusterSize
	if maxCS < cfg.ClusterSize {
		maxCS = cfg.ClusterSize
	}
	var sizeZ *rand.Zipf
	if maxCS > cfg.ClusterSize {
		sizeZ = rand.NewZipf(r, 1.5, float64(cfg.ClusterSize), uint64(maxCS-cfg.ClusterSize))
	}
	b := hg.NewBuilder(0)
	e := uint32(0)
	for c := 0; c < cfg.NumClusters; c++ {
		size := cfg.ClusterSize
		if sizeZ != nil {
			size += int(sizeZ.Uint64())
		}
		// Cluster members: contiguous block plus a couple of random
		// outside collaborators so clusters interlink.
		base := r.Intn(cfg.NumAuthors)
		members := make([]uint32, 0, size+2)
		for k := 0; k < size; k++ {
			members = append(members, uint32((base+k)%cfg.NumAuthors))
		}
		members = append(members, uint32(r.Intn(cfg.NumAuthors)), uint32(r.Intn(cfg.NumAuthors)))
		papers := cfg.PapersPerCluster
		if c%7 == 0 {
			papers *= 2 // prolific clusters: deep repeat collaboration
		}
		for p := 0; p < papers; p++ {
			// Each paper includes the cluster core and a random
			// subset of the extras.
			paper := members[:size]
			b.AddEdge(e, paper...)
			for _, x := range members[size:] {
				if r.Float64() < 0.5 {
					b.AddPair(e, x)
				}
			}
			e++
		}
	}
	for k := 0; k < cfg.SoloPapers; k++ {
		b.AddPair(e, uint32(r.Intn(cfg.NumAuthors)))
		if r.Float64() < 0.5 {
			b.AddPair(e, uint32(r.Intn(cfg.NumAuthors)))
		}
		e++
	}
	h, err := b.BuildWithSize(int(e), cfg.NumAuthors)
	if err != nil {
		panic(err)
	}
	return h
}

// GeneConditionConfig parameterizes the transcriptomics generator of
// §V-A (Fig. 5).
type GeneConditionConfig struct {
	Seed int64
	// NumConditions is the number of experimental conditions
	// (vertices); the paper's virology data has 201.
	NumConditions int
	// NumGenes is the number of genes (hyperedges); the paper has
	// 9760.
	NumGenes int
	// Hubs is the number of planted "critical" genes perturbed in
	// most conditions together (the IFIT1/USP18 analogs). They share
	// > HubShared conditions pairwise.
	Hubs      int
	HubShared int
	// MeanPerturbed is the mean number of conditions in which an
	// ordinary gene is perturbed.
	MeanPerturbed int
}

// GeneCondition generates the virology-genomics-style hypergraph:
// hyperedges are genes and vertices are experimental conditions in
// which the gene is perturbed. A small set of planted hub genes is
// perturbed together in more than HubShared shared conditions, so the
// s-line graph at high s isolates exactly those genes — the structure
// Fig. 5 visualizes.
func GeneCondition(cfg GeneConditionConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NumConditions < 1 {
		cfg.NumConditions = 201
	}
	if cfg.MeanPerturbed < 1 {
		cfg.MeanPerturbed = 3
	}
	if cfg.HubShared <= 0 {
		cfg.HubShared = cfg.NumConditions / 2
	}
	b := hg.NewBuilder(0)
	// Hub genes occupy IDs 0..Hubs-1 and share the first HubShared
	// conditions (plus private noise).
	for g := 0; g < cfg.Hubs; g++ {
		for c := 0; c < cfg.HubShared; c++ {
			b.AddPair(uint32(g), uint32(c))
		}
		extra := r.Intn(cfg.NumConditions / 8)
		for k := 0; k < extra; k++ {
			b.AddPair(uint32(g), uint32(r.Intn(cfg.NumConditions)))
		}
	}
	for g := cfg.Hubs; g < cfg.NumGenes; g++ {
		size := 1 + r.Intn(2*cfg.MeanPerturbed)
		for k := 0; k < size; k++ {
			b.AddPair(uint32(g), uint32(r.Intn(cfg.NumConditions)))
		}
	}
	h, err := b.BuildWithSize(cfg.NumGenes, cfg.NumConditions)
	if err != nil {
		panic(err)
	}
	return h
}

// GeneDiseaseConfig parameterizes the disGeNet-style generator used by
// Table II (PageRank stability) and Fig. 4.
type GeneDiseaseConfig struct {
	Seed        int64
	NumGenes    int // vertices
	NumDiseases int // hyperedges
	// HubDiseases is the number of planted high-degree diseases (the
	// "malignant neoplasm of breast" analogs). Hub k has a gene set
	// whose size decays with k, and hubs share a common gene core so
	// they stay linked even at high s.
	HubDiseases int
	HubCoreSize int
	// MeanGenes is the mean gene count of an ordinary disease.
	MeanGenes int
	// PopularDiseases is the size of a mid-tier of diseases that draw
	// their genes from a shared hot pool, so they frequently overlap
	// in ≥10 genes (they populate the s=10 clique graph the way real
	// disGeNet does) but rarely in ≥100.
	PopularDiseases int
	// PopularPool is the hot-pool size (default 400).
	PopularPool int
	// PopularMean is the mean gene count of a mid-tier disease
	// (default 50).
	PopularMean int
}

// GeneDisease generates a disGeNet-style disease-gene hypergraph:
// hyperedges are diseases, vertices are associated genes. The planted
// hub diseases share a large common gene core, so their PageRank
// dominance in the clique expansion (s=1) survives the s=10 and s=100
// higher-order clique expansions — the phenomenon of Table II.
func GeneDisease(cfg GeneDiseaseConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.HubCoreSize <= 0 {
		cfg.HubCoreSize = 150
	}
	if cfg.MeanGenes < 1 {
		cfg.MeanGenes = 5
	}
	b := hg.NewBuilder(0)
	for d := 0; d < cfg.HubDiseases; d++ {
		// Shared core (genes 0..HubCoreSize-1), shrinking with rank
		// so hub 0 dominates.
		core := cfg.HubCoreSize * (cfg.HubDiseases + 2 - d) / (cfg.HubDiseases + 2)
		for g := 0; g < core; g++ {
			b.AddPair(uint32(d), uint32(g))
		}
		// Private periphery proportional to rank.
		extra := cfg.HubCoreSize * (cfg.HubDiseases - d)
		for k := 0; k < extra; k++ {
			b.AddPair(uint32(d), uint32(r.Intn(cfg.NumGenes)))
		}
	}
	pool := cfg.PopularPool
	if pool <= 0 {
		pool = 400
	}
	if pool > cfg.NumGenes {
		pool = cfg.NumGenes
	}
	popMean := cfg.PopularMean
	if popMean <= 0 {
		popMean = 50
	}
	midEnd := cfg.HubDiseases + cfg.PopularDiseases
	if midEnd > cfg.NumDiseases {
		midEnd = cfg.NumDiseases
	}
	for d := cfg.HubDiseases; d < midEnd; d++ {
		size := popMean/2 + r.Intn(popMean)
		for k := 0; k < size; k++ {
			b.AddPair(uint32(d), uint32(r.Intn(pool)))
		}
	}
	for d := midEnd; d < cfg.NumDiseases; d++ {
		size := 1 + r.Intn(2*cfg.MeanGenes)
		for k := 0; k < size; k++ {
			b.AddPair(uint32(d), uint32(r.Intn(cfg.NumGenes)))
		}
	}
	h, err := b.BuildWithSize(cfg.NumDiseases, cfg.NumGenes)
	if err != nil {
		panic(err)
	}
	return h
}

// ActorMovieConfig parameterizes the IMDB-style generator of §V-C.
type ActorMovieConfig struct {
	Seed      int64
	NumMovies int // vertices
	NumActors int // hyperedges
	// StarGroups plants groups of actors who collaborated in more
	// than SharedMovies movies. Each planted group is a star: a
	// center actor shares SharedMovies movies with each satellite,
	// but satellites share movies only through the center, making the
	// center the unique actor with non-zero betweenness (the Adoor
	// Bhasi structure of §V-C).
	StarGroups   int
	GroupSize    int
	SharedMovies int
	// GroupSizes, when non-nil, overrides StarGroups/GroupSize with
	// explicit per-group sizes — e.g. {5, 2, 2, 2} reproduces the
	// four 100-connected components the paper reports on IMDB.
	GroupSizes     []int
	MeanFilmograph int // mean movies for an ordinary actor
}

// ActorMovie generates an IMDB-style hypergraph: hyperedges are actors,
// vertices are movies; actors are s-incident when they share at least s
// movies. The planted star group is recovered as an s-connected
// component for s = SharedMovies, with only the center actor having a
// non-zero s-betweenness centrality.
func ActorMovie(cfg ActorMovieConfig) *hg.Hypergraph {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.GroupSize < 2 {
		cfg.GroupSize = 5
	}
	if cfg.SharedMovies < 1 {
		cfg.SharedMovies = 100
	}
	if cfg.MeanFilmograph < 1 {
		cfg.MeanFilmograph = 4
	}
	groups := cfg.GroupSizes
	if groups == nil {
		for g := 0; g < cfg.StarGroups; g++ {
			groups = append(groups, cfg.GroupSize)
		}
	}
	b := hg.NewBuilder(0)
	actor := uint32(0)
	movie := 0
	for _, size := range groups {
		center := actor
		actor++
		for sat := 1; sat < size; sat++ {
			satellite := actor
			actor++
			// The center and this satellite appear together in
			// SharedMovies fresh movies; satellites never co-star
			// without the center.
			for k := 0; k < cfg.SharedMovies; k++ {
				b.AddPair(center, uint32(movie))
				b.AddPair(satellite, uint32(movie))
				movie++
			}
		}
	}
	for int(actor) < cfg.NumActors {
		size := 1 + r.Intn(2*cfg.MeanFilmograph)
		for k := 0; k < size; k++ {
			b.AddPair(actor, uint32(r.Intn(cfg.NumMovies)))
		}
		actor++
	}
	if movie < cfg.NumMovies {
		movie = cfg.NumMovies
	}
	h, err := b.BuildWithSize(int(actor), movie)
	if err != nil {
		panic(err)
	}
	return h
}
