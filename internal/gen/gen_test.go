package gen

import (
	"testing"

	"hyperline/internal/hg"
)

func TestZipfDeterministic(t *testing.T) {
	cfg := ZipfConfig{Seed: 7, NumVertices: 500, NumEdges: 300, MeanEdgeSize: 4, Skew: 1.2}
	a, b := Zipf(cfg), Zipf(cfg)
	if a.Incidences() != b.Incidences() {
		t.Fatal("Zipf not deterministic")
	}
	for e := 0; e < a.NumEdges(); e++ {
		av, bv := a.EdgeVertices(uint32(e)), b.EdgeVertices(uint32(e))
		if len(av) != len(bv) {
			t.Fatalf("edge %d size differs", e)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("edge %d differs", e)
			}
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZipfShape(t *testing.T) {
	h := Zipf(ZipfConfig{Seed: 1, NumVertices: 2000, NumEdges: 1000, MeanEdgeSize: 5, Skew: 1.3})
	if h.NumEdges() != 1000 || h.NumVertices() != 2000 {
		t.Fatalf("wrong dims: %d, %d", h.NumEdges(), h.NumVertices())
	}
	s := hg.ComputeStats("z", h)
	// Zipf popularity must concentrate on hubs: ∆v far above average.
	if float64(s.MaxVertexDegree) < 5*s.AvgVertexDegree {
		t.Fatalf("no hub vertices: max %d vs avg %.1f", s.MaxVertexDegree, s.AvgVertexDegree)
	}
}

func TestCommunityOverlapStructure(t *testing.T) {
	h := Community(CommunityConfig{
		Seed: 3, NumVertices: 1000, NumCommunities: 50,
		MeanCommunitySize: 12, EdgesPerCommunity: 4, Background: 100,
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges sampled from the same community pool must share many
	// vertices: find at least one pair with overlap >= 4.
	found := false
	for e := 0; e+1 < 50*4 && !found; e += 4 {
		if h.Inc(uint32(e), uint32(e+1)) >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("no high-overlap pair found in community hypergraph")
	}
}

func TestDNSLikeShape(t *testing.T) {
	h := DNSLike(DNSConfig{Seed: 5, Files: 2, DomainsPerFile: 2000, IPsPerFile: 300, WideEvery: -1})
	if h.NumEdges() != 4000 || h.NumVertices() != 600 {
		t.Fatalf("wrong dims: %d, %d", h.NumEdges(), h.NumVertices())
	}
	if h.MaxEdgeSize() > 3 {
		t.Fatalf("domain with %d IPs, want <= 3", h.MaxEdgeSize())
	}
	// Shared-hosting IPs must dominate: ∆v much larger than ∆e.
	if h.MaxVertexDegree() < 10*h.MaxEdgeSize() {
		t.Fatalf("∆v=%d not ≫ ∆e=%d", h.MaxVertexDegree(), h.MaxEdgeSize())
	}
}

func TestDNSLikeWideDomains(t *testing.T) {
	h := DNSLike(DNSConfig{Seed: 5, Files: 2, DomainsPerFile: 2000, IPsPerFile: 300, WideEvery: 500})
	// Wide domains give activeDNS its large ∆e; two wide domains from
	// the same file must share many IPs (non-empty high-s line graph).
	if h.MaxEdgeSize() < 30 {
		t.Fatalf("∆e = %d, want CDN-like wide domains", h.MaxEdgeSize())
	}
	if got := h.Inc(0, 500); got < 8 {
		t.Fatalf("wide domains share %d IPs, want >= 8", got)
	}
	// Ordinary domains stay tiny.
	if h.EdgeSize(1) > 3 {
		t.Fatalf("ordinary domain has %d IPs", h.EdgeSize(1))
	}
}

func TestDNSLikeScalesWithFiles(t *testing.T) {
	h1 := DNSLike(DNSConfig{Seed: 5, Files: 1, DomainsPerFile: 1000, IPsPerFile: 100})
	h2 := DNSLike(DNSConfig{Seed: 5, Files: 2, DomainsPerFile: 1000, IPsPerFile: 100})
	if h2.NumEdges() != 2*h1.NumEdges() {
		t.Fatalf("edges did not double: %d vs %d", h1.NumEdges(), h2.NumEdges())
	}
}

func TestAuthorPaperRepeatCollaboration(t *testing.T) {
	h := AuthorPaper(AuthorPaperConfig{
		Seed: 11, NumAuthors: 500, NumClusters: 40,
		ClusterSize: 4, PapersPerCluster: 6, SoloPapers: 50,
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two papers from the same cluster share the 4-author core.
	if h.Inc(0, 1) < 4 {
		t.Fatalf("cluster papers share %d authors, want >= 4", h.Inc(0, 1))
	}
	// Dual view: two core authors share >= PapersPerCluster papers.
	d := h.Dual()
	a0 := h.EdgeVertices(0)[0]
	a1 := h.EdgeVertices(0)[1]
	if d.Inc(a0, a1) < 6 {
		t.Fatalf("core authors share %d papers, want >= 6", d.Inc(a0, a1))
	}
}

func TestGeneConditionPlantedHubs(t *testing.T) {
	h := GeneCondition(GeneConditionConfig{
		Seed: 13, NumConditions: 201, NumGenes: 800, Hubs: 6, HubShared: 110,
	})
	if h.NumVertices() != 201 || h.NumEdges() != 800 {
		t.Fatalf("wrong dims: %d, %d", h.NumVertices(), h.NumEdges())
	}
	// Hub genes 0 and 1 share more than 100 conditions (the
	// IFIT1/USP18 property of §V-A).
	if got := h.Inc(0, 1); got < 100 {
		t.Fatalf("hub genes share %d conditions, want > 100", got)
	}
	// Ordinary genes stay small.
	if h.EdgeSize(uint32(h.NumEdges()-1)) > 30 {
		t.Fatal("background gene unexpectedly large")
	}
}

func TestGeneDiseaseHubDominance(t *testing.T) {
	h := GeneDisease(GeneDiseaseConfig{
		Seed: 17, NumGenes: 3000, NumDiseases: 500, HubDiseases: 8, HubCoreSize: 120,
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hub diseases share a core of >= 100 genes pairwise.
	if got := h.Inc(0, 1); got < 100 {
		t.Fatalf("hub diseases share %d genes, want >= 100", got)
	}
	// Hub 0 is the largest hyperedge.
	max := 0
	for e := 1; e < h.NumEdges(); e++ {
		if s := h.EdgeSize(uint32(e)); s > max {
			max = s
		}
	}
	if h.EdgeSize(0) < max {
		t.Fatalf("hub 0 size %d below max %d", h.EdgeSize(0), max)
	}
}

func TestActorMovieStarStructure(t *testing.T) {
	h := ActorMovie(ActorMovieConfig{
		Seed: 19, NumMovies: 5000, NumActors: 300,
		StarGroups: 1, GroupSize: 5, SharedMovies: 100,
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Center (actor 0) shares exactly 100 movies with each satellite.
	for sat := uint32(1); sat < 5; sat++ {
		if got := h.Inc(0, sat); got != 100 {
			t.Fatalf("center shares %d movies with satellite %d, want 100", got, sat)
		}
	}
	// Satellites share no movies with each other.
	if got := h.Inc(1, 2); got != 0 {
		t.Fatalf("satellites share %d movies, want 0", got)
	}
}

func TestGeneratorsNonEmpty(t *testing.T) {
	gens := map[string]*hg.Hypergraph{
		"zipf":      Zipf(ZipfConfig{Seed: 1, NumVertices: 100, NumEdges: 50}),
		"community": Community(CommunityConfig{Seed: 1, NumVertices: 100, NumCommunities: 5}),
		"dns":       DNSLike(DNSConfig{Seed: 1, Files: 1, DomainsPerFile: 100, IPsPerFile: 20}),
		"authors":   AuthorPaper(AuthorPaperConfig{Seed: 1, NumAuthors: 50, NumClusters: 5}),
		"genes":     GeneCondition(GeneConditionConfig{Seed: 1, NumGenes: 50, Hubs: 2, HubShared: 20}),
		"disease":   GeneDisease(GeneDiseaseConfig{Seed: 1, NumGenes: 200, NumDiseases: 30, HubDiseases: 2}),
		"actors":    ActorMovie(ActorMovieConfig{Seed: 1, NumMovies: 500, NumActors: 40, StarGroups: 1, GroupSize: 3, SharedMovies: 10}),
	}
	for name, h := range gens {
		if h.Incidences() == 0 {
			t.Errorf("%s: empty hypergraph", name)
		}
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
