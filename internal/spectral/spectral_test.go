package spectral

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyperline/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: 1})
	}
	return graph.Build(n, edges, false)
}

func completeGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j), W: 1})
		}
	}
	return graph.Build(n, edges, false)
}

func cycleGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32((i + 1) % n), W: 1})
	}
	return graph.Build(n, edges, false)
}

// jacobiEigenvalues computes all eigenvalues of a dense symmetric
// matrix with the cyclic Jacobi method (test oracle).
func jacobiEigenvalues(a [][]float64) []float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	for sweep := 0; sweep < 200; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m[i][i]
	}
	sort.Float64s(eig)
	return eig
}

func denseNormalizedLaplacian(g *graph.Graph) [][]float64 {
	n := g.NumNodes()
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		du := float64(g.Degree(uint32(u)))
		if du > 0 {
			l[u][u] = 1
		}
		ids, _ := g.Neighbors(uint32(u))
		for _, v := range ids {
			dv := float64(g.Degree(v))
			l[u][int(v)] = -1 / math.Sqrt(du*dv)
		}
	}
	return l
}

func denseLaplacian(g *graph.Graph) [][]float64 {
	n := g.NumNodes()
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		l[u][u] = float64(g.Degree(uint32(u)))
		ids, _ := g.Neighbors(uint32(u))
		for _, v := range ids {
			l[u][int(v)] = -1
		}
	}
	return l
}

func TestNormalizedConnectivityCompleteGraph(t *testing.T) {
	// For K_n, the normalized Laplacian eigenvalues are 0 and
	// n/(n-1): λ₂ = n/(n-1).
	for _, n := range []int{3, 5, 8} {
		got := NormalizedAlgebraicConnectivity(completeGraph(n), Options{})
		want := float64(n) / float64(n-1)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("K_%d: λ₂ = %f, want %f", n, got, want)
		}
	}
}

func TestNormalizedConnectivityCycle(t *testing.T) {
	// For the n-cycle (2-regular), L̂ = L/2, so λ₂ = 1 - cos(2π/n).
	for _, n := range []int{4, 6, 10} {
		got := NormalizedAlgebraicConnectivity(cycleGraph(n), Options{})
		want := 1 - math.Cos(2*math.Pi/float64(n))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("C_%d: λ₂ = %f, want %f", n, got, want)
		}
	}
}

func TestNormalizedConnectivitySingleEdge(t *testing.T) {
	// K_2: eigenvalues {0, 2} → λ₂ = 2.
	got := NormalizedAlgebraicConnectivity(completeGraph(2), Options{})
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("K_2: λ₂ = %f, want 2", got)
	}
}

func TestNormalizedConnectivityTinyOrEmpty(t *testing.T) {
	if got := NormalizedAlgebraicConnectivity(graph.Build(0, nil, false), Options{}); got != 0 {
		t.Fatalf("empty graph λ₂ = %f, want 0", got)
	}
	if got := NormalizedAlgebraicConnectivity(graph.Build(3, nil, false), Options{}); got != 0 {
		t.Fatalf("edgeless graph λ₂ = %f, want 0", got)
	}
}

func TestNormalizedConnectivityMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(10)
		var edges []graph.Edge
		// Random connected-ish graph: spanning path + random extras.
		for i := 0; i < n-1; i++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: 1})
		}
		for k := 0; k < n; k++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			}
		}
		g := graph.Build(n, edges, false)
		got := NormalizedAlgebraicConnectivity(g, Options{Tol: 1e-13})
		eig := jacobiEigenvalues(denseNormalizedLaplacian(g))
		want := eig[1]
		return math.Abs(got-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgebraicConnectivityPath(t *testing.T) {
	// Fiedler value of the n-path: 2(1 - cos(π/n)).
	for _, n := range []int{3, 5, 9} {
		got := AlgebraicConnectivity(pathGraph(n), Options{})
		want := 2 * (1 - math.Cos(math.Pi/float64(n)))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("P_%d: Fiedler = %f, want %f", n, got, want)
		}
	}
}

func TestAlgebraicConnectivityMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		var edges []graph.Edge
		for i := 0; i < n-1; i++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: 1})
		}
		for k := 0; k < n/2; k++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			}
		}
		g := graph.Build(n, edges, false)
		got := AlgebraicConnectivity(g, Options{Tol: 1e-13})
		want := jacobiEigenvalues(denseLaplacian(g))[1]
		return math.Abs(got-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponentSelection(t *testing.T) {
	// Components {0,1,2} (triangle) and {3,4} (edge): largest is the
	// triangle.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1},
	}
	g := graph.Build(6, edges, false)
	sub := LargestComponent(g)
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("largest component %d nodes %d edges, want 3, 3", sub.NumNodes(), sub.NumEdges())
	}
	// λ₂ of the whole (disconnected) graph per our definition = λ₂ of
	// the triangle = 3/2.
	got := NormalizedAlgebraicConnectivity(g, Options{})
	if math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("λ₂ = %f, want 1.5", got)
	}
}

func TestConnectivityOrderingStarVsComplete(t *testing.T) {
	// Denser graphs are better connected: λ₂(K_6) > λ₂(C_6) —
	// the qualitative signal Fig. 6 relies on.
	k := NormalizedAlgebraicConnectivity(completeGraph(6), Options{})
	c := NormalizedAlgebraicConnectivity(cycleGraph(6), Options{})
	if k <= c {
		t.Fatalf("λ₂(K_6)=%f should exceed λ₂(C_6)=%f", k, c)
	}
}
