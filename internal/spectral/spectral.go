// Package spectral implements the spectral analysis layer of the
// framework: the normalized Laplacian of a graph and its normalized
// algebraic connectivity (the second-smallest eigenvalue λ₂), which the
// paper uses on ensembles of s-line graphs to quantify how strongly the
// connected components of each Ls(H) remain connected (Fig. 6).
//
// The paper argues (§I) that no simple eigenvalue-preserving relation
// links the rectangular incidence matrix H to the s-line graph spectra,
// which is why the s-line graphs must be materialized first; this
// package is the stage applied after materialization.
package spectral

import (
	"math"

	"hyperline/internal/algo"
	"hyperline/internal/graph"
)

// Options configures the eigensolver.
type Options struct {
	// Tol is the convergence tolerance on the Rayleigh-quotient
	// residual (default 1e-10).
	Tol float64
	// MaxIter bounds the power-iteration count (default 10000).
	MaxIter int
}

func (o Options) defaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	return o
}

// NormalizedAlgebraicConnectivity returns λ₂ of the normalized
// Laplacian L̂ = I − D^{-1/2} A D^{-1/2} of the subgraph induced by the
// largest connected component of g (isolated nodes and smaller
// components are excluded, as is standard when reporting the
// connectivity of a fragmented s-line graph). Larger values mean the
// component is more strongly connected. Returns 0 when the largest
// component has fewer than 2 nodes.
//
// Implementation: eigenvalues of L̂ lie in [0, 2] and B = 2I − L̂ has
// the same eigenvectors with eigenvalues 2 − λ, so λ₂(L̂) is found by
// power iteration on B after deflating B's known top eigenvector
// D^{1/2}·1 (eigenvalue 2, since the component is connected).
func NormalizedAlgebraicConnectivity(g *graph.Graph, opt Options) float64 {
	sub := LargestComponent(g)
	return normalizedLambda2Connected(sub, opt)
}

// LargestComponent returns the subgraph induced by the largest
// connected component of g (ties broken by smallest representative).
// Node IDs are squeezed; the result is connected by construction.
func LargestComponent(g *graph.Graph) *graph.Graph {
	cc := algo.ConnectedComponents(g)
	sizes := map[uint32]int{}
	for _, l := range cc.Label {
		sizes[l]++
	}
	best := uint32(0)
	bestSize := -1
	for l, n := range sizes {
		if n > bestSize || (n == bestSize && l < best) {
			best, bestSize = l, n
		}
	}
	var edges []graph.Edge
	for _, e := range g.Edges() {
		if cc.Label[e.U] == best {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		return graph.Build(0, nil, false)
	}
	return graph.Build(g.NumNodes(), edges, true)
}

// normalizedLambda2Connected computes λ₂(L̂) of a connected graph.
func normalizedLambda2Connected(g *graph.Graph, opt Options) float64 {
	opt = opt.defaults()
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	// φ = D^{1/2}·1 normalized — the top eigenvector of B = 2I − L̂.
	phi := make([]float64, n)
	var norm float64
	for u := 0; u < n; u++ {
		d := float64(g.Degree(uint32(u)))
		phi[u] = math.Sqrt(d)
		norm += d
	}
	norm = math.Sqrt(norm)
	for u := range phi {
		phi[u] /= norm
	}

	// Deterministic start vector, deflated against φ.
	x := make([]float64, n)
	for u := range x {
		x[u] = math.Sin(float64(u+1)) + 0.5
	}
	deflate(x, phi)
	normalize(x)

	y := make([]float64, n)
	invSqrtDeg := make([]float64, n)
	for u := 0; u < n; u++ {
		invSqrtDeg[u] = 1 / math.Sqrt(float64(g.Degree(uint32(u))))
	}

	var mu float64
	for iter := 0; iter < opt.MaxIter; iter++ {
		// y = Bx = x + D^{-1/2} A D^{-1/2} x.
		for u := 0; u < n; u++ {
			sum := 0.0
			ids, _ := g.Neighbors(uint32(u))
			for _, v := range ids {
				sum += invSqrtDeg[v] * x[v]
			}
			y[u] = x[u] + invSqrtDeg[u]*sum
		}
		deflate(y, phi)
		// Rayleigh quotient μ = xᵀBx (x is unit).
		newMu := dot(x, y)
		ynorm := normalize(y)
		if ynorm == 0 {
			// x lies in the kernel of the deflated operator:
			// λ₂(L̂) = 2 exactly (e.g. a single edge).
			return 2
		}
		x, y = y, x
		if iter > 0 && math.Abs(newMu-mu) < opt.Tol {
			mu = newMu
			break
		}
		mu = newMu
	}
	lambda2 := 2 - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2
}

// AlgebraicConnectivity returns λ₂ of the combinatorial Laplacian
// L = D − A of the largest connected component (Fiedler value). Uses
// power iteration on cI − L with c = 2·∆+1 and deflation of the
// all-ones vector.
func AlgebraicConnectivity(g *graph.Graph, opt Options) float64 {
	opt = opt.defaults()
	sub := LargestComponent(g)
	n := sub.NumNodes()
	if n < 2 {
		return 0
	}
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := sub.Degree(uint32(u)); d > maxDeg {
			maxDeg = d
		}
	}
	c := float64(2*maxDeg + 1)
	phi := make([]float64, n)
	for u := range phi {
		phi[u] = 1 / math.Sqrt(float64(n))
	}
	x := make([]float64, n)
	for u := range x {
		x[u] = math.Cos(float64(u+1)) + 0.25
	}
	deflate(x, phi)
	normalize(x)
	y := make([]float64, n)
	var mu float64
	for iter := 0; iter < opt.MaxIter; iter++ {
		for u := 0; u < n; u++ {
			d := float64(sub.Degree(uint32(u)))
			sum := 0.0
			ids, _ := sub.Neighbors(uint32(u))
			for _, v := range ids {
				sum += x[v]
			}
			y[u] = (c-d)*x[u] + sum
		}
		deflate(y, phi)
		newMu := dot(x, y)
		if normalize(y) == 0 {
			return c
		}
		x, y = y, x
		if iter > 0 && math.Abs(newMu-mu) < opt.Tol {
			mu = newMu
			break
		}
		mu = newMu
	}
	lambda2 := c - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2
}

func deflate(x, phi []float64) {
	p := dot(x, phi)
	for i := range x {
		x[i] -= p * phi[i]
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) float64 {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}
