package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperline/internal/core"
)

func res(s int) *core.PipelineResult { return &core.PipelineResult{S: s} }

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("a must be cached")
	}
	c.Put("c", res(3)) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b must have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s must survive", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", res(1))
	c.Put("a", res(9))
	if c.Len() != 1 {
		t.Fatalf("want 1 entry, got %d", c.Len())
	}
	got, _ := c.Get("a")
	if got.S != 9 {
		t.Fatalf("want refreshed value, got S=%d", got.S)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if st := NewCache(0).Stats(); st.Capacity != DefaultCacheEntries {
		t.Fatalf("want default capacity %d, got %d", DefaultCacheEntries, st.Capacity)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%24)
				if _, ok := c.Get(k); !ok {
					c.Put(k, res(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	var sf singleflight
	var calls atomic.Int32
	gate := make(chan struct{})

	const n = 16
	var wg, entered sync.WaitGroup
	vals := make([]any, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		entered.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			v, err, sh := sf.Do(context.Background(), "key", func(context.Context) (any, error) {
				calls.Add(1)
				<-gate // hold every concurrent caller in one flight
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let every caller reach Do and pile up behind the in-flight
	// computation, then release it.
	entered.Wait()
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	nShared := 0
	for i := 0; i < n; i++ {
		if vals[i] != "value" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if shared[i] {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Fatalf("want %d shared callers, got %d", n-1, nShared)
	}
}

func TestSingleflightPanicReleasesKey(t *testing.T) {
	var sf singleflight
	_, err, _ := sf.Do(context.Background(), "key", func(context.Context) (any, error) { panic("boom") })
	if err == nil {
		t.Fatal("panicking call must surface an error")
	}
	// The key must be released: a later call runs fn again instead of
	// blocking on the dead flight.
	v, err, _ := sf.Do(context.Background(), "key", func(context.Context) (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("key wedged after panic: v=%v err=%v", v, err)
	}
}

func TestSingleflightSequentialCallsRunEachTime(t *testing.T) {
	var sf singleflight
	n := 0
	for i := 0; i < 3; i++ {
		sf.Do(context.Background(), "key", func(context.Context) (any, error) { n++; return nil, nil })
	}
	if n != 3 {
		t.Fatalf("sequential calls must each run fn, got %d", n)
	}
}
