package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"

	"hyperline/internal/core"
	"hyperline/internal/hgio"
)

// Codecs between the cache value types and spill payload bytes.
//
// A projection payload is a little-endian uint32 meta length, a JSON
// meta document (everything in core.PipelineResult except the graph),
// and an hgio CSR stream for the graph itself — the same on-disk graph
// container MapCSR understands, so the spilled bytes double as a
// portable projection dump. A measure payload is a gob of MeasureEntry
// (all-exported, small). Both decode back to objects that answer
// queries byte-identically to the originals; timings and plan metadata
// ride along so responses served from disk are indistinguishable.

// projectionMeta is the JSON half of a projection payload.
type projectionMeta struct {
	S            int               `json:"s"`
	HyperedgeIDs []uint32          `json:"hyperedge_ids"`
	Stats        core.Stats        `json:"stats"`
	Timings      core.StageTimings `json:"timings"`
	Plan         core.PlanInfo     `json:"plan"`
}

// encodeProjection serializes one cached pipeline result.
func encodeProjection(res *core.PipelineResult) ([]byte, error) {
	meta, err := json.Marshal(projectionMeta{
		S:            res.S,
		HyperedgeIDs: res.HyperedgeIDs,
		Stats:        res.Stats,
		Timings:      res.Timings,
		Plan:         res.Plan,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(meta)))
	buf.Write(lenb[:])
	buf.Write(meta)
	if err := hgio.WriteCSR(&buf, res.Graph); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeProjection rebuilds a pipeline result from its spill payload.
func decodeProjection(data []byte) (*core.PipelineResult, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("serve: projection payload too short")
	}
	metaLen := int64(binary.LittleEndian.Uint32(data))
	if int64(len(data)) < 4+metaLen {
		return nil, fmt.Errorf("serve: projection payload truncated")
	}
	var meta projectionMeta
	if err := json.Unmarshal(data[4:4+metaLen], &meta); err != nil {
		return nil, fmt.Errorf("serve: projection meta: %w", err)
	}
	g, err := hgio.ReadCSR(bytes.NewReader(data[4+metaLen:]))
	if err != nil {
		return nil, fmt.Errorf("serve: projection graph: %w", err)
	}
	return &core.PipelineResult{
		S:            meta.S,
		Graph:        g,
		HyperedgeIDs: meta.HyperedgeIDs,
		Stats:        meta.Stats,
		Timings:      meta.Timings,
		Plan:         meta.Plan,
	}, nil
}

// encodeMeasureEntry serializes one cached measure evaluation.
func encodeMeasureEntry(e *MeasureEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeMeasureEntry rebuilds a measure entry from its spill payload.
func decodeMeasureEntry(data []byte) (*MeasureEntry, error) {
	var e MeasureEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("serve: measure payload: %w", err)
	}
	return &e, nil
}
