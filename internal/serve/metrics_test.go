package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// metricFamilies is the exposition contract: every family /metrics must
// export, with its declared type. Scrapers key dashboards and alerts on
// these names, so additions belong here and removals are breaking.
var metricFamilies = map[string]string{
	"hyperline_projection_cache_hits_total":        "counter",
	"hyperline_projection_cache_misses_total":      "counter",
	"hyperline_projection_cache_evictions_total":   "counter",
	"hyperline_projection_cache_entries":           "gauge",
	"hyperline_projection_cache_capacity":          "gauge",
	"hyperline_projection_cache_disk_hits_total":   "counter",
	"hyperline_projection_cache_disk_misses_total": "counter",
	"hyperline_measure_cache_hits_total":           "counter",
	"hyperline_measure_cache_misses_total":         "counter",
	"hyperline_measure_cache_evictions_total":      "counter",
	"hyperline_measure_cache_entries":              "gauge",
	"hyperline_measure_cache_capacity":             "gauge",
	"hyperline_measure_cache_disk_hits_total":      "counter",
	"hyperline_measure_cache_disk_misses_total":    "counter",
	"hyperline_spill_entries":                      "gauge",
	"hyperline_spill_bytes":                        "gauge",
	"hyperline_spill_writes_total":                 "counter",
	"hyperline_spill_evictions_total":              "counter",
	"hyperline_spill_errors_total":                 "counter",
	"hyperline_projection_computes_total":          "counter",
	"hyperline_measure_computes_total":             "counter",
	"hyperline_ingest_applied_total":               "counter",
	"hyperline_ingest_projection_outcomes_total":   "counter",
	"hyperline_ingest_measure_outcomes_total":      "counter",
	"hyperline_singleflight_dedups_total":          "counter",
	"hyperline_datasets":                           "gauge",
	"hyperline_admission_admitted_total":           "counter",
	"hyperline_admission_shed_total":               "counter",
	"hyperline_admission_dataset_shed_total":       "counter",
	"hyperline_admission_queued_total":             "counter",
	"hyperline_admission_queue_cancelled_total":    "counter",
	"hyperline_admission_inflight_cost_units":      "gauge",
	"hyperline_admission_inflight_requests":        "gauge",
	"hyperline_admission_queue_length":             "gauge",
	"hyperline_http_responses_total":               "counter",
	"hyperline_stage_duration_seconds":             "histogram",
}

// scrapeMetrics GETs /metrics and parses it into declared families and
// flat name{labels} → value samples.
func scrapeMetrics(t *testing.T, url string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types = make(map[string]string)
	samples = make(map[string]float64)
	helped := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			helped[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if types[f[2]] != "" {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = f[3]
			if !helped[f[2]] {
				t.Fatalf("family %s has no # HELP line before # TYPE", f[2])
			}
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("bad sample line %q", line)
			}
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			samples[line[:i]] = v
		}
	}
	return types, samples
}

// family strips labels and histogram suffixes off a sample name.
func family(sample string) string {
	name := sample
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			return base
		}
	}
	return name
}

// TestMetricsExpositionShape pins the metric inventory in both
// directions: every contractual family is declared and sampled, and no
// undeclared family appears.
func TestMetricsExpositionShape(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	// Touch every subsystem so histograms and dedups have samples:
	// a compute (projection computes + stage timings), a repeat (cache
	// hits), and a measure query.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2", nil, http.StatusOK, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2", nil, http.StatusOK, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/components?s=2", nil, http.StatusOK, nil)

	types, samples := scrapeMetrics(t, ts.URL)
	for name, typ := range metricFamilies {
		if got := types[name]; got != typ {
			t.Errorf("family %s: declared %q, want %q", name, got, typ)
		}
	}
	for name, typ := range types {
		if metricFamilies[name] != typ {
			t.Errorf("undeclared family %s (%s) in exposition — update the contract test deliberately", name, typ)
		}
	}
	sampled := make(map[string]bool)
	for s := range samples {
		f := family(s)
		if _, ok := metricFamilies[f]; !ok {
			t.Errorf("sample %q belongs to no declared family", s)
		}
		sampled[f] = true
	}
	for name := range metricFamilies {
		if !sampled[name] {
			t.Errorf("family %s declared but has no samples", name)
		}
	}

	// Histogram internal consistency: buckets cumulative, +Inf == count.
	for _, stage := range stageLabels {
		inf := samples[`hyperline_stage_duration_seconds_bucket{stage="`+stage+`",le="+Inf"}`]
		count := samples[`hyperline_stage_duration_seconds_count{stage="`+stage+`"}`]
		if inf != count {
			t.Errorf("stage %s: +Inf bucket %g != count %g", stage, inf, count)
		}
		if count == 0 {
			t.Errorf("stage %s: no observations after computed queries", stage)
		}
	}
}

// TestMetricsCountersMonotonicAndTruthful checks counters only ever
// grow across scrapes, and that the growth matches what the traffic
// actually did: hits on repeats, computes on misses, response codes
// reconciling with the requests sent (with /metrics itself excluded).
func TestMetricsCountersMonotonicAndTruthful(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2", nil, http.StatusOK, nil)
	_, before := scrapeMetrics(t, ts.URL)

	// One cache hit, one fresh compute, one 404.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2", nil, http.StatusOK, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=3", nil, http.StatusOK, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/nope/slinegraph?s=2", nil, http.StatusNotFound, nil)
	_, after := scrapeMetrics(t, ts.URL)

	for name, v := range before {
		if family(name) == "hyperline_stage_duration_seconds" || strings.HasSuffix(family(name), "_total") {
			if after[name] < v {
				t.Errorf("counter %s went backwards: %g -> %g", name, v, after[name])
			}
		}
	}
	delta := func(name string) float64 { return after[name] - before[name] }
	if d := delta("hyperline_projection_cache_hits_total"); d != 1 {
		t.Errorf("projection cache hits grew by %g, want 1", d)
	}
	if d := delta("hyperline_projection_computes_total"); d != 1 {
		t.Errorf("projection computes grew by %g, want 1", d)
	}
	if d := delta(`hyperline_http_responses_total{code="200"}`); d != 2 {
		t.Errorf(`200s grew by %g, want 2 (scrapes must not count)`, d)
	}
	if d := delta(`hyperline_http_responses_total{code="404"}`); d != 1 {
		t.Errorf("404s grew by %g, want 1", d)
	}
}
