package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// v2Status posts one /v2/query body and returns the decoded entries,
// asserting the status code. Regression coverage for the all-entries-
// failed case: a sweep where every per-s evaluation failed must answer
// 502 (upstream evaluation failure), while partial success keeps 200
// and client mistakes keep their 4xx — callers must not have to parse
// entries to tell a dead sweep from a live one.
func v2Status(t *testing.T, url, body string, wantStatus int) []struct {
	S     int    `json:"s"`
	Error string `json:"error"`
} {
	t.Helper()
	var resp struct {
		Results []struct {
			S     int    `json:"s"`
			Error string `json:"error"`
		} `json:"results"`
	}
	do(t, http.MethodPost, url+"/v2/query", strings.NewReader(body), wantStatus, &resp)
	return resp.Results
}

func TestV2QueryAllEntriesFailedIs502(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// Hyperedge 3 is {4,5}: with |e| = 2 it can have no s-incident pair
	// at s >= 3, so "distances" from source 3 fails at every requested s.
	results := v2Status(t, ts.URL,
		`{"dataset":"paper","s":"3:4","measure":"distances","params":{"source":"3"}}`,
		http.StatusBadGateway)
	if len(results) != 2 {
		t.Fatalf("want 2 entries, got %+v", results)
	}
	for _, e := range results {
		if e.Error == "" {
			t.Fatalf("entry s=%d unexpectedly succeeded in an all-failed regression case", e.S)
		}
	}
}

func TestV2QueryPartialFailureStays200(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// s=1 succeeds (edge 3 overlaps edge 2 in vertex 4), s=3 fails.
	results := v2Status(t, ts.URL,
		`{"dataset":"paper","s":[1,3],"measure":"distances","params":{"source":"3"}}`,
		http.StatusOK)
	var ok, failed int
	for _, e := range results {
		if e.Error == "" {
			ok++
		} else {
			failed++
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("want a mixed outcome, got %+v", results)
	}
}

// TestQuotaShedCarriesRetryAfter pins that a per-dataset quota shed
// (-max-inflight-per-dataset) answers 429 *with* a Retry-After header,
// exactly like a global admission shed — clients and the router key
// their backoff off that header, so a bare 429 on the quota path would
// silently defeat it.
func TestQuotaShedCarriesRetryAfter(t *testing.T) {
	svc := New(Config{MaxInflightPerDataset: 1})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	uploadPaper(t, ts)

	// Occupy the dataset's single admission slot so the next request
	// sheds on the per-dataset quota, not the global budget.
	release, err := svc.adm.Acquire(context.Background(), PriorityInteractive, "paper", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	for _, probe := range []struct {
		method, url, body string
	}{
		{http.MethodGet, ts.URL + "/v1/datasets/paper/slinegraph?s=2", ""},
		{http.MethodPost, ts.URL + "/v2/query", `{"dataset":"paper","s":[2]}`},
	} {
		req, err := http.NewRequest(probe.method, probe.url, strings.NewReader(probe.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s %s: status %d, want 429", probe.method, probe.url, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s %s: quota shed returned a bare 429 without Retry-After", probe.method, probe.url)
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("%s %s: Retry-After %q, want whole seconds >= 1", probe.method, probe.url, ra)
		}
	}
	if st := svc.adm.Stats(); st.ShedPerDataset == 0 {
		t.Fatalf("probes did not exercise the per-dataset quota path: %+v", st)
	}
}

func TestV2QueryRequestErrorsKeep4xx(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// Client mistakes must not be reclassified by the all-failed rule.
	do(t, http.MethodPost, ts.URL+"/v2/query",
		strings.NewReader(`{"dataset":"paper","s":"1:2","measure":"nope"}`),
		http.StatusBadRequest, nil)
	do(t, http.MethodPost, ts.URL+"/v2/query",
		strings.NewReader(`{"dataset":"missing","s":"1:2"}`),
		http.StatusNotFound, nil)
}
