package serve

import (
	"net/http"
	"strings"
	"testing"
)

// v2Status posts one /v2/query body and returns the decoded entries,
// asserting the status code. Regression coverage for the all-entries-
// failed case: a sweep where every per-s evaluation failed must answer
// 502 (upstream evaluation failure), while partial success keeps 200
// and client mistakes keep their 4xx — callers must not have to parse
// entries to tell a dead sweep from a live one.
func v2Status(t *testing.T, url, body string, wantStatus int) []struct {
	S     int    `json:"s"`
	Error string `json:"error"`
} {
	t.Helper()
	var resp struct {
		Results []struct {
			S     int    `json:"s"`
			Error string `json:"error"`
		} `json:"results"`
	}
	do(t, http.MethodPost, url+"/v2/query", strings.NewReader(body), wantStatus, &resp)
	return resp.Results
}

func TestV2QueryAllEntriesFailedIs502(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// Hyperedge 3 is {4,5}: with |e| = 2 it can have no s-incident pair
	// at s >= 3, so "distances" from source 3 fails at every requested s.
	results := v2Status(t, ts.URL,
		`{"dataset":"paper","s":"3:4","measure":"distances","params":{"source":"3"}}`,
		http.StatusBadGateway)
	if len(results) != 2 {
		t.Fatalf("want 2 entries, got %+v", results)
	}
	for _, e := range results {
		if e.Error == "" {
			t.Fatalf("entry s=%d unexpectedly succeeded in an all-failed regression case", e.S)
		}
	}
}

func TestV2QueryPartialFailureStays200(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// s=1 succeeds (edge 3 overlaps edge 2 in vertex 4), s=3 fails.
	results := v2Status(t, ts.URL,
		`{"dataset":"paper","s":[1,3],"measure":"distances","params":{"source":"3"}}`,
		http.StatusOK)
	var ok, failed int
	for _, e := range results {
		if e.Error == "" {
			ok++
		} else {
			failed++
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("want a mixed outcome, got %+v", results)
	}
}

func TestV2QueryRequestErrorsKeep4xx(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	// Client mistakes must not be reclassified by the all-failed rule.
	do(t, http.MethodPost, ts.URL+"/v2/query",
		strings.NewReader(`{"dataset":"paper","s":"1:2","measure":"nope"}`),
		http.StatusBadRequest, nil)
	do(t, http.MethodPost, ts.URL+"/v2/query",
		strings.NewReader(`{"dataset":"missing","s":"1:2"}`),
		http.StatusNotFound, nil)
}
