package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The spill store is the disk tier under the in-memory LRUs: entries
// evicted from memory serialize into a bounded directory of
// content-addressed files, and memory misses probe it before
// recomputing. Files are self-describing — the cache key is embedded in
// a header and the filename is its SHA-256 — so the directory is its
// own index: a boot-time scan rebuilds the recency list and no separate
// index file can go stale or corrupt. Writes are atomic
// (tmp + fsync + rename into place); a crash mid-write leaves only a
// tmp file that the next boot sweeps, never a torn entry.

// spillMagic heads every spill file, versioned independently of the
// payload codecs layered above.
var spillMagic = [8]byte{'H', 'L', 'S', 'P', 'I', 'L', 'L', 1}

// spillTmpPrefix marks in-progress writes; boot sweeps leftovers.
const spillTmpPrefix = "tmp-"

// spillSuffix names completed entries.
const spillSuffix = ".spill"

// SpillStats is a point-in-time snapshot of the disk tier.
type SpillStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
}

// spillFile is one on-disk entry tracked by the recency list.
type spillFile struct {
	key  string
	size int64
}

// spillStore is a bounded, content-addressed, crash-safe store of
// serialized cache entries. All methods are safe for concurrent use;
// file IO happens outside the index lock.
type spillStore struct {
	dir    string
	budget int64 // bytes; <= 0 = unbounded

	mu    sync.Mutex
	order *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	hits      int64
	misses    int64
	writes    int64
	evictions int64
	errors    int64
}

// spillPath is the content-addressed location for key.
func (st *spillStore) spillPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:])+spillSuffix)
}

// newSpillStore opens (creating if needed) a spill directory, sweeps
// torn tmp files, and rebuilds the index from the entries present —
// ordered oldest-first by mtime so budget eviction drops the stalest.
func newSpillStore(dir string, budget int64) (*spillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	st := &spillStore{
		dir:    dir,
		budget: budget,
		order:  list.New(),
		index:  make(map[string]*list.Element),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning spill dir: %w", err)
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var files []found
	for _, de := range entries {
		name := de.Name()
		if strings.HasPrefix(name, spillTmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // torn write from a crash
			continue
		}
		if !strings.HasSuffix(name, spillSuffix) || de.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		key, err := readSpillKey(path)
		if err != nil {
			// Unreadable or foreign file: not one of ours, drop it so
			// the budget accounting stays truthful.
			os.Remove(path)
			st.errors++
			continue
		}
		if st.spillPath(key) != path {
			os.Remove(path) // name does not match its embedded key
			st.errors++
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, found{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		st.index[f.key] = st.order.PushFront(&spillFile{key: f.key, size: f.size})
		st.bytes += f.size
	}
	for _, path := range st.evictOverBudgetLocked(0) {
		os.Remove(path)
	}
	return st, nil
}

// readSpillKey reads just the embedded key of a spill file.
func readSpillKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return "", err
	}
	if [8]byte(hdr[:8]) != spillMagic {
		return "", fmt.Errorf("bad spill magic")
	}
	keyLen := binary.LittleEndian.Uint32(hdr[8:])
	if keyLen == 0 || keyLen > 1<<16 {
		return "", fmt.Errorf("implausible spill key length %d", keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(f, key); err != nil {
		return "", err
	}
	return string(key), nil
}

// Get returns the stored payload for key, promoting it to most recently
// used. A missing, unreadable, or mismatched file is a miss (and the
// entry is dropped), never an error: the caller recomputes.
func (st *spillStore) Get(key string) ([]byte, bool) {
	st.mu.Lock()
	el, ok := st.index[key]
	if !ok {
		st.misses++
		st.mu.Unlock()
		return nil, false
	}
	st.order.MoveToFront(el)
	st.mu.Unlock()

	payload, err := readSpillPayload(st.spillPath(key), key)

	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.errors++
		st.misses++
		if el, ok := st.index[key]; ok {
			st.bytes -= el.Value.(*spillFile).size
			st.order.Remove(el)
			delete(st.index, key)
		}
		os.Remove(st.spillPath(key))
		return nil, false
	}
	st.hits++
	return payload, true
}

// readSpillPayload reads one spill file, verifying magic and embedded
// key.
func readSpillPayload(path, wantKey string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 12 || [8]byte(data[:8]) != spillMagic {
		return nil, fmt.Errorf("bad spill header")
	}
	keyLen := int64(binary.LittleEndian.Uint32(data[8:]))
	if keyLen != int64(len(wantKey)) || int64(len(data)) < 12+keyLen {
		return nil, fmt.Errorf("bad spill key length")
	}
	if string(data[12:12+keyLen]) != wantKey {
		return nil, fmt.Errorf("spill key mismatch")
	}
	return data[12+keyLen:], nil
}

// Put stores payload under key: an atomic tmp + fsync + rename, then an
// index insert, then budget eviction of the least recently used files.
// Failures are recorded and swallowed — a failed spill degrades to a
// future cold miss.
func (st *spillStore) Put(key string, payload []byte) {
	path := st.spillPath(key)
	size, err := writeSpillFile(st.dir, path, key, payload)
	st.mu.Lock()
	if err != nil {
		st.errors++
		st.mu.Unlock()
		return
	}
	st.writes++
	if el, ok := st.index[key]; ok {
		sf := el.Value.(*spillFile)
		st.bytes += size - sf.size
		sf.size = size
		st.order.MoveToFront(el)
	} else {
		st.index[key] = st.order.PushFront(&spillFile{key: key, size: size})
		st.bytes += size
	}
	evicted := st.evictOverBudgetLocked(1)
	st.mu.Unlock()
	for _, p := range evicted {
		os.Remove(p)
	}
}

// Remove drops key's entry from the store, if present — the
// invalidation path (vs. eviction, which only means cold). A key that
// was never spilled is a no-op.
func (st *spillStore) Remove(key string) {
	st.mu.Lock()
	el, ok := st.index[key]
	if ok {
		st.bytes -= el.Value.(*spillFile).size
		st.order.Remove(el)
		delete(st.index, key)
	}
	st.mu.Unlock()
	if ok {
		os.Remove(st.spillPath(key))
	}
}

// evictOverBudgetLocked drops least-recently-used entries until the
// store fits the budget, keeping at least keep entries, and returns the
// file paths to remove (IO is the caller's, outside the lock).
func (st *spillStore) evictOverBudgetLocked(keep int) []string {
	if st.budget <= 0 {
		return nil
	}
	var paths []string
	for st.bytes > st.budget && st.order.Len() > keep {
		oldest := st.order.Back()
		sf := oldest.Value.(*spillFile)
		st.order.Remove(oldest)
		delete(st.index, sf.key)
		st.bytes -= sf.size
		st.evictions++
		paths = append(paths, st.spillPath(sf.key))
	}
	return paths
}

// writeSpillFile writes magic+key+payload to a tmp file in dir, fsyncs,
// and renames it into place. Returns the file size.
func writeSpillFile(dir, path, key string, payload []byte) (int64, error) {
	tmp, err := os.CreateTemp(dir, spillTmpPrefix+"*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [12]byte
	copy(hdr[:8], spillMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(key)))
	for _, chunk := range [][]byte{hdr[:], []byte(key), payload} {
		if _, err := tmp.Write(chunk); err != nil {
			return 0, err
		}
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return 0, err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, err
	}
	return int64(12 + len(key) + len(payload)), nil
}

// Stats snapshots the store counters.
func (st *spillStore) Stats() SpillStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return SpillStats{
		Entries:   st.order.Len(),
		Bytes:     st.bytes,
		Budget:    st.budget,
		Hits:      st.hits,
		Misses:    st.misses,
		Writes:    st.writes,
		Evictions: st.evictions,
		Errors:    st.errors,
	}
}
