package serve

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/hgio"
)

func TestSpillStoreRoundTripAndBudget(t *testing.T) {
	dir := t.TempDir()
	st, err := newSpillStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("missing"); ok {
		t.Fatal("empty store must miss")
	}
	st.Put("alpha", []byte("payload-a"))
	got, ok := st.Get("alpha")
	if !ok || string(got) != "payload-a" {
		t.Fatalf("Get(alpha) = %q, %v", got, ok)
	}
	// Overwrite replaces in place without double-counting bytes.
	st.Put("alpha", []byte("payload-a-longer"))
	if got, ok := st.Get("alpha"); !ok || string(got) != "payload-a-longer" {
		t.Fatalf("after overwrite: %q, %v", got, ok)
	}
	if sp := st.Stats(); sp.Entries != 1 || sp.Writes != 2 {
		t.Fatalf("stats %+v, want Entries=1 Writes=2", sp)
	}

	// A tight budget evicts least recently used entries but always keeps
	// the entry just written.
	entrySize := int64(12 + len("k0") + 64)
	st2, err := newSpillStore(t.TempDir(), 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	st2.Put("k0", payload)
	st2.Put("k1", payload)
	st2.Put("k2", payload) // over budget: k0 (LRU) must go
	if _, ok := st2.Get("k0"); ok {
		t.Fatal("k0 must be evicted by the byte budget")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := st2.Get(k); !ok {
			t.Fatalf("%s must survive the byte budget", k)
		}
	}
	sp := st2.Stats()
	if sp.Evictions != 1 || sp.Bytes > 2*entrySize {
		t.Fatalf("stats %+v, want Evictions=1 and Bytes <= %d", sp, 2*entrySize)
	}
}

// TestSpillStoreReopenRebuildsIndex: the directory is its own index — a
// fresh store over an existing directory serves every prior entry.
func TestSpillStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := newSpillStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("one", []byte("1"))
	st.Put("two", []byte("22"))

	st2, err := newSpillStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp := st2.Stats(); sp.Entries != 2 {
		t.Fatalf("reopened store has %d entries, want 2", sp.Entries)
	}
	for k, want := range map[string]string{"one": "1", "two": "22"} {
		if got, ok := st2.Get(k); !ok || string(got) != want {
			t.Fatalf("reopened Get(%s) = %q, %v", k, got, ok)
		}
	}
}

// TestSpillCrashConsistency: a crash between writing a spill file and
// making it visible leaves only a tmp file (rename is the commit
// point). Boot sweeps tmp files and drops corrupt or truncated entries,
// so the worst outcome of any crash is a clean cold miss — never a
// wrong answer, never a poisoned index.
func TestSpillCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	st, err := newSpillStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("alpha", []byte("payload-a"))
	st.Put("beta", []byte("payload-b"))

	// Simulated crash debris: a torn in-progress write, a foreign file
	// with the right suffix, and an entry truncated mid-key.
	if err := os.WriteFile(filepath.Join(dir, spillTmpPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+spillSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(st.spillPath("beta"), 13); err != nil {
		t.Fatal(err)
	}

	st2, err := newSpillStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Get("alpha"); !ok || string(got) != "payload-a" {
		t.Fatalf("intact entry lost after crash recovery: %q, %v", got, ok)
	}
	if _, ok := st2.Get("beta"); ok {
		t.Fatal("truncated entry must be a clean miss, not a hit")
	}
	if sp := st2.Stats(); sp.Entries != 1 {
		t.Fatalf("recovered store has %d entries, want 1", sp.Entries)
	}
	// The debris is gone from disk, not just unindexed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), spillTmpPrefix) {
			t.Fatalf("tmp file %s survived boot sweep", de.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d files left in spill dir, want 1 (alpha only)", len(entries))
	}
	// A recomputed value re-spills cleanly over the dropped key.
	st2.Put("beta", []byte("payload-b"))
	if got, ok := st2.Get("beta"); !ok || string(got) != "payload-b" {
		t.Fatalf("re-spill after crash: %q, %v", got, ok)
	}
}

// TestSpillChurnByteIdentical hammers a deliberately tiny memory LRU
// backed by a spill directory from 8 goroutines, so entries constantly
// evict to disk and return. Every answer must be byte-identical to a
// direct pipeline run, and the compute counter must obey the tier
// arithmetic: work only runs when both tiers miss. Run under -race this
// is the memory-safety test for the lock/IO split in the spill path.
func TestSpillChurnByteIdentical(t *testing.T) {
	h := randomHypergraph(13, 250, 180, 5)
	svc := New(Config{CacheEntries: 2})
	if err := svc.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	svc.Add("rand", h)
	cfg := core.PipelineConfig{}

	const maxS = 6
	direct := make(map[int]*core.PipelineResult, maxS)
	for sVal := 1; sVal <= maxS; sVal++ {
		direct[sVal], _ = core.Run(context.Background(), h, sVal, cfg)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				sVal := 1 + (g+i)%maxS
				res, _, err := svc.SLineGraph(context.Background(), "rand", sVal, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Graph.Edges(), direct[sVal].Graph.Edges()) {
					t.Errorf("s=%d: churned answer differs from direct run", sVal)
					return
				}
				if !reflect.DeepEqual(res.HyperedgeIDs, direct[sVal].HyperedgeIDs) {
					t.Errorf("s=%d: churned hyperedge IDs differ from direct run", sVal)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	cs := svc.CacheStats()
	computes := svc.projectionComputes.Load()
	if cs.DiskHits == 0 {
		t.Fatalf("churn over a 2-entry LRU produced no disk hits: %+v", cs)
	}
	if computes > cs.Misses-cs.DiskHits {
		t.Fatalf("computes %d > memory misses %d - disk hits %d: the disk tier is not short-circuiting recomputation",
			computes, cs.Misses, cs.DiskHits)
	}
	if sp := svc.SpillStats(); sp.Writes == 0 || sp.Hits != cs.DiskHits {
		t.Fatalf("spill stats %+v disagree with cache disk hits %d", sp, cs.DiskHits)
	}
}

// TestSaveRestoreWarmStart is the end-to-end warm-start contract: a
// snapshotting shutdown followed by a restore into a fresh Service
// serves the same queries from the spill tier — same versions, same
// bytes, zero recomputation on the first pass.
func TestSaveRestoreWarmStart(t *testing.T) {
	stateDir := t.TempDir()
	spillDir := filepath.Join(stateDir, "spill")
	h := randomHypergraph(17, 200, 150, 5)
	cfg := core.PipelineConfig{}
	sweep := []int{1, 2, 3, 4}

	svc1 := New(Config{})
	if err := svc1.EnableSpill(spillDir, 0); err != nil {
		t.Fatal(err)
	}
	svc1.Add("w", h)
	want := make(map[int]*core.PipelineResult, len(sweep))
	for _, sVal := range sweep {
		res, _, err := svc1.SLineGraph(context.Background(), "w", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[sVal] = res
	}
	wantMeasure, err := svc1.Measure(context.Background(), "w", false, 2, cfg, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	version := svc1.Datasets()[0].Version
	if err := svc1.SaveState(stateDir); err != nil {
		t.Fatal(err)
	}
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new Service over the same directories.
	svc2 := New(Config{})
	if err := svc2.EnableSpill(spillDir, 0); err != nil {
		t.Fatal(err)
	}
	names, err := svc2.RestoreState(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "w" {
		t.Fatalf("restored %v, want [w]", names)
	}
	ds := svc2.Datasets()
	if len(ds) != 1 || ds[0].Version != version {
		t.Fatalf("restored version %d, want %d (key validity depends on it)", ds[0].Version, version)
	}

	// First pass after restart: everything is served warm (cached=true,
	// from disk), nothing recomputes, and the bytes match the pre-restart
	// answers.
	for _, sVal := range sweep {
		res, cached, err := svc2.SLineGraph(context.Background(), "w", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("s=%d: first post-restart query must be served from the spill tier", sVal)
		}
		if !reflect.DeepEqual(res.Graph.Edges(), want[sVal].Graph.Edges()) {
			t.Fatalf("s=%d: restored projection differs from pre-restart run", sVal)
		}
		if !reflect.DeepEqual(res.HyperedgeIDs, want[sVal].HyperedgeIDs) {
			t.Fatalf("s=%d: restored hyperedge IDs differ from pre-restart run", sVal)
		}
	}
	cs := svc2.CacheStats()
	if computes := svc2.projectionComputes.Load(); computes != 0 {
		t.Fatalf("%d projections recomputed on the warm first pass, want 0 (stats %+v)", computes, cs)
	}
	if cs.DiskHits != int64(len(sweep)) {
		t.Fatalf("disk hits %d, want %d — warm-start hit rate below 100%%", cs.DiskHits, len(sweep))
	}

	// Measures restore too, through their own codec.
	m2, err := svc2.Measure(context.Background(), "w", false, 2, cfg, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Cached {
		t.Fatal("first post-restart measure must be served from the spill tier")
	}
	if !reflect.DeepEqual(m2.Value, wantMeasure.Value) {
		t.Fatal("restored measure value differs from pre-restart value")
	}
	if got := svc2.MeasureCacheStats(); got.Computes != 0 {
		t.Fatalf("%d measures recomputed on the warm first pass, want 0", got.Computes)
	}

	// Replacing the dataset after a restore must mint a version beyond
	// every restored one — the preserved counter prevents key collisions.
	svc2.Add("w", paperExample())
	if v2 := svc2.Datasets()[0].Version; v2 <= version {
		t.Fatalf("post-restore replacement got version %d, want > %d", v2, version)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineDeterministicAcrossLoadStrategies pins byte-identical
// pipeline output across the two ways a .bin dataset can enter memory
// (parsed heap copy vs mmap alias) and across s-overlap strategies:
// the storage tier must be invisible to the math.
func TestPipelineDeterministicAcrossLoadStrategies(t *testing.T) {
	h := randomHypergraph(23, 200, 150, 5)
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := hgio.SaveFile(path, h); err != nil {
		t.Fatal(err)
	}
	loaded, err := hgio.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := hgio.MapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Fatal("MapBinary result must report Mapped()")
	}

	for _, algo := range []core.Algorithm{core.AlgoSetIntersection, core.AlgoHashmap, core.AlgoEnsemble} {
		cfg := core.PipelineConfig{Core: core.Config{Algorithm: algo}}
		for sVal := 1; sVal <= 3; sVal++ {
			a, err := core.Run(context.Background(), loaded, sVal, cfg)
			if err != nil {
				t.Fatalf("algo=%d s=%d loaded: %v", algo, sVal, err)
			}
			b, err := core.Run(context.Background(), mapped, sVal, cfg)
			if err != nil {
				t.Fatalf("algo=%d s=%d mapped: %v", algo, sVal, err)
			}
			if !reflect.DeepEqual(a.Graph.Edges(), b.Graph.Edges()) {
				t.Fatalf("algo=%d s=%d: mapped pipeline output differs from loaded", algo, sVal)
			}
			if !reflect.DeepEqual(a.HyperedgeIDs, b.HyperedgeIDs) {
				t.Fatalf("algo=%d s=%d: hyperedge IDs differ across load strategies", algo, sVal)
			}
		}
	}
}
