package serve

import (
	"context"
	"fmt"
	"sync"
)

// call is one in-flight computation shared by concurrent callers. The
// computation runs on its own goroutine under a context detached from
// any single caller's, so one client disconnecting never aborts work
// other clients are waiting for.
type call struct {
	done    chan struct{}      // closed when the flight finishes
	cancel  context.CancelFunc // cancels the flight's detached context
	waiters int                // callers still interested (mu-guarded)
	val     any
	err     error
}

// singleflight deduplicates concurrent calls with the same key: the
// first caller starts fn on a flight goroutine, later callers join and
// receive the same result.
//
// Cancellation follows last-waiter semantics: a caller whose ctx is
// cancelled stops waiting immediately (receiving its own ctx.Err()),
// but the flight keeps computing as long as at least one caller is
// still interested — its result lands in the caches fn writes to even
// if the original requester is gone. Only when the last waiter leaves
// is the flight's context cancelled, aborting the computation
// cooperatively; the key is cleared at the same time so a fresh
// request starts a fresh flight instead of joining a dying one.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do runs fn once per concurrent group of callers sharing key, passing
// it the flight's detached context. shared reports whether this caller
// joined a flight another caller started (or, equivalently, received a
// result it did not initiate). A caller arriving with an
// already-cancelled ctx returns its ctx.Err() without starting or
// joining any flight.
func (g *singleflight) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (v any, err error, shared bool) {
	if err := ctx.Err(); err != nil {
		return nil, err, false
	}
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	c, joined := g.calls[key]
	if !joined {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c = &call{done: make(chan struct{}), cancel: cancel}
		g.calls[key] = c
		go g.run(key, c, fctx, fn)
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, c.err, joined
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Last interested caller gone: abort the flight and clear
			// the key, so a later request with a live context starts
			// fresh instead of inheriting a cancelled flight's error.
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			c.cancel()
		}
		g.mu.Unlock()
		return nil, ctx.Err(), false
	}
}

// run executes one flight with panic containment: a panicking
// computation must still deregister the key and release waiters, or
// every later caller for this key would block forever. The panic is
// converted into an error delivered to every waiter.
func (g *singleflight) run(key string, c *call, fctx context.Context, fn func(context.Context) (any, error)) {
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("serve: panic in singleflight call: %v", r)
		}
		g.mu.Lock()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		c.cancel() // release the detached context's resources
		close(c.done)
	}()
	c.val, c.err = fn(fctx)
}
