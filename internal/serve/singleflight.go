package serve

import (
	"fmt"
	"sync"
)

// call is one in-flight computation shared by concurrent callers.
type call struct {
	wg  sync.WaitGroup
	val *callResult
}

type callResult struct {
	v   any
	err error
}

// singleflight deduplicates concurrent calls with the same key: the
// first caller runs fn, later callers block and receive the same
// result. A minimal in-tree version of golang.org/x/sync/singleflight
// (no external dependency).
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do runs fn once per concurrent group of callers sharing key. shared
// reports whether this caller received another caller's result instead
// of computing its own.
func (g *singleflight) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val.v, c.val.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	res := &callResult{}
	c.val = res
	// Run fn with panic containment: a panicking computation (e.g. an
	// absurd parameter reaching an allocation) must still deregister the
	// key and release waiters, or every later caller for this key would
	// block forever. The panic is converted into an error delivered to
	// the leader and all waiters alike.
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.err = fmt.Errorf("serve: panic in singleflight call: %v", r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			c.wg.Done()
		}()
		res.v, res.err = fn()
	}()
	return res.v, res.err, false
}
