package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/delta"
)

// queryV2 posts one /v2/query and decodes the response.
func queryV2(t *testing.T, ts *httptest.Server, body string) v2Response {
	t.Helper()
	var out v2Response
	do(t, http.MethodPost, ts.URL+"/v2/query", strings.NewReader(body), http.StatusOK, &out)
	return out
}

// v2Response mirrors the wire fields these tests assert on.
type v2Response struct {
	Dataset string `json:"dataset"`
	Version uint64 `json:"version"`
	Results []struct {
		S      int    `json:"s"`
		Cached bool   `json:"cached"`
		Nodes  int    `json:"nodes"`
		Edges  int    `json:"edges"`
		Error  string `json:"error"`
	} `json:"results"`
}

type ingestResponse struct {
	IngestResult
	ElapsedMS float64 `json:"elapsed_ms"`
}

// TestIngestSelectiveInvalidation is the headline streaming contract:
// after a delta, only cache keys the delta's frontier intersects are
// invalidated. Warmed line projections at s above the affected bound
// answer cached:true at the new version, without a single recompute.
func TestIngestSelectiveInvalidation(t *testing.T) {
	ts, svc := newTestServer(t)
	uploadPaper(t, ts)

	// Warm the exact-class line projections at s=1..5.
	warm := queryV2(t, ts, `{"dataset": "paper", "s": [1,2,3,4,5], "exact": true}`)
	if warm.Version != 1 {
		t.Fatalf("fresh dataset at version %d, want 1", warm.Version)
	}
	computes := svc.projectionComputes.Load()
	if computes == 0 {
		t.Fatal("warmup did not compute anything")
	}

	// Ingest one delta: a new {4,5} hyperedge. Line frontier bound is
	// the max inserted size — 2 — so s=3..5 are provably unaffected.
	var ing ingestResponse
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "inserts": [[4, 5]]}`),
		http.StatusOK, &ing)
	if ing.OldVersion != 1 || ing.Version != 2 {
		t.Fatalf("version transition %d -> %d, want 1 -> 2", ing.OldVersion, ing.Version)
	}
	if ing.AffectedSLine != 2 {
		t.Fatalf("affected_s_line = %d, want 2", ing.AffectedSLine)
	}
	if ing.Inserts != 1 || ing.Deletes != 0 {
		t.Fatalf("delta shape %d/%d, want 1 insert, 0 deletes", ing.Inserts, ing.Deletes)
	}
	if ing.Policy != DeltaPolicyPatch {
		t.Fatalf("policy %q, want patch", ing.Policy)
	}
	// s=3,4,5 are above the frontier: migrated. s=1,2 were patched or
	// dropped, never silently kept.
	if ing.Migrated != 3 {
		t.Fatalf("migrated = %d, want 3 (s=3..5)", ing.Migrated)
	}
	if ing.Patched+ing.Dropped != 2 {
		t.Fatalf("patched+dropped = %d+%d, want 2 (s=1,2)", ing.Patched, ing.Dropped)
	}

	// The unaffected s values answer cached:true at the new version
	// with the compute counter untouched.
	after := queryV2(t, ts, `{"dataset": "paper", "s": [3,4,5], "exact": true}`)
	if after.Version != 2 {
		t.Fatalf("post-ingest query pinned to version %d, want 2", after.Version)
	}
	for _, e := range after.Results {
		if !e.Cached {
			t.Errorf("s=%d not served from cache after an unrelated delta", e.S)
		}
	}
	if got := svc.projectionComputes.Load(); got != computes {
		t.Fatalf("projection computes went %d -> %d; unaffected s must not recompute", computes, got)
	}

	// Every s — patched, migrated, or recomputed — matches a
	// from-scratch pipeline run on the post-delta hypergraph.
	d := &delta.Delta{Inserts: [][]uint32{{4, 5}}}
	newH, err := delta.Apply(paperExample(), d)
	if err != nil {
		t.Fatal(err)
	}
	full := queryV2(t, ts, `{"dataset": "paper", "s": [1,2,3,4,5], "exact": true}`)
	var cfg core.PipelineConfig
	cfg.Core.DisableShortCircuit = true
	for _, e := range full.Results {
		fresh, err := core.Run(context.Background(), newH, e.S, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Nodes != fresh.Graph.NumNodes() || e.Edges != fresh.Graph.NumEdges() {
			t.Errorf("s=%d: served %d nodes/%d edges, fresh compute has %d/%d",
				e.S, e.Nodes, e.Edges, fresh.Graph.NumNodes(), fresh.Graph.NumEdges())
		}
	}
}

// TestIngestPolicyInvalidate pins the baseline arm: with
// DeltaPolicyInvalidate every cached entry of the dataset drops and the
// next sweep recomputes, but answers stay correct.
func TestIngestPolicyInvalidate(t *testing.T) {
	svc := New(Config{DeltaPolicy: DeltaPolicyInvalidate})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	uploadPaper(t, ts)

	queryV2(t, ts, `{"dataset": "paper", "s": [1,2,3,4,5], "exact": true}`)
	computes := svc.projectionComputes.Load()

	var ing ingestResponse
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "inserts": [[4, 5]]}`),
		http.StatusOK, &ing)
	if ing.Policy != DeltaPolicyInvalidate {
		t.Fatalf("policy %q, want invalidate", ing.Policy)
	}
	if ing.Migrated != 0 || ing.Patched != 0 {
		t.Fatalf("invalidate policy migrated %d / patched %d entries", ing.Migrated, ing.Patched)
	}
	if ing.Dropped != 5 {
		t.Fatalf("dropped = %d, want all 5 warmed entries", ing.Dropped)
	}

	after := queryV2(t, ts, `{"dataset": "paper", "s": [3,4,5], "exact": true}`)
	for _, e := range after.Results {
		if e.Cached {
			t.Errorf("s=%d cached under the invalidate policy", e.S)
		}
	}
	if got := svc.projectionComputes.Load(); got == computes {
		t.Fatal("invalidate policy served without recomputing")
	}
	d := &delta.Delta{Inserts: [][]uint32{{4, 5}}}
	newH, err := delta.Apply(paperExample(), d)
	if err != nil {
		t.Fatal(err)
	}
	var cfg core.PipelineConfig
	cfg.Core.DisableShortCircuit = true
	for _, e := range after.Results {
		fresh, err := core.Run(context.Background(), newH, e.S, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Nodes != fresh.Graph.NumNodes() || e.Edges != fresh.Graph.NumEdges() {
			t.Errorf("s=%d: recomputed answer wrong: %d/%d vs %d/%d",
				e.S, e.Nodes, e.Edges, fresh.Graph.NumNodes(), fresh.Graph.NumEdges())
		}
	}
}

// calibratedCells counts calibrated cost cells across both orientations.
func calibratedCells(t *testing.T, svc *Service, name string) int {
	t.Helper()
	ci, err := svc.Calibration(name)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, o := range append(ci.Line, ci.Clique...) {
		if o.Calibrated {
			n++
		}
	}
	return n
}

// TestIngestCalibrationSurvives is the carry-forward satellite: the
// cost model a dataset accumulated keeps steering the planner across
// delta-derived version bumps (the hypergraph changed incrementally, so
// the observations still describe it), while a full re-upload — an
// arbitrary replacement — resets calibration from scratch.
func TestIngestCalibrationSurvives(t *testing.T) {
	ts, svc := newTestServer(t)
	uploadPaper(t, ts)

	// Three single-s computes land three observations in one cost cell
	// (same strategy, relabel, toplex, single-s batch shape).
	for s := 1; s <= 3; s++ {
		queryV2(t, ts, fmt.Sprintf(`{"dataset": "paper", "s": [%d], "exact": true}`, s))
	}
	if calibratedCells(t, svc, "paper") == 0 {
		t.Fatal("three single-s computes did not calibrate any cell")
	}

	for i := 0; i < 3; i++ {
		d := &delta.Delta{Inserts: [][]uint32{{uint32(i), uint32(i + 1)}}}
		if _, err := svc.Ingest(context.Background(), "paper", d, 0); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if calibratedCells(t, svc, "paper") == 0 {
			t.Fatalf("calibration lost after delta %d", i+1)
		}
	}
	ci, err := svc.Calibration("paper")
	if err != nil {
		t.Fatal(err)
	}
	if ci.Version != 4 {
		t.Fatalf("after 3 deltas version = %d, want 4", ci.Version)
	}

	// A full replacement invalidates everything the model learned.
	uploadPaper(t, ts)
	if n := calibratedCells(t, svc, "paper"); n != 0 {
		t.Fatalf("re-upload kept %d calibrated cells, want 0", n)
	}
}

// TestIngestVersionConflict covers both conflict paths: a stale
// base_version pin over HTTP (409), and the registry CAS losing to a
// concurrent writer.
func TestIngestVersionConflict(t *testing.T) {
	ts, svc := newTestServer(t)
	uploadPaper(t, ts)

	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "base_version": 99, "inserts": [[4, 5]]}`),
		http.StatusConflict, nil)

	// Correct pin succeeds and bumps the version.
	var ing ingestResponse
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "base_version": 1, "inserts": [[4, 5]]}`),
		http.StatusOK, &ing)
	if ing.Version != 2 {
		t.Fatalf("pinned ingest produced version %d, want 2", ing.Version)
	}

	// The old pin is now stale.
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "base_version": 1, "inserts": [[0, 1]]}`),
		http.StatusConflict, nil)

	// A malformed delta (hyperedge ID out of range) is a client error.
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "deletes": [99]}`),
		http.StatusBadRequest, nil)

	// Unknown dataset.
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "nope", "inserts": [[0, 1]]}`),
		http.StatusNotFound, nil)
	_ = svc
}

// changesResponse mirrors GET /v2/datasets/{name}/changes.
type changesResponse struct {
	Dataset string        `json:"dataset"`
	Version uint64        `json:"version"`
	Events  []ChangeEvent `json:"events"`
}

// TestChangesFeed covers the long-poll contract: an idle poll times out
// with the current version and no events; a waiter blocked on the feed
// is woken by a concurrent ingest; a version jump the feed cannot
// explain (full re-upload) ends the poll immediately with no events so
// the client re-syncs.
func TestChangesFeed(t *testing.T) {
	ts, svc := newTestServer(t)
	uploadPaper(t, ts)

	// since=0 against version 1: the jump from upload is outside the
	// feed, so the poll returns immediately, empty.
	var cr changesResponse
	do(t, http.MethodGet, ts.URL+"/v2/datasets/paper/changes?since=0&timeout_ms=5000",
		nil, http.StatusOK, &cr)
	if cr.Version != 1 || len(cr.Events) != 0 {
		t.Fatalf("upload jump: version %d events %d, want 1 and none", cr.Version, len(cr.Events))
	}

	// Idle poll at the current version: times out empty.
	start := time.Now()
	do(t, http.MethodGet, ts.URL+"/v2/datasets/paper/changes?since=1&timeout_ms=100",
		nil, http.StatusOK, &cr)
	if len(cr.Events) != 0 || cr.Version != 1 {
		t.Fatalf("idle poll: %+v", cr)
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("idle poll returned before its timeout")
	}

	// A blocked waiter is woken by a concurrent ingest.
	done := make(chan changesResponse, 1)
	go func() {
		var out changesResponse
		do(t, http.MethodGet, ts.URL+"/v2/datasets/paper/changes?since=1&timeout_ms=10000",
			nil, http.StatusOK, &out)
		done <- out
	}()
	time.Sleep(50 * time.Millisecond) // let the poll block
	d := &delta.Delta{Inserts: [][]uint32{{4, 5}}}
	if _, err := svc.Ingest(context.Background(), "paper", d, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done:
		if out.Version != 2 || len(out.Events) != 1 {
			t.Fatalf("woken poll: %+v", out)
		}
		ev := out.Events[0]
		if ev.Version != 2 || ev.Inserts != 1 {
			t.Fatalf("event %+v, want version 2 with 1 insert", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest did not wake the long-poll waiter")
	}

	// Unknown dataset is a 404, not a hang.
	do(t, http.MethodGet, ts.URL+"/v2/datasets/nope/changes?since=0",
		nil, http.StatusNotFound, nil)
}

// TestIngestMeasureMigration checks the measure cache rides along:
// measure values whose projection provably survived the delta re-key to
// the new version (cached:true, no recompute), values inside the
// frontier drop and recompute.
func TestIngestMeasureMigration(t *testing.T) {
	ts, svc := newTestServer(t)
	uploadPaper(t, ts)

	// Warm components at s=1 (inside the coming frontier) and s=3
	// (outside it).
	queryV2(t, ts, `{"dataset": "paper", "s": [1, 3], "measure": "components", "exact": true}`)
	mComputes := svc.measureComputes.Load()
	if mComputes == 0 {
		t.Fatal("measure warmup did not compute")
	}

	var ing ingestResponse
	do(t, http.MethodPost, ts.URL+"/v2/ingest",
		strings.NewReader(`{"dataset": "paper", "inserts": [[4, 5]]}`),
		http.StatusOK, &ing)
	if ing.MeasuresMigrated != 1 || ing.MeasuresDropped != 1 {
		t.Fatalf("measures migrated/dropped = %d/%d, want 1/1", ing.MeasuresMigrated, ing.MeasuresDropped)
	}

	out := queryV2(t, ts, `{"dataset": "paper", "s": [3], "measure": "components", "exact": true}`)
	if len(out.Results) != 1 || !out.Results[0].Cached {
		t.Fatalf("migrated measure not served from cache: %+v", out.Results)
	}
	if got := svc.measureComputes.Load(); got != mComputes {
		t.Fatalf("measure computes went %d -> %d on a migrated key", mComputes, got)
	}

	out = queryV2(t, ts, `{"dataset": "paper", "s": [1], "measure": "components", "exact": true}`)
	if len(out.Results) != 1 || out.Results[0].Cached {
		t.Fatal("frontier-intersecting measure was served stale from cache")
	}
}
