package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/hgio"
)

// paperAdjacency is the running example in adjacency format.
const paperAdjacency = "0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n"

func newTestServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(Config{})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func do(t *testing.T, method, url string, body io.Reader, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
}

func uploadPaper(t *testing.T, ts *httptest.Server) {
	t.Helper()
	do(t, http.MethodPut, ts.URL+"/v1/datasets/paper",
		strings.NewReader(paperAdjacency), http.StatusOK, nil)
}

func TestHTTPHealthAndCache(t *testing.T) {
	ts, _ := newTestServer(t)
	var health map[string]bool
	do(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, &health)
	if !health["ok"] {
		t.Fatal("health endpoint not ok")
	}
	var stats struct {
		Pipeline CacheStats        `json:"pipeline"`
		Measures MeasureCacheStats `json:"measures"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/cache", nil, http.StatusOK, &stats)
	if stats.Pipeline.Capacity != DefaultCacheEntries {
		t.Fatalf("bad pipeline cache stats %+v", stats.Pipeline)
	}
	if stats.Measures.Capacity != DefaultMeasureCacheEntries {
		t.Fatalf("bad measure cache stats %+v", stats.Measures)
	}
}

func TestHTTPUploadFormatsAndList(t *testing.T) {
	ts, _ := newTestServer(t)
	// adjacency (default format)
	uploadPaper(t, ts)
	// pairs
	pairs := "0 0\n0 1\n1 1\n1 2\n"
	do(t, http.MethodPut, ts.URL+"/v1/datasets/p?format=pairs",
		strings.NewReader(pairs), http.StatusOK, nil)
	// binary
	var bin bytes.Buffer
	if err := hgio.WriteBinary(&bin, paperExample()); err != nil {
		t.Fatal(err)
	}
	do(t, http.MethodPut, ts.URL+"/v1/datasets/b?format=bin", &bin, http.StatusOK, nil)
	// bad format
	do(t, http.MethodPut, ts.URL+"/v1/datasets/x?format=nope",
		strings.NewReader(""), http.StatusBadRequest, nil)

	var list []DatasetInfo
	do(t, http.MethodGet, ts.URL+"/v1/datasets", nil, http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("want 3 datasets, got %+v", list)
	}
	var stats struct{ NumEdges int }
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper", nil, http.StatusOK, &stats)
	if stats.NumEdges != 4 {
		t.Fatalf("paper dataset has %d edges, want 4", stats.NumEdges)
	}
	do(t, http.MethodDelete, ts.URL+"/v1/datasets/p", nil, http.StatusOK, nil)
	do(t, http.MethodDelete, ts.URL+"/v1/datasets/p", nil, http.StatusNotFound, nil)
}

func TestHTTPServerSideLoad(t *testing.T) {
	ts, _ := newTestServer(t)
	path := filepath.Join(t.TempDir(), "h.bin")
	if err := hgio.SaveFile(path, paperExample()); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"path": %q}`, path)
	var stats struct{ NumEdges int }
	do(t, http.MethodPost, ts.URL+"/v1/datasets/disk/load",
		strings.NewReader(body), http.StatusOK, &stats)
	if stats.NumEdges != 4 {
		t.Fatalf("loaded dataset has %d edges, want 4", stats.NumEdges)
	}
	do(t, http.MethodPost, ts.URL+"/v1/datasets/disk/load",
		strings.NewReader(`{"path": "/no/such/file.hgr"}`), http.StatusBadRequest, nil)
}

type graphJSON struct {
	Cached       bool        `json:"cached"`
	Nodes        int         `json:"nodes"`
	Edges        int         `json:"edges"`
	HyperedgeIDs []uint32    `json:"hyperedge_ids"`
	EdgeList     [][3]uint32 `json:"edge_list"`
}

func TestHTTPSLineGraphCachesAndMatchesLibrary(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	var first, second graphJSON
	url := ts.URL + "/v1/datasets/paper/slinegraph?s=2"
	do(t, http.MethodGet, url, nil, http.StatusOK, &first)
	do(t, http.MethodGet, url, nil, http.StatusOK, &second)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first=%v second=%v, want false,true", first.Cached, second.Cached)
	}

	direct, _ := core.Run(context.Background(), paperExample(), 2, core.PipelineConfig{})
	wantEdges := make([][3]uint32, 0, direct.Graph.NumEdges())
	for _, e := range direct.Graph.Edges() {
		wantEdges = append(wantEdges, [3]uint32{e.U, e.V, e.W})
	}
	for _, got := range []graphJSON{first, second} {
		if !reflect.DeepEqual(got.EdgeList, wantEdges) {
			t.Fatalf("served edge list %v differs from library call %v", got.EdgeList, wantEdges)
		}
		if !reflect.DeepEqual(got.HyperedgeIDs, direct.HyperedgeIDs) {
			t.Fatalf("served hyperedge IDs %v differ from library call %v", got.HyperedgeIDs, direct.HyperedgeIDs)
		}
	}

	// edges=false omits the edge list but keeps the counts.
	var lean graphJSON
	do(t, http.MethodGet, url+"&edges=false", nil, http.StatusOK, &lean)
	if lean.EdgeList != nil || lean.Edges != len(wantEdges) {
		t.Fatalf("edges=false: got %+v", lean)
	}

	// Bad requests.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=0", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2&config=9ZZ", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/nope/slinegraph?s=2", nil, http.StatusNotFound, nil)
}

func TestHTTPSCliqueGraph(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	var got graphJSON
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/scliquegraph?s=1&nosqueeze=true",
		nil, http.StatusOK, &got)
	direct, _ := core.Run(context.Background(), paperExample().Dual(), 1, core.PipelineConfig{NoSqueeze: true})
	if got.Edges != direct.Graph.NumEdges() || got.Nodes != direct.Graph.NumNodes() {
		t.Fatalf("clique graph %+v differs from direct dual run (%d nodes %d edges)",
			got, direct.Graph.NumNodes(), direct.Graph.NumEdges())
	}
}

func TestHTTPWarmupThenHit(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	var warm struct {
		Computed   int `json:"computed"`
		AlreadyHot int `json:"already_hot"`
	}
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": [1, 2, 3]}`), http.StatusOK, &warm)
	if warm.Computed != 3 || warm.AlreadyHot != 0 {
		t.Fatalf("warmup: %+v", warm)
	}
	var got graphJSON
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=3", nil, http.StatusOK, &got)
	if !got.Cached {
		t.Fatal("query after warmup must be served from cache")
	}
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{}`), http.StatusBadRequest, nil)

	// A warmup with nosqueeze must pre-seed the nosqueeze query keys.
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": [2], "nosqueeze": true}`), http.StatusOK, &warm)
	if warm.Computed != 1 {
		t.Fatalf("nosqueeze warmup: %+v", warm)
	}
	var ns graphJSON
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2&nosqueeze=true",
		nil, http.StatusOK, &ns)
	if !ns.Cached {
		t.Fatal("nosqueeze query after nosqueeze warmup must hit the cache")
	}

	// Duplicate s values are deduped, not misreported as hits.
	ts2, _ := newTestServer(t)
	uploadPaper(t, ts2)
	do(t, http.MethodPost, ts2.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": [2, 2, 2]}`), http.StatusOK, &warm)
	if warm.Computed != 1 || warm.AlreadyHot != 0 {
		t.Fatalf("duplicate-s warmup on a cold cache: %+v", warm)
	}
}

func TestHTTPBatchProjections(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	var batch struct {
		Dataset string `json:"dataset"`
		Dual    bool   `json:"dual"`
		Results []struct {
			graphJSON
			S    int `json:"s"`
			Plan struct {
				Strategy string `json:"strategy"`
				Reason   string `json:"reason"`
			} `json:"plan"`
		} `json:"results"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs?s=1:3", nil, http.StatusOK, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("want 3 results for s=1:3, got %d", len(batch.Results))
	}
	for i, got := range batch.Results {
		if got.S != i+1 {
			t.Fatalf("results out of order: %+v", batch.Results)
		}
		direct, _ := core.Run(context.Background(), paperExample(), got.S, core.PipelineConfig{})
		if got.Edges != direct.Graph.NumEdges() {
			t.Fatalf("s=%d: %d edges, want %d", got.S, got.Edges, direct.Graph.NumEdges())
		}
		if got.Plan.Strategy == "" {
			t.Fatalf("s=%d: missing plan info", got.S)
		}
	}

	// The batch seeded the per-s cache: single queries hit.
	var single graphJSON
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s=2", nil, http.StatusOK, &single)
	if !single.Cached {
		t.Fatal("single query after batch must be served from cache")
	}

	// Mixed list + range forms, and the dual orientation.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs?s=1,2:3", nil, http.StatusOK, &batch)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/scliquegraphs?s=1,2", nil, http.StatusOK, &batch)
	if !batch.Dual || len(batch.Results) != 2 {
		t.Fatalf("scliquegraphs: %+v", batch)
	}

	// Bad requests.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs?s=0", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs?s=5:2", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/nope/slinegraphs?s=1", nil, http.StatusNotFound, nil)
}

func TestHTTPWarmupSListString(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	var warm struct {
		Computed   int `json:"computed"`
		AlreadyHot int `json:"already_hot"`
	}
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": "1,3:4"}`), http.StatusOK, &warm)
	if warm.Computed != 3 || warm.AlreadyHot != 0 {
		t.Fatalf("s-list warmup: %+v", warm)
	}
	for _, sVal := range []string{"1", "3", "4"} {
		var got graphJSON
		do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraph?s="+sVal, nil, http.StatusOK, &got)
		if !got.Cached {
			t.Fatalf("s=%s: query after s-list warmup must hit", sVal)
		}
	}
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": "nope"}`), http.StatusBadRequest, nil)
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": true}`), http.StatusBadRequest, nil)

	// Oversized requests are rejected in both body forms and on the
	// batch endpoints.
	big := make([]byte, 0, 1<<16)
	big = append(big, `{"s": [`...)
	for i := 1; i <= core.MaxSValues+1; i++ {
		if i > 1 {
			big = append(big, ',')
		}
		big = strconv.AppendInt(big, int64(i), 10)
	}
	big = append(big, `]}`...)
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(string(big)), http.StatusBadRequest, nil)
	do(t, http.MethodPost, ts.URL+"/v1/datasets/paper/warmup",
		strings.NewReader(`{"s": "1:1000,2000:3000"}`), http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/slinegraphs?s=1:1000,2000:3000",
		nil, http.StatusBadRequest, nil)
}

func TestHTTPMeasures(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	var comp struct {
		Cached bool `json:"cached"`
		Result struct {
			Count   int        `json:"count"`
			Members [][]uint32 `json:"members"`
		} `json:"result"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/components?s=2", nil, http.StatusOK, &comp)
	// At s=2, hyperedges {0,1,2} form one component; hyperedge 3 has no
	// 2-incident partner and is squeezed out.
	if comp.Result.Count != 1 || !reflect.DeepEqual(comp.Result.Members, [][]uint32{{0, 1, 2}}) {
		t.Fatalf("components: %+v", comp.Result)
	}

	var dist struct {
		Result struct {
			HyperedgeIDs []uint32 `json:"hyperedge_ids"`
			Distances    []int32  `json:"distances"`
		} `json:"result"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/distances?s=2&source=0", nil, http.StatusOK, &dist)
	if !reflect.DeepEqual(dist.Result.Distances, []int32{0, 1, 1}) {
		t.Fatalf("distances: %+v", dist.Result)
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/distances?s=2&source=3", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/distances?s=2", nil, http.StatusBadRequest, nil)

	for _, kind := range []string{"betweenness", "closeness", "harmonic", "pagerank"} {
		var cent struct {
			Result struct {
				Kind   string    `json:"kind"`
				Scores []float64 `json:"scores"`
			} `json:"result"`
		}
		do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2&kind="+kind,
			nil, http.StatusOK, &cent)
		if cent.Result.Kind != kind || len(cent.Result.Scores) != 3 {
			t.Fatalf("centrality %s: %+v", kind, cent.Result)
		}
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2&kind=nope", nil, http.StatusBadRequest, nil)

	var conn struct {
		Result struct {
			Value float64 `json:"normalized_algebraic_connectivity"`
		} `json:"result"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/connectivity?s=2", nil, http.StatusOK, &conn)
	if conn.Result.Value <= 0 {
		t.Fatalf("connectivity of a connected triangle must be positive, got %v", conn.Result.Value)
	}

	// dual measures work too
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/components?s=1&dual=true", nil, http.StatusOK, nil)
}
