package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

// Priority classifies admitted Stage-3 work. Interactive requests (the
// query endpoints) may wait in a bounded FIFO queue when the server is
// saturated; background work (warmup sweeps) is admitted only when
// spare capacity exists right now and is shed otherwise, so a warmup
// storm can never starve user queries.
type Priority int

const (
	// PriorityInteractive is the default class: user-facing queries.
	PriorityInteractive Priority = iota
	// PriorityBackground marks deferrable work: warmup sweeps and other
	// cache-seeding traffic.
	PriorityBackground
)

// String renders the priority the way the metrics labels spell it.
func (p Priority) String() string {
	if p == PriorityBackground {
		return "background"
	}
	return "interactive"
}

// ErrSaturated marks requests shed by admission control. The HTTP layer
// maps it to 429 with a Retry-After header; errors.Is(err, ErrSaturated)
// identifies it through wrapping.
var ErrSaturated = errors.New("saturated")

// SaturatedError is the concrete shed error: it carries the estimated
// time until enough admitted work drains for a retry to stand a chance.
type SaturatedError struct {
	// RetryAfter is a coarse drain estimate (>= 1s).
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: saturated, retry after %s", e.RetryAfter)
}

// Is makes errors.Is(err, ErrSaturated) true for every SaturatedError.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

// AdmissionStats is a point-in-time snapshot of the admission
// controller: configuration, live occupancy, and lifetime counters.
type AdmissionStats struct {
	// MaxCost is the concurrent cost budget in cost units (estimated
	// milliseconds of Stage-3 work); 0 = unlimited.
	MaxCost int64 `json:"max_cost"`
	// MaxInflight is the concurrent admitted-request bound; 0 = unlimited.
	MaxInflight int `json:"max_inflight"`
	// MaxQueue is the interactive wait-queue bound.
	MaxQueue int `json:"max_queue"`
	// MaxPerDataset bounds admitted Stage-3 passes per dataset;
	// 0 = unlimited.
	MaxPerDataset int `json:"max_per_dataset"`

	InflightCost     int64 `json:"inflight_cost"`
	InflightRequests int   `json:"inflight_requests"`
	QueueLength      int   `json:"queue_length"`

	AdmittedInteractive int64 `json:"admitted_interactive"`
	AdmittedBackground  int64 `json:"admitted_background"`
	ShedInteractive     int64 `json:"shed_interactive"`
	ShedBackground      int64 `json:"shed_background"`
	// ShedPerDataset counts requests shed because their dataset hit
	// its per-dataset quota (also included in the per-priority shed
	// counters above).
	ShedPerDataset int64 `json:"shed_per_dataset"`
	// Queued counts every admission that had to wait before being
	// granted or abandoned (not the live queue length).
	Queued int64 `json:"queued"`
	// QueueCancelled counts waiters whose context expired while queued.
	QueueCancelled int64 `json:"queue_cancelled"`
}

// admissionWaiter is one queued interactive acquisition.
type admissionWaiter struct {
	dataset string
	cost    int64
	ready   chan struct{} // closed on grant, with granted set under mu
	granted bool
}

// admission is a weighted semaphore bounding concurrent Stage-3 work by
// planner-estimated cost. Two limits compose: a cost budget (the sum of
// admitted requests' estimated milliseconds of s-overlap work) and a
// plain concurrent-request bound; a request is admitted only under
// both. Interactive requests past the limits wait in a bounded FIFO
// queue; background requests and queue overflow are shed immediately
// with a SaturatedError, so saturation turns into fast 429s instead of
// unbounded queueing. A zero limit means unlimited on that axis (the
// controller still counts admissions for observability).
type admission struct {
	mu            sync.Mutex
	maxCost       int64
	maxReqs       int
	maxQueue      int
	maxPerDataset int

	inflightCost int64
	inflightReqs int
	// perDataset counts admitted passes per dataset name; entries are
	// removed at zero so the map stays proportional to active load.
	perDataset map[string]int
	queue      []*admissionWaiter

	admitted       [2]int64
	shed           [2]int64
	shedDataset    int64
	queued         int64
	queueCancelled int64
}

// defaultMaxQueue bounds the interactive wait queue when limits are set
// but no queue depth was configured.
const defaultMaxQueue = 64

// newAdmission builds a controller; maxCost, maxReqs, and maxPerDataset
// of 0 mean unlimited, maxQueue of 0 takes the default.
func newAdmission(maxCost int64, maxReqs, maxQueue, maxPerDataset int) *admission {
	if maxQueue <= 0 {
		maxQueue = defaultMaxQueue
	}
	return &admission{
		maxCost:       maxCost,
		maxReqs:       maxReqs,
		maxQueue:      maxQueue,
		maxPerDataset: maxPerDataset,
		perDataset:    make(map[string]int),
	}
}

// limited reports whether any admission limit is configured.
func (a *admission) limited() bool { return a.maxCost > 0 || a.maxReqs > 0 }

// clampCost bounds a request's estimated cost to the budget, so one
// oversized request can still run when the server is otherwise idle
// (it then occupies the whole budget instead of being unadmittable).
func (a *admission) clampCost(cost int64) int64 {
	if cost < 1 {
		cost = 1
	}
	if a.maxCost > 0 && cost > a.maxCost {
		cost = a.maxCost
	}
	return cost
}

// fitsLocked reports whether cost can be admitted right now.
func (a *admission) fitsLocked(cost int64) bool {
	if a.maxReqs > 0 && a.inflightReqs >= a.maxReqs {
		return false
	}
	if a.maxCost > 0 && a.inflightCost+cost > a.maxCost {
		return false
	}
	return true
}

// datasetFitsLocked reports whether dataset has per-dataset quota left.
func (a *admission) datasetFitsLocked(dataset string) bool {
	return a.maxPerDataset <= 0 || a.perDataset[dataset] < a.maxPerDataset
}

// Acquire admits one unit of Stage-3 work of the given estimated cost
// against the named dataset, blocking (interactive only, bounded queue,
// FIFO) until capacity is available or ctx expires. On success the
// returned release function must be called exactly once when the work
// finishes. On saturation it returns a *SaturatedError (errors.Is
// ErrSaturated). A dataset at its per-dataset quota sheds immediately —
// even interactive work — so a storm against one dataset turns into
// fast 429s without consuming queue slots other datasets could use.
func (a *admission) Acquire(ctx context.Context, pri Priority, dataset string, cost int64) (release func(), err error) {
	a.mu.Lock()
	cost = a.clampCost(cost)
	if !a.datasetFitsLocked(dataset) {
		a.shed[pri]++
		a.shedDataset++
		retry := a.retryAfterLocked()
		a.mu.Unlock()
		return nil, &SaturatedError{RetryAfter: retry}
	}
	// FIFO fairness: nobody overtakes existing waiters, and background
	// work is never admitted while interactive requests wait.
	if len(a.queue) == 0 && a.fitsLocked(cost) {
		a.admitLocked(pri, dataset, cost)
		a.mu.Unlock()
		return a.releaseFunc(dataset, cost), nil
	}
	if pri == PriorityBackground || len(a.queue) >= a.maxQueue {
		a.shed[pri]++
		retry := a.retryAfterLocked()
		a.mu.Unlock()
		return nil, &SaturatedError{RetryAfter: retry}
	}
	w := &admissionWaiter{dataset: dataset, cost: cost, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.releaseFunc(dataset, cost), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Granted concurrently with cancellation: the caller owns
			// the slot; downstream work will observe ctx and abort.
			a.mu.Unlock()
			return a.releaseFunc(dataset, cost), nil
		}
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				break
			}
		}
		a.queueCancelled++
		// Removing a waiter can unblock the (differently-sized) one
		// behind it.
		a.grantLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// admitLocked records one admission.
func (a *admission) admitLocked(pri Priority, dataset string, cost int64) {
	a.inflightCost += cost
	a.inflightReqs++
	a.perDataset[dataset]++
	a.admitted[pri]++
}

// releaseFunc returns the idempotence-unchecked release closure for one
// admitted cost.
func (a *admission) releaseFunc(dataset string, cost int64) func() {
	return func() {
		a.mu.Lock()
		a.inflightCost -= cost
		a.inflightReqs--
		if a.perDataset[dataset]--; a.perDataset[dataset] <= 0 {
			delete(a.perDataset, dataset)
		}
		a.grantLocked()
		a.mu.Unlock()
	}
}

// grantLocked admits queued waiters in FIFO order while they fit. A
// waiter whose dataset is at quota is skipped (it keeps waiting — its
// dataset had quota when it enqueued and will again when a same-dataset
// release runs grantLocked), so one saturated dataset cannot
// head-block the queue for every other dataset.
func (a *admission) grantLocked() {
	for i := 0; i < len(a.queue); {
		w := a.queue[i]
		if !a.datasetFitsLocked(w.dataset) {
			i++
			continue
		}
		if !a.fitsLocked(w.cost) {
			break
		}
		a.queue = append(a.queue[:i], a.queue[i+1:]...)
		w.granted = true
		a.admitLocked(PriorityInteractive, w.dataset, w.cost)
		close(w.ready)
	}
}

// retryAfterLocked estimates how long a shed client should wait: the
// pending work (admitted + queued cost units ≈ milliseconds of Stage-3
// time) divided by the request-level parallelism, floored at one second
// — coarse by construction, but monotone in load, which is what backoff
// needs.
func (a *admission) retryAfterLocked() time.Duration {
	pending := a.inflightCost
	for _, w := range a.queue {
		pending += w.cost
	}
	par := int64(a.maxReqs)
	if par < 1 {
		par = 1
	}
	d := time.Duration(pending/par) * time.Millisecond
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Stats snapshots the controller.
func (a *admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxCost:             a.maxCost,
		MaxInflight:         a.maxReqs,
		MaxQueue:            a.maxQueue,
		MaxPerDataset:       a.maxPerDataset,
		InflightCost:        a.inflightCost,
		InflightRequests:    a.inflightReqs,
		QueueLength:         len(a.queue),
		AdmittedInteractive: a.admitted[PriorityInteractive],
		AdmittedBackground:  a.admitted[PriorityBackground],
		ShedInteractive:     a.shed[PriorityInteractive],
		ShedBackground:      a.shed[PriorityBackground],
		ShedPerDataset:      a.shedDataset,
		Queued:              a.queued,
		QueueCancelled:      a.queueCancelled,
	}
}

// wedgePairsPerCostUnit converts the static planner statistic into
// admission cost units when no calibrated observation exists: one cost
// unit (≈ 1ms of Stage-3 work) per 50k wedge pairs, a deliberately
// conservative throughput so uncalibrated estimates err toward
// admitting less under saturation.
const wedgePairsPerCostUnit = 50_000

// estimateCost prices a batch of uncached s values in admission cost
// units (estimated milliseconds of Stage-3 work) from the resolved
// configuration: the planner's decision picks the strategy, calibrated
// per-s observations price it when the dataset version has them (the
// PR-6 CostModel), and a wedge-pair heuristic prices it otherwise.
func estimateCost(cfg core.PipelineConfig, compute []int) int64 {
	distinct := core.DistinctS(compute)
	n := int64(len(distinct))
	if n == 0 {
		return 1
	}
	var st hg.Stats
	if cfg.Stats != nil {
		st = *cfg.Stats
	}
	dec := core.PlanQueryCosts(st, distinct, cfg.Core, cfg.Costs, cfg.Toplex.Enabled())
	key := core.CostKey{
		Algo:    dec.Config.Algorithm,
		Relabel: dec.Config.Relabel,
		Toplex:  cfg.Toplex.Enabled(),
		Multi:   n > 1,
	}
	if perS, calibrated := cfg.Costs.Estimate(key); calibrated {
		ms := int64(time.Duration(n) * perS / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		return ms
	}
	perS := st.WedgePairs / wedgePairsPerCostUnit
	if perS < 1 {
		perS = 1
	}
	if dec.Config.Algorithm == core.AlgoEnsemble {
		// One counting pass amortized over the whole batch.
		return perS
	}
	return perS * n
}
