package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/hgio"
)

// ErrUnknownDataset marks lookups of unregistered dataset names; the
// HTTP layer maps it to 404 (vs 400 for malformed requests) via
// errors.Is.
var ErrUnknownDataset = errors.New("unknown dataset")

// ErrVersionConflict marks a delta application whose base version is no
// longer the dataset's current version — a concurrent upload or ingest
// won the race. The HTTP layer maps it to 409; the client re-reads and
// retries against the new version.
var ErrVersionConflict = errors.New("version conflict")

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string
	Version uint64
	Stats   hg.Stats
}

// dataset pairs an immutable hypergraph with a monotonically increasing
// version. Replacing a dataset under the same name bumps the version,
// which flows into every cache key derived from it — stale results are
// never served, they simply age out of the LRU. Stats are computed once
// at registration (they are immutable per version, and recomputing them
// scans the whole hypergraph), including the sampled containment probe
// the planner's toplex knob reads; dual-orientation stats are computed
// lazily on the first clique-side query that needs them.
//
// Each version also owns two fresh calibration tables (line and clique
// orientation — their Stage-3 costs differ because the dual swaps the
// degree structure). Tying the tables to the dataset value means
// replacing a dataset implicitly discards its calibration: observations
// of the old hypergraph say nothing about the new one.
type dataset struct {
	h       *hg.Hypergraph
	version uint64
	stats   hg.Stats

	costs     *core.CostModel // line-orientation calibration
	dualCosts *core.CostModel // clique-orientation calibration
	dualOnce  sync.Once
	dualStats hg.Stats
}

// statsFor returns the statistics of the orientation a query actually
// projects; the dual side is computed on first use and cached for the
// life of this version.
func (d *dataset) statsFor(dual bool) hg.Stats {
	if !dual {
		return d.stats
	}
	d.dualOnce.Do(func() {
		dh := d.h.Dual()
		st := hg.ComputeStats(d.stats.Name+"/dual", dh)
		st.ToplexSample = hg.SampleContainment(dh)
		d.dualStats = st
	})
	return d.dualStats
}

// costsFor returns the calibration table of one orientation.
func (d *dataset) costsFor(dual bool) *core.CostModel {
	if dual {
		return d.dualCosts
	}
	return d.costs
}

// Registry is a thread-safe name → hypergraph table. Hypergraphs are
// immutable once registered, so readers share them without copying.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*dataset
	nextVer uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*dataset)}
}

// Add registers h under name, replacing any previous dataset with that
// name, and returns the assigned version.
func (r *Registry) Add(name string, h *hg.Hypergraph) uint64 {
	stats := hg.ComputeStats(name, h)
	stats.ToplexSample = hg.SampleContainment(h)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextVer++
	r.byName[name] = &dataset{
		h:         h,
		version:   r.nextVer,
		stats:     stats,
		costs:     core.NewCostModel(),
		dualCosts: core.NewCostModel(),
	}
	return r.nextVer
}

// ApplyDelta installs newH as the next version of name, but only while
// oldVersion is still the current version (compare-and-swap against
// concurrent writers; losers get ErrVersionConflict and must re-read).
//
// Unlike Add, the old version's calibration tables are carried forward:
// a delta perturbs a bounded neighborhood of the hypergraph, so Stage-3
// cost observations of vN remain accurate predictors for vN+1 — whereas
// a full replacement says nothing about the new hypergraph and rightly
// resets them. The EWMA smoothing absorbs drift across long delta
// chains. The dual-orientation statistics do reset (fresh dualOnce):
// they are exact counts, not estimates, and must describe the new
// hypergraph.
func (r *Registry) ApplyDelta(name string, oldVersion uint64, newH *hg.Hypergraph) (uint64, error) {
	stats := hg.ComputeStats(name, newH)
	stats.ToplexSample = hg.SampleContainment(newH)
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	if d.version != oldVersion {
		return 0, fmt.Errorf("serve: %w: delta based on version %d of %q, current is %d",
			ErrVersionConflict, oldVersion, name, d.version)
	}
	r.nextVer++
	r.byName[name] = &dataset{
		h:         newH,
		version:   r.nextVer,
		stats:     stats,
		costs:     d.costs,
		dualCosts: d.dualCosts,
	}
	return r.nextVer, nil
}

// addRestored registers h under name with a pinned version — the
// snapshot-restore path, where reusing the pre-restart version is what
// keeps previously minted cache keys (and spilled entries) valid. The
// version counter advances past the pinned version so later Add calls
// never collide with it.
func (r *Registry) addRestored(name string, h *hg.Hypergraph, version uint64) {
	stats := hg.ComputeStats(name, h)
	stats.ToplexSample = hg.SampleContainment(h)
	r.mu.Lock()
	defer r.mu.Unlock()
	if version > r.nextVer {
		r.nextVer = version
	}
	r.byName[name] = &dataset{
		h:         h,
		version:   version,
		stats:     stats,
		costs:     core.NewCostModel(),
		dualCosts: core.NewCostModel(),
	}
}

// bumpNextVersion advances the version counter to at least v.
func (r *Registry) bumpNextVersion(v uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v > r.nextVer {
		r.nextVer = v
	}
}

// registrySnapshot is one (name, hypergraph, version) triple from
// snapshot.
type registrySnapshot struct {
	name    string
	h       *hg.Hypergraph
	version uint64
}

// snapshot returns the current registry contents and version counter.
func (r *Registry) snapshot() ([]registrySnapshot, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]registrySnapshot, 0, len(r.byName))
	for name, d := range r.byName {
		out = append(out, registrySnapshot{name: name, h: d.h, version: d.version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, r.nextVer
}

// drain empties the registry and returns the removed datasets — the
// teardown path behind Service.Close.
func (r *Registry) drain() []*dataset {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*dataset, 0, len(r.byName))
	for _, d := range r.byName {
		out = append(out, d)
	}
	r.byName = make(map[string]*dataset)
	return out
}

// Load reads a hypergraph from path and registers it under name. Binary
// files are mapped (hgio.MapFile) rather than parsed — registration is
// O(pages touched) and the dataset can exceed RAM; text formats load
// through the ordinary readers.
func (r *Registry) Load(name, path string) (uint64, error) {
	h, err := hgio.MapFile(path)
	if err != nil {
		return 0, err
	}
	return r.Add(name, h), nil
}

// Remove drops the named dataset, reporting whether it existed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byName[name]
	delete(r.byName, name)
	return ok
}

// Get returns the named hypergraph and its version.
func (r *Registry) Get(name string) (*hg.Hypergraph, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	if !ok {
		return nil, 0, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	return d.h, d.version, nil
}

// at returns the named dataset only while version is still its current
// version. Callers holding a pinned snapshot (hypergraph + version) use
// it to reach the version's cached stats and calibration tables; after
// a concurrent replacement it reports false and the caller falls back
// to computing what it needs from the snapshot itself.
func (r *Registry) at(name string, version uint64) (*dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	if !ok || d.version != version {
		return nil, false
	}
	return d, true
}

// Calibration snapshots the named dataset's calibration tables for both
// orientations.
func (r *Registry) Calibration(name string) (CalibrationInfo, error) {
	r.mu.RLock()
	d, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return CalibrationInfo{}, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	return CalibrationInfo{
		Name:    name,
		Version: d.version,
		Line:    d.costs.Snapshot(),
		Clique:  d.dualCosts.Snapshot(),
	}, nil
}

// CalibrationInfo is the observed Stage-3 cost state of one dataset
// version: every (strategy, relabel, toplex, batch-shape) cell the
// service has measured, per orientation, with its smoothed per-s
// estimate and observation count.
type CalibrationInfo struct {
	Name    string                 `json:"name"`
	Version uint64                 `json:"version"`
	Line    []core.CostObservation `json:"line"`
	Clique  []core.CostObservation `json:"clique"`
}

// Stats returns the registration-time statistics of the named dataset.
func (r *Registry) Stats(name string) (hg.Stats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	if !ok {
		return hg.Stats{}, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	return d.stats, nil
}

// List returns all registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.byName))
	for name, d := range r.byName {
		out = append(out, DatasetInfo{Name: name, Version: d.version, Stats: d.stats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
