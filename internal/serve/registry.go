package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hyperline/internal/hg"
	"hyperline/internal/hgio"
)

// ErrUnknownDataset marks lookups of unregistered dataset names; the
// HTTP layer maps it to 404 (vs 400 for malformed requests) via
// errors.Is.
var ErrUnknownDataset = errors.New("unknown dataset")

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string
	Version uint64
	Stats   hg.Stats
}

// dataset pairs an immutable hypergraph with a monotonically increasing
// version. Replacing a dataset under the same name bumps the version,
// which flows into every cache key derived from it — stale results are
// never served, they simply age out of the LRU. Stats are computed once
// at registration (they are immutable per version, and recomputing them
// scans the whole hypergraph).
type dataset struct {
	h       *hg.Hypergraph
	version uint64
	stats   hg.Stats
}

// Registry is a thread-safe name → hypergraph table. Hypergraphs are
// immutable once registered, so readers share them without copying.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*dataset
	nextVer uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*dataset)}
}

// Add registers h under name, replacing any previous dataset with that
// name, and returns the assigned version.
func (r *Registry) Add(name string, h *hg.Hypergraph) uint64 {
	stats := hg.ComputeStats(name, h)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextVer++
	r.byName[name] = &dataset{h: h, version: r.nextVer, stats: stats}
	return r.nextVer
}

// Load reads a hypergraph from path (format by extension, as
// hgio.LoadFile: ".pairs", ".bin", or adjacency lines) and registers it
// under name.
func (r *Registry) Load(name, path string) (uint64, error) {
	h, err := hgio.LoadFile(path)
	if err != nil {
		return 0, err
	}
	return r.Add(name, h), nil
}

// Remove drops the named dataset, reporting whether it existed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byName[name]
	delete(r.byName, name)
	return ok
}

// Get returns the named hypergraph and its version.
func (r *Registry) Get(name string) (*hg.Hypergraph, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	if !ok {
		return nil, 0, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	return d.h, d.version, nil
}

// Stats returns the registration-time statistics of the named dataset.
func (r *Registry) Stats(name string) (hg.Stats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[name]
	if !ok {
		return hg.Stats{}, fmt.Errorf("serve: %w %q", ErrUnknownDataset, name)
	}
	return d.stats, nil
}

// List returns all registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.byName))
	for name, d := range r.byName {
		out = append(out, DatasetInfo{Name: name, Version: d.version, Stats: d.stats})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
