package serve

import (
	"context"
	"strings"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

func autoCfg() core.PipelineConfig {
	return core.PipelineConfig{
		Core:   core.Config{Relabel: hg.RelabelAuto},
		Toplex: core.ToplexAuto,
	}
}

// TestAutoKnobsShareCacheWithPinned: a planner-chosen configuration is
// resolved before cache keys are derived, so it hits the entry its
// pinned twin cached (and vice versa). On a small dataset auto
// resolves to the neutral defaults (RelabelNone, ToplexOff) — the zero
// PipelineConfig.
func TestAutoKnobsShareCacheWithPinned(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	ctx := context.Background()

	// Pinned default computes...
	if _, cached, err := svc.SLineGraph(ctx, "h", 2, core.PipelineConfig{}); err != nil || cached {
		t.Fatalf("pinned first query: cached=%v err=%v, want fresh compute", cached, err)
	}
	// ...and the auto twin must hit the same entry.
	res, cached, err := svc.SLineGraph(ctx, "h", 2, autoCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("planner-chosen query missed the entry its pinned twin cached")
	}
	if res == nil || res.Graph.NumEdges() == 0 {
		t.Fatal("shared result is empty")
	}

	// The reverse direction too: a fresh auto query caches under its
	// resolved key, which the pinned twin hits.
	svc2 := New(Config{})
	svc2.Add("h", paperExample())
	first, cached, err := svc2.SLineGraph(ctx, "h", 2, autoCfg())
	if err != nil || cached {
		t.Fatalf("auto first query: cached=%v err=%v, want fresh compute", cached, err)
	}
	if first.Plan.KnobReason == "" {
		t.Fatal("auto-planned result carries no knob reason")
	}
	if _, cached, err = svc2.SLineGraph(ctx, "h", 2, core.PipelineConfig{}); err != nil || !cached {
		t.Fatalf("pinned query after auto: cached=%v err=%v, want hit", cached, err)
	}
}

// TestAutoKnobsSplitFromOtherPinned: resolution shares entries only
// with the configuration it resolves to — a differently pinned config
// keeps its own entry.
func TestAutoKnobsSplitFromOtherPinned(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	ctx := context.Background()

	asc := core.PipelineConfig{Core: core.Config{Relabel: hg.RelabelAscending}}
	if _, cached, err := svc.SLineGraph(ctx, "h", 2, asc); err != nil || cached {
		t.Fatalf("pinned-ascending first query: cached=%v err=%v", cached, err)
	}
	// Auto resolves to RelabelNone here, so it must NOT hit the
	// ascending entry.
	if _, cached, err := svc.SLineGraph(ctx, "h", 2, autoCfg()); err != nil || cached {
		t.Fatalf("auto query after pinned-ascending: cached=%v err=%v, want split (fresh compute)", cached, err)
	}
	// And the ascending entry is still there.
	if _, cached, err := svc.SLineGraph(ctx, "h", 2, asc); err != nil || !cached {
		t.Fatalf("pinned-ascending repeat: cached=%v err=%v, want hit", cached, err)
	}
}

// TestMeasureCacheSharesResolvedKeys: the measure path derives its keys
// from the resolved configuration too, so a planner-chosen measure
// query hits the value its pinned twin cached without touching the
// projection.
func TestMeasureCacheSharesResolvedKeys(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	ctx := context.Background()

	if _, err := svc.Measure(ctx, "h", false, 2, core.PipelineConfig{}, "components", nil); err != nil {
		t.Fatal(err)
	}
	mr, err := svc.Measure(ctx, "h", false, 2, autoCfg(), "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Cached {
		t.Fatal("planner-chosen measure query missed the value its pinned twin cached")
	}
}

// TestCalibrationLifecycle: queries feed the dataset's calibration
// table; replacing the dataset resets it along with the version.
func TestCalibrationLifecycle(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	ctx := context.Background()

	info, err := svc.Calibration("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Line) != 0 || len(info.Clique) != 0 {
		t.Fatalf("fresh dataset has calibration: %+v", info)
	}

	if _, _, err := svc.SLineGraphs(ctx, "h", []int{2, 3}, core.PipelineConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.SCliqueGraph(ctx, "h", 1, core.PipelineConfig{}); err != nil {
		t.Fatal(err)
	}
	info, err = svc.Calibration("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Line) != 1 || !info.Line[0].Key.Multi || info.Line[0].N != 1 {
		t.Fatalf("line calibration after one batch = %+v, want one multi-s cell with N=1", info.Line)
	}
	if len(info.Clique) != 1 || info.Clique[0].Key.Multi {
		t.Fatalf("clique calibration = %+v, want one single-s cell", info.Clique)
	}

	// Replacement: new version, empty tables.
	svc.Add("h", paperExample())
	info, err = svc.Calibration("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Line) != 0 || len(info.Clique) != 0 {
		t.Fatalf("replaced dataset kept calibration: %+v", info)
	}

	if _, err := svc.Calibration("nope"); err == nil {
		t.Fatal("want error for unknown dataset calibration")
	}
}

// TestCostsEndpoint: the calibration table is inspectable over HTTP,
// keyed by dataset, and reflects observations made through the API.
func TestCostsEndpoint(t *testing.T) {
	ts, svc := newTestServer(t)
	svc.Add("paper", paperExample())

	var fresh struct {
		Name    string         `json:"name"`
		Version uint64         `json:"version"`
		Line    []costCellJSON `json:"line"`
		Clique  []costCellJSON `json:"clique"`
	}
	do(t, "GET", ts.URL+"/v1/datasets/paper/costs", nil, 200, &fresh)
	if fresh.Name != "paper" || len(fresh.Line) != 0 || len(fresh.Clique) != 0 {
		t.Fatalf("fresh costs = %+v, want empty tables", fresh)
	}

	if _, _, err := svc.SLineGraph(context.Background(), "paper", 2, core.PipelineConfig{}); err != nil {
		t.Fatal(err)
	}
	var after struct {
		Line []costCellJSON `json:"line"`
	}
	do(t, "GET", ts.URL+"/v1/datasets/paper/costs", nil, 200, &after)
	if len(after.Line) != 1 {
		t.Fatalf("costs after one query: %+v, want one line cell", after)
	}
	cell := after.Line[0]
	if cell.N != 1 || cell.Multi || cell.PerSMS < 0 {
		t.Fatalf("cost cell = %+v", cell)
	}
	if cell.Strategy == "" || cell.Relabel == "" {
		t.Fatalf("cost cell missing names: %+v", cell)
	}

	do(t, "GET", ts.URL+"/v1/datasets/ghost/costs", nil, 404, nil)
}

// TestRegistryStatsCarryContainmentProbe: registration computes the
// containment probe the planner's toplex knob reads, on both
// orientations.
func TestRegistryStatsCarryContainmentProbe(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample()) // 2 of 4 hyperedges are contained
	st, err := svc.Stats("h")
	if err != nil {
		t.Fatal(err)
	}
	if st.ToplexSample != 0.5 {
		t.Fatalf("registered ToplexSample = %v, want 0.5", st.ToplexSample)
	}
	_, version, err := svc.reg.Get("h")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := svc.reg.at("h", version)
	if !ok {
		t.Fatal("registry lost the dataset")
	}
	dual := d.statsFor(true)
	if dual.NumEdges != paperExample().NumVertices() {
		t.Fatalf("dual stats describe %d hyperedges, want %d", dual.NumEdges, paperExample().NumVertices())
	}
	if !strings.HasSuffix(dual.Name, "/dual") {
		t.Fatalf("dual stats name = %q", dual.Name)
	}
}
