package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/gen"
	"hyperline/internal/hg"
)

// TestMeasureServedFromCache is the acceptance check for the measures
// engine: on a warmed dataset a repeated measure request is served
// from the measure cache without recomputing the measure, proved by
// the instrumented compute counter.
func TestMeasureServedFromCache(t *testing.T) {
	svc := New(Config{})
	svc.Add("paper", paperExample())

	first, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold measure must not report cached")
	}
	if got := svc.MeasureCacheStats().Computes; got != 1 {
		t.Fatalf("cold measure ran %d computes, want 1", got)
	}
	second, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || !second.ProjectionCached {
		t.Fatalf("warm measure flags: %+v", second)
	}
	if second.MeasureEntry != first.MeasureEntry {
		t.Fatal("warm measure must return the pointer-identical cached entry")
	}
	if got := svc.MeasureCacheStats().Computes; got != 1 {
		t.Fatalf("warm measure recomputed (computes=%d, want 1)", got)
	}
	// Execution knobs (workers) share the entry: the fingerprint
	// excludes them and measures are worker-deterministic.
	cfg := core.PipelineConfig{Core: core.Config{Workers: 3}}
	third, err := svc.Measure(context.Background(), "paper", false, 2, cfg, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.MeasureEntry != first.MeasureEntry {
		t.Fatal("workers-only config change must hit the same measure entry")
	}
}

// TestMeasureCacheRace hammers the same and different measure keys
// from 32 goroutines under -race: every result for one key must be the
// pointer-identical entry, cached flags must be truthful (at most one
// non-cached response per key), and the compute counter must equal the
// number of distinct keys.
func TestMeasureCacheRace(t *testing.T) {
	svc := New(Config{})
	svc.Add("g", gen.Community(gen.CommunityConfig{
		Seed: 3, NumVertices: 50, NumCommunities: 4,
		MeanCommunitySize: 8, EdgesPerCommunity: 5,
	}))

	type query struct {
		s       int
		measure string
	}
	queries := []query{
		{1, "components"}, {2, "components"}, {2, "harmonic"}, {3, "clustering"},
	}
	const goroutines = 32
	results := make([]*MeasureResult, goroutines)
	qIdx := make([]int, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		qIdx[i] = i % len(queries)
		go func(i int) {
			defer wg.Done()
			q := queries[qIdx[i]]
			res, err := svc.Measure(context.Background(), "g", false, q.s, core.PipelineConfig{}, q.measure, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Pointer identity per key, and truthful cached flags: at most one
	// response per key may claim to have computed (the others shared
	// the flight or hit the cache).
	for qi := range queries {
		var entry *MeasureEntry
		uncached := 0
		for i := 0; i < goroutines; i++ {
			if qIdx[i] != qi {
				continue
			}
			if entry == nil {
				entry = results[i].MeasureEntry
			} else if results[i].MeasureEntry != entry {
				t.Fatalf("query %d returned two distinct entries", qi)
			}
			if !results[i].Cached {
				uncached++
			}
		}
		if uncached > 1 {
			t.Fatalf("query %d: %d responses claim to have computed", qi, uncached)
		}
	}
	if got := svc.MeasureCacheStats().Computes; got != int64(len(queries)) {
		t.Fatalf("computes = %d, want %d (one per distinct key)", got, len(queries))
	}
	// A second concurrent round must be all hits: no new computes.
	var wg2 sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			q := queries[i%len(queries)]
			res, err := svc.Measure(context.Background(), "g", false, q.s, core.PipelineConfig{}, q.measure, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if !res.Cached {
				t.Errorf("second round query %d not cached", i%len(queries))
			}
		}(i)
	}
	wg2.Wait()
	if got := svc.MeasureCacheStats().Computes; got != int64(len(queries)) {
		t.Fatalf("second round recomputed: computes = %d, want %d", got, len(queries))
	}
}

// TestMeasureCacheNeverStale replaces a dataset under churn that keeps
// the tiny LRU at capacity and asserts the cache never serves a value
// computed on a previous dataset version.
func TestMeasureCacheNeverStale(t *testing.T) {
	svc := New(Config{MeasureCacheEntries: 2})
	// v1: the paper example — 1-line graph has 1 component.
	svc.Add("d", paperExample())
	v1, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if *v1.Value.Scalar != 1 {
		t.Fatalf("v1 components = %v, want 1", *v1.Value.Scalar)
	}
	// Fill the 2-entry LRU with other keys so v1's entry is evicted.
	if _, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "diameter", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "clustering-global", nil); err != nil {
		t.Fatal(err)
	}
	// v2: two disjoint cliques — 1-line graph has 2 components.
	svc.Add("d", exampleTwoComponents())
	v2, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached {
		t.Fatal("replaced dataset must not serve the old version's value")
	}
	if *v2.Value.Scalar != 2 {
		t.Fatalf("v2 components = %v, want 2", *v2.Value.Scalar)
	}
	// Churn the full LRU across both versions a few times: every
	// response must match its version's ground truth.
	for i := 0; i < 5; i++ {
		got, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "components", nil)
		if err != nil {
			t.Fatal(err)
		}
		if *got.Value.Scalar != 2 {
			t.Fatalf("round %d served stale components = %v", i, *got.Value.Scalar)
		}
		if _, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "diameter", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Measure(context.Background(), "d", false, 1, core.PipelineConfig{}, "clustering-global", nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.MeasureCacheStats()
	if stats.Entries > 2 {
		t.Fatalf("LRU over capacity: %+v", stats)
	}
	if stats.Evictions == 0 {
		t.Fatalf("churn should have evicted entries: %+v", stats)
	}
}

// exampleTwoComponents returns a hypergraph whose 1-line graph has two
// components: two hyperedge pairs sharing vertices, no overlap across
// pairs.
func exampleTwoComponents() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1}, {1, 2},
		{5, 6}, {6, 7},
	}, 8)
}

// TestMeasureSweepBatching checks the batched sweep path: one call
// fills every s, results are ordered by ascending distinct s, warm
// entries are honored, and a repeat sweep recomputes nothing.
func TestMeasureSweepBatching(t *testing.T) {
	svc := New(Config{})
	svc.Add("paper", paperExample())

	// Warm s=2 alone first.
	if _, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{}, "components", nil); err != nil {
		t.Fatal(err)
	}
	results, err := svc.MeasureSweep(context.Background(), "paper", false, []int{3, 1, 2, 2}, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep returned %d results, want 3 distinct", len(results))
	}
	for i, wantS := range []int{1, 2, 3} {
		if results[i].S != wantS {
			t.Fatalf("result %d has s=%d, want %d", i, results[i].S, wantS)
		}
	}
	if !results[1].Cached {
		t.Fatal("pre-warmed s=2 must be served from the measure cache")
	}
	if results[0].Cached || results[2].Cached {
		t.Fatal("cold sweep members must not report cached")
	}
	computes := svc.MeasureCacheStats().Computes
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 (s=2 warm + s=1,3 cold)", computes)
	}
	again, err := svc.MeasureSweep(context.Background(), "paper", false, []int{1, 2, 3}, core.PipelineConfig{}, "components", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if !r.Cached {
			t.Fatalf("repeat sweep s=%d not cached", r.S)
		}
	}
	if got := svc.MeasureCacheStats().Computes; got != computes {
		t.Fatalf("repeat sweep recomputed: %d -> %d", computes, got)
	}
}

// TestMeasureErrors covers the failure paths: unknown measure (the
// error lists the registry), unknown dataset, bad params.
func TestMeasureErrors(t *testing.T) {
	svc := New(Config{})
	svc.Add("paper", paperExample())
	if _, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{}, "nope", nil); err == nil ||
		!strings.Contains(err.Error(), "components") {
		t.Fatalf("unknown measure error must list the registry, got %v", err)
	}
	if _, err := svc.Measure(context.Background(), "ghost", false, 2, core.PipelineConfig{}, "components", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("unknown dataset error, got %v", err)
	}
	if _, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{}, "distances", nil); err == nil {
		t.Fatal("distances without source must fail")
	}
	// A failed compute (absent source hyperedge) must not pollute the
	// cache or the compute counter's meaning.
	before := svc.MeasureCacheStats()
	if _, err := svc.Measure(context.Background(), "paper", false, 2, core.PipelineConfig{},
		"distances", map[string]string{"source": "3"}); err == nil {
		t.Fatal("absent source hyperedge must fail")
	}
	after := svc.MeasureCacheStats()
	if after.Entries != before.Entries {
		t.Fatalf("failed compute cached an entry: %+v -> %+v", before, after)
	}
}

// TestHTTPMeasuresEndpoint exercises the new sweep endpoint and the
// registry listing end to end.
func TestHTTPMeasuresEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)

	var infos []map[string]any
	do(t, http.MethodGet, ts.URL+"/v1/measures", nil, http.StatusOK, &infos)
	names := map[string]bool{}
	for _, info := range infos {
		names[fmt.Sprint(info["name"])] = true
	}
	for _, want := range []string{"components", "betweenness", "pagerank", "eccentricity"} {
		if !names[want] {
			t.Fatalf("/v1/measures missing %s: %v", want, names)
		}
	}

	var sweep struct {
		Measure string `json:"measure"`
		Results []struct {
			S      int  `json:"s"`
			Cached bool `json:"cached"`
			Nodes  int  `json:"nodes"`
			Value  struct {
				Scalar *float64 `json:"scalar"`
			} `json:"value"`
		} `json:"results"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?s=1:3&measure=components",
		nil, http.StatusOK, &sweep)
	if len(sweep.Results) != 3 || sweep.Measure != "components" {
		t.Fatalf("sweep response: %+v", sweep)
	}
	for i, r := range sweep.Results {
		if r.S != i+1 || r.Value.Scalar == nil {
			t.Fatalf("sweep result %d: %+v", i, r)
		}
	}
	// Repeat: all cached.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?s=1:3&measure=components",
		nil, http.StatusOK, &sweep)
	for _, r := range sweep.Results {
		if !r.Cached {
			t.Fatalf("repeat sweep s=%d not cached", r.S)
		}
	}
	// Failure modes.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?s=1:3", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?s=1:3&measure=nope", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?measure=components", nil, http.StatusBadRequest, nil)
	do(t, http.MethodGet, ts.URL+"/v1/datasets/ghost/measures?s=1&measure=components", nil, http.StatusNotFound, nil)
	// Parameterized measure over HTTP.
	var dist struct {
		Results []struct {
			Value struct {
				Ints []int32 `json:"ints"`
			} `json:"value"`
		} `json:"results"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/measures?s=2&measure=distances&source=0",
		nil, http.StatusOK, &dist)
	if len(dist.Results) != 1 || len(dist.Results[0].Value.Ints) == 0 {
		t.Fatalf("distances sweep: %+v", dist)
	}
}

// TestHTTPCentralityKinds pins the centrality endpoint's registry
// wiring: the three newly exposed kinds work, and an unknown kind is a
// 400 listing the valid kinds — never a silent default.
func TestHTTPCentralityKinds(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadPaper(t, ts)
	var cent struct {
		Cached bool `json:"cached"`
		Result struct {
			Kind   string    `json:"kind"`
			Scores []float64 `json:"scores"`
		} `json:"result"`
	}
	for _, kind := range []string{"betweenness", "closeness", "harmonic", "pagerank", "eccentricity"} {
		do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2&kind="+kind,
			nil, http.StatusOK, &cent)
		if cent.Result.Kind != kind || len(cent.Result.Scores) == 0 {
			t.Fatalf("centrality %s: %+v", kind, cent.Result)
		}
	}
	// Default kind is betweenness.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2", nil, http.StatusOK, &cent)
	if cent.Result.Kind != "betweenness" {
		t.Fatalf("default kind = %q", cent.Result.Kind)
	}
	// Unknown kind: 400 with the menu.
	var errBody struct {
		Error string `json:"error"`
	}
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2&kind=closness",
		nil, http.StatusBadRequest, &errBody)
	for _, want := range []string{"closeness", "eccentricity", "pagerank"} {
		if !strings.Contains(errBody.Error, want) {
			t.Fatalf("unknown-kind error must list %q: %s", want, errBody.Error)
		}
	}
	// Legacy endpoints share the measure cache: a repeat is cached.
	do(t, http.MethodGet, ts.URL+"/v1/datasets/paper/centrality?s=2&kind=closeness",
		nil, http.StatusOK, &cent)
	if !cent.Cached {
		t.Fatal("repeated centrality must be served from the measure cache")
	}
}
