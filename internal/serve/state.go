package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hyperline/internal/hg"
	"hyperline/internal/hgio"
)

// Snapshot/restore: a graceful shutdown persists the registry into a
// state directory — each dataset as a binary-format file plus a
// manifest recording name → version → file and the version counter —
// and flushes the in-memory caches through the spill store. A
// subsequent boot maps the dataset files back (O(pages touched), not
// O(bytes)) under their *original* versions, so every cache key minted
// before the restart still names the same entry and the spill tier
// turns first-pass memory misses into disk hits: a warm start.
//
// The manifest is advisory for the spill tier (the spill directory
// indexes itself) but authoritative for the registry: version reuse is
// what makes warmth possible, and the preserved next_version counter
// keeps post-restore replacements from colliding with restored keys.

// manifestName is the registry manifest file inside a state directory.
const manifestName = "manifest.json"

// stateDatasetsDir holds the persisted dataset files.
const stateDatasetsDir = "datasets"

// stateManifest is the serialized registry.
type stateManifest struct {
	FormatVersion int               `json:"format_version"`
	NextVersion   uint64            `json:"next_version"`
	Datasets      []manifestDataset `json:"datasets"`
}

// manifestDataset records one dataset: File is relative to the state
// directory.
type manifestDataset struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	File    string `json:"file"`
}

// datasetFileName is the stable, filesystem-safe location for one
// dataset version (names are user-controlled; versions make replaced
// datasets land in distinct files).
func datasetFileName(name string, version uint64) string {
	sum := sha256.Sum256([]byte(name))
	return filepath.Join(stateDatasetsDir, fmt.Sprintf("%s@%d.bin", hex.EncodeToString(sum[:8]), version))
}

// SaveState persists the registry and flushes both caches through the
// spill store (when one is attached) so a subsequent RestoreState boots
// warm. Dataset files already present from a previous save of the same
// version are reused, so repeated snapshots of a stable registry cost
// one manifest write.
func (s *Service) SaveState(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, stateDatasetsDir), 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	snap, nextVer := s.reg.snapshot()
	m := stateManifest{FormatVersion: 1, NextVersion: nextVer}
	for _, d := range snap {
		rel := datasetFileName(d.name, d.version)
		path := filepath.Join(dir, rel)
		if _, err := os.Stat(path); err != nil {
			if err := saveBinaryAtomic(dir, path, d.h); err != nil {
				return fmt.Errorf("serve: persisting dataset %q: %w", d.name, err)
			}
		}
		m.Datasets = append(m.Datasets, manifestDataset{Name: d.name, Version: d.version, File: rel})
	}

	s.cache.flushToSpill()
	s.mcache.flushToSpill()

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, spillTmpPrefix+"manifest-*")
	if err != nil {
		return fmt.Errorf("serve: writing manifest: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: writing manifest: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: writing manifest: %w", err)
	}
	return nil
}

// saveBinaryAtomic writes h to path via a tmp file in dir so a crash
// mid-save never leaves a torn dataset file behind a manifest that
// names it.
func saveBinaryAtomic(dir, path string, h *hg.Hypergraph) error {
	tmp, err := os.CreateTemp(dir, spillTmpPrefix+"ds-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	err = hgio.WriteBinary(tmp, h)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// RestoreState rehydrates the registry from a state directory written
// by SaveState: dataset files are mapped (not parsed — boot time is
// O(pages touched)) and registered under their original versions, so
// cache keys minted before the restart remain valid and spilled entries
// hit. A missing manifest is a cold start, not an error. Returns the
// restored dataset names.
//
// Restore is resilient to a crash mid-snapshot: stray tmp files from an
// interrupted save are swept, and a corrupt or truncated dataset file
// only costs that one dataset (skipped with a log line — a -load flag or
// re-upload re-registers it cold) rather than aborting the whole boot.
// Likewise a manifest that no longer parses degrades to a cold start.
func (s *Service) RestoreState(dir string) ([]string, error) {
	sweepStateTmp(dir)
	sweepStateTmp(filepath.Join(dir, stateDatasetsDir))
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reading manifest: %w", err)
	}
	var m stateManifest
	if err := json.Unmarshal(data, &m); err != nil {
		log.Printf("serve: state manifest in %s is corrupt (%v); starting cold", dir, err)
		return nil, nil
	}
	if m.FormatVersion != 1 {
		return nil, fmt.Errorf("serve: unsupported state format %d", m.FormatVersion)
	}
	var names []string
	for _, d := range m.Datasets {
		h, err := hgio.MapBinary(filepath.Join(dir, d.File))
		if err != nil {
			log.Printf("serve: skipping dataset %q during restore: %v", d.Name, err)
			continue
		}
		s.reg.addRestored(d.Name, h, d.Version)
		names = append(names, d.Name)
	}
	s.reg.bumpNextVersion(m.NextVersion)
	return names, nil
}

// sweepStateTmp removes in-progress tmp files a crash mid-SaveState can
// strand next to the manifest and dataset files. Missing directories
// and remove races are ignored — the sweep is best-effort hygiene.
func sweepStateTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		if !de.IsDir() && strings.HasPrefix(de.Name(), spillTmpPrefix) {
			os.Remove(filepath.Join(dir, de.Name()))
		}
	}
}

// Close releases out-of-heap resources deterministically: every mapped
// dataset is unmapped. Callers must have drained in-flight queries
// first (the daemon closes after http.Server.Shutdown returns). Safe to
// call once; datasets dropped earlier by Remove are unmapped by their
// GC finalizer instead.
func (s *Service) Close() error {
	var first error
	for _, d := range s.reg.drain() {
		if err := d.h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
