package serve

import (
	"container/list"
	"sync"

	"hyperline/internal/core"
	"hyperline/internal/measure"
)

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type cacheEntry[V any] struct {
	key string
	val V
}

// lru is the thread-safe LRU core shared by the pipeline-result cache
// and the measure cache. Values are shared by reference — cached
// objects are immutable by convention, so all readers see the same
// object.
type lru[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, promoting it to most recently
// used.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry[V]).key)
		c.evictions++
	}
}

// Len returns the current number of cached values.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots hit/miss/eviction counters.
func (c *lru[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// DefaultCacheEntries is the pipeline-result LRU capacity when none is
// configured.
const DefaultCacheEntries = 128

// Cache is a thread-safe LRU of pipeline results keyed by
// (dataset, version, orientation, s, options-fingerprint) strings.
type Cache struct{ lru[*core.PipelineResult] }

// NewCache returns an LRU cache holding up to capacity results
// (DefaultCacheEntries if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{*newLRU[*core.PipelineResult](capacity)}
}

// DefaultMeasureCacheEntries is the measure LRU capacity when none is
// configured. Measure values are much smaller than pipeline results
// (one vector or scalar vs a whole CSR graph), so the default is
// proportionally larger.
const DefaultMeasureCacheEntries = 1024

// MeasureEntry is one cached measure evaluation: the value plus the
// projection shape needed to serve a response (node→hyperedge mapping,
// counts) without re-fetching — or recomputing — the projection. The
// entry is self-contained so a measure hit stays O(1) even after the
// underlying projection aged out of the pipeline LRU.
type MeasureEntry struct {
	Value *measure.Value
	Nodes int
	Edges int
	// HyperedgeIDs is shared with the projection that produced the
	// value (immutable by convention).
	HyperedgeIDs []uint32
}

// NewMeasureEntry builds the self-contained cache entry for one
// measure evaluation on a projection. The node→hyperedge mapping only
// labels per-node vectors; scalar- and group-shaped values (diameter,
// components, connectivity) neither serialize it nor should pin it in
// the LRU after the projection evicts, so it is attached only when the
// value is per-node. Both the serving path and the sessionless
// hyperline.Execute build entries through this one rule.
func NewMeasureEntry(res *core.PipelineResult, val *measure.Value) *MeasureEntry {
	e := &MeasureEntry{
		Value: val,
		Nodes: res.Graph.NumNodes(),
		Edges: res.Graph.NumEdges(),
	}
	if val.Scores != nil || val.Ints != nil {
		e.HyperedgeIDs = res.HyperedgeIDs
	}
	return e
}

// MeasureCache is a thread-safe LRU of measure entries keyed by
// (dataset, version, orientation, s, options-fingerprint, measure,
// canonical-params) strings — the pipeline key extended by the measure
// identity, so it can only hit where the underlying projection key
// would.
type MeasureCache struct{ lru[*MeasureEntry] }

// NewMeasureCache returns an LRU cache holding up to capacity measure
// entries (DefaultMeasureCacheEntries if capacity <= 0).
func NewMeasureCache(capacity int) *MeasureCache {
	if capacity <= 0 {
		capacity = DefaultMeasureCacheEntries
	}
	return &MeasureCache{*newLRU[*MeasureEntry](capacity)}
}
