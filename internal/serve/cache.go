package serve

import (
	"container/list"
	"sync"

	"hyperline/internal/core"
	"hyperline/internal/measure"
)

// CacheStats is a point-in-time snapshot of cache effectiveness.
// DiskHits/DiskMisses count what happened after a memory miss when a
// spill store is attached: a disk hit decoded a previously evicted (or
// snapshot-flushed) entry instead of recomputing.
type CacheStats struct {
	Entries    int   `json:"entries"`
	Capacity   int   `json:"capacity"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	DiskHits   int64 `json:"disk_hits,omitempty"`
	DiskMisses int64 `json:"disk_misses,omitempty"`
}

type cacheEntry[V any] struct {
	key string
	val V
}

// lru is the thread-safe LRU core shared by the pipeline-result cache
// and the measure cache. Values are shared by reference — cached
// objects are immutable by convention, so all readers see the same
// object.
//
// With a spill store attached (setSpill), evicted entries serialize to
// disk and Get probes the disk tier after a memory miss, so the memory
// capacity bounds the hot set while the disk budget bounds the total
// retained set. All spill IO happens outside the lock.
type lru[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64

	spill      *spillStore
	encode     func(V) ([]byte, error)
	decode     func([]byte) (V, error)
	diskHits   int64
	diskMisses int64
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// setSpill attaches the disk tier: evictions encode to store, and Get
// probes store after a memory miss. Must be called before the cache is
// shared across goroutines.
func (c *lru[V]) setSpill(store *spillStore, encode func(V) ([]byte, error), decode func([]byte) (V, error)) {
	c.spill = store
	c.encode = encode
	c.decode = decode
}

// Get returns the cached value for key, promoting it to most recently
// used. After a memory miss it probes the spill store (when attached):
// a disk hit decodes, repopulates the memory tier, and still reports
// ok=true — callers never observe the tiering, only the stats do.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		val := el.Value.(*cacheEntry[V]).val
		c.mu.Unlock()
		return val, true
	}
	c.misses++
	spill := c.spill
	c.mu.Unlock()

	var zero V
	if spill == nil {
		return zero, false
	}
	payload, ok := spill.Get(key)
	if !ok {
		c.addDiskResult(false)
		return zero, false
	}
	val, err := c.decode(payload)
	if err != nil {
		// A decodable-header but undecodable-payload file: count as a
		// miss and recompute; the next Put overwrites it.
		c.addDiskResult(false)
		return zero, false
	}
	c.addDiskResult(true)
	c.Put(key, val)
	return val, true
}

// addDiskResult records the outcome of one spill probe.
func (c *lru[V]) addDiskResult(hit bool) {
	c.mu.Lock()
	if hit {
		c.diskHits++
	} else {
		c.diskMisses++
	}
	c.mu.Unlock()
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entries when over capacity. With a spill store attached, evicted
// entries serialize to disk (outside the lock) instead of vanishing.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry[V]{key: key, val: val})
	var spilled []*cacheEntry[V]
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		ent := oldest.Value.(*cacheEntry[V])
		delete(c.entries, ent.key)
		c.evictions++
		if c.spill != nil {
			spilled = append(spilled, ent)
		}
	}
	spill := c.spill
	c.mu.Unlock()
	for _, ent := range spilled {
		if data, err := c.encode(ent.val); err == nil {
			spill.Put(ent.key, data)
		}
	}
}

// flushToSpill writes every in-memory entry through to the spill store
// (least recently used first, so recency survives the round trip) —
// the warm-start path: a snapshotting shutdown flushes, and the next
// boot's memory misses land as disk hits.
func (c *lru[V]) flushToSpill() {
	c.mu.Lock()
	spill := c.spill
	if spill == nil {
		c.mu.Unlock()
		return
	}
	ents := make([]*cacheEntry[V], 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		ents = append(ents, el.Value.(*cacheEntry[V]))
	}
	c.mu.Unlock()
	for _, ent := range ents {
		if data, err := c.encode(ent.val); err == nil {
			spill.Put(ent.key, data)
		}
	}
}

// Keys snapshots the keys of every in-memory entry (most recently used
// first). The ingest walk iterates this snapshot — entries added or
// evicted concurrently are simply not visited, which is safe because
// old-version keys are unreachable by queries either way.
func (c *lru[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry[V]).key)
	}
	return out
}

// Remove drops one entry from the memory tier (and the spill tier, when
// attached), returning the removed value. Unlike eviction, a removed
// entry does not spill: removal means the value is invalid, not cold.
func (c *lru[V]) Remove(key string) (V, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	var val V
	if ok {
		c.order.Remove(el)
		delete(c.entries, key)
		val = el.Value.(*cacheEntry[V]).val
	}
	spill := c.spill
	c.mu.Unlock()
	if spill != nil {
		spill.Remove(key)
	}
	return val, ok
}

// Len returns the current number of cached values.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots hit/miss/eviction counters.
func (c *lru[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.order.Len(),
		Capacity:   c.capacity,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		DiskHits:   c.diskHits,
		DiskMisses: c.diskMisses,
	}
}

// DefaultCacheEntries is the pipeline-result LRU capacity when none is
// configured.
const DefaultCacheEntries = 128

// Cache is a thread-safe LRU of pipeline results keyed by
// (dataset, version, orientation, s, options-fingerprint) strings.
type Cache struct{ lru[*core.PipelineResult] }

// NewCache returns an LRU cache holding up to capacity results
// (DefaultCacheEntries if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{*newLRU[*core.PipelineResult](capacity)}
}

// DefaultMeasureCacheEntries is the measure LRU capacity when none is
// configured. Measure values are much smaller than pipeline results
// (one vector or scalar vs a whole CSR graph), so the default is
// proportionally larger.
const DefaultMeasureCacheEntries = 1024

// MeasureEntry is one cached measure evaluation: the value plus the
// projection shape needed to serve a response (node→hyperedge mapping,
// counts) without re-fetching — or recomputing — the projection. The
// entry is self-contained so a measure hit stays O(1) even after the
// underlying projection aged out of the pipeline LRU.
type MeasureEntry struct {
	Value *measure.Value
	Nodes int
	Edges int
	// HyperedgeIDs is shared with the projection that produced the
	// value (immutable by convention).
	HyperedgeIDs []uint32
}

// NewMeasureEntry builds the self-contained cache entry for one
// measure evaluation on a projection. The node→hyperedge mapping only
// labels per-node vectors; scalar- and group-shaped values (diameter,
// components, connectivity) neither serialize it nor should pin it in
// the LRU after the projection evicts, so it is attached only when the
// value is per-node. Both the serving path and the sessionless
// hyperline.Execute build entries through this one rule.
func NewMeasureEntry(res *core.PipelineResult, val *measure.Value) *MeasureEntry {
	e := &MeasureEntry{
		Value: val,
		Nodes: res.Graph.NumNodes(),
		Edges: res.Graph.NumEdges(),
	}
	if val.Scores != nil || val.Ints != nil {
		e.HyperedgeIDs = res.HyperedgeIDs
	}
	return e
}

// MeasureCache is a thread-safe LRU of measure entries keyed by
// (dataset, version, orientation, s, options-fingerprint, measure,
// canonical-params) strings — the pipeline key extended by the measure
// identity, so it can only hit where the underlying projection key
// would.
type MeasureCache struct{ lru[*MeasureEntry] }

// NewMeasureCache returns an LRU cache holding up to capacity measure
// entries (DefaultMeasureCacheEntries if capacity <= 0).
func NewMeasureCache(capacity int) *MeasureCache {
	if capacity <= 0 {
		capacity = DefaultMeasureCacheEntries
	}
	return &MeasureCache{*newLRU[*MeasureEntry](capacity)}
}
