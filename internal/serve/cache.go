package serve

import (
	"container/list"
	"sync"

	"hyperline/internal/core"
)

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

type cacheEntry struct {
	key string
	res *core.PipelineResult
}

// Cache is a thread-safe LRU of pipeline results keyed by
// (dataset, version, orientation, s, options-fingerprint) strings. The
// cached *core.PipelineResult values are shared by reference — results
// are immutable by convention, so all readers see the same object.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

// DefaultCacheEntries is the LRU capacity when none is configured.
const DefaultCacheEntries = 128

// NewCache returns an LRU cache holding up to capacity results
// (DefaultCacheEntries if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recently
// used.
func (c *Cache) Get(key string) (*core.PipelineResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(key string, res *core.PipelineResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
