package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/gen"
	"hyperline/internal/hg"
)

// slowGraph is dense enough that a cold pipeline run takes well over
// the timeouts the tests below use, so a cancellation reliably lands
// mid-computation.
func slowGraph() *Service {
	svc := New(Config{})
	svc.Add("slow", gen.Community(gen.CommunityConfig{
		Seed: 31, NumVertices: 4000, NumCommunities: 70,
		MeanCommunitySize: 45, EdgesPerCommunity: 50, Background: 1000,
	}))
	return svc
}

// TestSingleflightLeaderDetach is the detach contract under load: 32
// concurrent callers share one flight, half of them cancel mid-flight,
// and the computation must (a) run exactly once, (b) keep running for
// the survivors — its flight context never trips — and (c) deliver the
// value to every survivor while every canceller gets its own ctx.Err().
func TestSingleflightLeaderDetach(t *testing.T) {
	var sf singleflight
	var calls atomic.Int32
	var flightCancelled atomic.Bool
	gate := make(chan struct{})

	const n = 32
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		defer cancels[i]()
	}

	var started sync.WaitGroup
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			vals[i], errs[i], _ = sf.Do(ctxs[i], "key", func(fctx context.Context) (any, error) {
				calls.Add(1)
				<-gate
				flightCancelled.Store(fctx.Err() != nil)
				return "value", nil
			})
		}(i)
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let every caller pile onto the flight

	// Half the callers disconnect.
	for i := 0; i < n/2; i++ {
		cancels[i]()
	}
	time.Sleep(50 * time.Millisecond) // let the cancellations land
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if flightCancelled.Load() {
		t.Fatal("flight context tripped although half the waiters survived")
	}
	for i := 0; i < n/2; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("cancelled caller %d got %v, want context.Canceled", i, errs[i])
		}
	}
	for i := n / 2; i < n; i++ {
		if errs[i] != nil || vals[i] != "value" {
			t.Fatalf("surviving caller %d got (%v, %v)", i, vals[i], errs[i])
		}
	}
}

// TestSingleflightLastWaiterCancelAborts: when every caller cancels,
// the flight's context must trip (aborting the computation), and a
// later caller with a live context must start a fresh flight instead
// of inheriting the dead one.
func TestSingleflightLastWaiterCancelAborts(t *testing.T) {
	var sf singleflight
	var calls atomic.Int32
	flightDone := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	_, err, _ := func() (any, error, bool) {
		go func() { time.Sleep(30 * time.Millisecond); cancel() }()
		return sf.Do(ctx, "key", func(fctx context.Context) (any, error) {
			calls.Add(1)
			select {
			case <-fctx.Done():
				flightDone <- fctx.Err()
				return nil, fctx.Err()
			case <-time.After(5 * time.Second):
				flightDone <- nil
				return "never-cancelled", nil
			}
		})
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller got %v, want context.Canceled", err)
	}
	select {
	case ferr := <-flightDone:
		if !errors.Is(ferr, context.Canceled) {
			t.Fatalf("flight saw %v, want context.Canceled after the last waiter left", ferr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight never observed the last-waiter cancellation")
	}

	// The key must be free again for a live caller.
	v, err, _ := sf.Do(context.Background(), "key", func(context.Context) (any, error) {
		calls.Add(1)
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("fresh flight got (%v, %v)", v, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2 (aborted + fresh)", got)
	}
}

// TestProjectionCancelReturnsCtxErr: a service-level projection call
// whose context expires mid-pipeline surfaces the context error, and
// repeated cancelled calls leak no goroutines.
func TestProjectionCancelReturnsCtxErr(t *testing.T) {
	svc := slowGraph()
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, _, err := svc.SLineGraph(ctx, "slow", 2, core.PipelineConfig{})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: got %v, want context.DeadlineExceeded", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestCancelledMeasureDoesNotCount: requests that die before their
// measure evaluation starts must not bump the compute counter — the
// counter is the capacity-planning ground truth, and phantom computes
// would make cancelled load look like served load.
func TestCancelledMeasureDoesNotCount(t *testing.T) {
	svc := slowGraph()

	// Dead on arrival: no flight, no projection, no compute.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Measure(dead, "slow", false, 2, core.PipelineConfig{}, "components", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Cancelled during the projection batch: the measure stage is
	// never reached.
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := svc.Measure(ctx, "slow", false, 2, core.PipelineConfig{}, "components", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if got := svc.MeasureCacheStats().Computes; got != 0 {
		t.Fatalf("cancelled requests bumped the compute counter to %d", got)
	}

	// Sanity: a live request does count.
	if _, err := svc.Measure(context.Background(), "slow", false, 2, core.PipelineConfig{}, "components", nil); err != nil {
		t.Fatal(err)
	}
	if got := svc.MeasureCacheStats().Computes; got != 1 {
		t.Fatalf("live request computes = %d, want 1", got)
	}
}

// TestQueryV2Timeout: a /v2/query whose timeout_ms expires answers 504
// and leaves the measure compute counter untouched.
func TestQueryV2Timeout(t *testing.T) {
	svc := slowGraph()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{
		"dataset": "slow", "s": []int{2}, "measure": "components", "timeout_ms": 20,
	})
	resp, err := http.Post(srv.URL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("504 body must carry an error, got %v (%v)", e, err)
	}
	if got := svc.MeasureCacheStats().Computes; got != 0 {
		t.Fatalf("timed-out request bumped the compute counter to %d", got)
	}
}

// TestQueryV2ClientDisconnect: a client that vanishes mid-request
// cancels the pipeline through the request context; the compute
// counter stays untouched and the server keeps serving.
func TestQueryV2ClientDisconnect(t *testing.T) {
	svc := slowGraph()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{
		"dataset": "slow", "s": []int{2}, "measure": "components",
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v2/query", bytes.NewReader(body))
	go func() { time.Sleep(30 * time.Millisecond); cancel() }()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("disconnected request must fail client-side")
	}
	// Give the handler a moment to unwind, then verify no compute was
	// charged and the server still answers.
	time.Sleep(150 * time.Millisecond)
	if got := svc.MeasureCacheStats().Computes; got != 0 {
		t.Fatalf("disconnected request bumped the compute counter to %d", got)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after disconnect: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestQueryPerSErrors: a measure that is unsatisfiable at one s fails
// that entry alone — the rest of the sweep still answers, at the
// service level and through /v2/query.
func TestQueryPerSErrors(t *testing.T) {
	svc := New(Config{})
	// Hyperedge 0 overlaps hyperedge 1 in exactly one vertex: it has a
	// node at s=1 but none at s=2, so distances from source 0 succeed
	// at s=1 and fail at s=2.
	svc.Add("h", hg.FromEdgeSlices([][]uint32{
		{0, 1}, {1, 2}, {5, 6, 7}, {6, 7, 8}, {7, 8, 9},
	}, 10))

	qr, err := svc.Query(context.Background(), QueryRequest{
		Dataset: "h", S: []int{1, 2}, Measure: "distances",
		Params: map[string]string{"source": "0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(qr.Entries))
	}
	if qr.Entries[0].S != 1 || qr.Entries[0].Err != nil || qr.Entries[0].Measure == nil {
		t.Fatalf("s=1 entry broken: %+v", qr.Entries[0])
	}
	if qr.Entries[1].S != 2 || qr.Entries[1].Err == nil {
		t.Fatalf("s=2 entry must carry the per-s error, got %+v", qr.Entries[1])
	}

	// Same shape over HTTP: 200 with a per-entry error field.
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	body, _ := json.Marshal(map[string]any{
		"dataset": "h", "s": "1:2", "measure": "distances",
		"params": map[string]string{"source": "0"},
	})
	resp, err := http.Post(srv.URL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (per-s errors do not fail the query)", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			S     int             `json:"s"`
			Error string          `json:"error"`
			Value json.RawMessage `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Results[0].Error != "" || len(out.Results[0].Value) == 0 {
		t.Fatalf("v2 s=1 entry broken: %+v", out.Results)
	}
	if out.Results[1].Error == "" {
		t.Fatalf("v2 s=2 entry must carry the error, got %+v", out.Results[1])
	}
}

// TestQueryV2MatchesV1 pins the v2 surface to the v1 projection
// output: same nodes, edges, and cached flags through both routes.
func TestQueryV2MatchesV1(t *testing.T) {
	svc := New(Config{})
	svc.Add("p", paperExample())
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	v1, err := http.Get(srv.URL + "/v1/datasets/p/slinegraph?s=2")
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Body.Close()
	var v1out struct {
		Nodes    int         `json:"nodes"`
		Edges    int         `json:"edges"`
		EdgeList [][3]uint32 `json:"edge_list"`
	}
	if err := json.NewDecoder(v1.Body).Decode(&v1out); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"dataset": "p", "s": []int{2}, "edges": true})
	v2, err := http.Post(srv.URL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Body.Close()
	var v2out struct {
		Plan    *planJSON `json:"plan"`
		Results []struct {
			S        int         `json:"s"`
			Cached   bool        `json:"cached"`
			Nodes    int         `json:"nodes"`
			Edges    int         `json:"edges"`
			EdgeList [][3]uint32 `json:"edge_list"`
		} `json:"results"`
	}
	if err := json.NewDecoder(v2.Body).Decode(&v2out); err != nil {
		t.Fatal(err)
	}
	if len(v2out.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(v2out.Results))
	}
	r := v2out.Results[0]
	if r.Nodes != v1out.Nodes || r.Edges != v1out.Edges || fmt.Sprint(r.EdgeList) != fmt.Sprint(v1out.EdgeList) {
		t.Fatalf("v2 projection diverged from v1: v1=%+v v2=%+v", v1out, r)
	}
	if !r.Cached {
		t.Fatal("second query over the same key must report cached=true")
	}
	if v2out.Plan == nil || v2out.Plan.Strategy == "" {
		t.Fatal("v2 response must carry the executed plan")
	}
}
