package serve

import (
	"context"

	"hyperline/internal/core"
	"hyperline/internal/measure"
)

// QueryRequest is the serve-level form of the v2 unified query: one
// dataset, one orientation, an s-list, an optional Stage-5 measure, and
// the pipeline configuration. It is the single request shape behind
// POST /v2/query, Session.Execute, and the v1 compatibility wrappers.
type QueryRequest struct {
	// Dataset names a registered dataset.
	Dataset string
	// Dual selects the s-clique orientation (the dual hypergraph).
	Dual bool
	// S lists the requested overlap thresholds (validated against
	// core.ValidateSValues; duplicates collapse, results are ordered by
	// ascending distinct s).
	S []int
	// Cfg is the pipeline configuration (options fingerprint drives the
	// cache keys exactly as in the v1 paths).
	Cfg core.PipelineConfig
	// Measure optionally names a registered Stage-5 measure to
	// evaluate on every projection of the sweep.
	Measure string
	// Params are the measure's raw parameters (validated against its
	// schema before any pipeline work runs).
	Params map[string]string
	// FailFast makes the first per-s measure error fail the whole
	// query instead of being recorded on its entry — the v1 sweep
	// semantics. Without it a sweep whose measure is unsatisfiable at
	// every s would still evaluate all of them just to report per-s
	// errors nobody reads.
	FailFast bool
	// Priority classifies the query's Stage-3 work for admission
	// control. The zero value is PriorityInteractive (may wait in the
	// bounded admission queue); PriorityBackground marks deferrable
	// work that is shed instead of queued under saturation.
	Priority Priority
}

// QueryEntry is one per-s outcome of a Query.
type QueryEntry struct {
	// S is the overlap threshold this entry answers.
	S int
	// Res is the materialized projection. It is nil when the entry was
	// served purely from the measure cache (the projection was never
	// consulted); on per-s measure failure it remains set, so callers
	// can still inspect the projection the measure failed on. Err, not
	// Res, is the success test.
	Res *core.PipelineResult
	// Measure is the measure evaluation, when the request named one.
	Measure *MeasureResult
	// Cached reports whether the served artifact — the measure value
	// for measure queries, the projection otherwise — came from a
	// cache or a concurrent identical request.
	Cached bool
	// Err is this entry's failure (e.g. a measure parameter that is
	// unsatisfiable at this s). Per-s errors do not fail the whole
	// query; request-level failures (unknown dataset or measure, bad
	// parameters, cancellation) are returned by Query itself.
	Err error
}

// QueryResult is the outcome of one Query: per-s entries ordered by
// ascending distinct s, plus the executed plan.
type QueryResult struct {
	Entries []QueryEntry
	// Plan records the Stage-3 strategy decision taken (or originally
	// taken, for cached projections). It is zero when every entry was
	// served from the measure cache and no projection was touched.
	Plan core.PlanInfo
	// Version is the dataset version the whole query was pinned to —
	// under streaming ingest, the consistency token a client needs to
	// compare answers across deltas.
	Version uint64
}

// Query executes one unified v2 request: validation first (a typo
// fails in microseconds, before any pipeline work), then one batched
// planner-driven pass for the uncached projections, then — when a
// measure is named — one cached, deduplicated measure evaluation per
// s. Cancellation is cooperative end to end: a cancelled ctx aborts
// the pipeline within a bounded latency and Query returns ctx.Err(),
// unless concurrent identical requests still wait on the shared
// computation (singleflight keeps the flight alive for them and the
// result is still cached).
func (s *Service) Query(ctx context.Context, q QueryRequest) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := core.ValidateSValues(q.S); err != nil {
		return nil, err
	}
	var m measure.Measure
	var p measure.Params
	if q.Measure != "" {
		var err error
		if m, err = measure.Get(q.Measure); err != nil {
			return nil, err
		}
		if p, err = measure.Canonicalize(m, q.Params); err != nil {
			return nil, err
		}
	}
	// The dataset snapshot (hypergraph + version) is read once and
	// pinned through the whole query, so a concurrent replacement can
	// never mix two versions within one response.
	h, version, err := s.reg.Get(q.Dataset)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Resolve planner-driven auto knobs once, up front: the measure
	// cache keys below embed the configuration fingerprint, so they
	// must name the concrete knobs the pipeline would run, or a
	// planner-chosen query would miss the entries its pinned twin
	// cached. projectBatchAt resolves again — idempotently — for
	// callers that skip Query.
	q.Cfg = s.resolveAt(h, version, q.Dataset, q.Dual, core.DistinctS(q.S), q.Cfg)

	distinct := core.DistinctS(q.S)
	out := &QueryResult{Entries: make([]QueryEntry, len(distinct)), Version: version}
	index := make(map[int]int, len(distinct))
	for i, sVal := range distinct {
		index[sVal] = i
		out.Entries[i] = QueryEntry{S: sVal}
	}

	if m == nil {
		results, cached, err := s.projectBatchAt(ctx, h, version, q.Dataset, q.Dual, distinct, q.Cfg, q.Priority)
		if err != nil {
			return nil, err
		}
		for i, sVal := range distinct {
			out.Entries[i].Res = results[sVal]
			out.Entries[i].Cached = cached[sVal]
		}
		out.Plan = results[distinct[0]].Plan
		return out, nil
	}

	// Measure path: probe the measure cache per s, then fetch every
	// projection the misses need as one batch, then evaluate.
	missing := make([]int, 0, len(distinct))
	for _, sVal := range distinct {
		mk := measureKey(key(q.Dataset, version, q.Dual, sVal, q.Cfg), m.Name(), p)
		if e, ok := s.mcache.Get(mk); ok {
			i := index[sVal]
			out.Entries[i].Measure = &MeasureResult{S: sVal, MeasureEntry: e, Cached: true, ProjectionCached: true}
			out.Entries[i].Cached = true
		} else {
			missing = append(missing, sVal)
		}
	}
	if len(missing) > 0 {
		projs, projCached, err := s.projectBatchAt(ctx, h, version, q.Dataset, q.Dual, missing, q.Cfg, q.Priority)
		if err != nil {
			return nil, err
		}
		for _, sVal := range missing {
			i := index[sVal]
			out.Entries[i].Res = projs[sVal]
			mk := measureKey(key(q.Dataset, version, q.Dual, sVal, q.Cfg), m.Name(), p)
			mr, err := s.measureOne(ctx, mk, m, p, q.Cfg, projs[sVal], projCached[sVal])
			if err != nil {
				// Cancellation fails the query; anything else is a
				// per-s outcome (the other s values still answer)
				// unless the caller asked for v1 fail-fast.
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				if q.FailFast {
					return nil, err
				}
				out.Entries[i].Err = err
				continue
			}
			out.Entries[i].Measure = mr
			out.Entries[i].Cached = mr.Cached
		}
	}
	for _, e := range out.Entries {
		if e.Res != nil {
			out.Plan = e.Res.Plan
			break
		}
	}
	return out, nil
}
