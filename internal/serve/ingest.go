package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hyperline/internal/core"
	"hyperline/internal/delta"
	"hyperline/internal/hg"
)

// This file is the serving half of streaming ingest: applying a delta
// to a registered dataset bumps its version (calibration carried
// forward, see Registry.ApplyDelta) and then walks both result caches
// once, deciding per key — via the delta.Patcher — whether the entry
// provably survived the delta (migrate: re-key to the new version),
// can be patched cheaper than recomputed (patch: rewrite the edge list
// incrementally), or must go (drop). Keys the walk never visits are
// merely unreachable, not wrong: every cache key embeds the version.

// DeltaPolicy selects what Ingest does to cached artifacts.
type DeltaPolicy string

const (
	// DeltaPolicyPatch (the default) migrates and patches cache entries
	// across the version bump where provably sound, dropping only keys
	// the delta's frontier actually touches.
	DeltaPolicyPatch DeltaPolicy = "patch"
	// DeltaPolicyInvalidate drops every cached entry of the dataset —
	// the pre-streaming behavior, kept as the baseline arm for
	// benchmarking patched maintenance against.
	DeltaPolicyInvalidate DeltaPolicy = "invalidate"
)

// ParseDeltaPolicy validates a policy name ("" = patch).
func ParseDeltaPolicy(v string) (DeltaPolicy, error) {
	switch DeltaPolicy(v) {
	case "", DeltaPolicyPatch:
		return DeltaPolicyPatch, nil
	case DeltaPolicyInvalidate:
		return DeltaPolicyInvalidate, nil
	}
	return "", fmt.Errorf("serve: unknown delta policy %q (want %q or %q)", v, DeltaPolicyPatch, DeltaPolicyInvalidate)
}

// IngestResult summarizes one applied delta: the version transition,
// the delta's shape, and what happened to the dataset's cached
// artifacts.
type IngestResult struct {
	Dataset    string `json:"dataset"`
	OldVersion uint64 `json:"old_version"`
	Version    uint64 `json:"version"`
	Inserts    int    `json:"inserts"`
	Deletes    int    `json:"deletes"`
	// AffectedSLine / AffectedSClique bound the frontier per
	// orientation: projections at s above the bound are unchanged.
	AffectedSLine   int `json:"affected_s_line"`
	AffectedSClique int `json:"affected_s_clique"`
	// Projection-cache outcomes.
	Migrated int `json:"migrated"`
	Patched  int `json:"patched"`
	Dropped  int `json:"dropped"`
	// Measure-cache outcomes (entries migrate with their projection or
	// drop; they are never patched).
	MeasuresMigrated int `json:"measures_migrated"`
	MeasuresDropped  int `json:"measures_dropped"`

	Policy DeltaPolicy `json:"policy"`
}

// Ingest applies one delta to the named dataset: the post-delta
// hypergraph is materialized (no re-parse), installed as the next
// version with calibration carried forward, and the caches are walked
// under the configured DeltaPolicy. The delta is validated against the
// dataset's current version; baseVersion != 0 additionally pins the
// version the client built the delta against (hyperedge IDs are only
// meaningful relative to a version). Concurrent writers lose the CAS
// and get ErrVersionConflict. A cancelled ctx stops the cache walk
// early — the version bump itself is already durable, and unvisited
// old-version keys are unreachable, so early exit only costs hit rate.
func (s *Service) Ingest(ctx context.Context, name string, d *delta.Delta, baseVersion uint64) (*IngestResult, error) {
	h, oldV, err := s.reg.Get(name)
	if err != nil {
		return nil, err
	}
	if baseVersion != 0 && baseVersion != oldV {
		return nil, fmt.Errorf("serve: %w: delta based on version %d of %q, current is %d",
			ErrVersionConflict, baseVersion, name, oldV)
	}
	newH, err := delta.Apply(h, d)
	if err != nil {
		return nil, err
	}
	newV, err := s.reg.ApplyDelta(name, oldV, newH)
	if err != nil {
		return nil, err
	}
	s.ingestsApplied.Add(1)

	p := delta.NewPatcher(h, newH, d)
	res := &IngestResult{
		Dataset:         name,
		OldVersion:      oldV,
		Version:         newV,
		Inserts:         len(d.Inserts),
		Deletes:         len(d.Deletes),
		AffectedSLine:   p.AffectedS(false),
		AffectedSClique: p.AffectedS(true),
		Policy:          s.deltaPolicy,
	}

	oldPrefix := fmt.Sprintf("%s@%d/", name, oldV)
	newPrefix := fmt.Sprintf("%s@%d/", name, newV)
	nd, _ := s.reg.at(name, newV) // nil after a concurrent replacement: treat everything as drop

	for _, k := range s.cache.Keys() {
		rest, ok := strings.CutPrefix(k, oldPrefix)
		if !ok {
			continue
		}
		if err := ctx.Err(); err != nil {
			break
		}
		attrs, parsed := parseProjKeyRest(rest)
		action := delta.ActionDrop
		var old *core.PipelineResult
		if parsed && nd != nil && s.deltaPolicy == DeltaPolicyPatch {
			if old, ok = s.cache.Remove(k); ok {
				action = p.Plan(attrs, old.Graph.NumEdges(),
					nd.statsFor(attrs.Dual).WedgePairs, anyCalibrated(nd.costsFor(attrs.Dual)))
			}
		} else {
			_, ok = s.cache.Remove(k)
		}
		if !ok {
			continue // evicted between the snapshot and the walk
		}
		switch action {
		case delta.ActionMigrate:
			s.cache.Put(newPrefix+rest, old)
			res.Migrated++
			s.ingestMigrated.Add(1)
		case delta.ActionPatch:
			patched, perr := p.Patch(old, attrs)
			if perr != nil {
				res.Dropped++
				s.ingestDropped.Add(1)
				continue
			}
			s.cache.Put(newPrefix+rest, patched)
			res.Patched++
			s.ingestPatched.Add(1)
		default:
			res.Dropped++
			s.ingestDropped.Add(1)
		}
	}

	for _, k := range s.mcache.Keys() {
		rest, ok := strings.CutPrefix(k, oldPrefix)
		if !ok {
			continue
		}
		projRest, _, found := strings.Cut(rest, "/measure=")
		attrs, parsed := parseProjKeyRest(projRest)
		migrate := found && parsed && s.deltaPolicy == DeltaPolicyPatch &&
			ctx.Err() == nil && p.Migratable(attrs)
		val, ok := s.mcache.Remove(k)
		if !ok {
			continue
		}
		if migrate {
			s.mcache.Put(newPrefix+rest, val)
			res.MeasuresMigrated++
			s.ingestMeasureMigrated.Add(1)
		} else {
			res.MeasuresDropped++
			s.ingestMeasureDropped.Add(1)
		}
	}

	s.feed.publish(name, ChangeEvent{
		Version:          newV,
		Inserts:          res.Inserts,
		Deletes:          res.Deletes,
		Migrated:         res.Migrated,
		Patched:          res.Patched,
		Dropped:          res.Dropped,
		MeasuresMigrated: res.MeasuresMigrated,
		MeasuresDropped:  res.MeasuresDropped,
		Policy:           res.Policy,
	})
	return res, nil
}

// parseProjKeyRest parses the version-independent tail of a projection
// cache key — "orient/s=N/class=...,relabel=...,toplex=...,squeeze=..."
// (see key) — back into the attributes the patcher decides on. Keys
// minted by a different build that fail to parse are simply dropped by
// the caller, which is always sound.
func parseProjKeyRest(rest string) (delta.KeyAttrs, bool) {
	var a delta.KeyAttrs
	orient, rest, ok := strings.Cut(rest, "/")
	if !ok {
		return a, false
	}
	switch orient {
	case "line":
		a.Dual = false
	case "clique":
		a.Dual = true
	default:
		return a, false
	}
	sPart, fp, ok := strings.Cut(rest, "/")
	if !ok || !strings.HasPrefix(sPart, "s=") {
		return a, false
	}
	sVal, err := strconv.Atoi(sPart[len("s="):])
	if err != nil || sVal < 1 {
		return a, false
	}
	a.S = sVal
	for _, field := range strings.Split(fp, ",") {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return a, false
		}
		switch name {
		case "class":
			a.Exact = val == "exact"
		case "relabel":
			switch val {
			case "N":
				a.Relabel = hg.RelabelNone
			case "A":
				a.Relabel = hg.RelabelAscending
			case "D":
				a.Relabel = hg.RelabelDescending
			default:
				return a, false // unresolved "*" never reaches a cache key
			}
		case "toplex":
			switch val {
			case "true":
				a.Toplex = true
			case "false":
				a.Toplex = false
			default:
				return a, false
			}
		case "squeeze":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return a, false
			}
			a.Squeeze = b
		default:
			return a, false
		}
	}
	return a, true
}

// anyCalibrated reports whether the model has at least one calibrated
// cell — the signal that its recompute-cost estimates are grounded in
// observations of this dataset, which lets the patch-vs-recompute
// decision use the more permissive threshold.
func anyCalibrated(cm *core.CostModel) bool {
	if cm == nil {
		return false
	}
	for _, o := range cm.Snapshot() {
		if o.Calibrated {
			return true
		}
	}
	return false
}

// ChangeEvent is one entry of a dataset's change feed: the version a
// delta produced, its shape, and the cache outcomes — what a dashboard
// needs to watch an evolving hypergraph without polling projections.
type ChangeEvent struct {
	Version          uint64      `json:"version"`
	Inserts          int         `json:"inserts"`
	Deletes          int         `json:"deletes"`
	Migrated         int         `json:"migrated"`
	Patched          int         `json:"patched"`
	Dropped          int         `json:"dropped"`
	MeasuresMigrated int         `json:"measures_migrated"`
	MeasuresDropped  int         `json:"measures_dropped"`
	Policy           DeltaPolicy `json:"policy"`
}

// feedCapacity bounds the retained events per dataset; a consumer more
// than feedCapacity deltas behind re-syncs from the current version.
const feedCapacity = 64

// changeFeed is the per-dataset event ring behind the long-poll
// /v2/datasets/{name}/changes endpoint.
type changeFeed struct {
	mu     sync.Mutex
	byName map[string]*datasetFeed
}

type datasetFeed struct {
	events []ChangeEvent // ascending version, bounded to feedCapacity
	notify chan struct{} // closed on publish, then replaced
}

func newChangeFeed() *changeFeed {
	return &changeFeed{byName: make(map[string]*datasetFeed)}
}

func (f *changeFeed) get(name string) *datasetFeed {
	f.mu.Lock()
	defer f.mu.Unlock()
	df, ok := f.byName[name]
	if !ok {
		df = &datasetFeed{notify: make(chan struct{})}
		f.byName[name] = df
	}
	return df
}

// publish appends one event and wakes every long-poll waiter.
func (f *changeFeed) publish(name string, ev ChangeEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	df, ok := f.byName[name]
	if !ok {
		df = &datasetFeed{notify: make(chan struct{})}
		f.byName[name] = df
	}
	df.events = append(df.events, ev)
	if len(df.events) > feedCapacity {
		df.events = df.events[len(df.events)-feedCapacity:]
	}
	close(df.notify)
	df.notify = make(chan struct{})
}

// after returns the retained events with Version > since, plus the
// channel that will be closed on the next publish.
func (f *changeFeed) after(name string, since uint64) ([]ChangeEvent, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	df, ok := f.byName[name]
	if !ok {
		df = &datasetFeed{notify: make(chan struct{})}
		f.byName[name] = df
	}
	var out []ChangeEvent
	for _, ev := range df.events {
		if ev.Version > since {
			out = append(out, ev)
		}
	}
	return out, df.notify
}

// Changes long-polls the named dataset's change feed: it returns every
// retained event with version > since, blocking until one exists or ctx
// expires (an expired ctx returns an empty slice, not an error — the
// long-poll timeout contract). When the dataset's current version is
// already past since but the events were produced outside the feed (a
// full re-upload, a restart, a trimmed ring), it returns immediately
// with no events: the caller sees the version jump and re-syncs.
func (s *Service) Changes(ctx context.Context, name string, since uint64) ([]ChangeEvent, uint64, error) {
	for {
		_, version, err := s.reg.Get(name)
		if err != nil {
			return nil, 0, err
		}
		events, notify := s.feed.after(name, since)
		if len(events) > 0 || version > since {
			// Either real events, or a version jump the feed cannot
			// explain (re-upload / trimmed ring): both end the poll.
			return events, version, nil
		}
		select {
		case <-notify:
		case <-ctx.Done():
			return nil, version, nil
		}
	}
}
