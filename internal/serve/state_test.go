package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hyperline/internal/core"
)

// TestRestoreSurvivesCrashMidSnapshot: a crash in the middle of a
// snapshotting shutdown can strand tmp files next to the manifest, tear
// a dataset file, and truncate spill entries. Reboot must shrug all of
// it off — sweep the debris, skip (and log) the torn dataset, and keep
// serving everything else warm — instead of refusing to start.
func TestRestoreSurvivesCrashMidSnapshot(t *testing.T) {
	stateDir := t.TempDir()
	spillDir := filepath.Join(stateDir, "spill")
	cfg := core.PipelineConfig{}
	keep := randomHypergraph(19, 120, 90, 5)

	svc1 := New(Config{})
	if err := svc1.EnableSpill(spillDir, 0); err != nil {
		t.Fatal(err)
	}
	svc1.Add("keep", keep)
	svc1.Add("torn", paperExample())
	want := make(map[int]*core.PipelineResult)
	for _, sVal := range []int{1, 2} {
		res, _, err := svc1.SLineGraph(context.Background(), "keep", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[sVal] = res
	}
	if _, _, err := svc1.SLineGraph(context.Background(), "torn", 2, cfg); err != nil {
		t.Fatal(err)
	}
	if err := svc1.SaveState(stateDir); err != nil {
		t.Fatal(err)
	}
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash debris. Tear the "torn" dataset file (located via the
	// manifest), strand in-progress tmp files where SaveState creates
	// them, and truncate one spill entry mid-key.
	data, err := os.ReadFile(filepath.Join(stateDir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m stateManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	tornFile := ""
	for _, d := range m.Datasets {
		if d.Name == "torn" {
			tornFile = filepath.Join(stateDir, d.File)
		}
	}
	if tornFile == "" {
		t.Fatal("manifest has no entry for dataset torn")
	}
	if err := os.Truncate(tornFile, 10); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{
		filepath.Join(stateDir, spillTmpPrefix+"manifest-crash"),
		filepath.Join(stateDir, spillTmpPrefix+"ds-crash"),
		filepath.Join(stateDir, stateDatasetsDir, spillTmpPrefix+"ds-crash2"),
	} {
		if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	spills, err := filepath.Glob(filepath.Join(spillDir, "*"+spillSuffix))
	if err != nil || len(spills) == 0 {
		t.Fatalf("no spill entries to corrupt (err=%v)", err)
	}
	if err := os.Truncate(spills[0], 13); err != nil {
		t.Fatal(err)
	}

	// Reboot. Restore must succeed, carrying every dataset except the
	// torn one.
	svc2 := New(Config{})
	if err := svc2.EnableSpill(spillDir, 0); err != nil {
		t.Fatal(err)
	}
	names, err := svc2.RestoreState(stateDir)
	if err != nil {
		t.Fatalf("restore after crash debris: %v", err)
	}
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("restored %v, want [keep] (torn is truncated)", names)
	}

	// The surviving dataset still serves, byte-identical to pre-crash.
	for _, sVal := range []int{1, 2} {
		res, _, err := svc2.SLineGraph(context.Background(), "keep", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Graph.Edges(), want[sVal].Graph.Edges()) {
			t.Fatalf("s=%d: post-crash answer differs from pre-crash run", sVal)
		}
	}
	// The intact spill entries still warm the reboot (the one truncated
	// entry is a clean recompute, not a poisoned hit).
	if cs := svc2.CacheStats(); cs.DiskHits == 0 {
		t.Fatalf("no disk hits after reboot — spill tier lost: %+v", cs)
	}

	// The torn dataset is simply absent until re-registered.
	if _, _, err := svc2.SLineGraph(context.Background(), "torn", 2, cfg); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("torn dataset: got %v, want ErrUnknownDataset", err)
	}
	svc2.Add("torn", paperExample())
	if _, _, err := svc2.SLineGraph(context.Background(), "torn", 2, cfg); err != nil {
		t.Fatalf("re-registered torn dataset must serve: %v", err)
	}

	// The stray tmp files are swept, not accumulated forever.
	for _, dir := range []string{stateDir, filepath.Join(stateDir, stateDatasetsDir)} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range entries {
			if strings.HasPrefix(de.Name(), spillTmpPrefix) {
				t.Fatalf("stray tmp file %s survived restore sweep", filepath.Join(dir, de.Name()))
			}
		}
	}

	// A later snapshot from the rebooted process works end to end.
	if err := svc2.SaveState(stateDir); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreCorruptManifestColdStarts: an unparseable manifest (disk
// damage) degrades to a cold start instead of refusing to boot.
func TestRestoreCorruptManifestColdStarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	names, err := svc.RestoreState(dir)
	if err != nil {
		t.Fatalf("corrupt manifest must cold-start, got error: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("cold start restored %v, want none", names)
	}
	svc.Add("fresh", paperExample())
	if _, _, err := svc.SLineGraph(context.Background(), "fresh", 2, core.PipelineConfig{}); err != nil {
		t.Fatalf("service must serve after cold start: %v", err)
	}
}
