package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/gen"
	"hyperline/internal/hg"
)

// Fault-injection suite: each test drives one failure mode the serving
// layer claims to survive — dataset replacement mid-flight, cancel
// storms, cache churn under a pathologically small LRU, and shutdown
// while shedding — and asserts the specific invariant that failure mode
// threatens (version pinning, goroutine hygiene, truthful counters,
// clean drain). Run under -race these are also the memory-safety tests
// for the admission/singleflight/registry interleavings.

// mediumHypergraph is big enough that a cold pipeline run takes tens
// of milliseconds (so a fault can land mid-flight) but completes fast
// enough to run to completion repeatedly in a unit test.
func mediumHypergraph() *hg.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		Seed: 7, NumVertices: 1200, NumCommunities: 25,
		MeanCommunitySize: 30, EdgesPerCommunity: 30, Background: 300,
	})
}

// waitGoroutines waits for the goroutine count to settle back near the
// baseline, failing the test if it never does.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}

// TestFaultReplaceDatasetMidFlight: replacing a dataset while a query
// runs must neither break the in-flight query (its snapshot is pinned)
// nor leak the old version into later queries.
func TestFaultReplaceDatasetMidFlight(t *testing.T) {
	old := mediumHypergraph()
	svc := New(Config{})
	svc.Add("d", old)

	// Reference answers for both versions, computed on isolated services.
	ref := func(h *hg.Hypergraph) (nodes, edges int) {
		s := New(Config{})
		s.Add("ref", h)
		res, _, err := s.SLineGraph(context.Background(), "ref", 2, core.PipelineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Graph.NumNodes(), res.Graph.NumEdges()
	}
	oldNodes, oldEdges := ref(old)
	newNodes, newEdges := ref(paperExample())
	if oldNodes == newNodes && oldEdges == newEdges {
		t.Fatal("test needs two distinguishable dataset versions")
	}

	type outcome struct {
		nodes, edges int
		err          error
	}
	res := make(chan outcome, 1)
	go func() {
		r, _, err := svc.SLineGraph(context.Background(), "d", 2, core.PipelineConfig{})
		if err != nil {
			res <- outcome{err: err}
			return
		}
		res <- outcome{nodes: r.Graph.NumNodes(), edges: r.Graph.NumEdges()}
	}()
	time.Sleep(10 * time.Millisecond) // land the replacement mid-flight
	svc.Add("d", paperExample())

	got := <-res
	if got.err != nil {
		t.Fatalf("in-flight query across a replacement failed: %v", got.err)
	}
	if got.nodes != oldNodes || got.edges != oldEdges {
		t.Fatalf("in-flight query answered (%d,%d); its pinned snapshot says (%d,%d)",
			got.nodes, got.edges, oldNodes, oldEdges)
	}

	// Post-replacement queries must see only the new version — a cache
	// or flight keyed without the version would serve the stale graph.
	r, _, err := svc.SLineGraph(context.Background(), "d", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumNodes() != newNodes || r.Graph.NumEdges() != newEdges {
		t.Fatalf("post-replacement query answered (%d,%d), want the new version's (%d,%d)",
			r.Graph.NumNodes(), r.Graph.NumEdges(), newNodes, newEdges)
	}
}

// TestFaultCancelStorm: a storm of identical queries that all cancel
// must abort the shared flight, leak no goroutines, charge no computes,
// and leave the key usable for a fresh caller.
func TestFaultCancelStorm(t *testing.T) {
	svc := slowGraph()
	baseline := runtime.NumGoroutine()
	computes0 := svc.projectionComputes.Load()

	const storm = 24
	var wg sync.WaitGroup
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(10+i)*time.Millisecond)
			defer cancel()
			_, _, errs[i] = svc.SLineGraph(ctx, "slow", 2, core.PipelineConfig{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("storm caller %d: got %v, want a context error", i, err)
		}
	}
	waitGoroutines(t, baseline)
	if got := svc.projectionComputes.Load(); got != computes0 {
		t.Fatalf("aborted storm charged %d computes; cancelled load must not look like served load", got-computes0)
	}

	// The flight key must be free: a live caller gets a fresh, correct
	// run (bounded only by the test timeout).
	r, cached, err := svc.SLineGraph(context.Background(), "slow", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatalf("fresh query after the storm: %v", err)
	}
	if cached {
		t.Fatal("fresh query claimed a cache hit after every earlier run aborted")
	}
	if r.Graph.NumNodes() == 0 {
		t.Fatal("fresh query returned an empty projection")
	}
	if got := svc.projectionComputes.Load(); got != computes0+1 {
		t.Fatalf("fresh query charged %d computes, want exactly 1", got-computes0)
	}
}

// TestFaultTinyLRUChurn: concurrent sweeps against a 2-entry projection
// cache force constant eviction; every answer must still be correct and
// the hit/miss/eviction books must stay coherent.
func TestFaultTinyLRUChurn(t *testing.T) {
	svc := New(Config{CacheEntries: 2})
	svc.Add("p", paperExample())

	// Reference shapes per s from an unconstrained service.
	type shape struct{ nodes, edges int }
	want := map[int]shape{}
	refSvc := New(Config{})
	refSvc.Add("p", paperExample())
	for s := 1; s <= 4; s++ {
		r, _, err := refSvc.SLineGraph(context.Background(), "p", s, core.PipelineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want[s] = shape{r.Graph.NumNodes(), r.Graph.NumEdges()}
	}

	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := 1 + (w+i)%4
				r, _, err := svc.SLineGraph(context.Background(), "p", s, core.PipelineConfig{})
				if err != nil {
					t.Errorf("churn query s=%d: %v", s, err)
					return
				}
				if got := (shape{r.Graph.NumNodes(), r.Graph.NumEdges()}); got != want[s] {
					t.Errorf("churn query s=%d answered %+v, want %+v", s, got, want[s])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	cs := svc.CacheStats()
	if cs.Entries > 2 {
		t.Fatalf("cache holds %d entries over its capacity 2", cs.Entries)
	}
	if cs.Evictions == 0 {
		t.Fatal("4 keys through a 2-entry cache must evict")
	}
	computes := svc.projectionComputes.Load()
	if computes < 4 {
		t.Fatalf("only %d computes for 4 distinct s values", computes)
	}
	// Truthful counters: every answer was either a hit or backed by a
	// compute (directly or via a shared flight); computes can never
	// exceed misses.
	if computes > cs.Misses {
		t.Fatalf("computes %d > misses %d: the compute counter is inventing work", computes, cs.Misses)
	}
}

// TestFaultShutdownDuringShed: closing the server while admission is
// actively queueing and shedding must drain cleanly — no hang, no
// panic, controller back to zero occupancy.
func TestFaultShutdownDuringShed(t *testing.T) {
	svc := New(Config{MaxInflight: 1, ShedCostBudget: 2, MaxQueue: 2})
	svc.Add("slow", gen.Community(gen.CommunityConfig{
		Seed: 31, NumVertices: 4000, NumCommunities: 70,
		MeanCommunitySize: 45, EdgesPerCommunity: 50, Background: 1000,
	}))
	ts := httptest.NewServer(NewHandler(svc))

	const clients = 16
	statuses := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct s per client: identical queries would collapse
			// into one singleflight flight and never contend.
			body, _ := json.Marshal(map[string]any{"dataset": "slow", "s": []int{2 + i}})
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v2/query", bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				statuses <- -1 // transport error: cancelled or connection severed
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(i)
	}

	// Close only once shedding is demonstrably underway (a fixed sleep
	// races the clients' connection setup, especially under -race).
	shedDeadline := time.Now().Add(3 * time.Second)
	for svc.AdmissionStats().ShedInteractive == 0 {
		if time.Now().After(shedDeadline) {
			t.Fatal("flood never saturated admission")
		}
		time.Sleep(5 * time.Millisecond)
	}
	closed := make(chan struct{})
	go func() { ts.Close(); close(closed) }()
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server close hung with shed traffic in flight")
	}

	var sheds int
	for i := 0; i < clients; i++ {
		if <-statuses == http.StatusTooManyRequests {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("flood against MaxInflight=1 produced no 429s")
	}
	// The controller must drain to zero even though clients vanished in
	// every possible state (queued, admitted, shed, mid-response).
	deadline := time.Now().Add(3 * time.Second)
	for {
		as := svc.AdmissionStats()
		if as.InflightRequests == 0 && as.InflightCost == 0 && as.QueueLength == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission not drained after shutdown: %+v", as)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
