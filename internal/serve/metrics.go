package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperline/internal/core"
)

// This file is the observability half of traffic hardening: a
// stdlib-only Prometheus text exposition (version 0.0.4) of the
// counters the serving layer already keeps — cache hit rates, compute
// counters, singleflight dedups, admission occupancy — plus per-stage
// latency histograms fed from pipeline StageTimings. Metric names are a
// contract (see TestMetricsExpositionShape): renames and removals are
// breaking changes for scrapers.

// stageLabels orders the per-stage histograms the way StageTimings
// orders the pipeline; "total" is their sum per pass.
var stageLabels = [...]string{"preprocess", "toplex", "soverlap", "squeeze", "total"}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to multi-second saturated passes.
var latencyBuckets = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram with atomic cells, safe
// for concurrent observation and scraping (scrapes are not atomic
// snapshots across cells — the usual Prometheus contract).
type histogram struct {
	buckets [len(latencyBuckets) + 1]atomic.Int64 // last cell = +Inf
	count   atomic.Int64
	sumNS   atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], secs)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// metrics aggregates the counters the Service itself does not already
// keep: stage histograms and HTTP response codes. Everything else
// (cache stats, admission stats, compute counters) is read live at
// scrape time from its owner.
type metrics struct {
	stages [len(stageLabels)]histogram

	mu        sync.Mutex
	responses map[int]int64
}

func newMetrics() *metrics {
	return &metrics{responses: make(map[int]int64)}
}

// observeStages feeds one pipeline pass's per-stage timings into the
// histograms.
func (m *metrics) observeStages(t core.StageTimings) {
	m.stages[0].observe(t.Preprocess)
	m.stages[1].observe(t.Toplex)
	m.stages[2].observe(t.SOverlap)
	m.stages[3].observe(t.Squeeze)
	m.stages[4].observe(t.Total())
}

// countResponse records one HTTP response code.
func (m *metrics) countResponse(code int) {
	m.mu.Lock()
	m.responses[code]++
	m.mu.Unlock()
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the response-code counter. Scrapes of
// /metrics and /healthz probes (routers poll replica health) are not
// counted, so the response counters reconcile exactly with the traffic
// a load generator or router sent.
func (m *metrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			h.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		m.countResponse(rec.code)
	})
}

// metricWriter accumulates one exposition document.
type metricWriter struct {
	b strings.Builder
}

func (w *metricWriter) header(name, help, typ string) {
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (w *metricWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// %g keeps integers integral and avoids trailing zeros.
	fmt.Fprintf(&w.b, "%s%s %g\n", name, labels, v)
}

// WriteMetrics renders the full Prometheus text exposition of the
// service: cache and compute counters, singleflight dedups, admission
// control state, HTTP response codes, and per-stage latency histograms.
func (s *Service) WriteMetrics(w io.Writer) error {
	mw := &metricWriter{}

	writeCache := func(which string, cs CacheStats) {
		p := "hyperline_" + which + "_cache_"
		mw.header(p+"hits_total", which+" cache hits", "counter")
		mw.value(p+"hits_total", "", float64(cs.Hits))
		mw.header(p+"misses_total", which+" cache misses", "counter")
		mw.value(p+"misses_total", "", float64(cs.Misses))
		mw.header(p+"evictions_total", which+" cache evictions", "counter")
		mw.value(p+"evictions_total", "", float64(cs.Evictions))
		mw.header(p+"entries", which+" cache current entries", "gauge")
		mw.value(p+"entries", "", float64(cs.Entries))
		mw.header(p+"capacity", which+" cache capacity", "gauge")
		mw.value(p+"capacity", "", float64(cs.Capacity))
		mw.header(p+"disk_hits_total", which+" cache memory misses served from the spill tier", "counter")
		mw.value(p+"disk_hits_total", "", float64(cs.DiskHits))
		mw.header(p+"disk_misses_total", which+" cache memory misses that also missed the spill tier", "counter")
		mw.value(p+"disk_misses_total", "", float64(cs.DiskMisses))
	}
	writeCache("projection", s.CacheStats())
	writeCache("measure", s.mcache.Stats())

	sp := s.SpillStats()
	mw.header("hyperline_spill_entries", "entries in the on-disk spill store", "gauge")
	mw.value("hyperline_spill_entries", "", float64(sp.Entries))
	mw.header("hyperline_spill_bytes", "bytes in the on-disk spill store", "gauge")
	mw.value("hyperline_spill_bytes", "", float64(sp.Bytes))
	mw.header("hyperline_spill_writes_total", "entries written to the spill store", "counter")
	mw.value("hyperline_spill_writes_total", "", float64(sp.Writes))
	mw.header("hyperline_spill_evictions_total", "spill files evicted to fit the disk budget", "counter")
	mw.value("hyperline_spill_evictions_total", "", float64(sp.Evictions))
	mw.header("hyperline_spill_errors_total", "spill reads or writes that failed (degraded to cold misses)", "counter")
	mw.value("hyperline_spill_errors_total", "", float64(sp.Errors))

	mw.header("hyperline_projection_computes_total", "per-s projections actually computed (Stages 1-4 ran)", "counter")
	mw.value("hyperline_projection_computes_total", "", float64(s.projectionComputes.Load()))
	mw.header("hyperline_measure_computes_total", "measure evaluations actually computed", "counter")
	mw.value("hyperline_measure_computes_total", "", float64(s.measureComputes.Load()))

	mw.header("hyperline_ingest_applied_total", "deltas applied via streaming ingest", "counter")
	mw.value("hyperline_ingest_applied_total", "", float64(s.ingestsApplied.Load()))
	mw.header("hyperline_ingest_projection_outcomes_total", "projection cache entries walked across delta version bumps, by outcome", "counter")
	mw.value("hyperline_ingest_projection_outcomes_total", `outcome="migrated"`, float64(s.ingestMigrated.Load()))
	mw.value("hyperline_ingest_projection_outcomes_total", `outcome="patched"`, float64(s.ingestPatched.Load()))
	mw.value("hyperline_ingest_projection_outcomes_total", `outcome="dropped"`, float64(s.ingestDropped.Load()))
	mw.header("hyperline_ingest_measure_outcomes_total", "measure cache entries walked across delta version bumps, by outcome", "counter")
	mw.value("hyperline_ingest_measure_outcomes_total", `outcome="migrated"`, float64(s.ingestMeasureMigrated.Load()))
	mw.value("hyperline_ingest_measure_outcomes_total", `outcome="dropped"`, float64(s.ingestMeasureDropped.Load()))

	mw.header("hyperline_singleflight_dedups_total", "requests served by joining another caller's in-flight computation", "counter")
	mw.value("hyperline_singleflight_dedups_total", `flight="projection"`, float64(s.sfDedups.Load()))
	mw.value("hyperline_singleflight_dedups_total", `flight="measure"`, float64(s.msfDedups.Load()))

	mw.header("hyperline_datasets", "registered datasets", "gauge")
	mw.value("hyperline_datasets", "", float64(len(s.Datasets())))

	as := s.adm.Stats()
	mw.header("hyperline_admission_admitted_total", "admitted units of Stage-3 work", "counter")
	mw.value("hyperline_admission_admitted_total", `priority="interactive"`, float64(as.AdmittedInteractive))
	mw.value("hyperline_admission_admitted_total", `priority="background"`, float64(as.AdmittedBackground))
	mw.header("hyperline_admission_shed_total", "requests shed by admission control", "counter")
	mw.value("hyperline_admission_shed_total", `priority="interactive"`, float64(as.ShedInteractive))
	mw.value("hyperline_admission_shed_total", `priority="background"`, float64(as.ShedBackground))
	mw.header("hyperline_admission_dataset_shed_total", "requests shed by the per-dataset inflight quota (also in shed_total)", "counter")
	mw.value("hyperline_admission_dataset_shed_total", "", float64(as.ShedPerDataset))
	mw.header("hyperline_admission_queued_total", "admissions that waited in the queue", "counter")
	mw.value("hyperline_admission_queued_total", "", float64(as.Queued))
	mw.header("hyperline_admission_queue_cancelled_total", "queued admissions abandoned by context expiry", "counter")
	mw.value("hyperline_admission_queue_cancelled_total", "", float64(as.QueueCancelled))
	mw.header("hyperline_admission_inflight_cost_units", "admitted Stage-3 work in cost units (estimated ms)", "gauge")
	mw.value("hyperline_admission_inflight_cost_units", "", float64(as.InflightCost))
	mw.header("hyperline_admission_inflight_requests", "admitted Stage-3 passes currently running", "gauge")
	mw.value("hyperline_admission_inflight_requests", "", float64(as.InflightRequests))
	mw.header("hyperline_admission_queue_length", "interactive admissions currently waiting", "gauge")
	mw.value("hyperline_admission_queue_length", "", float64(as.QueueLength))

	m := s.metrics
	m.mu.Lock()
	codes := make([]int, 0, len(m.responses))
	for c := range m.responses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	mw.header("hyperline_http_responses_total", "HTTP responses by status code (excluding /metrics scrapes)", "counter")
	for _, c := range codes {
		mw.value("hyperline_http_responses_total", fmt.Sprintf(`code="%d"`, c), float64(m.responses[c]))
	}
	m.mu.Unlock()

	mw.header("hyperline_stage_duration_seconds", "pipeline stage wall time per computed pass", "histogram")
	for i, stage := range stageLabels {
		h := &m.stages[i]
		cum := int64(0)
		for bi, bound := range latencyBuckets {
			cum += h.buckets[bi].Load()
			mw.value("hyperline_stage_duration_seconds_bucket",
				fmt.Sprintf(`stage="%s",le="%g"`, stage, bound), float64(cum))
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		mw.value("hyperline_stage_duration_seconds_bucket",
			fmt.Sprintf(`stage="%s",le="+Inf"`, stage), float64(cum))
		mw.value("hyperline_stage_duration_seconds_sum",
			fmt.Sprintf(`stage="%s"`, stage), time.Duration(h.sumNS.Load()).Seconds())
		mw.value("hyperline_stage_duration_seconds_count",
			fmt.Sprintf(`stage="%s"`, stage), float64(h.count.Load()))
	}

	_, err := io.WriteString(w, mw.b.String())
	return err
}

// handleMetrics serves GET /metrics.
func handleMetrics(svc *Service, w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	svc.WriteMetrics(w)
}
