package serve

import (
	"context"
	"fmt"

	"hyperline/internal/core"
	"hyperline/internal/measure"
	"hyperline/internal/par"
)

// MeasureResult is one served measure evaluation: the cached entry
// (value + projection shape) plus cache provenance for the measure
// itself and the underlying projection.
type MeasureResult struct {
	// S is the overlap threshold the measure was evaluated at.
	S int
	// Entry is the measure value and the projection shape it was
	// computed on (shared, immutable — do not mutate).
	*MeasureEntry
	// Cached reports whether the measure value itself was served
	// without recomputation (measure-cache hit, or a concurrent
	// identical request's value was shared via singleflight).
	Cached bool
	// ProjectionCached reports whether Stages 1-4 were skipped for
	// the underlying projection (always true on a measure-cache hit:
	// the projection is not even consulted).
	ProjectionCached bool
}

// MeasureCacheStats extends the cache counters with the number of
// actual measure evaluations the service has run — the ground truth
// the caching tests (and capacity planning) compare hit counts
// against.
type MeasureCacheStats struct {
	CacheStats
	Computes int64 `json:"computes"`
}

// MeasureCacheStats snapshots the measure-cache counters.
func (s *Service) MeasureCacheStats() MeasureCacheStats {
	return MeasureCacheStats{
		CacheStats: s.mcache.Stats(),
		Computes:   s.measureComputes.Load(),
	}
}

// measureKey extends a projection cache key with the measure identity:
// a measure hit is only possible where the projection key would hit,
// and replacing a dataset (version bump) invalidates both layers at
// once.
func measureKey(projKey, measureName string, p measure.Params) string {
	return fmt.Sprintf("%s/measure=%s?%s", projKey, measureName, p.CanonicalString())
}

// measureFlight is a measure singleflight outcome: the entry plus
// whether the flight itself served it from the measure cache.
type measureFlight struct {
	entry     *MeasureEntry
	fromCache bool
}

// Measure evaluates the named measure on the s-line graph (or s-clique
// graph, when dual) of the named dataset, serving both the projection
// and the measure value from their caches when possible. Unknown
// measures fail with the list of registered ones; params are validated
// against the measure's schema before any pipeline work runs.
func (s *Service) Measure(ctx context.Context, name string, dual bool, sVal int, cfg core.PipelineConfig, measureName string, params map[string]string) (*MeasureResult, error) {
	out, err := s.MeasureSweep(ctx, name, dual, []int{sVal}, cfg, measureName, params)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// MeasureSweep evaluates the named measure across an s-sweep as one
// batched request — the serving form of the paper's application tables
// (component counts, diameters, and centralities reported per s). It
// is a thin view over Query that fails on the first per-s error (the
// v1 semantics); cached measure values are served as-is, the remaining
// s values share one batched Stage 1-4 pass followed by one Compute
// per s, each deduplicated via singleflight and cached individually.
// Results are ordered by ascending distinct s.
func (s *Service) MeasureSweep(ctx context.Context, name string, dual bool, sValues []int, cfg core.PipelineConfig, measureName string, params map[string]string) ([]*MeasureResult, error) {
	if measureName == "" {
		// An empty name would turn the Query into a projection-only
		// request; surface the registry menu instead.
		_, err := measure.Get(measureName)
		return nil, err
	}
	qr, err := s.Query(ctx, QueryRequest{
		Dataset: name, Dual: dual, S: sValues, Cfg: cfg,
		Measure: measureName, Params: params,
		FailFast: true, // v1 semantics: the first per-s error fails the sweep
	})
	if err != nil {
		return nil, err
	}
	out := make([]*MeasureResult, len(qr.Entries))
	for i, e := range qr.Entries {
		out[i] = e.Measure
	}
	return out, nil
}

// measureOne serves one measure evaluation: a singleflight-deduplicated
// cache probe + Compute under the flight's detached context, so a
// disconnected client neither aborts an evaluation other clients wait
// on nor — when it disconnects before the evaluation starts — bumps
// the compute counter.
func (s *Service) measureOne(ctx context.Context, mk string, m measure.Measure, p measure.Params, cfg core.PipelineConfig, res *core.PipelineResult, projCached bool) (*MeasureResult, error) {
	popt := par.Options{Workers: cfg.Core.Workers, Grain: cfg.Core.Grain, Strategy: cfg.Core.Partition}
	v, err, shared := s.msf.Do(ctx, mk, func(fctx context.Context) (any, error) {
		// Re-probe under the flight: an identical request may have
		// cached the value between our miss and this call
		// (singleflight forgets completed flights).
		if e, ok := s.mcache.Get(mk); ok {
			return measureFlight{entry: e, fromCache: true}, nil
		}
		// An evaluation nobody waits for anymore must not start (or
		// count): the flight context trips when the last waiter leaves.
		if err := fctx.Err(); err != nil {
			return nil, err
		}
		s.measureComputes.Add(1)
		val, err := m.Compute(fctx, res, p, popt)
		if err != nil {
			return nil, err
		}
		e := NewMeasureEntry(res, val)
		s.mcache.Put(mk, e)
		return measureFlight{entry: e}, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		s.msfDedups.Add(1)
	}
	f := v.(measureFlight)
	return &MeasureResult{
		S:                res.S,
		MeasureEntry:     f.entry,
		Cached:           shared || f.fromCache,
		ProjectionCached: projCached,
	}, nil
}
