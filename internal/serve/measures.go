package serve

import (
	"fmt"

	"hyperline/internal/core"
	"hyperline/internal/measure"
	"hyperline/internal/par"
)

// MeasureResult is one served measure evaluation: the cached entry
// (value + projection shape) plus cache provenance for the measure
// itself and the underlying projection.
type MeasureResult struct {
	// S is the overlap threshold the measure was evaluated at.
	S int
	// Entry is the measure value and the projection shape it was
	// computed on (shared, immutable — do not mutate).
	*MeasureEntry
	// Cached reports whether the measure value itself was served
	// without recomputation (measure-cache hit, or a concurrent
	// identical request's value was shared via singleflight).
	Cached bool
	// ProjectionCached reports whether Stages 1-4 were skipped for
	// the underlying projection (always true on a measure-cache hit:
	// the projection is not even consulted).
	ProjectionCached bool
}

// MeasureCacheStats extends the cache counters with the number of
// actual measure evaluations the service has run — the ground truth
// the caching tests (and capacity planning) compare hit counts
// against.
type MeasureCacheStats struct {
	CacheStats
	Computes int64 `json:"computes"`
}

// MeasureCacheStats snapshots the measure-cache counters.
func (s *Service) MeasureCacheStats() MeasureCacheStats {
	return MeasureCacheStats{
		CacheStats: s.mcache.Stats(),
		Computes:   s.measureComputes.Load(),
	}
}

// measureKey extends a projection cache key with the measure identity:
// a measure hit is only possible where the projection key would hit,
// and replacing a dataset (version bump) invalidates both layers at
// once.
func measureKey(projKey, measureName string, p measure.Params) string {
	return fmt.Sprintf("%s/measure=%s?%s", projKey, measureName, p.CanonicalString())
}

// measureFlight is a measure singleflight outcome: the entry plus
// whether the flight itself served it from the measure cache.
type measureFlight struct {
	entry     *MeasureEntry
	fromCache bool
}

// Measure evaluates the named measure on the s-line graph (or s-clique
// graph, when dual) of the named dataset, serving both the projection
// and the measure value from their caches when possible. Unknown
// measures fail with the list of registered ones; params are validated
// against the measure's schema before any pipeline work runs.
func (s *Service) Measure(name string, dual bool, sVal int, cfg core.PipelineConfig, measureName string, params map[string]string) (*MeasureResult, error) {
	out, err := s.MeasureSweep(name, dual, []int{sVal}, cfg, measureName, params)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// MeasureSweep evaluates the named measure across an s-sweep as one
// batched request — the serving form of the paper's application tables
// (component counts, diameters, and centralities reported per s).
// Cached measure values are served as-is; the remaining s values share
// one batched Stage 1-4 pass (one planner-driven core.RunBatch for the
// uncached projections) followed by one Compute per s, each
// deduplicated via singleflight and cached individually. Results are
// ordered by ascending distinct s.
func (s *Service) MeasureSweep(name string, dual bool, sValues []int, cfg core.PipelineConfig, measureName string, params map[string]string) ([]*MeasureResult, error) {
	m, err := measure.Get(measureName)
	if err != nil {
		return nil, err
	}
	p, err := measure.Canonicalize(m, params)
	if err != nil {
		return nil, err
	}
	if err := core.ValidateSValues(sValues); err != nil {
		return nil, err
	}
	// The dataset snapshot (hypergraph + version) is read once and
	// pinned through the whole sweep — including the projection batch
	// below, via projectBatchAt — so every key derived here refers to
	// the dataset as it was at this instant and a concurrent
	// replacement can never mix two versions within one sweep.
	h, version, err := s.reg.Get(name)
	if err != nil {
		return nil, err
	}

	distinct := core.DistinctS(sValues)
	out := make([]*MeasureResult, len(distinct))
	missing := make([]int, 0, len(distinct))
	for i, sVal := range distinct {
		mk := measureKey(key(name, version, dual, sVal, cfg), measureName, p)
		if e, ok := s.mcache.Get(mk); ok {
			out[i] = &MeasureResult{S: sVal, MeasureEntry: e, Cached: true, ProjectionCached: true}
		} else {
			missing = append(missing, sVal)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	// One batched planner-driven pass fills every projection the
	// uncached measures need (itself served from the projection cache
	// where warm), pinned to the version read above.
	projs, projCached, err := s.projectBatchAt(h, version, name, dual, missing, cfg)
	if err != nil {
		return nil, err
	}
	popt := par.Options{Workers: cfg.Core.Workers, Grain: cfg.Core.Grain, Strategy: cfg.Core.Partition}
	byS := make(map[int]*MeasureResult, len(missing))
	for _, sVal := range missing {
		res := projs[sVal]
		mk := measureKey(key(name, version, dual, sVal, cfg), measureName, p)
		v, err, shared := s.msf.Do(mk, func() (any, error) {
			// Re-probe under the flight: an identical request may
			// have cached the value between our miss and this call
			// (singleflight forgets completed flights).
			if e, ok := s.mcache.Get(mk); ok {
				return measureFlight{entry: e, fromCache: true}, nil
			}
			s.measureComputes.Add(1)
			val, err := m.Compute(res, p, popt)
			if err != nil {
				return nil, err
			}
			e := &MeasureEntry{
				Value: val,
				Nodes: res.Graph.NumNodes(),
				Edges: res.Graph.NumEdges(),
			}
			// The node→hyperedge mapping only labels per-node
			// vectors; scalar- and group-shaped values (diameter,
			// components, connectivity) neither serialize it nor
			// should pin it in the LRU after the projection evicts.
			if val.Scores != nil || val.Ints != nil {
				e.HyperedgeIDs = res.HyperedgeIDs
			}
			s.mcache.Put(mk, e)
			return measureFlight{entry: e}, nil
		})
		if err != nil {
			return nil, err
		}
		f := v.(measureFlight)
		byS[sVal] = &MeasureResult{
			S:                sVal,
			MeasureEntry:     f.entry,
			Cached:           shared || f.fromCache,
			ProjectionCached: projCached[sVal],
		}
	}
	for i, sVal := range distinct {
		if out[i] == nil {
			out[i] = byS[sVal]
		}
	}
	return out, nil
}
