package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/measure"
)

// queryRequestJSON is the POST /v2/query body: the context-first
// unified query. "s" accepts a JSON integer array or an s-list string
// ("1,4:8"); "kind" is "line" (default) or "clique"; "timeout_ms"
// bounds this request via its context (independent of any server-wide
// -request-timeout, whichever expires first wins).
type queryRequestJSON struct {
	Dataset   string            `json:"dataset"`
	Kind      string            `json:"kind,omitempty"`
	S         json.RawMessage   `json:"s"`
	Measure   string            `json:"measure,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Config    string            `json:"config,omitempty"`
	Workers   int               `json:"workers,omitempty"`
	Toplex    toplexJSON        `json:"toplex,omitempty"`
	NoSqueeze bool              `json:"nosqueeze,omitempty"`
	Exact     bool              `json:"exact,omitempty"`
	Edges     bool              `json:"edges,omitempty"`
	TimeoutMS int               `json:"timeout_ms,omitempty"`
	// Priority is "interactive" (default) or "background": background
	// queries are shed instead of queued when admission control is
	// saturated, so bulk cache-seeding traffic yields to users.
	Priority string `json:"priority,omitempty"`
}

// toplexJSON accepts the two JSON spellings of the toplex knob: a
// boolean, or the string "auto" for the planner-resolved mode. The
// zero value (field omitted) is ToplexOff, the historical default.
type toplexJSON struct {
	mode core.ToplexMode
}

func (t *toplexJSON) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "true":
		t.mode = core.ToplexOn
	case "false", "null":
		t.mode = core.ToplexOff
	case `"auto"`:
		t.mode = core.ToplexAuto
	default:
		return fmt.Errorf("serve: bad toplex %s (want true, false, or \"auto\")", b)
	}
	return nil
}

// queryEntryJSON is one per-s result of a v2 query. Exactly one of
// Error or the payload fields is meaningful; Error carries per-s
// failures (the rest of the sweep still answers).
type queryEntryJSON struct {
	S                int            `json:"s"`
	Error            string         `json:"error,omitempty"`
	Cached           bool           `json:"cached"`
	ProjectionCached bool           `json:"projection_cached,omitempty"`
	Nodes            int            `json:"nodes,omitempty"`
	Edges            int            `json:"edges,omitempty"`
	HyperedgeIDs     []uint32       `json:"hyperedge_ids,omitempty"`
	EdgeList         [][3]uint32    `json:"edge_list,omitempty"`
	Value            *measure.Value `json:"value,omitempty"`
	TimingsMS        *timingsJSON   `json:"timings_ms,omitempty"`
}

type queryResponseJSON struct {
	Dataset string `json:"dataset"`
	// Version is the dataset version the query was pinned to; streaming
	// clients use it to order answers across ingested deltas.
	Version   uint64           `json:"version"`
	Kind      string           `json:"kind"`
	Measure   string           `json:"measure,omitempty"`
	Plan      *planJSON        `json:"plan,omitempty"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Results   []queryEntryJSON `json:"results"`
}

// handleQueryV2 serves POST /v2/query: one JSON Query in, ordered
// per-s entries (with per-s errors), the executed plan, and stage
// timings out. Unlike the v1 GET endpoints, edge lists are opt-in
// ("edges": true) — the default response carries the projection shape,
// mapping, and measure value only.
func handleQueryV2(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req queryRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad /v2/query body: %w", err))
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: \"dataset\" is required"))
		return
	}
	var dual bool
	switch req.Kind {
	case "", "line":
		dual = false
	case "clique":
		dual = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown kind %q (want \"line\" or \"clique\")", req.Kind))
		return
	}
	if len(req.S) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: \"s\" is required (an integer array or an s-list string such as \"1,4:8\")"))
		return
	}
	sweep, err := decodeSValues(req.S)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cfg core.PipelineConfig
	if req.Config != "" {
		c, err := core.ParseNotation(req.Config)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cfg.Core = c
	}
	cfg.Toplex = req.Toplex.mode
	cfg.NoSqueeze = req.NoSqueeze
	cfg.Core.DisableShortCircuit = req.Exact
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad workers %d", req.Workers))
		return
	}
	cfg.Core.Workers = clampWorkers(req.Workers)
	var pri Priority
	switch req.Priority {
	case "", "interactive":
		pri = PriorityInteractive
	case "background":
		pri = PriorityBackground
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown priority %q (want \"interactive\" or \"background\")", req.Priority))
		return
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	start := time.Now()
	qr, err := svc.Query(ctx, QueryRequest{
		Dataset:  req.Dataset,
		Dual:     dual,
		S:        sweep,
		Cfg:      cfg,
		Measure:  req.Measure,
		Params:   req.Params,
		Priority: pri,
	})
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}

	resp := queryResponseJSON{
		Dataset:   req.Dataset,
		Version:   qr.Version,
		Kind:      kindString(dual),
		Measure:   req.Measure,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Results:   make([]queryEntryJSON, len(qr.Entries)),
	}
	if qr.Plan.Strategy != "" {
		plan := toPlan(qr.Plan)
		resp.Plan = &plan
	}
	for i, e := range qr.Entries {
		out := queryEntryJSON{S: e.S, Cached: e.Cached}
		if e.Err != nil {
			out.Error = e.Err.Error()
			resp.Results[i] = out
			continue
		}
		switch {
		case e.Measure != nil:
			out.ProjectionCached = e.Measure.ProjectionCached
			out.Nodes = e.Measure.Nodes
			out.Edges = e.Measure.Edges
			out.HyperedgeIDs = e.Measure.HyperedgeIDs
			out.Value = e.Measure.Value
		case e.Res != nil:
			out.Nodes = e.Res.Graph.NumNodes()
			out.Edges = e.Res.Graph.NumEdges()
			out.HyperedgeIDs = e.Res.HyperedgeIDs
		}
		if e.Res != nil {
			t := toTimings(e.Res.Timings)
			out.TimingsMS = &t
			if req.Edges {
				edges := e.Res.Graph.Edges()
				out.EdgeList = make([][3]uint32, len(edges))
				for j, ge := range edges {
					out.EdgeList[j] = [3]uint32{ge.U, ge.V, ge.W}
				}
			}
		}
		resp.Results[i] = out
	}
	// Per-s errors keep 200 while at least one entry answered, but a
	// sweep where *every* entry failed is a failed request: 502 lets
	// load balancers and load generators tell it from success without
	// parsing entries. (Per-s errors are upstream evaluation failures,
	// not client mistakes, hence the 502 class.)
	status := http.StatusOK
	if len(resp.Results) > 0 {
		allFailed := true
		for _, e := range resp.Results {
			if e.Error == "" {
				allFailed = false
				break
			}
		}
		if allFailed {
			status = http.StatusBadGateway
		}
	}
	writeJSON(w, status, resp)
}

// kindString renders the orientation the way the v2 API spells it.
func kindString(dual bool) string {
	if dual {
		return "clique"
	}
	return "line"
}
