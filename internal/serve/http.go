package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/hgio"
	"hyperline/internal/measure"
)

// NewHandler returns the hyperlined HTTP/JSON API over svc:
//
//	GET    /healthz
//	GET    /v1/cache
//	GET    /v1/measures
//	GET    /v1/datasets
//	PUT    /v1/datasets/{name}?format=adj|pairs|bin   (body = dataset)
//	POST   /v1/datasets/{name}/load                   {"path": "..."}
//	GET    /v1/datasets/{name}
//	DELETE /v1/datasets/{name}
//	POST   /v1/datasets/{name}/warmup                 {"s": [..] | "lo:hi,..", "dual": bool, ...}
//	GET    /v1/datasets/{name}/costs
//	GET    /v1/datasets/{name}/slinegraph?s=N
//	GET    /v1/datasets/{name}/scliquegraph?s=N
//	GET    /v1/datasets/{name}/slinegraphs?s=LIST
//	GET    /v1/datasets/{name}/scliquegraphs?s=LIST
//	GET    /v1/datasets/{name}/measures?s=LIST&measure=NAME[&source=H ...]
//	GET    /v1/datasets/{name}/components?s=N
//	GET    /v1/datasets/{name}/distances?s=N&source=H
//	GET    /v1/datasets/{name}/centrality?s=N&kind=betweenness|closeness|harmonic|pagerank|eccentricity
//	GET    /v1/datasets/{name}/connectivity?s=N
//	POST   /v2/query                                  (unified JSON query, see handleQueryV2)
//	POST   /v2/ingest                                 (streaming delta, see handleIngest)
//	GET    /v2/datasets/{name}/changes                (long-poll change feed, see handleChanges)
//
// Every endpoint threads the request's context through the pipeline:
// client disconnects and per-request timeouts cancel the computation
// cooperatively (unless concurrent identical requests still wait on
// it), and an expired context answers 504.
//
// The plural projection endpoints, the measures endpoint, and the
// warmup body's "s" field accept an s-list: a comma-separated mix of
// values and inclusive lo:hi ranges, e.g. "1,4:6,12". The whole list
// is served as one batched planner-driven pass; uncached members share
// a single counting pass when the planner picks the ensemble.
//
// /v1/measures lists the Stage-5 measure registry (name, doc, cost,
// params); /v1/datasets/{name}/measures evaluates one measure across
// the s-list, serving repeats from the measure cache. The four legacy
// measure endpoints (components, distances, centrality, connectivity)
// are thin views over the same engine and share its cache.
//
// Query/projection endpoints share the option parameters config (Table
// III notation — extended with "3", "A"/"auto", "S"/"spgemm"), toplex,
// nosqueeze, exact, and workers; measure endpoints additionally accept
// dual=true to run against the s-clique graph, plus the parameters the
// measure's schema declares (e.g. source for distances).
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"pipeline": svc.CacheStats(),
			"measures": svc.MeasureCacheStats(),
		})
	})
	mux.HandleFunc("GET /v1/measures", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, measure.Infos())
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Datasets())
	})
	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		handleUpload(svc, w, r)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/load", func(w http.ResponseWriter, r *http.Request) {
		handleLoad(svc, w, r)
	})
	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		stats, err := svc.Stats(r.PathValue("name"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})
	mux.HandleFunc("DELETE /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !svc.Remove(r.PathValue("name")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: %w %q", ErrUnknownDataset, r.PathValue("name")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
	})
	mux.HandleFunc("POST /v1/datasets/{name}/warmup", func(w http.ResponseWriter, r *http.Request) {
		handleWarmup(svc, w, r)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/costs", func(w http.ResponseWriter, r *http.Request) {
		handleCosts(svc, w, r)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/slinegraph", func(w http.ResponseWriter, r *http.Request) {
		handleProjection(svc, w, r, false)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/scliquegraph", func(w http.ResponseWriter, r *http.Request) {
		handleProjection(svc, w, r, true)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/slinegraphs", func(w http.ResponseWriter, r *http.Request) {
		handleProjectionBatch(svc, w, r, false)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/scliquegraphs", func(w http.ResponseWriter, r *http.Request) {
		handleProjectionBatch(svc, w, r, true)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/measures", func(w http.ResponseWriter, r *http.Request) {
		handleMeasureSweep(svc, w, r)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/components", func(w http.ResponseWriter, r *http.Request) {
		handleMeasure(svc, w, r, measureComponents)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/distances", func(w http.ResponseWriter, r *http.Request) {
		handleMeasure(svc, w, r, measureDistances)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/centrality", func(w http.ResponseWriter, r *http.Request) {
		handleMeasure(svc, w, r, measureCentrality)
	})
	mux.HandleFunc("GET /v1/datasets/{name}/connectivity", func(w http.ResponseWriter, r *http.Request) {
		handleMeasure(svc, w, r, measureConnectivity)
	})
	mux.HandleFunc("POST /v2/query", func(w http.ResponseWriter, r *http.Request) {
		handleQueryV2(svc, w, r)
	})
	mux.HandleFunc("POST /v2/ingest", func(w http.ResponseWriter, r *http.Request) {
		handleIngest(svc, w, r)
	})
	mux.HandleFunc("GET /v2/datasets/{name}/changes", func(w http.ResponseWriter, r *http.Request) {
		handleChanges(svc, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(svc, w, r)
	})
	// The response-code counter wraps every endpoint except /metrics
	// itself, so hyperline_http_responses_total reconciles exactly with
	// the traffic clients sent.
	return svc.metrics.instrument(mux)
}

// errStatus maps a service error to an HTTP status: requests shed by
// admission control are 429 (writeError adds the Retry-After header),
// cancelled or deadline-exceeded requests are 504 (the request context
// expired before the pipeline finished), unknown datasets are 404,
// everything else is a client error.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrVersionConflict):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	var sat *SaturatedError
	if errors.As(err, &sat) {
		// Retry-After is whole seconds, rounded up so clients never
		// retry before the estimated drain.
		secs := int64((sat.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseOptions builds a pipeline configuration from the shared query
// parameters.
func parseOptions(r *http.Request) (core.PipelineConfig, error) {
	var cfg core.PipelineConfig
	q := r.URL.Query()
	if n := q.Get("config"); n != "" {
		c, err := core.ParseNotation(n)
		if err != nil {
			return cfg, err
		}
		cfg.Core = c
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("serve: bad workers %q", ws)
		}
		cfg.Core.Workers = clampWorkers(n)
	}
	var err error
	if cfg.Toplex, err = toplexParam(q.Get("toplex")); err != nil {
		return cfg, err
	}
	if cfg.NoSqueeze, err = boolParam(q.Get("nosqueeze")); err != nil {
		return cfg, err
	}
	if cfg.Core.DisableShortCircuit, err = boolParam(q.Get("exact")); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// clampWorkers bounds a client-supplied worker count: values beyond
// the machine's parallelism only cost memory (per-worker state is
// allocated eagerly), and the output is identical for any count, so
// capping is invisible to the client.
func clampWorkers(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// toplexParam parses the toplex query parameter: a boolean, or "auto"
// for the planner-resolved mode.
func toplexParam(v string) (core.ToplexMode, error) {
	if v == "auto" {
		return core.ToplexAuto, nil
	}
	b, err := boolParam(v)
	return core.ToplexFromBool(b), err
}

func boolParam(v string) (bool, error) {
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("serve: bad boolean %q", v)
	}
	return b, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("serve: bad %s %q", name, v)
	}
	return n, nil
}

// maxUploadBytes caps PUT dataset bodies; datasets beyond this should
// be registered server-side via the /load endpoint.
const maxUploadBytes = 4 << 30

func handleUpload(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	format := r.URL.Query().Get("format")
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var err error
	var h *hg.Hypergraph
	switch format {
	case "", "adj":
		h, err = hgio.ReadAdjacency(body)
	case "pairs":
		h, err = hgio.ReadPairs(body)
	case "bin":
		h, err = hgio.ReadBinary(body)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown format %q (want adj, pairs, or bin)", format))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	svc.Add(name, h)
	stats, _ := svc.Stats(name)
	writeJSON(w, http.StatusOK, stats)
}

func handleLoad(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: body must be {\"path\": \"...\"}"))
		return
	}
	if err := svc.Load(name, req.Path); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	stats, _ := svc.Stats(name)
	writeJSON(w, http.StatusOK, stats)
}

func handleWarmup(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// The body accepts the same option set as the query endpoints, so a
	// warmup can pre-seed exactly the keys those queries will look up.
	// "s" is either a JSON array of integers or an s-list string such
	// as "1,4:8".
	var req struct {
		S         json.RawMessage `json:"s"`
		Dual      bool            `json:"dual"`
		Config    string          `json:"config"`
		Toplex    toplexJSON      `json:"toplex"`
		NoSqueeze bool            `json:"nosqueeze"`
		Exact     bool            `json:"exact"`
		Workers   int             `json:"workers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.S) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: body must be {\"s\": [..] or \"lo:hi\", ...}"))
		return
	}
	sweep, err := decodeSValues(req.S)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cfg core.PipelineConfig
	if req.Config != "" {
		c, err := core.ParseNotation(req.Config)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cfg.Core = c
	}
	cfg.Toplex = req.Toplex.mode
	cfg.NoSqueeze = req.NoSqueeze
	cfg.Core.DisableShortCircuit = req.Exact
	cfg.Core.Workers = clampWorkers(req.Workers)
	start := time.Now()
	computed, hot, err := svc.Warmup(r.Context(), name, req.Dual, sweep, cfg)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"computed":    computed,
		"already_hot": hot,
		"elapsed_ms":  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// costCellJSON renders one calibration cell with human-readable knob
// names (the library form, core.CostObservation, carries typed enums).
type costCellJSON struct {
	Strategy   string  `json:"strategy"`
	Relabel    string  `json:"relabel"`
	Toplex     bool    `json:"toplex"`
	Multi      bool    `json:"multi"`
	PerSMS     float64 `json:"per_s_ms"`
	N          int64   `json:"n"`
	Calibrated bool    `json:"calibrated"`
}

func toCostCells(obs []core.CostObservation) []costCellJSON {
	out := make([]costCellJSON, len(obs))
	for i, o := range obs {
		name := o.Key.Algo.String()
		if st, err := core.StrategyFor(o.Key.Algo); err == nil {
			name = st.Name()
		}
		out[i] = costCellJSON{
			Strategy:   name,
			Relabel:    o.Key.Relabel.String(),
			Toplex:     o.Key.Toplex,
			Multi:      o.Key.Multi,
			PerSMS:     float64(o.PerS) / float64(time.Millisecond),
			N:          o.N,
			Calibrated: o.Calibrated,
		}
	}
	return out
}

// handleCosts serves GET /v1/datasets/{name}/costs: the
// self-calibrating planner's observed Stage-3 cost table for the
// dataset's current version, per orientation. Fresh (or freshly
// replaced) datasets report empty tables — calibration never survives
// a version bump.
func handleCosts(svc *Service, w http.ResponseWriter, r *http.Request) {
	info, err := svc.Calibration(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    info.Name,
		"version": info.Version,
		"line":    toCostCells(info.Line),
		"clique":  toCostCells(info.Clique),
	})
}

// decodeSValues accepts the two warmup body forms for "s": a JSON
// array of integers, or an s-list string ("1,4:8").
func decodeSValues(raw json.RawMessage) ([]int, error) {
	var list []int
	if err := json.Unmarshal(raw, &list); err == nil {
		if err := core.ValidateSValues(list); err != nil {
			return nil, err
		}
		return list, nil
	}
	var spec string
	if err := json.Unmarshal(raw, &spec); err == nil {
		return core.ParseSValues(spec)
	}
	return nil, fmt.Errorf("serve: \"s\" must be an integer array or an s-list string such as \"1,4:8\"")
}

// graphResponse serializes one projection.
type graphResponse struct {
	Dataset      string      `json:"dataset"`
	S            int         `json:"s"`
	Dual         bool        `json:"dual"`
	Cached       bool        `json:"cached"`
	Nodes        int         `json:"nodes"`
	Edges        int         `json:"edges"`
	HyperedgeIDs []uint32    `json:"hyperedge_ids,omitempty"`
	EdgeList     [][3]uint32 `json:"edge_list,omitempty"`
	TimingsMS    timingsJSON `json:"timings_ms"`
	Plan         planJSON    `json:"plan"`
}

// planJSON surfaces the executed plan — the Stage-3 strategy, the
// resolved preprocessing knobs, and their reasons — for observability.
type planJSON struct {
	Strategy string `json:"strategy"`
	Reason   string `json:"reason,omitempty"`
	// Relabel is the resolved Stage-1 order ("N", "A", or "D").
	Relabel string `json:"relabel,omitempty"`
	// Toplex reports whether Stage-2 simplification ran.
	Toplex bool `json:"toplex"`
	// KnobReason explains the planner's knob choices; empty when the
	// caller pinned them.
	KnobReason string `json:"knob_reason,omitempty"`
}

// toPlan maps a pipeline plan into its JSON form.
func toPlan(p core.PlanInfo) planJSON {
	return planJSON{
		Strategy:   p.Strategy,
		Reason:     p.Reason,
		Relabel:    p.Relabel,
		Toplex:     p.Toplex,
		KnobReason: p.KnobReason,
	}
}

type timingsJSON struct {
	Preprocess float64 `json:"preprocess"`
	Toplex     float64 `json:"toplex"`
	SOverlap   float64 `json:"soverlap"`
	Squeeze    float64 `json:"squeeze"`
	Total      float64 `json:"total"`
}

func toTimings(t core.StageTimings) timingsJSON {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return timingsJSON{
		Preprocess: ms(t.Preprocess),
		Toplex:     ms(t.Toplex),
		SOverlap:   ms(t.SOverlap),
		Squeeze:    ms(t.Squeeze),
		Total:      ms(t.Total()),
	}
}

func handleProjection(svc *Service, w http.ResponseWriter, r *http.Request, dual bool) {
	name := r.PathValue("name")
	sVal, err := intParam(r, "s", 0)
	if err != nil || sVal < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: s must be a positive integer"))
		return
	}
	cfg, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	includeEdges, err := boolParamDefault(r, "edges", true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var res *core.PipelineResult
	var cached bool
	if dual {
		res, cached, err = svc.SCliqueGraph(r.Context(), name, sVal, cfg)
	} else {
		res, cached, err = svc.SLineGraph(r.Context(), name, sVal, cfg)
	}
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, toGraphResponse(name, sVal, dual, cached, includeEdges, res))
}

func toGraphResponse(name string, sVal int, dual, cached, includeEdges bool, res *core.PipelineResult) graphResponse {
	resp := graphResponse{
		Dataset:      name,
		S:            sVal,
		Dual:         dual,
		Cached:       cached,
		Nodes:        res.Graph.NumNodes(),
		Edges:        res.Graph.NumEdges(),
		HyperedgeIDs: res.HyperedgeIDs,
		TimingsMS:    toTimings(res.Timings),
		Plan:         toPlan(res.Plan),
	}
	if includeEdges {
		edges := res.Graph.Edges()
		resp.EdgeList = make([][3]uint32, len(edges))
		for i, e := range edges {
			resp.EdgeList[i] = [3]uint32{e.U, e.V, e.W}
		}
	}
	return resp
}

// handleProjectionBatch serves the s-list (plural) projection
// endpoints: the whole list runs as one batched planner-driven pass and
// the response carries one entry per distinct s, ascending.
func handleProjectionBatch(svc *Service, w http.ResponseWriter, r *http.Request, dual bool) {
	name := r.PathValue("name")
	spec := r.URL.Query().Get("s")
	if spec == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: s is required (a value, list, or lo:hi range)"))
		return
	}
	sweep, err := core.ParseSValues(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	includeEdges, err := boolParamDefault(r, "edges", true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var results map[int]*core.PipelineResult
	var cached map[int]bool
	if dual {
		results, cached, err = svc.SCliqueGraphs(r.Context(), name, sweep, cfg)
	} else {
		results, cached, err = svc.SLineGraphs(r.Context(), name, sweep, cfg)
	}
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	distinct := core.DistinctS(sweep)
	out := make([]graphResponse, 0, len(distinct))
	for _, sVal := range distinct {
		out = append(out, toGraphResponse(name, sVal, dual, cached[sVal], includeEdges, results[sVal]))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name,
		"dual":    dual,
		"results": out,
	})
}

func boolParamDefault(r *http.Request, name string, def bool) (bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("serve: bad boolean %s=%q", name, v)
	}
	return b, nil
}

// measureParams extracts the query parameters a measure's schema
// declares. Only declared names are read, so measure parameters can
// never collide with the shared option parameters (s, config, workers,
// ...).
func measureParams(r *http.Request, m measure.Measure) map[string]string {
	params := map[string]string{}
	q := r.URL.Query()
	for _, spec := range m.Params() {
		if v := q.Get(spec.Name); v != "" {
			params[spec.Name] = v
		}
	}
	return params
}

// measureResponse serializes one measure evaluation of a sweep.
type measureResponse struct {
	S                int            `json:"s"`
	Cached           bool           `json:"cached"`
	ProjectionCached bool           `json:"projection_cached"`
	Nodes            int            `json:"nodes"`
	Edges            int            `json:"edges"`
	HyperedgeIDs     []uint32       `json:"hyperedge_ids,omitempty"`
	Value            *measure.Value `json:"value"`
}

// handleMeasureSweep serves GET .../measures?s=LIST&measure=NAME: one
// measure evaluated across a whole s-list as a single batched request,
// with per-s measure caching.
func handleMeasureSweep(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query()
	measureName := q.Get("measure")
	if measureName == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: measure is required (registered: %s)", strings.Join(measure.Names(), ", ")))
		return
	}
	m, err := measure.Get(measureName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := q.Get("s")
	if spec == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: s is required (a value, list, or lo:hi range)"))
		return
	}
	sweep, err := core.ParseSValues(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dual, err := boolParam(q.Get("dual"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, err := svc.MeasureSweep(r.Context(), name, dual, sweep, cfg, measureName, measureParams(r, m))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	out := make([]measureResponse, len(results))
	for i, res := range results {
		out[i] = measureResponse{
			S:                res.S,
			Cached:           res.Cached,
			ProjectionCached: res.ProjectionCached,
			Nodes:            res.Nodes,
			Edges:            res.Edges,
			HyperedgeIDs:     res.HyperedgeIDs,
			Value:            res.Value,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name,
		"dual":    dual,
		"measure": measureName,
		"results": out,
	})
}

// legacyMeasure resolves one of the fixed measure endpoints to a
// registry measure plus a payload shaper that preserves the endpoint's
// historical response schema.
type legacyMeasure func(r *http.Request) (measureName string, params map[string]string, shape func(*MeasureResult) any, err error)

// handleMeasure serves the four legacy single-measure endpoints
// through the measures engine, so they share its cache: the "cached"
// flag now reports whether the measure value itself was reused.
func handleMeasure(svc *Service, w http.ResponseWriter, r *http.Request, fn legacyMeasure) {
	name := r.PathValue("name")
	sVal, err := intParam(r, "s", 0)
	if err != nil || sVal < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: s must be a positive integer"))
		return
	}
	cfg, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dual, err := boolParam(r.URL.Query().Get("dual"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	measureName, params, shape, err := fn(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := svc.Measure(r.Context(), name, dual, sVal, cfg, measureName, params)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name,
		"s":       sVal,
		"dual":    dual,
		"cached":  res.Cached,
		"result":  shape(res),
	})
}

func measureComponents(_ *http.Request) (string, map[string]string, func(*MeasureResult) any, error) {
	return "components", nil, func(res *MeasureResult) any {
		count := 0
		if res.Value.Scalar != nil {
			count = int(*res.Value.Scalar)
		}
		return map[string]any{"count": count, "members": res.Value.Groups}
	}, nil
}

func measureDistances(r *http.Request) (string, map[string]string, func(*MeasureResult) any, error) {
	raw := r.URL.Query().Get("source")
	// Parsed here (not just passed through) to keep the endpoint's
	// historical response schema: "source" is a JSON number.
	src, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return "", nil, nil, fmt.Errorf("serve: source must be a hyperedge ID")
	}
	return "distances", map[string]string{"source": raw}, func(res *MeasureResult) any {
		return map[string]any{
			"source":        src,
			"hyperedge_ids": res.HyperedgeIDs,
			"distances":     res.Value.Ints,
		}
	}, nil
}

// centralityKinds maps the centrality endpoint's kind parameter to
// registry measures. The default kind is betweenness.
var centralityKinds = map[string]string{
	"betweenness":  "betweenness",
	"closeness":    "closeness",
	"harmonic":     "harmonic",
	"pagerank":     "pagerank",
	"eccentricity": "eccentricity",
}

func measureCentrality(r *http.Request) (string, map[string]string, func(*MeasureResult) any, error) {
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "betweenness"
	}
	measureName, ok := centralityKinds[kind]
	if !ok {
		// An unknown kind is a hard 400 with the menu — never a
		// silent fallback to some default centrality.
		kinds := make([]string, 0, len(centralityKinds))
		for k := range centralityKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		return "", nil, nil, fmt.Errorf("serve: unknown centrality kind %q (want %s; see /v1/measures for the full registry)",
			kind, strings.Join(kinds, ", "))
	}
	return measureName, nil, func(res *MeasureResult) any {
		scores := res.Value.Scores
		if scores == nil && res.Value.Ints != nil {
			// Eccentricity is integer-valued; the endpoint's schema
			// reports float scores.
			scores = make([]float64, len(res.Value.Ints))
			for i, v := range res.Value.Ints {
				scores[i] = float64(v)
			}
		}
		return map[string]any{
			"kind":          kind,
			"hyperedge_ids": res.HyperedgeIDs,
			"scores":        scores,
		}
	}, nil
}

func measureConnectivity(_ *http.Request) (string, map[string]string, func(*MeasureResult) any, error) {
	return "connectivity", nil, func(res *MeasureResult) any {
		v := 0.0
		if res.Value.Scalar != nil {
			v = *res.Value.Scalar
		}
		return map[string]any{"normalized_algebraic_connectivity": v}
	}, nil
}
