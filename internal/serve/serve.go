// Package serve is the long-running query layer over the s-line graph
// pipeline: a registry of named hypergraph datasets, an LRU cache of
// pipeline results keyed by (dataset, version, orientation, s,
// options-fingerprint), and singleflight deduplication so concurrent
// identical requests run Stages 1-4 once and share one result.
//
// The paper treats s-line graphs as a multi-resolution family — the
// applications repeatedly query the same hypergraph at many s values —
// so the unit of caching is one materialized projection
// (core.PipelineResult). Results are immutable by convention: every
// cache reader receives the same pointer, and the s-measures of Stage 5
// only read the graph. Warmup precomputes an s-sweep with Algorithm 3
// (one counting pass for the whole ensemble) and seeds the cache with
// results byte-identical to what per-s direct runs would produce.
//
// cmd/hyperlined exposes this package over HTTP/JSON; hyperline.Session
// exposes it to library users.
package serve

import (
	"fmt"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

// Config configures a Service.
type Config struct {
	// CacheEntries is the LRU capacity in cached pipeline results
	// (0 = DefaultCacheEntries).
	CacheEntries int
}

// Service ties the dataset registry, the result cache, and request
// deduplication together. All methods are safe for concurrent use.
type Service struct {
	reg   *Registry
	cache *Cache
	sf    singleflight
}

// New returns an empty service.
func New(cfg Config) *Service {
	return &Service{
		reg:   NewRegistry(),
		cache: NewCache(cfg.CacheEntries),
	}
}

// Add registers h under name, replacing any previous dataset with that
// name (previously cached results for the old version become
// unreachable and age out of the LRU).
func (s *Service) Add(name string, h *hg.Hypergraph) { s.reg.Add(name, h) }

// Load reads a hypergraph from path (format by extension, as
// hgio.LoadFile) and registers it under name.
func (s *Service) Load(name, path string) error {
	_, err := s.reg.Load(name, path)
	return err
}

// Remove drops the named dataset, reporting whether it existed.
func (s *Service) Remove(name string) bool { return s.reg.Remove(name) }

// Datasets lists the registered datasets sorted by name.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// Stats returns Table IV-style statistics for the named dataset
// (computed once at registration).
func (s *Service) Stats(name string) (hg.Stats, error) {
	return s.reg.Stats(name)
}

// Hypergraph returns the named hypergraph (shared, immutable).
func (s *Service) Hypergraph(name string) (*hg.Hypergraph, error) {
	h, _, err := s.reg.Get(name)
	return h, err
}

// CacheStats snapshots the result cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// key builds the cache key for one projection request. The dataset
// version makes replaced datasets miss; the fingerprint folds in every
// output-relevant option, so requests differing only in execution knobs
// (workers, grain, partition, counter store) share an entry.
func key(name string, version uint64, dual bool, sVal int, cfg core.PipelineConfig) string {
	orient := "line"
	if dual {
		orient = "clique"
	}
	return fmt.Sprintf("%s@%d/%s/s=%d/%s", name, version, orient, sVal, cfg.Fingerprint())
}

// SLineGraph returns the s-line graph of the named dataset, serving
// from the cache when possible. cached reports whether Stages 1-4 were
// skipped (a cache hit, or a concurrent identical request's result was
// shared via singleflight).
func (s *Service) SLineGraph(name string, sVal int, cfg core.PipelineConfig) (res *core.PipelineResult, cached bool, err error) {
	return s.project(name, false, sVal, cfg)
}

// SCliqueGraph returns the s-clique graph (the s-line graph of the dual
// hypergraph) of the named dataset, serving from the cache when
// possible.
func (s *Service) SCliqueGraph(name string, sVal int, cfg core.PipelineConfig) (res *core.PipelineResult, cached bool, err error) {
	return s.project(name, true, sVal, cfg)
}

func (s *Service) project(name string, dual bool, sVal int, cfg core.PipelineConfig) (*core.PipelineResult, bool, error) {
	if sVal < 1 {
		return nil, false, fmt.Errorf("serve: s must be >= 1, got %d", sVal)
	}
	h, version, err := s.reg.Get(name)
	if err != nil {
		return nil, false, err
	}
	if dual {
		h = h.Dual()
	}
	k := key(name, version, dual, sVal, cfg)
	if res, ok := s.cache.Get(k); ok {
		return res, true, nil
	}
	v, err, shared := s.sf.Do(k, func() (any, error) {
		res := core.Run(h, sVal, cfg)
		s.cache.Put(k, res)
		return res, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*core.PipelineResult), shared, nil
}

// ensembleSafe reports whether Algorithm 3 produces edge lists
// byte-identical to per-s core.Run calls under cfg: the ensemble counts
// exact overlaps the way Algorithm 2 does, so it can stand in for it —
// but not for Algorithm 1, whose short-circuited weights differ.
func ensembleSafe(cfg core.PipelineConfig) bool {
	return cfg.Core.Algorithm == 0 || cfg.Core.Algorithm == core.AlgoHashmap
}

// Warmup precomputes the s-sweep for the named dataset and seeds the
// cache, so subsequent queries for any swept s are hits. Already-cached
// s values are skipped. With Algorithm 2 configurations (the default)
// the sweep runs as one Algorithm 3 ensemble — a single counting pass —
// and falls back to per-s pipeline runs otherwise. It returns the
// number of results computed and the number of distinct requested s
// values that were already cached.
func (s *Service) Warmup(name string, dual bool, sValues []int, cfg core.PipelineConfig) (computed, alreadyHot int, err error) {
	h, version, err := s.reg.Get(name)
	if err != nil {
		return 0, 0, err
	}
	if dual {
		h = h.Dual()
	}
	missing := make([]int, 0, len(sValues))
	seen := map[int]bool{}
	for _, sVal := range sValues {
		if sVal < 1 {
			return 0, 0, fmt.Errorf("serve: s must be >= 1, got %d", sVal)
		}
		if seen[sVal] {
			continue
		}
		seen[sVal] = true
		if _, ok := s.cache.Get(key(name, version, dual, sVal, cfg)); !ok {
			missing = append(missing, sVal)
		}
	}
	alreadyHot = len(seen) - len(missing)
	if len(missing) == 0 {
		return 0, alreadyHot, nil
	}
	if !ensembleSafe(cfg) {
		for _, sVal := range missing {
			if _, _, err := s.project(name, dual, sVal, cfg); err != nil {
				return 0, alreadyHot, err
			}
		}
		return len(missing), alreadyHot, nil
	}
	for sVal, res := range core.RunEnsemble(h, missing, cfg) {
		s.cache.Put(key(name, version, dual, sVal, cfg), res)
	}
	return len(missing), alreadyHot, nil
}
