// Package serve is the long-running query layer over the s-line graph
// pipeline: a registry of named hypergraph datasets, an LRU cache of
// pipeline results keyed by (dataset, version, orientation, s,
// options-fingerprint), and singleflight deduplication so concurrent
// identical requests run Stages 1-4 once and share one result.
//
// The paper treats s-line graphs as a multi-resolution family — the
// applications repeatedly query the same hypergraph at many s values —
// so the unit of caching is one materialized projection
// (core.PipelineResult), and multi-s batches are first-class requests:
// SLineGraphs/SCliqueGraphs (and Warmup on top of them) collect the
// uncached s values of a batch and run them as one core.RunBatch call,
// letting the planner decide whether a single ensemble counting pass or
// per-s passes serve the batch. Results are immutable by convention:
// every cache reader receives the same pointer, and the s-measures of
// Stage 5 only read the graph.
//
// cmd/hyperlined exposes this package over HTTP/JSON; hyperline.Session
// exposes it to library users.
package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

// Config configures a Service.
type Config struct {
	// CacheEntries is the LRU capacity in cached pipeline results
	// (0 = DefaultCacheEntries).
	CacheEntries int
	// MeasureCacheEntries is the LRU capacity in cached measure
	// values (0 = DefaultMeasureCacheEntries).
	MeasureCacheEntries int

	// MaxInflight bounds concurrently admitted Stage-3 passes
	// (0 = unlimited). Cache hits and measure evaluations are never
	// gated — admission protects the expensive pipeline work only.
	MaxInflight int
	// ShedCostBudget bounds the summed planner-estimated cost of
	// admitted Stage-3 work, in cost units of roughly one millisecond
	// of s-overlap time each (0 = unlimited). When both limits are
	// exceeded-or-unset the service behaves exactly as before this
	// knob existed.
	ShedCostBudget int64
	// MaxQueue bounds how many interactive requests may wait for
	// admission before further ones are shed (0 = a small default).
	// Background work (warmup) never queues.
	MaxQueue int
	// MaxInflightPerDataset bounds concurrently admitted Stage-3
	// passes per dataset (0 = unlimited). A dataset at its quota sheds
	// immediately with the same 429 + Retry-After path, so one hot
	// dataset cannot monopolize the global budget or the queue.
	MaxInflightPerDataset int

	// DeltaPolicy selects what Ingest does to cached artifacts across a
	// delta-derived version bump: DeltaPolicyPatch (the default)
	// migrates and incrementally patches entries where provably sound;
	// DeltaPolicyInvalidate drops everything — the recompute baseline.
	DeltaPolicy DeltaPolicy
}

// Service ties the dataset registry, the result cache, the Stage-5
// measure cache, and request deduplication together. All methods are
// safe for concurrent use.
type Service struct {
	reg    *Registry
	cache  *Cache
	sf     singleflight
	mcache *MeasureCache
	msf    singleflight
	// measureComputes counts actual measure evaluations (cache misses
	// that ran Compute) — the instrumentation the cache tests assert
	// against, surfaced in MeasureCacheStats.
	measureComputes atomic.Int64
	// projectionComputes counts per-s projections that actually ran
	// Stages 1-4 (cache hits and singleflight joins excluded).
	projectionComputes atomic.Int64
	// sfDedups / msfDedups count requests served by joining another
	// caller's in-flight computation (projection / measure flights).
	sfDedups  atomic.Int64
	msfDedups atomic.Int64

	adm     *admission
	metrics *metrics

	// Streaming ingest state: the configured cache-maintenance policy,
	// the per-dataset change feed, and the lifetime ingest counters the
	// /metrics exposition reports.
	deltaPolicy           DeltaPolicy
	feed                  *changeFeed
	ingestsApplied        atomic.Int64
	ingestMigrated        atomic.Int64
	ingestPatched         atomic.Int64
	ingestDropped         atomic.Int64
	ingestMeasureMigrated atomic.Int64
	ingestMeasureDropped  atomic.Int64

	// spill is the shared disk tier under both LRUs; nil until
	// EnableSpill. Both caches address it by their (disjoint) key
	// namespaces.
	spill *spillStore
}

// New returns an empty service.
func New(cfg Config) *Service {
	policy := cfg.DeltaPolicy
	if policy == "" {
		policy = DeltaPolicyPatch
	}
	return &Service{
		reg:         NewRegistry(),
		cache:       NewCache(cfg.CacheEntries),
		mcache:      NewMeasureCache(cfg.MeasureCacheEntries),
		adm:         newAdmission(cfg.ShedCostBudget, cfg.MaxInflight, cfg.MaxQueue, cfg.MaxInflightPerDataset),
		metrics:     newMetrics(),
		deltaPolicy: policy,
		feed:        newChangeFeed(),
	}
}

// EnableSpill attaches a disk tier under both caches: entries evicted
// from memory serialize into dir (bounded to budgetBytes; <= 0 =
// unbounded), and memory misses probe dir before recomputing. The
// directory is scanned on attach, so entries spilled by a previous
// process — or flushed by SaveState — serve as disk hits immediately.
// Must be called before the service takes traffic.
func (s *Service) EnableSpill(dir string, budgetBytes int64) error {
	store, err := newSpillStore(dir, budgetBytes)
	if err != nil {
		return err
	}
	s.spill = store
	s.cache.setSpill(store, encodeProjection, decodeProjection)
	s.mcache.setSpill(store, encodeMeasureEntry, decodeMeasureEntry)
	return nil
}

// SpillStats snapshots the disk tier; zero-valued when spill is not
// enabled.
func (s *Service) SpillStats() SpillStats {
	if s.spill == nil {
		return SpillStats{}
	}
	return s.spill.Stats()
}

// AdmissionStats snapshots the admission controller: configured limits,
// live occupancy, and lifetime admitted/shed/queued counters.
func (s *Service) AdmissionStats() AdmissionStats { return s.adm.Stats() }

// Add registers h under name, replacing any previous dataset with that
// name (previously cached results for the old version become
// unreachable and age out of the LRU).
func (s *Service) Add(name string, h *hg.Hypergraph) { s.reg.Add(name, h) }

// Load reads a hypergraph from path (format by extension, as
// hgio.LoadFile) and registers it under name.
func (s *Service) Load(name, path string) error {
	_, err := s.reg.Load(name, path)
	return err
}

// Remove drops the named dataset, reporting whether it existed.
func (s *Service) Remove(name string) bool { return s.reg.Remove(name) }

// Datasets lists the registered datasets sorted by name.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// Stats returns Table IV-style statistics for the named dataset
// (computed once at registration).
func (s *Service) Stats(name string) (hg.Stats, error) {
	return s.reg.Stats(name)
}

// Hypergraph returns the named hypergraph (shared, immutable).
func (s *Service) Hypergraph(name string) (*hg.Hypergraph, error) {
	h, _, err := s.reg.Get(name)
	return h, err
}

// Calibration snapshots the named dataset's observed Stage-3 cost
// tables (both orientations): what the self-calibrating planner has
// measured for this dataset version so far.
func (s *Service) Calibration(name string) (CalibrationInfo, error) {
	return s.reg.Calibration(name)
}

// resolveAt resolves cfg's planner-driven auto knobs (hg.RelabelAuto,
// core.ToplexAuto) against a pinned dataset snapshot and attaches the
// version's cached statistics and calibration table, so every cache key
// derived afterwards names the concrete configuration the pipeline will
// actually run — a planner-chosen configuration shares cache entries
// with the pinned configuration it resolves to. When the snapshot is no
// longer the registry's current version (a concurrent replacement), the
// stats are recomputed from the snapshot and calibration is skipped:
// the new version's table says nothing about this hypergraph.
// Idempotent — both Query and projectBatchAt call it, whichever comes
// first does the work.
func (s *Service) resolveAt(h *hg.Hypergraph, version uint64, name string, dual bool, sValues []int, cfg core.PipelineConfig) core.PipelineConfig {
	if d, ok := s.reg.at(name, version); ok {
		st := d.statsFor(dual)
		cfg.Stats = &st
		cfg.Costs = d.costsFor(dual)
	}
	work := h
	if dual {
		work = h.Dual()
	}
	return core.ResolveConfig(work, sValues, cfg)
}

// CacheStats snapshots the result cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// key builds the cache key for one projection request. The dataset
// version makes replaced datasets miss; the fingerprint folds in every
// output-relevant option, so requests differing only in execution knobs
// (workers, grain, partition, counter store) share an entry.
func key(name string, version uint64, dual bool, sVal int, cfg core.PipelineConfig) string {
	orient := "line"
	if dual {
		orient = "clique"
	}
	return fmt.Sprintf("%s@%d/%s/s=%d/%s", name, version, orient, sVal, cfg.Fingerprint())
}

// SLineGraph returns the s-line graph of the named dataset, serving
// from the cache when possible. cached reports whether Stages 1-4 were
// skipped (a cache hit, or a concurrent identical request's result was
// shared via singleflight). A cancelled ctx aborts cooperatively with
// ctx.Err() unless another caller still waits on the same computation,
// in which case the computation finishes (and is cached) without this
// caller.
func (s *Service) SLineGraph(ctx context.Context, name string, sVal int, cfg core.PipelineConfig) (res *core.PipelineResult, cached bool, err error) {
	return s.project(ctx, name, false, sVal, cfg)
}

// SCliqueGraph returns the s-clique graph (the s-line graph of the dual
// hypergraph) of the named dataset, serving from the cache when
// possible.
func (s *Service) SCliqueGraph(ctx context.Context, name string, sVal int, cfg core.PipelineConfig) (res *core.PipelineResult, cached bool, err error) {
	return s.project(ctx, name, true, sVal, cfg)
}

// project serves a single-s request as a batch of one, sharing the
// batch path's cache probes, singleflight, and cancellation semantics.
func (s *Service) project(ctx context.Context, name string, dual bool, sVal int, cfg core.PipelineConfig) (*core.PipelineResult, bool, error) {
	results, cached, err := s.projectBatch(ctx, name, dual, []int{sVal}, cfg, PriorityInteractive)
	if err != nil {
		return nil, false, err
	}
	return results[sVal], cached[sVal], nil
}

// batchFlight is a batch flight outcome: per-s results plus which of
// them the flight found already cached.
type batchFlight struct {
	results map[int]*core.PipelineResult
	hits    map[int]bool
}

// SLineGraphs returns the s-line graphs of the named dataset for every
// distinct s in sValues as one batched request: cached projections are
// served as-is and the remaining s values run through the planner as a
// single core.RunBatch pass. cached[s] reports whether Stages 1-4 were
// skipped for that s (a cache hit, or a concurrent identical batch's
// result was shared via singleflight).
func (s *Service) SLineGraphs(ctx context.Context, name string, sValues []int, cfg core.PipelineConfig) (results map[int]*core.PipelineResult, cached map[int]bool, err error) {
	return s.projectBatch(ctx, name, false, sValues, cfg, PriorityInteractive)
}

// SCliqueGraphs returns the s-clique graphs (s-line graphs of the dual
// hypergraph) of the named dataset for every distinct s in sValues,
// batched and cached like SLineGraphs.
func (s *Service) SCliqueGraphs(ctx context.Context, name string, sValues []int, cfg core.PipelineConfig) (results map[int]*core.PipelineResult, cached map[int]bool, err error) {
	return s.projectBatch(ctx, name, true, sValues, cfg, PriorityInteractive)
}

func (s *Service) projectBatch(ctx context.Context, name string, dual bool, sValues []int, cfg core.PipelineConfig, pri Priority) (map[int]*core.PipelineResult, map[int]bool, error) {
	h, version, err := s.reg.Get(name)
	if err != nil {
		return nil, nil, err
	}
	return s.projectBatchAt(ctx, h, version, name, dual, sValues, cfg, pri)
}

// projectBatchAt is projectBatch against an explicitly pinned dataset
// snapshot (hypergraph + version): every cache key it derives refers to
// that version, so callers that already resolved the registry (the
// measure engine, which must not mix versions within one sweep) stay
// consistent even if the dataset is concurrently replaced.
func (s *Service) projectBatchAt(ctx context.Context, h *hg.Hypergraph, version uint64, name string, dual bool, sValues []int, cfg core.PipelineConfig, pri Priority) (map[int]*core.PipelineResult, map[int]bool, error) {
	if len(sValues) == 0 {
		return nil, nil, fmt.Errorf("serve: at least one s value is required")
	}
	for _, sVal := range sValues {
		if sVal < 1 {
			return nil, nil, fmt.Errorf("serve: s must be >= 1, got %d", sVal)
		}
	}
	// Resolve auto knobs before any key is derived: the cache must be
	// probed under the concrete configuration the pipeline runs.
	cfg = s.resolveAt(h, version, name, dual, sValues, cfg)
	if dual {
		h = h.Dual()
	}
	distinct := core.DistinctS(sValues)
	results := make(map[int]*core.PipelineResult, len(distinct))
	cached := make(map[int]bool, len(distinct))
	missing := make([]int, 0, len(distinct))
	for _, sVal := range distinct {
		if res, ok := s.cache.Get(key(name, version, dual, sVal, cfg)); ok {
			results[sVal] = res
			cached[sVal] = true
		} else {
			missing = append(missing, sVal)
		}
	}
	if len(missing) == 0 {
		return results, cached, nil
	}
	// One planner-driven pass fills every missing s. Singleflight is
	// keyed on the batch shape, so concurrent identical batches share
	// one computation; each per-s entry still lands in the cache for
	// single-s requests to hit. The flight runs under its own detached
	// context (fctx): this caller cancelling only aborts the pipeline
	// if no other caller still waits on the same flight.
	bk := fmt.Sprintf("batch/%v%s", missing, key(name, version, dual, 0, cfg))
	v, err, shared := s.sf.Do(ctx, bk, func(fctx context.Context) (any, error) {
		// Re-probe under the flight: an overlapping batch may have
		// cached some of these s values between our misses and this
		// call. Hits are recorded so the cached flags stay truthful.
		out := batchFlight{
			results: make(map[int]*core.PipelineResult, len(missing)),
			hits:    make(map[int]bool, len(missing)),
		}
		compute := make([]int, 0, len(missing))
		for _, sVal := range missing {
			if res, ok := s.cache.Get(key(name, version, dual, sVal, cfg)); ok {
				out.results[sVal] = res
				out.hits[sVal] = true
			} else {
				compute = append(compute, sVal)
			}
		}
		if len(compute) > 0 {
			// Admission gates the expensive part only: the flight holds
			// a semaphore slot weighted by the planner-estimated cost of
			// this pass for exactly as long as Stages 1-4 run. Saturation
			// sheds (or, for interactive work, queues) here — after the
			// cache re-probe, so hits are never shed. The flight admits
			// under the priority of the caller that started it; joiners
			// share its fate.
			release, aerr := s.adm.Acquire(fctx, pri, name, estimateCost(cfg, compute))
			if aerr != nil {
				return nil, aerr
			}
			computed, err := func() (map[int]*core.PipelineResult, error) {
				defer release()
				return core.RunBatch(fctx, h, compute, cfg)
			}()
			if err != nil {
				return nil, err
			}
			s.projectionComputes.Add(int64(len(computed)))
			if res := computed[compute[0]]; res != nil {
				s.metrics.observeStages(res.Timings)
			}
			for sVal, res := range computed {
				s.cache.Put(key(name, version, dual, sVal, cfg), res)
				out.results[sVal] = res
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if shared {
		s.sfDedups.Add(1)
	}
	bf := v.(batchFlight)
	for sVal, res := range bf.results {
		results[sVal] = res
		cached[sVal] = shared || bf.hits[sVal]
	}
	return results, cached, nil
}

// Warmup precomputes the s-sweep for the named dataset and seeds the
// cache, so subsequent queries for any swept s are hits. Already-cached
// s values are skipped; the rest run as one batched planner-driven pass
// (a single Algorithm 3 ensemble count when its memory is affordable,
// per-s passes otherwise — pinned configurations keep their strategy).
// It returns the number of results computed and the number of distinct
// requested s values that were already cached.
//
// Warmup work is admitted at background priority: when the server is
// saturated it is shed immediately (ErrSaturated) rather than queued,
// so cache seeding can never starve interactive queries.
func (s *Service) Warmup(ctx context.Context, name string, dual bool, sValues []int, cfg core.PipelineConfig) (computed, alreadyHot int, err error) {
	_, cached, err := s.projectBatch(ctx, name, dual, sValues, cfg, PriorityBackground)
	if err != nil {
		return 0, 0, err
	}
	for _, hit := range cached {
		if hit {
			alreadyHot++
		} else {
			computed++
		}
	}
	return computed, alreadyHot, nil
}
