package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hyperline/internal/core"
)

// acquireOrTimeout runs Acquire under a watchdog so a bug cannot hang
// the whole test binary.
func acquireOrTimeout(t *testing.T, a *admission, pri Priority, cost int64) func() {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	release, err := a.Acquire(ctx, pri, "ds", cost)
	if err != nil {
		t.Fatalf("Acquire(%v, %d): %v", pri, cost, err)
	}
	return release
}

func TestAdmissionUnlimitedAdmitsEverything(t *testing.T) {
	a := newAdmission(0, 0, 0, 0)
	var releases []func()
	for i := 0; i < 100; i++ {
		pri := PriorityInteractive
		if i%2 == 1 {
			pri = PriorityBackground
		}
		releases = append(releases, acquireOrTimeout(t, a, pri, int64(i)))
	}
	st := a.Stats()
	if st.AdmittedInteractive != 50 || st.AdmittedBackground != 50 {
		t.Fatalf("admitted %d/%d, want 50/50", st.AdmittedInteractive, st.AdmittedBackground)
	}
	if st.ShedInteractive+st.ShedBackground != 0 {
		t.Fatalf("unlimited controller shed work: %+v", st)
	}
	for _, r := range releases {
		r()
	}
	if st := a.Stats(); st.InflightCost != 0 || st.InflightRequests != 0 {
		t.Fatalf("inflight not drained: %+v", st)
	}
}

func TestAdmissionQueuesInteractiveFIFO(t *testing.T) {
	a := newAdmission(0, 1, 8, 0)
	r1 := acquireOrTimeout(t, a, PriorityInteractive, 1)

	// Two waiters queue behind the occupant; grants must come back in
	// arrival order.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background(), PriorityInteractive, "ds", 1)
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			release()
		}()
	}
	start(1)
	waitForQueue(t, a, 1)
	start(2)
	waitForQueue(t, a, 2)

	r1()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("grant order %d,%d, want 1,2", first, second)
	}
	st := a.Stats()
	if st.Queued != 2 {
		t.Fatalf("queued counter %d, want 2", st.Queued)
	}
	if st.InflightRequests != 0 || st.QueueLength != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

// waitForQueue spins until the controller reports n queued waiters.
func waitForQueue(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().QueueLength != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d: %+v", n, a.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestAdmissionShedsBackgroundImmediately(t *testing.T) {
	a := newAdmission(0, 1, 8, 0)
	r := acquireOrTimeout(t, a, PriorityInteractive, 1)
	defer r()

	_, err := a.Acquire(context.Background(), PriorityBackground, "ds", 1)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("background under saturation: err=%v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) || sat.RetryAfter < time.Second {
		t.Fatalf("want *SaturatedError with RetryAfter >= 1s, got %#v", err)
	}
	if st := a.Stats(); st.ShedBackground != 1 {
		t.Fatalf("shed counters %+v, want ShedBackground=1", st)
	}
}

func TestAdmissionBackgroundNeverOvertakesWaiters(t *testing.T) {
	// Budget has room for the background request, but an interactive
	// waiter is queued (blocked on the request bound): background must
	// still be shed, not slipped in ahead.
	a := newAdmission(100, 1, 8, 0)
	r := acquireOrTimeout(t, a, PriorityInteractive, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := a.Acquire(context.Background(), PriorityInteractive, "ds", 1)
		if err != nil {
			t.Errorf("queued waiter: %v", err)
			return
		}
		release()
	}()
	waitForQueue(t, a, 1)

	if _, err := a.Acquire(context.Background(), PriorityBackground, "ds", 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("background with queued interactive waiter: err=%v, want ErrSaturated", err)
	}
	r()
	wg.Wait()
}

func TestAdmissionQueueOverflowSheds(t *testing.T) {
	a := newAdmission(0, 1, 1, 0)
	r := acquireOrTimeout(t, a, PriorityInteractive, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if release, err := a.Acquire(ctx, PriorityInteractive, "ds", 1); err == nil {
			release()
		}
	}()
	waitForQueue(t, a, 1)

	if _, err := a.Acquire(context.Background(), PriorityInteractive, "ds", 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("queue overflow: err=%v, want ErrSaturated", err)
	}
	if st := a.Stats(); st.ShedInteractive != 1 {
		t.Fatalf("shed counters %+v, want ShedInteractive=1", st)
	}
	r()
	wg.Wait()
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(0, 1, 8, 0)
	r := acquireOrTimeout(t, a, PriorityInteractive, 1)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, PriorityInteractive, "ds", 1)
		errc <- err
	}()
	waitForQueue(t, a, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err=%v, want context.Canceled", err)
	}
	st := a.Stats()
	if st.QueueCancelled != 1 || st.QueueLength != 0 {
		t.Fatalf("after cancel: %+v, want QueueCancelled=1, empty queue", st)
	}

	// The slot must still be grantable after the abandoned wait.
	r()
	acquireOrTimeout(t, a, PriorityInteractive, 1)()
}

func TestAdmissionCostBudgetAndClamp(t *testing.T) {
	a := newAdmission(10, 0, 8, 0)

	// An oversized request clamps to the whole budget rather than being
	// forever unadmittable.
	r := acquireOrTimeout(t, a, PriorityInteractive, 1_000_000)
	if st := a.Stats(); st.InflightCost != 10 {
		t.Fatalf("clamped inflight cost %d, want 10", st.InflightCost)
	}
	// Nothing else fits while the budget is occupied.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, PriorityInteractive, "ds", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget-full acquire: err=%v, want deadline exceeded", err)
	}
	r()

	// Partial occupancy: 6+4 fits, 6+5 queues.
	r6 := acquireOrTimeout(t, a, PriorityInteractive, 6)
	r4 := acquireOrTimeout(t, a, PriorityInteractive, 4)
	if _, err := a.Acquire(context.Background(), PriorityBackground, "ds", 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("background over budget: err=%v, want ErrSaturated", err)
	}
	r6()
	r4()
	if st := a.Stats(); st.InflightCost != 0 {
		t.Fatalf("cost not drained: %+v", st)
	}
}

// TestAdmissionConcurrentChurn hammers one controller from many
// goroutines with mixed priorities, random costs, and random
// cancellation, then checks the books balance. Run under -race this is
// the memory-safety test for the queue manipulation.
func TestAdmissionConcurrentChurn(t *testing.T) {
	a := newAdmission(32, 4, 16, 0)
	const workers = 16
	const perWorker = 200

	var wg sync.WaitGroup
	var attempts, granted, shed, cancelled int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var g, s, c int64
			for i := 0; i < perWorker; i++ {
				pri := PriorityInteractive
				if rng.Intn(4) == 0 {
					pri = PriorityBackground
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
				release, err := a.Acquire(ctx, pri, "ds", int64(rng.Intn(12)))
				switch {
				case err == nil:
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					release()
					g++
				case errors.Is(err, ErrSaturated):
					s++
				case errors.Is(err, context.DeadlineExceeded):
					c++
				default:
					t.Errorf("unexpected error %v", err)
				}
				cancel()
			}
			mu.Lock()
			attempts += perWorker
			granted += g
			shed += s
			cancelled += c
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()

	st := a.Stats()
	if st.InflightCost != 0 || st.InflightRequests != 0 || st.QueueLength != 0 {
		t.Fatalf("controller not drained after churn: %+v", st)
	}
	if got := granted + shed + cancelled; got != attempts {
		t.Fatalf("outcomes %d (granted %d + shed %d + cancelled %d) != attempts %d",
			got, granted, shed, cancelled, attempts)
	}
	if stGranted := st.AdmittedInteractive + st.AdmittedBackground; stGranted != granted {
		t.Fatalf("controller admitted %d, callers saw %d grants", stGranted, granted)
	}
	if stShed := st.ShedInteractive + st.ShedBackground; stShed != shed {
		t.Fatalf("controller shed %d, callers saw %d sheds", stShed, shed)
	}
	if st.QueueCancelled != cancelled {
		t.Fatalf("controller cancelled %d, callers saw %d", st.QueueCancelled, cancelled)
	}
}

func TestAdmissionPerDatasetQuotaShedsImmediately(t *testing.T) {
	a := newAdmission(0, 0, 0, 2)
	r1 := acquireOrTimeout(t, a, PriorityInteractive, 1)
	r2 := acquireOrTimeout(t, a, PriorityInteractive, 1)

	// "ds" is at quota: even interactive work sheds immediately instead
	// of queueing, with the usual retryable saturation error.
	_, err := a.Acquire(context.Background(), PriorityInteractive, "ds", 1)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("dataset at quota: err=%v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) || sat.RetryAfter < time.Second {
		t.Fatalf("want *SaturatedError with RetryAfter >= 1s, got %#v", err)
	}
	if st := a.Stats(); st.ShedPerDataset != 1 || st.ShedInteractive != 1 {
		t.Fatalf("shed counters %+v, want ShedPerDataset=1 ShedInteractive=1", st)
	}

	// Other datasets are unaffected by one dataset's saturation.
	rOther, err := a.Acquire(context.Background(), PriorityInteractive, "other", 1)
	if err != nil {
		t.Fatalf("other dataset under quota: %v", err)
	}
	rOther()

	// Releasing a slot restores the dataset's quota.
	r1()
	r3, err := a.Acquire(context.Background(), PriorityInteractive, "ds", 1)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
	if st := a.Stats(); st.InflightRequests != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

func TestAdmissionQuotaDoesNotHeadBlockQueue(t *testing.T) {
	// Two global slots, one per dataset. Occupy both slots with "a" and
	// "c", then queue [b, b, d]. The first release grants the first "b";
	// the second release must skip the now-at-quota second "b" and grant
	// "d" behind it — a saturated dataset cannot head-block the queue.
	a := newAdmission(0, 2, 8, 1)
	releaseA, err := a.Acquire(context.Background(), PriorityInteractive, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	releaseC, err := a.Acquire(context.Background(), PriorityInteractive, "c", 1)
	if err != nil {
		t.Fatal(err)
	}

	grantOrder := make(chan string, 3)
	releases := make(chan func(), 3)
	enqueue := func(ds string) {
		go func() {
			release, err := a.Acquire(context.Background(), PriorityInteractive, ds, 1)
			if err != nil {
				t.Errorf("waiter %s: %v", ds, err)
				return
			}
			grantOrder <- ds
			releases <- release
		}()
	}
	recv := func(want string) {
		t.Helper()
		select {
		case ds := <-grantOrder:
			if ds != want {
				t.Fatalf("granted %q, want %q", ds, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no grant within 5s waiting for %q", want)
		}
	}
	enqueue("b")
	waitForQueue(t, a, 1)
	enqueue("b")
	waitForQueue(t, a, 2)
	enqueue("d")
	waitForQueue(t, a, 3)

	releaseA()
	recv("b") // FIFO head
	releaseC()
	recv("d") // second "b" is quota-blocked and skipped, not head-blocking
	if st := a.Stats(); st.QueueLength != 1 {
		t.Fatalf("queue length %d, want 1 (the quota-blocked waiter)", st.QueueLength)
	}

	// Releasing the first "b" finally grants the skipped waiter.
	(<-releases)()
	recv("b")
	(<-releases)()
	(<-releases)()
	if st := a.Stats(); st.InflightRequests != 0 || st.QueueLength != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

func TestEstimateCostFloorsAtOne(t *testing.T) {
	// No stats, no calibration: the estimate must still be a positive
	// cost so admission accounting never divides by or admits zero.
	if got := estimateCost(core.PipelineConfig{}, nil); got != 1 {
		t.Fatalf("estimateCost(empty) = %d, want 1", got)
	}
	if got := estimateCost(core.PipelineConfig{}, []int{2}); got < 1 {
		t.Fatalf("estimateCost = %d, want >= 1", got)
	}
	// More s values never cost less.
	one := estimateCost(core.PipelineConfig{}, []int{2})
	many := estimateCost(core.PipelineConfig{}, []int{1, 2, 3, 4})
	if many < one {
		t.Fatalf("batch of 4 costs %d < single %d", many, one)
	}
}
