package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hyperline/internal/delta"
)

// ingestRequestJSON is the POST /v2/ingest body: a dataset name, an
// optional base version pin (0 or omitted = whatever is current), and
// the delta itself in the internal/delta wire shape.
type ingestRequestJSON struct {
	Dataset     string     `json:"dataset"`
	BaseVersion uint64     `json:"base_version,omitempty"`
	Inserts     [][]uint32 `json:"inserts,omitempty"`
	Deletes     []uint32   `json:"deletes,omitempty"`
}

// ingestResponseJSON is IngestResult plus wall time.
type ingestResponseJSON struct {
	IngestResult
	ElapsedMS float64 `json:"elapsed_ms"`
}

// maxIngestBytes caps POST /v2/ingest bodies; delta.MaxBatch already
// bounds the operation count, this bounds raw decode memory.
const maxIngestBytes = 1 << 30

// handleIngest serves POST /v2/ingest: decode, apply, walk the caches,
// answer with the version transition and the cache outcomes. Version
// conflicts (a concurrent writer, or a stale base_version pin) are 409:
// the client re-reads the dataset and rebuilds its delta.
func handleIngest(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req ingestRequestJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad /v2/ingest body: %w", err))
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: \"dataset\" is required"))
		return
	}
	d := &delta.Delta{Inserts: req.Inserts, Deletes: req.Deletes}
	start := time.Now()
	res, err := svc.Ingest(r.Context(), req.Dataset, d, req.BaseVersion)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponseJSON{
		IngestResult: *res,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// defaultChangesTimeout bounds a long-poll with no explicit timeout_ms;
// maxChangesTimeout caps client-supplied ones so an idle poll can never
// pin a connection indefinitely.
const (
	defaultChangesTimeout = 30 * time.Second
	maxChangesTimeout     = 2 * time.Minute
)

// handleChanges serves GET /v2/datasets/{name}/changes?since=V: the
// long-poll change feed. The response carries the dataset's current
// version and every retained event past since; with nothing to report
// it blocks until an ingest lands or the timeout expires (an empty
// events list with the current version — poll again from there).
func handleChanges(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	since, err := intParam(r, "since", 0)
	if err != nil || since < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: \"since\" must be a version number"))
		return
	}
	timeoutMS, err := intParam(r, "timeout_ms", 0)
	if err != nil || timeoutMS < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad timeout_ms"))
		return
	}
	timeout := defaultChangesTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > maxChangesTimeout {
		timeout = maxChangesTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	events, version, err := svc.Changes(ctx, name, uint64(since))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if events == nil {
		events = []ChangeEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": name,
		"version": version,
		"events":  events,
	})
}
