package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"hyperline/internal/core"
)

// TestBatchFillsPerSCache: one batched request computes every missing s
// in a single planner pass and seeds the per-s cache, so later single-s
// queries and repeated batches hit.
func TestBatchFillsPerSCache(t *testing.T) {
	h := randomHypergraph(21, 250, 180, 5)
	svc := New(Config{})
	svc.Add("rand", h)
	cfg := core.PipelineConfig{}
	sweep := []int{1, 2, 3, 4}

	results, cached, err := svc.SLineGraphs(context.Background(), "rand", sweep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sweep) {
		t.Fatalf("batch returned %d results, want %d", len(results), len(sweep))
	}
	for _, sVal := range sweep {
		if cached[sVal] {
			t.Fatalf("s=%d: cold batch must not report cached", sVal)
		}
		direct, _ := core.Run(context.Background(), h, sVal, cfg)
		if !reflect.DeepEqual(results[sVal].Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: batch edges differ from direct run", sVal)
		}
		// Single-s queries must hit the entries the batch seeded.
		res, hit, err := svc.SLineGraph(context.Background(), "rand", sVal, cfg)
		if err != nil || !hit {
			t.Fatalf("s=%d: single query after batch: hit=%v err=%v", sVal, hit, err)
		}
		if res != results[sVal] {
			t.Fatalf("s=%d: single query returned a different pointer than the batch", sVal)
		}
	}

	// A partially-overlapping batch only computes the new s values.
	results2, cached2, err := svc.SLineGraphs(context.Background(), "rand", []int{2, 3, 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cached2[2] || !cached2[3] || cached2[5] {
		t.Fatalf("overlap batch cached flags: %v", cached2)
	}
	if results2[2] != results[2] {
		t.Fatal("overlapping batch must reuse the cached pointer")
	}
}

// TestBatchDualOrientation: SCliqueGraphs batches against the dual and
// matches direct dual runs.
func TestBatchDualOrientation(t *testing.T) {
	h := randomHypergraph(23, 150, 120, 5)
	svc := New(Config{})
	svc.Add("rand", h)
	sweep := []int{1, 2}
	results, _, err := svc.SCliqueGraphs(context.Background(), "rand", sweep, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sVal := range sweep {
		direct, _ := core.Run(context.Background(), h.Dual(), sVal, core.PipelineConfig{})
		if !reflect.DeepEqual(results[sVal].Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: batched clique graph differs from direct dual run", sVal)
		}
	}
}

// TestBatchRejectsBadInput covers the validation surface.
func TestBatchRejectsBadInput(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	if _, _, err := svc.SLineGraphs(context.Background(), "h", nil, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for empty batch")
	}
	if _, _, err := svc.SLineGraphs(context.Background(), "h", []int{2, 0}, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for s=0 in batch")
	}
	if _, _, err := svc.SLineGraphs(context.Background(), "nope", []int{2}, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// TestOutputEquivalentConfigsShareEntries is the fingerprint
// canonicalization acceptance test at the service level: requests
// pinning any exact-weight strategy — Algorithm 2, the ensemble,
// SpGEMM, or Algorithm 1 in exact mode — share one cache entry with the
// planner default, so SpGEMM results are cacheable (and servable) under
// the same fingerprint scheme.
func TestOutputEquivalentConfigsShareEntries(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	base, _, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent := []core.PipelineConfig{
		{Core: core.Config{Algorithm: core.AlgoHashmap}},
		{Core: core.Config{Algorithm: core.AlgoEnsemble}},
		{Core: core.Config{Algorithm: core.AlgoSpGEMM}},
		{Core: core.Config{Algorithm: core.AlgoSetIntersection, DisableShortCircuit: true}},
	}
	for _, cfg := range equivalent {
		res, hit, err := svc.SLineGraph(context.Background(), "h", 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !hit || res != base {
			t.Fatalf("algorithm %s: output-equivalent request must share the cache entry (hit=%v)",
				cfg.Core.Algorithm, hit)
		}
	}
	// Short-circuited Algorithm 1 is a different output class and must
	// not be served the exact-class entry.
	sc, hit, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{
		Core: core.Config{Algorithm: core.AlgoSetIntersection},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || sc == base {
		t.Fatal("short-circuit Algorithm 1 must compute its own entry")
	}
	if st := svc.CacheStats(); st.Entries != 2 {
		t.Fatalf("want exactly 2 cache entries (exact + shortcircuit), got %d", st.Entries)
	}
}

// TestSpGEMMWarmupSeedsDefaultQueries: a warmup pinned to SpGEMM fills
// the exact-class keys, so default (planner) queries hit it.
func TestSpGEMMWarmupSeedsDefaultQueries(t *testing.T) {
	h := randomHypergraph(29, 120, 100, 5)
	svc := New(Config{})
	svc.Add("rand", h)
	spgemmCfg := core.PipelineConfig{Core: core.Config{Algorithm: core.AlgoSpGEMM}}
	if _, _, err := svc.Warmup(context.Background(), "rand", false, []int{1, 2, 3}, spgemmCfg); err != nil {
		t.Fatal(err)
	}
	for _, sVal := range []int{1, 2, 3} {
		res, hit, err := svc.SLineGraph(context.Background(), "rand", sVal, core.PipelineConfig{})
		if err != nil || !hit {
			t.Fatalf("s=%d: default query after SpGEMM warmup: hit=%v err=%v", sVal, hit, err)
		}
		direct, _ := core.Run(context.Background(), h, sVal, core.PipelineConfig{})
		if !reflect.DeepEqual(res.Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: SpGEMM-warmed edges differ from direct run", sVal)
		}
	}
}

// TestConcurrentIdenticalBatches: concurrent identical batch requests
// share one computation via singleflight and agree on result pointers.
// Run under -race in CI.
func TestConcurrentIdenticalBatches(t *testing.T) {
	h := randomHypergraph(37, 300, 220, 6)
	svc := New(Config{})
	svc.Add("rand", h)
	sweep := []int{1, 2, 3}

	const n = 16
	out := make([]map[int]*core.PipelineResult, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results, _, err := svc.SLineGraphs(context.Background(), "rand", sweep, core.PipelineConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = results
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < n; i++ {
		for _, sVal := range sweep {
			if out[i][sVal] != out[0][sVal] {
				t.Fatalf("goroutine %d s=%d: different result pointer", i, sVal)
			}
		}
	}
	if st := svc.CacheStats(); st.Entries != len(sweep) {
		t.Fatalf("want %d cache entries, got %d", len(sweep), st.Entries)
	}
}
