package serve

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/hgio"
)

func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
}

// randomHypergraph builds a reproducible hypergraph big enough that a
// pipeline run takes real work (so concurrent requests overlap).
func randomHypergraph(seed int64, edges, vertices, meanSize int) *hg.Hypergraph {
	r := rand.New(rand.NewSource(seed))
	es := make([][]uint32, edges)
	for e := range es {
		size := 1 + r.Intn(2*meanSize)
		seen := map[uint32]bool{}
		for k := 0; k < size; k++ {
			seen[uint32(r.Intn(vertices))] = true
		}
		for v := range seen {
			es[e] = append(es[e], v)
		}
	}
	return hg.FromEdgeSlices(es, vertices)
}

func TestUnknownDataset(t *testing.T) {
	svc := New(Config{})
	if _, _, err := svc.SLineGraph(context.Background(), "nope", 2, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for unknown dataset")
	}
	if _, err := svc.Stats("nope"); err == nil {
		t.Fatal("want error for unknown dataset stats")
	}
}

func TestRejectsBadS(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	if _, _, err := svc.SLineGraph(context.Background(), "h", 0, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for s=0")
	}
	if _, _, err := svc.Warmup(context.Background(), "h", false, []int{2, 0}, core.PipelineConfig{}); err == nil {
		t.Fatal("want error for warmup with s=0")
	}
}

func TestRepeatedQueryHitsCache(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	cfg := core.PipelineConfig{}

	r1, cached, err := svc.SLineGraph(context.Background(), "h", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request must be a miss")
	}
	r2, cached, err := svc.SLineGraph(context.Background(), "h", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second request must be a hit")
	}
	if r1 != r2 {
		t.Fatal("cache hit must return the identical result pointer")
	}
	direct, _ := core.Run(context.Background(), paperExample(), 2, cfg)
	if !reflect.DeepEqual(r2.Graph.Edges(), direct.Graph.Edges()) {
		t.Fatal("cached edges differ from a direct pipeline run")
	}
	if !reflect.DeepEqual(r2.HyperedgeIDs, direct.HyperedgeIDs) {
		t.Fatal("cached hyperedge IDs differ from a direct pipeline run")
	}
}

func TestExecutionKnobsShareCacheEntry(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	r1, _, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Same request with different worker count / store: same entry.
	r2, cached, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{
		Core: core.Config{Workers: 3, Store: core.TLSHash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || r1 != r2 {
		t.Fatal("requests differing only in execution knobs must share a cache entry")
	}
}

// TestConcurrentIdenticalRequests is the headline concurrency test: N
// goroutines requesting the same (dataset, s) must all receive the
// pointer-identical cached result, whose edges are byte-identical to a
// direct SLineGraph pipeline call. Run under -race in CI.
func TestConcurrentIdenticalRequests(t *testing.T) {
	h := randomHypergraph(7, 400, 300, 6)
	svc := New(Config{})
	svc.Add("rand", h)
	cfg := core.PipelineConfig{}

	const n = 32
	results := make([]*core.PipelineResult, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			res, _, err := svc.SLineGraph(context.Background(), "rand", 2, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different result pointer", i)
		}
	}
	direct, _ := core.Run(context.Background(), h, 2, cfg)
	if !reflect.DeepEqual(results[0].Graph.Edges(), direct.Graph.Edges()) {
		t.Fatal("shared result edges differ from a direct pipeline run")
	}
	if st := svc.CacheStats(); st.Entries != 1 {
		t.Fatalf("want exactly 1 cache entry, got %d", st.Entries)
	}
}

// TestConcurrentMixedRequests exercises the cache and singleflight
// under a mixed read/compute workload across s values and orientations.
func TestConcurrentMixedRequests(t *testing.T) {
	h := randomHypergraph(11, 300, 200, 5)
	svc := New(Config{CacheEntries: 8})
	svc.Add("rand", h)
	cfg := core.PipelineConfig{}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sVal := 1 + (g+i)%4
				var err error
				if g%2 == 0 {
					_, _, err = svc.SLineGraph(context.Background(), "rand", sVal, cfg)
				} else {
					_, _, err = svc.SCliqueGraph(context.Background(), "rand", sVal, cfg)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Every distinct projection must equal its direct computation.
	for sVal := 1; sVal <= 4; sVal++ {
		res, _, err := svc.SLineGraph(context.Background(), "rand", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := core.Run(context.Background(), h, sVal, cfg)
		if !reflect.DeepEqual(res.Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: cached line graph differs from direct run", sVal)
		}
		dres, _, err := svc.SCliqueGraph(context.Background(), "rand", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ddirect, _ := core.Run(context.Background(), h.Dual(), sVal, cfg)
		if !reflect.DeepEqual(dres.Graph.Edges(), ddirect.Graph.Edges()) {
			t.Fatalf("s=%d: cached clique graph differs from direct dual run", sVal)
		}
	}
}

func TestWarmupSeedsCacheIdenticalToDirect(t *testing.T) {
	h := randomHypergraph(3, 200, 150, 5)
	svc := New(Config{})
	svc.Add("rand", h)
	cfg := core.PipelineConfig{}

	sweep := []int{1, 2, 3, 4}
	computed, hot, err := svc.Warmup(context.Background(), "rand", false, sweep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if computed != len(sweep) || hot != 0 {
		t.Fatalf("warmup computed %d results (hot %d), want %d, 0", computed, hot, len(sweep))
	}
	for _, sVal := range sweep {
		res, cached, err := svc.SLineGraph(context.Background(), "rand", sVal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("s=%d: query after warmup must be a cache hit", sVal)
		}
		direct, _ := core.Run(context.Background(), h, sVal, cfg)
		if !reflect.DeepEqual(res.Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: warmed ensemble edges differ from direct Algorithm 2 run", sVal)
		}
		if !reflect.DeepEqual(res.HyperedgeIDs, direct.HyperedgeIDs) {
			t.Fatalf("s=%d: warmed hyperedge IDs differ from direct run", sVal)
		}
	}
	// A second warmup finds everything hot.
	if computed, hot, err = svc.Warmup(context.Background(), "rand", false, sweep, cfg); err != nil || computed != 0 || hot != len(sweep) {
		t.Fatalf("second warmup: computed=%d hot=%d err=%v, want 0, %d, nil", computed, hot, err, len(sweep))
	}
}

// TestWarmupAlgorithm1RoutedPerS: a short-circuit Algorithm 1 warmup
// (a distinct output class) flows through the same batch path as
// everything else — the planner, not the serving layer, decides it must
// run per s.
func TestWarmupAlgorithm1RoutedPerS(t *testing.T) {
	h := paperExample()
	svc := New(Config{})
	svc.Add("h", h)
	cfg := core.PipelineConfig{Core: core.Config{Algorithm: core.AlgoSetIntersection}}
	if _, _, err := svc.Warmup(context.Background(), "h", false, []int{1, 2}, cfg); err != nil {
		t.Fatal(err)
	}
	for _, sVal := range []int{1, 2} {
		res, cached, err := svc.SLineGraph(context.Background(), "h", sVal, cfg)
		if err != nil || !cached {
			t.Fatalf("s=%d: want warmed hit, cached=%v err=%v", sVal, cached, err)
		}
		direct, _ := core.Run(context.Background(), h, sVal, cfg)
		if !reflect.DeepEqual(res.Graph.Edges(), direct.Graph.Edges()) {
			t.Fatalf("s=%d: Algorithm 1 warmup differs from direct run", sVal)
		}
	}
}

func TestDatasetReplacementInvalidates(t *testing.T) {
	svc := New(Config{})
	svc.Add("h", paperExample())
	r1, _, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Replace under the same name: the version bump must force a fresh
	// computation.
	svc.Add("h", hg.FromEdgeSlices([][]uint32{{0, 1, 2}, {0, 1, 2}}, 3))
	r2, cached, err := svc.SLineGraph(context.Background(), "h", 2, core.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cached || r1 == r2 {
		t.Fatal("replaced dataset must not serve the old cached result")
	}
	if r2.Graph.NumEdges() != 1 {
		t.Fatalf("want 1 edge from replacement dataset, got %d", r2.Graph.NumEdges())
	}
}

func TestServiceLoadByExtension(t *testing.T) {
	dir := t.TempDir()
	h := paperExample()
	for _, name := range []string{"h.hgr", "h.pairs", "h.bin"} {
		path := filepath.Join(dir, name)
		if err := hgio.SaveFile(path, h); err != nil {
			t.Fatal(err)
		}
		svc := New(Config{})
		if err := svc.Load("h", path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := svc.Hypergraph("h")
		if err != nil {
			t.Fatal(err)
		}
		if got.NumEdges() != h.NumEdges() || got.Incidences() != h.Incidences() {
			t.Fatalf("%s: loaded dataset differs", name)
		}
	}
}

func TestDatasetsListing(t *testing.T) {
	svc := New(Config{})
	svc.Add("b", paperExample())
	svc.Add("a", paperExample())
	list := svc.Datasets()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("want [a b], got %+v", list)
	}
	if !svc.Remove("a") || svc.Remove("a") {
		t.Fatal("remove semantics broken")
	}
	if len(svc.Datasets()) != 1 {
		t.Fatal("dataset not removed")
	}
}
