// Package delta implements incremental maintenance of streaming
// hypergraphs: batched hyperedge insert/delete deltas applied to an
// immutable hg.Hypergraph produce the next dataset version without
// re-parsing, and the Stage-3 patcher (patch.go) exploits Algorithm 2's
// locality — a hyperedge only perturbs overlap counts within its 2-hop
// neighborhood — to patch cached s-line projections instead of
// recomputing five stages.
//
// # ID stability
//
// Deltas operate on whole hyperedges, and the ID spaces are append-only:
//
//   - A deleted hyperedge's row becomes empty in place; its ID is never
//     reused. Stage 1 (hg.Preprocess) already drops empty hyperedges, so
//     the projection pipeline sees the deletion without any remapping.
//   - Inserted hyperedges take the next IDs after the current edge
//     space, in batch order.
//   - Vertices are never deleted (a vertex with no remaining incidences
//     is simply isolated, which Stage 1 also drops); inserted edges may
//     reference new vertex IDs, growing the vertex space.
//
// Stable original IDs are what make cached projections patchable: a
// projection's HyperedgeIDs map graph nodes to original IDs, which mean
// the same thing before and after a delta.
package delta

import (
	"encoding/json"
	"fmt"
	"sort"

	"hyperline/internal/hg"
)

// MaxBatch bounds the number of hyperedge operations (inserts plus
// deletes) one delta may carry, keeping a single (possibly
// unauthenticated) ingest request's work bounded the same way
// core.MaxSValues bounds a batch query.
const MaxBatch = 1 << 20

// Delta is one batch of whole-hyperedge mutations against a specific
// base hypergraph. The zero value is an empty delta. The JSON form is
// the /v2/ingest wire format:
//
//	{"inserts": [[0,3,7], [2,5]], "deletes": [12, 40]}
//
// Deletes name hyperedge IDs of the base; inserts list the member
// vertices of each appended hyperedge. Normalize validates and
// canonicalizes a delta against its base before use.
type Delta struct {
	// Inserts lists the vertex set of each appended hyperedge; insert i
	// receives ID base.NumEdges()+i.
	Inserts [][]uint32 `json:"inserts,omitempty"`
	// Deletes names base hyperedge IDs whose rows become empty.
	Deletes []uint32 `json:"deletes,omitempty"`
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return d == nil || (len(d.Inserts) == 0 && len(d.Deletes) == 0)
}

// Ops returns the number of hyperedge operations in the delta.
func (d *Delta) Ops() int {
	if d == nil {
		return 0
	}
	return len(d.Inserts) + len(d.Deletes)
}

// insertIncidences sums the inserted vertex-list lengths.
func (d *Delta) insertIncidences() int64 {
	var n int64
	for _, vs := range d.Inserts {
		n += int64(len(vs))
	}
	return n
}

// Parse decodes the /v2/ingest wire format. Structural decoding only —
// the delta still needs Normalize against its base before Apply.
func Parse(data []byte) (*Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("delta: bad wire format: %w", err)
	}
	return &d, nil
}

// Normalize validates d against its base and canonicalizes it in place:
// insert vertex lists are sorted and deduplicated, deletes are sorted,
// deduplicated, and checked in-range against non-empty base rows, and
// vertex IDs are checked against the growth bound. A normalized delta
// is safe to Apply without further allocation hazards: every array
// Apply sizes is bounded by the base plus the delta's own payload, so a
// hostile wire body cannot demand an allocation it did not pay for.
func (d *Delta) Normalize(base *hg.Hypergraph) error {
	if d == nil {
		return fmt.Errorf("delta: nil delta")
	}
	if d.Ops() == 0 {
		return fmt.Errorf("delta: empty delta (no inserts or deletes)")
	}
	if d.Ops() > MaxBatch {
		return fmt.Errorf("delta: %d operations exceed the per-delta cap %d", d.Ops(), MaxBatch)
	}
	// Vertex growth bound: every new vertex needs at least one inserted
	// incidence, so the densest legal ID space is the base's plus one ID
	// per inserted incidence. Checking before Apply allocates keeps a
	// single absurd vertex ID (e.g. 4e9 in a 10-vertex hypergraph) from
	// demanding a multi-gigabyte offset array.
	maxVertex := int64(base.NumVertices()) + d.insertIncidences() - 1
	for i, vs := range d.Inserts {
		if len(vs) == 0 {
			return fmt.Errorf("delta: insert %d is empty (hyperedges must have at least one vertex)", i)
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		w := 1
		for r := 1; r < len(vs); r++ {
			if vs[r] != vs[r-1] {
				vs[w] = vs[r]
				w++
			}
		}
		d.Inserts[i] = vs[:w]
		if top := int64(vs[w-1]); top > maxVertex {
			return fmt.Errorf("delta: insert %d references vertex %d beyond the growth bound %d (base has %d vertices)",
				i, top, maxVertex, base.NumVertices())
		}
	}
	if len(d.Deletes) > 0 {
		sort.Slice(d.Deletes, func(a, b int) bool { return d.Deletes[a] < d.Deletes[b] })
		w := 0
		for r, e := range d.Deletes {
			if r > 0 && e == d.Deletes[r-1] {
				continue
			}
			d.Deletes[w] = e
			w++
		}
		d.Deletes = d.Deletes[:w]
		for _, e := range d.Deletes {
			if int(e) >= base.NumEdges() {
				return fmt.Errorf("delta: delete of hyperedge %d out of range (base has %d hyperedges)", e, base.NumEdges())
			}
			if base.EdgeSize(e) == 0 {
				return fmt.Errorf("delta: delete of hyperedge %d, which is already empty (deleted by an earlier delta?)", e)
			}
		}
	}
	return nil
}

// Apply materializes the post-delta hypergraph: base rows survive
// unchanged, deleted rows become empty, and inserts append. The CSR
// arrays are built directly in O(nnz) — no text re-parse, no Builder
// sort — and the result shares no storage with the base (the base may
// be mmap-backed and replaced underneath long-lived readers). d must be
// normalized against base first.
func Apply(base *hg.Hypergraph, d *Delta) (*hg.Hypergraph, error) {
	if err := d.Normalize(base); err != nil {
		return nil, err
	}
	m := base.NumEdges()
	newEdges := m + len(d.Inserts)
	deleted := make(map[uint32]bool, len(d.Deletes))
	var removed int64
	for _, e := range d.Deletes {
		deleted[e] = true
		removed += int64(base.EdgeSize(e))
	}
	nnz := base.Incidences() - removed + d.insertIncidences()

	// Edge orientation: survivors copy, deletions collapse to
	// zero-length rows, inserts append (already sorted by Normalize).
	eOff := make([]int64, newEdges+1)
	eAdj := make([]uint32, 0, nnz)
	numVertices := int64(base.NumVertices())
	for e := 0; e < m; e++ {
		if !deleted[uint32(e)] {
			eAdj = append(eAdj, base.EdgeVertices(uint32(e))...)
		}
		eOff[e+1] = int64(len(eAdj))
	}
	for i, vs := range d.Inserts {
		eAdj = append(eAdj, vs...)
		eOff[m+i+1] = int64(len(eAdj))
		if top := int64(vs[len(vs)-1]) + 1; top > numVertices {
			numVertices = top
		}
	}

	// Vertex orientation by counting sort: scanning edges in ascending
	// ID order emits each vertex row already sorted.
	vOff := make([]int64, numVertices+2)
	for _, v := range eAdj {
		vOff[v+2]++
	}
	for v := 2; v < len(vOff); v++ {
		vOff[v] += vOff[v-1]
	}
	vAdj := make([]uint32, len(eAdj))
	for e := 0; e < newEdges; e++ {
		for _, v := range eAdj[eOff[e]:eOff[e+1]] {
			vAdj[vOff[v+1]] = uint32(e)
			vOff[v+1]++
		}
	}
	return hg.FromCSR(newEdges, int(numVertices), eOff, eAdj, vOff[:numVertices+1], vAdj)
}

// Invert returns the delta that undoes d, phrased against the
// hypergraph Apply(base, d) produced: it deletes the IDs d's inserts
// received and re-inserts the vertex lists of d's deletes. Applying d
// then Invert(d, base) restores the base's multiset of non-empty
// hyperedge vertex sets — not its ID layout: the twice-applied
// hypergraph keeps tombstone rows and appends the restored hyperedges
// at fresh IDs, which Stage 1 erases. d must be normalized against
// base.
func Invert(d *Delta, base *hg.Hypergraph) *Delta {
	inv := &Delta{}
	m := uint32(base.NumEdges())
	for i := range d.Inserts {
		inv.Deletes = append(inv.Deletes, m+uint32(i))
	}
	for _, e := range d.Deletes {
		vs := append([]uint32(nil), base.EdgeVertices(e)...)
		inv.Inserts = append(inv.Inserts, vs)
	}
	return inv
}
