package delta

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/gen"
	"hyperline/internal/hg"
)

// This file is the correctness contract of the incremental patcher: for
// seeded generated hypergraphs × random delta batches × both
// orientations × s = 1..5 × every relabel order, patching a cached
// projection must be byte-identical — Graph CSR, HyperedgeIDs, S — to
// recomputing the projection from scratch on the post-delta hypergraph.
// CI runs this package under -race, so the lazily shared patcher state
// is exercised for data races as well.

// orient projects the hypergraph for one orientation.
func orient(h *hg.Hypergraph, dual bool) *hg.Hypergraph {
	if dual {
		return h.Dual()
	}
	return h
}

// exactCfg is the pipeline configuration of patchable cache keys:
// exact weights, squeeze on, toplex off, pinned relabel.
func exactCfg(relabel hg.RelabelOrder) core.PipelineConfig {
	var cfg core.PipelineConfig
	cfg.Core.Relabel = relabel
	cfg.Core.DisableShortCircuit = true
	return cfg
}

// sameResult asserts byte-identity of the contract fields: the graph's
// CSR arrays, the node→hyperedge mapping, and s. (Timings, Stats, and
// Plan legitimately differ between a patch and a recompute.)
func sameResult(t *testing.T, label string, got, want *core.PipelineResult) {
	t.Helper()
	if got.S != want.S {
		t.Fatalf("%s: s = %d, want %d", label, got.S, want.S)
	}
	gOff, gAdj, gWgt, gOrig := got.Graph.CSR()
	wOff, wAdj, wWgt, wOrig := want.Graph.CSR()
	if !reflect.DeepEqual(gOff, wOff) || !reflect.DeepEqual(gAdj, wAdj) ||
		!reflect.DeepEqual(gWgt, wWgt) || !reflect.DeepEqual(gOrig, wOrig) {
		t.Fatalf("%s: patched CSR differs from recompute (nodes %d vs %d, edges %d vs %d)",
			label, got.Graph.NumNodes(), want.Graph.NumNodes(), got.Graph.NumEdges(), want.Graph.NumEdges())
	}
	if !reflect.DeepEqual(got.HyperedgeIDs, want.HyperedgeIDs) {
		t.Fatalf("%s: patched HyperedgeIDs differ from recompute", label)
	}
}

// sameServed asserts identity of every externally served field — the
// adjacency CSR and the node→hyperedge mapping — but not the graph's
// internal squeeze→work-space mapping: dropping a tombstoned row shifts
// the work IDs of everything behind it, so a migrated (carried-forward)
// result legitimately differs there while serving identical answers.
func sameServed(t *testing.T, label string, got, want *core.PipelineResult) {
	t.Helper()
	if got.S != want.S {
		t.Fatalf("%s: s = %d, want %d", label, got.S, want.S)
	}
	gOff, gAdj, gWgt, _ := got.Graph.CSR()
	wOff, wAdj, wWgt, _ := want.Graph.CSR()
	if !reflect.DeepEqual(gOff, wOff) || !reflect.DeepEqual(gAdj, wAdj) || !reflect.DeepEqual(gWgt, wWgt) {
		t.Fatalf("%s: migrated CSR differs from recompute", label)
	}
	if !reflect.DeepEqual(got.HyperedgeIDs, want.HyperedgeIDs) {
		t.Fatalf("%s: migrated HyperedgeIDs differ from recompute", label)
	}
}

// randomDelta draws a delta against base: a few deletions of non-empty
// rows and a few inserted hyperedges, possibly referencing one new
// vertex (valid under the growth bound whenever the delta carries at
// least two incidences, which the sizes below guarantee).
func randomDelta(rng *rand.Rand, base *hg.Hypergraph) *Delta {
	d := &Delta{}
	var nonEmpty []uint32
	for e := 0; e < base.NumEdges(); e++ {
		if base.EdgeSize(uint32(e)) > 0 {
			nonEmpty = append(nonEmpty, uint32(e))
		}
	}
	nDel := 1 + rng.Intn(3)
	rng.Shuffle(len(nonEmpty), func(i, j int) { nonEmpty[i], nonEmpty[j] = nonEmpty[j], nonEmpty[i] })
	if nDel > len(nonEmpty) {
		nDel = len(nonEmpty)
	}
	d.Deletes = append(d.Deletes, nonEmpty[:nDel]...)
	nIns := 1 + rng.Intn(3)
	for i := 0; i < nIns; i++ {
		sz := 2 + rng.Intn(4)
		seen := make(map[uint32]bool, sz)
		for len(seen) < sz {
			// +1 admits one brand-new vertex ID per draw.
			seen[uint32(rng.Intn(base.NumVertices()+1))] = true
		}
		vs := make([]uint32, 0, sz)
		for v := range seen {
			vs = append(vs, v)
		}
		d.Inserts = append(d.Inserts, vs)
	}
	return d
}

func testBases(t *testing.T) map[string]*hg.Hypergraph {
	t.Helper()
	return map[string]*hg.Hypergraph{
		"paper": paperExample(),
		"zipf": gen.Zipf(gen.ZipfConfig{
			Seed: 7, NumVertices: 60, NumEdges: 80, MeanEdgeSize: 4, MaxEdgeSize: 10,
		}),
		"community": gen.Community(gen.CommunityConfig{
			Seed: 11, NumVertices: 50, NumCommunities: 5,
			MeanCommunitySize: 8, EdgesPerCommunity: 10, Background: 10,
		}),
	}
}

// TestPatchEquivalence is the headline property: patch == recompute,
// byte for byte, across bases × deltas × orientations × s × relabel.
func TestPatchEquivalence(t *testing.T) {
	ctx := context.Background()
	relabels := []hg.RelabelOrder{hg.RelabelNone, hg.RelabelAscending, hg.RelabelDescending}
	for name, base := range testBases(t) {
		for deltaSeed := int64(0); deltaSeed < 3; deltaSeed++ {
			d := randomDelta(rand.New(rand.NewSource(deltaSeed)), base)
			newH, err := Apply(base, d)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, deltaSeed, err)
			}
			p := NewPatcher(base, newH, d)
			for _, dual := range []bool{false, true} {
				for _, relabel := range relabels {
					cfg := exactCfg(relabel)
					for s := 1; s <= 5; s++ {
						label := fmt.Sprintf("%s/seed%d/dual=%v/relabel=%s/s=%d", name, deltaSeed, dual, relabel, s)
						old, err := core.Run(ctx, orient(base, dual), s, cfg)
						if err != nil {
							t.Fatal(label, err)
						}
						fresh, err := core.Run(ctx, orient(newH, dual), s, cfg)
						if err != nil {
							t.Fatal(label, err)
						}
						a := KeyAttrs{Dual: dual, S: s, Exact: true, Relabel: relabel, Squeeze: true}
						patched, err := p.Patch(old, a)
						if err != nil {
							t.Fatalf("%s: Patch: %v", label, err)
						}
						sameResult(t, label, patched, fresh)
						// Migration soundness: a key the patcher calls
						// unchanged must really be unchanged.
						if p.Migratable(a) {
							sameServed(t, label+" (migrate)", old, fresh)
						}
					}
				}
			}
		}
	}
}

// TestPatchEquivalenceChained patches through a chain of deltas — each
// step reuses the previous step's patched result as its cached input —
// and checks the end state still matches a from-scratch recompute, so
// patching does not accumulate drift across versions.
func TestPatchEquivalenceChained(t *testing.T) {
	ctx := context.Background()
	base := gen.Zipf(gen.ZipfConfig{
		Seed: 3, NumVertices: 40, NumEdges: 50, MeanEdgeSize: 4, MaxEdgeSize: 8,
	})
	rng := rand.New(rand.NewSource(42))
	for _, dual := range []bool{false, true} {
		cfg := exactCfg(hg.RelabelNone)
		for s := 1; s <= 3; s++ {
			h := base
			cur, err := core.Run(ctx, orient(h, dual), s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				d := randomDelta(rng, h)
				newH, err := Apply(h, d)
				if err != nil {
					t.Fatal(err)
				}
				p := NewPatcher(h, newH, d)
				a := KeyAttrs{Dual: dual, S: s, Exact: true, Relabel: hg.RelabelNone, Squeeze: true}
				cur, err = p.Patch(cur, a)
				if err != nil {
					t.Fatal(err)
				}
				h = newH
			}
			fresh, err := core.Run(ctx, orient(h, dual), s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("chained/dual=%v/s=%d", dual, s), cur, fresh)
		}
	}
}

// TestMigratableRespectsOrderStability pins the migration rules: clique
// keys under a by-degree relabel are never migrated (vertex degrees
// change), line keys migrate at s above the frontier bound under any
// relabel (hyperedge sizes do not change).
func TestMigratableRespectsOrderStability(t *testing.T) {
	base := paperExample()
	d := &Delta{Inserts: [][]uint32{{4, 5}}}
	newH, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPatcher(base, newH, d)
	high := p.AffectedS(true) + p.AffectedS(false) + 1
	attrs := func(dual bool, relabel hg.RelabelOrder) KeyAttrs {
		return KeyAttrs{Dual: dual, S: high, Exact: true, Relabel: relabel, Squeeze: true}
	}
	if !p.Migratable(attrs(false, hg.RelabelDescending)) {
		t.Error("line key above the frontier under relabel D should migrate")
	}
	if p.Migratable(attrs(true, hg.RelabelDescending)) {
		t.Error("clique key under relabel D must not migrate")
	}
	if !p.Migratable(attrs(true, hg.RelabelNone)) {
		t.Error("unrelabeled clique key above the frontier should migrate")
	}
	low := KeyAttrs{Dual: false, S: 1, Exact: true, Relabel: hg.RelabelNone, Squeeze: true}
	if p.Migratable(low) {
		t.Error("s=1 is inside every frontier; must not migrate")
	}
	toplexed := attrs(false, hg.RelabelNone)
	toplexed.Toplex = true
	if p.Migratable(toplexed) {
		t.Error("toplex keys must never migrate")
	}
	unsqueezed := attrs(false, hg.RelabelNone)
	unsqueezed.Squeeze = false
	if p.Migratable(unsqueezed) {
		t.Error("unsqueezed keys must never migrate")
	}
}
