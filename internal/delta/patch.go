package delta

import (
	"fmt"
	"math"
	"sync"
	"time"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

// Patcher incrementally maintains cached s-line projections across one
// delta. It is built once per applied delta (base → newH) and consulted
// once per cached projection key; the expensive per-orientation state —
// the Algorithm-2 recount of inserted hyperedges, the affected
// vertex-pair table of the clique orientation, and the Stage 1
// preprocessing of the new hypergraph — is computed lazily and shared
// across every key that needs it.
//
// The locality argument: a delta inserts and deletes whole hyperedges,
// so in the line orientation the overlap |e ∩ f| of two surviving
// hyperedges never changes — only pairs involving a deleted ID
// disappear and pairs involving an inserted ID appear, and the latter
// live entirely inside the inserted edges' 2-hop frontier. In the
// clique orientation adj(u, v) changes exactly for vertex pairs that
// co-occur in some inserted or deleted hyperedge's vertex set. Every
// other pair of either projection is bit-for-bit untouched.
type Patcher struct {
	base *hg.Hypergraph
	newH *hg.Hypergraph
	d    *Delta

	deleted map[uint32]bool

	// affectedS[orient] bounds the largest s any pair of that
	// orientation changes at: a projection at s above the bound is
	// identical before and after the delta. Both bounds are O(delta)
	// to compute — no counting pass.
	lineAffectedS   int
	cliqueAffectedS int

	// Lazily computed line-orientation pairs involving inserted
	// hyperedges: original-ID space, U < V, exact overlap weights.
	lineOnce  sync.Once
	linePairs []core.Edge

	// Lazily computed clique-orientation updates: affected vertex pair →
	// new adj count (0 = pair gone at every s). cliqueOK reports the
	// enumeration stayed within budget.
	cliqueOnce  sync.Once
	cliquePairs map[uint64]uint32
	cliqueOK    bool

	// prepared caches Stage-1 preprocessing of the new hypergraph per
	// (orientation, relabel) — shared by every key patched under it.
	mu       sync.Mutex
	prepared map[preparedKey]*core.Prepared
}

type preparedKey struct {
	dual    bool
	relabel hg.RelabelOrder
}

// cliquePairBudget caps how many affected vertex pairs the clique
// enumeration materializes: Σ |e|·(|e|−1)/2 over the delta's edges.
// Past it the delta is treated as global for the clique orientation
// (no migration, no patch) — a delta touching million-vertex hyperedges
// is a re-upload in disguise.
const cliquePairBudget = 1 << 22

// Patch-vs-recompute thresholds: patch when its estimated work is below
// this fraction of a full recompute (stats.WedgePairs). With a
// calibrated cost model vouching for the recompute estimate the planner
// tolerates patches up to half a recompute; without calibration it only
// patches clear wins.
const (
	patchFractionCalibrated   = 0.5
	patchFractionUncalibrated = 0.25
)

// NewPatcher builds the patcher for one applied delta. d must be the
// normalized delta that produced newH = Apply(base, d).
func NewPatcher(base, newH *hg.Hypergraph, d *Delta) *Patcher {
	p := &Patcher{
		base:     base,
		newH:     newH,
		d:        d,
		deleted:  make(map[uint32]bool, len(d.Deletes)),
		prepared: make(map[preparedKey]*core.Prepared),
	}
	for _, e := range d.Deletes {
		p.deleted[e] = true
	}
	// Line bound: a pair involving a deleted hyperedge x had weight
	// |x ∩ f| ≤ |x|; a pair involving an inserted g has weight ≤ |g|.
	for _, e := range d.Deletes {
		if sz := base.EdgeSize(e); sz > p.lineAffectedS {
			p.lineAffectedS = sz
		}
	}
	for _, vs := range d.Inserts {
		if len(vs) > p.lineAffectedS {
			p.lineAffectedS = len(vs)
		}
	}
	// Clique bound: an affected pair {u, v} lies inside some delta
	// edge, and both its old and new adj counts are bounded by the
	// member vertices' degrees on the respective side.
	bump := func(v uint32) {
		if int(v) < base.NumVertices() {
			if deg := base.VertexDegree(v); deg > p.cliqueAffectedS {
				p.cliqueAffectedS = deg
			}
		}
		if int(v) < newH.NumVertices() {
			if deg := newH.VertexDegree(v); deg > p.cliqueAffectedS {
				p.cliqueAffectedS = deg
			}
		}
	}
	for _, e := range d.Deletes {
		for _, v := range base.EdgeVertices(e) {
			bump(v)
		}
	}
	for _, vs := range d.Inserts {
		for _, v := range vs {
			bump(v)
		}
	}
	return p
}

// AffectedS returns the orientation's frontier bound: projections at
// s > AffectedS are identical before and after the delta.
func (p *Patcher) AffectedS(dual bool) int {
	if dual {
		return p.cliqueAffectedS
	}
	return p.lineAffectedS
}

// Action is the Patcher's verdict for one cached projection key.
type Action int

const (
	// ActionDrop invalidates the key: the next query recomputes.
	ActionDrop Action = iota
	// ActionMigrate re-keys the cached result to the new version as-is:
	// the projection provably did not change.
	ActionMigrate
	// ActionPatch rewrites the cached edge list incrementally and
	// caches the patched result under the new version.
	ActionPatch
)

// String names the action for logs and counters.
func (a Action) String() string {
	switch a {
	case ActionMigrate:
		return "migrate"
	case ActionPatch:
		return "patch"
	default:
		return "drop"
	}
}

// KeyAttrs are the output-relevant attributes of one cached projection
// key, as parsed from its fingerprint by the serving layer.
type KeyAttrs struct {
	Dual bool
	S    int
	// Exact reports the fingerprint's "exact" weight class (every
	// strategy but short-circuiting Algorithm 1).
	Exact   bool
	Relabel hg.RelabelOrder
	Toplex  bool
	Squeeze bool
}

// Plan decides what to do with one cached projection: oldEdges is the
// cached graph's edge count, wedgePairs the new version's recompute
// cost proxy (hg.Stats.WedgePairs of the orientation the key projects),
// calibrated whether the dataset's cost model has a calibrated cell
// vouching for that proxy.
//
// Migration requires s above the frontier bound plus ID-order
// stability: Stage 1's stable relabel sort keeps surviving hyperedges
// in the same relative order for any order in the line orientation
// (hyperedge sizes never change), but only for the unrelabeled order in
// the clique orientation (vertex degrees do change, which would shuffle
// a by-degree order even for untouched vertices). Toplex keys are never
// kept: one inserted superset or deleted container flips other edges'
// toplex status, perturbing the simplified hypergraph at any s.
// Unsqueezed keys bake the working ID space size into the node space,
// which every delta changes.
func (p *Patcher) Plan(a KeyAttrs, oldEdges int, wedgePairs int64, calibrated bool) Action {
	if p.Migratable(a) {
		return ActionMigrate
	}
	if a.Toplex || !a.Squeeze {
		return ActionDrop
	}
	if !a.Exact {
		// Short-circuited weights can only be migrated, never patched:
		// the patcher computes exact counts, which a later recompute of
		// the same key would not reproduce.
		return ActionDrop
	}
	if a.Dual && p.cliquePairCount() > cliquePairBudget {
		return ActionDrop
	}
	units := p.patchUnits(a.Dual) + int64(oldEdges)
	frac := patchFractionUncalibrated
	if calibrated {
		frac = patchFractionCalibrated
	}
	if wedgePairs > 0 && float64(units) > frac*float64(wedgePairs) {
		return ActionDrop
	}
	return ActionPatch
}

// Migratable reports whether a cached artifact with these attributes is
// provably unchanged by the delta and may simply be re-keyed to the new
// version. Unlike Plan it needs nothing from the cached value itself,
// so the measure cache — whose entries cannot be patched, only carried
// or dropped — decides with it directly.
func (p *Patcher) Migratable(a KeyAttrs) bool {
	if a.Toplex || !a.Squeeze {
		return false
	}
	orderStable := !a.Dual || a.Relabel == hg.RelabelNone
	return orderStable && a.S > p.AffectedS(a.Dual)
}

// patchUnits estimates the patch work for one orientation in the same
// rough currency as hg.Stats.WedgePairs (pair visits).
func (p *Patcher) patchUnits(dual bool) int64 {
	if dual {
		avgDeg := 1.0
		if n := p.newH.NumVertices(); n > 0 {
			avgDeg = float64(p.newH.Incidences()) / float64(n)
		}
		return int64(float64(p.cliquePairCount()) * (2*avgDeg + 1))
	}
	var units int64
	for _, e := range p.d.Deletes {
		units += int64(p.base.EdgeSize(e))
	}
	for _, vs := range p.d.Inserts {
		for _, v := range vs {
			if int(v) < p.newH.NumVertices() {
				units += int64(p.newH.VertexDegree(v))
			}
		}
	}
	return units
}

// cliquePairCount is Σ |e|·(|e|−1)/2 over the delta's edges — the
// affected vertex pairs the clique enumeration would visit, counted
// with multiplicity and capped at twice the budget.
func (p *Patcher) cliquePairCount() int64 {
	var n int64
	count := func(sz int64) bool {
		n += sz * (sz - 1) / 2
		return n <= 2*cliquePairBudget
	}
	for _, e := range p.d.Deletes {
		if !count(int64(p.base.EdgeSize(e))) {
			return n
		}
	}
	for _, vs := range p.d.Inserts {
		if !count(int64(len(vs))) {
			return n
		}
	}
	return n
}

// insertPairs lazily recounts the inserted hyperedges' 2-hop frontiers
// with the Algorithm-2 kernel, yielding every line-orientation pair
// involving an inserted hyperedge (original IDs, U < V, exact
// weights). Inserted IDs are the highest in the space, so keeping only
// neighbors below the counted edge covers survivor–insert pairs once
// and insert–insert pairs once (from the higher ID's count).
func (p *Patcher) insertPairs() []core.Edge {
	p.lineOnce.Do(func() {
		m := uint32(p.base.NumEdges())
		for i := range p.d.Inserts {
			g := m + uint32(i)
			for _, oc := range core.OverlapCounts(p.newH, g) {
				if oc.Edge < g {
					p.linePairs = append(p.linePairs, core.Edge{U: oc.Edge, V: g, W: oc.Count})
				}
			}
		}
	})
	return p.linePairs
}

// pairKey packs a vertex pair (u < v) into one map key.
func pairKey(u, v uint32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// cliqueUpdates lazily enumerates the clique orientation's affected
// vertex pairs — pairs co-occurring inside some delta edge — and
// recounts each one's new adj(u, v) exactly. Pairs whose count did not
// change (an insert and a delete cancelling) are omitted. ok is false
// when the enumeration exceeded its budget, in which case the delta is
// global for this orientation.
func (p *Patcher) cliqueUpdates() (map[uint64]uint32, bool) {
	p.cliqueOnce.Do(func() {
		if p.cliquePairCount() > cliquePairBudget {
			return
		}
		net := make(map[uint64]int32)
		accumulate := func(vs []uint32, sign int32) {
			for i := 1; i < len(vs); i++ {
				for j := 0; j < i; j++ {
					net[pairKey(vs[j], vs[i])] += sign
				}
			}
		}
		for _, e := range p.d.Deletes {
			accumulate(p.base.EdgeVertices(e), -1)
		}
		for _, vs := range p.d.Inserts {
			accumulate(vs, +1)
		}
		p.cliquePairs = make(map[uint64]uint32, len(net))
		for k, delta := range net {
			if delta == 0 {
				continue
			}
			u, v := uint32(k>>32), uint32(k)
			p.cliquePairs[k] = uint32(p.newH.Adj(u, v))
		}
		p.cliqueOK = true
	})
	return p.cliquePairs, p.cliqueOK
}

// preparedFor returns (building on first use) the Stage-1 preprocessing
// of the new hypergraph for one orientation and relabel order.
func (p *Patcher) preparedFor(dual bool, relabel hg.RelabelOrder) (*core.Prepared, error) {
	k := preparedKey{dual: dual, relabel: relabel}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pp, ok := p.prepared[k]; ok {
		return pp, nil
	}
	work := p.newH
	if dual {
		work = work.Dual()
	}
	cfg := core.PipelineConfig{}
	cfg.Core.Relabel = relabel
	pp, err := core.PrepareFor(work, cfg)
	if err != nil {
		return nil, err
	}
	p.prepared[k] = pp
	return pp, nil
}

// Patch rewrites one cached projection for the new version: the cached
// graph's edges are lifted back to original-ID space, pairs the delta
// affected are dropped or replaced, the inserted hyperedges' new pairs
// are added, and the result is assembled through the same Stage-4 path
// as a full run — byte-identical Graph and HyperedgeIDs to a
// from-scratch recompute of the post-delta hypergraph. The caller must
// have gotten ActionPatch from Plan for this key.
func (p *Patcher) Patch(old *core.PipelineResult, a KeyAttrs) (*core.PipelineResult, error) {
	t0 := time.Now()
	var orig []core.Edge
	var err error
	if a.Dual {
		orig, err = p.patchCliquePairs(old, a.S)
	} else {
		orig, err = p.patchLinePairs(old, a.S)
	}
	if err != nil {
		return nil, err
	}
	pp, err := p.preparedFor(a.Dual, a.Relabel)
	if err != nil {
		return nil, err
	}
	origSpace := p.newH.NumEdges()
	if a.Dual {
		origSpace = p.newH.NumVertices()
	}
	toWork := pp.OrigToWork(origSpace)
	work := make([]core.Edge, 0, len(orig))
	for _, e := range orig {
		wu, wv := toWork[e.U], toWork[e.V]
		if wu < 0 || wv < 0 {
			return nil, fmt.Errorf("delta: patched pair (%d, %d) maps outside the working hypergraph", e.U, e.V)
		}
		u, v := uint32(wu), uint32(wv)
		if u > v {
			u, v = v, u
		}
		work = append(work, core.Edge{U: u, V: v, W: e.W})
	}
	core.SortEdges(work)
	plan := core.PlanInfo{
		Strategy: "patch",
		Reason:   fmt.Sprintf("incremental patch: %d inserts, %d deletes", len(p.d.Inserts), len(p.d.Deletes)),
		Relabel:  a.Relabel.String(),
	}
	stats := core.Stats{Edges: int64(len(work))}
	return pp.Assemble(a.S, work, time.Since(t0), stats, plan), nil
}

// patchLinePairs lifts the cached line projection to original IDs,
// drops pairs touching deleted hyperedges, and appends the inserted
// hyperedges' pairs at or above s.
func (p *Patcher) patchLinePairs(old *core.PipelineResult, s int) ([]core.Edge, error) {
	inserts := p.insertPairs()
	out := make([]core.Edge, 0, old.Graph.NumEdges()+len(inserts))
	for _, e := range old.Graph.Edges() {
		u, v := old.HyperedgeIDs[e.U], old.HyperedgeIDs[e.V]
		if p.deleted[u] || p.deleted[v] {
			continue
		}
		out = append(out, core.Edge{U: u, V: v, W: e.W})
	}
	for _, e := range inserts {
		if int(e.W) >= s {
			out = append(out, e)
		}
	}
	return out, nil
}

// patchCliquePairs lifts the cached clique projection to original
// vertex IDs and replaces every affected pair with its recounted adj
// value (removed when below s).
func (p *Patcher) patchCliquePairs(old *core.PipelineResult, s int) ([]core.Edge, error) {
	updates, ok := p.cliqueUpdates()
	if !ok {
		return nil, fmt.Errorf("delta: clique pair enumeration over budget")
	}
	out := make([]core.Edge, 0, old.Graph.NumEdges()+len(updates))
	for _, e := range old.Graph.Edges() {
		u, v := old.HyperedgeIDs[e.U], old.HyperedgeIDs[e.V]
		if _, affected := updates[pairKey(u, v)]; affected {
			continue
		}
		out = append(out, core.Edge{U: u, V: v, W: e.W})
	}
	for k, w := range updates {
		if int(w) >= s {
			u, v := uint32(k>>32), uint32(k)
			out = append(out, core.Edge{U: u, V: v, W: w})
		}
	}
	return out, nil
}

// GlobalAffected is the AffectedS value meaning "assume every s is
// affected".
const GlobalAffected = math.MaxInt32
