package delta

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"hyperline/internal/hg"
)

// paperExample is the running example hypergraph of the paper: four
// hyperedges over six vertices.
func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

// edgeSets returns the multiset of non-empty hyperedge vertex sets,
// sorted for comparison — the delta invariant Apply/Invert preserve.
func edgeSets(h *hg.Hypergraph) [][]uint32 {
	var out [][]uint32
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.EdgeVertices(uint32(e))
		if len(vs) == 0 {
			continue
		}
		out = append(out, append([]uint32(nil), vs...))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestNormalizeCanonicalizes(t *testing.T) {
	base := paperExample()
	d := &Delta{
		Inserts: [][]uint32{{3, 1, 3, 0}},
		Deletes: []uint32{2, 0, 2},
	}
	if err := d.Normalize(base); err != nil {
		t.Fatal(err)
	}
	if want := [][]uint32{{0, 1, 3}}; !reflect.DeepEqual(d.Inserts, want) {
		t.Errorf("inserts not sorted/deduped: %v", d.Inserts)
	}
	if want := []uint32{0, 2}; !reflect.DeepEqual(d.Deletes, want) {
		t.Errorf("deletes not sorted/deduped: %v", d.Deletes)
	}
}

func TestNormalizeRejects(t *testing.T) {
	base := paperExample()
	cases := map[string]*Delta{
		"nil":                 nil,
		"empty":               {},
		"empty insert":        {Inserts: [][]uint32{{}}},
		"delete out of range": {Deletes: []uint32{4}},
		// Vertex 9 needs three new IDs (6, 7, 8) but the single
		// two-vertex insert only pays for two incidences.
		"vertex beyond growth bound": {Inserts: [][]uint32{{0, 9}}},
	}
	for name, d := range cases {
		if err := d.Normalize(base); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, d)
		}
	}
}

func TestNormalizeRejectsDoubleDelete(t *testing.T) {
	base := paperExample()
	h, err := Apply(base, &Delta{Deletes: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := (&Delta{Deletes: []uint32{1}}).Normalize(h); err == nil {
		t.Error("Normalize accepted a delete of an already-empty row")
	}
}

func TestApplyShape(t *testing.T) {
	base := paperExample()
	d := &Delta{
		Inserts: [][]uint32{{2, 3, 6}, {0, 5}},
		Deletes: []uint32{1},
	}
	h, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", h.NumEdges())
	}
	if h.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d, want 7 (vertex 6 inserted)", h.NumVertices())
	}
	// Deleted row is an in-place tombstone; survivors keep their IDs.
	if h.EdgeSize(1) != 0 {
		t.Errorf("deleted hyperedge 1 has size %d, want 0", h.EdgeSize(1))
	}
	if got := h.EdgeVertices(0); !reflect.DeepEqual(got, base.EdgeVertices(0)) {
		t.Errorf("surviving hyperedge 0 changed: %v", got)
	}
	// Inserts take the next IDs in batch order.
	if got := h.EdgeVertices(4); !reflect.DeepEqual(got, []uint32{2, 3, 6}) {
		t.Errorf("inserted hyperedge 4 = %v", got)
	}
	if got := h.EdgeVertices(5); !reflect.DeepEqual(got, []uint32{0, 5}) {
		t.Errorf("inserted hyperedge 5 = %v", got)
	}
}

func TestApplySharesNoStorage(t *testing.T) {
	base := paperExample()
	h, err := Apply(base, &Delta{Inserts: [][]uint32{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	eOffB, eAdjB, _, _ := base.CSR()
	eOffH, eAdjH, _, _ := h.CSR()
	if len(eAdjB) > 0 && len(eAdjH) > 0 && &eAdjB[0] == &eAdjH[0] {
		t.Error("Apply aliased the base eAdj array")
	}
	if &eOffB[0] == &eOffH[0] {
		t.Error("Apply aliased the base eOff array")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	base := paperExample()
	d := &Delta{
		Inserts: [][]uint32{{1, 4, 5}, {0, 3}},
		Deletes: []uint32{0, 3},
	}
	if err := d.Normalize(base); err != nil {
		t.Fatal(err)
	}
	inv := Invert(d, base)
	h1, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Apply(h1, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edgeSets(h2), edgeSets(base)) {
		t.Errorf("apply+invert changed the edge multiset:\nbase %v\ngot  %v", edgeSets(base), edgeSets(h2))
	}
}

func TestParseWireFormat(t *testing.T) {
	d, err := Parse([]byte(`{"inserts": [[0,3,7], [2,5]], "deletes": [12, 40]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inserts) != 2 || len(d.Deletes) != 2 {
		t.Fatalf("parsed %+v", d)
	}
	if _, err := Parse([]byte(`{"inserts": "nope"}`)); err == nil {
		t.Error("Parse accepted a non-array inserts field")
	}
}

// FuzzDeltaWire feeds arbitrary bytes through the /v2/ingest wire
// format: decoding must never panic, and any delta that normalizes
// against the example base must apply cleanly, produce a valid
// hypergraph, and round-trip through Invert back to the base's
// multiset of hyperedge vertex sets.
func FuzzDeltaWire(f *testing.F) {
	f.Add([]byte(`{"inserts": [[0,3,7]], "deletes": [1]}`))
	f.Add([]byte(`{"inserts": [[0,0,0]]}`))
	f.Add([]byte(`{"deletes": [0,1,2,3]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"inserts": [[4294967295]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(data)
		if err != nil {
			return
		}
		base := paperExample()
		if err := d.Normalize(base); err != nil {
			return
		}
		inv := Invert(d, base)
		h1, err := Apply(base, d)
		if err != nil {
			t.Fatalf("normalized delta failed to apply: %v", err)
		}
		if err := h1.Validate(); err != nil {
			t.Fatalf("applied hypergraph invalid: %v", err)
		}
		h2, err := Apply(h1, inv)
		if err != nil {
			t.Fatalf("inverse failed to apply: %v", err)
		}
		if !reflect.DeepEqual(edgeSets(h2), edgeSets(base)) {
			t.Fatalf("apply+invert diverged for %s", data)
		}
		// The canonical form must survive a JSON round trip.
		blob, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Parse(blob)
		if err != nil {
			t.Fatalf("re-parse of marshalled delta: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("wire round trip changed the delta: %+v vs %+v", d, d2)
		}
	})
}
