package hgio

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
)

// writeV1Binary synthesizes a version-1 file image (edge orientation
// only) for compatibility tests: magic, n/m/nnz, off u64[m+1],
// adj u32[nnz].
func writeV1Binary(h *hg.Hypergraph) []byte {
	eOff, eAdj, _, _ := h.CSR()
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	for _, v := range []uint64{uint64(h.NumVertices()), uint64(h.NumEdges()), uint64(len(eAdj))} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, o := range eOff {
		binary.Write(&buf, binary.LittleEndian, uint64(o))
	}
	binary.Write(&buf, binary.LittleEndian, eAdj)
	return buf.Bytes()
}

func sameHypergraph(t *testing.T, got, want *hg.Hypergraph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("dimensions: got %dx%d want %dx%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if !reflect.DeepEqual(got.EdgeSlices(), want.EdgeSlices()) {
		t.Fatal("edge orientation differs")
	}
	if !reflect.DeepEqual(got.Dual().EdgeSlices(), want.Dual().EdgeSlices()) {
		t.Fatal("vertex orientation differs")
	}
}

func TestMapBinaryMatchesReadBinary(t *testing.T) {
	h := paperExample()
	path := filepath.Join(t.TempDir(), "h.bin")
	if err := SaveBinary(path, h); err != nil {
		t.Fatal(err)
	}
	read, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, mapped, read)
	if !mapped.Mapped() {
		t.Error("MapBinary result not marked as mapped")
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal("second Close must be a nil no-op, got:", err)
	}
}

func TestMapBinaryV1File(t *testing.T) {
	h := paperExample()
	path := filepath.Join(t.TempDir(), "v1.bin")
	if err := os.WriteFile(path, writeV1Binary(h), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := MapBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	sameHypergraph(t, mapped, h)
}

func TestReadBinaryV1File(t *testing.T) {
	h := paperExample()
	got, err := ReadBinary(bytes.NewReader(writeV1Binary(h)))
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, got, h)
}

func TestLoadBinaryTruncated(t *testing.T) {
	h := paperExample()
	dir := t.TempDir()
	path := filepath.Join(dir, "h.bin")
	if err := SaveBinary(path, h); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(full) - 1, len(full) / 2, headerSize + 1, headerSize} {
		p := filepath.Join(dir, "trunc.bin")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBinary(p)
		if err == nil {
			t.Fatalf("accepted file truncated to %d bytes", cut)
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut=%d: error %q does not name truncation", cut, err)
		}
		if _, err := MapBinary(p); err == nil {
			t.Fatalf("MapBinary accepted file truncated to %d bytes", cut)
		}
	}
	// Trailing garbage must be rejected too.
	p := filepath.Join(dir, "long.bin")
	if err := os.WriteFile(p, append(full, 0xEE), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(p); err == nil {
		t.Error("accepted trailing bytes")
	}
	if _, err := MapBinary(p); err == nil {
		t.Error("MapBinary accepted trailing bytes")
	}
}

func TestMapBinaryRejectsCorruptOffsets(t *testing.T) {
	h := paperExample()
	dir := t.TempDir()
	path := filepath.Join(dir, "h.bin")
	if err := SaveBinary(path, h); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the final edge offset (same byte the ReadBinary test
	// pokes): MapBinary's offset-section validation must catch it.
	data[8+24+8*4+3] ^= 0xFF
	p := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapBinary(p); err == nil {
		t.Error("MapBinary accepted corrupt offsets")
	}
}

func TestMapFileDispatch(t *testing.T) {
	h := paperExample()
	dir := t.TempDir()
	bin := filepath.Join(dir, "h.bin")
	if err := SaveBinary(bin, h); err != nil {
		t.Fatal(err)
	}
	got, err := MapFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !got.Mapped() {
		t.Error("MapFile(.bin) did not map")
	}
	sameHypergraph(t, got, h)
}

func testGraph(squeeze bool) *graph.Graph {
	edges := []graph.Edge{
		{U: 2, V: 7, W: 3},
		{U: 2, V: 9, W: 1},
		{U: 7, V: 9, W: 2},
		{U: 4, V: 9, W: 5},
	}
	return graph.Build(12, edges, squeeze)
}

func TestCSRRoundTrip(t *testing.T) {
	for _, squeeze := range []bool{false, true} {
		g := testGraph(squeeze)
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCSR(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Edges(), g.Edges()) {
			t.Fatalf("squeeze=%v: csr round trip changed the edge set", squeeze)
		}
		if got.Squeezed() != g.Squeezed() {
			t.Fatalf("squeeze=%v: squeezed flag lost", squeeze)
		}
		if squeeze {
			for u := uint32(0); int(u) < g.NumNodes(); u++ {
				if got.OrigID(u) != g.OrigID(u) {
					t.Fatal("orig IDs changed")
				}
			}
		}
	}
}

func TestCSRFileHelpers(t *testing.T) {
	g := testGraph(true)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Edges(), g.Edges()) {
		t.Fatal("LoadCSR changed the edge set")
	}
	mapped, err := MapCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Error("MapCSR result not marked as mapped")
	}
	if !reflect.DeepEqual(mapped.Edges(), g.Edges()) {
		t.Fatal("MapCSR changed the edge set")
	}

	// Truncation and corruption are rejected.
	full, _ := os.ReadFile(path)
	bad := filepath.Join(dir, "bad.csr")
	if err := os.WriteFile(bad, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSR(bad); err == nil {
		t.Error("LoadCSR accepted a truncated file")
	}
	if _, err := MapCSR(bad); err == nil {
		t.Error("MapCSR accepted a truncated file")
	}
}

// benchHypergraph builds a dataset big enough that load-path
// differences dominate fixed costs.
func benchHypergraph(tb testing.TB) *hg.Hypergraph {
	r := rand.New(rand.NewSource(42))
	const edges, vertices = 20000, 8000
	slices := make([][]uint32, edges)
	for e := range slices {
		k := 2 + r.Intn(12)
		seen := make(map[uint32]bool, k)
		for len(seen) < k {
			seen[uint32(r.Intn(vertices))] = true
		}
		for v := range seen {
			slices[e] = append(slices[e], v)
		}
	}
	return hg.FromEdgeSlices(slices, vertices)
}

func benchBinaryPath(b *testing.B) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.bin")
	if err := SaveBinary(path, benchHypergraph(b)); err != nil {
		b.Fatal(err)
	}
	return path
}

func BenchmarkLoadBinary(b *testing.B) {
	path := benchBinaryPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadBinary(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapBinary(b *testing.B) {
	path := benchBinaryPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := MapBinary(path)
		if err != nil {
			b.Fatal(err)
		}
		h.Close()
	}
}
