// Package hgio reads and writes hypergraphs in three formats: the two
// common text encodings — incidence-pair lists ("edge vertex" per line,
// as KONECT-style bipartite graphs are distributed) and adjacency lists
// (one hyperedge per line, vertices space-separated, as Hygra and
// hMETIS-style formats use) — plus a compact binary CSR dump for large
// datasets where text parsing dominates load time. LoadFile and
// SaveFile dispatch on the path extension (".pairs", ".bin", anything
// else = adjacency).
package hgio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hyperline/internal/hg"
)

// ReadPairs parses an incidence-pair list: each non-empty line holds
// "edgeID vertexID" (whitespace separated). Lines starting with '#' or
// '%' are comments. IDs must be non-negative integers < 2³².
func ReadPairs(r io.Reader) (*hg.Hypergraph, error) {
	b := hg.NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("hgio: line %d: want 2 fields, got %d", line, len(fields))
		}
		e, err := parseID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("hgio: line %d: bad edge id: %v", line, err)
		}
		v, err := parseID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("hgio: line %d: bad vertex id: %v", line, err)
		}
		b.AddPair(e, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hgio: %v", err)
	}
	return b.Build(), nil
}

// WritePairs writes the incidence-pair encoding of h.
func WritePairs(w io.Writer, h *hg.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hyperline incidence pairs: %d edges, %d vertices\n",
		h.NumEdges(), h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		for _, v := range h.EdgeVertices(uint32(e)) {
			fmt.Fprintf(bw, "%d %d\n", e, v)
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses an adjacency encoding: line i lists the member
// vertices of hyperedge i, whitespace separated; empty lines denote
// empty hyperedges. '#'/'%' comment lines are skipped and do not count
// as hyperedges.
func ReadAdjacency(r io.Reader) (*hg.Hypergraph, error) {
	var edges [][]uint32
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text != "" && (text[0] == '#' || text[0] == '%') {
			continue
		}
		var verts []uint32
		for _, f := range strings.Fields(text) {
			v, err := parseID(f)
			if err != nil {
				return nil, fmt.Errorf("hgio: line %d: bad vertex id: %v", line, err)
			}
			verts = append(verts, v)
		}
		edges = append(edges, verts)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hgio: %v", err)
	}
	return hg.FromEdgeSlices(edges, 0), nil
}

// WriteAdjacency writes the adjacency encoding of h.
func WriteAdjacency(w io.Writer, h *hg.Hypergraph) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.EdgeVertices(uint32(e))
		for i, v := range vs {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(v), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a hypergraph from path, selecting the format by
// extension: ".pairs" for incidence pairs, ".bin" for the binary CSR
// format, anything else (".hgr", ".adj", ".txt") for adjacency lines.
func LoadFile(path string) (*hg.Hypergraph, error) {
	if strings.HasSuffix(path, ".bin") {
		return LoadBinary(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".pairs") {
		return ReadPairs(f)
	}
	return ReadAdjacency(f)
}

// SaveFile writes a hypergraph to path, selecting the format by
// extension as in LoadFile.
func SaveFile(path string, h *hg.Hypergraph) error {
	if strings.HasSuffix(path, ".bin") {
		return SaveBinary(path, h)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".pairs") {
		return WritePairs(f, h)
	}
	return WriteAdjacency(f, h)
}

func parseID(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}
