package hgio

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hyperline/internal/hg"
)

func TestBinaryRoundTrip(t *testing.T) {
	h := paperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != h.NumVertices() || got.NumEdges() != h.NumEdges() {
		t.Fatal("dimensions changed")
	}
	if !reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) {
		t.Fatal("binary round trip changed the hypergraph")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := make([][]uint32, r.Intn(30))
		for e := range edges {
			seen := map[uint32]bool{}
			for k := 0; k < r.Intn(8); k++ {
				seen[uint32(r.Intn(40))] = true
			}
			for v := range seen {
				edges[e] = append(edges[e], v)
			}
		}
		h := hg.FromEdgeSlices(edges, 40)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, h); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) &&
			got.NumVertices() == h.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________________"),
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
	// Valid magic but truncated header.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("accepted truncated header")
	}
}

// TestBinaryHugeHeaderFailsWithoutHugeAllocation feeds a tiny body
// whose header claims counts just under the sanity bound: the chunked
// readers must fail on EOF after a bounded allocation instead of
// attempting a count-sized one (ReadBinary is reachable from network
// uploads via hyperlined).
func TestBinaryHugeHeaderFailsWithoutHugeAllocation(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	huge := uint64(1 << 39)
	for _, v := range []uint64{huge, huge, huge} { // n, m, nnz
		binary.Write(&buf, binary.LittleEndian, v)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("accepted a hostile header")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ReadBinary did not fail fast on a hostile header")
	}
}

func TestBinaryRejectsCorruptOffsets(t *testing.T) {
	h := paperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the final offset (must equal nnz).
	data[8+24+8*4+3] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("accepted corrupt offsets")
	}
}

func TestBinaryRejectsOutOfRangeVertex(t *testing.T) {
	h := paperExample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Last 4 bytes are the final vertex ID; blow it out of range.
	data[len(data)-1] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("accepted out-of-range vertex")
	}
}

func TestBinaryFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.bin")
	h := paperExample()
	if err := SaveBinary(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) {
		t.Fatal("file round trip changed the hypergraph")
	}
}

func TestBinaryEmptyHypergraph(t *testing.T) {
	h := hg.FromEdgeSlices(nil, 0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 || got.NumVertices() != 0 {
		t.Fatal("empty round trip failed")
	}
}
