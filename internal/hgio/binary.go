package hgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"hyperline/internal/hg"
)

// Binary format: a compact little-endian CSR dump for large datasets
// where text parsing dominates load time.
//
//	magic   [8]byte  "HLBIN\x00\x00\x01"  (version 1)
//	n       uint64   number of vertices
//	m       uint64   number of hyperedges
//	nnz     uint64   number of incidences
//	off     [m+1]uint64   edge offsets
//	adj     [nnz]uint32   vertex IDs, sorted per edge
var binaryMagic = [8]byte{'H', 'L', 'B', 'I', 'N', 0, 0, 1}

// WriteBinary writes h in the hyperline binary CSR format.
func WriteBinary(w io.Writer, h *hg.Hypergraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	m := h.NumEdges()
	header := []uint64{uint64(h.NumVertices()), uint64(m), uint64(h.Incidences())}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var off uint64
	if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
		return err
	}
	for e := 0; e < m; e++ {
		off += uint64(h.EdgeSize(uint32(e)))
		if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
			return err
		}
	}
	buf := make([]byte, 4)
	for e := 0; e < m; e++ {
		for _, v := range h.EdgeVertices(uint32(e)) {
			binary.LittleEndian.PutUint32(buf, v)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a hypergraph in the hyperline binary CSR format.
func ReadBinary(r io.Reader) (*hg.Hypergraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("hgio: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("hgio: bad magic %q", magic[:])
	}
	var n, m, nnz uint64
	for _, p := range []*uint64{&n, &m, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("hgio: reading header: %w", err)
		}
	}
	const sanity = 1 << 40
	if n > sanity || m > sanity || nnz > sanity {
		return nil, fmt.Errorf("hgio: implausible header (n=%d m=%d nnz=%d)", n, m, nnz)
	}
	off, err := readUint64s(br, m+1)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading offsets: %w", err)
	}
	if off[0] != 0 || off[m] != nnz {
		return nil, fmt.Errorf("hgio: corrupt offsets [%d..%d], want [0..%d]", off[0], off[m], nnz)
	}
	adj, err := readUint32s(br, nnz)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading adjacency: %w", err)
	}
	b := hg.NewBuilder(int(nnz))
	for e := uint64(0); e < m; e++ {
		if off[e] > off[e+1] || off[e+1] > nnz {
			return nil, fmt.Errorf("hgio: corrupt offset at edge %d", e)
		}
		for k := off[e]; k < off[e+1]; k++ {
			if uint64(adj[k]) >= n {
				return nil, fmt.Errorf("hgio: vertex %d out of range (n=%d)", adj[k], n)
			}
			b.AddPair(uint32(e), adj[k])
		}
	}
	h, err := b.BuildWithSize(int(m), int(n))
	if err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	return h, nil
}

// binaryReadChunk bounds how many elements a single binary.Read decodes
// at once. Reading in chunks keeps allocation proportional to the bytes
// actually present in the stream: a corrupt (or hostile) header claiming
// astronomical counts fails with an EOF after one small chunk instead of
// attempting one count-sized allocation up front. This matters now that
// ReadBinary is reachable from network uploads, not just local files.
const binaryReadChunk = 1 << 16

// readUint64s reads n little-endian uint64 values in bounded chunks.
func readUint64s(r io.Reader, n uint64) ([]uint64, error) {
	out := make([]uint64, 0, min(n, binaryReadChunk))
	buf := make([]uint64, binaryReadChunk)
	for uint64(len(out)) < n {
		c := min(n-uint64(len(out)), binaryReadChunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, err
		}
		out = append(out, buf[:c]...)
	}
	return out, nil
}

// readUint32s reads n little-endian uint32 values in bounded chunks.
func readUint32s(r io.Reader, n uint64) ([]uint32, error) {
	out := make([]uint32, 0, min(n, binaryReadChunk))
	buf := make([]uint32, binaryReadChunk)
	for uint64(len(out)) < n {
		c := min(n-uint64(len(out)), binaryReadChunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:c]); err != nil {
			return nil, err
		}
		out = append(out, buf[:c]...)
	}
	return out, nil
}

// SaveBinary writes h to path in the binary format.
func SaveBinary(path string, h *hg.Hypergraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBinary(f, h)
}

// LoadBinary reads a hypergraph from a binary-format file.
func LoadBinary(path string) (*hg.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
