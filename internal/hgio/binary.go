package hgio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"hyperline/internal/hg"
)

// Binary format: a compact little-endian CSR dump for large datasets
// where text parsing dominates load time. Version 2 is mmap-native: it
// stores both CSR orientations, 8-byte aligned, so MapBinary can alias
// the file's arrays directly as hg.Hypergraph slices with zero parsing
// and zero copying.
//
//	magic   [8]byte  "HLBIN\x00\x00\x02"  (version 2)
//	n       uint64   number of vertices
//	m       uint64   number of hyperedges
//	nnz     uint64   number of incidences
//	eOff    [m+1]int64    edge→vertices row offsets
//	eAdj    [nnz]uint32   vertex IDs, sorted per edge
//	pad     [0|4]byte     zeros, aligning vOff to 8 bytes
//	vOff    [n+1]int64    vertex→edges row offsets
//	vAdj    [nnz]uint32   edge IDs, sorted per vertex
//
// Version 1 (still readable) stored only the edge orientation with
// uint64 offsets:
//
//	magic   [8]byte  "HLBIN\x00\x00\x01"
//	n, m, nnz as above
//	off     [m+1]uint64
//	adj     [nnz]uint32
var (
	binaryMagic   = [8]byte{'H', 'L', 'B', 'I', 'N', 0, 0, 1}
	binaryMagicV2 = [8]byte{'H', 'L', 'B', 'I', 'N', 0, 0, 2}
)

// binHeader is the decoded fixed-size prefix of a binary file.
type binHeader struct {
	version byte
	n, m    uint64
	nnz     uint64
}

// headerSize is the byte length of magic + counts, identical in both
// versions.
const headerSize = 8 + 3*8

// expectedSize returns the exact byte length of a well-formed file with
// this header.
func (h binHeader) expectedSize() int64 {
	edge := 8*(int64(h.m)+1) + 4*int64(h.nnz)
	if h.version == 1 {
		return headerSize + edge
	}
	return headerSize + edge + pad4(h.nnz) + 8*(int64(h.n)+1) + 4*int64(h.nnz)
}

// pad4 is the number of padding bytes after the eAdj section: 4 when
// nnz is odd, so the vOff section lands on an 8-byte boundary.
func pad4(nnz uint64) int64 {
	if nnz%2 == 1 {
		return 4
	}
	return 0
}

// WriteBinary writes h in the current (version 2, mmap-native) binary
// CSR format.
func WriteBinary(w io.Writer, h *hg.Hypergraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagicV2[:]); err != nil {
		return err
	}
	eOff, eAdj, vOff, vAdj := h.CSR()
	header := []uint64{uint64(h.NumVertices()), uint64(h.NumEdges()), uint64(len(eAdj))}
	var scratch [8]byte
	for _, v := range header {
		binary.LittleEndian.PutUint64(scratch[:], v)
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	if err := writeInt64s(bw, eOff); err != nil {
		return err
	}
	if err := writeUint32s(bw, eAdj); err != nil {
		return err
	}
	if pad4(uint64(len(eAdj))) != 0 {
		if _, err := bw.Write([]byte{0, 0, 0, 0}); err != nil {
			return err
		}
	}
	if err := writeInt64s(bw, vOff); err != nil {
		return err
	}
	if err := writeUint32s(bw, vAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a hypergraph in the hyperline binary CSR format
// (either version). The vertex orientation of a version-2 stream is
// derived from the edge orientation and then compared byte-for-byte
// with the stored one, so a corrupt or hostile body can never yield an
// internally inconsistent hypergraph.
func ReadBinary(r io.Reader) (*hg.Hypergraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return readBody(br, hdr)
}

// readHeader decodes and sanity-checks the fixed-size prefix.
func readHeader(r io.Reader) (binHeader, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return binHeader{}, fmt.Errorf("hgio: reading magic: %w", err)
	}
	var hdr binHeader
	switch magic {
	case binaryMagic:
		hdr.version = 1
	case binaryMagicV2:
		hdr.version = 2
	default:
		return binHeader{}, fmt.Errorf("hgio: bad magic %q", magic[:])
	}
	for _, p := range []*uint64{&hdr.n, &hdr.m, &hdr.nnz} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return binHeader{}, fmt.Errorf("hgio: reading header: %w", err)
		}
	}
	const sanity = 1 << 40
	if hdr.n > sanity || hdr.m > sanity || hdr.nnz > sanity {
		return binHeader{}, fmt.Errorf("hgio: implausible header (n=%d m=%d nnz=%d)", hdr.n, hdr.m, hdr.nnz)
	}
	return hdr, nil
}

// readBody reads everything after the header.
func readBody(r io.Reader, hdr binHeader) (*hg.Hypergraph, error) {
	if hdr.version == 1 {
		return readBodyV1(r, hdr)
	}
	return readBodyV2(r, hdr)
}

// readBodyV1 reads a version-1 body through the incidence builder,
// which reconstructs the vertex orientation.
func readBodyV1(r io.Reader, hdr binHeader) (*hg.Hypergraph, error) {
	n, m, nnz := hdr.n, hdr.m, hdr.nnz
	off, err := readUint64s(r, m+1)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading offsets: %w", err)
	}
	if off[0] != 0 || off[m] != nnz {
		return nil, fmt.Errorf("hgio: corrupt offsets [%d..%d], want [0..%d]", off[0], off[m], nnz)
	}
	adj, err := readUint32s(r, nnz)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading adjacency: %w", err)
	}
	b := hg.NewBuilder(int(nnz))
	for e := uint64(0); e < m; e++ {
		if off[e] > off[e+1] || off[e+1] > nnz {
			return nil, fmt.Errorf("hgio: corrupt offset at edge %d", e)
		}
		for k := off[e]; k < off[e+1]; k++ {
			if uint64(adj[k]) >= n {
				return nil, fmt.Errorf("hgio: vertex %d out of range (n=%d)", adj[k], n)
			}
			b.AddPair(uint32(e), adj[k])
		}
	}
	h, err := b.BuildWithSize(int(m), int(n))
	if err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	return h, nil
}

// readBodyV2 reads a version-2 body. The edge orientation is validated
// structurally (monotone offsets, in-range sorted rows); the vertex
// orientation is derived from it by counting sort and must match the
// stored bytes exactly, which makes the whole tail an integrity check.
func readBodyV2(r io.Reader, hdr binHeader) (*hg.Hypergraph, error) {
	n, m, nnz := hdr.n, hdr.m, hdr.nnz
	eOff, err := readInt64s(r, m+1)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading edge offsets: %w", err)
	}
	if err := validateEdgeCSR(eOff, nil, n, nnz); err != nil {
		return nil, err
	}
	eAdj, err := readUint32s(r, nnz)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading edge adjacency: %w", err)
	}
	if err := validateEdgeCSR(eOff, eAdj, n, nnz); err != nil {
		return nil, err
	}
	if pad4(nnz) != 0 {
		var padBuf [4]byte
		if _, err := io.ReadFull(r, padBuf[:]); err != nil {
			return nil, fmt.Errorf("hgio: reading padding: %w", err)
		}
	}
	vOff, vAdj := deriveVertexCSR(eOff, eAdj, n)
	storedVOff, err := readInt64s(r, n+1)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading vertex offsets: %w", err)
	}
	storedVAdj, err := readUint32s(r, nnz)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading vertex adjacency: %w", err)
	}
	if !int64sEqual(vOff, storedVOff) || !uint32sEqual(vAdj, storedVAdj) {
		return nil, fmt.Errorf("hgio: vertex orientation inconsistent with edge orientation")
	}
	h, err := hg.FromCSR(int(m), int(n), eOff, eAdj, vOff, vAdj)
	if err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	return h, nil
}

// validateEdgeCSR checks the edge orientation structurally. With adj
// nil only the offsets are checked (monotone, right endpoints); with
// adj present each row must be strictly sorted with IDs < n.
func validateEdgeCSR(off []int64, adj []uint32, n, nnz uint64) error {
	m := len(off) - 1
	if off[0] != 0 || off[m] != int64(nnz) {
		return fmt.Errorf("hgio: corrupt offsets [%d..%d], want [0..%d]", off[0], off[m], nnz)
	}
	for e := 0; e < m; e++ {
		if off[e] > off[e+1] {
			return fmt.Errorf("hgio: corrupt offset at edge %d", e)
		}
	}
	if adj == nil {
		return nil
	}
	for e := 0; e < m; e++ {
		row := adj[off[e]:off[e+1]]
		for i, v := range row {
			if uint64(v) >= n {
				return fmt.Errorf("hgio: vertex %d out of range (n=%d)", v, n)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("hgio: edge %d row not strictly sorted", e)
			}
		}
	}
	return nil
}

// deriveVertexCSR builds the vertex orientation from the edge
// orientation by counting sort. Scanning edges in ascending order
// yields sorted rows, exactly as hg.Builder produces them.
func deriveVertexCSR(eOff []int64, eAdj []uint32, n uint64) ([]int64, []uint32) {
	m := len(eOff) - 1
	vOff := make([]int64, n+1)
	for _, v := range eAdj {
		vOff[v+1]++
	}
	for v := uint64(0); v < n; v++ {
		vOff[v+1] += vOff[v]
	}
	vAdj := make([]uint32, len(eAdj))
	cursor := make([]int64, n)
	copy(cursor, vOff[:n])
	for e := 0; e < m; e++ {
		for _, v := range eAdj[eOff[e]:eOff[e+1]] {
			vAdj[cursor[v]] = uint32(e)
			cursor[v]++
		}
	}
	return vOff, vAdj
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uint32sEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// binaryReadChunk bounds how many elements a single read decodes at
// once. Reading in chunks keeps allocation proportional to the bytes
// actually present in the stream: a corrupt (or hostile) header
// claiming astronomical counts fails with an EOF after one small chunk
// instead of attempting one count-sized allocation up front. This
// matters now that ReadBinary is reachable from network uploads, not
// just local files.
const binaryReadChunk = 1 << 16

// readUint64s reads n little-endian uint64 values in bounded chunks.
func readUint64s(r io.Reader, n uint64) ([]uint64, error) {
	out := make([]uint64, 0, min(n, binaryReadChunk))
	buf := make([]byte, 8*binaryReadChunk)
	for uint64(len(out)) < n {
		c := min(n-uint64(len(out)), binaryReadChunk)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return out, nil
}

// readInt64s reads n little-endian int64 values in bounded chunks.
func readInt64s(r io.Reader, n uint64) ([]int64, error) {
	out := make([]int64, 0, min(n, binaryReadChunk))
	buf := make([]byte, 8*binaryReadChunk)
	for uint64(len(out)) < n {
		c := min(n-uint64(len(out)), binaryReadChunk)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}

// readUint32s reads n little-endian uint32 values in bounded chunks.
func readUint32s(r io.Reader, n uint64) ([]uint32, error) {
	out := make([]uint32, 0, min(n, binaryReadChunk))
	buf := make([]byte, 4*binaryReadChunk)
	for uint64(len(out)) < n {
		c := min(n-uint64(len(out)), binaryReadChunk)
		if _, err := io.ReadFull(r, buf[:4*c]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return out, nil
}

// writeInt64s writes values little-endian in bounded chunks.
func writeInt64s(w io.Writer, vals []int64) error {
	buf := make([]byte, 8*min(uint64(len(vals)), binaryReadChunk))
	for len(vals) > 0 {
		c := int(min(uint64(len(vals)), binaryReadChunk))
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(vals[i]))
		}
		if _, err := w.Write(buf[:8*c]); err != nil {
			return err
		}
		vals = vals[c:]
	}
	return nil
}

// writeUint32s writes values little-endian in bounded chunks.
func writeUint32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*min(uint64(len(vals)), binaryReadChunk))
	for len(vals) > 0 {
		c := int(min(uint64(len(vals)), binaryReadChunk))
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], vals[i])
		}
		if _, err := w.Write(buf[:4*c]); err != nil {
			return err
		}
		vals = vals[c:]
	}
	return nil
}

// SaveBinary writes h to path in the binary format.
func SaveBinary(path string, h *hg.Hypergraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBinary(f, h)
}

// LoadBinary reads a hypergraph from a binary-format file. The file is
// pre-stat'ed and its size checked against the exact length the header
// implies, so a truncated file fails up front with a clear error
// instead of a confusing mid-array EOF.
func LoadBinary(path string) (*hg.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := checkFileSize(path, st.Size(), hdr); err != nil {
		return nil, err
	}
	h, err := readBody(br, hdr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

// checkFileSize compares a binary file's on-disk size with the exact
// size its header implies.
func checkFileSize(path string, size int64, hdr binHeader) error {
	want := hdr.expectedSize()
	switch {
	case size < want:
		return fmt.Errorf("hgio: %s: truncated binary file: have %d bytes, want %d (v%d, n=%d m=%d nnz=%d)",
			path, size, want, hdr.version, hdr.n, hdr.m, hdr.nnz)
	case size > want:
		return fmt.Errorf("hgio: %s: binary file has %d trailing bytes (have %d, want %d)",
			path, size-want, size, want)
	}
	return nil
}
