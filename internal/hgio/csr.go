package hgio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"hyperline/internal/graph"
)

// CSR format: the Stage-4 s-line graph persisted as its flat arrays,
// mmap-native like the version-2 hypergraph format, so materialized
// projections can be spilled to disk and remapped without a rebuild.
//
//	magic  [8]byte  "HLCSR\x00\x00\x01"
//	nodes  uint64   node count (post-squeeze)
//	edges  uint64   undirected edge count
//	flags  uint64   bit 0: an orig (pre-squeeze ID) section follows
//	off    [nodes+1]int64    row offsets (8-aligned: header is 32 bytes)
//	adj    [2*edges]uint32   sorted neighbor IDs per row
//	wgt    [2*edges]uint32   parallel edge weights (overlap sizes)
//	orig   [nodes]uint32     pre-squeeze node IDs, when flags bit 0
var csrMagic = [8]byte{'H', 'L', 'C', 'S', 'R', 0, 0, 1}

// csrFlagOrig marks a trailing orig section.
const csrFlagOrig = 1

// csrHeader is the decoded fixed-size prefix of a CSR stream.
type csrHeader struct {
	nodes, edges uint64
	flags        uint64
}

func (h csrHeader) expectedSize() int64 {
	size := int64(headerSize) + 8*(int64(h.nodes)+1) + 2*4*2*int64(h.edges)
	if h.flags&csrFlagOrig != 0 {
		size += 4 * int64(h.nodes)
	}
	return size
}

// WriteCSR writes g in the CSR graph format.
func WriteCSR(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	off, adj, wgt, orig := g.CSR()
	flags := uint64(0)
	if orig != nil {
		flags |= csrFlagOrig
	}
	var scratch [8]byte
	for _, v := range []uint64{uint64(g.NumNodes()), uint64(g.NumEdges()), flags} {
		binary.LittleEndian.PutUint64(scratch[:], v)
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	if err := writeInt64s(bw, off); err != nil {
		return err
	}
	if err := writeUint32s(bw, adj); err != nil {
		return err
	}
	if err := writeUint32s(bw, wgt); err != nil {
		return err
	}
	if orig != nil {
		if err := writeUint32s(bw, orig); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readCSRHeader decodes and sanity-checks the fixed-size prefix.
func readCSRHeader(r io.Reader) (csrHeader, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return csrHeader{}, fmt.Errorf("hgio: reading csr magic: %w", err)
	}
	if magic != csrMagic {
		return csrHeader{}, fmt.Errorf("hgio: bad csr magic %q", magic[:])
	}
	var hdr csrHeader
	for _, p := range []*uint64{&hdr.nodes, &hdr.edges, &hdr.flags} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return csrHeader{}, fmt.Errorf("hgio: reading csr header: %w", err)
		}
	}
	const sanity = 1 << 40
	if hdr.nodes > sanity || hdr.edges > sanity {
		return csrHeader{}, fmt.Errorf("hgio: implausible csr header (nodes=%d edges=%d)", hdr.nodes, hdr.edges)
	}
	if hdr.flags&^uint64(csrFlagOrig) != 0 {
		return csrHeader{}, fmt.Errorf("hgio: unknown csr flags %#x", hdr.flags)
	}
	return hdr, nil
}

// ReadCSR reads a graph in the CSR format, validating the offset
// structure (adjacency content is checked by graph.FromCSR's frame
// invariants only, as with the hypergraph readers).
func ReadCSR(r io.Reader) (*graph.Graph, error) {
	hdr, err := readCSRHeader(r)
	if err != nil {
		return nil, err
	}
	return readCSRBody(r, hdr)
}

func readCSRBody(r io.Reader, hdr csrHeader) (*graph.Graph, error) {
	off, err := readInt64s(r, hdr.nodes+1)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading csr offsets: %w", err)
	}
	adjLen := 2 * hdr.edges
	if off[0] != 0 || off[hdr.nodes] != int64(adjLen) {
		return nil, fmt.Errorf("hgio: corrupt csr offsets [%d..%d], want [0..%d]", off[0], off[hdr.nodes], adjLen)
	}
	for i := uint64(0); i < hdr.nodes; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("hgio: corrupt csr offset at node %d", i)
		}
	}
	adj, err := readUint32s(r, adjLen)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading csr adjacency: %w", err)
	}
	wgt, err := readUint32s(r, adjLen)
	if err != nil {
		return nil, fmt.Errorf("hgio: reading csr weights: %w", err)
	}
	var orig []uint32
	if hdr.flags&csrFlagOrig != 0 {
		if orig, err = readUint32s(r, hdr.nodes); err != nil {
			return nil, fmt.Errorf("hgio: reading csr orig ids: %w", err)
		}
	}
	g, err := graph.FromCSR(int(hdr.nodes), int(hdr.edges), off, adj, wgt, orig)
	if err != nil {
		return nil, fmt.Errorf("hgio: %w", err)
	}
	return g, nil
}

// SaveCSR writes g to path in the CSR format.
func SaveCSR(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSR(f, g)
}

// LoadCSR reads a CSR-format graph from a file, pre-stat'ing the size
// against the header like LoadBinary.
func LoadCSR(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	hdr, err := readCSRHeader(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if want := hdr.expectedSize(); st.Size() != want {
		return nil, fmt.Errorf("hgio: %s: csr file size %d, want %d (nodes=%d edges=%d)",
			path, st.Size(), want, hdr.nodes, hdr.edges)
	}
	g, err := readCSRBody(br, hdr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// MapCSR maps a CSR-format graph file, aliasing its arrays zero-copy
// exactly as MapBinary does for hypergraphs: Stage-4 outputs persisted
// with SaveCSR come back in O(pages touched), own their mapping, and
// unmap on Close or GC. Validation covers the offset section only.
func MapCSR(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("hgio: %s: truncated csr file: have %d bytes, want at least %d",
			path, st.Size(), headerSize)
	}
	data, release, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	g, err := mapCSRData(path, data, st.Size())
	if err != nil {
		release()
		return nil, err
	}
	g.SetReleaser(release)
	return g, nil
}

// mapCSRData builds a graph over an already-mapped file image.
func mapCSRData(path string, data []byte, size int64) (*graph.Graph, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return nil, fmt.Errorf("hgio: %s: mapping is not 8-byte aligned", path)
	}
	hdr, err := readCSRHeader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if want := hdr.expectedSize(); size != want {
		return nil, fmt.Errorf("hgio: %s: csr file size %d, want %d (nodes=%d edges=%d)",
			path, size, want, hdr.nodes, hdr.edges)
	}
	nodes, adjLen := int64(hdr.nodes), 2*int64(hdr.edges)
	pos := int64(headerSize)
	off := asInt64s(data, pos, nodes+1)
	pos += 8 * (nodes + 1)
	if off[0] != 0 || off[nodes] != adjLen {
		return nil, fmt.Errorf("hgio: %s: corrupt csr offsets [%d..%d], want [0..%d]", path, off[0], off[nodes], adjLen)
	}
	for i := int64(0); i < nodes; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("hgio: %s: corrupt csr offset at node %d", path, i)
		}
	}
	adj := asUint32s(data, pos, adjLen)
	pos += 4 * adjLen
	wgt := asUint32s(data, pos, adjLen)
	pos += 4 * adjLen
	var orig []uint32
	if hdr.flags&csrFlagOrig != 0 {
		orig = asUint32s(data, pos, nodes)
	}
	g, err := graph.FromCSR(int(hdr.nodes), int(hdr.edges), off, adj, wgt, orig)
	if err != nil {
		return nil, fmt.Errorf("hgio: %s: %w", path, err)
	}
	return g, nil
}
