//go:build linux

package hgio

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hyperline/internal/hg"
)

// The out-of-core claim, measured: mapping a .bin dataset must not make
// the process resident-set grow by anything near the file size, while
// the copying loader must pay for the whole thing. Each strategy runs
// in a re-exec'd child so it gets a fresh address space and an
// unpolluted VmHWM high-water mark.

const (
	rssModeEnv = "HGIO_RSS_MODE" // "map" or "load"
	rssPathEnv = "HGIO_RSS_PATH"
)

// vmHWM reads the process peak resident set in KiB from /proc.
func vmHWM(t *testing.T) int64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				t.Fatalf("parsing VmHWM from %q: %v", line, err)
			}
			return kb
		}
	}
	t.Fatal("no VmHWM in /proc/self/status")
	return 0
}

// TestRSSChild is the re-exec target: it opens the dataset named by the
// environment with the requested strategy, touches a sparse sample of
// edges (so the mapping actually faults pages the way a query would),
// and reports how much the peak RSS grew.
func TestRSSChild(t *testing.T) {
	mode := os.Getenv(rssModeEnv)
	if mode == "" {
		t.Skip("re-exec helper; driven by TestMapBinaryRSSBelowFileSize")
	}
	path := os.Getenv(rssPathEnv)
	base := vmHWM(t)

	var h interface {
		NumEdges() int
		EdgeVertices(uint32) []uint32
		Close() error
	}
	var err error
	switch mode {
	case "map":
		h, err = MapBinary(path)
	case "load":
		h, err = LoadBinary(path)
	default:
		t.Fatalf("bad mode %q", mode)
	}
	if err != nil {
		t.Fatal(err)
	}
	var touched uint64
	for e := 0; e < h.NumEdges(); e += 512 {
		for _, v := range h.EdgeVertices(uint32(e)) {
			touched += uint64(v)
		}
	}
	fmt.Printf("RSS_DELTA_KB=%d TOUCHED=%d\n", vmHWM(t)-base, touched)
	h.Close()
}

func TestMapBinaryRSSBelowFileSize(t *testing.T) {
	if testing.Short() {
		t.Skip("writes and loads a multi-MB dataset")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "big.bin")
	// ~500k edges x ~20 incidences each: a file in the tens of MB, big
	// enough that runtime noise (a few MB) cannot blur the comparison.
	// Runs of consecutive vertices keep generation cheap — RSS does not
	// care about the topology.
	const edges, vertices = 500_000, 200_000
	slices := make([][]uint32, edges)
	for e := range slices {
		k := 10 + e%20
		start := uint32(e % (vertices - k))
		s := make([]uint32, k)
		for i := range s {
			s[i] = start + uint32(i)
		}
		slices[e] = s
	}
	if err := SaveBinary(path, hg.FromEdgeSlices(slices, vertices)); err != nil {
		t.Fatal(err)
	}
	slices = nil
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fileKB := info.Size() / 1024
	if fileKB < 10_000 {
		t.Fatalf("generated dataset only %d KB; too small for a meaningful RSS bound", fileKB)
	}

	deltaKB := func(mode string) int64 {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run=^TestRSSChild$", "-test.v")
		cmd.Env = append(os.Environ(), rssModeEnv+"="+mode, rssPathEnv+"="+path)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s child: %v\n%s", mode, err, out)
		}
		m := regexp.MustCompile(`RSS_DELTA_KB=(\d+)`).FindSubmatch(out)
		if m == nil {
			t.Fatalf("%s child printed no RSS delta:\n%s", mode, out)
		}
		kb, _ := strconv.ParseInt(string(m[1]), 10, 64)
		return kb
	}
	mapKB := deltaKB("map")
	loadKB := deltaKB("load")
	t.Logf("file %d KB, map ΔRSS %d KB, load ΔRSS %d KB", fileKB, mapKB, loadKB)

	// The mapping strategy must keep peak RSS growth below the on-disk
	// size (it only faults the offset arrays it validates plus the
	// sampled pages); the copying strategy must pay at least the file.
	if mapKB >= fileKB {
		t.Fatalf("MapBinary grew RSS by %d KB >= file size %d KB: not out-of-core", mapKB, fileKB)
	}
	if loadKB < fileKB/2 {
		t.Fatalf("LoadBinary grew RSS by only %d KB for a %d KB file: the control is broken", loadKB, fileKB)
	}
	if mapKB*2 >= loadKB {
		t.Fatalf("MapBinary ΔRSS %d KB not clearly below LoadBinary ΔRSS %d KB", mapKB, loadKB)
	}
}
