package hgio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
)

func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

func TestPairsRoundTrip(t *testing.T) {
	h := paperExample()
	var buf bytes.Buffer
	if err := WritePairs(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) {
		t.Fatal("pairs round trip changed the hypergraph")
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	h := paperExample()
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) {
		t.Fatal("adjacency round trip changed the hypergraph")
	}
}

func TestReadPairsCommentsAndBlank(t *testing.T) {
	in := "# comment\n% other comment\n\n0 1\n0 2\n1 2\n"
	h, err := ReadPairs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.NumVertices() != 3 {
		t.Fatalf("got %d edges, %d vertices", h.NumEdges(), h.NumVertices())
	}
}

func TestReadPairsErrors(t *testing.T) {
	for _, in := range []string{"0\n", "0 1 2\n", "x 1\n", "0 y\n", "-1 2\n"} {
		if _, err := ReadPairs(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadAdjacencyEmptyEdges(t *testing.T) {
	in := "1 2 3\n\n4\n"
	h, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", h.NumEdges())
	}
	if h.EdgeSize(1) != 0 {
		t.Fatal("edge 1 should be empty")
	}
}

func TestReadAdjacencyBadVertex(t *testing.T) {
	if _, err := ReadAdjacency(strings.NewReader("1 foo\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := paperExample()
	for _, name := range []string{"h.pairs", "h.hgr", "h.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, h); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices()) {
			t.Fatalf("%s round trip changed the hypergraph", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.pairs")); !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := make([][]uint32, 1+r.Intn(20))
		for e := range edges {
			seen := map[uint32]bool{}
			for k := 0; k < 1+r.Intn(6); k++ {
				seen[uint32(r.Intn(15))] = true
			}
			for v := range seen {
				edges[e] = append(edges[e], v)
			}
		}
		h := hg.FromEdgeSlices(edges, 15)
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, h); err != nil {
			return false
		}
		got, err := ReadAdjacency(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.EdgeSlices(), h.EdgeSlices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
