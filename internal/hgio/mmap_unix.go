//go:build unix

package hgio

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release
// function unmaps; it must be called exactly once (the Map* callers
// route it through a sync.Once-guarded backing). A zero size yields an
// empty mapping with a no-op release.
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > int64(maxInt) {
		return nil, nil, fmt.Errorf("hgio: file too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("hgio: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

const maxInt = int(^uint(0) >> 1)
