package hgio

import (
	"bytes"
	"testing"

	"hyperline/internal/hg"
)

// maxFuzzDigits bounds the IDs text-loader fuzz inputs may contain
// (≤ 5 digits → IDs ≤ 99999). The loaders intentionally accept any
// uint32, but a fuzzed max ID drives the size of the CSR the builder
// allocates, so unconstrained inputs turn the fuzzer into an OOM
// generator instead of a parser exerciser. Overflow handling of huge
// literals stays covered by the explicit seeds in the example-based
// tests.
const maxFuzzDigits = 5

// digitRunTooLong reports whether data contains a run of more than
// maxFuzzDigits ASCII digits.
func digitRunTooLong(data []byte) bool {
	run := 0
	for _, b := range data {
		if b >= '0' && b <= '9' {
			if run++; run > maxFuzzDigits {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// canonicalBytes serializes a hypergraph to its binary form, the
// equality witness for round-trip checks.
func canonicalBytes(t *testing.T, h *hg.Hypergraph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteBinary(&b, h); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return b.Bytes()
}

// FuzzReadAdjacency fuzzes the adjacency-lines loader (the default
// format of PUT /v1/datasets uploads). Invariants: no panic; on
// success, writing the hypergraph back out and re-reading it is a
// fixed point (identical binary serialization).
func FuzzReadAdjacency(f *testing.F) {
	for _, seed := range []string{
		"0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n",
		"", "\n", "# comment\n% comment\n0\n", "0 0 0\n", "7\n\n7\n",
		"1 2\tx\n", "99999\n", "0 1\r\n2 3\r\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if digitRunTooLong(data) {
			t.Skip("ID beyond fuzz bound")
		}
		h, err := ReadAdjacency(bytes.NewReader(data))
		if err != nil {
			return
		}
		want := canonicalBytes(t, h)
		var text bytes.Buffer
		if err := WriteAdjacency(&text, h); err != nil {
			t.Fatalf("WriteAdjacency after successful read: %v", err)
		}
		h2, err := ReadAdjacency(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written adjacency: %v", err)
		}
		if !bytes.Equal(canonicalBytes(t, h2), want) {
			t.Fatalf("adjacency round trip changed the hypergraph")
		}
	})
}

// FuzzReadPairs fuzzes the incidence-pair loader. Same invariants as
// FuzzReadAdjacency.
func FuzzReadPairs(f *testing.F) {
	for _, seed := range []string{
		"0 0\n0 1\n1 1\n1 2\n",
		"", "# c\n% c\n", "5 1\n", "0 1 2\n", "x y\n", "0\n",
		"3 99999\n", "0 1\n0 1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if digitRunTooLong(data) {
			t.Skip("ID beyond fuzz bound")
		}
		h, err := ReadPairs(bytes.NewReader(data))
		if err != nil {
			return
		}
		want := canonicalBytes(t, h)
		var text bytes.Buffer
		if err := WritePairs(&text, h); err != nil {
			t.Fatalf("WritePairs after successful read: %v", err)
		}
		h2, err := ReadPairs(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written pairs: %v", err)
		}
		if !bytes.Equal(canonicalBytes(t, h2), want) {
			t.Fatalf("pairs round trip changed the hypergraph")
		}
	})
}

// FuzzReadBinary fuzzes the binary CSR loader, which is reachable from
// network uploads (format=bin). Invariants: no panic, allocation
// bounded by the actual stream (the chunked readers), and on success
// the re-serialization is a fixed point.
func FuzzReadBinary(f *testing.F) {
	valid := func(edges [][]uint32, n int) []byte {
		var b bytes.Buffer
		if err := WriteBinary(&b, hg.FromEdgeSlices(edges, n)); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(valid([][]uint32{{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5}}, 6))
	f.Add(valid(nil, 0))
	f.Add(valid([][]uint32{{0}}, 1))
	// Truncations and corruptions of a valid stream.
	v := valid([][]uint32{{0, 1}, {1, 2}}, 3)
	f.Add(v[:8])
	f.Add(v[:len(v)-2])
	corrupt := append([]byte(nil), v...)
	corrupt[10] ^= 0xff // header byte
	f.Add(corrupt)
	f.Add([]byte("HLBIN\x00\x00\x01"))
	f.Add([]byte("not binary at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		want := canonicalBytes(t, h)
		h2, err := ReadBinary(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("re-reading canonical binary: %v", err)
		}
		if !bytes.Equal(canonicalBytes(t, h2), want) {
			t.Fatalf("binary round trip changed the hypergraph")
		}
	})
}
