//go:build !unix

package hgio

import (
	"fmt"
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap falls back to reading the
// whole file into the heap. Map* loaders still work — they just lose
// the out-of-core property (load is O(file) instead of O(pages
// touched)). The release function is a no-op; the GC reclaims the
// buffer.
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, fmt.Errorf("hgio: reading file: %w", err)
	}
	return data, func() error { return nil }, nil
}
