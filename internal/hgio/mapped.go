package hgio

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"unsafe"

	"hyperline/internal/hg"
)

// MapBinary opens a binary-format hypergraph file and aliases its flat
// arrays directly as hg.Hypergraph slices via mmap: no parsing, no
// copying, and load time proportional to the pages actually touched
// rather than the file size — the out-of-core load path for datasets
// that exceed RAM.
//
// A version-2 file maps fully zero-copy (both orientations live in the
// file, 8-byte aligned). A version-1 file aliases the edge orientation
// and derives the vertex orientation into the heap (one O(nnz) pass) —
// re-save with SaveBinary to upgrade it.
//
// Validation is proportional to the offset sections only (monotone
// offsets with correct endpoints, plus the exact-file-size check); the
// adjacency sections — the bulk of the file — are trusted and never
// touched at load. Map local files you control; route network bodies
// through ReadBinary, which validates everything. Call Validate() on
// the result for a full (page-touching) structural check.
//
// The returned hypergraph owns the mapping: Close unmaps (safe only
// once no view, including Dual views, is in use), and dropping the
// last reference lets a GC finalizer unmap — the lifecycle a serving
// registry relies on when replacing datasets under concurrent readers.
func MapBinary(path string) (*hg.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("hgio: %s: truncated binary file: have %d bytes, want at least %d",
			path, st.Size(), headerSize)
	}
	data, release, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	h, err := mapBinaryData(path, data, st.Size())
	if err != nil {
		release()
		return nil, err
	}
	h.SetReleaser(release)
	return h, nil
}

// mapBinaryData builds a hypergraph over an already-mapped file image.
func mapBinaryData(path string, data []byte, size int64) (*hg.Hypergraph, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// mmap returns page-aligned memory; only the non-mmap fallback
		// could ever land here, and Go's allocator 8-aligns large byte
		// slices. Guard anyway: aliasing int64s needs 8-byte alignment.
		return nil, fmt.Errorf("hgio: %s: mapping is not 8-byte aligned", path)
	}
	hdr, err := readHeader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := checkFileSize(path, size, hdr); err != nil {
		return nil, err
	}
	n, m, nnz := int64(hdr.n), int64(hdr.m), int64(hdr.nnz)
	pos := int64(headerSize)
	eOff := asInt64s(data, pos, m+1)
	pos += 8 * (m + 1)
	eAdj := asUint32s(data, pos, nnz)
	pos += 4 * nnz
	if err := validateEdgeCSR(eOff, nil, hdr.n, hdr.nnz); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	var vOff []int64
	var vAdj []uint32
	if hdr.version == 1 {
		vOff, vAdj = deriveVertexCSR(eOff, eAdj, hdr.n)
	} else {
		pos += pad4(hdr.nnz)
		vOff = asInt64s(data, pos, n+1)
		pos += 8 * (n + 1)
		vAdj = asUint32s(data, pos, nnz)
		if vOff[0] != 0 || vOff[n] != nnz {
			return nil, fmt.Errorf("hgio: %s: corrupt vertex offsets [%d..%d], want [0..%d]",
				path, vOff[0], vOff[n], nnz)
		}
		for v := int64(0); v < n; v++ {
			if vOff[v] > vOff[v+1] {
				return nil, fmt.Errorf("hgio: %s: corrupt vertex offset at vertex %d", path, v)
			}
		}
	}
	h, err := hg.FromCSR(int(m), int(n), eOff, eAdj, vOff, vAdj)
	if err != nil {
		return nil, fmt.Errorf("hgio: %s: %w", path, err)
	}
	return h, nil
}

// asInt64s aliases count little-endian int64 values at byte offset off.
func asInt64s(data []byte, off, count int64) []int64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), count)
}

// asUint32s aliases count little-endian uint32 values at byte offset
// off.
func asUint32s(data []byte, off, count int64) []uint32 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&data[off])), count)
}

// MapFile loads a hypergraph from path like LoadFile, but maps ".bin"
// files via MapBinary instead of reading them — the load path the
// registry and the daemons use for local files. Text formats have no
// mappable layout and go through the ordinary readers.
func MapFile(path string) (*hg.Hypergraph, error) {
	if strings.HasSuffix(path, ".bin") {
		return MapBinary(path)
	}
	return LoadFile(path)
}
