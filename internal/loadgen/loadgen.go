// Package loadgen is the sustained-traffic harness behind cmd/hyperload
// and the soak tests: an open-loop load generator for a hyperlined
// server. Arrivals are scheduled at a fixed rate independent of response
// times (the open-loop discipline saturation benchmarks need — a closed
// loop self-throttles exactly when the server degrades, hiding the
// degradation), each request drawn from a configurable mix of sweep,
// measure, upload, and ingest traffic. The report carries client-side
// ground truth the server's /metrics must reconcile with: per-status-code
// counts, latency quantiles of successful requests, shed rate, and a
// first-seen consistency map of response shapes per (version, kind, s)
// so any run-internal divergence (a stale cache entry, a mixed-version
// batch) surfaces as a mismatch count. Keys are version-prefixed
// because ingest traffic legitimately changes answers: two answers for
// one question must agree only when pinned to the same dataset version.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mix weighs the traffic classes; weights are relative (normalized over
// their sum) and a zero weight disables the class.
type Mix struct {
	// Sweep is a multi-s projection query: POST /v2/query with an
	// s-range and no measure.
	Sweep float64
	// Measure is a single-s measure query: POST /v2/query naming a
	// measure.
	Measure float64
	// Upload re-PUTs the dataset body, bumping its version and
	// invalidating both cache layers — the churn half of a soak.
	Upload float64
	// Ingest POSTs a small seeded insert-only delta to /v2/ingest,
	// bumping the version while the server migrates or patches its
	// caches — the streaming half of a soak. Deltas are valid by
	// construction against any base: each draws its vertex IDs below
	// its own incidence count, which the growth bound always admits.
	Ingest float64
}

// DefaultMix is mostly reads with a trickle of churn.
var DefaultMix = Mix{Sweep: 8, Measure: 3, Upload: 1}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets optionally lists several bases (replicas, or routers in
	// front of them) to spread arrivals over round-robin. The first-seen
	// consistency map is shared across targets, so a divergent answer
	// *between* nodes counts as a mismatch exactly like one within a
	// node — the cross-replica consistency check of a multi-node run.
	// Empty = single-target mode against BaseURL.
	Targets []string
	// Dataset is the registered dataset name queries target.
	Dataset string
	// UploadBody is the adjacency-format dataset payload for upload
	// traffic (and for Prime). Upload traffic is disabled when empty.
	UploadBody []byte

	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// MaxOutstanding caps client-side in-flight requests; arrivals past
	// it are counted as Dropped rather than queued (the generator must
	// not itself become a queue). 0 = 512.
	MaxOutstanding int

	// SMax bounds the s values drawn for sweep and measure traffic
	// (ranges within [1, SMax]). 0 = 4.
	SMax int
	// Measure names the measure for measure traffic. "" = "components".
	Measure string
	// Mix weighs the traffic classes; zero value = DefaultMix.
	Mix Mix
	// Priority is the v2 priority field for query traffic ("" = server
	// default, i.e. interactive).
	Priority string
	// Timeout bounds each request. 0 = 30s.
	Timeout time.Duration
	// Seed makes the arrival schedule and draw sequence reproducible.
	Seed int64
	// Client overrides the HTTP client (its Timeout is ignored in favor
	// of Config.Timeout).
	Client *http.Client
}

// Observation is the first-seen response shape for one traffic key.
type Observation struct {
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Value string `json:"value,omitempty"`
}

// Quantiles are latency quantiles in nanoseconds over the successful
// (HTTP 200, i.e. admitted and answered) requests.
type Quantiles struct {
	P50 int64 `json:"p50_ns"`
	P90 int64 `json:"p90_ns"`
	P99 int64 `json:"p99_ns"`
	Max int64 `json:"max_ns"`
	N   int64 `json:"n"`
}

// Report is the outcome of one load run. Counts satisfy
// Offered == Dropped + Sent and Sent == Σ StatusCounts + TransportErrors.
type Report struct {
	// Offered counts scheduled arrivals; Dropped the ones skipped
	// because MaxOutstanding was reached; Sent the requests issued.
	Offered int64 `json:"offered"`
	Dropped int64 `json:"dropped"`
	Sent    int64 `json:"sent"`
	// StatusCounts is responses by HTTP status code.
	StatusCounts map[int]int64 `json:"status_counts"`
	// TransportErrors counts requests that died below HTTP (dial,
	// reset, client-side timeout).
	TransportErrors int64 `json:"transport_errors"`
	// Shed is StatusCounts[429], broken out because it is the headline
	// number of a saturation run.
	Shed int64 `json:"shed"`
	// Mismatches counts responses whose shape diverged from the
	// first-seen Observation for the same key — any nonzero value means
	// the server returned two different answers for one question at one
	// dataset version.
	Mismatches int64 `json:"mismatches"`
	// Ingests counts the delta requests sent; IngestsApplied the ones
	// every owner accepted (HTTP 200).
	Ingests        int64 `json:"ingests"`
	IngestsApplied int64 `json:"ingests_applied"`
	// Observed maps version-prefixed traffic keys ("v3/line/s=2",
	// "v3/measure/components/s=3") to their first-seen response shape,
	// for comparison against an uncached baseline. Responses that do
	// not name a single version (a router merge flagged version_mixed)
	// are not recorded — they pin no version to be consistent with.
	Observed map[string]Observation `json:"observed"`
	// Latency quantifies the successful requests.
	Latency Quantiles `json:"latency"`
	// Elapsed is the wall time from first arrival to last drained
	// response.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ShedRate is the fraction of sent requests answered 429.
func (r *Report) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// runState is the mutable half of a run, shared by request goroutines.
type runState struct {
	mu        sync.Mutex
	rep       *Report
	latencies []int64
}

func (st *runState) recordStatus(code int, d time.Duration) {
	st.mu.Lock()
	st.rep.StatusCounts[code]++
	if code == http.StatusOK {
		st.latencies = append(st.latencies, int64(d))
	}
	st.mu.Unlock()
}

// observe folds one response shape into the consistency map.
func (st *runState) observe(key string, obs Observation) {
	st.mu.Lock()
	first, seen := st.rep.Observed[key]
	if !seen {
		st.rep.Observed[key] = obs
	} else if first != obs {
		st.rep.Mismatches++
	}
	st.mu.Unlock()
}

// Prime uploads cfg.UploadBody as the target dataset — to every target
// in multi-node mode, so each node can serve it — letting a run start
// against fresh servers.
func Prime(ctx context.Context, cfg Config) error {
	if len(cfg.UploadBody) == 0 {
		return errors.New("loadgen: Prime needs an UploadBody")
	}
	client := cfg.client()
	bases := cfg.Targets
	if len(bases) == 0 {
		bases = []string{cfg.BaseURL}
	}
	for _, base := range bases {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			strings.TrimRight(base, "/")+"/v1/datasets/"+cfg.Dataset+"?format=adj", bytes.NewReader(cfg.UploadBody))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: prime upload to %s: status %d: %s", base, resp.StatusCode, body)
		}
	}
	return nil
}

func (cfg *Config) client() *http.Client {
	if cfg.Client != nil {
		return cfg.Client
	}
	return &http.Client{}
}

// withDefaults resolves the zero values.
func (cfg Config) withDefaults() (Config, error) {
	for i, t := range cfg.Targets {
		cfg.Targets[i] = strings.TrimRight(t, "/")
	}
	if cfg.BaseURL == "" && len(cfg.Targets) > 0 {
		cfg.BaseURL = cfg.Targets[0]
	}
	if cfg.BaseURL == "" || cfg.Dataset == "" {
		return cfg, errors.New("loadgen: BaseURL (or Targets) and Dataset are required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.Rate <= 0 {
		return cfg, errors.New("loadgen: Rate must be > 0")
	}
	if cfg.Duration <= 0 {
		return cfg, errors.New("loadgen: Duration must be > 0")
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 512
	}
	if cfg.SMax <= 0 {
		cfg.SMax = 4
	}
	if cfg.Measure == "" {
		cfg.Measure = "components"
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	if len(cfg.UploadBody) == 0 {
		cfg.Mix.Upload = 0
	}
	if cfg.Mix.Sweep+cfg.Mix.Measure+cfg.Mix.Upload+cfg.Mix.Ingest <= 0 {
		return cfg, errors.New("loadgen: the traffic mix has no positive weight")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	return cfg, nil
}

// Run generates open-loop load until cfg.Duration elapses (or ctx is
// cancelled, which stops scheduling and drains), then waits for every
// in-flight request and returns the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	client := cfg.client()
	st := &runState{rep: &Report{
		StatusCounts: make(map[int]int64),
		Observed:     make(map[string]Observation),
	}}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()

	sem := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()

arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-deadline.C:
			break arrivals
		case <-ticker.C:
			st.rep.Offered++
			select {
			case sem <- struct{}{}:
			default:
				// Open loop: an arrival the client cannot carry is
				// dropped, not deferred — deferring would turn the
				// generator into the very queue we are measuring.
				st.rep.Dropped++
				continue
			}
			st.rep.Sent++
			// Round-robin the target on the scheduling goroutine so the
			// (arrival, target) pairing is reproducible under Seed.
			base := cfg.BaseURL
			if len(cfg.Targets) > 0 {
				base = cfg.Targets[(st.rep.Sent-1)%int64(len(cfg.Targets))]
			}
			kind, body, key := cfg.draw(rng)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				cfg.issue(client, st, base, kind, body, key)
			}()
		}
	}
	wg.Wait()
	st.rep.Elapsed = time.Since(start)
	st.rep.Shed = st.rep.StatusCounts[http.StatusTooManyRequests]
	st.rep.Latency = quantiles(st.latencies)
	return st.rep, nil
}

// reqKind tags one drawn request.
type reqKind int

const (
	reqSweep reqKind = iota
	reqMeasure
	reqUpload
	reqIngest
)

// draw picks the next request from the mix. Drawing happens on the
// scheduling goroutine so the sequence is reproducible under Seed.
func (cfg *Config) draw(rng *rand.Rand) (reqKind, []byte, string) {
	total := cfg.Mix.Sweep + cfg.Mix.Measure + cfg.Mix.Upload + cfg.Mix.Ingest
	x := rng.Float64() * total
	switch {
	case x < cfg.Mix.Sweep:
		lo := 1 + rng.Intn(cfg.SMax)
		hi := lo + rng.Intn(cfg.SMax-lo+1)
		body, _ := json.Marshal(map[string]any{
			"dataset": cfg.Dataset, "s": fmt.Sprintf("%d:%d", lo, hi), "priority": cfg.Priority,
		})
		return reqSweep, body, ""
	case x < cfg.Mix.Sweep+cfg.Mix.Measure:
		s := 1 + rng.Intn(cfg.SMax)
		body, _ := json.Marshal(map[string]any{
			"dataset": cfg.Dataset, "s": []int{s}, "measure": cfg.Measure, "priority": cfg.Priority,
		})
		return reqMeasure, body, fmt.Sprintf("measure/%s/s=%d", cfg.Measure, s)
	case x < cfg.Mix.Sweep+cfg.Mix.Measure+cfg.Mix.Upload:
		return reqUpload, cfg.UploadBody, ""
	default:
		return reqIngest, cfg.drawDelta(rng), ""
	}
}

// drawDelta builds one seeded insert-only /v2/ingest body: one to
// three new hyperedges of two to four vertices each. Every vertex ID
// is drawn below the delta's own incidence count, so the body is valid
// against any base hypergraph — the ingest growth bound admits IDs up
// to NumVertices + incidences − 1, and incidences > every drawn ID
// here even when the base is empty. Insert-only keeps the generator
// stateless: deletions would need the live edge count, which shifts
// under the very traffic being generated.
func (cfg *Config) drawDelta(rng *rand.Rand) []byte {
	n := 1 + rng.Intn(3)
	sizes := make([]int, n)
	incidences := 0
	for i := range sizes {
		sizes[i] = 2 + rng.Intn(3)
		incidences += sizes[i]
	}
	inserts := make([][]uint32, n)
	for i, sz := range sizes {
		seen := make(map[uint32]bool, sz)
		for len(seen) < sz {
			seen[uint32(rng.Intn(incidences))] = true
		}
		edge := make([]uint32, 0, sz)
		for v := range seen {
			edge = append(edge, v)
		}
		inserts[i] = edge
	}
	body, _ := json.Marshal(map[string]any{"dataset": cfg.Dataset, "inserts": inserts})
	return body
}

// v2Entry is the slice of the /v2/query response the generator checks.
type v2Entry struct {
	S     int             `json:"s"`
	Error string          `json:"error,omitempty"`
	Nodes int             `json:"nodes"`
	Edges int             `json:"edges"`
	Value json.RawMessage `json:"value,omitempty"`
}

// issue sends one request to base and records its outcome.
func (cfg *Config) issue(client *http.Client, st *runState, base string, kind reqKind, body []byte, key string) {
	rctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	var req *http.Request
	var err error
	switch kind {
	case reqUpload:
		req, err = http.NewRequestWithContext(rctx, http.MethodPut,
			base+"/v1/datasets/"+cfg.Dataset+"?format=adj", bytes.NewReader(body))
	case reqIngest:
		req, err = http.NewRequestWithContext(rctx, http.MethodPost,
			base+"/v2/ingest", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		req, err = http.NewRequestWithContext(rctx, http.MethodPost,
			base+"/v2/query", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		st.mu.Lock()
		st.rep.TransportErrors++
		st.mu.Unlock()
		return
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		st.mu.Lock()
		st.rep.TransportErrors++
		st.mu.Unlock()
		return
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	st.recordStatus(resp.StatusCode, time.Since(t0))
	if kind == reqIngest {
		st.mu.Lock()
		st.rep.Ingests++
		if resp.StatusCode == http.StatusOK {
			st.rep.IngestsApplied++
		}
		st.mu.Unlock()
		return
	}
	if kind == reqUpload || resp.StatusCode != http.StatusOK {
		return
	}
	var out struct {
		Version      uint64    `json:"version"`
		VersionMixed bool      `json:"version_mixed"`
		Results      []v2Entry `json:"results"`
	}
	if json.Unmarshal(data, &out) != nil {
		return
	}
	// A router merge that spanned two dataset versions pins no single
	// version — its entries answer no one consistent question, so they
	// are not folded into the consistency map.
	if out.VersionMixed {
		return
	}
	for _, e := range out.Results {
		if e.Error != "" {
			continue
		}
		obs := Observation{Nodes: e.Nodes, Edges: e.Edges, Value: string(e.Value)}
		k := key
		if kind == reqSweep {
			k = fmt.Sprintf("line/s=%d", e.S)
		}
		st.observe(fmt.Sprintf("v%d/%s", out.Version, k), obs)
	}
}

// quantiles computes the report quantiles from raw samples.
func quantiles(samples []int64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return Quantiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: samples[len(samples)-1],
		N:   int64(len(samples)),
	}
}

// BenchResult / BenchReport mirror cmd/benchjson's schema, so a
// hyperload run lands in the repo's BENCH_<n>.json series alongside the
// go-test benchmarks.
type BenchResult struct {
	Name    string  `json:"name"`
	Runs    int     `json:"runs"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

type BenchReport struct {
	Label      string        `json:"label,omitempty"`
	Date       string        `json:"date"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// BenchJSON renders the report in benchjson's schema: latency quantiles
// as ns/op entries (iters = sample count) plus the headline saturation
// counts encoded as ops (offered/sent/shed/dropped, ns_per_op = count).
func (r *Report) BenchJSON(label string, now time.Time) BenchReport {
	n := r.Latency.N
	mk := func(name string, ns int64) BenchResult {
		return BenchResult{Name: name, Runs: 1, Iters: n, NsPerOp: float64(ns)}
	}
	return BenchReport{
		Label: label,
		Date:  now.UTC().Format(time.RFC3339),
		Benchmarks: []BenchResult{
			mk("HyperloadLatencyP50", r.Latency.P50),
			mk("HyperloadLatencyP90", r.Latency.P90),
			mk("HyperloadLatencyP99", r.Latency.P99),
			mk("HyperloadLatencyMax", r.Latency.Max),
			{Name: "HyperloadOffered", Runs: 1, Iters: 1, NsPerOp: float64(r.Offered)},
			{Name: "HyperloadSent", Runs: 1, Iters: 1, NsPerOp: float64(r.Sent)},
			{Name: "HyperloadShed", Runs: 1, Iters: 1, NsPerOp: float64(r.Shed)},
			{Name: "HyperloadDropped", Runs: 1, Iters: 1, NsPerOp: float64(r.Dropped)},
			{Name: "HyperloadIngestsApplied", Runs: 1, Iters: 1, NsPerOp: float64(r.IngestsApplied)},
		},
	}
}

// Summary renders the human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %d (dropped %d, sent %d) in %s — %.1f req/s sent\n",
		r.Offered, r.Dropped, r.Sent, r.Elapsed.Round(time.Millisecond),
		float64(r.Sent)/r.Elapsed.Seconds())
	codes := make([]int, 0, len(r.StatusCounts))
	for c := range r.StatusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", c, r.StatusCounts[c])
	}
	if r.TransportErrors > 0 {
		fmt.Fprintf(&b, "  transport errors: %d\n", r.TransportErrors)
	}
	fmt.Fprintf(&b, "shed rate %.1f%%, mismatches %d\n", 100*r.ShedRate(), r.Mismatches)
	if r.Ingests > 0 {
		fmt.Fprintf(&b, "ingests %d (applied %d)\n", r.Ingests, r.IngestsApplied)
	}
	q := r.Latency
	fmt.Fprintf(&b, "latency (n=%d ok): p50 %s  p90 %s  p99 %s  max %s\n",
		q.N, time.Duration(q.P50).Round(time.Microsecond), time.Duration(q.P90).Round(time.Microsecond),
		time.Duration(q.P99).Round(time.Microsecond), time.Duration(q.Max).Round(time.Microsecond))
	return b.String()
}

// FetchMetrics scrapes baseURL/metrics and parses it into a flat
// name{labels} → value map — the reconciliation hook for comparing
// server counters against a Report's client-side counts.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]float64, error) {
	if client == nil {
		client = &http.Client{}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(baseURL, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /metrics: status %d", resp.StatusCode)
	}
	return ParseMetrics(string(data))
}

// ParseMetrics parses a Prometheus text exposition into a flat
// name{labels} → value map (comment lines skipped).
func ParseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("loadgen: bad metric line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			return nil, fmt.Errorf("loadgen: bad metric value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}
