package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperline/internal/gen"
	"hyperline/internal/hgio"
	"hyperline/internal/serve"
)

// soakBody builds the adjacency payload the soak uploads and churns.
func soakBody(t *testing.T) []byte {
	t.Helper()
	h := gen.Community(gen.CommunityConfig{
		Seed: 11, NumVertices: 400, NumCommunities: 12,
		MeanCommunitySize: 12, EdgesPerCommunity: 12, Background: 100,
	})
	var buf bytes.Buffer
	if err := hgio.WriteAdjacency(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// baselineObservation answers one traffic key on a fresh, state-free
// server — the uncached ground truth a soak's answers must match.
func baselineObservation(t *testing.T, url, dataset, key string) Observation {
	t.Helper()
	req := map[string]any{"dataset": dataset}
	// Observation keys are version-prefixed ("v3/line/s=2"); the soak
	// only re-PUTs the identical body, so every version answers like
	// the fresh baseline and the prefix is irrelevant here.
	if strings.HasPrefix(key, "v") {
		if i := strings.Index(key, "/"); i >= 0 {
			key = key[i+1:]
		}
	}
	var s int
	switch {
	case strings.HasPrefix(key, "line/s="):
		fmt.Sscanf(key, "line/s=%d", &s)
	case strings.HasPrefix(key, "measure/"):
		var m string
		if i := strings.LastIndex(key, "/s="); i >= 0 {
			m = strings.TrimPrefix(key[:i], "measure/")
			fmt.Sscanf(key[i:], "/s=%d", &s)
		}
		req["measure"] = m
	default:
		t.Fatalf("unrecognized traffic key %q", key)
	}
	req["s"] = []int{s}
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Nodes int             `json:"nodes"`
			Edges int             `json:"edges"`
			Value json.RawMessage `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Results) != 1 {
		t.Fatalf("baseline query for %q: %v (%d results)", key, err, len(out.Results))
	}
	r := out.Results[0]
	return Observation{Nodes: r.Nodes, Edges: r.Edges, Value: string(r.Value)}
}

// TestSoakMixedWorkload runs 30 seconds of mixed sweep/measure/upload
// traffic — with deliberately tiny caches and tight admission limits,
// so eviction, version churn, queueing, and shedding all happen
// constantly — against an in-process server, then audits the books:
//
//   - every answer during the run was internally consistent (zero
//     mismatches across cache hits, dedups, and version churn), and
//     byte-identical to a fresh uncached server's answer;
//   - every arrival is accounted for: offered == dropped + sent, and
//     sent == Σ per-status responses + transport errors;
//   - the server's /metrics response counters reconcile exactly with
//     the client's per-status counts;
//   - admission drained back to zero occupancy.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: 30s of sustained load, skipped under -short")
	}

	svc := serve.New(serve.Config{
		CacheEntries:        3,
		MeasureCacheEntries: 4,
		MaxInflight:         2,
		ShedCostBudget:      20,
		MaxQueue:            4,
	})
	ts := httptest.NewServer(serve.NewHandler(svc))
	defer ts.Close()

	body := soakBody(t)
	cfg := Config{
		BaseURL:        ts.URL,
		Dataset:        "soak",
		UploadBody:     body,
		Duration:       30 * time.Second,
		Rate:           60,
		MaxOutstanding: 64,
		SMax:           4,
		Measure:        "components",
		Mix:            Mix{Sweep: 6, Measure: 3, Upload: 1},
		Timeout:        10 * time.Second,
		Seed:           42,
	}
	ctx := context.Background()
	if err := Prime(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak report:\n%s", rep.Summary())

	// Arrival accounting.
	if rep.Offered != rep.Dropped+rep.Sent {
		t.Errorf("offered %d != dropped %d + sent %d", rep.Offered, rep.Dropped, rep.Sent)
	}
	var answered int64
	for _, n := range rep.StatusCounts {
		answered += n
	}
	if rep.Sent != answered+rep.TransportErrors {
		t.Errorf("sent %d != answered %d + transport errors %d", rep.Sent, answered, rep.TransportErrors)
	}
	if rep.TransportErrors != 0 {
		t.Errorf("%d transport errors against an in-process server", rep.TransportErrors)
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d mismatched answers during the soak", rep.Mismatches)
	}
	if rep.StatusCounts[http.StatusOK] == 0 {
		t.Fatal("soak produced no successful responses")
	}

	// Byte-identical to an uncached baseline: replay every observed key
	// against a fresh server with no caches warmed, no churn, no limits.
	baseSvc := serve.New(serve.Config{})
	baseTS := httptest.NewServer(serve.NewHandler(baseSvc))
	defer baseTS.Close()
	breq, _ := http.NewRequest(http.MethodPut, baseTS.URL+"/v1/datasets/soak?format=adj", bytes.NewReader(body))
	if bresp, err := http.DefaultClient.Do(breq); err != nil || bresp.StatusCode != http.StatusOK {
		t.Fatalf("baseline upload: %v %v", bresp, err)
	}
	if len(rep.Observed) == 0 {
		t.Fatal("soak observed no answers to compare")
	}
	for key, obs := range rep.Observed {
		if base := baselineObservation(t, baseTS.URL, "soak", key); base != obs {
			t.Errorf("key %s: soak answered %+v, uncached baseline %+v", key, obs, base)
		}
	}

	// Server-side reconciliation: response counters match the client's
	// books exactly (the /metrics handler excludes its own scrapes), and
	// nothing is still admitted or queued after the drain.
	metrics, err := FetchMetrics(ctx, nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Prime's upload is the one request the server saw beyond the run.
	wantCounts := map[int]int64{}
	for code, n := range rep.StatusCounts {
		wantCounts[code] = n
	}
	wantCounts[http.StatusOK]++
	for code, want := range wantCounts {
		name := fmt.Sprintf(`hyperline_http_responses_total{code="%d"}`, code)
		if got := int64(metrics[name]); got != want {
			t.Errorf("%s = %d on the server, client counted %d", name, got, want)
		}
	}
	as := svc.AdmissionStats()
	if as.InflightRequests != 0 || as.InflightCost != 0 || as.QueueLength != 0 {
		t.Errorf("admission not drained after the soak: %+v", as)
	}
	if shed := as.ShedInteractive + as.ShedBackground; int64(shed) > rep.StatusCounts[http.StatusTooManyRequests] {
		// Every server-side shed surfaces as at least one client 429
		// (dedup can fan one shed out to several waiters, never the
		// reverse).
		t.Errorf("server shed %d flights but clients saw only %d 429s",
			shed, rep.StatusCounts[http.StatusTooManyRequests])
	}
}

// TestLoadgenReportInvariants is the fast (non-soak) sanity check of the
// generator itself: a 2-second run against an unlimited in-process
// server produces a coherent report and a benchjson-shaped artifact.
func TestLoadgenReportInvariants(t *testing.T) {
	svc := serve.New(serve.Config{})
	ts := httptest.NewServer(serve.NewHandler(svc))
	defer ts.Close()

	cfg := Config{
		BaseURL:    ts.URL,
		Dataset:    "d",
		UploadBody: []byte("0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n"),
		Duration:   2 * time.Second,
		Rate:       50,
		SMax:       3,
		Mix:        Mix{Sweep: 2, Measure: 1, Upload: 1},
		Seed:       7,
		Timeout:    5 * time.Second,
	}
	if err := Prime(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != rep.Dropped+rep.Sent {
		t.Fatalf("offered %d != dropped %d + sent %d", rep.Offered, rep.Dropped, rep.Sent)
	}
	if rep.Mismatches != 0 || rep.TransportErrors != 0 {
		t.Fatalf("clean run reported mismatches=%d transport=%d", rep.Mismatches, rep.TransportErrors)
	}
	if rep.StatusCounts[http.StatusOK] == 0 || rep.Latency.N == 0 {
		t.Fatalf("no successful samples: %+v", rep)
	}
	if rep.Latency.P50 > rep.Latency.P90 || rep.Latency.P90 > rep.Latency.P99 || rep.Latency.P99 > rep.Latency.Max {
		t.Fatalf("quantiles out of order: %+v", rep.Latency)
	}

	bj := rep.BenchJSON("test", time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	if bj.Label != "test" || len(bj.Benchmarks) != 9 {
		t.Fatalf("bad benchjson report: %+v", bj)
	}
	for _, b := range bj.Benchmarks {
		if b.Name == "" || b.Runs != 1 {
			t.Fatalf("bad benchmark entry: %+v", b)
		}
	}
	blob, err := json.Marshal(bj)
	if err != nil || !bytes.Contains(blob, []byte("ns_per_op")) {
		t.Fatalf("benchjson serialization broken: %v %s", err, blob)
	}
}
