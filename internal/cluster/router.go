package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyperline/internal/core"
)

// Config parameterizes a Router.
type Config struct {
	// Replicas seeds the member list with static replica base URLs;
	// replicas may also self-register via POST /v1/replicas.
	Replicas []string
	// Replication is how many replicas own each dataset (clamped to the
	// cluster size at placement time). Default 2.
	Replication int
	// HedgeAfter is the per-shard latency budget after which the router
	// issues a hedged duplicate to the next owner. 0 disables hedging.
	HedgeAfter time.Duration
	// HealthInterval is the replica health-probe period for Run.
	// Default 2s.
	HealthInterval time.Duration
	// RequestTimeout bounds every proxied query that does not carry its
	// own shorter timeout_ms. 0 = unbounded.
	RequestTimeout time.Duration
	// Client issues replica sub-requests. Default: a dedicated client
	// with no global timeout (sub-requests are bounded per-context).
	Client *http.Client
}

// replica is one hyperlined member as the router sees it.
type replica struct {
	url      string
	static   bool // from -replicas, never expired
	healthy  bool
	fails    int // consecutive probe/transport failures
	lastSeen time.Time
}

// ReplicaStatus is the externally visible replica state.
type ReplicaStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Static   bool   `json:"static"`
	Fails    int    `json:"consecutive_failures,omitempty"`
	LastSeen string `json:"last_seen,omitempty"`
}

// Router is the stateless scatter-gather tier: it owns the replica map
// and the placement ring, but no dataset bytes and no caches — replica
// answers pass through verbatim, so the cache/spill tiers stay where
// the data is and the router can be replicated freely.
type Router struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	replicas map[string]*replica
	ring     *Ring
	// writeLocks serializes mutating fan-outs (upload, ingest) per
	// dataset: two concurrent deltas applied in different orders on
	// different owners would diverge their versions permanently.
	writeLocks map[string]*sync.Mutex

	metrics rmetrics
}

// NewRouter builds a router over the statically configured replicas
// (all presumed healthy until probed).
func NewRouter(cfg Config) *Router {
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		replicas: make(map[string]*replica),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, u := range cfg.Replicas {
		u = strings.TrimRight(u, "/")
		if u == "" {
			continue
		}
		rt.replicas[u] = &replica{url: u, static: true, healthy: true}
	}
	rt.rebuildRingLocked()
	return rt
}

// rebuildRingLocked recomputes placement after a membership change.
// Placement ranges over *all* members, healthy or not: a blip must not
// migrate ownership (and the data) — health only filters who is asked.
func (rt *Router) rebuildRingLocked() {
	nodes := make([]string, 0, len(rt.replicas))
	for u := range rt.replicas {
		nodes = append(nodes, u)
	}
	rt.ring = NewRing(nodes)
}

// owners returns the dataset's owner set in ring order, and the healthy
// subset in the same order.
func (rt *Router) owners(dataset string) (all, healthy []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	all = rt.ring.Owners(dataset, rt.cfg.Replication)
	for _, u := range all {
		if rep, ok := rt.replicas[u]; ok && rep.healthy {
			healthy = append(healthy, u)
		}
	}
	return all, healthy
}

// markFailure records a transport-level failure against a replica and
// immediately stops routing to it; the health loop readmits it.
func (rt *Router) markFailure(u string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rep, ok := rt.replicas[u]; ok {
		rep.fails++
		rep.healthy = false
	}
}

// markSuccess records a healthy interaction with a replica.
func (rt *Router) markSuccess(u string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rep, ok := rt.replicas[u]; ok {
		rep.fails = 0
		rep.healthy = true
		rep.lastSeen = time.Now()
	}
}

// lockDataset takes the dataset's write lock, creating it on first
// use, and returns the unlock. Lock objects are never removed: the map
// grows with the distinct datasets ever written through this router,
// which is bounded by the same cardinality the replicas hold in RAM.
func (rt *Router) lockDataset(name string) func() {
	rt.mu.Lock()
	if rt.writeLocks == nil {
		rt.writeLocks = make(map[string]*sync.Mutex)
	}
	l, ok := rt.writeLocks[name]
	if !ok {
		l = &sync.Mutex{}
		rt.writeLocks[name] = l
	}
	rt.mu.Unlock()
	l.Lock()
	return l.Unlock
}

// register adds (or refreshes) a self-registered replica.
func (rt *Router) register(u string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rep, ok := rt.replicas[u]
	if !ok {
		rep = &replica{url: u}
		rt.replicas[u] = rep
		rt.rebuildRingLocked()
	}
	rep.healthy = true
	rep.fails = 0
	rep.lastSeen = time.Now()
}

// Replicas snapshots the member list, sorted by URL.
func (rt *Router) Replicas() []ReplicaStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		st := ReplicaStatus{URL: rep.url, Healthy: rep.healthy, Static: rep.static, Fails: rep.fails}
		if !rep.lastSeen.IsZero() {
			st.LastSeen = rep.lastSeen.UTC().Format(time.RFC3339)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// CheckHealth probes every replica's /healthz once, in parallel.
func (rt *Router) CheckHealth(ctx context.Context) {
	timeout := rt.cfg.HealthInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, st := range rt.Replicas() {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, u+"/healthz", nil)
			if err != nil {
				rt.markFailure(u)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.markFailure(u)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				rt.markSuccess(u)
			} else {
				rt.markFailure(u)
			}
		}(st.URL)
	}
	wg.Wait()
}

// Run drives the health loop until ctx is done.
func (rt *Router) Run(ctx context.Context) {
	rt.CheckHealth(ctx)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckHealth(ctx)
		}
	}
}

// Handler returns the router's HTTP surface. It intentionally mirrors
// the slice of the hyperlined API a client needs — health, dataset
// upload/list, /v2/query, /v2/ingest, and the change feed — so
// hyperload (and curl scripts) work against a router or a single
// replica interchangeably.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "replicas": len(rt.Replicas())})
	})
	mux.HandleFunc("GET /v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Replicas())
	})
	mux.HandleFunc("POST /v1/replicas", rt.handleRegister)
	mux.HandleFunc("GET /v1/datasets", rt.handleListDatasets)
	mux.HandleFunc("PUT /v1/datasets/{name}", rt.handleUpload)
	mux.HandleFunc("POST /v2/query", rt.handleQuery)
	mux.HandleFunc("POST /v2/ingest", rt.handleIngest)
	mux.HandleFunc("GET /v2/datasets/{name}/changes", rt.handleChanges)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt.metrics.instrument(mux)
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad register body: %w", err))
		return
	}
	u, err := url.Parse(body.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad replica url %q (want absolute http/https)", body.URL))
		return
	}
	rt.register(strings.TrimRight(body.URL, "/"))
	writeJSON(w, http.StatusOK, rt.Replicas())
}

// handleListDatasets merges the dataset lists of all healthy replicas
// into a name -> replica-set view.
func (rt *Router) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name     string   `json:"name"`
		Replicas []string `json:"replicas"`
	}
	merged := map[string][]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range rt.Replicas() {
		if !st.Healthy {
			continue
		}
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u+"/v1/datasets", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.markFailure(u)
				return
			}
			defer resp.Body.Close()
			var list []struct {
				Name string `json:"name"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&list) != nil {
				return
			}
			mu.Lock()
			for _, d := range list {
				merged[d.Name] = append(merged[d.Name], u)
			}
			mu.Unlock()
		}(st.URL)
	}
	wg.Wait()
	out := make([]entry, 0, len(merged))
	for name, reps := range merged {
		sort.Strings(reps)
		out = append(out, entry{Name: name, Replicas: reps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleUpload replicates a dataset upload to every owner. Placement
// ignores health (a blip must not migrate data), so down owners are
// attempted and reported; at least one accepting owner makes the
// dataset queryable and keeps the upload a success.
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<32))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading upload: %w", err))
		return
	}
	owners, _ := rt.owners(name)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no replicas registered"))
		return
	}
	unlock := rt.lockDataset(name)
	defer unlock()
	target := "/v1/datasets/" + url.PathEscape(name)
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	oks := make([]bool, len(owners))
	var wg sync.WaitGroup
	for i, u := range owners {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPut, u+target, bytes.NewReader(body))
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.markFailure(u)
				rt.metrics.countSubrequest(outcomeError)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.markSuccess(u)
			rt.metrics.countSubrequest(outcomeOf(resp.StatusCode))
			oks[i] = resp.StatusCode == http.StatusOK
		}(i, u)
	}
	wg.Wait()
	replicated := 0
	for _, ok := range oks {
		if ok {
			replicated++
		}
	}
	if replicated == 0 {
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: no owner accepted dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dataset": name, "replicated": replicated, "owners": len(owners)})
}

// handleIngest replicates a streaming delta to every owner of its
// dataset, serialized against other writes by the dataset's write
// lock (so concurrent deltas apply in the same order everywhere and
// the owners' version counters advance in lockstep). Upload tolerates
// partial success — any owner with the bytes keeps the data available
// — but a delta that misses an owner silently diverges that replica's
// answers for every later query, so ingest succeeds only when every
// owner applied it; per-owner outcomes are reported either way, and a
// unanimous 409 (stale base_version) passes through as a 409.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: reading ingest body: %w", err))
		return
	}
	var peek struct {
		Dataset string `json:"dataset"`
	}
	if json.Unmarshal(body, &peek) != nil || peek.Dataset == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: ingest body must be JSON with a \"dataset\""))
		return
	}
	owners, _ := rt.owners(peek.Dataset)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no replicas registered"))
		return
	}
	rt.metrics.countIngest()
	unlock := rt.lockDataset(peek.Dataset)
	defer unlock()

	type ownerOutcome struct {
		Replica string `json:"replica"`
		Status  int    `json:"status"`
		Version uint64 `json:"version,omitempty"`
		Error   string `json:"error,omitempty"`
	}
	outs := make([]ownerOutcome, len(owners))
	var wg sync.WaitGroup
	for i, u := range owners {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			outs[i] = ownerOutcome{Replica: u}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u+"/v2/ingest", bytes.NewReader(body))
			if err != nil {
				outs[i].Error = err.Error()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.markFailure(u)
				rt.metrics.countSubrequest(outcomeError)
				outs[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			rt.markSuccess(u)
			rt.metrics.countSubrequest(outcomeOf(resp.StatusCode))
			outs[i].Status = resp.StatusCode
			var parsed struct {
				Version uint64 `json:"version"`
				Error   string `json:"error"`
			}
			if json.NewDecoder(resp.Body).Decode(&parsed) == nil {
				outs[i].Version = parsed.Version
				outs[i].Error = parsed.Error
			}
		}(i, u)
	}
	wg.Wait()

	applied := 0
	all409 := true
	for _, oc := range outs {
		if oc.Status == http.StatusOK {
			applied++
		}
		if oc.Status != http.StatusConflict {
			all409 = false
		}
	}
	status := http.StatusBadGateway
	switch {
	case applied == len(owners):
		status = http.StatusOK
	case all409:
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]any{
		"dataset": peek.Dataset,
		"applied": applied,
		"owners":  len(owners),
		"results": outs,
	})
}

// handleChanges proxies the change feed to the dataset's first healthy
// owner: all owners see the same delta sequence (ingest fans out to
// every owner under the write lock), so any one owner's feed is the
// dataset's feed.
func (rt *Router) handleChanges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, healthy := rt.owners(name)
	if len(healthy) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no healthy replica owns dataset %q", name))
		return
	}
	u := healthy[0]
	target := u + "/v2/datasets/" + url.PathEscape(name) + "/changes"
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markFailure(u)
		rt.metrics.countSubrequest(outcomeError)
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: replica %s: %w", u, err))
		return
	}
	defer resp.Body.Close()
	rt.markSuccess(u)
	rt.metrics.countSubrequest(outcomeOf(resp.StatusCode))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// shardOutcome is one shard's contribution to the merged response.
type shardOutcome struct {
	s       []int
	entries map[int]json.RawMessage // nil when the shard failed outright
	header  replicaHeader           // dataset/kind/measure/plan of a usable response
	status  int                     // final shard status; 0 = transport failure
	errMsg  string
	shed    bool
	// retryAfter is the largest Retry-After seen from shedding owners.
	retryAfter int
	deadline   bool
}

// replicaHeader is the non-entry portion of a replica /v2/query answer.
type replicaHeader struct {
	Dataset string          `json:"dataset"`
	Version uint64          `json:"version"`
	Kind    string          `json:"kind"`
	Measure string          `json:"measure,omitempty"`
	Plan    json.RawMessage `json:"plan,omitempty"`
}

// handleQuery is the scatter-gather core: decode just enough of the
// body to shard it (everything else passes through verbatim), fan the
// distinct s values across the dataset's healthy owners, and merge the
// per-s entries back in ascending order. The router adds nothing to an
// answer and caches nothing from it.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var base map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&base); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad /v2/query body: %w", err))
		return
	}
	var dataset string
	if raw, ok := base["dataset"]; ok {
		json.Unmarshal(raw, &dataset)
	}
	if dataset == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: \"dataset\" is required"))
		return
	}
	kind := "line"
	if raw, ok := base["kind"]; ok {
		var k string
		json.Unmarshal(raw, &k)
		if k != "" {
			kind = k
		}
	}
	var measureName string
	if raw, ok := base["measure"]; ok {
		json.Unmarshal(raw, &measureName)
	}
	sweep, err := decodeS(base["s"])
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	var timeoutMS int
	if raw, ok := base["timeout_ms"]; ok {
		json.Unmarshal(raw, &timeoutMS)
	}
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	} else if rt.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
		defer cancel()
	}
	// The forwarded timeout_ms is re-derived per attempt from the
	// remaining ctx budget — drop the client's absolute value.
	delete(base, "timeout_ms")

	_, owners := rt.owners(dataset)
	if len(owners) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no healthy replica owns dataset %q", dataset))
		return
	}

	// Shard the distinct s values by s mod |owners|: stable for a given
	// owner count, so repeat sweeps land each s on the same replica and
	// its caches stay hot.
	distinct := core.DistinctS(sweep)
	byOwner := make(map[int][]int)
	for _, sVal := range distinct {
		idx := sVal % len(owners)
		if idx < 0 {
			idx += len(owners)
		}
		byOwner[idx] = append(byOwner[idx], sVal)
	}
	rt.metrics.countQuery(len(byOwner))

	outcomes := make([]shardOutcome, 0, len(byOwner))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for idx, sVals := range byOwner {
		// Rotate the owner list so this shard's primary is its assigned
		// owner and the others are its fallbacks.
		prefs := make([]string, 0, len(owners))
		for i := 0; i < len(owners); i++ {
			prefs = append(prefs, owners[(idx+i)%len(owners)])
		}
		wg.Add(1)
		go func(prefs []string, sVals []int) {
			defer wg.Done()
			oc := rt.runShard(ctx, prefs, sVals, base)
			mu.Lock()
			outcomes = append(outcomes, oc)
			mu.Unlock()
		}(prefs, sVals)
	}
	wg.Wait()

	rt.writeMerged(w, start, dataset, kind, measureName, distinct, outcomes)
}

// attemptResult is one replica attempt's raw outcome.
type attemptResult struct {
	replica    string
	hedge      bool
	status     int
	body       []byte
	retryAfter int
	err        error
}

// runShard drives one shard to completion: primary attempt, an optional
// hedged duplicate after the latency budget, and sequential failover to
// the remaining owners on retryable failures (transport errors, 429
// sheds, 404 from an owner that missed the upload). Deterministic
// failures (200/400/502) and deadline expiry (504) are final — a
// different replica computes the same answer, so retrying buys nothing.
func (rt *Router) runShard(ctx context.Context, prefs []string, sVals []int, base map[string]json.RawMessage) shardOutcome {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(prefs))
	tried := make(map[string]bool, len(prefs))
	inflight := 0
	launch := func(u string, hedge bool) {
		tried[u] = true
		inflight++
		payload := rt.shardPayload(sctx, base, sVals)
		go func() { results <- rt.tryReplica(sctx, u, payload, hedge) }()
	}
	next := func() string {
		for _, u := range prefs {
			if !tried[u] {
				return u
			}
		}
		return ""
	}

	launch(prefs[0], false)
	var hedgeTimer <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(prefs) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeTimer = t.C
	}

	oc := shardOutcome{s: sVals}
	for {
		select {
		case <-ctx.Done():
			oc.deadline = true
			oc.status = http.StatusGatewayTimeout
			oc.errMsg = "deadline exceeded before a replica answered"
			return oc
		case <-hedgeTimer:
			hedgeTimer = nil
			if u := next(); u != "" {
				rt.metrics.countHedge()
				launch(u, true)
			}
		case res := <-results:
			inflight--
			rt.metrics.countSubrequest(attemptOutcome(res))
			if res.err == nil && res.status != http.StatusTooManyRequests && res.status != http.StatusNotFound {
				// A usable, deterministic answer (success, per-entry
				// errors, client error, or deadline): take it.
				if res.hedge {
					rt.metrics.countHedgeWin()
				}
				return rt.parseShardResponse(res, sVals)
			}
			// Retryable: remember the failure shape, try the next owner.
			if res.err != nil {
				rt.markFailure(res.replica)
				oc.errMsg = fmt.Sprintf("replica %s: %v", res.replica, res.err)
			} else {
				oc.status = res.status
				oc.errMsg = fmt.Sprintf("replica %s answered %d", res.replica, res.status)
				if res.status == http.StatusTooManyRequests {
					oc.shed = true
					if res.retryAfter > oc.retryAfter {
						oc.retryAfter = res.retryAfter
					}
				}
			}
			if u := next(); u != "" {
				rt.metrics.countRetry()
				launch(u, false)
				continue
			}
			if inflight > 0 {
				continue // a hedge is still racing; it may yet answer
			}
			return oc
		}
	}
}

// shardPayload builds one sub-request body: the client's fields pass
// through verbatim except "s" (this shard's slice of the sweep) and
// "timeout_ms" (the *remaining* ctx budget at launch time, so the
// deadline travels with the work instead of resetting per hop).
func (rt *Router) shardPayload(ctx context.Context, base map[string]json.RawMessage, sVals []int) []byte {
	sub := make(map[string]json.RawMessage, len(base)+1)
	for k, v := range base {
		sub[k] = v
	}
	sraw, _ := json.Marshal(sVals)
	sub["s"] = sraw
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		// Reserve a merge margin so the replica's deadline fires first
		// and its 504 travels back before the router's own ctx expires
		// (which would abort the sub-request and lose the verdict). The
		// floor covers the replica's cancellation-poll overshoot plus a
		// round-trip; the ceiling keeps long budgets mostly usable.
		margin := remaining / 10
		if margin < 40*time.Millisecond {
			margin = 40 * time.Millisecond
		} else if margin > 500*time.Millisecond {
			margin = 500 * time.Millisecond
		}
		ms := (remaining - margin).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		sub["timeout_ms"] = json.RawMessage(strconv.FormatInt(ms, 10))
	}
	payload, _ := json.Marshal(sub)
	return payload
}

// tryReplica issues one sub-request and reads the full answer.
func (rt *Router) tryReplica(ctx context.Context, u string, payload []byte, hedge bool) attemptResult {
	res := attemptResult{replica: u, hedge: hedge}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/v2/query", bytes.NewReader(payload))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		res.err = err
		return res
	}
	res.status = resp.StatusCode
	res.body = body
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			res.retryAfter = secs
		}
	}
	return res
}

// parseShardResponse turns a usable replica answer into a shard
// outcome, indexing its entries by s.
func (rt *Router) parseShardResponse(res attemptResult, sVals []int) shardOutcome {
	oc := shardOutcome{s: sVals, status: res.status}
	if res.status == http.StatusGatewayTimeout {
		oc.deadline = true
	}
	var parsed struct {
		replicaHeader
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(res.body, &parsed); err != nil || (res.status != http.StatusOK && res.status != http.StatusBadGateway) {
		// 4xx/504 bodies are {"error": ...} documents, not entry lists.
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(res.body, &e)
		oc.errMsg = e.Error
		if oc.errMsg == "" {
			oc.errMsg = fmt.Sprintf("replica %s answered %d", res.replica, res.status)
		}
		return oc
	}
	oc.header = parsed.replicaHeader
	oc.entries = make(map[int]json.RawMessage, len(parsed.Results))
	for _, raw := range parsed.Results {
		var peek struct {
			S int `json:"s"`
		}
		if json.Unmarshal(raw, &peek) == nil {
			oc.entries[peek.S] = raw
		}
	}
	return oc
}

// writeMerged assembles the client-facing answer from the shard
// outcomes: entries in ascending s order (verbatim replica bytes;
// failed shards synthesize per-s error entries), and the replica
// status rules re-applied across the merged sweep — partial success is
// 200, an all-failed sweep reports the dominant failure class (shed
// beats deadline beats upstream), and Retry-After is the max across
// shedding owners.
func (rt *Router) writeMerged(w http.ResponseWriter, start time.Time, dataset, kind, measureName string, distinct []int, outcomes []shardOutcome) {
	entries := make(map[int]json.RawMessage, len(distinct))
	var plan json.RawMessage
	// Version is reported only when every answering shard was pinned to
	// the same dataset version; a mixed sweep (a delta landed between
	// shard arrivals on different owners) is flagged instead, so
	// streaming clients know not to treat the merged entries as one
	// consistent snapshot.
	var version uint64
	versionSet, versionMixed := false, false
	anyOK := false
	allSameStatus := 0
	sameStatus := true
	var shed, deadline bool
	retryAfter := 0
	for i, oc := range outcomes {
		if i == 0 {
			allSameStatus = oc.status
		} else if oc.status != allSameStatus {
			sameStatus = false
		}
		if oc.shed {
			shed = true
			if oc.retryAfter > retryAfter {
				retryAfter = oc.retryAfter
			}
		}
		if oc.deadline {
			deadline = true
		}
		if oc.entries != nil {
			if plan == nil && len(oc.header.Plan) > 0 {
				plan = oc.header.Plan
			}
			if oc.header.Version > 0 {
				switch {
				case !versionSet:
					version, versionSet = oc.header.Version, true
				case version != oc.header.Version:
					versionMixed = true
				}
			}
			for sVal, raw := range oc.entries {
				entries[sVal] = raw
			}
			continue
		}
		msg := oc.errMsg
		if msg == "" {
			msg = "replica unavailable"
		}
		for _, sVal := range oc.s {
			synth, _ := json.Marshal(map[string]any{"s": sVal, "error": msg, "cached": false})
			entries[sVal] = synth
		}
	}

	results := make([]json.RawMessage, 0, len(distinct))
	for _, sVal := range distinct {
		raw, ok := entries[sVal]
		if !ok {
			raw, _ = json.Marshal(map[string]any{"s": sVal, "error": "missing from replica answer", "cached": false})
		}
		results = append(results, raw)
		var peek struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &peek) == nil && peek.Error == "" {
			anyOK = true
		}
	}

	status := http.StatusOK
	if !anyOK && len(results) > 0 {
		switch {
		case sameStatus && allSameStatus != 0:
			status = allSameStatus
		case shed:
			status = http.StatusTooManyRequests
		case deadline:
			status = http.StatusGatewayTimeout
		default:
			status = http.StatusBadGateway
		}
		if status == http.StatusTooManyRequests {
			if retryAfter < 1 {
				retryAfter = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			rt.metrics.countShed()
		}
	}

	resp := struct {
		Dataset      string            `json:"dataset"`
		Version      uint64            `json:"version,omitempty"`
		VersionMixed bool              `json:"version_mixed,omitempty"`
		Kind         string            `json:"kind"`
		Measure      string            `json:"measure,omitempty"`
		Plan         json.RawMessage   `json:"plan,omitempty"`
		ElapsedMS    float64           `json:"elapsed_ms"`
		Results      []json.RawMessage `json:"results"`
	}{
		Dataset:   dataset,
		Kind:      kind,
		Measure:   measureName,
		Plan:      plan,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Results:   results,
	}
	if versionSet && !versionMixed {
		resp.Version = version
	}
	resp.VersionMixed = versionMixed
	writeJSON(w, status, resp)
}

// decodeS accepts the two /v2/query spellings of "s": a JSON integer
// array or an s-list string such as "1,4:8".
func decodeS(raw json.RawMessage) ([]int, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("cluster: \"s\" is required (an integer array or an s-list string such as \"1,4:8\")")
	}
	var spec string
	if err := json.Unmarshal(raw, &spec); err == nil {
		return core.ParseSValues(spec)
	}
	var vals []int
	if err := json.Unmarshal(raw, &vals); err != nil {
		return nil, fmt.Errorf("cluster: bad \"s\" %s", raw)
	}
	if err := core.ValidateSValues(vals); err != nil {
		return nil, err
	}
	return vals, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
