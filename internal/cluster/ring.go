// Package cluster is hyperline's distributed serving tier: a stateless
// scatter-gather router (cmd/hyperrouter) in front of N hyperlined
// replicas. Dataset ownership is decided by a consistent-hash ring on
// dataset names with R-way replication; a /v2/query s-list is sharded
// across the healthy owners, each shard carries the remaining request
// deadline over the wire as timeout_ms, and per-s entries are merged
// back in order. Replica 429/Retry-After answers translate into router
// shed decisions, and a shard that dawdles past a latency budget is
// hedged to the next owner. The router holds no dataset state and
// caches nothing — every answer is a replica's answer, byte for byte.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the virtual-node fan per member. 256 keeps the
// ownership split close to even even for 2-3 member clusters (fewer
// vnodes leave visibly lopsided primary shares) while the ring build
// stays trivially cheap.
const vnodesPerNode = 256

// vnode is one virtual point on the ring.
type vnode struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over replica base URLs.
// Membership changes rebuild the ring (cheap: members are few); lookups
// are lock-free on the immutable value.
type Ring struct {
	vnodes []vnode
	nodes  []string
}

// NewRing builds a ring over the given node identifiers (duplicates and
// empty strings are dropped).
func NewRing(nodes []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodesPerNode; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return r
}

// Nodes returns the ring members, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owners returns up to n distinct nodes for key, walking clockwise from
// the key's ring position — the stable R-way replica set for a dataset.
// Ownership is a pure function of membership, so every router instance
// (the tier is stateless) derives the same placement.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	owners := make([]string, 0, n)
	taken := make(map[string]bool, n)
	for i := 0; i < len(r.vnodes) && len(owners) < n; i++ {
		node := r.vnodes[(start+i)%len(r.vnodes)].node
		if !taken[node] {
			taken[node] = true
			owners = append(owners, node)
		}
	}
	return owners
}

// ringHash is 64-bit FNV-1a — stable across processes and Go versions,
// which placement must be.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
