//go:build race

package cluster

// raceEnabled lets timing-sensitive tests widen their budgets: race
// instrumentation slows the serving pipeline enough to blow through
// margins that are generous in a normal build.
const raceEnabled = true
