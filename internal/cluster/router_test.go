package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperline/internal/gen"
	"hyperline/internal/hg"
	"hyperline/internal/loadgen"
	"hyperline/internal/serve"
)

// randomAdjacency renders a reproducible hypergraph in adjacency text,
// the format uploads carry.
func randomAdjacency(seed int64, edges, vertices, meanSize int) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for e := 0; e < edges; e++ {
		size := 1 + r.Intn(2*meanSize)
		seen := map[int]bool{}
		for k := 0; k < size; k++ {
			seen[r.Intn(vertices)] = true
		}
		first := true
		for v := 0; v < vertices; v++ {
			if seen[v] {
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", v)
				first = false
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func paperHG() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3, 4}, {4, 5},
	}, 6)
}

// realReplica runs a full hyperlined serving stack on an httptest
// server.
func realReplica(t *testing.T, svc *serve.Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts
}

func newRouterServer(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt := NewRouter(cfg)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// postQuery posts one /v2/query body and returns status, headers, and
// the raw response.
func postQuery(t *testing.T, base, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v2/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// queryResults decodes the results array of a /v2/query response.
func queryResults(t *testing.T, data []byte) []json.RawMessage {
	t.Helper()
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad query response %s: %v", data, err)
	}
	return out.Results
}

// normalizeEntry strips the per-run fields (cache flags, timings) so
// entries can be compared byte-for-byte across independent processes.
func normalizeEntry(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad entry %s: %v", raw, err)
	}
	delete(m, "cached")
	delete(m, "projection_cached")
	delete(m, "timings_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRouterScatterGatherMatchesSingleNode is the tier's ground truth:
// an upload through the router replicates to every owner, a fanned-out
// sweep merges to exactly the entries a single node produces —
// byte-identical once per-run cache flags and timings are stripped —
// and the merged sweep comes back in ascending s order.
func TestRouterScatterGatherMatchesSingleNode(t *testing.T) {
	adj := randomAdjacency(7, 60, 40, 4)
	repA := realReplica(t, serve.New(serve.Config{}))
	repB := realReplica(t, serve.New(serve.Config{}))
	rt, router := newRouterServer(t, Config{Replicas: []string{repA.URL, repB.URL}, Replication: 2})
	_ = rt

	// Upload through the router: both owners must accept it.
	req, _ := http.NewRequest(http.MethodPut, router.URL+"/v1/datasets/d?format=adj", strings.NewReader(adj))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Replicated int `json:"replicated"`
		Owners     int `json:"owners"`
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &up) != nil || up.Replicated != 2 {
		t.Fatalf("upload via router: status %d body %s", resp.StatusCode, data)
	}

	// Single-node reference.
	single := realReplica(t, serve.New(serve.Config{}))
	sreq, _ := http.NewRequest(http.MethodPut, single.URL+"/v1/datasets/d?format=adj", strings.NewReader(adj))
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("reference upload: %v %v", err, sresp.Status)
	}
	sresp.Body.Close()

	for _, body := range []string{
		`{"dataset":"d","s":"1:4","edges":true}`,
		`{"dataset":"d","s":[1,2],"measure":"components"}`,
	} {
		status, _, routed := postQuery(t, router.URL, body)
		if status != http.StatusOK {
			t.Fatalf("router query %s: status %d: %s", body, status, routed)
		}
		sstatus, _, direct := postQuery(t, single.URL, body)
		if sstatus != http.StatusOK {
			t.Fatalf("single-node query %s: status %d", body, sstatus)
		}
		re := queryResults(t, routed)
		de := queryResults(t, direct)
		if len(re) != len(de) || len(re) == 0 {
			t.Fatalf("%s: %d routed entries vs %d direct", body, len(re), len(de))
		}
		lastS := 0
		for i := range re {
			var peek struct {
				S     int    `json:"s"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(re[i], &peek); err != nil {
				t.Fatal(err)
			}
			if peek.Error != "" {
				t.Fatalf("%s: routed entry s=%d failed: %s", body, peek.S, peek.Error)
			}
			if peek.S <= lastS {
				t.Fatalf("%s: merged entries out of order at s=%d", body, peek.S)
			}
			lastS = peek.S
			got, want := normalizeEntry(t, re[i]), normalizeEntry(t, de[i])
			if got != want {
				t.Fatalf("%s s=%d: routed answer differs from single node:\n  routed: %s\n  direct: %s", body, peek.S, got, want)
			}
		}
	}

	// The merged dataset listing shows both owners.
	lresp, err := http.Get(router.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		Name     string   `json:"name"`
		Replicas []string `json:"replicas"`
	}
	ldata, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if json.Unmarshal(ldata, &list) != nil || len(list) != 1 || list[0].Name != "d" || len(list[0].Replicas) != 2 {
		t.Fatalf("merged dataset listing: %s", ldata)
	}
}

// TestRouterReplicaDownPartialSuccess: one owner is down mid-fan-out
// and the survivor sheds the failed-over shard — the router must answer
// 200 with per-entry errors for the dead shard and intact entries for
// the rest, exactly like a replica's own partial-failure contract.
func TestRouterReplicaDownPartialSuccess(t *testing.T) {
	// Replica A is down (connection refused). Replica B serves only its
	// own shard and sheds anything failed over to it, so the A-shard
	// exhausts its owners deterministically.
	svcB := serve.New(serve.Config{})
	svcB.Add("paper", paperHG())
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	down.Close()

	var bShard []int
	inner := serve.NewHandler(svcB)
	guard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/query" {
			inner.ServeHTTP(w, r)
			return
		}
		body, _ := io.ReadAll(r.Body)
		var req struct {
			S []int `json:"s"`
		}
		json.Unmarshal(body, &req)
		mine := len(req.S) == len(bShard)
		for i := range req.S {
			if mine && req.S[i] != bShard[i] {
				mine = false
			}
		}
		if !mine {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(guard.Close)

	// Shard assignment mirrors the router: s mod |owners| indexes the
	// ring-ordered owner list.
	ownerList := NewRing([]string{down.URL, guard.URL}).Owners("paper", 2)
	var aShard []int
	for s := 1; s <= 2; s++ {
		if ownerList[s%2] == guard.URL {
			bShard = append(bShard, s)
		} else {
			aShard = append(aShard, s)
		}
	}
	if len(aShard) == 0 || len(bShard) == 0 {
		t.Fatalf("degenerate shard split: aShard=%v bShard=%v", aShard, bShard)
	}

	_, router := newRouterServer(t, Config{Replicas: []string{down.URL, guard.URL}, Replication: 2})
	status, hdr, data := postQuery(t, router.URL, `{"dataset":"paper","s":[1,2]}`)
	if status != http.StatusOK {
		t.Fatalf("partial success must stay 200, got %d: %s", status, data)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		t.Fatalf("partial success must not carry Retry-After, got %q", ra)
	}
	results := queryResults(t, data)
	if len(results) != 2 {
		t.Fatalf("want 2 merged entries, got %s", data)
	}
	failed := map[int]bool{}
	for _, s := range aShard {
		failed[s] = true
	}
	for _, raw := range results {
		var e struct {
			S     int    `json:"s"`
			Error string `json:"error"`
			Nodes int    `json:"nodes"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if failed[e.S] && e.Error == "" {
			t.Fatalf("s=%d rode a dead replica yet reports success: %s", e.S, raw)
		}
		if !failed[e.S] && e.Error != "" {
			t.Fatalf("s=%d owned by the live replica failed: %s", e.S, e.Error)
		}
	}
	// The failover is visible in the router's own counters.
	m := routerMetrics(t, router.URL)
	if m[`hyperrouter_retries_total`] < 1 {
		t.Fatalf("no failover retry recorded: %v", m)
	}
}

// TestRouterAllOwnersShedTranslates429: when every owner sheds, the
// router answers a single 429 carrying the *largest* Retry-After any
// owner advertised — the client backs off once, conservatively.
func TestRouterAllOwnersShedTranslates429(t *testing.T) {
	shedder := func(retryAfter string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"saturated"}`))
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := shedder("3"), shedder("7")
	_, router := newRouterServer(t, Config{Replicas: []string{a.URL, b.URL}, Replication: 2})

	status, hdr, data := postQuery(t, router.URL, `{"dataset":"paper","s":[1,2]}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("all-owners-shed must answer 429, got %d: %s", status, data)
	}
	if ra := hdr.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want the max across owners (7)", ra)
	}
	m := routerMetrics(t, router.URL)
	if m[`hyperrouter_shed_total`] != 1 {
		t.Fatalf("router shed counter: %v", m)
	}
	if m[`hyperrouter_subrequests_total{outcome="shed"}`] < 2 {
		t.Fatalf("expected shed sub-requests against both owners: %v", m)
	}
}

// TestRouterDeadlinePropagatesToReplica is the acceptance contract for
// deadline propagation: a short client timeout_ms expires *on the
// replica* (which answers 504 under its forwarded budget) and the
// router returns promptly — it never hangs waiting out a query the
// deadline already killed.
func TestRouterDeadlinePropagatesToReplica(t *testing.T) {
	svc := serve.New(serve.Config{})
	// ~900ms of Stage-3 work per s on one core — far past the budget.
	svc.Add("slow", gen.Community(gen.CommunityConfig{
		Seed: 31, NumVertices: 4000, NumCommunities: 70,
		MeanCommunitySize: 45, EdgesPerCommunity: 50, Background: 1000,
	}))
	rep := realReplica(t, svc)
	_, router := newRouterServer(t, Config{Replicas: []string{rep.URL}, Replication: 1})

	timeoutMS, hangAfter := 300, 3*time.Second
	if raceEnabled {
		// Race instrumentation slows the pipeline's cancellation polls;
		// widen the budget so the replica still answers inside its margin.
		timeoutMS, hangAfter = 3000, 15*time.Second
	}
	t0 := time.Now()
	status, _, data := postQuery(t, router.URL,
		fmt.Sprintf(`{"dataset":"slow","s":[1],"timeout_ms":%d}`, timeoutMS))
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired query must answer 504, got %d: %s", status, data)
	}
	if elapsed > hangAfter {
		t.Fatalf("router took %v to surface a %dms deadline — it hung", elapsed, timeoutMS)
	}
	// The deadline fired replica-side: the router observed a 504
	// *response*, not a dead connection (outcome would be "error") and
	// not its own context expiry (no sub-request outcome at all).
	m := routerMetrics(t, router.URL)
	if m[`hyperrouter_subrequests_total{outcome="deadline"}`] < 1 {
		t.Fatalf("no replica-side 504 observed — the deadline did not travel: %v", m)
	}
	// The router is alive and serving after the expiry.
	resp, err := http.Get(router.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("router unhealthy after deadline expiry: %v", err)
	}
	resp.Body.Close()
}

// TestRouterReplicaRestartMidSweep: a replica restarting between the
// entries of one sweep must cost nothing visible — queries during the
// outage fail over to the surviving owner, queries after the restart
// may land on the fresh process, and every answer stays byte-identical
// to the pre-restart ones.
func TestRouterReplicaRestartMidSweep(t *testing.T) {
	svcA := serve.New(serve.Config{})
	svcA.Add("paper", paperHG())
	repA := realReplica(t, svcA)

	svcB := serve.New(serve.Config{})
	svcB.Add("paper", paperHG())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := ln.Addr().String()
	srvB := &http.Server{Handler: serve.NewHandler(svcB)}
	go srvB.Serve(ln)

	rt, router := newRouterServer(t, Config{Replicas: []string{repA.URL, "http://" + addrB}, Replication: 2})

	query := func(s int) string {
		status, _, data := postQuery(t, router.URL, fmt.Sprintf(`{"dataset":"paper","s":[%d]}`, s))
		if status != http.StatusOK {
			t.Fatalf("s=%d: status %d mid-restart: %s", s, status, data)
		}
		results := queryResults(t, data)
		if len(results) != 1 {
			t.Fatalf("s=%d: %d entries", s, len(results))
		}
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(results[0], &e)
		if e.Error != "" {
			t.Fatalf("s=%d failed across the restart: %s", s, e.Error)
		}
		return normalizeEntry(t, results[0])
	}

	before := map[int]string{}
	for s := 1; s <= 4; s++ {
		before[s] = query(s)
	}

	// Restart replica B between entries: same address, fresh process
	// state, same dataset bytes.
	srvB.Close()
	for s := 1; s <= 2; s++ {
		if got := query(s); got != before[s] {
			t.Fatalf("s=%d: answer changed while B was down:\n  was %s\n  now %s", s, before[s], got)
		}
	}
	svcB2 := serve.New(serve.Config{})
	svcB2.Add("paper", paperHG())
	var ln2 net.Listener
	for i := 0; i < 200; i++ {
		ln2, err = net.Listen("tcp", addrB)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addrB, err)
	}
	srvB2 := &http.Server{Handler: serve.NewHandler(svcB2)}
	go srvB2.Serve(ln2)
	t.Cleanup(func() { srvB2.Close() })
	rt.CheckHealth(context.Background()) // readmit the restarted replica

	for s := 1; s <= 4; s++ {
		if got := query(s); got != before[s] {
			t.Fatalf("s=%d: answer changed across B's restart:\n  was %s\n  now %s", s, before[s], got)
		}
	}
}

// TestRouterHedgesSlowShard: a shard that dawdles past -hedge-after is
// raced against the next owner; the faster answer wins and is recorded
// as a hedge win.
func TestRouterHedgesSlowShard(t *testing.T) {
	stub := func(delay time.Duration, nodes int) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				S []int `json:"s"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			entries := make([]map[string]any, len(req.S))
			for i, s := range req.S {
				entries[i] = map[string]any{"s": s, "cached": false, "nodes": nodes, "edges": 1}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"dataset": "d", "kind": "line", "results": entries})
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	slow := stub(2*time.Second, 111)
	fast := stub(0, 222)

	// Pick the s whose primary is the slow stub, so the hedge (not the
	// primary) must deliver the answer.
	ownerList := NewRing([]string{slow.URL, fast.URL}).Owners("d", 2)
	sVal := 1
	for s := 1; s <= 2; s++ {
		if ownerList[s%2] == slow.URL {
			sVal = s
		}
	}

	_, router := newRouterServer(t, Config{
		Replicas: []string{slow.URL, fast.URL}, Replication: 2, HedgeAfter: 50 * time.Millisecond,
	})
	t0 := time.Now()
	status, _, data := postQuery(t, router.URL, fmt.Sprintf(`{"dataset":"d","s":[%d]}`, sVal))
	elapsed := time.Since(t0)
	if status != http.StatusOK {
		t.Fatalf("hedged query: status %d: %s", status, data)
	}
	if elapsed > time.Second {
		t.Fatalf("hedge did not rescue the slow shard: took %v", elapsed)
	}
	var e struct {
		Nodes int `json:"nodes"`
	}
	json.Unmarshal(queryResults(t, data)[0], &e)
	if e.Nodes != 222 {
		t.Fatalf("answer came from the slow replica (nodes=%d), want the hedge's (222)", e.Nodes)
	}
	m := routerMetrics(t, router.URL)
	if m[`hyperrouter_hedges_total`] < 1 || m[`hyperrouter_hedge_wins_total`] < 1 {
		t.Fatalf("hedge counters did not move: %v", m)
	}
}

// TestRouterSelfRegistration: a replica POSTing its URL joins the map
// and starts owning datasets; garbage URLs are rejected.
func TestRouterSelfRegistration(t *testing.T) {
	svc := serve.New(serve.Config{})
	svc.Add("paper", paperHG())
	rep := realReplica(t, svc)
	_, router := newRouterServer(t, Config{Replication: 1})

	// No members yet: queries have nowhere to go.
	status, _, _ := postQuery(t, router.URL, `{"dataset":"paper","s":[1]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("empty cluster must answer 503, got %d", status)
	}

	reg, err := http.Post(router.URL+"/v1/replicas", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, rep.URL)))
	if err != nil {
		t.Fatal(err)
	}
	reg.Body.Close()
	if reg.StatusCode != http.StatusOK {
		t.Fatalf("registration: status %d", reg.StatusCode)
	}
	status, _, data := postQuery(t, router.URL, `{"dataset":"paper","s":[1]}`)
	if status != http.StatusOK {
		t.Fatalf("query after registration: status %d: %s", status, data)
	}

	bad, err := http.Post(router.URL+"/v1/replicas", "application/json",
		strings.NewReader(`{"url":"not a url"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage registration: status %d, want 400", bad.StatusCode)
	}
}

// routerMetrics scrapes and parses the router's /metrics.
func routerMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	m, err := loadgen.FetchMetrics(context.Background(), nil, base)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// putViaRouter uploads an adjacency body through the router and fails
// the test unless every owner accepted it.
func putViaRouter(t *testing.T, router, name, adj string, wantOwners int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPut, router+"/v1/datasets/"+name+"?format=adj", strings.NewReader(adj))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var up struct {
		Replicated int `json:"replicated"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &up) != nil || up.Replicated != wantOwners {
		t.Fatalf("upload via router: status %d body %s", resp.StatusCode, data)
	}
}

// postIngest posts one /v2/ingest body and returns status plus the
// decoded fan-out summary.
func postIngest(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v2/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad ingest response %s: %v", data, err)
	}
	return resp.StatusCode, out
}

// TestRouterIngestFanOut: a delta through the router lands on every
// owner (success requires ALL of them — a replica that misses a delta
// diverges permanently, unlike an upload which can be re-PUT), and a
// routed query afterwards reports one unmixed version.
func TestRouterIngestFanOut(t *testing.T) {
	adj := "0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n"
	svcA, svcB := serve.New(serve.Config{}), serve.New(serve.Config{})
	repA, repB := realReplica(t, svcA), realReplica(t, svcB)
	_, router := newRouterServer(t, Config{Replicas: []string{repA.URL, repB.URL}, Replication: 2})
	putViaRouter(t, router.URL, "d", adj, 2)

	status, out := postIngest(t, router.URL, `{"dataset": "d", "inserts": [[4, 5]]}`)
	if status != http.StatusOK {
		t.Fatalf("ingest fan-out: status %d body %v", status, out)
	}
	if out["applied"].(float64) != 2 || out["owners"].(float64) != 2 {
		t.Fatalf("applied/owners = %v/%v, want 2/2", out["applied"], out["owners"])
	}

	// Both replicas really advanced: direct sweeps answer at version 2.
	for _, rep := range []*httptest.Server{repA, repB} {
		st, _, data := postQuery(t, rep.URL, `{"dataset": "d", "s": [1, 2]}`)
		var vr struct {
			Version uint64 `json:"version"`
		}
		if st != http.StatusOK || json.Unmarshal(data, &vr) != nil || vr.Version != 2 {
			t.Fatalf("replica after ingest: status %d version %d body %s", st, vr.Version, data)
		}
	}

	// The routed merged sweep agrees on the version — not mixed.
	st, _, data := postQuery(t, router.URL, `{"dataset": "d", "s": "1:4"}`)
	var merged struct {
		Version      uint64 `json:"version"`
		VersionMixed bool   `json:"version_mixed"`
	}
	if st != http.StatusOK || json.Unmarshal(data, &merged) != nil {
		t.Fatalf("routed query after ingest: status %d body %s", st, data)
	}
	if merged.VersionMixed || merged.Version != 2 {
		t.Fatalf("merged version %d mixed=%v, want 2 unmixed", merged.Version, merged.VersionMixed)
	}

	// The router's ingest counter shows on /metrics.
	mresp, err := http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), "hyperrouter_ingests_total 1") {
		t.Fatalf("router metrics missing ingest counter:\n%s", mdata)
	}
}

// TestRouterIngestPartialFailureIs502: if any owner misses the delta
// the fan-out is NOT a success — the caller must know the replica set
// has diverged.
func TestRouterIngestPartialFailureIs502(t *testing.T) {
	adj := "0 1\n1 2\n2 3\n"
	repA := realReplica(t, serve.New(serve.Config{}))
	repB := realReplica(t, serve.New(serve.Config{}))
	_, router := newRouterServer(t, Config{Replicas: []string{repA.URL, repB.URL}, Replication: 2})
	putViaRouter(t, router.URL, "d", adj, 2)

	repB.Close()
	status, out := postIngest(t, router.URL, `{"dataset": "d", "inserts": [[0, 3]]}`)
	if status != http.StatusBadGateway {
		t.Fatalf("partial ingest: status %d, want 502 (body %v)", status, out)
	}
	if out["applied"].(float64) != 1 {
		t.Fatalf("applied = %v, want 1", out["applied"])
	}
}

// TestRouterIngestUnanimousConflictIs409: a stale base_version pin
// rejected by every owner surfaces as a 409, so clients can distinguish
// "re-read and rebuild the delta" from a replica failure.
func TestRouterIngestUnanimousConflictIs409(t *testing.T) {
	adj := "0 1\n1 2\n"
	repA := realReplica(t, serve.New(serve.Config{}))
	repB := realReplica(t, serve.New(serve.Config{}))
	_, router := newRouterServer(t, Config{Replicas: []string{repA.URL, repB.URL}, Replication: 2})
	putViaRouter(t, router.URL, "d", adj, 2)

	status, out := postIngest(t, router.URL, `{"dataset": "d", "base_version": 99, "inserts": [[0, 2]]}`)
	if status != http.StatusConflict {
		t.Fatalf("stale pin: status %d, want 409 (body %v)", status, out)
	}
	if out["applied"].(float64) != 0 {
		t.Fatalf("applied = %v, want 0", out["applied"])
	}
}

// TestRouterVersionMixedFlag: when shards answer one sweep from
// different dataset versions (a replica that ingested out-of-band), the
// merged response flags version_mixed instead of inventing a version.
func TestRouterVersionMixedFlag(t *testing.T) {
	adj := "0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n"
	repA := realReplica(t, serve.New(serve.Config{}))
	repB := realReplica(t, serve.New(serve.Config{}))
	_, router := newRouterServer(t, Config{Replicas: []string{repA.URL, repB.URL}, Replication: 2})
	putViaRouter(t, router.URL, "d", adj, 2)

	// Diverge replica A behind the router's back.
	resp, err := http.Post(repA.URL+"/v2/ingest", "application/json",
		strings.NewReader(`{"dataset": "d", "inserts": [[4, 5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct ingest to replica A: %d", resp.StatusCode)
	}

	// A sweep wide enough to touch both shards must see the mix.
	st, _, data := postQuery(t, router.URL, `{"dataset": "d", "s": "1:4"}`)
	var merged struct {
		Version      uint64 `json:"version"`
		VersionMixed bool   `json:"version_mixed"`
	}
	if st != http.StatusOK || json.Unmarshal(data, &merged) != nil {
		t.Fatalf("routed query: status %d body %s", st, data)
	}
	if !merged.VersionMixed {
		t.Fatalf("merged response did not flag mixed versions: %s", data)
	}
	if merged.Version != 0 {
		t.Fatalf("mixed response invented version %d", merged.Version)
	}
}

// TestRouterChangesProxy: the change feed proxies to a healthy owner
// with the query string intact.
func TestRouterChangesProxy(t *testing.T) {
	adj := "0 1\n1 2\n"
	repA := realReplica(t, serve.New(serve.Config{}))
	_, router := newRouterServer(t, Config{Replicas: []string{repA.URL}, Replication: 1})
	putViaRouter(t, router.URL, "d", adj, 1)

	status, out := postIngest(t, router.URL, `{"dataset": "d", "inserts": [[0, 2]]}`)
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d body %v", status, out)
	}

	resp, err := http.Get(router.URL + "/v2/datasets/d/changes?since=1&timeout_ms=2000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var feed struct {
		Version uint64 `json:"version"`
		Events  []struct {
			Version uint64 `json:"version"`
			Inserts int    `json:"inserts"`
		} `json:"events"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &feed) != nil {
		t.Fatalf("proxied changes: status %d body %s", resp.StatusCode, data)
	}
	if feed.Version != 2 || len(feed.Events) != 1 || feed.Events[0].Inserts != 1 {
		t.Fatalf("proxied feed %s, want version 2 with the one ingest event", data)
	}

	// Unknown dataset: the owning replica's 404 passes through verbatim.
	nresp, err := http.Get(router.URL + "/v2/datasets/nope/changes?since=0")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("changes for unknown dataset: %d, want the replica's 404", nresp.StatusCode)
	}
}
